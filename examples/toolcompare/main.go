// Toolcompare: run every modeled tool profile against one logic bomb and
// print the per-stage diagnosis — a one-row slice of the paper's Table II
// with the reasoning errors made visible.
//
// Run with: go run ./examples/toolcompare [bomb-name]
package main

import (
	"fmt"
	"os"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/tools"
)

func main() {
	name := "array1"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, ok := bombs.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "no bomb named %q\n", name)
		os.Exit(1)
	}
	fmt.Printf("bomb: %s — %s\n", b.Name, b.Description)
	fmt.Printf("trigger input: %q; benign seed: %q\n\n", b.Trigger.Argv1, b.Benign.Argv1)

	profiles := append(tools.TableII(), tools.Reference())
	for _, p := range profiles {
		en := core.New(b.Image(), b.BombAddr(), p.Caps)
		out := en.Explore(b.Benign)
		labelled := eval.Classify(out)
		display := string(labelled)
		if labelled == bombs.OK {
			display = fmt.Sprintf("OK (input %q)", out.Input.Argv1)
		}
		if labelled == "" {
			display = "- (deemed unreachable)"
		}
		fmt.Printf("%-12s %-22s rounds=%-3d\n", p.Name(), display, out.Rounds)
		for _, in := range out.Incidents {
			fmt.Printf("             %s\n", in)
		}
		for _, c := range out.Claims {
			fmt.Printf("             claim at %#x (syscall simulation: %v)\n", c.PC, c.Syscall)
		}
		if out.CrashDetail != "" {
			fmt.Printf("             abort: %s\n", out.CrashDetail)
		}
	}
}
