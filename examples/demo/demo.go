// Package demo is the in-repo fixture for the Go frontend: small, pure
// functions whose panics are reachable only under specific argument
// tuples. `congolic ./examples/demo <Func>` should find those tuples;
// every function is benign at its zero arguments, so the engine's
// all-zero seed never detonates on round one.
//
// The package deliberately stays inside the lowered subset: int/bool
// params, arithmetic, comparisons, if/for, intra-package calls, and
// slice indexing. Panics — explicit, out-of-range, divide-by-zero —
// are the detonation sites.
package demo

// mix is the intra-package helper: a keyed diffusion step, called from
// Unlock so the lowering's call path is exercised.
func mix(x, y int) int {
	return x*31 ^ y
}

// Unlock is the branch maze: two nested guards over a helper call.
// Only Unlock(4, 42) reaches the panic.
func Unlock(a, b int) {
	if mix(a, 3) == 127 {
		if b-a == 38 {
			panic("vault unlocked")
		}
	}
}

// Guard is the arithmetic guard: the divisor n*n-9 is zero exactly at
// n == ±3, and the positive gate narrows that to Guard(3).
func Guard(n int) int {
	d := n*n - 9
	if n > 0 {
		return 100 / d
	}
	return d
}

// Probe is the slice detonation: table has eight entries but the index
// ranges over i%10, so i%10 in {8, 9} — or any negative remainder —
// indexes out of range.
func Probe(i int) int {
	table := []int{2, 3, 5, 7, 11, 13, 17, 19}
	return table[i%10]
}

// Loop sums 1..min(n, 100); the trigger fires on the 20th triangular
// number, so the engine must steer the trip count to exactly twenty.
// The cap bounds the concrete trip count so a solver model with a huge
// n cannot run away with the step budget.
func Loop(n int) int {
	sum := 0
	for i := 1; i <= n && i <= 100; i++ {
		sum += i
	}
	if sum == 210 {
		panic("triangular trigger")
	}
	return sum
}

// Flag mixes a boolean arm switch with an integer key: only
// Flag(true, 5) panics.
func Flag(armed bool, k int) {
	if armed && k^21 == 16 {
		panic("armed")
	}
}

// Divide gates an unguarded division behind a comparison: any a > 10
// with b == 3 divides by zero.
func Divide(a, b int) int {
	if a > 10 {
		return a / (b - 3)
	}
	return 0
}
