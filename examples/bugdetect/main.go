// Bug detection (the paper's §V-D scenario 1): drive coverage-guided
// input generation with the concolic engine to expose a guarded crash.
// The sample program divides by a derived quantity that is zero only for
// one input value — random testing rarely finds it, the engine derives it.
//
// Run with: go run ./examples/bugdetect
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"repro/internal/asm"
	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/gos"
	"repro/internal/libc"
	"repro/internal/tools"
)

// The buggy program: 1000/(x-4242) faults when atoi(argv[1]) == 4242.
// The `crash` label marks the faulting instruction (our "bug site").
const buggy = `
main:
    cmp r1, 2
    jl buggy_out
    ld.q r1, [r2+8]
    call atoi
    sub r0, 4242
    mov r3, 1000
crash:
    div r3, r0             ; divide-by-zero bug when argv[1] == "4242"
    mov r0, 0
    ret
buggy_out:
    mov r0, 0
    ret
`

func main() {
	units := append(libc.All(), asm.Source{Name: "buggy.s", Text: buggy})
	img, err := asm.Assemble(units...)
	if err != nil {
		log.Fatal(err)
	}

	run := func(arg string) *gos.Result {
		m, err := gos.New(img, gos.Config{Argv: []string{"buggy", arg}})
		if err != nil {
			log.Fatal(err)
		}
		return m.Run()
	}

	// 1. Random testing: a thousand random inputs almost never crash it.
	rng := rand.New(rand.NewSource(1))
	crashes := 0
	for i := 0; i < 1000; i++ {
		arg := strconv.Itoa(rng.Intn(100000))
		if res := run(arg); res.Reason == gos.StopFault {
			crashes++
		}
	}
	fmt.Printf("random testing: %d/1000 inputs crash the program\n", crashes)

	// 2. Concolic testing: the engine's implicit divide-fault branch
	// (divisor != 0) is negated during exploration, so the crashing input
	// falls out as a generated candidate; faulting runs are collected in
	// Outcome.FaultInputs. Any unreached target keeps exploration going.
	caps := tools.Reference().Caps
	caps.MaxRounds = 24
	// Aim at an address the program never reaches so the engine keeps
	// exploring every branch direction (pure coverage mode).
	en := core.New(img, 0xdead_0000, caps)
	out := en.Explore(bombs.Input{Argv1: "1"})

	if len(out.FaultInputs) == 0 {
		log.Fatal("engine found no crashing input")
	}
	found := out.FaultInputs[0].Argv1
	res := run(found)
	fmt.Printf("concolic engine found a crashing input in %d rounds: %q\n", out.Rounds, found)
	fmt.Printf("replay: machine stopped with %q (status %d)\n", res.Reason, res.ExitStatus)
}
