// Quickstart: assemble a small guarded program, point the concolic engine
// at its hidden payload, and let it derive the input that reaches it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/gos"
	"repro/internal/libc"
	"repro/internal/tools"
)

// A tiny "crackme": the payload fires only for atoi(argv[1]) == 31337.
const program = `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 31337
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`

func main() {
	// 1. Assemble the program against the guest libc.
	units := append(libc.All(), asm.Source{Name: "crackme.s", Text: program})
	img, err := asm.Assemble(units...)
	if err != nil {
		log.Fatal(err)
	}
	target, ok := img.Symbol("bomb")
	if !ok {
		log.Fatal("no bomb symbol")
	}

	// 2. Run it concretely with a wrong guess: nothing happens.
	m, err := gos.New(img, gos.Config{Argv: []string{"crackme", "12345"}})
	if err != nil {
		log.Fatal(err)
	}
	res := m.Run()
	fmt.Printf("concrete run with %q: status=%d stdout=%q\n", "12345", res.ExitStatus, res.Stdout)

	// 3. Point the concolic engine at the payload.
	engine := core.New(img, target, tools.Reference().Caps)
	out := engine.Explore(bombs.Input{Argv1: "12345"})
	fmt.Printf("engine verdict: %s after %d rounds\n", out.Verdict, out.Rounds)
	if out.Verdict != core.VerdictSolved {
		log.Fatal("expected the engine to crack the guard")
	}
	fmt.Printf("derived input: %q\n", out.Input.Argv1)

	// 4. Replay it to confirm.
	m2, err := gos.New(img, gos.Config{Argv: []string{"crackme", out.Input.Argv1}})
	if err != nil {
		log.Fatal(err)
	}
	res2 := m2.Run()
	fmt.Printf("replay: status=%d stdout=%q\n", res2.ExitStatus, res2.Stdout)
}
