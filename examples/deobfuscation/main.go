// Deobfuscation (the paper's §V-D scenario 2): use the concolic engine to
// separate real branches from opaque predicates. An obfuscated program
// guards bogus code behind a constant-false predicate (x*x+x is always
// even, so `(x*x+x) & 1 == 1` never holds); the engine proves the bogus
// branch infeasible while still cracking the live guard.
//
// Run with: go run ./examples/deobfuscation
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/asm"
	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/libc"
	"repro/internal/tools"
)

// The obfuscated program: an opaque predicate guards dead code; a real
// predicate guards the payload.
const obfuscated = `
main:
    cmp r1, 2
    jl obf_out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
    ; opaque predicate: (x*x + x) is always even
    mov r3, r12
    mul r3, r12
    add r3, r12
    and r3, 1
    cmp r3, 1
    jne obf_live
bogus:                     ; dead code the deobfuscator should eliminate
    mov r4, 0xdead
    mov r5, 0xbeef
    add r4, r5
obf_live:
    cmp r12, 77            ; the real guard
    jne obf_out
    call bomb
obf_out:
    mov r0, 0
    ret
`

func main() {
	units := append(libc.All(), asm.Source{Name: "obf.s", Text: obfuscated})
	img, err := asm.Assemble(units...)
	if err != nil {
		log.Fatal(err)
	}
	bogusAddr, ok := img.Symbol("bogus")
	if !ok {
		log.Fatal("no bogus symbol")
	}
	payload, _ := img.Symbol("bomb")

	caps := tools.Reference().Caps
	caps.MaxRounds = 12
	caps.TotalBudget = 30 * time.Second

	// 1. Is the bogus block reachable? Direct the engine at it.
	en := core.New(img, bogusAddr, caps)
	out := en.Explore(bombs.Input{Argv1: "3"})
	fmt.Printf("opaque-predicate block: verdict=%s after %d rounds\n", out.Verdict, out.Rounds)
	if out.Verdict == core.VerdictSolved {
		log.Fatal("engine wrongly reached the dead block")
	}
	fmt.Println("  -> dead code: the guard (x*x+x)&1 == 1 is unsatisfiable; eliminate it")

	// 2. The live payload must still be crackable.
	en2 := core.New(img, payload, caps)
	out2 := en2.Explore(bombs.Input{Argv1: "3"})
	fmt.Printf("live payload: verdict=%s input=%q\n", out2.Verdict, out2.Input.Argv1)
	if out2.Verdict != core.VerdictSolved {
		log.Fatal("engine failed on the live branch")
	}
	fmt.Println("  -> real control flow recovered: the payload triggers on", out2.Input.Argv1)
}
