// Command lbrun executes an LBF image on the guest machine, with
// configurable environment (arguments, clock, pid, files, web content)
// and optional trace dumping.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bin"
	"repro/internal/gos"
)

func main() {
	timeNow := flag.Uint64("time", 1111111111, "value returned by the time system call")
	pid := flag.Uint64("pid", 4242, "pid reported by getpid")
	stdin := flag.String("stdin", "", "bytes served on stdin")
	maxSteps := flag.Int("max-steps", 0, "instruction budget (0 = default)")
	dumpTrace := flag.Bool("trace", false, "dump the executed instruction trace")
	web := flag.String("web", "", "web content as url=body,url=body")
	files := flag.String("files", "", "pre-existing files as path=content,path=content")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lbrun [flags] image.lbf [args...]")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrun:", err)
		os.Exit(1)
	}
	img, err := bin.Decode(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrun:", err)
		os.Exit(1)
	}
	cfg := gos.Config{
		Argv:       append([]string{flag.Arg(0)}, flag.Args()[1:]...),
		Stdin:      []byte(*stdin),
		TimeNow:    *timeNow,
		Pid:        *pid,
		MaxSteps:   *maxSteps,
		Record:     *dumpTrace,
		WebContent: parseKV(*web),
	}
	if f := parseKV(*files); f != nil {
		cfg.Files = make(map[string][]byte, len(f))
		for k, v := range f {
			cfg.Files[k] = []byte(v)
		}
	}
	m, err := gos.New(img, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbrun:", err)
		os.Exit(1)
	}
	res := m.Run()
	fmt.Print(res.Stdout)
	fmt.Fprintf(os.Stderr, "[%s] status=%d steps=%d\n", res.Reason, res.ExitStatus, res.Steps)
	if *dumpTrace && res.Trace != nil {
		fmt.Fprint(os.Stderr, res.Trace.Dump(false))
	}
	os.Exit(res.ExitStatus & 0xff)
}

func parseKV(s string) map[string]string {
	if s == "" {
		return nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		if i := strings.IndexByte(pair, '='); i >= 0 {
			out[pair[:i]] = pair[i+1:]
		}
	}
	return out
}
