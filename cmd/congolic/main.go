// Command congolic turns the concolic engine into a test-input
// generator for real Go code: it loads a Go package, lowers a chosen
// function to the guest ISA with every panic routed to the canonical
// `bomb` symbol, and directs the unmodified engine at it. A solved
// verdict decodes back into a Go argument tuple, which is replayed both
// on the lowered machine image and through the source-level reference
// evaluator — the two must agree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliopts"
	"repro/internal/gofront"
	"repro/internal/tools"
)

func main() {
	tool := flag.String("tool", "reference",
		"profile: "+strings.Join(tools.Names(), ", "))
	timeout := flag.Duration("timeout", 0,
		"wall-clock deadline for the whole analysis (0 = profile budget only)")
	list := flag.Bool("list", false, "list the package's exported functions and exit")
	opts := cliopts.Register(flag.CommandLine)
	flag.Parse()

	if flag.NArg() < 1 || (!*list && flag.NArg() != 2) {
		fmt.Fprintln(os.Stderr, "usage: congolic [-tool name] [-timeout d] <package-dir> <Func>")
		fmt.Fprintln(os.Stderr, "       congolic -list <package-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)
	pkg, err := gofront.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "congolic: %v\n", err)
		os.Exit(1)
	}
	if *list {
		for _, n := range pkg.Exported() {
			fmt.Println(n)
		}
		return
	}

	p, ok := tools.ByName(*tool)
	if !ok {
		fmt.Fprintf(os.Stderr, "congolic: unknown tool %q (choose from %s)\n",
			*tool, strings.Join(tools.Names(), ", "))
		os.Exit(1)
	}
	res, err := opts.Resolve(cliopts.FlagDialect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "congolic: %v\n", err)
		var se *cliopts.StoreError
		if errors.As(err, &se) {
			os.Exit(1)
		}
		os.Exit(2)
	}
	defer res.Close()
	res.Apply(&p.Caps)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	out, err := gofront.SolvePackage(ctx, pkg, flag.Arg(1), p.Caps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "congolic: %v\n", err)
		os.Exit(1)
	}
	var b strings.Builder
	gofront.Render(&b, out)
	fmt.Print(b.String())
	if !out.Agreed() {
		fmt.Fprintln(os.Stderr, "congolic: machine and source semantics disagree on the solved input")
		os.Exit(1)
	}
}
