// Command evaltable regenerates the paper's tables and figures: Table I
// (challenge/error-stage mapping), Table II (tool performance on the 22
// logic bombs), the Figure 3 external-call comparison, the §V-C negative
// bomb study, and the reference-engine extension table.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliopts"
	"repro/internal/eval"
)

func main() {
	table1 := flag.Bool("table1", false, "render Table I")
	table2 := flag.Bool("table2", false, "render Table II")
	fig3 := flag.Bool("fig3", false, "render the Figure 3 comparison")
	negative := flag.Bool("negative", false, "render the negative-bomb study")
	reference := flag.Bool("reference", false, "render the reference-engine extension table")
	extended := flag.Bool("extended", false,
		"render Table II-extended (the TIFS-2018 taxonomy corpus; composes with -json, -diag, -fleet and the grid knobs)")
	extras := flag.Bool("extras", false, "render the extension-bomb study (loop, retjump, array3)")
	diag := flag.Bool("diag", false, "with -table2: print per-cell root-cause diagnostics")
	jsonOut := flag.Bool("json", false, "emit the Table II grid plus aggregate engine stats as JSON and exit")
	fleet := flag.String("fleet", "",
		"comma-separated concolicd base URLs; the Table II grid runs as fleet jobs instead of in-process engines")
	all := flag.Bool("all", false, "render everything")
	opts := cliopts.Register(flag.CommandLine)
	flag.Parse()

	res, err := opts.Resolve(cliopts.FlagDialect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaltable: %v\n", err)
		var se *cliopts.StoreError
		if errors.As(err, &se) {
			os.Exit(1)
		}
		os.Exit(2)
	}
	defer res.Close()
	runTableII := func() *eval.Grid {
		if *fleet != "" {
			var endpoints []string
			for _, e := range strings.Split(*fleet, ",") {
				if e = strings.TrimSpace(e); e != "" {
					endpoints = append(endpoints, strings.TrimRight(e, "/"))
				}
			}
			run := eval.RunTableIIFleet
			if *extended {
				run = eval.RunTableIIExtendedFleet
			}
			g, err := run(eval.FleetOptions{
				EngineWorkers: 0, SolverMode: res.SolverMode,
				Strategy: res.Strategy, Fuzz: res.Fuzz, CoverGoal: res.CoverGoal,
			}, endpoints)
			if err != nil {
				fmt.Fprintf(os.Stderr, "evaltable: %v\n", err)
				os.Exit(1)
			}
			return g
		}
		eopts := eval.Options{
			Workers: res.Workers, Checkpoint: res.Checkpoint,
			SolverMode: res.SolverMode, Warm: res.Warm,
			Strategy: res.Strategy, Fuzz: res.Fuzz, CoverGoal: res.CoverGoal,
		}
		if *extended {
			return eval.RunTableIIExtended(eopts)
		}
		return eval.RunTableII(eopts)
	}

	if *jsonOut {
		g := runTableII()
		out, err := eval.MarshalGrid(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
		return
	}

	if !*table1 && !*table2 && !*fig3 && !*negative && !*reference && !*extras && !*extended {
		*all = true
	}
	if *all || *table1 {
		fmt.Println(eval.RenderTableI())
	}
	if *all || *table2 || *extended {
		g := runTableII()
		fmt.Println(eval.RenderTableII(g))
		if *diag {
			fmt.Println(eval.RenderDiagnostics(g))
		}
	}
	if *all || *fig3 {
		r, err := eval.RunFig3()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		fmt.Println(eval.RenderFig3(r))
	}
	if *all || *negative {
		fmt.Println(eval.RenderNegativeStudy(eval.RunNegativeStudy()))
	}
	if *all || *reference {
		fmt.Println(eval.RenderReference(eval.RunReference()))
	}
	if *all || *extras {
		rows := eval.RunExtensionBombs()
		fmt.Println("EXTENSION BOMBS (beyond the paper's benchmark)")
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%-10s %-8s rounds=%-3d input=%q\n", r.Bomb, string(r.Outcome), r.Rounds, r.Input.Argv1)
		}
	}
}
