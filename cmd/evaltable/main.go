// Command evaltable regenerates the paper's tables and figures: Table I
// (challenge/error-stage mapping), Table II (tool performance on the 22
// logic bombs), the Figure 3 external-call comparison, the §V-C negative
// bomb study, and the reference-engine extension table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/warmstore"
)

func main() {
	table1 := flag.Bool("table1", false, "render Table I")
	table2 := flag.Bool("table2", false, "render Table II")
	fig3 := flag.Bool("fig3", false, "render the Figure 3 comparison")
	negative := flag.Bool("negative", false, "render the negative-bomb study")
	reference := flag.Bool("reference", false, "render the reference-engine extension table")
	extended := flag.Bool("extended", false,
		"render Table II-extended (the TIFS-2018 taxonomy corpus; composes with -json, -diag, -fleet and the grid knobs)")
	extras := flag.Bool("extras", false, "render the extension-bomb study (loop, retjump, array3)")
	diag := flag.Bool("diag", false, "with -table2: print per-cell root-cause diagnostics")
	workers := flag.Int("workers", 0, "concurrent Table II cells (0 = all CPUs, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit the Table II grid plus aggregate engine stats as JSON and exit")
	checkpoint := flag.String("checkpoint", "auto",
		"snapshot-replay policy for the Table II grid: auto or off (identical outcomes, different work profile)")
	solverMode := flag.String("solver", "fresh",
		"negation-query solving for the Table II grid: "+strings.Join(core.SolverModeNames(), ", ")+
			" (identical verdict labels)")
	warmDir := flag.String("warmstart", "",
		"warm-start store directory for the Table II grid (portfolio only)")
	strategy := flag.String("strategy", "",
		"frontier search order for the Table II grid: "+
			strings.Join(core.SearchStrategyNames(), ", ")+
			" (empty keeps each profile's default)")
	fuzz := flag.Bool("fuzz", false,
		"enable mutation-fuzzing breed rounds (requires -strategy coverage)")
	coverGoal := flag.Float64("cover-goal", 0,
		"per-engine early stop at this fraction (0,1] of static basic blocks")
	fleet := flag.String("fleet", "",
		"comma-separated concolicd base URLs; the Table II grid runs as fleet jobs instead of in-process engines")
	all := flag.Bool("all", false, "render everything")
	flag.Parse()

	var pol core.CheckpointPolicy
	switch *checkpoint {
	case "auto":
		pol = core.CheckpointAuto
	case "off":
		pol = core.CheckpointOff
	default:
		fmt.Fprintf(os.Stderr, "evaltable: unknown -checkpoint %q (auto or off)\n", *checkpoint)
		os.Exit(2)
	}
	mode, err := core.ParseSolverMode(*solverMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaltable: %v\n", err)
		os.Exit(2)
	}
	var warm *warmstore.Store
	if *warmDir != "" {
		if mode != core.SolverPortfolio {
			fmt.Fprintln(os.Stderr, "evaltable: -warmstart requires -solver=portfolio")
			os.Exit(2)
		}
		w, err := warmstore.Open(*warmDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaltable: open warm-start store: %v\n", err)
			os.Exit(1)
		}
		defer w.Close()
		warm = w
	}
	var strat core.SearchStrategy
	if *strategy != "" {
		strat, err = core.ParseSearchStrategy(*strategy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evaltable: %v\n", err)
			os.Exit(2)
		}
	}
	if *fuzz && strat != core.SearchCoverage {
		fmt.Fprintln(os.Stderr, "evaltable: -fuzz requires -strategy coverage")
		os.Exit(2)
	}
	if *coverGoal != 0 && (*coverGoal < 0 || *coverGoal > 1) {
		fmt.Fprintln(os.Stderr, "evaltable: -cover-goal must be in (0, 1]")
		os.Exit(2)
	}
	runTableII := func() *eval.Grid {
		if *fleet != "" {
			var endpoints []string
			for _, e := range strings.Split(*fleet, ",") {
				if e = strings.TrimSpace(e); e != "" {
					endpoints = append(endpoints, strings.TrimRight(e, "/"))
				}
			}
			run := eval.RunTableIIFleet
			if *extended {
				run = eval.RunTableIIExtendedFleet
			}
			g, err := run(eval.FleetOptions{
				EngineWorkers: 0, SolverMode: mode,
				Strategy: strat, Fuzz: *fuzz, CoverGoal: *coverGoal,
			}, endpoints)
			if err != nil {
				fmt.Fprintf(os.Stderr, "evaltable: %v\n", err)
				os.Exit(1)
			}
			return g
		}
		opts := eval.Options{
			Workers: *workers, Checkpoint: pol, SolverMode: mode, Warm: warm,
			Strategy: strat, Fuzz: *fuzz, CoverGoal: *coverGoal,
		}
		if *extended {
			return eval.RunTableIIExtended(opts)
		}
		return eval.RunTableII(opts)
	}

	if *jsonOut {
		g := runTableII()
		out, err := eval.MarshalGrid(g)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
		return
	}

	if !*table1 && !*table2 && !*fig3 && !*negative && !*reference && !*extras && !*extended {
		*all = true
	}
	if *all || *table1 {
		fmt.Println(eval.RenderTableI())
	}
	if *all || *table2 || *extended {
		g := runTableII()
		fmt.Println(eval.RenderTableII(g))
		if *diag {
			fmt.Println(eval.RenderDiagnostics(g))
		}
	}
	if *all || *fig3 {
		r, err := eval.RunFig3()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		fmt.Println(eval.RenderFig3(r))
	}
	if *all || *negative {
		fmt.Println(eval.RenderNegativeStudy(eval.RunNegativeStudy()))
	}
	if *all || *reference {
		fmt.Println(eval.RenderReference(eval.RunReference()))
	}
	if *all || *extras {
		rows := eval.RunExtensionBombs()
		fmt.Println("EXTENSION BOMBS (beyond the paper's benchmark)")
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%-10s %-8s rounds=%-3d input=%q\n", r.Bomb, string(r.Outcome), r.Rounds, r.Input.Argv1)
		}
	}
}
