// Command concolic runs a concolic-execution tool profile against a logic
// bomb (or any LBF image with a `bomb` symbol), directed at detonating it,
// and reports the verdict with the paper's outcome labels.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bombs"
	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/tools"
)

func main() {
	tool := flag.String("tool", "reference",
		"profile: "+strings.Join(tools.Names(), ", "))
	verbose := flag.Bool("v", false, "print incidents and per-round progress")
	stats := flag.Bool("stats", false, "print the engine work profile (rounds, queries, cache, wall time)")
	timeout := flag.Duration("timeout", 0,
		"wall-clock deadline for the whole analysis (0 = profile budget only); "+
			"exercises the same context-cancellation path as concolicd")
	opts := cliopts.Register(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: concolic [-tool name] [-timeout d] <bomb-name>")
		os.Exit(2)
	}
	b, ok := bombs.ByName(flag.Arg(0))
	if !ok {
		msg := fmt.Sprintf("concolic: no bomb named %q", flag.Arg(0))
		if s := bombs.Closest(flag.Arg(0)); s != "" {
			msg += fmt.Sprintf(" — did you mean %q?", s)
		}
		fmt.Fprintln(os.Stderr, msg+" (run cmd/bombs for the list)")
		os.Exit(1)
	}
	p, ok := tools.ByName(*tool)
	if !ok {
		fmt.Fprintf(os.Stderr, "concolic: unknown tool %q (choose from %s)\n",
			*tool, strings.Join(tools.Names(), ", "))
		os.Exit(1)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := opts.Resolve(cliopts.FlagDialect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "concolic: %v\n", err)
		var se *cliopts.StoreError
		if errors.As(err, &se) {
			os.Exit(1)
		}
		os.Exit(2)
	}
	defer res.Close()
	res.Apply(&p.Caps)
	en := core.New(b.Image(), b.BombAddr(), p.Caps)
	out := en.ExploreContext(ctx, b.Benign)

	fmt.Printf("tool=%s bomb=%s verdict=%s rounds=%d\n",
		p.Name(), b.Name, out.Verdict, out.Rounds)
	if out.Verdict == core.VerdictSolved {
		fmt.Printf("solving input: argv=%q", out.Input.Argv1)
		if out.Input.TimeNow != 0 {
			fmt.Printf(" time=%d", out.Input.TimeNow)
		}
		if out.Input.Pid != 0 {
			fmt.Printf(" pid=%d", out.Input.Pid)
		}
		for u, c := range out.Input.Web {
			fmt.Printf(" web[%s]=%q", u, c)
		}
		fmt.Println()
		res, err := b.Run(out.Input, bombs.WithMaxSteps(5_000_000))
		if err == nil {
			fmt.Printf("replay: triggered=%v stdout=%q\n", bombs.Triggered(res), res.Stdout)
		}
	}
	fmt.Printf("paper label: %s\n", cellLabel(out))
	if *stats {
		s := out.Stats
		lookups := s.CacheHits + s.CacheMisses
		fmt.Printf("stats: workers=%d rounds=%d peak-frontier=%d wall=%v\n",
			s.Workers, s.Rounds, s.PeakFrontier, s.WallTime)
		fmt.Printf("stats: solver-queries=%d cache-hits=%d cache-misses=%d cache-evictions=%d",
			s.SolverQueries, s.CacheHits, s.CacheMisses, s.CacheEvictions)
		if lookups > 0 {
			fmt.Printf(" hit-rate=%.0f%%", 100*float64(s.CacheHits)/float64(lookups))
		}
		fmt.Println()
		fmt.Printf("stats: intern-hits=%d intern-misses=%d arena-nodes=%d",
			s.InternHits, s.InternMisses, s.ArenaNodes)
		if s.InternHits+s.InternMisses > 0 {
			fmt.Printf(" intern-hit-rate=%.0f%%", 100*s.InternHitRate())
		}
		fmt.Println()
		fmt.Printf("stats: checkpoints=%d resumes=%d skipped-instructions=%d cow-faults=%d prefix-constraints-reused=%d\n",
			s.CheckpointsTaken, s.CheckpointResumes, s.InstructionsSkipped,
			s.PagesCOWFaulted, s.PrefixConstraintsReused)
		fmt.Printf("stats: solver-sessions=%d incremental-checks=%d learned-retained=%d guard-literals=%d\n",
			s.SolverSessions, s.IncrementalChecks, s.LearnedClausesRetained, s.GuardLiterals)
		if s.PortfolioRaces > 0 || s.WarmQueryHits > 0 {
			fmt.Printf("stats: portfolio-races=%d clauses-shared=%d clauses-imported=%d warm-hits=%d warm-clauses-seeded=%d\n",
				s.PortfolioRaces, s.PortfolioClausesShared, s.PortfolioClausesImported,
				s.WarmQueryHits, s.WarmClausesSeeded)
		}
		fmt.Printf("stats: covered-edges=%d covered-blocks=%d new-edges-per-round=%v\n",
			s.CoveredEdges, s.CoveredBlocks, s.NewEdgesPerRound)
		if s.FuzzExecs > 0 || s.FuzzSeedsPromoted > 0 {
			fmt.Printf("stats: fuzz-execs=%d fuzz-seeds-promoted=%d\n",
				s.FuzzExecs, s.FuzzSeedsPromoted)
		}
	}
	if *verbose {
		for _, in := range out.Incidents {
			fmt.Println("incident:", in)
		}
		for _, c := range out.Claims {
			fmt.Printf("claim: pc=%#x syscall-sim=%v\n", c.PC, c.Syscall)
		}
		if out.CrashDetail != "" {
			fmt.Println("detail:", out.CrashDetail)
		}
	}
}

func cellLabel(out *core.Outcome) string {
	o := eval.Classify(out)
	if o == "" {
		return "- (correctly unreachable)"
	}
	if o == bombs.OK {
		return "OK (solved)"
	}
	return string(o)
}
