// Command lbasm assembles LB64 assembly source files into an LBF binary
// image, optionally linking the guest C library, and can disassemble
// existing images.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/isa"
	"repro/internal/libc"
)

func main() {
	out := flag.String("o", "a.lbf", "output image path")
	withLibc := flag.Bool("libc", true, "link the guest C library")
	disasm := flag.String("d", "", "disassemble the given image instead of assembling")
	flag.Parse()

	if *disasm != "" {
		if err := disassemble(*disasm); err != nil {
			fmt.Fprintln(os.Stderr, "lbasm:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lbasm [-o out.lbf] [-libc=false] file.s ...")
		os.Exit(2)
	}
	var units []asm.Source
	if *withLibc {
		units = libc.All()
	}
	for _, path := range flag.Args() {
		text, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbasm:", err)
			os.Exit(1)
		}
		units = append(units, asm.Source{Name: path, Text: string(text)})
	}
	img, err := asm.Assemble(units...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbasm:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, img.Encode(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lbasm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d bytes, entry %#x, %d symbols\n",
		*out, img.Size(), img.Entry, len(img.Symbols))
}

func disassemble(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	img, err := bin.Decode(data)
	if err != nil {
		return err
	}
	sec, ok := img.Section(".text")
	if !ok {
		return fmt.Errorf("no .text section")
	}
	off := 0
	for off < len(sec.Data) {
		addr := sec.Addr + uint64(off)
		if name, found := symbolAt(img, addr); found {
			fmt.Printf("%s:\n", name)
		}
		in, n, err := isa.Decode(sec.Data[off:])
		if err != nil {
			return fmt.Errorf("at %#x: %w", addr, err)
		}
		fmt.Printf("  %#06x  %s\n", addr, in)
		off += n
	}
	return nil
}

func symbolAt(img *bin.Image, addr uint64) (string, bool) {
	for _, s := range img.Symbols {
		if s.Addr == addr {
			return s.Name, true
		}
	}
	return "", false
}
