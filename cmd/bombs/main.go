// Command bombs lists, inspects and detonates the logic-bomb benchmark:
// the 22 challenge programs of the paper's Table II plus the extras.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bombs"
)

func main() {
	show := flag.String("show", "", "print the named bomb's assembly source (Figure 2 listings)")
	run := flag.String("run", "", "run the named bomb")
	trigger := flag.Bool("trigger", false, "use the trigger input instead of the benign seed")
	flag.Parse()

	switch {
	case *show != "":
		b, ok := bombs.ByName(*show)
		if !ok {
			fmt.Fprintf(os.Stderr, "bombs: no bomb named %q\n", *show)
			os.Exit(1)
		}
		fmt.Printf("; %s — %s\n; challenge: %s\n", b.Name, b.Description, b.Challenge)
		fmt.Println(b.Source)

	case *run != "":
		b, ok := bombs.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "bombs: no bomb named %q\n", *run)
			os.Exit(1)
		}
		in := b.Benign
		if *trigger {
			in = b.Trigger
		}
		res, err := b.Run(in, bombs.WithMaxSteps(5_000_000))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bombs:", err)
			os.Exit(1)
		}
		fmt.Print(res.Stdout)
		fmt.Printf("input %+v -> status %d (%s), triggered=%v\n",
			in, res.ExitStatus, res.Reason, bombs.Triggered(res))

	default:
		fmt.Printf("%-10s %-12s %-28s %-10s %s\n", "NAME", "CATEGORY", "CHALLENGE", "TRIGGER", "DESCRIPTION")
		for _, b := range bombs.All() {
			fmt.Printf("%-10s %-12s %-28s %-10q %s\n",
				b.Name, b.Category, b.Challenge, b.Trigger.Argv1, b.Description)
		}
	}
}
