// Command concolicd serves concolic analyses over HTTP: clients submit
// {bomb, tool, workers, budget} jobs, the service runs them on a bounded
// worker pool over the shared engine, and job lifecycle, cancellation
// and Prometheus metrics are all exposed under /v1 (see README and
// DESIGN.md §10).
//
//	concolicd -addr :8344 -queue 64 -workers 4
//	curl -s localhost:8344/v1/jobs -d '{"bomb":"jump","tool":"reference"}'
//	curl -s localhost:8344/v1/jobs/job-000001
//	curl -s -X DELETE localhost:8344/v1/jobs/job-000001
//	curl -s localhost:8344/metrics
//
// SIGTERM (or SIGINT) begins a graceful drain: submissions get 503,
// accepted jobs finish, and past -drain-timeout the remaining jobs are
// cancelled through their contexts.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/warmstore"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queue := flag.Int("queue", service.DefaultQueueDepth,
		"queued-job bound; submissions beyond it receive HTTP 429")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long a drain waits for accepted jobs before cancelling them")
	warmDir := flag.String("warmstart", "",
		`warm-start store directory; jobs opt in with {"warmstart": true} (portfolio solver)`)
	flag.Parse()

	var warm *warmstore.Store
	if *warmDir != "" {
		w, err := warmstore.Open(*warmDir)
		if err != nil {
			log.Fatalf("concolicd: open warm-start store: %v", err)
		}
		warm = w
	}
	srv := service.New(service.Config{QueueDepth: *queue, Workers: *workers, Warm: warm})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	log.Printf("concolicd listening on %s (queue %d, workers %d)", *addr, *queue, w)

	select {
	case err := <-errc:
		log.Fatalf("concolicd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("concolicd: signal received, draining (timeout %v)", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil {
		httpSrv.Close()
	}
	if warm != nil {
		if err := warm.Close(); err != nil {
			log.Printf("concolicd: close warm-start store: %v", err)
		}
	}
	log.Printf("concolicd: drained, bye")
}
