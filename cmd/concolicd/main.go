// Command concolicd serves concolic analyses over HTTP: clients submit
// {bomb, tool, workers, budget} jobs, the service runs them on a bounded
// worker pool over the shared engine, and job lifecycle, cancellation,
// streaming progress and Prometheus metrics are all exposed under /v1
// (see README and DESIGN.md §10, §16).
//
//	concolicd -addr :8344 -queue 64 -workers 4
//	curl -s localhost:8344/v1/jobs -d '{"bomb":"jump","tool":"reference"}'
//	curl -s localhost:8344/v1/jobs/job-000001
//	curl -s localhost:8344/v1/jobs/job-000001/events        # SSE progress
//	curl -s -X DELETE localhost:8344/v1/jobs/job-000001
//	curl -s localhost:8344/metrics
//
// Fleet mode: give each replica a -store (jobs survive restarts), one
// shared -sharedcache directory (negation queries solved once fleet-
// wide), a -replica name and the sibling URLs in -peers (idle replicas
// steal queued jobs):
//
//	concolicd -addr :8344 -replica a -store /var/a -sharedcache /var/tier -peers http://localhost:8345
//	concolicd -addr :8345 -replica b -store /var/b -sharedcache /var/tier -peers http://localhost:8344
//
// SIGTERM (or SIGINT) begins a graceful drain: submissions get 503,
// accepted jobs finish, and past -drain-timeout the remaining jobs are
// cancelled through their contexts.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobstore"
	"repro/internal/service"
	"repro/internal/sharedcache"
	"repro/internal/solver"
	"repro/internal/warmstore"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	queue := flag.Int("queue", service.DefaultQueueDepth,
		"queued-job bound; submissions beyond it receive HTTP 429")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long a drain waits for accepted jobs before cancelling them")
	warmDir := flag.String("warmstart", "",
		`warm-start store directory; jobs opt in with {"warmstart": true} (portfolio solver)`)
	storeDir := flag.String("store", "",
		"job store directory; queued jobs and finished results survive restarts")
	sharedDir := flag.String("sharedcache", "",
		"cross-replica solver-cache tier directory (shared by the fleet)")
	replica := flag.String("replica", "",
		"this replica's name in a fleet (defaults to the listen address)")
	peers := flag.String("peers", "",
		"comma-separated sibling base URLs to steal queued jobs from")
	stealInterval := flag.Duration("steal-interval", service.DefaultStealInterval,
		"how often an idle replica polls its peers for work")
	stealLease := flag.Duration("steal-lease", service.DefaultStealLease,
		"how long a stolen job may run before being requeued")
	rate := flag.Float64("rate", 0,
		"per-tenant submissions per second (X-API-Key header; 0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "per-tenant submission burst (0 = 1)")
	tenantMax := flag.Int("tenant-max-active", 0,
		"per-tenant cap on queued+running jobs (0 = unlimited)")
	categories := flag.String("categories", "",
		"comma-separated bomb categories this replica serves, e.g. accuracy,scalability,extended (empty = all)")
	flag.Parse()

	var warm *warmstore.Store
	if *warmDir != "" {
		w, err := warmstore.Open(*warmDir)
		if err != nil {
			log.Fatalf("concolicd: open warm-start store: %v", err)
		}
		warm = w
	}
	var jobs *jobstore.Log
	if *storeDir != "" {
		jl, err := jobstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("concolicd: open job store: %v", err)
		}
		jobs = jl
	}
	var shared solver.QueryCache
	var tier *sharedcache.Tier
	if *sharedDir != "" {
		t, err := sharedcache.Open(*sharedDir)
		if err != nil {
			log.Fatalf("concolicd: open shared cache tier: %v", err)
		}
		tier = t
		shared = solver.SharedTier(t)
	}
	if *replica == "" {
		*replica = *addr
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	var catList []string
	for _, c := range strings.Split(*categories, ",") {
		if c = strings.TrimSpace(c); c != "" {
			catList = append(catList, c)
		}
	}

	srv := service.New(service.Config{
		QueueDepth:      *queue,
		Workers:         *workers,
		Warm:            warm,
		Jobs:            jobs,
		SharedCache:     shared,
		Replica:         *replica,
		Peers:           peerList,
		StealInterval:   *stealInterval,
		StealLease:      *stealLease,
		RatePerSec:      *rate,
		RateBurst:       *rateBurst,
		TenantMaxActive: *tenantMax,
		Categories:      catList,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	log.Printf("concolicd listening on %s (replica %s, queue %d, workers %d, peers %d)",
		*addr, *replica, *queue, w, len(peerList))

	select {
	case err := <-errc:
		log.Fatalf("concolicd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("concolicd: signal received, draining (timeout %v)", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil {
		httpSrv.Close()
	}
	if warm != nil {
		if err := warm.Close(); err != nil {
			log.Printf("concolicd: close warm-start store: %v", err)
		}
	}
	if jobs != nil {
		if err := jobs.Close(); err != nil {
			log.Printf("concolicd: close job store: %v", err)
		}
	}
	if tier != nil {
		if err := tier.Close(); err != nil {
			log.Printf("concolicd: close shared cache tier: %v", err)
		}
	}
	log.Printf("concolicd: drained, bye")
}
