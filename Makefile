GO ?= go

.PHONY: ci vet build race fuzz test test-short bench tables clean

# ci is the gate: static checks, build, the concurrency-sensitive
# packages under the race detector, short fuzz smokes on the solver
# cache key, the interning equivalence property, the COW memory
# (clone/write vs a deep-copy reference model), the incremental/
# fresh solver equivalence, the portfolio/fresh equivalence, the
# job-journal replay (against an in-memory reference model) and the
# symbolic-store weak-update image (against a concrete-memory reference
# model), then the full suite.
ci: vet build race fuzz test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...
	$(GO) build ./cmd/congolic ./examples/demo

race:
	$(GO) test -race -count=1 ./internal/sym/... ./internal/sat/... ./internal/bitblast/... ./internal/core/... ./internal/cover/... ./internal/mutate/... ./internal/solver/... ./internal/exchange/... ./internal/warmstore/... ./internal/service/... ./internal/mem/... ./internal/gos/... ./internal/lift/... ./internal/jobstore/... ./internal/sharedcache/... ./internal/bombs/... ./internal/symexec/...
	$(GO) test -race -count=1 -short ./internal/gofront/ ./internal/cliopts/ ./internal/target/ ./internal/suggest/
	$(GO) test -race -count=1 -run 'TestGridExtended' ./internal/eval/

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzCanonicalKey -fuzztime=5s ./internal/sym/
	$(GO) test -run '^$$' -fuzz FuzzInternEval -fuzztime=5s ./internal/sym/
	$(GO) test -run '^$$' -fuzz FuzzMemoryCOW -fuzztime=5s ./internal/mem/
	$(GO) test -run '^$$' -fuzz FuzzIncrementalEquivalence -fuzztime=5s ./internal/solver/
	$(GO) test -run '^$$' -fuzz FuzzPortfolioEquivalence -fuzztime=5s ./internal/solver/
	$(GO) test -run '^$$' -fuzz FuzzMutateDeterminism -fuzztime=5s ./internal/mutate/
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime=5s ./internal/jobstore/
	$(GO) test -run '^$$' -fuzz FuzzSymbolicWriteEquivalence -fuzztime=5s ./internal/symexec/

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkExploreParallel|BenchmarkSolverCacheHitRate' -benchtime 3x ./internal/core/...
	$(GO) test -run '^$$' -bench 'BenchmarkExploreCheckpointed|BenchmarkExploreFromScratch' -benchtime 3x ./internal/core/...
	$(GO) test -run '^$$' -bench 'BenchmarkMemClone|BenchmarkMemCloneWriteFault' ./internal/mem/...
	$(GO) test -run '^$$' -bench 'BenchmarkInputKey' ./internal/core/...
	$(GO) test -run '^$$' -bench 'BenchmarkCacheSolveHit|BenchmarkSolveUncached|BenchmarkCanonicalKey' ./internal/solver/...
	$(GO) test -run '^$$' -bench 'BenchmarkRoundFresh|BenchmarkRoundIncremental|BenchmarkRoundPortfolio' -benchtime 3x ./internal/solver/
	$(GO) test -run '^$$' -bench 'BenchmarkStressIncremental|BenchmarkStressPortfolio' -benchtime 1x ./internal/solver/
	BENCH6_OUT=$(CURDIR)/BENCH_6.json $(GO) test -run TestBench6Emit -count=1 ./internal/solver/
	BENCH7_OUT=$(CURDIR)/BENCH_7.json $(GO) test -run TestBench7Emit -count=1 ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkCanonicalKeyInterned|BenchmarkCanonicalKeyStable|BenchmarkInternConstruct' ./internal/sym/
	$(GO) test -run '^$$' -bench 'BenchmarkBitblastSharedDAG' -benchtime 3x ./internal/bitblast/

tables:
	$(GO) run ./cmd/evaltable -all

clean:
	$(GO) clean ./...
