// Package repro is a from-scratch Go reproduction of "Concolic Execution
// on Small-Size Binaries: Challenges and Empirical Study" (DSN 2017): an
// LB64 binary substrate (ISA, assembler, VM, guest OS, guest libc), a
// concolic execution engine with its own bitvector/SAT solver, the
// 22-bomb benchmark, and capability profiles reproducing the evaluated
// tools. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// the measured results.
package repro
