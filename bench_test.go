package repro_test

// Benchmark harness: one bench per table/figure of the paper, plus the
// ablation benches called out in DESIGN.md (D1-D5). Table II cells run
// under tools.FastBudgets so a bench iteration stays tractable; the
// full-budget numbers in EXPERIMENTS.md come from cmd/evaltable.

import (
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/solver"
	"repro/internal/symexec"
	"repro/internal/tools"
)

// BenchmarkTableI regenerates the challenge/error-stage mapping.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if eval.RenderTableI() == "" {
			b.Fatal("empty table")
		}
	}
}

// runCellBench runs one Table II cell with fast budgets.
func runCellBench(b *testing.B, profile tools.Profile, bomb string) {
	b.Helper()
	p := tools.FastBudgets(profile)
	bm, ok := bombs.ByName(bomb)
	if !ok {
		b.Fatalf("no bomb %s", bomb)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
		out := en.Explore(bm.Benign)
		_ = eval.Classify(out)
	}
}

// BenchmarkTableII covers a representative row per challenge for each
// tool column (the full grid is cmd/evaltable -table2).
func BenchmarkTableII(b *testing.B) {
	rows := []string{"time", "arglen", "stack", "file", "thread", "array1", "jump", "filename"}
	for _, p := range []tools.Profile{tools.BAP(), tools.Triton(), tools.Angr(), tools.AngrNoLib()} {
		p := p
		for _, row := range rows {
			row := row
			b.Run(p.Name()+"/"+row, func(b *testing.B) {
				runCellBench(b, p, row)
			})
		}
	}
}

// BenchmarkFigure3 regenerates the printf constraint-growth comparison.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		if r.PrintfTainted <= r.PlainTainted {
			b.Fatal("figure 3 shape violated")
		}
	}
}

// BenchmarkNegativeBomb regenerates the §V-C false-positive probe
// (Angr-NoLib side only; the reference side is exercised in tests).
func BenchmarkNegativeBomb(b *testing.B) {
	p := tools.FastBudgets(tools.AngrNoLib())
	bm, _ := bombs.ByName("negpow")
	for i := 0; i < b.N; i++ {
		en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
		out := en.Explore(bm.Benign)
		if out.Verdict == core.VerdictSolved {
			b.Fatal("negative bomb must not be solvable")
		}
	}
}

// BenchmarkReferenceEngine measures a full reference-engine crack of a
// representative bomb (the extension study's unit of work).
func BenchmarkReferenceEngine(b *testing.B) {
	p := tools.FastBudgets(tools.Reference())
	bm, _ := bombs.ByName("array1")
	for i := 0; i < b.N; i++ {
		en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
		if out := en.Explore(bm.Benign); out.Verdict != core.VerdictSolved {
			b.Fatalf("verdict %v", out.Verdict)
		}
	}
}

// ── Ablations (DESIGN.md D1-D5) ──────────────────────────────────────

// BenchmarkAblationMemoryModel (D1): the symbolic-array bomb under the
// three memory models.
func BenchmarkAblationMemoryModel(b *testing.B) {
	models := map[string]symexec.MemModel{
		"concrete": symexec.MemConcrete,
		"onelevel": symexec.MemOneLevel,
		"full":     symexec.MemFull,
	}
	for name, model := range models {
		model := model
		b.Run(name, func(b *testing.B) {
			p := tools.FastBudgets(tools.Reference())
			p.Caps.Sym.Mem = model
			bm, _ := bombs.ByName("array1")
			for i := 0; i < b.N; i++ {
				en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
				en.Explore(bm.Benign)
			}
		})
	}
}

// BenchmarkAblationExternalCalls (D2): tracing into sin vs summarizing it.
func BenchmarkAblationExternalCalls(b *testing.B) {
	run := func(b *testing.B, ext map[string]symexec.ExtKind) {
		p := tools.FastBudgets(tools.Reference())
		p.Caps.Sym.Externals = ext
		bm, _ := bombs.ByName("sin")
		for i := 0; i < b.N; i++ {
			en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
			en.Explore(bm.Benign)
		}
	}
	b.Run("trace", func(b *testing.B) { run(b, nil) })
	b.Run("summary", func(b *testing.B) {
		run(b, map[string]symexec.ExtKind{"fsin": symexec.ExtUnconstrained})
	})
}

// BenchmarkAblationShadowFS (D3): the covert file channel with and
// without shadow propagation.
func BenchmarkAblationShadowFS(b *testing.B) {
	run := func(b *testing.B, policy symexec.ChanPolicy) {
		p := tools.FastBudgets(tools.Reference())
		p.Caps.Sym.Spec.Files = policy
		bm, _ := bombs.ByName("file")
		for i := 0; i < b.N; i++ {
			en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
			en.Explore(bm.Benign)
		}
	}
	b.Run("shadow", func(b *testing.B) { run(b, symexec.ChanShadow) })
	b.Run("concrete", func(b *testing.B) { run(b, symexec.ChanConcrete) })
}

// BenchmarkAblationFPSolver (D4): the float bomb with the stochastic FP
// solver vs no FP theory.
func BenchmarkAblationFPSolver(b *testing.B) {
	run := func(b *testing.B, mode solver.FPMode) {
		p := tools.FastBudgets(tools.Reference())
		p.Caps.FP = mode
		bm, _ := bombs.ByName("float")
		for i := 0; i < b.N; i++ {
			en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
			en.Explore(bm.Benign)
		}
	}
	b.Run("search", func(b *testing.B) { run(b, solver.FPSearch) })
	b.Run("none", func(b *testing.B) { run(b, solver.FPNone) })
}

// BenchmarkAblationSearch (D5): generational (breadth-first) vs
// depth-first scheduling on the iterative-lengthening bomb.
func BenchmarkAblationSearch(b *testing.B) {
	run := func(b *testing.B, strategy core.SearchStrategy) {
		p := tools.FastBudgets(tools.Reference())
		p.Caps.Search = strategy
		bm, _ := bombs.ByName("arglen")
		for i := 0; i < b.N; i++ {
			en := core.New(bm.Image(), bm.BombAddr(), p.Caps)
			en.Explore(bm.Benign)
		}
	}
	b.Run("generational", func(b *testing.B) { run(b, core.SearchGenerational) })
	b.Run("dfs", func(b *testing.B) { run(b, core.SearchDFS) })
}

// TestHarnessSmoke keeps the root benchmark harness honest: one fast
// Table II cell end to end, without benchmarking.
func TestHarnessSmoke(t *testing.T) {
	p := tools.FastBudgets(tools.Angr())
	b, ok := bombs.ByName("array1")
	if !ok {
		t.Fatal("array1 missing")
	}
	en := core.New(b.Image(), b.BombAddr(), p.Caps)
	out := en.Explore(b.Benign)
	if got := eval.Classify(out); got != bombs.OK {
		t.Fatalf("Angr/array1 = %s, want OK", got)
	}
}
