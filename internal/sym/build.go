package sym

// Simplifying constructors. Every expression the executor builds goes
// through these, so constant subtrees fold away and the solver sees small
// terms. Simplification preserves Eval semantics exactly (property-tested).
//
// Results are hash-consed (see intern.go): building the same term twice
// returns the same pointer, so structural equality between
// constructor-built expressions is pointer equality and downstream
// per-node caches hit on shared subterms regardless of construction path.

// NewBin builds a binary operation, folding constants and applying cheap
// algebraic identities.
func NewBin(op BinOp, a, b Expr) Expr {
	w := a.Width()
	if op.IsCompare() {
		w = 1
	}
	if op == OpConcat {
		w = a.Width() + b.Width()
		if w > 64 {
			panic("sym: concat wider than 64 bits")
		}
	}

	ca, aConst := a.(*Const)
	cb, bConst := b.(*Const)
	if aConst && bConst {
		if op == OpConcat {
			return NewConst((ca.V<<uint(b.Width()))|cb.V, w)
		}
		return NewConst(evalBin(op, ca.V, cb.V, a.Width()), w)
	}

	// Identities with a constant on one side.
	if bConst {
		switch {
		case cb.V == 0 && (op == OpAdd || op == OpSub || op == OpOr ||
			op == OpXor || op == OpShl || op == OpLShr || op == OpAShr):
			return a
		case cb.V == 0 && (op == OpAnd || op == OpMul):
			return NewConst(0, w)
		case cb.V == mask(a.Width()) && op == OpAnd:
			return a
		case cb.V == 1 && op == OpMul:
			return a
		}
	}
	if aConst {
		switch {
		case ca.V == 0 && (op == OpAdd || op == OpOr || op == OpXor):
			return b
		case ca.V == 0 && (op == OpAnd || op == OpMul):
			return NewConst(0, w)
		case ca.V == mask(b.Width()) && op == OpAnd:
			return b
		case ca.V == 1 && op == OpMul:
			return b
		}
	}

	// x == x and friends on identical subtrees. Interning makes this
	// pointer check structural: any two constructor-built equal terms
	// share one node.
	if a == b {
		switch op {
		case OpEq, OpUle, OpSle:
			return True()
		case OpNe, OpUlt, OpSlt:
			return False()
		case OpXor, OpSub:
			return NewConst(0, w)
		case OpAnd, OpOr:
			return a
		}
	}

	return internBin(op, a, b, w)
}

// NewNot builds bitwise negation.
func NewNot(a Expr) Expr {
	if c, ok := a.(*Const); ok {
		return NewConst(^c.V, c.W)
	}
	// ~~x = x
	if u, ok := a.(*Un); ok && u.Op == OpNot {
		return u.A
	}
	return internUn(OpNot, a, 0, 0, a.Width())
}

// NewNeg builds two's-complement negation.
func NewNeg(a Expr) Expr {
	if c, ok := a.(*Const); ok {
		return NewConst(-c.V, c.W)
	}
	return internUn(OpNeg, a, 0, 0, a.Width())
}

// NewBoolNot negates a width-1 expression.
func NewBoolNot(a Expr) Expr {
	if a.Width() != 1 {
		panic("sym: BoolNot on non-boolean")
	}
	if c, ok := a.(*Const); ok {
		return NewConst(c.V^1, 1)
	}
	if u, ok := a.(*Un); ok && u.Op == OpBoolNot {
		return u.A
	}
	// Push negation through integer comparisons: !(a == b) -> a != b,
	// !(a <u b) -> b <=u a. Float comparisons stay wrapped because NaN
	// breaks the duality.
	if b, ok := a.(*Bin); ok {
		switch b.Op {
		case OpEq:
			return NewBin(OpNe, b.A, b.B)
		case OpNe:
			return NewBin(OpEq, b.A, b.B)
		case OpUlt:
			return NewBin(OpUle, b.B, b.A)
		case OpUle:
			return NewBin(OpUlt, b.B, b.A)
		case OpSlt:
			return NewBin(OpSle, b.B, b.A)
		case OpSle:
			return NewBin(OpSlt, b.B, b.A)
		}
	}
	return internUn(OpBoolNot, a, 0, 0, 1)
}

// NewZExt zero-extends a to w bits.
func NewZExt(a Expr, w int) Expr {
	if a.Width() == w {
		return a
	}
	if a.Width() > w {
		return NewExtract(a, w-1, 0)
	}
	if c, ok := a.(*Const); ok {
		return NewConst(c.V, w)
	}
	return internUn(OpZExt, a, w, 0, w)
}

// NewSExt sign-extends a to w bits.
func NewSExt(a Expr, w int) Expr {
	if a.Width() == w {
		return a
	}
	if a.Width() > w {
		return NewExtract(a, w-1, 0)
	}
	if c, ok := a.(*Const); ok {
		return NewConst(signExtend(c.V, c.W), w)
	}
	return internUn(OpSExt, a, w, 0, w)
}

// NewExtract takes bits hi..lo (inclusive) of a.
func NewExtract(a Expr, hi, lo int) Expr {
	if hi < lo || hi >= a.Width() || lo < 0 {
		panic("sym: bad extract range")
	}
	w := hi - lo + 1
	if w == a.Width() {
		return a
	}
	if c, ok := a.(*Const); ok {
		return NewConst(c.V>>uint(lo), w)
	}
	// extract of extract composes.
	if u, ok := a.(*Un); ok && u.Op == OpExtract {
		return NewExtract(u.A, u.Arg2+hi, u.Arg2+lo)
	}
	// extract of zext: if fully inside the original, drop the extension.
	if u, ok := a.(*Un); ok && u.Op == OpZExt {
		iw := u.A.Width()
		if hi < iw {
			return NewExtract(u.A, hi, lo)
		}
		if lo >= iw {
			return NewConst(0, w)
		}
	}
	// extract of concat: take from the matching half when aligned.
	if b, ok := a.(*Bin); ok && b.Op == OpConcat {
		bw := b.B.Width()
		if hi < bw {
			return NewExtract(b.B, hi, lo)
		}
		if lo >= bw {
			return NewExtract(b.A, hi-bw, lo-bw)
		}
	}
	return internUn(OpExtract, a, hi, lo, w)
}

// NewConcat concatenates a (high bits) with b (low bits).
func NewConcat(a, b Expr) Expr {
	return NewBin(OpConcat, a, b)
}

// NewITE builds if-then-else over a width-1 condition.
func NewITE(cond, then, els Expr) Expr {
	if cond.Width() != 1 {
		panic("sym: ITE condition must be width 1")
	}
	if then.Width() != els.Width() {
		panic("sym: ITE branch width mismatch")
	}
	if c, ok := cond.(*Const); ok {
		if c.V&1 == 1 {
			return then
		}
		return els
	}
	if then == els {
		return then
	}
	return internITE(cond, then, els)
}

// NewI2F converts a signed 64-bit integer to f64 bits.
func NewI2F(a Expr) Expr {
	if c, ok := a.(*Const); ok {
		return NewConst(Eval(&Un{Op: OpI2F, A: c, w: 64}, nil), 64)
	}
	return internUn(OpI2F, a, 0, 0, 64)
}

// NewF2I truncates f64 bits to a signed 64-bit integer.
func NewF2I(a Expr) Expr {
	if c, ok := a.(*Const); ok {
		return NewConst(Eval(&Un{Op: OpF2I, A: c, w: 64}, nil), 64)
	}
	return internUn(OpF2I, a, 0, 0, 64)
}

// Bytes splits a wide expression into its little-endian byte expressions.
func Bytes(e Expr) []Expr {
	n := e.Width() / 8
	if e.Width()%8 != 0 {
		panic("sym: Bytes on non-byte-width expression")
	}
	out := make([]Expr, n)
	for i := 0; i < n; i++ {
		out[i] = NewExtract(e, i*8+7, i*8)
	}
	return out
}

// FromBytes assembles little-endian byte expressions into one value.
func FromBytes(bytes []Expr) Expr {
	if len(bytes) == 0 {
		panic("sym: FromBytes of nothing")
	}
	e := bytes[len(bytes)-1]
	for i := len(bytes) - 2; i >= 0; i-- {
		e = NewConcat(e, bytes[i])
	}
	return e
}
