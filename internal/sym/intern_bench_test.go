package sym

import "testing"

// benchDeepSystem builds a constraint system over a deep shared chain —
// the shape of an engine negation query late in a run: a long register
// dataflow chain compared against several constants.
func benchDeepSystem(depth, constraints int) []Expr {
	e := Expr(NewVar("x", 64))
	for i := 0; i < depth; i++ {
		e = NewBin(OpAdd, NewBin(OpMul, e, NewVar("k", 64)), NewConst(uint64(i)+1, 64))
	}
	sys := make([]Expr, constraints)
	for i := range sys {
		sys[i] = NewBin(OpEq, e, NewConst(uint64(i)*977+5, 64))
	}
	return sys
}

// BenchmarkCanonicalKeyInterned measures the interned-id fast path: one
// id read plus an 8-byte append per constraint, independent of term
// depth. Compare against BenchmarkCanonicalKeyStable — the digest walk
// the key was computed with before hash-consing.
func BenchmarkCanonicalKeyInterned(b *testing.B) {
	sys := benchDeepSystem(200, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := CanonicalKey(sys); len(k) != 1+8*len(sys) {
			b.Fatalf("key length %d", len(k))
		}
	}
}

// BenchmarkCanonicalKeyStable measures the sha-256 structural walk on
// the same system — the pre-interning cost of every cache lookup, now
// only the arena-full fallback.
func BenchmarkCanonicalKeyStable(b *testing.B) {
	sys := benchDeepSystem(200, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k := StableKey(sys); len(k) != 32 {
			b.Fatalf("key length %d", len(k))
		}
	}
}

// BenchmarkInternConstruct measures raw constructor throughput with the
// arena on the hot path: half the calls are fresh structures (misses),
// half rebuild the previous term (hits).
func BenchmarkInternConstruct(b *testing.B) {
	x := NewVar("x", 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewBin(OpXor, x, NewConst(uint64(i%4096), 64))
		_ = NewBin(OpAdd, e, e)
	}
}
