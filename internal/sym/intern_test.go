package sym

import (
	"strings"
	"testing"
)

// TestInternPointerIdentity is the arena's core contract: building the
// same term through fresh constructor calls returns the same pointer,
// and distinct terms get distinct pointers.
func TestInternPointerIdentity(t *testing.T) {
	build := func() Expr {
		x := NewVar("x", 32)
		return NewBin(OpAdd, NewBin(OpMul, x, NewConst(3, 32)), NewConst(7, 32))
	}
	a, b := build(), build()
	if a != b {
		t.Fatal("two constructor chains over the same structure returned distinct pointers")
	}
	if !Interned(a) || InternID(a) == 0 {
		t.Error("constructor result is not interned")
	}
	c := NewBin(OpAdd, NewBin(OpMul, NewVar("x", 32), NewConst(3, 32)), NewConst(8, 32))
	if a == c {
		t.Error("distinct terms interned to one pointer")
	}
	if InternID(a) == InternID(c) {
		t.Error("distinct terms share an intern id")
	}

	// Width participates in identity.
	if NewVar("x", 32) == Expr(NewVar("x", 64)) {
		t.Error("vars of different widths interned together")
	}
	if NewConst(5, 8) == NewConst(5, 16) {
		t.Error("consts of different widths interned together")
	}
}

// TestInternDigestAndTreeNodes checks the per-node metadata stamped at
// construction: digests are non-zero and structural, tree counts follow
// the tree (not the DAG).
func TestInternDigestAndTreeNodes(t *testing.T) {
	x := NewVar("x", 64)
	e := NewBin(OpXor, x, NewConst(1, 64))
	for i := 0; i < 10; i++ {
		// e*e doubles the tree while adding one DAG node per level.
		e = NewBin(OpMul, e, e)
	}
	if Digest(e) == 0 {
		t.Fatal("zero digest on interned node")
	}
	e2 := NewBin(OpMul, e, e) // one more level, fresh path
	if Digest(e2) == 0 || Digest(e2) == Digest(e) {
		t.Error("digest did not change with structure")
	}
	// Tree count: leaf pair (x ^ 1) is 3 nodes, each level is 2n+1.
	want := uint64(3)
	for i := 0; i < 10; i++ {
		want = 2*want + 1
	}
	if got := TreeNodes(e); got != want {
		t.Errorf("TreeNodes = %d, want %d", got, want)
	}
	if sz := Size(e); sz != 13 {
		t.Errorf("DAG size = %d, want 13", sz)
	}
}

// TestArenaStatsCounters watches the snapshot counters move: a fresh
// term is a miss, a rebuild is a hit.
func TestArenaStatsCounters(t *testing.T) {
	before := ArenaSnapshot()
	v := NewVar("arena-stats-probe", 32) // unique name: guaranteed miss
	mid := ArenaSnapshot()
	if mid.Misses <= before.Misses {
		t.Error("fresh var did not count as a miss")
	}
	if mid.Size <= before.Size {
		t.Error("fresh var did not grow the arena")
	}
	_ = NewVar("arena-stats-probe", 32)
	after := ArenaSnapshot()
	if after.Hits <= mid.Hits {
		t.Error("rebuilding the var did not count as a hit")
	}
	if after.Size != mid.Size {
		t.Error("rebuilding the var grew the arena")
	}
	if r := after.HitRate(); r <= 0 || r >= 1 {
		t.Errorf("hit rate %v outside (0,1) after mixed traffic", r)
	}
	_ = v
}

// TestInternRawTree canonicalizes a struct-literal tree and checks it
// lands on the very node the constructors would build.
func TestInternRawTree(t *testing.T) {
	raw := &Bin{
		Op: OpAdd,
		A:  &Var{Name: "y", W: 16},
		B:  &Const{W: 16, V: 9},
		w:  16,
	}
	if Interned(raw) {
		t.Fatal("struct literal is interned")
	}
	canon := Intern(raw)
	if !Interned(canon) {
		t.Fatal("Intern returned an un-interned node")
	}
	if built := NewBin(OpAdd, NewVar("y", 16), NewConst(9, 16)); canon != built {
		t.Error("Intern and the constructors disagree on the canonical node")
	}
	// Structure preserved exactly.
	if raw.String() != canon.String() {
		t.Errorf("Intern changed the term: %s -> %s", raw, canon)
	}
	if Intern(canon) != canon {
		t.Error("Intern of an interned node is not the identity")
	}
}

// TestArenaCapFallback fills a tiny arena and checks the degradation
// path: constructions keep working un-interned, digests stay
// precomputed, and CanonicalKey switches to the stable namespace.
func TestArenaCapFallback(t *testing.T) {
	resetArena(4)
	t.Cleanup(func() { resetArena(DefaultArenaCap) })

	var last Expr
	for i := uint64(0); i < 16; i++ {
		last = NewConst(i, 32)
	}
	s := ArenaSnapshot()
	if s.Fallbacks == 0 {
		t.Fatal("no fallbacks after exceeding the cap")
	}
	if s.Size > 4 {
		t.Errorf("arena size %d exceeds cap 4", s.Size)
	}
	if Interned(last) {
		t.Error("node created past the cap is interned")
	}
	if Digest(last) == 0 {
		t.Error("fallback node lost its precomputed digest")
	}
	key := CanonicalKey([]Expr{last})
	if !strings.HasPrefix(key, "s") || len(key) != 33 {
		t.Errorf("full-arena key %q not in the stable namespace", key)
	}
	// Keys from the two namespaces never collide: 'i' vs 's' prefix.
	if interned := CanonicalKey([]Expr{NewConst(0, 32)}); interned[0] != 'i' {
		t.Errorf("interned key %q not in the id namespace", interned)
	}
}

// TestEvalDeepSharedDAG evaluates a 2^200-node tree that is 600-odd
// distinct DAG nodes — the shape that hung model minimization before
// Eval memoized shared subterms. Must complete (and fast).
func TestEvalDeepSharedDAG(t *testing.T) {
	x := NewVar("x", 64)
	e := NewBin(OpXor, x, NewConst(0x1234, 64))
	for i := 0; i < 200; i++ {
		e = NewBin(OpMul, e, e)
		e = NewBin(OpAdd, e, NewConst(uint64(i)+1, 64))
	}
	env := map[string]uint64{"x": 0xdeadbeef}
	v1 := Eval(e, env)
	if v2 := Eval(e, env); v2 != v1 {
		t.Errorf("repeated Eval differs: %#x vs %#x", v1, v2)
	}
	if TreeNodes(e) != ^uint64(0) {
		t.Error("tree count did not saturate on a 2^200-node tree")
	}
	// The memoized result must match a by-hand fold of the same chain.
	want := (uint64(0xdeadbeef) ^ 0x1234)
	for i := 0; i < 200; i++ {
		want = want*want + uint64(i) + 1
	}
	if v1 != want {
		t.Errorf("Eval = %#x, want %#x", v1, want)
	}
}
