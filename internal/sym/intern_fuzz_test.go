package sym

import (
	"testing"
)

// FuzzInternEval is the interning equivalence fuzzer: for arbitrary raw
// expression systems, the canonical (hash-consed) build must be
// observationally identical to the unshared struct-literal build — same
// Eval under concrete environments, same CanonicalKey/StableKey, same
// SMT-LIB printout. This is the property that lets every layer intern
// freely without risking verdict or golden-output drift.
//
// Eval and SMTLib walk trees (exponential on shared DAGs), so those
// comparisons are gated on a tree-size bound; key and digest
// comparisons run on everything, including 2^60-node doubling chains.
func FuzzInternEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{2, 5, 0, 0, 5, 1, 0, 0})
	f.Add([]byte{6, 0, 0, 60, 5, 0, 0, 0}) // 2^60-node shared tree
	f.Add([]byte{3, 2, 0, 9, 5, 1, 0, 0})  // unary chain
	f.Add([]byte{4, 0, 1, 2, 5, 3, 0, 0})  // ITE
	f.Add([]byte{0, 2, 0, 7, 2, 13, 1, 1, 5, 1, 0, 0})
	// Two duplicate-copy ITEs under one Bin: caught StableKey being
	// sensitive to the input's sharing pattern before it hash-consed
	// locally.
	f.Add([]byte("C000C000A012"))

	f.Fuzz(func(t *testing.T, data []byte) {
		raw := buildSystem(data, 0)
		shared := make([]Expr, len(raw))
		for i, e := range raw {
			shared[i] = Intern(e)
			if !Interned(shared[i]) {
				t.Fatalf("constraint %d not interned (arena full mid-fuzz?)", i)
			}
			if Digest(raw[i]) != Digest(shared[i]) {
				t.Errorf("constraint %d: digest differs raw vs interned", i)
			}
			if TreeNodes(raw[i]) != TreeNodes(shared[i]) {
				t.Errorf("constraint %d: tree count differs raw vs interned", i)
			}
		}
		if k1, k2 := CanonicalKey(raw), CanonicalKey(shared); k1 != k2 {
			t.Error("CanonicalKey differs between raw and interned builds")
		}
		if s1, s2 := StableKey(raw), StableKey(shared); s1 != s2 {
			t.Error("StableKey differs between raw and interned builds")
		}

		var total uint64
		for _, e := range raw {
			total = satAdd(total, TreeNodes(e))
		}
		if total > 1<<15 {
			return // tree walks below would blow up on shared DAGs
		}
		envs := []map[string]uint64{
			nil,
			{"seed": 0xa5, "argv1!0": 42, "argv1!1": 7, "env!time": 1_700_000_000, "env!pid": 1234},
		}
		for i := range raw {
			for _, env := range envs {
				if v1, v2 := Eval(raw[i], env), Eval(shared[i], env); v1 != v2 {
					t.Errorf("constraint %d: Eval %d (raw) vs %d (interned)", i, v1, v2)
				}
			}
			if raw[i].String() != shared[i].String() {
				t.Errorf("constraint %d: String differs raw vs interned", i)
			}
		}
		if p1, p2 := SMTLib(raw), SMTLib(shared); p1 != p2 {
			t.Error("SMT-LIB printout differs between raw and interned builds")
		}
	})
}
