package sym

// Hash-consed expression arena. Every constructor-built node is interned
// in a process-wide structural table, so structural equality between
// constructor-built expressions IS pointer equality: building the same
// term twice — in the same goroutine or from concurrent engine workers —
// returns the same *Const/*Var/*Bin/*Un/*ITE pointer. Each interned node
// carries a precomputed 64-bit structural digest, a saturating tree-node
// count and a unique intern id, all assigned exactly once at
// construction.
//
// The invariant the rest of the pipeline builds on:
//
//   - sym.CanonicalKey is O(1) per constraint (it concatenates intern
//     ids instead of re-walking the DAG);
//   - bitblast.Encoder's per-node CNF cache hits on structurally equal
//     subterms even when they were built through different paths;
//   - the engine's flip-dedup keys use digests instead of O(tree)
//     String() renderings.
//
// Identity is exact, never probabilistic: the table is keyed on full
// structural keys (operator, width, arguments, canonical child
// pointers), so two digests colliding can never merge distinct terms —
// the digest only picks the shard and seeds fast hashing downstream.
//
// Concurrency and determinism: the table is sharded 64 ways, each shard
// behind its own RWMutex, so the parallel engine's batch workers share
// one arena without a global bottleneck. Interning is a pure function of
// structure — whichever worker gets there first creates the node, and
// every later builder of the same term receives that pointer — so batch-
// synchronous replay stays deterministic: nothing observable depends on
// arrival order (intern ids are compared only for equality, never for
// order).
//
// The arena is append-only and capped: past ArenaCap nodes, constructors
// fall back to fresh un-interned nodes (digests still precomputed) and
// every consumer degrades gracefully to its structural slow path. Nodes
// built as raw struct literals (tests, fuzzers) are likewise un-interned
// until passed through Intern.

import (
	"sync"
	"sync/atomic"
)

// hc is the hash-consing metadata embedded in every node. id is the
// unique intern id (0 = not interned), dig the 64-bit structural digest
// (0 = not yet computed; computed digests are never 0), tn the
// saturating tree-node count (0 = unknown).
type hc struct {
	id  uint64
	dig uint64
	tn  uint64
}

// meta returns the node's embedded metadata, or nil for foreign Expr
// implementations.
func meta(e Expr) *hc {
	switch t := e.(type) {
	case *Const:
		return &t.hc
	case *Var:
		return &t.hc
	case *Bin:
		return &t.hc
	case *Un:
		return &t.hc
	case *ITE:
		return &t.hc
	}
	return nil
}

// Interned reports whether e is the canonical arena node for its
// structure. For two interned expressions, e1 == e2 iff they are
// structurally equal.
func Interned(e Expr) bool {
	m := meta(e)
	return m != nil && m.id != 0
}

// InternID returns e's unique intern id, or 0 when e is not interned.
// Equal ids mean structurally equal terms; ids are process-local and
// compared only for equality.
func InternID(e Expr) uint64 {
	if m := meta(e); m != nil {
		return m.id
	}
	return 0
}

// ── structural digest ────────────────────────────────────────────────

// Digest kind tags keep the node spaces disjoint.
const (
	digConst uint64 = 0x9ae16a3b2f90404f
	digVar   uint64 = 0xc3a5c85c97cb3127
	digBin   uint64 = 0xb492b66fbe98f273
	digUn    uint64 = 0x9ddfea08eb382d69
	digITE   uint64 = 0xa0761d6478bd642f
)

// mix64 is the splitmix64 finalizer: full-avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// digMix folds one word into a running digest.
func digMix(h, v uint64) uint64 {
	return mix64(h ^ (v*0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// digDone makes a finished digest non-zero (0 is the "unset" sentinel).
func digDone(h uint64) uint64 {
	if h == 0 {
		return 1
	}
	return h
}

func digestConst(w int, v uint64) uint64 {
	return digDone(digMix(digMix(digConst, uint64(w)), v))
}

func digestVar(name string, w int) uint64 {
	h := digMix(digVar, uint64(w))
	// FNV-1a over the name, folded through the mixer.
	nh := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		nh ^= uint64(name[i])
		nh *= 1099511628211
	}
	return digDone(digMix(h, nh))
}

func digestBin(op BinOp, w int, da, db uint64) uint64 {
	h := digMix(digBin, uint64(op))
	h = digMix(h, uint64(w))
	h = digMix(h, da)
	return digDone(digMix(h, db))
}

func digestUn(op UnOp, w, arg, arg2 int, da uint64) uint64 {
	h := digMix(digUn, uint64(op))
	h = digMix(h, uint64(w))
	h = digMix(h, uint64(int64(arg)))
	h = digMix(h, uint64(int64(arg2)))
	return digDone(digMix(h, da))
}

func digestITE(dc, dt, de uint64) uint64 {
	h := digMix(digITE, dc)
	h = digMix(h, dt)
	return digDone(digMix(h, de))
}

// satAdd is a saturating tree-node-count add.
func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return ^uint64(0)
	}
	return s
}

// Digest returns e's 64-bit structural digest: a pure function of
// structure, identical across processes and independent of sharing. For
// interned (and cap-overflow) nodes it is a field read; for raw trees it
// is computed by a memoized walk. Distinct structures collide with
// probability ~2^-64 per pair; consumers needing exactness compare
// intern ids or CanonicalKeys instead.
func Digest(e Expr) uint64 {
	if m := meta(e); m != nil && m.dig != 0 {
		return m.dig
	}
	return digestWalk(e, make(map[Expr]uint64))
}

func digestWalk(e Expr, memo map[Expr]uint64) uint64 {
	if e == nil {
		return digDone(0)
	}
	if m := meta(e); m != nil && m.dig != 0 {
		return m.dig
	}
	if d, ok := memo[e]; ok {
		return d
	}
	var d uint64
	switch t := e.(type) {
	case *Const:
		d = digestConst(t.W, t.V)
	case *Var:
		d = digestVar(t.Name, t.W)
	case *Bin:
		d = digestBin(t.Op, t.w, digestWalk(t.A, memo), digestWalk(t.B, memo))
	case *Un:
		d = digestUn(t.Op, t.w, t.Arg, t.Arg2, digestWalk(t.A, memo))
	case *ITE:
		d = digestITE(digestWalk(t.Cond, memo),
			digestWalk(t.Then, memo), digestWalk(t.Else, memo))
	default:
		d = digDone(digMix(1, uint64(len(memo))))
	}
	memo[e] = d
	return d
}

// TreeNodes returns the number of nodes in e viewed as a tree (shared
// subterms counted at every occurrence), saturating at MaxUint64. The
// ratio TreeNodes/Size measures how much duplication hash-consing
// removed. Precomputed for interned nodes; a memoized walk otherwise.
func TreeNodes(e Expr) uint64 {
	if m := meta(e); m != nil && m.tn != 0 {
		return m.tn
	}
	return treeWalk(e, make(map[Expr]uint64))
}

func treeWalk(e Expr, memo map[Expr]uint64) uint64 {
	if e == nil {
		return 0
	}
	if m := meta(e); m != nil && m.tn != 0 {
		return m.tn
	}
	if n, ok := memo[e]; ok {
		return n
	}
	var n uint64 = 1
	switch t := e.(type) {
	case *Bin:
		n = satAdd(n, satAdd(treeWalk(t.A, memo), treeWalk(t.B, memo)))
	case *Un:
		n = satAdd(n, treeWalk(t.A, memo))
	case *ITE:
		n = satAdd(n, satAdd(treeWalk(t.Cond, memo),
			satAdd(treeWalk(t.Then, memo), treeWalk(t.Else, memo))))
	}
	memo[e] = n
	return n
}

// ── the arena ────────────────────────────────────────────────────────

// DefaultArenaCap bounds interned nodes process-wide. Past it,
// constructors return fresh un-interned nodes (digests still computed)
// and consumers use their structural slow paths; long-lived services
// stay memory-bounded instead of growing without limit.
const DefaultArenaCap = 4 << 20

const shardCount = 64 // power of two

// Structural keys. Child fields hold canonical (interned) pointers, so
// key equality is exact structural equality — the digest never decides
// identity, only the shard.
type constKey struct {
	w int
	v uint64
}
type varKey struct {
	name string
	w    int
}
type binKey struct {
	op   BinOp
	w    int
	a, b Expr
}
type unKey struct {
	op        UnOp
	w         int
	arg, arg2 int
	a         Expr
}
type iteKey struct {
	c, t, e Expr
}

type shard struct {
	mu     sync.RWMutex
	consts map[constKey]*Const
	vars   map[varKey]*Var
	bins   map[binKey]*Bin
	uns    map[unKey]*Un
	ites   map[iteKey]*ITE
}

type arenaT struct {
	shards [shardCount]shard
	cap    uint64

	size      atomic.Uint64 // interned nodes
	hits      atomic.Uint64 // constructions deduplicated onto an existing node
	misses    atomic.Uint64 // constructions that created a new node
	fallbacks atomic.Uint64 // constructions past the cap (un-interned)
	nextID    atomic.Uint64
}

func newArena(capacity uint64) *arenaT {
	a := &arenaT{cap: capacity}
	for i := range a.shards {
		s := &a.shards[i]
		s.consts = make(map[constKey]*Const)
		s.vars = make(map[varKey]*Var)
		s.bins = make(map[binKey]*Bin)
		s.uns = make(map[unKey]*Un)
		s.ites = make(map[iteKey]*ITE)
	}
	return a
}

var arena = newArena(DefaultArenaCap)

// ArenaStats is a snapshot of the process-wide interning counters.
type ArenaStats struct {
	// Size is the number of live interned nodes.
	Size uint64
	// Hits counts constructions that reused an existing node — the
	// number of duplicate nodes hash-consing eliminated.
	Hits uint64
	// Misses counts constructions that interned a new node.
	Misses uint64
	// Fallbacks counts constructions refused because the arena was full.
	Fallbacks uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no constructions.
func (s ArenaStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// ArenaSnapshot reads the interning counters. Counters are monotone, so
// two snapshots bracket the interning work of the interval between them.
func ArenaSnapshot() ArenaStats {
	return ArenaStats{
		Size:      arena.size.Load(),
		Hits:      arena.hits.Load(),
		Misses:    arena.misses.Load(),
		Fallbacks: arena.fallbacks.Load(),
	}
}

// resetArena replaces the arena; only for tests and benchmarks that
// need a cold table. Nodes interned before the reset keep working (their
// metadata is immutable) but are no longer canonical: expressions built
// before and after a reset must not be mixed in one comparison.
func resetArena(capacity uint64) {
	arena = newArena(capacity)
	// ids keep incrementing monotonically across resets, so a key built
	// from old ids can never alias a key built from new ones.
}

func (a *arenaT) shardFor(dig uint64) *shard {
	return &a.shards[(dig>>7)&(shardCount-1)]
}

// room reports whether a new node may still be interned.
func (a *arenaT) room() bool { return a.size.Load() < a.cap }

// admit stamps a freshly created node and accounts for it. Must be
// called with the shard lock held, after inserting into the map.
func (a *arenaT) admit(m *hc, dig, tn uint64) {
	m.dig = dig
	m.tn = tn
	m.id = a.nextID.Add(1)
	a.size.Add(1)
	a.misses.Add(1)
}

// internConst returns the canonical constant node.
func internConst(w int, v uint64) *Const {
	dig := digestConst(w, v)
	sh := arena.shardFor(dig)
	key := constKey{w: w, v: v}
	sh.mu.RLock()
	n, ok := sh.consts[key]
	sh.mu.RUnlock()
	if ok {
		arena.hits.Add(1)
		return n
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.consts[key]; ok {
		arena.hits.Add(1)
		return n
	}
	n = &Const{W: w, V: v}
	if !arena.room() {
		arena.fallbacks.Add(1)
		n.hc = hc{dig: dig, tn: 1}
		return n
	}
	sh.consts[key] = n
	arena.admit(&n.hc, dig, 1)
	return n
}

// internVar returns the canonical variable node.
func internVar(name string, w int) *Var {
	dig := digestVar(name, w)
	sh := arena.shardFor(dig)
	key := varKey{name: name, w: w}
	sh.mu.RLock()
	n, ok := sh.vars[key]
	sh.mu.RUnlock()
	if ok {
		arena.hits.Add(1)
		return n
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.vars[key]; ok {
		arena.hits.Add(1)
		return n
	}
	n = &Var{Name: name, W: w}
	if !arena.room() {
		arena.fallbacks.Add(1)
		n.hc = hc{dig: dig, tn: 1}
		return n
	}
	sh.vars[key] = n
	arena.admit(&n.hc, dig, 1)
	return n
}

// internBin returns the canonical binary node over interned children,
// or a fresh un-interned node (digest still precomputed) when a child
// is not canonical or the arena is full.
func internBin(op BinOp, a, b Expr, w int) *Bin {
	ma, mb := meta(a), meta(b)
	if ma == nil || mb == nil || ma.id == 0 || mb.id == 0 {
		n := &Bin{Op: op, A: a, B: b, w: w}
		if ma != nil && mb != nil && ma.dig != 0 && mb.dig != 0 {
			n.hc = hc{
				dig: digestBin(op, w, ma.dig, mb.dig),
				tn:  satAdd(1, satAdd(ma.tn, mb.tn)),
			}
		}
		return n
	}
	dig := digestBin(op, w, ma.dig, mb.dig)
	sh := arena.shardFor(dig)
	key := binKey{op: op, w: w, a: a, b: b}
	sh.mu.RLock()
	n, ok := sh.bins[key]
	sh.mu.RUnlock()
	if ok {
		arena.hits.Add(1)
		return n
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.bins[key]; ok {
		arena.hits.Add(1)
		return n
	}
	n = &Bin{Op: op, A: a, B: b, w: w}
	tn := satAdd(1, satAdd(ma.tn, mb.tn))
	if !arena.room() {
		arena.fallbacks.Add(1)
		n.hc = hc{dig: dig, tn: tn}
		return n
	}
	sh.bins[key] = n
	arena.admit(&n.hc, dig, tn)
	return n
}

// internUn returns the canonical unary node (see internBin).
func internUn(op UnOp, a Expr, arg, arg2, w int) *Un {
	ma := meta(a)
	if ma == nil || ma.id == 0 {
		n := &Un{Op: op, A: a, Arg: arg, Arg2: arg2, w: w}
		if ma != nil && ma.dig != 0 {
			n.hc = hc{
				dig: digestUn(op, w, arg, arg2, ma.dig),
				tn:  satAdd(1, ma.tn),
			}
		}
		return n
	}
	dig := digestUn(op, w, arg, arg2, ma.dig)
	sh := arena.shardFor(dig)
	key := unKey{op: op, w: w, arg: arg, arg2: arg2, a: a}
	sh.mu.RLock()
	n, ok := sh.uns[key]
	sh.mu.RUnlock()
	if ok {
		arena.hits.Add(1)
		return n
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.uns[key]; ok {
		arena.hits.Add(1)
		return n
	}
	n = &Un{Op: op, A: a, Arg: arg, Arg2: arg2, w: w}
	tn := satAdd(1, ma.tn)
	if !arena.room() {
		arena.fallbacks.Add(1)
		n.hc = hc{dig: dig, tn: tn}
		return n
	}
	sh.uns[key] = n
	arena.admit(&n.hc, dig, tn)
	return n
}

// internITE returns the canonical if-then-else node (see internBin).
func internITE(cond, then, els Expr) *ITE {
	mc, mt, me := meta(cond), meta(then), meta(els)
	if mc == nil || mt == nil || me == nil || mc.id == 0 || mt.id == 0 || me.id == 0 {
		n := &ITE{Cond: cond, Then: then, Else: els}
		if mc != nil && mt != nil && me != nil &&
			mc.dig != 0 && mt.dig != 0 && me.dig != 0 {
			n.hc = hc{
				dig: digestITE(mc.dig, mt.dig, me.dig),
				tn:  satAdd(1, satAdd(mc.tn, satAdd(mt.tn, me.tn))),
			}
		}
		return n
	}
	dig := digestITE(mc.dig, mt.dig, me.dig)
	sh := arena.shardFor(dig)
	key := iteKey{c: cond, t: then, e: els}
	sh.mu.RLock()
	n, ok := sh.ites[key]
	sh.mu.RUnlock()
	if ok {
		arena.hits.Add(1)
		return n
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.ites[key]; ok {
		arena.hits.Add(1)
		return n
	}
	n = &ITE{Cond: cond, Then: then, Else: els}
	tn := satAdd(1, satAdd(mc.tn, satAdd(mt.tn, me.tn)))
	if !arena.room() {
		arena.fallbacks.Add(1)
		n.hc = hc{dig: dig, tn: tn}
		return n
	}
	sh.ites[key] = n
	arena.admit(&n.hc, dig, tn)
	return n
}

// Intern returns the canonical arena equivalent of e, preserving its
// structure exactly (no simplification): Eval, String, SMTLib and
// StableKey of the result are identical to e's. Already-interned nodes
// return themselves in O(1); raw trees (struct literals from tests and
// fuzzers) are canonicalized bottom-up with memoized sharing, linear in
// distinct nodes. When the arena is full the result may remain
// un-interned.
func Intern(e Expr) Expr {
	if e == nil {
		return nil
	}
	if m := meta(e); m != nil && m.id != 0 {
		return e
	}
	return internWalk(e, make(map[Expr]Expr))
}

func internWalk(e Expr, memo map[Expr]Expr) Expr {
	if m := meta(e); m != nil && m.id != 0 {
		return e
	}
	if c, ok := memo[e]; ok {
		return c
	}
	var c Expr
	switch t := e.(type) {
	case *Const:
		c = internConst(t.W, t.V)
	case *Var:
		c = internVar(t.Name, t.W)
	case *Bin:
		c = internBin(t.Op, internWalk(t.A, memo), internWalk(t.B, memo), t.w)
	case *Un:
		c = internUn(t.Op, internWalk(t.A, memo), t.Arg, t.Arg2, t.w)
	case *ITE:
		c = internITE(internWalk(t.Cond, memo), internWalk(t.Then, memo),
			internWalk(t.Else, memo))
	default:
		c = e // foreign implementation; leave as-is
	}
	memo[e] = c
	return c
}
