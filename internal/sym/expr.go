// Package sym defines the symbolic expression language shared by the
// symbolic executor and the constraint solver: fixed-width bitvector terms
// with IEEE-754 float operations over 64-bit patterns, a simplifying
// constructor layer, a concrete evaluator and an SMT-LIB v2 printer.
//
// Widths run from 1 to 64 bits; boolean values are width-1 bitvectors,
// matching the SMT bitvector style the paper's tools emit.
package sym

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Expr is a symbolic bitvector expression.
type Expr interface {
	// Width returns the bit width of the expression (1..64).
	Width() int
	// String renders a compact human-readable form.
	String() string
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. F-prefixed operators interpret their 64-bit operands
// as IEEE-754 doubles.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	OpEq  // width 1 result
	OpNe  // width 1 result
	OpUlt // width 1 result
	OpUle // width 1 result
	OpSlt // width 1 result
	OpSle // width 1 result
	OpConcat
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFEq // width 1 result
	OpFLt // width 1 result
	OpFLe // width 1 result
)

var binNames = map[BinOp]string{
	OpAdd: "bvadd", OpSub: "bvsub", OpMul: "bvmul",
	OpUDiv: "bvudiv", OpSDiv: "bvsdiv", OpURem: "bvurem", OpSRem: "bvsrem",
	OpAnd: "bvand", OpOr: "bvor", OpXor: "bvxor",
	OpShl: "bvshl", OpLShr: "bvlshr", OpAShr: "bvashr",
	OpEq: "=", OpNe: "distinct", OpUlt: "bvult", OpUle: "bvule",
	OpSlt: "bvslt", OpSle: "bvsle", OpConcat: "concat",
	OpFAdd: "fp.add", OpFSub: "fp.sub", OpFMul: "fp.mul", OpFDiv: "fp.div",
	OpFEq: "fp.eq", OpFLt: "fp.lt", OpFLe: "fp.leq",
}

// String returns the SMT-LIB operator name.
func (op BinOp) String() string {
	if s, ok := binNames[op]; ok {
		return s
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// IsCompare reports whether the operator yields a width-1 result.
func (op BinOp) IsCompare() bool {
	switch op {
	case OpEq, OpNe, OpUlt, OpUle, OpSlt, OpSle, OpFEq, OpFLt, OpFLe:
		return true
	}
	return false
}

// IsFloat reports whether the operator has IEEE-754 semantics.
func (op BinOp) IsFloat() bool {
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpFEq, OpFLt, OpFLe:
		return true
	}
	return false
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota + 1
	OpNeg
	OpZExt    // extend to Arg bits
	OpSExt    // extend to Arg bits
	OpExtract // bits [Arg2 .. Arg1] inclusive, Arg1 = hi, Arg2 = lo
	OpI2F     // signed int64 -> f64 bits
	OpF2I     // f64 bits -> truncated int64
	OpBoolNot // width-1 logical negation
)

// Const is a constant bitvector.
type Const struct {
	W int
	V uint64
	hc
}

// Width implements Expr.
func (c *Const) Width() int { return c.W }

func (c *Const) String() string {
	if c.W == 1 {
		if c.V == 0 {
			return "false"
		}
		return "true"
	}
	return fmt.Sprintf("%#x", c.V)
}

// Var is a symbolic variable (an input byte or environment word).
type Var struct {
	Name string
	W    int
	hc
}

// Width implements Expr.
func (v *Var) Width() int { return v.W }

func (v *Var) String() string { return v.Name }

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	A, B Expr
	w    int
	hc
}

// Width implements Expr.
func (b *Bin) Width() int { return b.w }

func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Op, b.A, b.B)
}

// Un is a unary operation. Arg/Arg2 carry widths for extensions and the
// hi/lo bit positions for extraction.
type Un struct {
	Op   UnOp
	A    Expr
	Arg  int
	Arg2 int
	w    int
	hc
}

// Width implements Expr.
func (u *Un) Width() int { return u.w }

func (u *Un) String() string {
	switch u.Op {
	case OpNot:
		return fmt.Sprintf("(bvnot %s)", u.A)
	case OpNeg:
		return fmt.Sprintf("(bvneg %s)", u.A)
	case OpZExt:
		return fmt.Sprintf("(zext%d %s)", u.Arg, u.A)
	case OpSExt:
		return fmt.Sprintf("(sext%d %s)", u.Arg, u.A)
	case OpExtract:
		return fmt.Sprintf("(extract %d %d %s)", u.Arg, u.Arg2, u.A)
	case OpI2F:
		return fmt.Sprintf("(to_fp %s)", u.A)
	case OpF2I:
		return fmt.Sprintf("(fp.to_sbv %s)", u.A)
	case OpBoolNot:
		return fmt.Sprintf("(not %s)", u.A)
	}
	return fmt.Sprintf("(unop%d %s)", int(u.Op), u.A)
}

// ITE is if-then-else over a width-1 condition.
type ITE struct {
	Cond Expr
	Then Expr
	Else Expr
	hc
}

// Width implements Expr.
func (i *ITE) Width() int { return i.Then.Width() }

func (i *ITE) String() string {
	return fmt.Sprintf("(ite %s %s %s)", i.Cond, i.Then, i.Else)
}

// mask returns the w-bit mask.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// NewConst builds a constant, truncating v to w bits. The result is
// interned: structurally equal constants share one node.
func NewConst(v uint64, w int) *Const {
	return internConst(w, v&mask(w))
}

// True and False are the width-1 constants.
func True() *Const  { return NewConst(1, 1) }
func False() *Const { return NewConst(0, 1) }

// NewVar builds a variable reference. The result is interned:
// structurally equal variables share one node.
func NewVar(name string, w int) *Var { return internVar(name, w) }

// Vars returns the variable names appearing in the expressions, sorted.
// Expressions are DAGs with heavy sharing (crypto traces reuse register
// state thousands of times), so every structural walker memoizes visited
// nodes — tree recursion would be exponential.
func Vars(exprs ...Expr) []string {
	set := VarWidths(exprs...)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VarWidths returns name -> width for all variables in the expressions.
func VarWidths(exprs ...Expr) map[string]int {
	set := make(map[string]int)
	seen := make(map[Expr]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		if seen[e] {
			return
		}
		seen[e] = true
		switch t := e.(type) {
		case *Var:
			set[t.Name] = t.W
		case *Bin:
			walk(t.A)
			walk(t.B)
		case *Un:
			walk(t.A)
		case *ITE:
			walk(t.Cond)
			walk(t.Then)
			walk(t.Else)
		}
	}
	for _, e := range exprs {
		if e != nil {
			walk(e)
		}
	}
	return set
}

// HasFloat reports whether any float operator appears in the expressions.
func HasFloat(exprs ...Expr) bool {
	found := false
	seen := make(map[Expr]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		if found || seen[e] {
			return
		}
		seen[e] = true
		switch t := e.(type) {
		case *Bin:
			if t.Op.IsFloat() {
				found = true
				return
			}
			walk(t.A)
			walk(t.B)
		case *Un:
			if t.Op == OpI2F || t.Op == OpF2I {
				found = true
				return
			}
			walk(t.A)
		case *ITE:
			walk(t.Cond)
			walk(t.Then)
			walk(t.Else)
		}
	}
	for _, e := range exprs {
		if e != nil {
			walk(e)
		}
	}
	return found
}

// Size returns the number of distinct nodes in the expression DAG.
func Size(e Expr) int {
	seen := make(map[Expr]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		switch t := x.(type) {
		case *Bin:
			walk(t.A)
			walk(t.B)
		case *Un:
			walk(t.A)
		case *ITE:
			walk(t.Cond)
			walk(t.Then)
			walk(t.Else)
		}
	}
	walk(e)
	return len(seen)
}

// SMTLib renders a constraint set as an SMT-LIB v2 script with bitvector
// declarations and assertions, the format the paper's tools exchange with
// their solvers.
func SMTLib(constraints []Expr) string {
	var b strings.Builder
	b.WriteString("(set-logic QF_BV)\n")
	widths := VarWidths(constraints...)
	names := make([]string, 0, len(widths))
	for n := range widths {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "(declare-const %s (_ BitVec %d))\n", smtName(n), widths[n])
	}
	for _, c := range constraints {
		fmt.Fprintf(&b, "(assert %s)\n", smtExpr(c))
	}
	b.WriteString("(check-sat)\n(get-model)\n")
	return b.String()
}

func smtName(n string) string {
	r := strings.NewReplacer("[", "_", "]", "", ":", "_", "/", "_", ".", "_")
	return "v_" + r.Replace(n)
}

func smtExpr(e Expr) string {
	switch t := e.(type) {
	case *Const:
		return fmt.Sprintf("(_ bv%d %d)", t.V, t.W)
	case *Var:
		return smtName(t.Name)
	case *Bin:
		if t.Op == OpNe {
			return fmt.Sprintf("(distinct %s %s)", smtExpr(t.A), smtExpr(t.B))
		}
		return fmt.Sprintf("(%s %s %s)", t.Op, smtExpr(t.A), smtExpr(t.B))
	case *Un:
		switch t.Op {
		case OpZExt:
			return fmt.Sprintf("((_ zero_extend %d) %s)", t.Arg-t.A.Width(), smtExpr(t.A))
		case OpSExt:
			return fmt.Sprintf("((_ sign_extend %d) %s)", t.Arg-t.A.Width(), smtExpr(t.A))
		case OpExtract:
			return fmt.Sprintf("((_ extract %d %d) %s)", t.Arg, t.Arg2, smtExpr(t.A))
		case OpNot:
			return fmt.Sprintf("(bvnot %s)", smtExpr(t.A))
		case OpNeg:
			return fmt.Sprintf("(bvneg %s)", smtExpr(t.A))
		case OpBoolNot:
			return fmt.Sprintf("(bvnot %s)", smtExpr(t.A))
		case OpI2F:
			return fmt.Sprintf("((_ to_fp 11 53) RNE %s)", smtExpr(t.A))
		case OpF2I:
			return fmt.Sprintf("((_ fp.to_sbv 64) RTZ %s)", smtExpr(t.A))
		}
	case *ITE:
		return fmt.Sprintf("(ite (= %s (_ bv1 1)) %s %s)",
			smtExpr(t.Cond), smtExpr(t.Then), smtExpr(t.Else))
	}
	return "?"
}

// evalMemoMin is the tree size beyond which Eval switches from the
// plain recursive walk to a memoized one. The memo exists to tame
// exponential tree blowup on heavily-shared DAGs, where the tree count
// dwarfs this threshold immediately; flat terms with little sharing
// stay on the allocation-free walk, which matters because the FP local
// search evaluates the same modest terms hundreds of thousands of
// times and a per-call map there costs more than the walk itself.
const evalMemoMin = 4096

// Eval computes the concrete value of e under the environment (variable
// name -> value). Missing variables evaluate to zero.
//
// Expressions are DAGs with heavy sharing, and hash-consing makes the
// sharing pervasive: a term's tree form can be exponentially larger
// than its node count. Eval therefore memoizes shared subterms when the
// precomputed tree count (stamped at interning) is large, staying
// linear in distinct nodes; small terms keep the allocation-free walk.
func Eval(e Expr, env map[string]uint64) uint64 {
	if m := meta(e); m != nil && m.tn > evalMemoMin {
		return evalExpr(e, env, make(map[Expr]uint64))
	}
	return evalExpr(e, env, nil)
}

func evalExpr(e Expr, env map[string]uint64, memo map[Expr]uint64) uint64 {
	if memo != nil {
		if v, ok := memo[e]; ok {
			return v
		}
	}
	v := evalNode(e, env, memo)
	if memo != nil {
		switch e.(type) {
		case *Bin, *Un, *ITE:
			memo[e] = v
		}
	}
	return v
}

func evalNode(e Expr, env map[string]uint64, memo map[Expr]uint64) uint64 {
	switch t := e.(type) {
	case *Const:
		return t.V
	case *Var:
		return env[t.Name] & mask(t.W)
	case *Bin:
		a := evalExpr(t.A, env, memo)
		b := evalExpr(t.B, env, memo)
		if t.Op == OpConcat {
			return ((a << uint(t.B.Width())) | b) & mask(t.w)
		}
		return evalBin(t.Op, a, b, t.A.Width()) & mask(t.w)
	case *Un:
		a := evalExpr(t.A, env, memo)
		switch t.Op {
		case OpNot:
			return ^a & mask(t.w)
		case OpNeg:
			return (-a) & mask(t.w)
		case OpZExt:
			return a
		case OpSExt:
			return signExtend(a, t.A.Width()) & mask(t.w)
		case OpExtract:
			return (a >> uint(t.Arg2)) & mask(t.w)
		case OpI2F:
			return math.Float64bits(float64(int64(signExtend(a, t.A.Width()))))
		case OpF2I:
			f := math.Float64frombits(a)
			switch {
			case math.IsNaN(f):
				return 0
			case f >= math.MaxInt64:
				return math.MaxInt64
			case f <= math.MinInt64:
				return 0x8000_0000_0000_0000
			default:
				return uint64(int64(f))
			}
		case OpBoolNot:
			return (a ^ 1) & 1
		}
	case *ITE:
		if evalExpr(t.Cond, env, memo)&1 == 1 {
			return evalExpr(t.Then, env, memo)
		}
		return evalExpr(t.Else, env, memo)
	}
	return 0
}

func signExtend(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	if v&(uint64(1)<<(uint(w)-1)) != 0 {
		return v | ^mask(w)
	}
	return v
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func evalBin(op BinOp, a, b uint64, w int) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpUDiv:
		if b == 0 {
			return mask(w)
		}
		return a / b
	case OpSDiv:
		if b == 0 {
			return mask(w)
		}
		sa, sb := int64(signExtend(a, w)), int64(signExtend(b, w))
		return uint64(sa / sb)
	case OpURem:
		if b == 0 {
			return a
		}
		return a % b
	case OpSRem:
		if b == 0 {
			return a
		}
		sa, sb := int64(signExtend(a, w)), int64(signExtend(b, w))
		return uint64(sa % sb)
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & uint64(w-1))
	case OpLShr:
		return a >> (b & uint64(w-1))
	case OpAShr:
		return uint64(int64(signExtend(a, w)) >> (b & uint64(w-1)))
	case OpEq:
		return boolBit(a == b)
	case OpNe:
		return boolBit(a != b)
	case OpUlt:
		return boolBit(a < b)
	case OpUle:
		return boolBit(a <= b)
	case OpSlt:
		return boolBit(int64(signExtend(a, w)) < int64(signExtend(b, w)))
	case OpSle:
		return boolBit(int64(signExtend(a, w)) <= int64(signExtend(b, w)))
	case OpConcat:
		return 0 // handled by caller widths; see NewConcat
	case OpFAdd:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	case OpFSub:
		return math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b))
	case OpFMul:
		return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
	case OpFDiv:
		return math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
	case OpFEq:
		return boolBit(math.Float64frombits(a) == math.Float64frombits(b))
	case OpFLt:
		return boolBit(math.Float64frombits(a) < math.Float64frombits(b))
	case OpFLe:
		return boolBit(math.Float64frombits(a) <= math.Float64frombits(b))
	}
	return 0
}
