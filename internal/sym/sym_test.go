package sym

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstBasics(t *testing.T) {
	c := NewConst(0x1ff, 8)
	if c.V != 0xff || c.Width() != 8 {
		t.Errorf("NewConst truncation: %+v", c)
	}
	if True().V != 1 || False().V != 0 {
		t.Error("boolean constants broken")
	}
	if True().String() != "true" || False().String() != "false" {
		t.Error("boolean rendering broken")
	}
}

func TestConstantFolding(t *testing.T) {
	a := NewConst(10, 64)
	b := NewConst(3, 64)
	tests := []struct {
		op   BinOp
		want uint64
	}{
		{OpAdd, 13}, {OpSub, 7}, {OpMul, 30}, {OpUDiv, 3}, {OpURem, 1},
		{OpAnd, 2}, {OpOr, 11}, {OpXor, 9}, {OpShl, 80}, {OpLShr, 1},
		{OpEq, 0}, {OpNe, 1}, {OpUlt, 0}, {OpUle, 0}, {OpSlt, 0}, {OpSle, 0},
	}
	for _, tt := range tests {
		e := NewBin(tt.op, a, b)
		c, ok := e.(*Const)
		if !ok {
			t.Errorf("%s: not folded", tt.op)
			continue
		}
		if c.V != tt.want {
			t.Errorf("%s: folded to %d, want %d", tt.op, c.V, tt.want)
		}
	}
}

func TestIdentities(t *testing.T) {
	x := NewVar("x", 64)
	zero := NewConst(0, 64)
	one := NewConst(1, 64)
	ones := NewConst(^uint64(0), 64)
	if NewBin(OpAdd, x, zero) != x {
		t.Error("x+0 should be x")
	}
	if NewBin(OpMul, x, one) != x {
		t.Error("x*1 should be x")
	}
	if c, ok := NewBin(OpMul, x, zero).(*Const); !ok || c.V != 0 {
		t.Error("x*0 should be 0")
	}
	if NewBin(OpAnd, x, ones) != x {
		t.Error("x&~0 should be x")
	}
	if c, ok := NewBin(OpXor, x, x).(*Const); !ok || c.V != 0 {
		t.Error("x^x should be 0")
	}
	if c, ok := NewBin(OpEq, x, x).(*Const); !ok || c.V != 1 {
		t.Error("x==x should be true")
	}
}

func TestBoolNotRewrites(t *testing.T) {
	x := NewVar("x", 64)
	y := NewVar("y", 64)
	eq := NewBin(OpEq, x, y)
	ne := NewBoolNot(eq)
	if b, ok := ne.(*Bin); !ok || b.Op != OpNe {
		t.Errorf("not(eq) = %s, want ne", ne)
	}
	ult := NewBin(OpUlt, x, y)
	ge := NewBoolNot(ult)
	if b, ok := ge.(*Bin); !ok || b.Op != OpUle || b.A != y {
		t.Errorf("not(x<y) = %s, want y<=x", ge)
	}
	if NewBoolNot(NewBoolNot(eq)) == nil {
		t.Error("double negation broke")
	}
	// Float comparisons must not be rewritten (NaN).
	flt := NewBin(OpFLt, x, y)
	nf := NewBoolNot(flt)
	if u, ok := nf.(*Un); !ok || u.Op != OpBoolNot {
		t.Errorf("not(fp.lt) = %s, want wrapped BoolNot", nf)
	}
}

func TestExtractCompose(t *testing.T) {
	x := NewVar("x", 64)
	// extract of extract
	e1 := NewExtract(x, 31, 16)
	e2 := NewExtract(e1, 7, 0)
	if u, ok := e2.(*Un); !ok || u.Arg != 23 || u.Arg2 != 16 {
		t.Errorf("nested extract = %s", e2)
	}
	// extract of concat picks the right half
	lo := NewVar("lo", 8)
	hi := NewVar("hi", 8)
	cat := NewConcat(hi, lo)
	if NewExtract(cat, 7, 0) != lo {
		t.Error("extract low of concat should be lo")
	}
	if NewExtract(cat, 15, 8) != hi {
		t.Error("extract high of concat should be hi")
	}
	// extract inside zext drops the extension
	z := NewZExt(lo, 64)
	if NewExtract(z, 7, 0) != lo {
		t.Error("extract of zext should reach the base")
	}
	if c, ok := NewExtract(z, 63, 8).(*Const); !ok || c.V != 0 {
		t.Error("extract above zext base should be zero")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	x := NewVar("x", 64)
	bs := Bytes(x)
	if len(bs) != 8 {
		t.Fatalf("Bytes len = %d", len(bs))
	}
	back := FromBytes(bs)
	env := map[string]uint64{"x": 0x1122334455667788}
	if Eval(back, env) != env["x"] {
		t.Errorf("FromBytes(Bytes(x)) evaluates to %#x", Eval(back, env))
	}
}

func TestITE(t *testing.T) {
	x := NewVar("x", 64)
	y := NewVar("y", 64)
	cond := NewBin(OpUlt, x, y)
	ite := NewITE(cond, x, y)
	env := map[string]uint64{"x": 1, "y": 2}
	if Eval(ite, env) != 1 {
		t.Error("ite should select x")
	}
	env = map[string]uint64{"x": 5, "y": 2}
	if Eval(ite, env) != 2 {
		t.Error("ite should select y")
	}
	if NewITE(True(), x, y) != x || NewITE(False(), x, y) != y {
		t.Error("constant condition should fold")
	}
	if NewITE(cond, x, x) != x {
		t.Error("identical branches should fold")
	}
}

func TestFloatEval(t *testing.T) {
	x := NewVar("x", 64)
	c1024 := NewConst(math.Float64bits(1024), 64)
	sum := NewBin(OpFAdd, c1024, x)
	eq := NewBin(OpFEq, sum, c1024)
	env := map[string]uint64{"x": math.Float64bits(1e-14)}
	if Eval(eq, env) != 1 {
		t.Error("1024 + 1e-14 should equal 1024 in f64")
	}
	env["x"] = math.Float64bits(1.0)
	if Eval(eq, env) != 0 {
		t.Error("1024 + 1 should not equal 1024")
	}
	// I2F/F2I round trip on small ints.
	i := NewVar("i", 64)
	rt := NewF2I(NewI2F(i))
	env = map[string]uint64{"i": 42}
	if Eval(rt, env) != 42 {
		t.Error("f2i(i2f(42)) != 42")
	}
}

func TestVarsAndWidths(t *testing.T) {
	x := NewVar("x", 8)
	y := NewVar("y", 64)
	e := NewBin(OpEq, NewZExt(x, 64), y)
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	w := VarWidths(e)
	if w["x"] != 8 || w["y"] != 64 {
		t.Errorf("VarWidths = %v", w)
	}
}

func TestHasFloat(t *testing.T) {
	x := NewVar("x", 64)
	if HasFloat(NewBin(OpAdd, x, x)) {
		t.Error("integer add is not float")
	}
	if !HasFloat(NewBin(OpFAdd, x, x)) {
		t.Error("fadd is float")
	}
	if !HasFloat(NewITE(True(), NewI2F(x), x)) {
		// note: ITE with const cond folds; build non-foldable
		t.Skip("folded")
	}
	cond := NewBin(OpEq, x, NewConst(1, 64))
	if !HasFloat(NewITE(cond, NewI2F(x), NewConst(0, 64))) {
		t.Error("i2f inside ite is float")
	}
}

func TestSMTLibOutput(t *testing.T) {
	x := NewVar("argv1[0]", 8)
	c := NewBin(OpEq, NewZExt(x, 64), NewConst(55, 64))
	s := SMTLib([]Expr{c})
	for _, want := range []string{
		"(set-logic QF_BV)",
		"declare-const v_argv1_0 (_ BitVec 8)",
		"(assert",
		"zero_extend",
		"(check-sat)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SMTLib output missing %q:\n%s", want, s)
		}
	}
}

func TestSize(t *testing.T) {
	x := NewVar("x", 64)
	e := NewBin(OpAdd, x, NewBin(OpMul, x, NewConst(3, 64)))
	// DAG size: {add, mul, x, 3} — the shared x counts once.
	if Size(e) != 4 {
		t.Errorf("Size = %d, want 4", Size(e))
	}
}

// randExpr builds a random expression over byte variables a, b.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return NewConst(rng.Uint64(), 64)
		case 1:
			return NewZExt(NewVar("a", 8), 64)
		default:
			return NewZExt(NewVar("b", 8), 64)
		}
	}
	ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpLShr,
		OpAShr, OpUDiv, OpURem, OpSDiv, OpSRem}
	a := randExpr(rng, depth-1)
	b := randExpr(rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return NewNot(a)
	case 1:
		return NewNeg(a)
	case 2:
		cond := NewBin(OpUlt, a, b)
		return NewITE(cond, a, b)
	default:
		return NewBin(ops[rng.Intn(len(ops))], a, b)
	}
}

// rawEval evaluates without any constructor simplification by rebuilding
// raw nodes. Since constructors are the only way we built the tree, we
// instead check the invariant: evaluating a simplified tree equals
// evaluating its components manually via Eval. The quick test below
// verifies builders against a reference interpretation: for random inputs
// the simplified expression must evaluate identically when rebuilt with
// fresh constants substituted.
func TestQuickSimplifierSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(av, bv uint8) bool {
		e := randExpr(rng, 3)
		env := map[string]uint64{"a": uint64(av), "b": uint64(bv)}
		v1 := Eval(e, env)
		// Substitute constants for variables and fold: the result must be
		// a constant with the same value.
		sub := substitute(e, env)
		c, ok := sub.(*Const)
		if !ok {
			t.Logf("substitution did not fold: %s", sub)
			return false
		}
		return c.V == v1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// substitute rebuilds e through the simplifying constructors with
// variables replaced by constants.
func substitute(e Expr, env map[string]uint64) Expr {
	switch t := e.(type) {
	case *Const:
		return t
	case *Var:
		return NewConst(env[t.Name], t.W)
	case *Bin:
		return NewBin(t.Op, substitute(t.A, env), substitute(t.B, env))
	case *Un:
		a := substitute(t.A, env)
		switch t.Op {
		case OpNot:
			return NewNot(a)
		case OpNeg:
			return NewNeg(a)
		case OpZExt:
			return NewZExt(a, t.Arg)
		case OpSExt:
			return NewSExt(a, t.Arg)
		case OpExtract:
			return NewExtract(a, t.Arg, t.Arg2)
		case OpI2F:
			return NewI2F(a)
		case OpF2I:
			return NewF2I(a)
		case OpBoolNot:
			return NewBoolNot(a)
		}
	case *ITE:
		return NewITE(substitute(t.Cond, env), substitute(t.Then, env), substitute(t.Else, env))
	}
	return e
}

func TestQuickBoolNotInvolution(t *testing.T) {
	f := func(av, bv uint8, opSel uint8) bool {
		ops := []BinOp{OpEq, OpNe, OpUlt, OpUle, OpSlt, OpSle}
		op := ops[opSel%6]
		a := NewZExt(NewVar("a", 8), 64)
		b := NewZExt(NewVar("b", 8), 64)
		cmp := NewBin(op, a, b)
		env := map[string]uint64{"a": uint64(av), "b": uint64(bv)}
		return Eval(NewBoolNot(cmp), env) == 1-Eval(cmp, env)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEvalEdgeOps(t *testing.T) {
	x := NewVar("x", 8)
	y := NewVar("y", 8)
	env := map[string]uint64{"x": 0x90, "y": 0} // x negative as int8
	checks := []struct {
		e    Expr
		want uint64
	}{
		// Division by zero follows SMT semantics.
		{NewBin(OpUDiv, x, y), 0xff},
		{NewBin(OpURem, x, y), 0x90},
		{NewBin(OpSDiv, x, y), 0xff},
		{NewBin(OpSRem, x, y), 0x90},
		{NewBin(OpSle, x, NewConst(0, 8)), 1},     // -112 <= 0 signed
		{NewBin(OpSlt, NewConst(0, 8), x), 0},     // 0 < -112 signed: false
		{NewSExt(x, 16), 0xff90},                  // sign extension
		{NewBin(OpAShr, x, NewConst(4, 8)), 0xf9}, // arithmetic shift
		{NewNeg(x), 0x70},                         // two's complement
	}
	for i, c := range checks {
		if got := Eval(c.e, env); got != c.want {
			t.Errorf("case %d (%s): got %#x, want %#x", i, c.e, got, c.want)
		}
	}
}

func TestEvalF2IEdges(t *testing.T) {
	env := map[string]uint64{}
	nan := NewConst(math.Float64bits(math.NaN()), 64)
	if Eval(NewF2I(nan), env) != 0 {
		t.Error("f2i(NaN) should be 0")
	}
	big := NewConst(math.Float64bits(1e300), 64)
	if Eval(NewF2I(big), env) != math.MaxInt64 {
		t.Error("f2i(huge) should saturate to MaxInt64")
	}
	neg := NewConst(math.Float64bits(-1e300), 64)
	if Eval(NewF2I(neg), env) != 0x8000_0000_0000_0000 {
		t.Error("f2i(-huge) should saturate to MinInt64")
	}
}

func TestStringRenderings(t *testing.T) {
	x := NewVar("x", 64)
	cases := []struct {
		e    Expr
		want string
	}{
		{NewNot(x), "(bvnot x)"},
		{NewNeg(x), "(bvneg x)"},
		{NewSExt(NewVar("b", 8), 64), "(sext64 b)"},
		{NewZExt(NewVar("b", 8), 64), "(zext64 b)"},
		{NewI2F(x), "(to_fp x)"},
		{NewF2I(x), "(fp.to_sbv x)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	ite := NewITE(NewBin(OpEq, x, NewConst(1, 64)), x, NewConst(0, 64))
	if !strings.Contains(ite.String(), "ite") {
		t.Errorf("ITE string = %q", ite.String())
	}
}

func TestSMTLibFloatAndITE(t *testing.T) {
	x := NewVar("x", 64)
	cond := NewBin(OpEq, x, NewConst(1, 64))
	ite := NewITE(cond, NewI2F(x), NewConst(0, 64))
	c := NewBin(OpFLt, ite, NewConst(math.Float64bits(2), 64))
	s := SMTLib([]Expr{c})
	for _, want := range []string{"fp.lt", "ite", "to_fp"} {
		if !strings.Contains(s, want) {
			t.Errorf("SMT output missing %q", want)
		}
	}
	// Signed/unsigned comparisons and shifts render too.
	more := []Expr{
		NewBin(OpSle, x, NewConst(5, 64)),
		NewBin(OpAShr, x, NewConst(1, 64)),
		NewBoolNot(NewBin(OpFEq, x, x)),
		NewSExt(NewVar("b", 8), 64),
	}
	var conj Expr = True()
	for _, m := range more {
		if m.Width() != 1 {
			m = NewBin(OpNe, m, NewConst(0, m.Width()))
		}
		conj = NewBin(OpAnd, conj, m)
	}
	out := SMTLib([]Expr{conj})
	for _, want := range []string{"bvsle", "bvashr", "sign_extend"} {
		if !strings.Contains(out, want) {
			t.Errorf("SMT output missing %q:\n%s", want, out)
		}
	}
}
