package sym

import (
	"bytes"
	"testing"
)

// buildSystem interprets fuzz bytes as a tiny stack-machine program over
// a pool of expression nodes. Nodes are built raw (no constructor
// simplification) so the canonicalizer sees arbitrary shapes, and pool
// picks create genuine DAG sharing. delta shifts every constant value:
// delta 0 twice gives a structurally identical twin under fresh
// pointers, any other delta gives a provably distinct system whenever a
// constant is reachable from the emitted constraints.
func buildSystem(data []byte, delta uint64) []Expr {
	widths := []int{1, 8, 16, 32, 64}
	pool := []Expr{&Var{Name: "seed", W: 8}}
	pick := func(b byte) Expr { return pool[int(b)%len(pool)] }
	var sys []Expr
	for i := 0; i+3 < len(data); i += 4 {
		op, x, y, z := data[i], data[i+1], data[i+2], data[i+3]
		switch op % 7 {
		case 0:
			pool = append(pool, &Const{
				W: widths[int(x)%len(widths)],
				V: (uint64(y)<<8 | uint64(z)) + delta,
			})
		case 1:
			names := []string{"argv1!0", "argv1!1", "env!time", "env!pid"}
			pool = append(pool, &Var{
				Name: names[int(x)%len(names)],
				W:    widths[int(y)%len(widths)],
			})
		case 2:
			bop := BinOp(int(x)%int(OpFLe)) + 1
			pool = append(pool, &Bin{
				Op: bop, A: pick(y), B: pick(z),
				w: widths[int(op)%len(widths)],
			})
		case 3:
			uop := UnOp(int(x)%int(OpBoolNot)) + 1
			pool = append(pool, &Un{
				Op: uop, A: pick(y),
				Arg: int(z % 64), Arg2: int(z % 8),
				w: widths[int(x)%len(widths)],
			})
		case 4:
			pool = append(pool, &ITE{Cond: pick(x), Then: pick(y), Else: pick(z)})
		case 5:
			sys = append(sys, pick(x))
		case 6:
			// Doubling chain: z levels each reusing the previous node
			// twice — an exponential tree that must stay linear as a DAG.
			e := pick(x)
			for k := 0; k < int(z); k++ {
				e = &Bin{Op: OpAdd, A: e, B: e, w: e.Width()}
			}
			pool = append(pool, e)
		}
	}
	if len(sys) == 0 {
		sys = append(sys, pool[len(pool)-1])
	}
	return sys
}

// hasReachableConst reports whether any *Const is reachable from the
// system — the precondition for the delta-distinctness property.
func hasReachableConst(sys []Expr) bool {
	seen := make(map[Expr]bool)
	var walk func(e Expr) bool
	walk = func(e Expr) bool {
		if e == nil || seen[e] {
			return false
		}
		seen[e] = true
		switch t := e.(type) {
		case *Const:
			return true
		case *Bin:
			return walk(t.A) || walk(t.B)
		case *Un:
			return walk(t.A)
		case *ITE:
			return walk(t.Cond) || walk(t.Then) || walk(t.Else)
		}
		return false
	}
	for _, e := range sys {
		if walk(e) {
			return true
		}
	}
	return false
}

// FuzzCanonicalKey checks the cache-key contract on arbitrary systems:
// rebuilding from the same bytes yields the same key (pointer identity
// never leaks in — the raw nodes are interned to the same canonical
// arena entries), mutating any reachable constant yields a different
// key, dropping a constraint yields a different key, and deep or
// heavily shared DAGs neither panic nor blow up. The sha-256 StableKey
// slow path is held to the same properties.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{2, 5, 0, 0, 5, 1, 0, 0})
	f.Add([]byte{6, 0, 0, 60, 5, 0, 0, 0})       // 2^60-node shared tree
	f.Add(bytes.Repeat([]byte{2, 13, 1, 2}, 64)) // long combine chain
	f.Add([]byte{0, 2, 0, 7, 2, 13, 1, 1, 5, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		sys := buildSystem(data, 0)
		k1 := CanonicalKey(sys)
		if want := 1 + 8*len(sys); len(k1) != want {
			t.Fatalf("key length %d, want %d (interned-id fast path)", len(k1), want)
		}
		if ks := StableKey(sys); len(ks) != 32 {
			t.Fatalf("stable key length %d, want 32 (sha-256)", len(ks))
		}
		// Rebuild: fresh pointers, identical structure, identical key.
		if k2 := CanonicalKey(buildSystem(data, 0)); k2 != k1 {
			t.Error("rebuilding the same system changed the key")
		}
		if s1, s2 := StableKey(sys), StableKey(buildSystem(data, 0)); s1 != s2 {
			t.Error("rebuilding the same system changed the stable key")
		}
		// Same nodes revisited: the walk must not mutate its input.
		if k3 := CanonicalKey(sys); k3 != k1 {
			t.Error("re-keying the same slice changed the key")
		}
		// Distinct systems get distinct keys.
		if hasReachableConst(sys) {
			if kd := CanonicalKey(buildSystem(data, 1)); kd == k1 {
				t.Error("shifting every constant did not change the key")
			}
		}
		if len(sys) > 1 {
			if kp := CanonicalKey(sys[:len(sys)-1]); kp == k1 {
				t.Error("dropping the final constraint did not change the key")
			}
		}
	})
}
