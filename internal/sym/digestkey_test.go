package sym

import "testing"

// DigestKey must depend only on structure — not on intern order,
// pointer identity, or process — and must keep distinct systems apart.
func TestDigestKeyStructural(t *testing.T) {
	mk := func() []Expr {
		x := NewVar("x", 32)
		return []Expr{
			NewBin(OpEq, NewBin(OpAdd, x, NewConst(7, 32)), NewConst(100, 32)),
			NewBin(OpUlt, x, NewConst(50, 32)),
		}
	}
	a, b := mk(), mk()
	ka, kb := DigestKey(a), DigestKey(b)
	if ka != kb {
		t.Fatalf("structurally equal systems got different digest keys:\n%s\n%s", ka, kb)
	}
	if len(ka) != 2*8*2 { // hex of 8 bytes per constraint
		t.Fatalf("unexpected key length %d for 2 constraints", len(ka))
	}

	other := []Expr{
		NewBin(OpEq, NewBin(OpAdd, NewVar("x", 32), NewConst(8, 32)), NewConst(100, 32)),
		NewBin(OpUlt, NewVar("x", 32), NewConst(50, 32)),
	}
	if DigestKey(other) == ka {
		t.Fatal("distinct systems collided")
	}

	// Order is significant: the key names the exact solver invocation.
	rev := []Expr{a[1], a[0]}
	if DigestKey(rev) == ka {
		t.Fatal("constraint order did not affect the key")
	}
}

// The digest key must be hex (JSON- and file-format-safe): it ends up
// inside sharedcache and warmstore JSONL records.
func TestDigestKeyIsHex(t *testing.T) {
	k := DigestKey([]Expr{NewBin(OpEq, NewVar("v", 8), NewConst(3, 8))})
	for _, r := range k {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("non-hex rune %q in digest key %q", r, k)
		}
	}
}
