package sym

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// CanonicalKey returns a digest of a constraint slice that is stable
// across processes and independent of pointer identity: structurally
// equal systems produce equal keys, and (up to hash collisions) distinct
// systems produce distinct keys. The constraint order is significant —
// the key identifies the exact solver invocation, not just the logical
// conjunction, so a cache fronted by it stays bit-for-bit deterministic.
//
// Expressions are DAGs with heavy sharing (crypto traces reuse register
// state thousands of times), so the encoding assigns each distinct node
// an id on first visit and references children by id; cost is linear in
// the number of distinct nodes, never exponential in depth.
func CanonicalKey(exprs []Expr) string {
	h := sha256.New()
	ids := make(map[Expr]int)
	var buf [10 * 8]byte
	for _, e := range exprs {
		id := canonNode(h, ids, buf[:0], e)
		canonRecord(h, buf[:0], 'T', uint64(id))
	}
	return string(h.Sum(nil))
}

// canonNode writes the node's record (children first) on first visit and
// returns its id. A nil expression gets the reserved id 0.
func canonNode(h hash.Hash, ids map[Expr]int, buf []byte, e Expr) int {
	if e == nil {
		return 0
	}
	if id, ok := ids[e]; ok {
		return id
	}
	var id int
	switch t := e.(type) {
	case *Const:
		id = nextID(ids, e)
		canonRecord(h, buf, 'C', uint64(t.W), t.V, uint64(id))
	case *Var:
		id = nextID(ids, e)
		canonRecord(h, buf, 'V', uint64(t.W), uint64(id))
		h.Write([]byte(t.Name))
		h.Write([]byte{0})
	case *Bin:
		a := canonNode(h, ids, buf, t.A)
		b := canonNode(h, ids, buf, t.B)
		id = nextID(ids, e)
		canonRecord(h, buf, 'B', uint64(t.Op), uint64(t.Width()), uint64(a), uint64(b), uint64(id))
	case *Un:
		a := canonNode(h, ids, buf, t.A)
		id = nextID(ids, e)
		canonRecord(h, buf, 'U', uint64(t.Op), uint64(t.Width()),
			uint64(int64(t.Arg)), uint64(int64(t.Arg2)), uint64(a), uint64(id))
	case *ITE:
		c := canonNode(h, ids, buf, t.Cond)
		th := canonNode(h, ids, buf, t.Then)
		el := canonNode(h, ids, buf, t.Else)
		id = nextID(ids, e)
		canonRecord(h, buf, 'I', uint64(c), uint64(th), uint64(el), uint64(id))
	default:
		id = nextID(ids, e)
		canonRecord(h, buf, '?', uint64(id))
	}
	return id
}

// nextID assigns ids in first-visit order, so structurally identical DAGs
// visited in the same order number their nodes identically.
func nextID(ids map[Expr]int, e Expr) int {
	id := len(ids) + 1
	ids[e] = id
	return id
}

func canonRecord(h hash.Hash, buf []byte, tag byte, words ...uint64) {
	buf = append(buf, tag)
	for _, w := range words {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], w)
		buf = append(buf, tmp[:]...)
	}
	h.Write(buf)
}
