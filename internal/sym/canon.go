package sym

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// CanonicalKey returns a key for a constraint slice such that
// structurally equal systems produce equal keys and distinct systems
// produce distinct keys — exactly, not up to hash collisions. The
// constraint order is significant: the key identifies the exact solver
// invocation, not just the logical conjunction, so a cache fronted by it
// stays bit-for-bit deterministic.
//
// With the hash-consing arena, each constraint's identity is its intern
// id, so the fast path is O(1) per constraint: one id read and an 8-byte
// append, no tree walk and no hashing. Raw (un-interned) expressions are
// canonicalized first — linear in distinct nodes, the same cost the old
// sha-256 walk paid on every call. Only when the arena is full does the
// key fall back to the StableKey digest walk.
//
// Keys are process-local (intern ids are assigned in arrival order); use
// StableKey for a cross-process-stable form.
func CanonicalKey(exprs []Expr) string {
	buf := make([]byte, 1+8*len(exprs))
	buf[0] = 'i'
	for i, e := range exprs {
		id := InternID(e)
		if id == 0 {
			if e = Intern(e); e == nil {
				continue // nil constraint: id 0
			}
			if id = InternID(e); id == 0 {
				// Arena full: fall back to the structural digest walk.
				// The 's' prefix keeps the two key namespaces disjoint.
				return "s" + StableKey(exprs)
			}
		}
		binary.LittleEndian.PutUint64(buf[1+8*i:], id)
	}
	return string(buf)
}

// DigestKey returns a compact cross-process-stable key for a constraint
// slice: the hex rendering of each constraint's 8-byte structural digest
// (see Digest), in order. Unlike CanonicalKey it never depends on intern
// ids, so two replicas building the same system — in different processes,
// in different construction orders — produce the same key; unlike
// StableKey it is 8 bytes per constraint instead of one sha-256 walk over
// the whole system, so it stays O(1) per interned constraint. Distinct
// systems collide with probability ~2^-64 per constraint pair; consumers
// needing exactness (the in-process cache) use CanonicalKey instead.
func DigestKey(exprs []Expr) string {
	buf := make([]byte, 8*len(exprs))
	for i, e := range exprs {
		binary.LittleEndian.PutUint64(buf[8*i:], Digest(e))
	}
	return hex.EncodeToString(buf)
}

// StableKey returns a sha-256 digest of the constraint slice that is
// stable across processes and independent of pointer identity AND of the
// input's sharing pattern: structurally equal systems produce equal keys
// whether a subterm appears as one shared node or as duplicate copies,
// and (up to hash collisions) distinct systems produce distinct keys.
// This is the slow path behind CanonicalKey — kept for cross-process
// cache keys, collision verification and debugging.
//
// Expressions are DAGs with heavy sharing (crypto traces reuse register
// state thousands of times), so the encoding hash-conses locally: each
// distinct STRUCTURE gets an id on first appearance (duplicate-copy
// subtrees collapse onto one id) and later references are by id; cost is
// linear in distinct nodes, never exponential in depth.
func StableKey(exprs []Expr) string {
	st := &stableState{
		h:   sha256.New(),
		ptr: make(map[Expr]int),
		str: make(map[stableNodeKey]int),
	}
	var buf [10 * 8]byte
	for _, e := range exprs {
		id := canonNode(st, buf[:0], e)
		canonRecord(st.h, buf[:0], 'T', uint64(id))
	}
	return string(st.h.Sum(nil))
}

// stableState is the per-call hash-consing context for StableKey. ptr
// memoizes visited pointers; str maps node structures to ids so
// duplicate copies of one subterm collapse onto the first id.
type stableState struct {
	h    hash.Hash
	ptr  map[Expr]int
	str  map[stableNodeKey]int
	next int
}

// stableNodeKey identifies a node's structure: kind tag, scalars, and
// the already-canonical ids of its children. One composite struct covers
// every kind; unused fields stay zero.
type stableNodeKey struct {
	tag       byte
	op, w     int
	arg, arg2 int
	a, b, c   int
	name      string
	v         uint64
}

// canonNode returns the structural id for e, writing its record
// (children first) if this structure has not appeared before. A nil
// expression gets the reserved id 0.
func canonNode(st *stableState, buf []byte, e Expr) int {
	if e == nil {
		return 0
	}
	if id, ok := st.ptr[e]; ok {
		return id
	}
	var id int
	switch t := e.(type) {
	case *Const:
		key := stableNodeKey{tag: 'C', w: t.W, v: t.V}
		if id = st.str[key]; id == 0 {
			id = st.fresh(key)
			canonRecord(st.h, buf, 'C', uint64(t.W), t.V, uint64(id))
		}
	case *Var:
		key := stableNodeKey{tag: 'V', w: t.W, name: t.Name}
		if id = st.str[key]; id == 0 {
			id = st.fresh(key)
			canonRecord(st.h, buf, 'V', uint64(t.W), uint64(id))
			st.h.Write([]byte(t.Name))
			st.h.Write([]byte{0})
		}
	case *Bin:
		a := canonNode(st, buf, t.A)
		b := canonNode(st, buf, t.B)
		key := stableNodeKey{tag: 'B', op: int(t.Op), w: t.Width(), a: a, b: b}
		if id = st.str[key]; id == 0 {
			id = st.fresh(key)
			canonRecord(st.h, buf, 'B', uint64(t.Op), uint64(t.Width()), uint64(a), uint64(b), uint64(id))
		}
	case *Un:
		a := canonNode(st, buf, t.A)
		key := stableNodeKey{tag: 'U', op: int(t.Op), w: t.Width(),
			arg: t.Arg, arg2: t.Arg2, a: a}
		if id = st.str[key]; id == 0 {
			id = st.fresh(key)
			canonRecord(st.h, buf, 'U', uint64(t.Op), uint64(t.Width()),
				uint64(int64(t.Arg)), uint64(int64(t.Arg2)), uint64(a), uint64(id))
		}
	case *ITE:
		c := canonNode(st, buf, t.Cond)
		th := canonNode(st, buf, t.Then)
		el := canonNode(st, buf, t.Else)
		key := stableNodeKey{tag: 'I', a: c, b: th, c: el}
		if id = st.str[key]; id == 0 {
			id = st.fresh(key)
			canonRecord(st.h, buf, 'I', uint64(c), uint64(th), uint64(el), uint64(id))
		}
	default:
		// Foreign Expr implementation: pointer identity is all we have.
		st.next++
		id = st.next
		canonRecord(st.h, buf, '?', uint64(id))
	}
	st.ptr[e] = id
	return id
}

// fresh allocates the next id for a first-seen structure.
func (st *stableState) fresh(key stableNodeKey) int {
	st.next++
	st.str[key] = st.next
	return st.next
}

func canonRecord(h hash.Hash, buf []byte, tag byte, words ...uint64) {
	buf = append(buf, tag)
	for _, w := range words {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], w)
		buf = append(buf, tmp[:]...)
	}
	h.Write(buf)
}
