package sym

import "testing"

func TestCanonicalKeyStructuralEquality(t *testing.T) {
	mk := func() []Expr {
		x := NewVar("x", 8)
		y := NewVar("y", 8)
		sum := NewBin(OpAdd, x, y)
		return []Expr{
			NewBin(OpEq, sum, NewConst(7, 8)),
			NewBin(OpUlt, x, NewConst(4, 8)),
		}
	}
	a, b := mk(), mk()
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("structurally equal systems must share a key")
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	x := NewVar("x", 8)
	base := []Expr{NewBin(OpEq, x, NewConst(7, 8))}
	variants := [][]Expr{
		{NewBin(OpEq, x, NewConst(8, 8))},                // different constant
		{NewBin(OpNe, x, NewConst(7, 8))},                // different operator
		{NewBin(OpEq, NewVar("y", 8), NewConst(7, 8))},   // different variable
		{NewBin(OpEq, NewVar("x", 16), NewConst(7, 16))}, // different width
		{NewBin(OpEq, x, NewConst(7, 8)), True()},        // extra constraint
		{NewBoolNot(NewBin(OpEq, x, NewConst(7, 8)))},    // wrapped
	}
	key := CanonicalKey(base)
	for i, v := range variants {
		if CanonicalKey(v) == key {
			t.Errorf("variant %d collides with the base system", i)
		}
	}
}

func TestCanonicalKeyOrderSensitive(t *testing.T) {
	// The key identifies the exact solver invocation; constraint order
	// changes the SAT search and so must change the key.
	a := NewBin(OpEq, NewVar("x", 8), NewConst(1, 8))
	b := NewBin(OpEq, NewVar("y", 8), NewConst(2, 8))
	if CanonicalKey([]Expr{a, b}) == CanonicalKey([]Expr{b, a}) {
		t.Error("constraint order must be part of the key")
	}
}

func TestCanonicalKeySharedDAGLinear(t *testing.T) {
	// A deeply shared DAG (each level reuses the previous twice) has 2^60
	// tree nodes; the canonical walk must stay linear in distinct nodes.
	e := Expr(NewVar("x", 32))
	for i := 0; i < 60; i++ {
		e = NewBin(OpAdd, e, e)
	}
	sys := []Expr{NewBin(OpEq, e, NewConst(0, 32))}
	k1 := CanonicalKey(sys)
	k2 := CanonicalKey(sys)
	if k1 != k2 || k1 == "" {
		t.Error("canonical key unstable on shared DAG")
	}
}

func TestCanonicalKeyExtractArgs(t *testing.T) {
	x := NewVar("x", 32)
	hi := NewExtract(x, 15, 8)
	lo := NewExtract(x, 7, 0)
	if CanonicalKey([]Expr{NewBin(OpEq, hi, NewConst(1, 8))}) ==
		CanonicalKey([]Expr{NewBin(OpEq, lo, NewConst(1, 8))}) {
		t.Error("extract bit ranges must be part of the key")
	}
}
