package asm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/libc"
)

// BenchmarkAssembleLibc measures assembling the full guest C library.
func BenchmarkAssembleLibc(b *testing.B) {
	units := append(libc.All(), asm.Source{Name: "m.s", Text: "main:\n mov r0, 0\n ret\n"})
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(units...); err != nil {
			b.Fatal(err)
		}
	}
}
