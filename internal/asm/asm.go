// Package asm implements a two-pass assembler for LB64 assembly text.
//
// The logic bombs, the guest C library and the runtime stub are all written
// in this dialect and assembled into bin.Image binaries, mirroring how the
// paper's programs are compiled C binaries.
//
// Syntax overview:
//
//	; comment                  # comment
//	.text                      switch to the text section
//	.data                      switch to the data section
//	label:                     global label (exported as a symbol)
//	.local:                    local label, scoped to the previous global
//	mov   r1, 42               register/immediate operands
//	mov   r1, 'A'              character immediate
//	mov   r1, message          label immediate (address)
//	movf  r1, 3.25             pseudo: float64 immediate as IEEE bits
//	lea   r1, buf+8            pseudo: mov with label arithmetic
//	ld.q  r1, [r2+8]           sized loads: .b .w .d .q
//	st.b  [r3-1], r4           sized stores
//	jne   .loop                branches take label or numeric targets
//	jmp   r5                   register-indirect jump
//	.asciz "text\n"            NUL-terminated string data
//	.ascii "text"              raw string data
//	.byte 1, 2, 0x1f           data bytes
//	.quad 7, label, label+16   8-byte words (labels allowed)
//	.double 1024.0             IEEE-754 float64 data
//	.space 64                  zero-filled bytes
//	.align 8                   pad to alignment
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/bin"
	"repro/internal/isa"
)

// Source is one named unit of assembly text. Units are assembled together
// into a single image and share one symbol namespace, which is how bombs
// "link" against the guest libc.
type Source struct {
	Name string
	Text string
}

// Error describes an assembly failure with its source position.
type Error struct {
	Unit string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Unit, e.Line, e.Msg)
}

// Assemble assembles the given units into a loadable image. The entry point
// is the `_start` symbol, which must be defined by exactly one unit.
func Assemble(units ...Source) (*bin.Image, error) {
	a := &assembler{
		symbols: make(map[string]uint64),
		textPos: bin.TextBase,
		dataPos: bin.DataBase,
	}
	// Pass 1: parse every line, lay out sections, record label addresses.
	for _, u := range units {
		if err := a.scanUnit(u); err != nil {
			return nil, err
		}
	}
	// Pass 2: emit bytes with all symbols known.
	if err := a.emit(); err != nil {
		return nil, err
	}
	entry, ok := a.symbols["_start"]
	if !ok {
		return nil, fmt.Errorf("asm: no _start symbol defined")
	}
	im := &bin.Image{
		Entry: entry,
		Sections: []bin.Section{
			{Name: ".text", Addr: bin.TextBase, Data: a.text},
			{Name: ".data", Addr: bin.DataBase, Data: a.data},
		},
	}
	for name, addr := range a.symbols {
		if strings.Contains(name, localSep) {
			continue // local labels stay private
		}
		im.Symbols = append(im.Symbols, bin.Symbol{Name: name, Addr: addr})
	}
	sortSymbols(im.Symbols)
	return im, nil
}

// MustAssemble is Assemble for known-good embedded sources; it panics on
// error and is intended for package initialization of the bomb suite.
func MustAssemble(units ...Source) *bin.Image {
	im, err := Assemble(units...)
	if err != nil {
		panic(err)
	}
	return im
}

const localSep = "\x00" // joins scope and local label name internally

// item is one parsed source line that occupies space.
type item struct {
	unit    string
	line    int
	section string // ".text" or ".data"
	addr    uint64

	// Exactly one of the following is set.
	instr *parsedInstr
	data  *parsedData
}

type parsedInstr struct {
	op        isa.Op
	mode      isa.Mode
	size      uint8
	r1, r2    isa.Reg
	imm       int64
	immRef    string // unresolved symbol reference, "" if numeric
	immAddend int64
}

type parsedData struct {
	bytes []byte    // literal bytes (ascii/byte/space/double/align padding)
	quads []quadVal // for .quad entries
}

type quadVal struct {
	val    int64
	ref    string
	addend int64
}

type assembler struct {
	symbols map[string]uint64
	items   []item
	textPos uint64
	dataPos uint64
	text    []byte
	data    []byte
}

type unitState struct {
	name    string
	section string
	scope   string // current global label for local-label resolution
}

func (a *assembler) scanUnit(u Source) error {
	st := &unitState{name: u.Name, section: ".text"}
	lines := strings.Split(u.Text, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry a label prefix and then a statement.
		for {
			label, rest, ok := splitLabel(line)
			if !ok {
				break
			}
			if err := a.defineLabel(st, label, lineNo); err != nil {
				return err
			}
			line = strings.TrimSpace(rest)
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.scanStatement(st, line, lineNo); err != nil {
			return err
		}
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			// Track quotes so ';' inside strings survives. Handle \" escapes.
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// splitLabel detects a leading `name:` label. Returns ok=false when the
// line does not start with a label.
func splitLabel(line string) (label, rest string, ok bool) {
	idx := strings.IndexByte(line, ':')
	if idx < 0 {
		return "", "", false
	}
	cand := strings.TrimSpace(line[:idx])
	if cand == "" || !isIdent(cand) {
		return "", "", false
	}
	return cand, line[idx+1:], true
}

func isIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_' || r == '.':
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

func (a *assembler) defineLabel(st *unitState, label string, line int) error {
	name := label
	if strings.HasPrefix(label, ".") {
		if st.scope == "" {
			return a.errf(st, line, "local label %s before any global label", label)
		}
		name = st.scope + localSep + label
	} else {
		st.scope = label
	}
	if _, dup := a.symbols[name]; dup {
		return a.errf(st, line, "duplicate label %s", label)
	}
	a.symbols[name] = a.pos(st.section)
	return nil
}

func (a *assembler) pos(section string) uint64 {
	if section == ".data" {
		return a.dataPos
	}
	return a.textPos
}

func (a *assembler) advance(section string, n uint64) {
	if section == ".data" {
		a.dataPos += n
	} else {
		a.textPos += n
	}
}

func (a *assembler) errf(st *unitState, line int, format string, args ...any) error {
	return &Error{Unit: st.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) scanStatement(st *unitState, line string, lineNo int) error {
	if strings.HasPrefix(line, ".") {
		word := line
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			word = line[:i]
		}
		switch word {
		case ".text", ".data":
			st.section = word
			return nil
		}
		return a.scanDirective(st, line, lineNo)
	}
	return a.scanInstr(st, line, lineNo)
}

func (a *assembler) addItem(st *unitState, lineNo int, size uint64, it item) {
	it.unit = st.name
	it.line = lineNo
	it.section = st.section
	it.addr = a.pos(st.section)
	a.items = append(a.items, it)
	a.advance(st.section, size)
}

func (a *assembler) scanDirective(st *unitState, line string, lineNo int) error {
	word, rest := splitWord(line)
	rest = strings.TrimSpace(rest)
	switch word {
	case ".asciz", ".ascii":
		s, err := parseString(rest)
		if err != nil {
			return a.errf(st, lineNo, "%s: %v", word, err)
		}
		b := []byte(s)
		if word == ".asciz" {
			b = append(b, 0)
		}
		a.addItem(st, lineNo, uint64(len(b)), item{data: &parsedData{bytes: b}})
		return nil
	case ".byte", ".word", ".dword":
		width := map[string]int{".byte": 1, ".word": 2, ".dword": 4}[word]
		vals, err := splitOperands(rest)
		if err != nil {
			return a.errf(st, lineNo, "%s: %v", word, err)
		}
		var b []byte
		for _, v := range vals {
			n, err := parseInt(v)
			if err != nil {
				return a.errf(st, lineNo, "%s: %v", word, err)
			}
			for k := 0; k < width; k++ {
				b = append(b, byte(uint64(n)>>(8*k)))
			}
		}
		a.addItem(st, lineNo, uint64(len(b)), item{data: &parsedData{bytes: b}})
		return nil
	case ".quad":
		vals, err := splitOperands(rest)
		if err != nil {
			return a.errf(st, lineNo, ".quad: %v", err)
		}
		pd := &parsedData{}
		for _, v := range vals {
			qv := quadVal{}
			if n, err := parseInt(v); err == nil {
				qv.val = n
			} else {
				ref, addend, rerr := parseSymRef(v)
				if rerr != nil {
					return a.errf(st, lineNo, ".quad: %v", rerr)
				}
				qv.ref, qv.addend = ref, addend
			}
			pd.quads = append(pd.quads, qv)
		}
		a.addItem(st, lineNo, uint64(8*len(pd.quads)), item{data: pd})
		return nil
	case ".double":
		vals, err := splitOperands(rest)
		if err != nil {
			return a.errf(st, lineNo, ".double: %v", err)
		}
		var b []byte
		for _, v := range vals {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return a.errf(st, lineNo, ".double: %v", err)
			}
			bits := math.Float64bits(f)
			for k := 0; k < 8; k++ {
				b = append(b, byte(bits>>(8*k)))
			}
		}
		a.addItem(st, lineNo, uint64(len(b)), item{data: &parsedData{bytes: b}})
		return nil
	case ".space":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return a.errf(st, lineNo, ".space: bad size %q", rest)
		}
		a.addItem(st, lineNo, uint64(n), item{data: &parsedData{bytes: make([]byte, n)}})
		return nil
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 || (n&(n-1)) != 0 {
			return a.errf(st, lineNo, ".align: bad alignment %q", rest)
		}
		pos := a.pos(st.section)
		pad := (uint64(n) - pos%uint64(n)) % uint64(n)
		if pad > 0 {
			a.addItem(st, lineNo, pad, item{data: &parsedData{bytes: make([]byte, pad)}})
		}
		return nil
	case ".global", ".globl":
		// All global labels are exported already; accepted for familiarity.
		return nil
	}
	return a.errf(st, lineNo, "unknown directive %s", word)
}

func splitWord(line string) (word, rest string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], line[i+1:]
	}
	return line, ""
}
