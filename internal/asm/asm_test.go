package asm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bin"
	"repro/internal/isa"
)

func assemble(t *testing.T, text string) *bin.Image {
	t.Helper()
	im, err := Assemble(Source{Name: "test.s", Text: text})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return im
}

func decodeText(t *testing.T, im *bin.Image) []isa.Instr {
	t.Helper()
	sec, ok := im.Section(".text")
	if !ok {
		t.Fatal("no .text section")
	}
	ins, err := isa.DecodeProgram(sec.Data)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	return ins
}

func TestAssembleMinimal(t *testing.T) {
	im := assemble(t, `
_start:
    mov r0, 1
    halt
`)
	if im.Entry != bin.TextBase {
		t.Errorf("Entry = %#x, want %#x", im.Entry, bin.TextBase)
	}
	ins := decodeText(t, im)
	if len(ins) != 2 {
		t.Fatalf("got %d instructions, want 2", len(ins))
	}
	want0 := isa.Instr{Op: isa.OpMov, Mode: isa.ModeRI, Size: 8, R1: isa.R0, Imm: 1}
	if ins[0] != want0 {
		t.Errorf("ins[0] = %+v, want %+v", ins[0], want0)
	}
	if ins[1].Op != isa.OpHalt {
		t.Errorf("ins[1] = %+v, want halt", ins[1])
	}
}

func TestAssembleAllOperandShapes(t *testing.T) {
	im := assemble(t, `
_start:
    mov   r1, r2
    mov   r3, -7
    mov   r4, 0x10
    mov   r5, 'A'
    ld.q  r1, [r2+8]
    ld.b  r1, [r2-1]
    ld.w  r1, [r2]
    st.d  [r3+4], r4
    push  r1
    push  42
    pop   r2
    neg   r1
    jmp   r5
    call  _start
    ret
    syscall
    halt
`)
	ins := decodeText(t, im)
	checks := []struct {
		i    int
		want isa.Instr
	}{
		{0, isa.Instr{Op: isa.OpMov, Mode: isa.ModeRR, Size: 8, R1: isa.R1, R2: isa.R2}},
		{1, isa.Instr{Op: isa.OpMov, Mode: isa.ModeRI, Size: 8, R1: isa.R3, Imm: -7}},
		{2, isa.Instr{Op: isa.OpMov, Mode: isa.ModeRI, Size: 8, R1: isa.R4, Imm: 0x10}},
		{3, isa.Instr{Op: isa.OpMov, Mode: isa.ModeRI, Size: 8, R1: isa.R5, Imm: 'A'}},
		{4, isa.Instr{Op: isa.OpLd, Mode: isa.ModeRM, Size: 8, R1: isa.R1, R2: isa.R2, Imm: 8}},
		{5, isa.Instr{Op: isa.OpLd, Mode: isa.ModeRM, Size: 1, R1: isa.R1, R2: isa.R2, Imm: -1}},
		{6, isa.Instr{Op: isa.OpLd, Mode: isa.ModeRM, Size: 2, R1: isa.R1, R2: isa.R2}},
		{7, isa.Instr{Op: isa.OpSt, Mode: isa.ModeMR, Size: 4, R1: isa.R3, R2: isa.R4, Imm: 4}},
		{8, isa.Instr{Op: isa.OpPush, Mode: isa.ModeR, Size: 8, R1: isa.R1}},
		{9, isa.Instr{Op: isa.OpPush, Mode: isa.ModeI, Size: 8, Imm: 42}},
		{10, isa.Instr{Op: isa.OpPop, Mode: isa.ModeR, Size: 8, R1: isa.R2}},
		{12, isa.Instr{Op: isa.OpJmp, Mode: isa.ModeR, Size: 8, R1: isa.R5}},
		{13, isa.Instr{Op: isa.OpCall, Mode: isa.ModeI, Size: 8, Imm: bin.TextBase}},
	}
	for _, c := range checks {
		if ins[c.i] != c.want {
			t.Errorf("ins[%d] = %+v, want %+v", c.i, ins[c.i], c.want)
		}
	}
}

func TestLabelResolution(t *testing.T) {
	im := assemble(t, `
_start:
    jmp end
middle:
    nop
end:
    halt
`)
	ins := decodeText(t, im)
	endAddr, ok := im.Symbol("end")
	if !ok {
		t.Fatal("no end symbol")
	}
	if uint64(ins[0].Imm) != endAddr {
		t.Errorf("jmp target = %#x, want %#x", ins[0].Imm, endAddr)
	}
	mid, _ := im.Symbol("middle")
	// jmp is long form (12 bytes), so middle is at TextBase+12.
	if mid != bin.TextBase+12 {
		t.Errorf("middle = %#x, want %#x", mid, bin.TextBase+12)
	}
}

func TestLocalLabels(t *testing.T) {
	im := assemble(t, `
f1:
.loop:
    jmp .loop
    ret
f2:
.loop:
    jmp .loop
    ret
_start:
    halt
`)
	ins := decodeText(t, im)
	f1, _ := im.Symbol("f1")
	f2, _ := im.Symbol("f2")
	if uint64(ins[0].Imm) != f1 {
		t.Errorf("f1 jmp .loop = %#x, want %#x", ins[0].Imm, f1)
	}
	if uint64(ins[2].Imm) != f2 {
		t.Errorf("f2 jmp .loop = %#x, want %#x", ins[2].Imm, f2)
	}
	// Local labels must not leak into the symbol table.
	for _, s := range im.Symbols {
		if strings.Contains(s.Name, "loop") {
			t.Errorf("local label leaked: %q", s.Name)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	im := assemble(t, `
_start:
    halt
    .data
msg:
    .asciz "hi\n"
raw:
    .ascii "ab"
nums:
    .byte 1, 2, 0xff
words:
    .word 0x1234
quads:
    .quad 7, msg, msg+1
flt:
    .double 1024.0
gap:
    .space 3
    .align 8
aligned:
    .byte 9
`)
	sec, _ := im.Section(".data")
	msg, _ := im.Symbol("msg")
	if msg != bin.DataBase {
		t.Fatalf("msg = %#x, want %#x", msg, bin.DataBase)
	}
	want := []byte{'h', 'i', '\n', 0, 'a', 'b', 1, 2, 0xff, 0x34, 0x12}
	for i, b := range want {
		if sec.Data[i] != b {
			t.Errorf("data[%d] = %#x, want %#x", i, sec.Data[i], b)
		}
	}
	quads, _ := im.Symbol("quads")
	off := quads - bin.DataBase
	rd := func(o uint64) uint64 {
		var v uint64
		for k := 0; k < 8; k++ {
			v |= uint64(sec.Data[o+uint64(k)]) << (8 * k)
		}
		return v
	}
	if got := rd(off); got != 7 {
		t.Errorf("quad[0] = %d, want 7", got)
	}
	if got := rd(off + 8); got != msg {
		t.Errorf("quad[1] = %#x, want msg %#x", got, msg)
	}
	if got := rd(off + 16); got != msg+1 {
		t.Errorf("quad[2] = %#x, want msg+1", got)
	}
	flt, _ := im.Symbol("flt")
	if got := rd(flt - bin.DataBase); got != math.Float64bits(1024.0) {
		t.Errorf("double bits = %#x", got)
	}
	aligned, _ := im.Symbol("aligned")
	if aligned%8 != 0 {
		t.Errorf("aligned = %#x, not 8-aligned", aligned)
	}
}

func TestMovfAndLea(t *testing.T) {
	im := assemble(t, `
_start:
    movf r1, 2.5
    lea  r2, buf+16
    halt
    .data
buf:
    .space 32
`)
	ins := decodeText(t, im)
	if uint64(ins[0].Imm) != math.Float64bits(2.5) {
		t.Errorf("movf imm = %#x, want bits of 2.5", ins[0].Imm)
	}
	buf, _ := im.Symbol("buf")
	if uint64(ins[1].Imm) != buf+16 {
		t.Errorf("lea imm = %#x, want %#x", ins[1].Imm, buf+16)
	}
}

func TestMultiUnitLinking(t *testing.T) {
	lib := Source{Name: "lib.s", Text: `
double:
    add r1, r1
    mov r0, r1
    ret
`}
	prog := Source{Name: "main.s", Text: `
_start:
    mov r1, 21
    call double
    halt
`}
	im, err := Assemble(lib, prog)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	d, ok := im.Symbol("double")
	if !ok {
		t.Fatal("double symbol missing")
	}
	ins := decodeText(t, im)
	// lib is first: add, mov, ret, then _start's mov, call, halt.
	if ins[4].Op != isa.OpCall || uint64(ins[4].Imm) != d {
		t.Errorf("call = %+v, want target %#x", ins[4], d)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	im := assemble(t, `
; full-line comment
# hash comment
_start:          ; trailing comment
    mov r0, 1    # other comment
    halt
    .data
s:  .asciz "semi;colon#hash"
`)
	sec, _ := im.Section(".data")
	if got := string(sec.Data[:15]); got != "semi;colon#hash" {
		t.Errorf("string with comment chars = %q", got)
	}
	ins := decodeText(t, im)
	if len(ins) != 2 {
		t.Errorf("got %d instructions, want 2", len(ins))
	}
}

func TestLabelOnSameLineAsInstr(t *testing.T) {
	im := assemble(t, `
_start: mov r0, 5
target: halt
`)
	tgt, ok := im.Symbol("target")
	if !ok || tgt != bin.TextBase+12 {
		t.Errorf("target = %#x, %v; want %#x", tgt, ok, bin.TextBase+12)
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		want string
	}{
		{"no start", "main:\n halt\n", "_start"},
		{"unknown mnemonic", "_start:\n frobnicate r1\n", "unknown mnemonic"},
		{"undefined symbol", "_start:\n jmp nowhere\n", "undefined symbol"},
		{"duplicate label", "_start:\n halt\n_start:\n halt\n", "duplicate"},
		{"bad register", "_start:\n mov r99, 1\n", "first operand"},
		{"bad directive", "_start:\n .frob 1\n", "unknown directive"},
		{"local label no scope", ".loop:\n halt\n", "local label"},
		{"bad size suffix", "_start:\n ld.x r1, [r2]\n", "size suffix"},
		{"size suffix on add", "_start:\n add.q r1, r2\n", "size suffix"},
		{"too many operands", "_start:\n add r1, r2, r3\n", "too many operands"},
		{"unbalanced bracket", "_start:\n ld.q r1, [r2\n", "unbalanced"},
		{"bad string", "_start:\n halt\n .data\ns: .asciz hello\n", "quoted string"},
		{"bad align", "_start:\n .align 3\n", "align"},
		{"mode not allowed", "_start:\n ret r1\n", "not allowed"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(Source{Name: "t.s", Text: tt.text})
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Assemble(Source{Name: "unit.s", Text: "_start:\n halt\n bogus r1\n"})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "unit.s:3") {
		t.Errorf("error %q lacks unit:line position", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad input")
		}
	}()
	MustAssemble(Source{Name: "bad.s", Text: "nonsense"})
}

func TestRetWithOperandRejected(t *testing.T) {
	// `ret r1` parses as one operand; ModeR is not allowed for ret.
	_, err := Assemble(Source{Name: "t.s", Text: "_start:\n pop\n"})
	if err == nil {
		t.Error("pop without operand should fail to encode")
	}
}
