package asm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bin"
	"repro/internal/isa"
)

// mnemonics maps assembler mnemonics to opcodes. Size-suffixed forms
// (ld.b etc.) and pseudo-instructions are handled in scanInstr.
var mnemonics = map[string]isa.Op{
	"nop": isa.OpNop, "mov": isa.OpMov,
	"push": isa.OpPush, "pop": isa.OpPop,
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul,
	"div": isa.OpDiv, "mod": isa.OpMod, "sdiv": isa.OpSdiv, "smod": isa.OpSmod,
	"neg": isa.OpNeg,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor, "not": isa.OpNot,
	"shl": isa.OpShl, "shr": isa.OpShr, "sar": isa.OpSar,
	"cmp": isa.OpCmp, "test": isa.OpTest,
	"jmp": isa.OpJmp, "je": isa.OpJe, "jne": isa.OpJne,
	"jl": isa.OpJl, "jle": isa.OpJle, "jg": isa.OpJg, "jge": isa.OpJge,
	"jb": isa.OpJb, "jbe": isa.OpJbe, "ja": isa.OpJa, "jae": isa.OpJae,
	"jz": isa.OpJe, "jnz": isa.OpJne, // aliases
	"call": isa.OpCall, "ret": isa.OpRet,
	"fadd": isa.OpFadd, "fsub": isa.OpFsub, "fmul": isa.OpFmul, "fdiv": isa.OpFdiv,
	"fcmp": isa.OpFcmp, "i2f": isa.OpI2f, "f2i": isa.OpF2i,
	"syscall": isa.OpSyscall, "halt": isa.OpHalt,
}

var sizeSuffixes = map[string]uint8{"b": 1, "w": 2, "d": 4, "q": 8}

// operand is one parsed instruction operand.
type operand struct {
	kind   operandKind
	reg    isa.Reg
	imm    int64
	ref    string
	addend int64
	memReg isa.Reg
	memOff int64
}

type operandKind int

const (
	opndReg operandKind = iota + 1
	opndImm             // numeric immediate
	opndRef             // symbol reference (+addend)
	opndMem             // [reg+off]
)

func (a *assembler) scanInstr(st *unitState, line string, lineNo int) error {
	word, rest := splitWord(line)
	word = strings.ToLower(word)

	// movf: float64 immediate pseudo-instruction. The second operand is a
	// float literal, so it bypasses the regular operand parser.
	if word == "movf" {
		comma := strings.IndexByte(rest, ',')
		if comma < 0 {
			return a.errf(st, lineNo, "movf wants `movf rN, <float>`")
		}
		r, ok := parseReg(rest[:comma])
		if !ok {
			return a.errf(st, lineNo, "movf wants `movf rN, <float>`")
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(rest[comma+1:]), 64)
		if err != nil {
			return a.errf(st, lineNo, "movf: bad float: %v", err)
		}
		pi := &parsedInstr{op: isa.OpMov, mode: isa.ModeRI, size: 8,
			r1: r, imm: int64(math.Float64bits(f))}
		a.addItem(st, lineNo, uint64(instrLen(pi)), item{instr: pi})
		return nil
	}
	// lea: alias for mov reg, symbol.
	if word == "lea" {
		word = "mov"
	}

	size := uint8(8)
	if dot := strings.IndexByte(word, '.'); dot >= 0 {
		suffix := word[dot+1:]
		var ok bool
		size, ok = sizeSuffixes[suffix]
		if !ok {
			return a.errf(st, lineNo, "bad size suffix %q", suffix)
		}
		word = word[:dot]
		if word != "ld" && word != "st" {
			return a.errf(st, lineNo, "size suffix only valid on ld/st")
		}
	}
	if word == "ld" || word == "st" {
		return a.scanLdSt(st, word, size, rest, lineNo)
	}

	op, ok := mnemonics[word]
	if !ok {
		return a.errf(st, lineNo, "unknown mnemonic %q", word)
	}
	ops, err := parseOperands(rest, st.scope)
	if err != nil {
		return a.errf(st, lineNo, "%s: %v", word, err)
	}
	pi := &parsedInstr{op: op, size: 8}
	switch len(ops) {
	case 0:
		pi.mode = isa.ModeNone
	case 1:
		switch ops[0].kind {
		case opndReg:
			pi.mode = isa.ModeR
			pi.r1 = ops[0].reg
		case opndImm:
			pi.mode = isa.ModeI
			pi.imm = ops[0].imm
		case opndRef:
			pi.mode = isa.ModeI
			pi.immRef = ops[0].ref
			pi.immAddend = ops[0].addend
		default:
			return a.errf(st, lineNo, "%s: bad operand", word)
		}
	case 2:
		if ops[0].kind != opndReg {
			return a.errf(st, lineNo, "%s: first operand must be a register", word)
		}
		pi.r1 = ops[0].reg
		switch ops[1].kind {
		case opndReg:
			pi.mode = isa.ModeRR
			pi.r2 = ops[1].reg
		case opndImm:
			pi.mode = isa.ModeRI
			pi.imm = ops[1].imm
		case opndRef:
			pi.mode = isa.ModeRI
			pi.immRef = ops[1].ref
			pi.immAddend = ops[1].addend
		default:
			return a.errf(st, lineNo, "%s: bad second operand", word)
		}
	default:
		return a.errf(st, lineNo, "%s: too many operands", word)
	}
	a.addItem(st, lineNo, uint64(instrLen(pi)), item{instr: pi})
	return nil
}

func (a *assembler) scanLdSt(st *unitState, word string, size uint8, rest string, lineNo int) error {
	ops, err := parseOperands(rest, st.scope)
	if err != nil {
		return a.errf(st, lineNo, "%s: %v", word, err)
	}
	if len(ops) != 2 {
		return a.errf(st, lineNo, "%s wants two operands", word)
	}
	pi := &parsedInstr{size: size}
	if word == "ld" {
		if ops[0].kind != opndReg || ops[1].kind != opndMem {
			return a.errf(st, lineNo, "ld wants `ld.SZ rN, [rM+off]`")
		}
		pi.op, pi.mode = isa.OpLd, isa.ModeRM
		pi.r1, pi.r2, pi.imm = ops[0].reg, ops[1].memReg, ops[1].memOff
	} else {
		if ops[0].kind != opndMem || ops[1].kind != opndReg {
			return a.errf(st, lineNo, "st wants `st.SZ [rM+off], rN`")
		}
		pi.op, pi.mode = isa.OpSt, isa.ModeMR
		pi.r1, pi.r2, pi.imm = ops[0].memReg, ops[1].reg, ops[0].memOff
	}
	a.addItem(st, lineNo, uint64(instrLen(pi)), item{instr: pi})
	return nil
}

func instrLen(pi *parsedInstr) int {
	if pi.mode.HasImm() {
		return isa.MaxEncodedLen
	}
	return 4
}

// emit is pass 2: resolve references and produce section bytes.
func (a *assembler) emit() error {
	for _, it := range a.items {
		var b []byte
		switch {
		case it.instr != nil:
			pi := it.instr
			imm := pi.imm
			if pi.immRef != "" {
				addr, err := a.resolve(pi.immRef, it)
				if err != nil {
					return err
				}
				imm = int64(addr) + pi.immAddend
			}
			in := isa.Instr{Op: pi.op, Mode: pi.mode, Size: pi.size,
				R1: pi.r1, R2: pi.r2, Imm: imm}
			var err error
			b, err = isa.Encode(nil, in)
			if err != nil {
				return &Error{Unit: it.unit, Line: it.line, Msg: err.Error()}
			}
		case it.data != nil:
			b = append(b, it.data.bytes...)
			for _, q := range it.data.quads {
				v := uint64(q.val)
				if q.ref != "" {
					addr, err := a.resolve(q.ref, it)
					if err != nil {
						return err
					}
					v = addr + uint64(q.addend)
				}
				for k := 0; k < 8; k++ {
					b = append(b, byte(v>>(8*k)))
				}
			}
		}
		if it.section == ".data" {
			off := it.addr - bin.DataBase
			a.data = appendAt(a.data, off, b)
		} else {
			off := it.addr - bin.TextBase
			a.text = appendAt(a.text, off, b)
		}
	}
	return nil
}

func appendAt(buf []byte, off uint64, b []byte) []byte {
	need := int(off) + len(b)
	for len(buf) < need {
		buf = append(buf, 0)
	}
	copy(buf[off:], b)
	return buf
}

func (a *assembler) resolve(ref string, it item) (uint64, error) {
	// Local labels were parsed with their scope prefix already attached by
	// parseOperands; fall back to the global namespace.
	if addr, ok := a.symbols[ref]; ok {
		return addr, nil
	}
	display := ref
	if i := strings.Index(ref, localSep); i >= 0 {
		display = ref[i+1:]
		// A scoped lookup missed; try as a plain global (e.g. a label that
		// merely starts with a dot at top level is not supported, so fail).
	}
	return 0, &Error{Unit: it.unit, Line: it.line,
		Msg: fmt.Sprintf("undefined symbol %q", display)}
}

// parseOperands splits and parses the operand list. scope is the current
// global label, used to qualify local-label references.
func parseOperands(rest, scope string) ([]operand, error) {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil, nil
	}
	parts, err := splitOperands(rest)
	if err != nil {
		return nil, err
	}
	out := make([]operand, 0, len(parts))
	for _, p := range parts {
		o, err := parseOperand(p, scope)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

func parseOperand(s, scope string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if s[0] == '[' {
		if s[len(s)-1] != ']' {
			return operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		return parseMemOperand(s[1 : len(s)-1])
	}
	if r, ok := parseReg(s); ok {
		return operand{kind: opndReg, reg: r}, nil
	}
	if n, err := parseInt(s); err == nil {
		return operand{kind: opndImm, imm: n}, nil
	}
	ref, addend, err := parseSymRef(s)
	if err != nil {
		return operand{}, err
	}
	if strings.HasPrefix(ref, ".") {
		if scope == "" {
			return operand{}, fmt.Errorf("local label %q outside any scope", ref)
		}
		ref = scope + localSep + ref
	}
	return operand{kind: opndRef, ref: ref, addend: addend}, nil
}

func parseMemOperand(inner string) (operand, error) {
	inner = strings.TrimSpace(inner)
	reg := inner
	off := int64(0)
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			reg = strings.TrimSpace(inner[:i])
			n, err := parseInt(strings.TrimSpace(inner[i:]))
			if err != nil {
				return operand{}, fmt.Errorf("bad memory offset in [%s]", inner)
			}
			off = n
			break
		}
	}
	r, ok := parseReg(reg)
	if !ok {
		return operand{}, fmt.Errorf("bad base register in [%s]", inner)
	}
	return operand{kind: opndMem, memReg: r, memOff: off}, nil
}

func parseReg(s string) (isa.Reg, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return isa.SP, true
	}
	if len(s) < 2 || s[0] != 'r' {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, false
	}
	return isa.Reg(n), true
}

// parseInt parses decimal, hex (0x), negative and character ('c')
// immediates.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if body == "\\n" {
			return '\n', nil
		}
		if body == "\\t" {
			return '\t', nil
		}
		if body == "\\0" {
			return 0, nil
		}
		if body == "\\\\" {
			return '\\', nil
		}
		if body == "\\'" {
			return '\'', nil
		}
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, fmt.Errorf("bad character literal %s", s)
	}
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

// parseSymRef parses `name` or `name+imm` / `name-imm`.
func parseSymRef(s string) (ref string, addend int64, err error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			name := strings.TrimSpace(s[:i])
			if !isIdent(name) {
				break
			}
			n, perr := parseInt(strings.TrimSpace(s[i:]))
			if perr != nil {
				return "", 0, fmt.Errorf("bad symbol addend in %q", s)
			}
			return name, n, nil
		}
	}
	if !isIdent(s) {
		return "", 0, fmt.Errorf("bad operand %q", s)
	}
	return s, 0, nil
}

// splitOperands splits a comma-separated operand list, respecting brackets
// and string quotes.
func splitOperands(s string) ([]string, error) {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
				if depth < 0 {
					return nil, fmt.Errorf("unbalanced brackets in %q", s)
				}
			}
		case ',':
			if depth == 0 && !inStr {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("unbalanced brackets or quotes in %q", s)
	}
	last := strings.TrimSpace(s[start:])
	if last != "" {
		parts = append(parts, last)
	}
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("empty operand in %q", s)
		}
	}
	return parts, nil
}

// parseString parses a double-quoted string literal with \n \t \0 \\ \"
// escapes.
func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in %q", s)
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '0':
			out.WriteByte(0)
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

func sortSymbols(syms []bin.Symbol) {
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].Addr != syms[j].Addr {
			return syms[i].Addr < syms[j].Addr
		}
		return syms[i].Name < syms[j].Name
	})
}
