package libc

import (
	"crypto/aes"
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/gos"
)

// runMain assembles main.s against the whole library and runs it.
func runMain(t *testing.T, mainText string, cfg gos.Config) *gos.Result {
	t.Helper()
	units := append(All(), asm.Source{Name: "main.s", Text: mainText})
	img, err := asm.Assemble(units...)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := gos.New(img, cfg)
	if err != nil {
		t.Fatalf("gos.New: %v", err)
	}
	return m.Run()
}

func TestStrlen(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, s
    call strlen
    ret
    .data
s: .asciz "hello, world"
`, gos.Config{})
	if res.ExitStatus != 12 {
		t.Errorf("strlen = %d, want 12", res.ExitStatus)
	}
}

func TestStrcmp(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, a
    mov r2, b
    call strcmp
    cmp r0, 0
    jne .differ
    mov r1, c
    mov r2, d
    call strcmp
    cmp r0, 0
    je .bad
    mov r0, 1
    ret
.differ:
    mov r0, 2
    ret
.bad:
    mov r0, 3
    ret
    .data
a: .asciz "same"
b: .asciz "same"
c: .asciz "abc"
d: .asciz "abd"
`, gos.Config{})
	if res.ExitStatus != 1 {
		t.Errorf("strcmp test = %d, want 1", res.ExitStatus)
	}
}

func TestStrcpyMemcpy(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, dst
    mov r2, src
    call strcpy
    mov r1, dst2
    mov r2, src
    mov r3, 3
    call memcpy
    mov r1, dst
    call strlen
    mov r12, r0
    mov r1, dst2
    ld.b r0, [r1+2]
    add r0, r12
    ret
    .data
src:  .asciz "copyme"
dst:  .space 16
dst2: .space 16
`, gos.Config{})
	// strlen("copyme")=6 plus 'p'=112 -> 118
	if res.ExitStatus != 6+'p' {
		t.Errorf("got %d, want %d", res.ExitStatus, 6+'p')
	}
}

func TestAtoi(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"0", 0},
		{"7", 7},
		{"42", 42},
		{"123", 123},
		{"-5", -5},
		{"99xyz", 99},
	}
	for _, tt := range tests {
		res := runMain(t, `
main:
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jge .pos
    neg r0
    add r0, 100
.pos:
    ret
`, gos.Config{Argv: []string{"prog", tt.in}})
		want := tt.want
		if want < 0 {
			want = -want + 100
		}
		if res.ExitStatus != want {
			t.Errorf("atoi(%q) exit = %d, want %d", tt.in, res.ExitStatus, want)
		}
	}
}

func TestPutsAndPrintf(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, fmt
    mov r2, -42
    mov r3, str
    call printf
    mov r1, fmt2
    mov r2, 0xbeef
    mov r3, 'Z'
    call printf
    mov r1, fmt3
    mov r2, 12345
    call printf
    mov r0, 0
    ret
    .data
fmt:  .asciz "d=%d s=%s\n"
fmt2: .asciz "x=%x c=%c 100%%\n"
fmt3: .asciz "u=%u\n"
str:  .asciz "hi"
`, gos.Config{})
	want := "d=-42 s=hi\nx=beef c=Z 100%\nu=12345\n"
	if res.Stdout != want {
		t.Errorf("printf output = %q, want %q", res.Stdout, want)
	}
}

func TestPrintNumbersEdgeCases(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, 0
    call print_u64
    mov r1, '\n'
    call print_char
    mov r1, 0
    call print_hex
    mov r1, '\n'
    call print_char
    mov r0, 0
    ret
`, gos.Config{})
	if res.Stdout != "0\n0\n" {
		t.Errorf("zero printing = %q, want %q", res.Stdout, "0\n0\n")
	}
}

func TestAtof(t *testing.T) {
	tests := []struct {
		in   string
		want float64
	}{
		{"0", 0},
		{"3", 3},
		{"3.5", 3.5},
		{"1024.25", 1024.25},
		{"-2.75", -2.75},
		{"0.0001", 0.0001},
	}
	for _, tt := range tests {
		// Return 1 when atof(arg) == want (bits compared via fcmp).
		res := runMain(t, fmt.Sprintf(`
main:
    ld.q r1, [r2+8]
    call atof
    mov r1, r0
    movf r2, %v
    fcmp r1, r2
    je .eq
    mov r0, 0
    ret
.eq:
    mov r0, 1
    ret
`, tt.want), gos.Config{Argv: []string{"prog", tt.in}})
		if res.ExitStatus != 1 {
			t.Errorf("atof(%q) != %v", tt.in, tt.want)
		}
	}
}

func TestFsinAccuracy(t *testing.T) {
	// sin(0.5) via Taylor; compare against math.Sin within 1e-6 by scaling.
	res := runMain(t, `
main:
    movf r1, 0.5
    call fsin
    ; scale by 1e6 and truncate
    movf r2, 1000000.0
    fmul r0, r2
    f2i r0
    ret
`, gos.Config{})
	want := int(math.Sin(0.5) * 1e6)
	if res.ExitStatus != want%256 && res.ExitStatus != want&0xff {
		// exit status is truncated to low byte by our harness? No: full int.
		t.Logf("note: exit=%d want=%d", res.ExitStatus, want)
	}
	if res.ExitStatus != want {
		t.Errorf("fsin(0.5)*1e6 = %d, want %d", res.ExitStatus, want)
	}
}

func TestFpowi(t *testing.T) {
	res := runMain(t, `
main:
    movf r1, 3.0
    mov  r2, 4
    call fpowi
    f2i r0
    ret
`, gos.Config{})
	if res.ExitStatus != 81 {
		t.Errorf("3^4 = %d, want 81", res.ExitStatus)
	}
}

func TestRandDeterministic(t *testing.T) {
	prog := `
main:
    mov r1, 7
    call srand
    call rand
    mov r12, r0
    call rand
    xor r12, r0
    mov r0, r12
    and r0, 0xff
    ret
`
	a := runMain(t, prog, gos.Config{})
	b := runMain(t, prog, gos.Config{})
	if a.ExitStatus != b.ExitStatus {
		t.Error("rand sequence must be deterministic for a fixed seed")
	}
	// Different seed should (for these constants) give a different value.
	c := runMain(t, `
main:
    mov r1, 8
    call srand
    call rand
    mov r12, r0
    call rand
    xor r12, r0
    mov r0, r12
    and r0, 0xff
    ret
`, gos.Config{})
	if c.ExitStatus == a.ExitStatus {
		t.Error("different seeds should differ (LCG)")
	}
}

func TestSHA1MatchesStdlib(t *testing.T) {
	for _, msg := range []string{"", "a", "abc", "hello world", "0123456789012345678901234567890123456789012345678901234"} {
		prog := fmt.Sprintf(`
main:
    mov r1, msg
    mov r2, %d
    mov r3, out
    call sha1
    ; print digest as hex bytes
    mov r12, 0
.loop:
    cmp r12, 20
    je .done
    mov r1, out
    add r1, r12
    ld.b r1, [r1+0]
    cmp r1, 16
    jae .two
    push r1
    mov r1, '0'
    call print_char
    pop r1
.two:
    call print_hex
    add r12, 1
    jmp .loop
.done:
    mov r0, 0
    ret
    .data
msg: .asciz %q
out: .space 20
`, len(msg), msg)
		res := runMain(t, prog, gos.Config{MaxSteps: 5_000_000})
		want := sha1.Sum([]byte(msg))
		if res.Stdout != hex.EncodeToString(want[:]) {
			t.Errorf("sha1(%q) = %s, want %s", msg, res.Stdout, hex.EncodeToString(want[:]))
		}
	}
}

func TestAESMatchesStdlib(t *testing.T) {
	key := []byte("0123456789abcdef")
	pt := []byte("the block input!")
	prog := fmt.Sprintf(`
main:
    mov r1, key
    mov r2, pt
    mov r3, out
    call aes128_encrypt
    mov r12, 0
.loop:
    cmp r12, 16
    je .done
    mov r1, out
    add r1, r12
    ld.b r1, [r1+0]
    cmp r1, 16
    jae .two
    push r1
    mov r1, '0'
    call print_char
    pop r1
.two:
    call print_hex
    add r12, 1
    jmp .loop
.done:
    mov r0, 0
    ret
    .data
key: .ascii %q
pt:  .ascii %q
out: .space 16
`, string(key), string(pt))
	res := runMain(t, prog, gos.Config{MaxSteps: 5_000_000})
	block, err := aes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 16)
	block.Encrypt(want, pt)
	if res.Stdout != hex.EncodeToString(want) {
		t.Errorf("aes128(%q) = %s, want %s", pt, res.Stdout, hex.EncodeToString(want))
	}
}

func TestIabs(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, -9
    call iabs
    mov r12, r0
    mov r1, 4
    call iabs
    add r0, r12
    ret
`, gos.Config{})
	if res.ExitStatus != 13 {
		t.Errorf("iabs sum = %d, want 13", res.ExitStatus)
	}
}

func TestStrncmp(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, a
    mov r2, b
    mov r3, 3
    call strncmp       ; first 3 bytes agree
    cmp r0, 0
    jne .bad
    mov r1, a
    mov r2, b
    mov r3, 5
    call strncmp       ; differ at byte 4
    cmp r0, 0
    je .bad
    mov r0, 1
    ret
.bad:
    mov r0, 0
    ret
    .data
a: .asciz "abcXe"
b: .asciz "abcYe"
`, gos.Config{})
	if res.ExitStatus != 1 {
		t.Errorf("strncmp test = %d, want 1", res.ExitStatus)
	}
}

func TestStrcatAndStrchr(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, buf
    mov r2, hello
    call strcpy
    mov r1, buf
    mov r2, world
    call strcat
    mov r1, buf
    call strlen
    mov r12, r0        ; 10
    mov r1, buf
    mov r2, 'w'
    call strchr
    cmp r0, 0
    je .bad
    ld.b r0, [r0+1]    ; byte after 'w' is 'o'
    add r0, r12
    ret
.bad:
    mov r0, 0
    ret
    .data
hello: .asciz "hello"
world: .asciz "world"
buf:   .space 32
`, gos.Config{})
	if res.ExitStatus != 10+'o' {
		t.Errorf("strcat/strchr = %d, want %d", res.ExitStatus, 10+'o')
	}
}

func TestMemsetMemcmp(t *testing.T) {
	res := runMain(t, `
main:
    mov r1, b1
    mov r2, 0x5a
    mov r3, 8
    call memset
    mov r1, b2
    mov r2, 0x5a
    mov r3, 8
    call memset
    mov r1, b1
    mov r2, b2
    mov r3, 8
    call memcmp
    cmp r0, 0
    jne .bad
    mov r6, b2
    mov r7, 1
    st.b [r6+3], r7
    mov r1, b1
    mov r2, b2
    mov r3, 8
    call memcmp
    cmp r0, 0
    je .bad
    mov r0, 7
    ret
.bad:
    mov r0, 0
    ret
    .data
b1: .space 8
b2: .space 8
`, gos.Config{})
	if res.ExitStatus != 7 {
		t.Errorf("memset/memcmp = %d, want 7", res.ExitStatus)
	}
}
