package libc

// SHA1 implements single-block SHA-1 in LB64 assembly: messages of at most
// 55 bytes, which covers every bomb input. The full round structure (80
// rounds, message schedule, rotations) is genuine, so the instruction
// trace and the derived constraint system have real cryptographic
// complexity — the essence of the paper's crypto-function challenge.
const SHA1 = `
; sha1(r1=msg, r2=len<=55, r3=out20)
sha1:
    push r12
    push r13
    push r14
    push r3            ; out pointer, popped before writing the digest
    mov  r12, r1       ; msg
    mov  r13, r2       ; len

    ; zero the 64-byte block
    mov r6, sha_blk
    mov r7, 0
.zb:
    cmp r7, 64
    je .zb_done
    mov r8, 0
    st.b [r6+0], r8
    add r6, 1
    add r7, 1
    jmp .zb
.zb_done:

    ; copy message into the block
    mov r6, sha_blk
    mov r7, 0
.cp:
    cmp r7, r13
    je .cp_done
    ld.b r8, [r12+0]
    st.b [r6+0], r8
    add r6, 1
    add r12, 1
    add r7, 1
    jmp .cp
.cp_done:
    ; append the 0x80 terminator
    mov r8, 0x80
    st.b [r6+0], r8
    ; big-endian bit length in the last two bytes (len<=55 -> bits<=440)
    mov r8, r13
    shl r8, 3
    mov r6, sha_blk
    mov r9, r8
    shr r9, 8
    st.b [r6+62], r9
    st.b [r6+63], r8

    ; w[0..15]: big-endian 32-bit words of the block
    mov r7, 0
.w16:
    cmp r7, 16
    je .w16_done
    mov r6, sha_blk
    mov r8, r7
    shl r8, 2
    add r6, r8
    ld.b r9, [r6+0]
    shl r9, 8
    ld.b r10, [r6+1]
    or  r9, r10
    shl r9, 8
    ld.b r10, [r6+2]
    or  r9, r10
    shl r9, 8
    ld.b r10, [r6+3]
    or  r9, r10
    mov r6, sha_w
    add r6, r8
    st.d [r6+0], r9
    add r7, 1
    jmp .w16
.w16_done:

    ; message schedule: w[i] = rol1(w[i-3]^w[i-8]^w[i-14]^w[i-16])
    mov r7, 16
.wext:
    cmp r7, 80
    je .wext_done
    mov r6, sha_w
    mov r8, r7
    shl r8, 2
    add r6, r8
    ld.d r9, [r6-12]
    ld.d r10, [r6-32]
    xor r9, r10
    ld.d r10, [r6-56]
    xor r9, r10
    ld.d r10, [r6-64]
    xor r9, r10
    mov r10, r9
    shl r10, 1
    shr r9, 31
    or  r10, r9
    and r10, 0xffffffff
    st.d [r6+0], r10
    add r7, 1
    jmp .wext
.wext_done:

    ; a..e in r8..r11, r14
    mov r8, 0x67452301
    mov r9, 0xEFCDAB89
    mov r10, 0x98BADCFE
    mov r11, 0x10325476
    mov r14, 0xC3D2E1F0
    mov r7, 0
.round:
    cmp r7, 80
    je .round_done
    cmp r7, 20
    jb .q0
    cmp r7, 40
    jb .q1
    cmp r7, 60
    jb .q2
    mov r5, r9          ; q3: f = b^c^d
    xor r5, r10
    xor r5, r11
    mov r6, 0xCA62C1D6
    jmp .fk_done
.q0:
    mov r5, r9          ; f = (b&c) | (~b&d)
    and r5, r10
    mov r6, r9
    not r6
    and r6, r11
    or  r5, r6
    mov r6, 0x5A827999
    jmp .fk_done
.q1:
    mov r5, r9          ; f = b^c^d
    xor r5, r10
    xor r5, r11
    mov r6, 0x6ED9EBA1
    jmp .fk_done
.q2:
    mov r5, r9          ; f = (b&c)|(b&d)|(c&d)
    and r5, r10
    mov r6, r9
    and r6, r11
    or  r5, r6
    mov r6, r10
    and r6, r11
    or  r5, r6
    mov r6, 0x8F1BBCDC
.fk_done:
    ; tmp = rol5(a) + f + e + k + w[i]
    mov r4, r8
    shl r4, 5
    mov r3, r8
    shr r3, 27
    or  r4, r3
    and r4, 0xffffffff
    add r4, r5
    add r4, r14
    add r4, r6
    mov r6, sha_w
    mov r3, r7
    shl r3, 2
    add r6, r3
    ld.d r3, [r6+0]
    add r4, r3
    and r4, 0xffffffff
    ; e=d; d=c; c=rol30(b); b=a; a=tmp
    mov r14, r11
    mov r11, r10
    mov r10, r9
    shl r10, 30
    mov r3, r9
    shr r3, 2
    or  r10, r3
    and r10, 0xffffffff
    mov r9, r8
    mov r8, r4
    add r7, 1
    jmp .round
.round_done:

    ; digest = init + a..e, big-endian
    pop r3             ; out
    mov r1, r8
    add r1, 0x67452301
    mov r2, r3
    call sha_store_be32
    mov r1, r9
    add r1, 0xEFCDAB89
    mov r2, r3
    add r2, 4
    call sha_store_be32
    mov r1, r10
    add r1, 0x98BADCFE
    mov r2, r3
    add r2, 8
    call sha_store_be32
    mov r1, r11
    add r1, 0x10325476
    mov r2, r3
    add r2, 12
    call sha_store_be32
    mov r1, r14
    add r1, 0xC3D2E1F0
    mov r2, r3
    add r2, 16
    call sha_store_be32

    pop r14
    pop r13
    pop r12
    mov r0, 0
    ret

; sha_store_be32(r1=value, r2=addr): store low 32 bits big-endian
sha_store_be32:
    mov r6, r1
    shr r6, 24
    st.b [r2+0], r6
    mov r6, r1
    shr r6, 16
    st.b [r2+1], r6
    mov r6, r1
    shr r6, 8
    st.b [r2+2], r6
    st.b [r2+3], r1
    ret

    .data
    .align 8
sha_blk:
    .space 64
sha_w:
    .space 320
`
