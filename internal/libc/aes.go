package libc

// AES implements AES-128 ECB single-block encryption in LB64 assembly:
// full key expansion and the ten SubBytes/ShiftRows/MixColumns/AddRoundKey
// rounds, with the standard S-box as a data table. S-box lookups are
// data-dependent memory reads — the hardest case for constraint modeling —
// and the round structure produces the trace blowup the paper's AES bomb
// relies on.
const AES = `
; aes128_encrypt(r1=key16, r2=in16, r3=out16)
aes128_encrypt:
    push r12
    push r13
    push r14
    push r3            ; out
    push r2            ; in
    mov  r12, r1       ; key

    ; round key 0 = key
    mov r6, aes_rk
    mov r7, 0
.kcopy:
    cmp r7, 16
    je .kexp
    ld.b r8, [r12+0]
    st.b [r6+0], r8
    add r6, 1
    add r12, 1
    add r7, 1
    jmp .kcopy
.kexp:
    ; expand words 4..43
    mov r7, 4
.kloop:
    cmp r7, 44
    je .kdone
    ; t = word i-1 as bytes r8..r11
    mov r6, aes_rk
    mov r5, r7
    sub r5, 1
    shl r5, 2
    add r6, r5
    ld.b r8, [r6+0]
    ld.b r9, [r6+1]
    ld.b r10, [r6+2]
    ld.b r11, [r6+3]
    mov r5, r7
    and r5, 3
    cmp r5, 0
    jne .noxform
    ; rotword
    mov r5, r8
    mov r8, r9
    mov r9, r10
    mov r10, r11
    mov r11, r5
    ; subword
    mov r5, aes_sbox
    add r8, r5
    ld.b r8, [r8+0]
    add r9, r5
    ld.b r9, [r9+0]
    add r10, r5
    ld.b r10, [r10+0]
    add r11, r5
    ld.b r11, [r11+0]
    ; rcon
    mov r5, r7
    shr r5, 2
    sub r5, 1
    mov r6, aes_rcon
    add r6, r5
    ld.b r5, [r6+0]
    xor r8, r5
.noxform:
    ; word i = word i-4 ^ t
    mov r6, aes_rk
    mov r5, r7
    sub r5, 4
    shl r5, 2
    add r6, r5
    ld.b r5, [r6+0]
    xor r8, r5
    ld.b r5, [r6+1]
    xor r9, r5
    ld.b r5, [r6+2]
    xor r10, r5
    ld.b r5, [r6+3]
    xor r11, r5
    mov r6, aes_rk
    mov r5, r7
    shl r5, 2
    add r6, r5
    st.b [r6+0], r8
    st.b [r6+1], r9
    st.b [r6+2], r10
    st.b [r6+3], r11
    add r7, 1
    jmp .kloop
.kdone:

    ; state = in ^ round key 0
    pop r2
    mov r6, aes_st
    mov r5, aes_rk
    mov r7, 0
.init:
    cmp r7, 16
    je .rounds
    ld.b r8, [r2+0]
    ld.b r9, [r5+0]
    xor r8, r9
    st.b [r6+0], r8
    add r2, 1
    add r5, 1
    add r6, 1
    add r7, 1
    jmp .init
.rounds:
    mov r13, 1
.rloop:
    call aes_subbytes
    call aes_shiftrows
    cmp r13, 10
    je .lastround
    call aes_mixcolumns
.lastround:
    mov r1, r13
    call aes_addroundkey
    add r13, 1
    cmp r13, 11
    jne .rloop

    ; write state to out
    pop r3
    mov r6, aes_st
    mov r7, 0
.out:
    cmp r7, 16
    je .fin
    ld.b r8, [r6+0]
    st.b [r3+0], r8
    add r6, 1
    add r3, 1
    add r7, 1
    jmp .out
.fin:
    pop r14
    pop r13
    pop r12
    mov r0, 0
    ret

; aes_subbytes: state[i] = sbox[state[i]]
aes_subbytes:
    mov r6, aes_st
    mov r7, 0
.loop:
    cmp r7, 16
    je .done
    ld.b r8, [r6+0]
    mov r9, aes_sbox
    add r9, r8
    ld.b r8, [r9+0]
    st.b [r6+0], r8
    add r6, 1
    add r7, 1
    jmp .loop
.done:
    ret

; aes_shiftrows: rotate row r left by r (column-major state layout)
aes_shiftrows:
    mov r6, aes_st
    ; row 1: left by 1
    ld.b r7, [r6+1]
    ld.b r8, [r6+5]
    st.b [r6+1], r8
    ld.b r8, [r6+9]
    st.b [r6+5], r8
    ld.b r8, [r6+13]
    st.b [r6+9], r8
    st.b [r6+13], r7
    ; row 2: swap pairs
    ld.b r7, [r6+2]
    ld.b r8, [r6+10]
    st.b [r6+2], r8
    st.b [r6+10], r7
    ld.b r7, [r6+6]
    ld.b r8, [r6+14]
    st.b [r6+6], r8
    st.b [r6+14], r7
    ; row 3: left by 3 (= right by 1)
    ld.b r7, [r6+15]
    ld.b r8, [r6+11]
    st.b [r6+15], r8
    ld.b r8, [r6+7]
    st.b [r6+11], r8
    ld.b r8, [r6+3]
    st.b [r6+7], r8
    st.b [r6+3], r7
    ret

; aes_xtime(r1=b) -> r0 = GF(2^8) doubling
aes_xtime:
    mov r0, r1
    shl r0, 1
    and r0, 0xff
    and r1, 0x80
    cmp r1, 0
    je .done
    xor r0, 0x1b
.done:
    ret

; aes_mixcolumns: per column GF mixing
aes_mixcolumns:
    push r12
    push r13
    push r14
    mov r12, aes_st
    mov r13, 0
.cloop:
    cmp r13, 4
    je .done
    ld.b r7, [r12+0]
    ld.b r8, [r12+1]
    ld.b r9, [r12+2]
    ld.b r10, [r12+3]
    mov r11, r7
    xor r11, r8
    xor r11, r9
    xor r11, r10       ; t = s0^s1^s2^s3
    mov r14, r7        ; u = original s0
    ; s0 ^= t ^ xtime(s0^s1)
    mov r1, r7
    xor r1, r8
    call aes_xtime
    xor r7, r11
    xor r7, r0
    ; s1 ^= t ^ xtime(s1^s2)
    mov r1, r8
    xor r1, r9
    call aes_xtime
    xor r8, r11
    xor r8, r0
    ; s2 ^= t ^ xtime(s2^s3)
    mov r1, r9
    xor r1, r10
    call aes_xtime
    xor r9, r11
    xor r9, r0
    ; s3 ^= t ^ xtime(s3^u)
    mov r1, r10
    xor r1, r14
    call aes_xtime
    xor r10, r11
    xor r10, r0
    st.b [r12+0], r7
    st.b [r12+1], r8
    st.b [r12+2], r9
    st.b [r12+3], r10
    add r12, 4
    add r13, 1
    jmp .cloop
.done:
    pop r14
    pop r13
    pop r12
    ret

; aes_addroundkey(r1=round): state ^= rk[16*round ..]
aes_addroundkey:
    mov r6, aes_st
    mov r7, aes_rk
    shl r1, 4
    add r7, r1
    mov r8, 0
.loop:
    cmp r8, 16
    je .done
    ld.b r9, [r6+0]
    ld.b r10, [r7+0]
    xor r9, r10
    st.b [r6+0], r9
    add r6, 1
    add r7, 1
    add r8, 1
    jmp .loop
.done:
    ret

    .data
    .align 8
aes_st:
    .space 16
aes_rk:
    .space 176
aes_rcon:
    .byte 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36
aes_sbox:
    .byte 0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76
    .byte 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0
    .byte 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15
    .byte 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75
    .byte 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84
    .byte 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf
    .byte 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8
    .byte 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2
    .byte 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73
    .byte 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb
    .byte 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79
    .byte 0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08
    .byte 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a
    .byte 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e
    .byte 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf
    .byte 0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
`
