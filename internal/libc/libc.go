// Package libc is the guest C library: runtime startup, string routines,
// formatted output, number parsing, math, a PRNG, SHA-1 and AES-128 — all
// written in LB64 assembly and assembled into every program image.
//
// The library exists so that the paper's scalability challenges are real:
// calling printf or sha1 drags the callee's genuine branch structure into
// the execution trace, exactly as dynamically-linked libc does for the
// binaries in the paper (Figure 3 and the crypto bombs).
//
// Calling convention: arguments in r1..r5, result in r0, r6..r11 are
// scratch, r12..r14 are callee-saved, sp is preserved.
package libc

import "repro/internal/asm"

// All returns every library unit, ready to assemble alongside a program.
func All() []asm.Source {
	return []asm.Source{
		{Name: "crt0.s", Text: CRT0},
		{Name: "string.s", Text: String},
		{Name: "stdio.s", Text: Stdio},
		{Name: "math.s", Text: Math},
		{Name: "rand.s", Text: Rand},
		{Name: "sha1.s", Text: SHA1},
		{Name: "aes.s", Text: AES},
		{Name: "bombrt.s", Text: BombRT},
	}
}

// CRT0 is the program startup stub: it forwards argc/argv to main and
// turns main's return value into an exit system call.
const CRT0 = `
; crt0: _start(argc=r1, argv=r2) -> exit(main(argc, argv))
_start:
    call main
    mov r1, r0
    mov r0, 1          ; SysExit
    syscall
`

// BombRT is the logic-bomb runtime: the bomb routine prints BOOM and
// terminates with the canonical status 42. Reaching `bomb` is the success
// criterion of every challenge program.
const BombRT = `
; bomb: the logic bomb payload. Never returns.
bomb:
    mov r1, boom_msg
    call puts
    mov r0, 1          ; SysExit
    mov r1, 42
    syscall

    .data
boom_msg:
    .asciz "BOOM\n"
`

// String contains strlen, strcmp, strcpy, memcpy and atoi.
const String = `
; strlen(r1=s) -> r0
strlen:
    mov r0, 0
.loop:
    ld.b r6, [r1+0]
    cmp r6, 0
    je .done
    add r0, 1
    add r1, 1
    jmp .loop
.done:
    ret

; strcmp(r1=a, r2=b) -> r0 (0 when equal, else a[i]-b[i])
strcmp:
.loop:
    ld.b r6, [r1+0]
    ld.b r7, [r2+0]
    cmp r6, r7
    jne .diff
    cmp r6, 0
    je .eq
    add r1, 1
    add r2, 1
    jmp .loop
.eq:
    mov r0, 0
    ret
.diff:
    mov r0, r6
    sub r0, r7
    ret

; strcpy(r1=dst, r2=src) -> r0=dst
strcpy:
    mov r0, r1
.loop:
    ld.b r6, [r2+0]
    st.b [r1+0], r6
    cmp r6, 0
    je .done
    add r1, 1
    add r2, 1
    jmp .loop
.done:
    ret

; memcpy(r1=dst, r2=src, r3=n) -> r0=dst
memcpy:
    mov r0, r1
.loop:
    cmp r3, 0
    je .done
    ld.b r6, [r2+0]
    st.b [r1+0], r6
    add r1, 1
    add r2, 1
    sub r3, 1
    jmp .loop
.done:
    ret

; strncmp(r1=a, r2=b, r3=n) -> r0 (0 when the first n bytes agree)
strncmp:
.loop:
    cmp r3, 0
    je .eq
    ld.b r6, [r1+0]
    ld.b r7, [r2+0]
    cmp r6, r7
    jne .diff
    cmp r6, 0
    je .eq
    add r1, 1
    add r2, 1
    sub r3, 1
    jmp .loop
.eq:
    mov r0, 0
    ret
.diff:
    mov r0, r6
    sub r0, r7
    ret

; strcat(r1=dst, r2=src) -> r0=dst
strcat:
    push r1
.seek:
    ld.b r6, [r1+0]
    cmp r6, 0
    je .copy
    add r1, 1
    jmp .seek
.copy:
    ld.b r6, [r2+0]
    st.b [r1+0], r6
    cmp r6, 0
    je .done
    add r1, 1
    add r2, 1
    jmp .copy
.done:
    pop r0
    ret

; strchr(r1=s, r2=c) -> r0 = pointer to first occurrence or 0
strchr:
.loop:
    ld.b r6, [r1+0]
    cmp r6, r2
    je .hit
    cmp r6, 0
    je .miss
    add r1, 1
    jmp .loop
.hit:
    mov r0, r1
    ret
.miss:
    mov r0, 0
    ret

; memset(r1=dst, r2=c, r3=n) -> r0=dst
memset:
    mov r0, r1
.loop:
    cmp r3, 0
    je .done
    st.b [r1+0], r2
    add r1, 1
    sub r3, 1
    jmp .loop
.done:
    ret

; memcmp(r1=a, r2=b, r3=n) -> r0 (0 when equal)
memcmp:
.loop:
    cmp r3, 0
    je .eq
    ld.b r6, [r1+0]
    ld.b r7, [r2+0]
    cmp r6, r7
    jne .diff
    add r1, 1
    add r2, 1
    sub r3, 1
    jmp .loop
.eq:
    mov r0, 0
    ret
.diff:
    mov r0, r6
    sub r0, r7
    ret

; atoi(r1=s) -> r0, handles optional leading '-'
atoi:
    mov r0, 0
    mov r7, 0
    ld.b r6, [r1+0]
    cmp r6, '-'
    jne .loop
    mov r7, 1
    add r1, 1
.loop:
    ld.b r6, [r1+0]
    cmp r6, '0'
    jb .done
    cmp r6, '9'
    ja .done
    mul r0, 10
    add r0, r6
    sub r0, '0'
    add r1, 1
    jmp .loop
.done:
    cmp r7, 0
    je .pos
    neg r0
.pos:
    ret
`

// Stdio contains puts, single-character and number printers, and a printf
// with %d %u %x %s %c %% directives (two variadic slots). The conversion
// loops branch on the printed value, which is what makes Figure 3's
// "extra constraints from printf" reproducible.
const Stdio = `
; puts(r1=s): write the NUL-terminated string to stdout
puts:
    push r1
    call strlen
    pop  r2
    mov  r3, r0
    mov  r0, 3         ; SysWrite
    mov  r1, 1
    syscall
    mov  r0, 0
    ret

; print_char(r1=c)
print_char:
    mov  r6, io_buf
    st.b [r6+0], r1
    mov  r0, 3
    mov  r1, 1
    mov  r2, io_buf
    mov  r3, 1
    syscall
    mov  r0, 0
    ret

; print_u64(r1=v): unsigned decimal
print_u64:
    mov r6, io_buf
    add r6, 31
    mov r7, 0
.loop:
    mov r8, r1
    mod r8, 10
    add r8, '0'
    st.b [r6+0], r8
    sub r6, 1
    add r7, 1
    div r1, 10
    cmp r1, 0
    jne .loop
    add r6, 1
    mov r2, r6
    mov r3, r7
    mov r0, 3
    mov r1, 1
    syscall
    mov r0, 0
    ret

; print_i64(r1=v): signed decimal
print_i64:
    cmp r1, 0
    jge print_u64
    push r1
    mov r1, '-'
    call print_char
    pop r1
    neg r1
    jmp print_u64

; print_hex(r1=v): lowercase hex, no 0x prefix
print_hex:
    mov r6, io_buf
    add r6, 31
    mov r7, 0
.loop:
    mov r8, r1
    and r8, 15
    cmp r8, 10
    jb .digit
    add r8, 'a'
    sub r8, 10
    jmp .store
.digit:
    add r8, '0'
.store:
    st.b [r6+0], r8
    sub r6, 1
    add r7, 1
    shr r1, 4
    cmp r1, 0
    jne .loop
    add r6, 1
    mov r2, r6
    mov r3, r7
    mov r0, 3
    mov r1, 1
    syscall
    mov r0, 0
    ret

; printf(r1=fmt, r2=arg1, r3=arg2): minimal printf
printf:
    push r12
    push r13
    push r14
    mov  r12, r1       ; fmt cursor
    push r3
    push r2
    mov  r14, sp       ; [r14+0]=arg1 [r14+8]=arg2
    mov  r13, 0        ; next arg index
.loop:
    ld.b r6, [r12+0]
    cmp  r6, 0
    je   .done
    cmp  r6, '%'
    je   .spec
    mov  r1, r6
    call print_char
    add  r12, 1
    jmp  .loop
.spec:
    add  r12, 1
    ld.b r6, [r12+0]
    add  r12, 1
    cmp  r6, '%'
    jne  .fetch
    mov  r1, '%'
    call print_char
    jmp  .loop
.fetch:
    mov  r7, r13
    shl  r7, 3
    add  r7, r14
    ld.q r1, [r7+0]
    add  r13, 1
    cmp  r6, 'd'
    jne  .try_u
    call print_i64
    jmp  .loop
.try_u:
    cmp  r6, 'u'
    jne  .try_x
    call print_u64
    jmp  .loop
.try_x:
    cmp  r6, 'x'
    jne  .try_s
    call print_hex
    jmp  .loop
.try_s:
    cmp  r6, 's'
    jne  .try_c
    call puts
    jmp  .loop
.try_c:
    cmp  r6, 'c'
    jne  .loop
    call print_char
    jmp  .loop
.done:
    pop  r2
    pop  r3
    pop  r14
    pop  r13
    pop  r12
    mov  r0, 0
    ret

    .data
    .align 8
io_buf:
    .space 40
`

// Math contains iabs, float parsing, a Taylor-series sine and an integer
// power routine over f64 bit patterns.
const Math = `
; iabs(r1=v) -> r0
iabs:
    mov r0, r1
    cmp r0, 0
    jge .done
    neg r0
.done:
    ret

; atof(r1=s) -> r0 (f64 bits). Handles [-]ddd[.ddd].
atof:
    mov r7, 0
    ld.b r6, [r1+0]
    cmp r6, '-'
    jne .int
    mov r7, 1
    add r1, 1
.int:
    mov r0, 0
.iloop:
    ld.b r6, [r1+0]
    cmp r6, '0'
    jb .ifin
    cmp r6, '9'
    ja .ifin
    mul r0, 10
    add r0, r6
    sub r0, '0'
    add r1, 1
    jmp .iloop
.ifin:
    i2f r0
    cmp r6, '.'
    jne .sign
    add r1, 1
    mov r8, 0          ; fraction digits value
    mov r9, 1          ; divisor 10^k
.floop:
    ld.b r6, [r1+0]
    cmp r6, '0'
    jb .ffin
    cmp r6, '9'
    ja .ffin
    mul r8, 10
    add r8, r6
    sub r8, '0'
    mul r9, 10
    add r1, 1
    jmp .floop
.ffin:
    i2f r8
    i2f r9
    fdiv r8, r9
    fadd r0, r8
.sign:
    cmp r7, 0
    je .done
    movf r6, -1.0
    fmul r0, r6
.done:
    ret

; fsin(r1=x as f64 bits) -> r0: Taylor series to x^9, accurate near 0
fsin:
    mov  r6, r1        ; x
    mov  r7, r1
    fmul r7, r7        ; x^2
    mov  r8, r7
    fmul r8, r6        ; x^3
    mov  r9, r8
    fmul r9, r7        ; x^5
    mov  r10, r9
    fmul r10, r7       ; x^7
    mov  r11, r10
    fmul r11, r7       ; x^9
    mov  r0, r6
    movf r5, 6.0
    fdiv r8, r5
    fsub r0, r8
    movf r5, 120.0
    fdiv r9, r5
    fadd r0, r9
    movf r5, 5040.0
    fdiv r10, r5
    fsub r0, r10
    movf r5, 362880.0
    fdiv r11, r5
    fadd r0, r11
    ret

; fpowi(r1=x as f64 bits, r2=n) -> r0 = x^n for integer n >= 0
fpowi:
    movf r0, 1.0
.loop:
    cmp r2, 0
    je .done
    fmul r0, r1
    sub r2, 1
    jmp .loop
.done:
    ret
`

// Rand is a 64-bit LCG with the Knuth MMIX constants, truncated to 31
// bits, seeded through srand.
const Rand = `
; srand(r1=seed)
srand:
    mov  r6, rand_state
    st.q [r6+0], r1
    ret

; rand() -> r0 in [0, 2^31)
rand:
    mov  r6, rand_state
    ld.q r0, [r6+0]
    mul  r0, 6364136223846793005
    add  r0, 1442695040888963407
    st.q [r6+0], r0
    shr  r0, 33
    ret

    .data
    .align 8
rand_state:
    .quad 1
`
