package lift

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/isa"
)

func TestCachedMatchesLift(t *testing.T) {
	instrs := []isa.Instr{
		{Op: isa.OpAdd, Mode: isa.ModeRR, R1: 1, R2: 2},
		{Op: isa.OpMov, Mode: isa.ModeRI, R1: 3, Imm: 42},
		{Op: isa.OpLd, Mode: isa.ModeRM, Size: 8, R1: 1, R2: 2, Imm: 8},
		{Op: isa.OpPush, Mode: isa.ModeR, R1: 5},
		{Op: isa.OpFadd, Mode: isa.ModeRR, R1: 1, R2: 2},
		{Op: isa.OpJe, Mode: isa.ModeI, Imm: 0x100},
	}
	opts := []Options{{}, {NoFloat: true}, {NoPushPop: true}}
	for _, in := range instrs {
		for _, o := range opts {
			want, wantErr := Lift(in, 0x1000, o)
			for pass := 0; pass < 2; pass++ { // miss then hit
				got, err := Cached(in, 0x1000, o)
				if (err == nil) != (wantErr == nil) {
					t.Fatalf("%v %+v: err %v, want %v", in, o, err, wantErr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v %+v: stmts %v, want %v", in, o, got, want)
				}
			}
		}
	}
}

// TestCachedDistinguishesOptions guards against a cache key that ignores
// the capability gates: the same float instruction must lift under the
// full profile and fail under NoFloat, whichever is asked first.
func TestCachedDistinguishesOptions(t *testing.T) {
	in := isa.Instr{Op: isa.OpFmul, Mode: isa.ModeRR, R1: 1, R2: 2}
	if _, err := Cached(in, 0x2000, Options{}); err != nil {
		t.Fatalf("full profile rejected fmul: %v", err)
	}
	if _, err := Cached(in, 0x2000, Options{NoFloat: true}); err == nil {
		t.Fatal("NoFloat profile lifted fmul")
	}
}

// TestCachedConcurrent exercises the sharded table from many goroutines
// (run under make race): every worker must observe results equivalent to
// an uncached Lift.
func TestCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in := isa.Instr{Op: isa.OpAdd, Mode: isa.ModeRI, R1: isa.Reg(i % 8), Imm: int64(i % 32)}
				nextPC := uint64(0x3000 + 4*(i%64))
				got, err := Cached(in, nextPC, Options{})
				if err != nil {
					t.Error(err)
					return
				}
				want, _ := Lift(in, nextPC, Options{})
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cached lift diverged for %v@%#x", in, nextPC)
					return
				}
			}
		}()
	}
	wg.Wait()
}
