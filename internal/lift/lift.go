// Package lift translates LB64 instructions into IR statements — the
// paper's "instruction lifting" stage. Capability gates model the lifting
// gaps of real tools: Triton's missing floating-point instructions and
// BAP's push/pop handling both surface here as Es1-class errors.
package lift

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sym"
)

// Options gates instruction support, modeling per-tool lifting deficits.
type Options struct {
	// NoFloat rejects fadd/fsub/fmul/fdiv/fcmp/i2f/f2i (Triton, BAP).
	NoFloat bool
	// NoPushPop rejects push/pop (BAP's tracer quirk).
	NoPushPop bool
}

// UnsupportedError reports an instruction the lifter cannot translate —
// the Es1 error class.
type UnsupportedError struct {
	Instr isa.Instr
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("lift: unsupported instruction %s", e.Instr)
}

// Lift translates one instruction. nextPC is the fall-through address
// (needed for call return addresses).
func Lift(in isa.Instr, nextPC uint64, opts Options) ([]ir.Stmt, error) {
	if in.Op.IsFloat() && opts.NoFloat {
		return nil, &UnsupportedError{Instr: in}
	}
	if (in.Op == isa.OpPush || in.Op == isa.OpPop) && opts.NoPushPop {
		return nil, &UnsupportedError{Instr: in}
	}

	src := func() ir.Expr {
		switch in.Mode {
		case isa.ModeRR:
			return ir.Reg{R: in.R2}
		case isa.ModeRI, isa.ModeI:
			return ir.Const{V: uint64(in.Imm), W: 64}
		}
		return ir.Const{V: 0, W: 64}
	}
	r1 := ir.Reg{R: in.R1}

	bin := func(op sym.BinOp) []ir.Stmt {
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Bin{Op: op, A: r1, B: src()}}}
	}

	switch in.Op {
	case isa.OpNop, isa.OpSyscall, isa.OpHalt:
		return nil, nil

	case isa.OpMov:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: src()}}, nil

	case isa.OpLd:
		m := ir.Mem{Base: in.R2, Off: in.Imm, Size: in.Size}
		var e ir.Expr = ir.Load{M: m}
		if in.Size < 8 {
			e = ir.Un{Op: sym.OpZExt, A: e, Arg: 64}
		}
		return []ir.Stmt{ir.SetReg{R: in.R1, E: e}}, nil

	case isa.OpSt:
		m := ir.Mem{Base: in.R1, Off: in.Imm, Size: in.Size}
		var e ir.Expr = ir.Reg{R: in.R2}
		if in.Size < 8 {
			e = ir.Un{Op: sym.OpExtract, A: e, Arg: int(in.Size)*8 - 1, Arg2: 0}
		}
		return []ir.Stmt{ir.Store{M: m, E: e}}, nil

	case isa.OpPush:
		// The executor resolves the concrete slot from the trace; the
		// stack pointer itself is assumed concrete (true for LB64 code).
		var e ir.Expr = src()
		if in.Mode == isa.ModeR {
			e = ir.Reg{R: in.R1}
		}
		return []ir.Stmt{ir.Store{M: ir.Mem{Base: isa.SP, Off: -8, Size: 8}, E: e}}, nil

	case isa.OpPop:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Load{M: ir.Mem{Base: isa.SP, Size: 8}}}}, nil

	case isa.OpAdd:
		return bin(sym.OpAdd), nil
	case isa.OpSub:
		return bin(sym.OpSub), nil
	case isa.OpMul:
		return bin(sym.OpMul), nil
	case isa.OpDiv:
		return append([]ir.Stmt{ir.DivGuard{Divisor: src()}}, bin(sym.OpUDiv)...), nil
	case isa.OpMod:
		return append([]ir.Stmt{ir.DivGuard{Divisor: src()}}, bin(sym.OpURem)...), nil
	case isa.OpSdiv:
		return append([]ir.Stmt{ir.DivGuard{Divisor: src()}}, bin(sym.OpSDiv)...), nil
	case isa.OpSmod:
		return append([]ir.Stmt{ir.DivGuard{Divisor: src()}}, bin(sym.OpSRem)...), nil
	case isa.OpNeg:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Un{Op: sym.OpNeg, A: r1}}}, nil

	case isa.OpAnd:
		return bin(sym.OpAnd), nil
	case isa.OpOr:
		return bin(sym.OpOr), nil
	case isa.OpXor:
		return bin(sym.OpXor), nil
	case isa.OpNot:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Un{Op: sym.OpNot, A: r1}}}, nil
	case isa.OpShl:
		return bin(sym.OpShl), nil
	case isa.OpShr:
		return bin(sym.OpLShr), nil
	case isa.OpSar:
		return bin(sym.OpAShr), nil

	case isa.OpCmp:
		a, b := ir.Expr(r1), src()
		return []ir.Stmt{ir.SetFlags{
			Z: ir.Bin{Op: sym.OpEq, A: a, B: b},
			S: ir.Bin{Op: sym.OpSlt, A: a, B: b},
			C: ir.Bin{Op: sym.OpUlt, A: a, B: b},
		}}, nil
	case isa.OpTest:
		v := ir.Bin{Op: sym.OpAnd, A: r1, B: src()}
		zero := ir.Const{V: 0, W: 64}
		return []ir.Stmt{ir.SetFlags{
			Z: ir.Bin{Op: sym.OpEq, A: v, B: zero},
			S: ir.Bin{Op: sym.OpSlt, A: v, B: zero},
			C: ir.Const{V: 0, W: 1},
		}}, nil

	case isa.OpJmp:
		if in.Mode == isa.ModeR {
			return []ir.Stmt{ir.IndirectJump{Target: ir.Reg{R: in.R1}}}, nil
		}
		return nil, nil

	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		return []ir.Stmt{ir.CondBranch{Cond: condExpr(in.Op)}}, nil

	case isa.OpCall:
		push := ir.Store{M: ir.Mem{Base: isa.SP, Off: -8, Size: 8},
			E: ir.Const{V: nextPC, W: 64}}
		if in.Mode == isa.ModeR {
			return []ir.Stmt{push, ir.IndirectJump{Target: ir.Reg{R: in.R1}}}, nil
		}
		return []ir.Stmt{push}, nil

	case isa.OpRet:
		return []ir.Stmt{ir.IndirectJump{
			Target: ir.Load{M: ir.Mem{Base: isa.SP, Size: 8}},
		}}, nil

	case isa.OpFadd:
		return bin(sym.OpFAdd), nil
	case isa.OpFsub:
		return bin(sym.OpFSub), nil
	case isa.OpFmul:
		return bin(sym.OpFMul), nil
	case isa.OpFdiv:
		return bin(sym.OpFDiv), nil
	case isa.OpFcmp:
		a, b := ir.Expr(r1), ir.Expr(ir.Reg{R: in.R2})
		// CF = unordered: neither a<=b nor b<=a holds.
		ordered := ir.Bin{Op: sym.OpOr,
			A: ir.Bin{Op: sym.OpFLe, A: a, B: b},
			B: ir.Bin{Op: sym.OpFLe, A: b, B: a}}
		return []ir.Stmt{ir.SetFlags{
			Z: ir.Bin{Op: sym.OpFEq, A: a, B: b},
			S: ir.Bin{Op: sym.OpFLt, A: a, B: b},
			C: ir.Un{Op: sym.OpBoolNot, A: ordered},
		}}, nil
	case isa.OpI2f:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Un{Op: sym.OpI2F, A: r1}}}, nil
	case isa.OpF2i:
		return []ir.Stmt{ir.SetReg{R: in.R1, E: ir.Un{Op: sym.OpF2I, A: r1}}}, nil
	}
	return nil, &UnsupportedError{Instr: in}
}

// condExpr builds the flag formula for a conditional jump.
func condExpr(op isa.Op) ir.Expr {
	z := ir.Flag{F: ir.FlagZ}
	s := ir.Flag{F: ir.FlagS}
	c := ir.Flag{F: ir.FlagC}
	not := func(e ir.Expr) ir.Expr { return ir.Un{Op: sym.OpBoolNot, A: e} }
	or := func(a, b ir.Expr) ir.Expr { return ir.Bin{Op: sym.OpOr, A: a, B: b} }
	and := func(a, b ir.Expr) ir.Expr { return ir.Bin{Op: sym.OpAnd, A: a, B: b} }
	switch op {
	case isa.OpJe:
		return z
	case isa.OpJne:
		return not(z)
	case isa.OpJl:
		return s
	case isa.OpJle:
		return or(s, z)
	case isa.OpJg:
		return and(not(s), not(z))
	case isa.OpJge:
		return not(s)
	case isa.OpJb:
		return c
	case isa.OpJbe:
		return or(c, z)
	case isa.OpJa:
		return and(not(c), not(z))
	case isa.OpJae:
		return not(c)
	}
	return ir.Const{V: 0, W: 1}
}
