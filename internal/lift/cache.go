package lift

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/isa"
)

// The symbolic pass lifts every trace entry of every round, and with the
// checkpointing scheduler the bulk of those entries belong to a shared
// prefix that was already lifted — possibly thousands of times — by
// earlier rounds. Lifting is a pure function of (instruction, fall-through
// PC, options), so a process-wide memo table turns all of that repeat
// work into a map hit. Callers must treat the returned statement slice
// as immutable; the symbolic executor only evaluates statements, never
// rewrites them.

type liftKey struct {
	in     isa.Instr // comparable: all scalar fields
	nextPC uint64
	opts   Options
}

// cacheShards keeps the table from serializing the parallel engine's
// batch workers; the key's low PC bits pick a shard.
const cacheShards = 16

// cacheCapPerShard bounds growth: images are small (the whole benchmark
// is a few thousand distinct instructions), so the cap exists only as a
// backstop against pathological synthetic inputs. A full shard stops
// inserting; lifting stays correct, just unmemoized.
const cacheCapPerShard = 1 << 14

type liftShard struct {
	mu sync.RWMutex
	m  map[liftKey]liftEntry
}

type liftEntry struct {
	stmts []ir.Stmt
	err   error
}

var liftCache [cacheShards]liftShard

// Cached is Lift behind the process-wide memo table. Use it on hot paths
// that lift the same instructions repeatedly (the symbolic executor);
// one-shot callers can keep calling Lift directly.
func Cached(in isa.Instr, nextPC uint64, opts Options) ([]ir.Stmt, error) {
	k := liftKey{in: in, nextPC: nextPC, opts: opts}
	sh := &liftCache[nextPC%cacheShards]
	sh.mu.RLock()
	e, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		return e.stmts, e.err
	}
	stmts, err := Lift(in, nextPC, opts)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[liftKey]liftEntry)
	}
	if len(sh.m) < cacheCapPerShard {
		sh.m[k] = liftEntry{stmts: stmts, err: err}
	}
	sh.mu.Unlock()
	return stmts, err
}
