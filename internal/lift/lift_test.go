package lift

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/sym"
)

func TestLiftMov(t *testing.T) {
	in := isa.Instr{Op: isa.OpMov, Mode: isa.ModeRI, Size: 8, R1: isa.R1, Imm: 7}
	stmts, err := Lift(in, 0x1000, Options{})
	if err != nil || len(stmts) != 1 {
		t.Fatalf("stmts=%v err=%v", stmts, err)
	}
	sr, ok := stmts[0].(ir.SetReg)
	if !ok || sr.R != isa.R1 {
		t.Fatalf("stmt = %v", stmts[0])
	}
	c, ok := sr.E.(ir.Const)
	if !ok || c.V != 7 {
		t.Errorf("expr = %v", sr.E)
	}
}

func TestLiftLoadStoreSizes(t *testing.T) {
	ld := isa.Instr{Op: isa.OpLd, Mode: isa.ModeRM, Size: 1, R1: isa.R1, R2: isa.R2, Imm: 4}
	stmts, err := Lift(ld, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := stmts[0].(ir.SetReg)
	// Byte loads zero-extend to 64 bits.
	if u, ok := sr.E.(ir.Un); !ok || u.Op != sym.OpZExt || u.Arg != 64 {
		t.Errorf("ld.b lifts to %v, want zext", sr.E)
	}

	st := isa.Instr{Op: isa.OpSt, Mode: isa.ModeMR, Size: 2, R1: isa.R3, R2: isa.R4, Imm: 0}
	stmts, err = Lift(st, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sto := stmts[0].(ir.Store)
	if sto.M.Size != 2 || sto.M.Base != isa.R3 {
		t.Errorf("store mem = %+v", sto.M)
	}
	if u, ok := sto.E.(ir.Un); !ok || u.Op != sym.OpExtract || u.Arg != 15 {
		t.Errorf("st.w value = %v, want extract 15..0", sto.E)
	}
}

func TestLiftCmpSetsThreeFlags(t *testing.T) {
	in := isa.Instr{Op: isa.OpCmp, Mode: isa.ModeRI, Size: 8, R1: isa.R1, Imm: 5}
	stmts, err := Lift(in, 0, Options{})
	if err != nil || len(stmts) != 1 {
		t.Fatal(err)
	}
	sf, ok := stmts[0].(ir.SetFlags)
	if !ok {
		t.Fatalf("stmt = %v", stmts[0])
	}
	if z, ok := sf.Z.(ir.Bin); !ok || z.Op != sym.OpEq {
		t.Errorf("ZF = %v", sf.Z)
	}
	if s, ok := sf.S.(ir.Bin); !ok || s.Op != sym.OpSlt {
		t.Errorf("SF = %v", sf.S)
	}
	if c, ok := sf.C.(ir.Bin); !ok || c.Op != sym.OpUlt {
		t.Errorf("CF = %v", sf.C)
	}
}

func TestLiftConditionalJumps(t *testing.T) {
	for _, op := range []isa.Op{isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle,
		isa.OpJg, isa.OpJge, isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae} {
		in := isa.Instr{Op: op, Mode: isa.ModeI, Size: 8, Imm: 0x2000}
		stmts, err := Lift(in, 0, Options{})
		if err != nil || len(stmts) != 1 {
			t.Fatalf("%s: %v", op, err)
		}
		if _, ok := stmts[0].(ir.CondBranch); !ok {
			t.Errorf("%s lifts to %v", op, stmts[0])
		}
	}
}

func TestLiftIndirectControl(t *testing.T) {
	jr := isa.Instr{Op: isa.OpJmp, Mode: isa.ModeR, Size: 8, R1: isa.R9}
	stmts, _ := Lift(jr, 0, Options{})
	if _, ok := stmts[0].(ir.IndirectJump); !ok {
		t.Errorf("jmp r lifts to %v", stmts[0])
	}
	ret := isa.Instr{Op: isa.OpRet, Mode: isa.ModeNone, Size: 8}
	stmts, _ = Lift(ret, 0, Options{})
	ij, ok := stmts[0].(ir.IndirectJump)
	if !ok {
		t.Fatalf("ret lifts to %v", stmts[0])
	}
	if _, ok := ij.Target.(ir.Load); !ok {
		t.Errorf("ret target = %v, want stack load", ij.Target)
	}
	// Direct jumps lift to nothing (the trace carries the control flow).
	jd := isa.Instr{Op: isa.OpJmp, Mode: isa.ModeI, Size: 8, Imm: 0x2000}
	stmts, err := Lift(jd, 0, Options{})
	if err != nil || len(stmts) != 0 {
		t.Errorf("direct jmp lifts to %v", stmts)
	}
}

func TestLiftCallPushesReturn(t *testing.T) {
	in := isa.Instr{Op: isa.OpCall, Mode: isa.ModeI, Size: 8, Imm: 0x3000}
	stmts, err := Lift(in, 0x100c, Options{})
	if err != nil || len(stmts) != 1 {
		t.Fatal(err)
	}
	sto, ok := stmts[0].(ir.Store)
	if !ok {
		t.Fatalf("stmt = %v", stmts[0])
	}
	if c, ok := sto.E.(ir.Const); !ok || c.V != 0x100c {
		t.Errorf("return address = %v, want 0x100c", sto.E)
	}
}

func TestLiftDivGuard(t *testing.T) {
	in := isa.Instr{Op: isa.OpDiv, Mode: isa.ModeRR, Size: 8, R1: isa.R1, R2: isa.R2}
	stmts, err := Lift(in, 0, Options{})
	if err != nil || len(stmts) != 2 {
		t.Fatalf("stmts = %v", stmts)
	}
	if _, ok := stmts[0].(ir.DivGuard); !ok {
		t.Errorf("first stmt = %v, want guard", stmts[0])
	}
}

func TestLiftGates(t *testing.T) {
	fadd := isa.Instr{Op: isa.OpFadd, Mode: isa.ModeRR, Size: 8, R1: isa.R1, R2: isa.R2}
	if _, err := Lift(fadd, 0, Options{NoFloat: true}); err == nil {
		t.Error("NoFloat should reject fadd")
	}
	var ue *UnsupportedError
	_, err := Lift(fadd, 0, Options{NoFloat: true})
	if !errors.As(err, &ue) {
		t.Errorf("error type = %T", err)
	}
	if _, err := Lift(fadd, 0, Options{}); err != nil {
		t.Errorf("fadd without gate: %v", err)
	}
	push := isa.Instr{Op: isa.OpPush, Mode: isa.ModeR, Size: 8, R1: isa.R1}
	if _, err := Lift(push, 0, Options{NoPushPop: true}); err == nil {
		t.Error("NoPushPop should reject push")
	}
	if _, err := Lift(push, 0, Options{}); err != nil {
		t.Errorf("push without gate: %v", err)
	}
}

func TestLiftNopSyscallHaltEmpty(t *testing.T) {
	for _, op := range []isa.Op{isa.OpNop, isa.OpSyscall, isa.OpHalt} {
		in := isa.Instr{Op: op, Mode: isa.ModeNone, Size: 8}
		stmts, err := Lift(in, 0, Options{})
		if err != nil || len(stmts) != 0 {
			t.Errorf("%s lifts to %v, %v", op, stmts, err)
		}
	}
}

func TestLiftFcmpUnordered(t *testing.T) {
	in := isa.Instr{Op: isa.OpFcmp, Mode: isa.ModeRR, Size: 8, R1: isa.R1, R2: isa.R2}
	stmts, err := Lift(in, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sf := stmts[0].(ir.SetFlags)
	// CF must be the negated "ordered" disjunction.
	if u, ok := sf.C.(ir.Un); !ok || u.Op != sym.OpBoolNot {
		t.Errorf("CF = %v, want not(ordered)", sf.C)
	}
}

func TestLiftArithLogicOps(t *testing.T) {
	// Every two-operand ALU op lifts to a single SetReg of a Bin node
	// with the matching sym operator.
	cases := []struct {
		op   isa.Op
		want sym.BinOp
	}{
		{isa.OpAdd, sym.OpAdd}, {isa.OpSub, sym.OpSub}, {isa.OpMul, sym.OpMul},
		{isa.OpAnd, sym.OpAnd}, {isa.OpOr, sym.OpOr}, {isa.OpXor, sym.OpXor},
		{isa.OpShl, sym.OpShl}, {isa.OpShr, sym.OpLShr}, {isa.OpSar, sym.OpAShr},
		{isa.OpFadd, sym.OpFAdd}, {isa.OpFsub, sym.OpFSub},
		{isa.OpFmul, sym.OpFMul}, {isa.OpFdiv, sym.OpFDiv},
	}
	for _, tc := range cases {
		in := isa.Instr{Op: tc.op, Mode: isa.ModeRR, Size: 8, R1: isa.R1, R2: isa.R2}
		stmts, err := Lift(in, 0, Options{})
		if err != nil || len(stmts) != 1 {
			t.Fatalf("%s: %v", tc.op, err)
		}
		sr, ok := stmts[0].(ir.SetReg)
		if !ok {
			t.Fatalf("%s: %v", tc.op, stmts[0])
		}
		if b, ok := sr.E.(ir.Bin); !ok || b.Op != tc.want {
			t.Errorf("%s lifts to %v, want %v", tc.op, sr.E, tc.want)
		}
	}
}

func TestLiftUnaryOps(t *testing.T) {
	for _, tc := range []struct {
		op   isa.Op
		want sym.UnOp
	}{
		{isa.OpNeg, sym.OpNeg}, {isa.OpNot, sym.OpNot},
		{isa.OpI2f, sym.OpI2F}, {isa.OpF2i, sym.OpF2I},
	} {
		in := isa.Instr{Op: tc.op, Mode: isa.ModeR, Size: 8, R1: isa.R1}
		stmts, err := Lift(in, 0, Options{})
		if err != nil || len(stmts) != 1 {
			t.Fatalf("%s: %v", tc.op, err)
		}
		sr := stmts[0].(ir.SetReg)
		if u, ok := sr.E.(ir.Un); !ok || u.Op != tc.want {
			t.Errorf("%s lifts to %v", tc.op, sr.E)
		}
	}
}

func TestLiftSignedDivMod(t *testing.T) {
	for _, op := range []isa.Op{isa.OpSdiv, isa.OpSmod, isa.OpMod} {
		in := isa.Instr{Op: op, Mode: isa.ModeRI, Size: 8, R1: isa.R1, Imm: 3}
		stmts, err := Lift(in, 0, Options{})
		if err != nil || len(stmts) != 2 {
			t.Fatalf("%s: stmts=%v err=%v", op, stmts, err)
		}
		if _, ok := stmts[0].(ir.DivGuard); !ok {
			t.Errorf("%s missing guard", op)
		}
	}
}

func TestLiftPushImmediateAndPop(t *testing.T) {
	pushImm := isa.Instr{Op: isa.OpPush, Mode: isa.ModeI, Size: 8, Imm: 42}
	stmts, err := Lift(pushImm, 0, Options{})
	if err != nil || len(stmts) != 1 {
		t.Fatal(err)
	}
	sto := stmts[0].(ir.Store)
	if c, ok := sto.E.(ir.Const); !ok || c.V != 42 {
		t.Errorf("push imm value = %v", sto.E)
	}
	pop := isa.Instr{Op: isa.OpPop, Mode: isa.ModeR, Size: 8, R1: isa.R4}
	stmts, err = Lift(pop, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := stmts[0].(ir.SetReg)
	if _, ok := sr.E.(ir.Load); !ok || sr.R != isa.R4 {
		t.Errorf("pop lifts to %v", stmts[0])
	}
}

func TestLiftCallRegister(t *testing.T) {
	in := isa.Instr{Op: isa.OpCall, Mode: isa.ModeR, Size: 8, R1: isa.R9}
	stmts, err := Lift(in, 0x1004, Options{})
	if err != nil || len(stmts) != 2 {
		t.Fatalf("stmts=%v err=%v", stmts, err)
	}
	if _, ok := stmts[1].(ir.IndirectJump); !ok {
		t.Errorf("register call missing indirect jump: %v", stmts)
	}
}
