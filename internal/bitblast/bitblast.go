// Package bitblast lowers sym bitvector expressions to CNF over a sat
// solver via Tseitin encoding: ripple-carry adders, shift-and-add
// multipliers, restoring dividers, barrel shifters and per-bit muxes.
// Floating-point operators are rejected — they are routed to the
// stochastic FP solver (or reported as Es3) by the solver front end, the
// same split the paper observes between bitvector and FP theories.
package bitblast

import (
	"errors"
	"fmt"

	"repro/internal/sat"
	"repro/internal/sym"
)

// ErrFloat is returned when an expression contains IEEE-754 operators.
var ErrFloat = errors.New("bitblast: floating-point operators unsupported")

// ErrBudget is returned when the circuit exceeds the gate budget; the
// solver front end reports it as an exhausted (Unknown) query.
var ErrBudget = errors.New("bitblast: gate budget exhausted")

// DefaultGateBudget bounds fresh gate variables per encoder.
const DefaultGateBudget = 4_000_000

// Encoder lowers expressions into a sat.Solver.
//
// The per-node CNF cache is keyed on node pointers, which the sym
// arena's hash-consing makes structural: every constructor-built term is
// interned, so two structurally equal subterms — even built through
// different paths, rounds or workers — are one pointer and encode into
// CNF gates exactly once. Assert re-interns its root to extend the same
// guarantee to raw (struct-literal) expressions from tests.
type Encoder struct {
	s        *sat.Solver
	varBit   map[string][]int // sym variable -> sat variables, LSB first
	cache    map[sym.Expr][]sat.Lit
	tru      sat.Lit
	gates    int
	guards   int
	overflow bool
}

// New builds an encoder over the given solver.
func New(s *sat.Solver) *Encoder {
	e := &Encoder{
		s:      s,
		varBit: make(map[string][]int),
		cache:  make(map[sym.Expr][]sat.Lit),
	}
	t := s.NewVar()
	e.tru = sat.MkLit(t, false)
	s.AddClause(e.tru)
	return e
}

// Gates returns the number of fresh gate variables allocated so far —
// the circuit-size metric shared-subterm caching keeps down.
func (e *Encoder) Gates() int { return e.gates }

func (e *Encoder) fls() sat.Lit { return e.tru.Not() }

func (e *Encoder) constLit(b bool) sat.Lit {
	if b {
		return e.tru
	}
	return e.fls()
}

func (e *Encoder) fresh() sat.Lit {
	e.gates++
	if e.gates > DefaultGateBudget {
		e.overflow = true
		return e.tru // placeholder; Assert reports ErrBudget
	}
	return sat.MkLit(e.s.NewVar(), false)
}

// Assert encodes a width-1 expression and asserts it true.
func (e *Encoder) Assert(c sym.Expr) error {
	if c.Width() != 1 {
		return fmt.Errorf("bitblast: assert of width-%d expression", c.Width())
	}
	// Canonicalize so the pointer-keyed cache sees one node per distinct
	// structure. Constructor-built inputs are already interned (O(1));
	// raw trees are canonicalized once here.
	c = sym.Intern(c)
	bits, err := e.encode(c)
	if err != nil {
		return err
	}
	if e.overflow {
		return ErrBudget
	}
	e.s.AddClause(bits[0])
	return nil
}

// AssertGuarded encodes a width-1 expression once and asserts it behind
// a fresh guard literal g, adding only the implication g -> c. Passing g
// as an assumption to sat.SolveAssuming activates the constraint for
// that call; asserting ~g afterwards retires it permanently, leaving the
// encoded circuit (and the structural gate cache) in place for later
// queries over shared subterms. Guard variables are bookkeeping, not
// circuitry, so they are not charged against the gate budget.
func (e *Encoder) AssertGuarded(c sym.Expr) (sat.Lit, error) {
	if c.Width() != 1 {
		return 0, fmt.Errorf("bitblast: guarded assert of width-%d expression", c.Width())
	}
	c = sym.Intern(c)
	bits, err := e.encode(c)
	if err != nil {
		return 0, err
	}
	if e.overflow {
		return 0, ErrBudget
	}
	g := sat.MkLit(e.s.NewVar(), false)
	e.guards++
	e.s.AddClause(g.Not(), bits[0])
	return g, nil
}

// Guards returns the number of guard literals allocated by
// AssertGuarded.
func (e *Encoder) Guards() int { return e.guards }

// Model reads back variable values after a Sat verdict.
func (e *Encoder) Model() map[string]uint64 {
	m := make(map[string]uint64, len(e.varBit))
	for name, bits := range e.varBit {
		var v uint64
		for i, b := range bits {
			if e.s.Value(b) {
				v |= uint64(1) << uint(i)
			}
		}
		m[name] = v
	}
	return m
}

// VarBits returns (and allocates) the sat variables for a sym variable.
func (e *Encoder) VarBits(name string, w int) []int {
	bits, ok := e.varBit[name]
	if !ok {
		bits = make([]int, w)
		for i := range bits {
			bits[i] = e.s.NewVar()
		}
		e.varBit[name] = bits
	}
	return bits
}

func (e *Encoder) encode(x sym.Expr) ([]sat.Lit, error) {
	if bits, ok := e.cache[x]; ok {
		return bits, nil
	}
	bits, err := e.encodeUncached(x)
	if err != nil {
		return nil, err
	}
	e.cache[x] = bits
	return bits, nil
}

func (e *Encoder) encodeUncached(x sym.Expr) ([]sat.Lit, error) {
	switch t := x.(type) {
	case *sym.Const:
		bits := make([]sat.Lit, t.W)
		for i := range bits {
			bits[i] = e.constLit(t.V>>uint(i)&1 == 1)
		}
		return bits, nil

	case *sym.Var:
		vars := e.VarBits(t.Name, t.W)
		bits := make([]sat.Lit, t.W)
		for i, v := range vars {
			bits[i] = sat.MkLit(v, false)
		}
		return bits, nil

	case *sym.Un:
		a, err := e.encode(t.A)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case sym.OpNot:
			out := make([]sat.Lit, len(a))
			for i := range a {
				out[i] = a[i].Not()
			}
			return out, nil
		case sym.OpNeg:
			inv := make([]sat.Lit, len(a))
			for i := range a {
				inv[i] = a[i].Not()
			}
			return e.adder(inv, e.constVec(1, len(a))), nil
		case sym.OpBoolNot:
			return []sat.Lit{a[0].Not()}, nil
		case sym.OpZExt:
			out := make([]sat.Lit, t.Arg)
			copy(out, a)
			for i := len(a); i < t.Arg; i++ {
				out[i] = e.fls()
			}
			return out, nil
		case sym.OpSExt:
			out := make([]sat.Lit, t.Arg)
			copy(out, a)
			for i := len(a); i < t.Arg; i++ {
				out[i] = a[len(a)-1]
			}
			return out, nil
		case sym.OpExtract:
			return a[t.Arg2 : t.Arg+1], nil
		case sym.OpI2F, sym.OpF2I:
			return nil, ErrFloat
		}
		return nil, fmt.Errorf("bitblast: unary op %d", t.Op)

	case *sym.ITE:
		c, err := e.encode(t.Cond)
		if err != nil {
			return nil, err
		}
		a, err := e.encode(t.Then)
		if err != nil {
			return nil, err
		}
		b, err := e.encode(t.Else)
		if err != nil {
			return nil, err
		}
		out := make([]sat.Lit, len(a))
		for i := range a {
			out[i] = e.mux(c[0], a[i], b[i])
		}
		return out, nil

	case *sym.Bin:
		if t.Op.IsFloat() {
			return nil, ErrFloat
		}
		a, err := e.encode(t.A)
		if err != nil {
			return nil, err
		}
		b, err := e.encode(t.B)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case sym.OpAdd:
			return e.adder(a, b), nil
		case sym.OpSub:
			return e.subtract(a, b), nil
		case sym.OpMul:
			return e.multiplier(a, b), nil
		case sym.OpAnd, sym.OpOr, sym.OpXor:
			out := make([]sat.Lit, len(a))
			for i := range a {
				switch t.Op {
				case sym.OpAnd:
					out[i] = e.and(a[i], b[i])
				case sym.OpOr:
					out[i] = e.or(a[i], b[i])
				default:
					out[i] = e.xor(a[i], b[i])
				}
			}
			return out, nil
		case sym.OpShl, sym.OpLShr, sym.OpAShr:
			return e.shifter(t.Op, a, b), nil
		case sym.OpEq:
			return []sat.Lit{e.equal(a, b)}, nil
		case sym.OpNe:
			return []sat.Lit{e.equal(a, b).Not()}, nil
		case sym.OpUlt:
			return []sat.Lit{e.ult(a, b)}, nil
		case sym.OpUle:
			return []sat.Lit{e.ult(b, a).Not()}, nil
		case sym.OpSlt:
			return []sat.Lit{e.slt(a, b)}, nil
		case sym.OpSle:
			return []sat.Lit{e.slt(b, a).Not()}, nil
		case sym.OpUDiv:
			q, _ := e.divider(a, b)
			return q, nil
		case sym.OpURem:
			_, r := e.divider(a, b)
			return r, nil
		case sym.OpSDiv, sym.OpSRem:
			return e.signedDiv(t.Op, a, b), nil
		case sym.OpConcat:
			out := make([]sat.Lit, 0, len(a)+len(b))
			out = append(out, b...)
			out = append(out, a...)
			return out, nil
		}
		return nil, fmt.Errorf("bitblast: binary op %d", t.Op)
	}
	return nil, fmt.Errorf("bitblast: unknown node %T", x)
}

func (e *Encoder) constVec(v uint64, w int) []sat.Lit {
	bits := make([]sat.Lit, w)
	for i := range bits {
		bits[i] = e.constLit(v>>uint(i)&1 == 1)
	}
	return bits
}

// ── gates ────────────────────────────────────────────────────────────

func (e *Encoder) and(a, b sat.Lit) sat.Lit {
	if a == e.tru {
		return b
	}
	if b == e.tru {
		return a
	}
	if a == e.fls() || b == e.fls() {
		return e.fls()
	}
	if a == b {
		return a
	}
	if a == b.Not() {
		return e.fls()
	}
	o := e.fresh()
	e.s.AddClause(a.Not(), b.Not(), o)
	e.s.AddClause(a, o.Not())
	e.s.AddClause(b, o.Not())
	return o
}

func (e *Encoder) or(a, b sat.Lit) sat.Lit {
	return e.and(a.Not(), b.Not()).Not()
}

func (e *Encoder) xor(a, b sat.Lit) sat.Lit {
	if a == e.fls() {
		return b
	}
	if b == e.fls() {
		return a
	}
	if a == e.tru {
		return b.Not()
	}
	if b == e.tru {
		return a.Not()
	}
	if a == b {
		return e.fls()
	}
	if a == b.Not() {
		return e.tru
	}
	o := e.fresh()
	e.s.AddClause(a.Not(), b.Not(), o.Not())
	e.s.AddClause(a, b, o.Not())
	e.s.AddClause(a.Not(), b, o)
	e.s.AddClause(a, b.Not(), o)
	return o
}

// mux returns s ? a : b.
func (e *Encoder) mux(s, a, b sat.Lit) sat.Lit {
	if s == e.tru {
		return a
	}
	if s == e.fls() {
		return b
	}
	if a == b {
		return a
	}
	o := e.fresh()
	e.s.AddClause(s.Not(), a.Not(), o)
	e.s.AddClause(s.Not(), a, o.Not())
	e.s.AddClause(s, b.Not(), o)
	e.s.AddClause(s, b, o.Not())
	return o
}

// ── arithmetic ───────────────────────────────────────────────────────

// adder returns a+b (mod 2^w) via ripple carry.
func (e *Encoder) adder(a, b []sat.Lit) []sat.Lit {
	w := len(a)
	out := make([]sat.Lit, w)
	carry := e.fls()
	for i := 0; i < w; i++ {
		axb := e.xor(a[i], b[i])
		out[i] = e.xor(axb, carry)
		carry = e.or(e.and(a[i], b[i]), e.and(axb, carry))
	}
	return out
}

// adderCarry returns (sum, carryOut) of a+b+cin; used by ult.
func (e *Encoder) adderCarry(a, b []sat.Lit, cin sat.Lit) ([]sat.Lit, sat.Lit) {
	w := len(a)
	out := make([]sat.Lit, w)
	carry := cin
	for i := 0; i < w; i++ {
		axb := e.xor(a[i], b[i])
		out[i] = e.xor(axb, carry)
		carry = e.or(e.and(a[i], b[i]), e.and(axb, carry))
	}
	return out, carry
}

func (e *Encoder) subtract(a, b []sat.Lit) []sat.Lit {
	nb := make([]sat.Lit, len(b))
	for i := range b {
		nb[i] = b[i].Not()
	}
	sum, _ := e.adderCarry(a, nb, e.tru)
	return sum
}

// ult returns the a<b predicate: the borrow of a-b.
func (e *Encoder) ult(a, b []sat.Lit) sat.Lit {
	nb := make([]sat.Lit, len(b))
	for i := range b {
		nb[i] = b[i].Not()
	}
	_, carry := e.adderCarry(a, nb, e.tru)
	return carry.Not()
}

func (e *Encoder) slt(a, b []sat.Lit) sat.Lit {
	w := len(a)
	sa, sb := a[w-1], b[w-1]
	diff := e.xor(sa, sb)
	// different signs: a<b iff a negative; same signs: unsigned compare.
	return e.mux(diff, sa, e.ult(a, b))
}

func (e *Encoder) equal(a, b []sat.Lit) sat.Lit {
	acc := e.tru
	for i := range a {
		acc = e.and(acc, e.xor(a[i], b[i]).Not())
	}
	return acc
}

// multiplier computes a*b (mod 2^w) by shift-and-add.
func (e *Encoder) multiplier(a, b []sat.Lit) []sat.Lit {
	w := len(a)
	acc := e.constVec(0, w)
	for i := 0; i < w; i++ {
		// addend = (b << i) gated by a[i]
		addend := make([]sat.Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				addend[j] = e.fls()
			} else {
				addend[j] = e.and(a[i], b[j-i])
			}
		}
		acc = e.adder(acc, addend)
	}
	return acc
}

// divider computes unsigned (quotient, remainder) by restoring division.
// Division by zero yields q=all-ones, r=a (SMT-LIB semantics).
func (e *Encoder) divider(a, b []sat.Lit) ([]sat.Lit, []sat.Lit) {
	w := len(a)
	q := make([]sat.Lit, w)
	r := e.constVec(0, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | a[i]
		nr := make([]sat.Lit, w)
		nr[0] = a[i]
		copy(nr[1:], r[:w-1])
		r = nr
		// if r >= b { r -= b; q[i] = 1 }
		ge := e.ult(r, b).Not()
		sub := e.subtract(r, b)
		for j := 0; j < w; j++ {
			r[j] = e.mux(ge, sub[j], r[j])
		}
		q[i] = ge
	}
	// Division-by-zero override.
	bz := e.equal(b, e.constVec(0, w))
	for j := 0; j < w; j++ {
		q[j] = e.mux(bz, e.tru, q[j])
		r[j] = e.mux(bz, a[j], r[j])
	}
	return q, r
}

func (e *Encoder) negate(a []sat.Lit) []sat.Lit {
	inv := make([]sat.Lit, len(a))
	for i := range a {
		inv[i] = a[i].Not()
	}
	return e.adder(inv, e.constVec(1, len(a)))
}

func (e *Encoder) signedDiv(op sym.BinOp, a, b []sat.Lit) []sat.Lit {
	w := len(a)
	sa, sb := a[w-1], b[w-1]
	absA := e.muxVec(sa, e.negate(a), a)
	absB := e.muxVec(sb, e.negate(b), b)
	q, r := e.divider(absA, absB)
	if op == sym.OpSDiv {
		neg := e.xor(sa, sb)
		return e.muxVec(neg, e.negate(q), q)
	}
	return e.muxVec(sa, e.negate(r), r)
}

func (e *Encoder) muxVec(s sat.Lit, a, b []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	for i := range a {
		out[i] = e.mux(s, a[i], b[i])
	}
	return out
}

// shifter builds a barrel shifter. Shift amounts are interpreted modulo
// the width for 64-bit operands (the LB64 semantics); for narrower widths
// any set bit above the stage range forces the shifted-out value.
func (e *Encoder) shifter(op sym.BinOp, a, b []sat.Lit) []sat.Lit {
	w := len(a)
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	cur := append([]sat.Lit(nil), a...)
	for s := 0; s < stages; s++ {
		shift := 1 << uint(s)
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch op {
			case sym.OpShl:
				if i >= shift {
					shifted = cur[i-shift]
				} else {
					shifted = e.fls()
				}
			case sym.OpLShr:
				if i+shift < w {
					shifted = cur[i+shift]
				} else {
					shifted = e.fls()
				}
			default: // OpAShr
				if i+shift < w {
					shifted = cur[i+shift]
				} else {
					shifted = cur[w-1]
				}
			}
			next[i] = e.mux(b[s], shifted, cur[i])
		}
		cur = next
	}
	// For exact power-of-two widths (incl. 64) the amount is naturally
	// masked; otherwise, any higher amount bit saturates the shift.
	var over sat.Lit = e.fls()
	for i := stages; i < len(b); i++ {
		if 1<<uint(stages) == w {
			break
		}
		over = e.or(over, b[i])
	}
	if over != e.fls() {
		satVal := e.fls()
		if op == sym.OpAShr {
			satVal = a[w-1]
		}
		for i := range cur {
			cur[i] = e.mux(over, satVal, cur[i])
		}
	}
	return cur
}
