package bitblast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sat"
	"repro/internal/sym"
)

// solveEq asserts expr == want and returns (status, model).
func solveEq(t *testing.T, expr sym.Expr, want uint64) (sat.Status, map[string]uint64) {
	t.Helper()
	s := sat.New()
	e := New(s)
	c := sym.NewBin(sym.OpEq, expr, sym.NewConst(want, expr.Width()))
	if err := e.Assert(c); err != nil {
		t.Fatalf("Assert: %v", err)
	}
	st := s.Solve(0)
	if st == sat.Sat {
		return st, e.Model()
	}
	return st, nil
}

func TestSolveSimpleAdd(t *testing.T) {
	x := sym.NewVar("x", 64)
	e := sym.NewBin(sym.OpAdd, x, sym.NewConst(5, 64))
	st, m := solveEq(t, e, 12)
	if st != sat.Sat || m["x"] != 7 {
		t.Errorf("x+5==12: status %v, x=%d", st, m["x"])
	}
}

func TestSolveMul(t *testing.T) {
	x := sym.NewVar("x", 64)
	e := sym.NewBin(sym.OpMul, x, sym.NewConst(10, 64))
	st, m := solveEq(t, e, 420)
	if st != sat.Sat {
		t.Fatalf("status %v", st)
	}
	if m["x"]*10 != 420 {
		t.Errorf("x=%d does not satisfy 10x=420", m["x"])
	}
}

func TestUnsatDetected(t *testing.T) {
	x := sym.NewVar("x", 8)
	// x*2 == 1 has no solution mod 256 (even != odd).
	e := sym.NewBin(sym.OpMul, x, sym.NewConst(2, 8))
	st, _ := solveEq(t, e, 1)
	if st != sat.Unsat {
		t.Errorf("2x==1 mod 256: status %v, want unsat", st)
	}
}

func TestSquareMod8Unsat(t *testing.T) {
	// x^2 == -1 (mod 2^8) is unsat: squares are 0,1,4 mod 8.
	x := sym.NewVar("x", 8)
	e := sym.NewBin(sym.OpMul, x, x)
	st, _ := solveEq(t, e, 0xff)
	if st != sat.Unsat {
		t.Errorf("x^2 == -1: status %v, want unsat", st)
	}
}

func TestFloatRejected(t *testing.T) {
	x := sym.NewVar("x", 64)
	e := sym.NewBin(sym.OpFAdd, x, x)
	s := sat.New()
	enc := New(s)
	err := enc.Assert(sym.NewBin(sym.OpEq, e, sym.NewConst(0, 64)))
	if err == nil {
		t.Fatal("float expression should be rejected")
	}
}

func TestAtoiChain(t *testing.T) {
	// Model atoi("??") == 42 over two digit bytes:
	// (b0-'0')*10 + (b1-'0') == 42 with digit range constraints.
	b0 := sym.NewZExt(sym.NewVar("b0", 8), 64)
	b1 := sym.NewZExt(sym.NewVar("b1", 8), 64)
	d0 := sym.NewBin(sym.OpSub, b0, sym.NewConst('0', 64))
	d1 := sym.NewBin(sym.OpSub, b1, sym.NewConst('0', 64))
	v := sym.NewBin(sym.OpAdd, sym.NewBin(sym.OpMul, d0, sym.NewConst(10, 64)), d1)

	s := sat.New()
	e := New(s)
	mustAssert := func(c sym.Expr) {
		t.Helper()
		if err := e.Assert(c); err != nil {
			t.Fatal(err)
		}
	}
	mustAssert(sym.NewBin(sym.OpEq, v, sym.NewConst(42, 64)))
	for _, b := range []sym.Expr{b0, b1} {
		mustAssert(sym.NewBin(sym.OpUle, sym.NewConst('0', 64), b))
		mustAssert(sym.NewBin(sym.OpUle, b, sym.NewConst('9', 64)))
	}
	if st := s.Solve(0); st != sat.Sat {
		t.Fatalf("status %v", st)
	}
	m := e.Model()
	if m["b0"] != '4' || m["b1"] != '2' {
		t.Errorf("model = %q %q, want '4' '2'", m["b0"], m["b1"])
	}
}

func TestDivider(t *testing.T) {
	x := sym.NewVar("x", 64)
	q := sym.NewBin(sym.OpUDiv, x, sym.NewConst(10, 64))
	r := sym.NewBin(sym.OpURem, x, sym.NewConst(10, 64))
	s := sat.New()
	e := New(s)
	if err := e.Assert(sym.NewBin(sym.OpEq, q, sym.NewConst(12, 64))); err != nil {
		t.Fatal(err)
	}
	if err := e.Assert(sym.NewBin(sym.OpEq, r, sym.NewConst(3, 64))); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(0); st != sat.Sat {
		t.Fatalf("status %v", st)
	}
	if m := e.Model(); m["x"] != 123 {
		t.Errorf("x = %d, want 123", m["x"])
	}
}

// opPool lists the integer ops exercised by the random property test.
var opPool = []sym.BinOp{
	sym.OpAdd, sym.OpSub, sym.OpMul, sym.OpAnd, sym.OpOr, sym.OpXor,
	sym.OpShl, sym.OpLShr, sym.OpAShr, sym.OpUDiv, sym.OpURem,
	sym.OpSDiv, sym.OpSRem,
}

func randExpr(rng *rand.Rand, depth, width int) sym.Expr {
	if depth == 0 {
		switch rng.Intn(3) {
		case 0:
			return sym.NewConst(rng.Uint64(), width)
		case 1:
			return sym.NewZExt(sym.NewVar("a", 8), width)
		default:
			return sym.NewZExt(sym.NewVar("b", 8), width)
		}
	}
	a := randExpr(rng, depth-1, width)
	b := randExpr(rng, depth-1, width)
	switch rng.Intn(8) {
	case 0:
		return sym.NewNot(a)
	case 1:
		return sym.NewNeg(a)
	case 2:
		cond := sym.NewBin(sym.OpUlt, a, b)
		return sym.NewITE(cond, a, b)
	default:
		op := opPool[rng.Intn(len(opPool))]
		if (op == sym.OpShl || op == sym.OpLShr || op == sym.OpAShr) && width != 64 && width != 8 {
			op = sym.OpAdd
		}
		return sym.NewBin(op, a, b)
	}
}

// TestQuickBlastMatchesEval is the core soundness property: for a random
// expression and random inputs, asserting expr == Eval(expr, env) must be
// satisfiable, and the returned model must evaluate to the same value.
func TestQuickBlastMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(av, bv uint8) bool {
		width := []int{8, 16, 32, 64}[rng.Intn(4)]
		expr := randExpr(rng, 2, width)
		env := map[string]uint64{"a": uint64(av), "b": uint64(bv)}
		want := sym.Eval(expr, env)

		s := sat.New()
		e := New(s)
		// Pin the variables to the env values and check expr == want.
		for name, v := range env {
			c := sym.NewBin(sym.OpEq, sym.NewVar(name, 8), sym.NewConst(v, 8))
			if err := e.Assert(c); err != nil {
				return false
			}
		}
		if err := e.Assert(sym.NewBin(sym.OpEq, expr, sym.NewConst(want, width))); err != nil {
			return false
		}
		if st := s.Solve(200000); st != sat.Sat {
			t.Logf("width=%d expr=%s want=%#x status not sat", width, expr, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickModelSatisfies checks the dual: solve expr == K for an
// arbitrary reachable K and confirm the model reproduces K under Eval.
func TestQuickModelSatisfies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(av, bv uint8) bool {
		width := 64
		expr := randExpr(rng, 2, width)
		// Choose a reachable target by evaluating at a random point.
		env := map[string]uint64{"a": uint64(av), "b": uint64(bv)}
		target := sym.Eval(expr, env)

		s := sat.New()
		e := New(s)
		if err := e.Assert(sym.NewBin(sym.OpEq, expr, sym.NewConst(target, width))); err != nil {
			return false
		}
		if st := s.Solve(200000); st != sat.Sat {
			return false
		}
		m := e.Model()
		// Complete missing vars with zero, as Eval does.
		return sym.Eval(expr, m) == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestShiftSemanticsMatchVM(t *testing.T) {
	// 64-bit variable shifts must agree with Eval (mask 63).
	x := sym.NewVar("x", 64)
	k := sym.NewVar("k", 64)
	for _, op := range []sym.BinOp{sym.OpShl, sym.OpLShr, sym.OpAShr} {
		expr := sym.NewBin(op, x, k)
		env := map[string]uint64{"x": 0xdeadbeefcafebabe, "k": 68} // 68&63 = 4
		want := sym.Eval(expr, env)
		s := sat.New()
		e := New(s)
		for n, v := range env {
			if err := e.Assert(sym.NewBin(sym.OpEq, sym.NewVar(n, 64), sym.NewConst(v, 64))); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Assert(sym.NewBin(sym.OpEq, expr, sym.NewConst(want, 64))); err != nil {
			t.Fatal(err)
		}
		if st := s.Solve(0); st != sat.Sat {
			t.Errorf("%v: shift semantics mismatch", op)
		}
	}
}

func TestConcatExtract(t *testing.T) {
	a := sym.NewVar("a", 8)
	b := sym.NewVar("b", 8)
	cat := sym.NewConcat(a, b) // a is high byte
	s := sat.New()
	e := New(s)
	if err := e.Assert(sym.NewBin(sym.OpEq, cat, sym.NewConst(0x1234, 16))); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(0); st != sat.Sat {
		t.Fatal("unsat")
	}
	m := e.Model()
	if m["a"] != 0x12 || m["b"] != 0x34 {
		t.Errorf("model a=%#x b=%#x", m["a"], m["b"])
	}
}

// TestSharedSubtermEncodedOnce is the structural-miss regression test for
// the hash-consing arena: the same subexpression built twice through
// different construction paths must hit the encoder's per-node cache, so
// asserting a constraint over it twice must not double the gate count.
func TestSharedSubtermEncodedOnce(t *testing.T) {
	build := func(detour bool) sym.Expr {
		x := sym.NewVar("x", 32)
		// (x*3)+7 — each call runs a fresh constructor chain (distinct
		// pointers before hash-consing), and the detour variant takes a
		// different API route through identity-simplifying wrappers.
		mul := sym.NewBin(sym.OpMul, x, sym.NewConst(3, 32))
		if detour {
			mul = sym.NewZExt(sym.NewExtract(mul, 31, 0), 32)
			mul = sym.NewNot(sym.NewNot(mul))
		}
		return sym.NewBin(sym.OpAdd, mul, sym.NewConst(7, 32))
	}
	a, b := build(false), build(true)
	if a != b {
		t.Fatalf("interning failed: distinct pointers for structurally equal terms")
	}

	s := sat.New()
	e := New(s)
	if err := e.Assert(sym.NewBin(sym.OpNe, a, sym.NewConst(0, 32))); err != nil {
		t.Fatal(err)
	}
	g1 := e.Gates()
	if g1 == 0 {
		t.Fatal("expected gates from first assert")
	}
	if err := e.Assert(sym.NewBin(sym.OpNe, b, sym.NewConst(1, 32))); err != nil {
		t.Fatal(err)
	}
	g2 := e.Gates()
	// The second assert reuses the cached CNF for (x*3)+7; only the fresh
	// top-level comparison may allocate gates. Before interning, the two
	// construction paths produced distinct pointers and the whole circuit
	// was rebuilt, roughly doubling the count.
	if grew := g2 - g1; grew*4 > g1 {
		t.Errorf("second assert allocated %d gates on top of %d; shared subterm was re-encoded", grew, g1)
	}

}
