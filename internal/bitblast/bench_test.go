package bitblast

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/sym"
)

// BenchmarkMul64Solve measures solving x*10 == 420 over 64-bit vectors —
// the hot shape behind atoi-style path constraints.
func BenchmarkMul64Solve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		e := New(s)
		x := sym.NewVar("x", 64)
		c := sym.NewBin(sym.OpEq,
			sym.NewBin(sym.OpMul, x, sym.NewConst(10, 64)),
			sym.NewConst(420, 64))
		if err := e.Assert(c); err != nil {
			b.Fatal(err)
		}
		if st := s.Solve(0); st != sat.Sat {
			b.Fatalf("status %v", st)
		}
	}
}

// BenchmarkDividerEncode measures the restoring-divider circuit build.
func BenchmarkDividerEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		e := New(s)
		x := sym.NewVar("x", 64)
		y := sym.NewVar("y", 64)
		c := sym.NewBin(sym.OpEq,
			sym.NewBin(sym.OpUDiv, x, y),
			sym.NewConst(7, 64))
		if err := e.Assert(c); err != nil {
			b.Fatal(err)
		}
	}
}
