package bitblast

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/sym"
)

// BenchmarkMul64Solve measures solving x*10 == 420 over 64-bit vectors —
// the hot shape behind atoi-style path constraints.
func BenchmarkMul64Solve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		e := New(s)
		x := sym.NewVar("x", 64)
		c := sym.NewBin(sym.OpEq,
			sym.NewBin(sym.OpMul, x, sym.NewConst(10, 64)),
			sym.NewConst(420, 64))
		if err := e.Assert(c); err != nil {
			b.Fatal(err)
		}
		if st := s.Solve(0); st != sat.Sat {
			b.Fatalf("status %v", st)
		}
	}
}

// BenchmarkDividerEncode measures the restoring-divider circuit build.
func BenchmarkDividerEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		e := New(s)
		x := sym.NewVar("x", 64)
		y := sym.NewVar("y", 64)
		c := sym.NewBin(sym.OpEq,
			sym.NewBin(sym.OpUDiv, x, y),
			sym.NewConst(7, 64))
		if err := e.Assert(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitblastSharedDAG encodes a squaring chain — 12 levels of
// d = d*d + c, a tree with 2^12 multiplier leaves that is ~36 distinct
// DAG nodes. With hash-consed pointers the per-node CNF cache hits on
// every reuse and the circuit stays linear in levels (~36k gates);
// without structural sharing each level's operands are fresh pointers
// and the encoder re-blasts subterms until the 4M gate budget trips.
// Gate count is reported so regressions in sharing show up directly.
func BenchmarkBitblastSharedDAG(b *testing.B) {
	var gates int
	for i := 0; i < b.N; i++ {
		s := sat.New()
		e := New(s)
		x := sym.NewVar("x", 32)
		d := sym.NewBin(sym.OpXor, x, sym.NewConst(0x9e3779b9, 32))
		for k := 0; k < 12; k++ {
			sq := sym.NewBin(sym.OpMul, d, d)
			d = sym.NewBin(sym.OpAdd, sq, sym.NewConst(uint64(k)*0x85ebca6b+1, 32))
		}
		if err := e.Assert(sym.NewBin(sym.OpNe, d, sym.NewConst(0, 32))); err != nil {
			b.Fatal(err)
		}
		gates = e.Gates()
	}
	b.ReportMetric(float64(gates), "gates")
}
