package bitblast

import (
	"testing"
	"time"

	"repro/internal/sat"
	"repro/internal/sym"
)

// TestAssertGuardedActivation encodes x==5 behind a guard and checks the
// constraint binds exactly when the guard is assumed, then stays retired
// after ~g is asserted.
func TestAssertGuardedActivation(t *testing.T) {
	s := sat.New()
	e := New(s)
	x := sym.NewVar("x", 8)
	g, err := e.AssertGuarded(sym.NewBin(sym.OpEq, x, sym.NewConst(5, 8)))
	if err != nil {
		t.Fatalf("AssertGuarded: %v", err)
	}
	if e.Guards() != 1 {
		t.Fatalf("Guards() = %d, want 1", e.Guards())
	}

	if st := s.SolveAssuming([]sat.Lit{g}, 0, time.Time{}, nil); st != sat.Sat {
		t.Fatalf("guard on: %v, want sat", st)
	}
	if m := e.Model(); m["x"] != 5 {
		t.Errorf("guard on: x=%d, want 5", m["x"])
	}

	// With the guard retired the permanent constraint x==7 must win.
	s.AddClause(g.Not())
	if err := e.Assert(sym.NewBin(sym.OpEq, x, sym.NewConst(7, 8))); err != nil {
		t.Fatalf("Assert after retire: %v", err)
	}
	if st := s.Solve(0); st != sat.Sat {
		t.Fatalf("guard off: %v, want sat", st)
	}
	if m := e.Model(); m["x"] != 7 {
		t.Errorf("guard off: x=%d, want 7", m["x"])
	}
}

// TestAssertGuardedConflictingChecks models the session pattern: one
// prefix, several mutually exclusive negation checks, each under its own
// guard on one persistent instance.
func TestAssertGuardedConflictingChecks(t *testing.T) {
	s := sat.New()
	e := New(s)
	x := sym.NewVar("x", 8)
	if err := e.Assert(sym.NewBin(sym.OpUlt, x, sym.NewConst(10, 8))); err != nil {
		t.Fatalf("prefix: %v", err)
	}
	for want := uint64(0); want < 4; want++ {
		g, err := e.AssertGuarded(sym.NewBin(sym.OpEq, x, sym.NewConst(want, 8)))
		if err != nil {
			t.Fatalf("check %d: %v", want, err)
		}
		if st := s.SolveAssuming([]sat.Lit{g}, 0, time.Time{}, nil); st != sat.Sat {
			t.Fatalf("check %d: %v, want sat", want, st)
		}
		if m := e.Model(); m["x"] != want {
			t.Errorf("check %d: x=%d", want, m["x"])
		}
		s.AddClause(g.Not())
	}
	// An infeasible check against the prefix must come back unsat with
	// the guard in the final conflict, and leave the instance usable.
	g, err := e.AssertGuarded(sym.NewBin(sym.OpEq, x, sym.NewConst(200, 8)))
	if err != nil {
		t.Fatalf("infeasible check: %v", err)
	}
	if st := s.SolveAssuming([]sat.Lit{g}, 0, time.Time{}, nil); st != sat.Unsat {
		t.Fatalf("infeasible check: %v, want unsat", st)
	}
	if fc := s.FinalConflict(); len(fc) != 1 || fc[0] != g {
		t.Errorf("final conflict %v, want [%v]", fc, g)
	}
	s.AddClause(g.Not())
	if st := s.Solve(0); st != sat.Sat {
		t.Errorf("instance unusable after infeasible guarded check: %v", st)
	}
}
