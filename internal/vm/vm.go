// Package vm implements the concrete LB64 CPU: a register file, flags and
// single-instruction semantics over guest memory. It is deliberately free
// of OS concerns — scheduling, system calls and signal dispatch live in
// package gos, which drives one or more CPUs.
package vm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bin"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// CPU is the architectural state of one hardware thread.
type CPU struct {
	Regs [isa.NumRegs]uint64
	PC   uint64
	ZF   bool // equal / zero
	SF   bool // signed less-than (or FP less-than)
	CF   bool // unsigned less-than (or FP unordered)
}

// Clone returns a copy of the CPU state.
func (c *CPU) Clone() *CPU {
	d := *c
	return &d
}

// SP returns the stack pointer.
func (c *CPU) SP() uint64 { return c.Regs[isa.SP] }

// SetSP sets the stack pointer.
func (c *CPU) SetSP(v uint64) { c.Regs[isa.SP] = v }

// Program is a decoded binary image: a map from every valid instruction
// address to its decoded form. LB64 text is immutable after load, so
// decoding once up front is sound (self-modifying code is out of scope).
type Program struct {
	Image *bin.Image
	code  map[uint64]decoded
}

type decoded struct {
	instr isa.Instr
	len   int
}

// LoadProgram decodes the text section of an image.
func LoadProgram(img *bin.Image) (*Program, error) {
	sec, ok := img.Section(".text")
	if !ok {
		return nil, fmt.Errorf("vm: image has no .text section")
	}
	p := &Program{Image: img, code: make(map[uint64]decoded)}
	off := 0
	for off < len(sec.Data) {
		in, n, err := isa.Decode(sec.Data[off:])
		if err != nil {
			return nil, fmt.Errorf("vm: decode at %#x: %w", sec.Addr+uint64(off), err)
		}
		p.code[sec.Addr+uint64(off)] = decoded{instr: in, len: n}
		off += n
	}
	return p, nil
}

// At returns the decoded instruction at addr.
func (p *Program) At(addr uint64) (isa.Instr, int, bool) {
	d, ok := p.code[addr]
	return d.instr, d.len, ok
}

// NumInstrs returns the number of decoded instructions.
func (p *Program) NumInstrs() int { return len(p.code) }

// Instrs calls f for every decoded instruction in ascending address
// order (static analyses over the code need a stable iteration order).
func (p *Program) Instrs(f func(addr uint64, in isa.Instr, size int)) {
	addrs := make([]uint64, 0, len(p.code))
	for a := range p.code {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		d := p.code[a]
		f(a, d.instr, d.len)
	}
}

// StepKind describes what the executed instruction asks the OS to do next.
type StepKind int

// Step kinds.
const (
	StepNormal  StepKind = iota + 1 // continue with the next instruction
	StepSyscall                     // the OS must perform a system call
	StepHalt                        // the machine should stop
	StepFault                       // an exception was raised (Entry.Exc)
)

// ExitThreadPC is the sentinel return address planted under thread entry
// points and _start: a `ret` to this address terminates the thread.
const ExitThreadPC = 0xdead_0000_0000_0000

// Exec executes exactly one instruction at cpu.PC.
//
// It fills in a trace.Entry describing the step (pc, operand values,
// effective address, branch outcome) and advances the CPU. Syscall
// instructions return StepSyscall *without* advancing further state —
// the OS performs the call, sets r0 and records the SysEvent. Faults
// return StepFault with Entry.Exc set and leave PC on the faulting
// instruction so the OS can dispatch a handler.
func Exec(cpu *CPU, m *mem.Memory, prog *Program) (trace.Entry, StepKind) {
	e := trace.Entry{PC: cpu.PC}
	d, ok := prog.code[cpu.PC]
	if !ok {
		e.Exc = &trace.ExcEvent{Kind: "badpc"}
		return e, StepFault
	}
	in := d.instr
	e.Instr = in
	next := cpu.PC + uint64(d.len)

	// Record pre-execution operand values.
	switch in.Mode {
	case isa.ModeR, isa.ModeRI, isa.ModeRM, isa.ModeMR:
		e.V1 = cpu.Regs[in.R1]
	case isa.ModeRR:
		e.V1 = cpu.Regs[in.R1]
		e.V2 = cpu.Regs[in.R2]
	}
	if in.Mode == isa.ModeMR {
		e.V2 = cpu.Regs[in.R2]
	}

	// src is the value of the second operand for two-operand forms, or of
	// the single operand for push/jmp/call immediates.
	src := func() uint64 {
		switch in.Mode {
		case isa.ModeRR:
			return cpu.Regs[in.R2]
		case isa.ModeRI, isa.ModeI:
			return uint64(in.Imm)
		}
		return 0
	}

	switch in.Op {
	case isa.OpNop:

	case isa.OpMov:
		cpu.Regs[in.R1] = src()

	case isa.OpLd:
		addr := cpu.Regs[in.R2] + uint64(in.Imm)
		v, err := m.ReadUint(addr, in.Size)
		if err != nil {
			e.Exc = &trace.ExcEvent{Kind: "badaccess"}
			return e, StepFault
		}
		e.Addr, e.MemVal = addr, v
		cpu.Regs[in.R1] = v

	case isa.OpSt:
		addr := cpu.Regs[in.R1] + uint64(in.Imm)
		v := cpu.Regs[in.R2]
		if err := m.WriteUint(addr, in.Size, v); err != nil {
			e.Exc = &trace.ExcEvent{Kind: "badaccess"}
			return e, StepFault
		}
		e.Addr = addr
		e.MemVal = v & sizeMask(in.Size)

	case isa.OpPush:
		sp := cpu.SP() - 8
		cpu.SetSP(sp)
		v := src()
		if in.Mode == isa.ModeR {
			v = cpu.Regs[in.R1]
		}
		_ = m.WriteUint(sp, 8, v)
		e.Addr, e.MemVal = sp, v

	case isa.OpPop:
		sp := cpu.SP()
		v, _ := m.ReadUint(sp, 8)
		cpu.SetSP(sp + 8)
		cpu.Regs[in.R1] = v
		e.Addr, e.MemVal = sp, v

	case isa.OpAdd:
		cpu.Regs[in.R1] += src()
	case isa.OpSub:
		cpu.Regs[in.R1] -= src()
	case isa.OpMul:
		cpu.Regs[in.R1] *= src()
	case isa.OpDiv, isa.OpMod, isa.OpSdiv, isa.OpSmod:
		b := src()
		if b == 0 {
			e.Exc = &trace.ExcEvent{Kind: "div0"}
			return e, StepFault
		}
		a := cpu.Regs[in.R1]
		var r uint64
		switch in.Op {
		case isa.OpDiv:
			r = a / b
		case isa.OpMod:
			r = a % b
		case isa.OpSdiv:
			r = uint64(int64(a) / int64(b))
		case isa.OpSmod:
			r = uint64(int64(a) % int64(b))
		}
		cpu.Regs[in.R1] = r
	case isa.OpNeg:
		cpu.Regs[in.R1] = -cpu.Regs[in.R1]

	case isa.OpAnd:
		cpu.Regs[in.R1] &= src()
	case isa.OpOr:
		cpu.Regs[in.R1] |= src()
	case isa.OpXor:
		cpu.Regs[in.R1] ^= src()
	case isa.OpNot:
		cpu.Regs[in.R1] = ^cpu.Regs[in.R1]
	case isa.OpShl:
		cpu.Regs[in.R1] <<= src() & 63
	case isa.OpShr:
		cpu.Regs[in.R1] >>= src() & 63
	case isa.OpSar:
		cpu.Regs[in.R1] = uint64(int64(cpu.Regs[in.R1]) >> (src() & 63))

	case isa.OpCmp:
		a, b := cpu.Regs[in.R1], src()
		cpu.ZF = a == b
		cpu.SF = int64(a) < int64(b)
		cpu.CF = a < b
	case isa.OpTest:
		v := cpu.Regs[in.R1] & src()
		cpu.ZF = v == 0
		cpu.SF = int64(v) < 0
		cpu.CF = false

	case isa.OpJmp:
		if in.Mode == isa.ModeR {
			next = cpu.Regs[in.R1]
		} else {
			next = uint64(in.Imm)
		}
		e.Taken = true
	case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge,
		isa.OpJb, isa.OpJbe, isa.OpJa, isa.OpJae:
		taken := CondHolds(in.Op, cpu.ZF, cpu.SF, cpu.CF)
		e.Taken = taken
		if taken {
			next = uint64(in.Imm)
		}

	case isa.OpCall:
		target := uint64(in.Imm)
		if in.Mode == isa.ModeR {
			target = cpu.Regs[in.R1]
		}
		sp := cpu.SP() - 8
		cpu.SetSP(sp)
		_ = m.WriteUint(sp, 8, next)
		e.Addr, e.MemVal = sp, next
		next = target
	case isa.OpRet:
		sp := cpu.SP()
		v, _ := m.ReadUint(sp, 8)
		cpu.SetSP(sp + 8)
		e.Addr, e.MemVal = sp, v
		next = v

	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv:
		a := math.Float64frombits(cpu.Regs[in.R1])
		b := math.Float64frombits(cpu.Regs[in.R2])
		var r float64
		switch in.Op {
		case isa.OpFadd:
			r = a + b
		case isa.OpFsub:
			r = a - b
		case isa.OpFmul:
			r = a * b
		case isa.OpFdiv:
			r = a / b
		}
		cpu.Regs[in.R1] = math.Float64bits(r)
	case isa.OpFcmp:
		a := math.Float64frombits(cpu.Regs[in.R1])
		b := math.Float64frombits(cpu.Regs[in.R2])
		cpu.ZF = a == b
		cpu.SF = a < b
		cpu.CF = math.IsNaN(a) || math.IsNaN(b)
	case isa.OpI2f:
		cpu.Regs[in.R1] = math.Float64bits(float64(int64(cpu.Regs[in.R1])))
	case isa.OpF2i:
		f := math.Float64frombits(cpu.Regs[in.R1])
		switch {
		case math.IsNaN(f):
			cpu.Regs[in.R1] = 0
		case f >= math.MaxInt64:
			cpu.Regs[in.R1] = math.MaxInt64
		case f <= math.MinInt64:
			cpu.Regs[in.R1] = 0x8000_0000_0000_0000 // int64 minimum
		default:
			cpu.Regs[in.R1] = uint64(int64(f))
		}

	case isa.OpSyscall:
		cpu.PC = next
		e.NextPC = next
		return e, StepSyscall

	case isa.OpHalt:
		cpu.PC = next
		return e, StepHalt
	}

	cpu.PC = next
	e.NextPC = next
	return e, StepNormal
}

// CondHolds evaluates a conditional-jump predicate against the flags.
func CondHolds(op isa.Op, zf, sf, cf bool) bool {
	switch op {
	case isa.OpJe:
		return zf
	case isa.OpJne:
		return !zf
	case isa.OpJl:
		return sf
	case isa.OpJle:
		return sf || zf
	case isa.OpJg:
		return !sf && !zf
	case isa.OpJge:
		return !sf
	case isa.OpJb:
		return cf
	case isa.OpJbe:
		return cf || zf
	case isa.OpJa:
		return !cf && !zf
	case isa.OpJae:
		return !cf
	}
	return false
}

func sizeMask(size uint8) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(size))) - 1
}
