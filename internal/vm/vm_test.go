package vm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

func negU64(v uint64) uint64 { return ^v + 1 }

func progFrom(t *testing.T, text string) *Program {
	t.Helper()
	img, err := asm.Assemble(asm.Source{Name: "t.s", Text: text})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := LoadProgram(img)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	return p
}

// run executes instructions until halt or fault, with a step bound.
func run(t *testing.T, text string) (*CPU, *mem.Memory) {
	t.Helper()
	p := progFrom(t, text)
	cpu := &CPU{PC: p.Image.Entry}
	cpu.SetSP(0x7000_0000)
	m := mem.New()
	for _, sec := range p.Image.Sections {
		m.Write(sec.Addr, sec.Data)
	}
	for i := 0; i < 10000; i++ {
		e, kind := Exec(cpu, m, p)
		switch kind {
		case StepHalt:
			return cpu, m
		case StepFault:
			t.Fatalf("fault %s at %#x", e.Exc.Kind, e.PC)
		case StepSyscall:
			t.Fatalf("unexpected syscall at %#x", e.PC)
		}
	}
	t.Fatal("program did not halt")
	return nil, nil
}

func TestArithmetic(t *testing.T) {
	cpu, _ := run(t, `
_start:
    mov r1, 10
    add r1, 5
    mov r2, r1
    sub r2, 3
    mov r3, r2
    mul r3, r3
    mov r4, 100
    div r4, 7
    mov r5, 100
    mod r5, 7
    mov r6, -100
    sdiv r6, 7
    mov r7, -100
    smod r7, 7
    mov r8, 5
    neg r8
    halt
`)
	want := map[isa.Reg]uint64{
		isa.R1: 15, isa.R2: 12, isa.R3: 144,
		isa.R4: 14, isa.R5: 2,
		isa.R6: negU64(14), isa.R7: negU64(2),
		isa.R8: negU64(5),
	}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("%s = %d, want %d", r, int64(cpu.Regs[r]), int64(v))
		}
	}
}

func TestLogicAndShifts(t *testing.T) {
	cpu, _ := run(t, `
_start:
    mov r1, 0xf0
    and r1, 0x3c
    mov r2, 0xf0
    or  r2, 0x0f
    mov r3, 0xff
    xor r3, 0x0f
    mov r4, 0
    not r4
    mov r5, 1
    shl r5, 12
    mov r6, 0x8000
    shr r6, 4
    mov r7, -16
    sar r7, 2
    halt
`)
	want := map[isa.Reg]uint64{
		isa.R1: 0x30, isa.R2: 0xff, isa.R3: 0xf0,
		isa.R4: ^uint64(0), isa.R5: 1 << 12, isa.R6: 0x800,
		isa.R7: negU64(4),
	}
	for r, v := range want {
		if cpu.Regs[r] != v {
			t.Errorf("%s = %#x, want %#x", r, cpu.Regs[r], v)
		}
	}
}

func TestBranches(t *testing.T) {
	// Count values < 5 among {3, 7}; exercise signed/unsigned compares.
	cpu, _ := run(t, `
_start:
    mov r1, 0       ; result accumulator
    mov r2, 3
    cmp r2, 5
    jl  .a
    jmp .b
.a: add r1, 1
.b: mov r2, 7
    cmp r2, 5
    jl  .c
    add r1, 16
.c: mov r2, -1     ; unsigned max
    cmp r2, 5
    ja  .d
    jmp .e
.d: add r1, 256
.e: halt
`)
	if cpu.Regs[isa.R1] != 1+16+256 {
		t.Errorf("r1 = %d, want 273", cpu.Regs[isa.R1])
	}
}

func TestCondHoldsTable(t *testing.T) {
	tests := []struct {
		op         isa.Op
		zf, sf, cf bool
		want       bool
	}{
		{isa.OpJe, true, false, false, true},
		{isa.OpJe, false, false, false, false},
		{isa.OpJne, false, false, false, true},
		{isa.OpJl, false, true, false, true},
		{isa.OpJle, true, false, false, true},
		{isa.OpJg, false, false, false, true},
		{isa.OpJg, true, false, false, false},
		{isa.OpJge, false, false, false, true},
		{isa.OpJb, false, false, true, true},
		{isa.OpJbe, true, false, false, true},
		{isa.OpJa, false, false, false, true},
		{isa.OpJa, false, false, true, false},
		{isa.OpJae, false, false, false, true},
		{isa.OpMov, true, true, true, false}, // non-jump
	}
	for _, tt := range tests {
		if got := CondHolds(tt.op, tt.zf, tt.sf, tt.cf); got != tt.want {
			t.Errorf("CondHolds(%s, %v,%v,%v) = %v, want %v",
				tt.op, tt.zf, tt.sf, tt.cf, got, tt.want)
		}
	}
}

func TestMemoryAndStack(t *testing.T) {
	cpu, m := run(t, `
_start:
    mov  r1, buf
    mov  r2, 0x1122334455667788
    st.q [r1+0], r2
    ld.d r3, [r1+0]
    ld.w r4, [r1+0]
    ld.b r5, [r1+7]
    push r2
    pop  r6
    halt
    .data
buf:
    .space 16
`)
	if cpu.Regs[isa.R3] != 0x55667788 {
		t.Errorf("ld.d = %#x", cpu.Regs[isa.R3])
	}
	if cpu.Regs[isa.R4] != 0x7788 {
		t.Errorf("ld.w = %#x", cpu.Regs[isa.R4])
	}
	if cpu.Regs[isa.R5] != 0x11 {
		t.Errorf("ld.b = %#x", cpu.Regs[isa.R5])
	}
	if cpu.Regs[isa.R6] != 0x1122334455667788 {
		t.Errorf("push/pop = %#x", cpu.Regs[isa.R6])
	}
	v, _ := m.ReadUint(cpu.Regs[isa.R1], 8)
	if v != 0x1122334455667788 {
		t.Errorf("memory = %#x", v)
	}
}

func TestCallRet(t *testing.T) {
	cpu, _ := run(t, `
triple:
    mov r0, r1
    add r0, r1
    add r0, r1
    ret
_start:
    mov r1, 7
    call triple
    halt
`)
	if cpu.Regs[isa.R0] != 21 {
		t.Errorf("triple(7) = %d, want 21", cpu.Regs[isa.R0])
	}
}

func TestIndirectJump(t *testing.T) {
	cpu, _ := run(t, `
_start:
    mov r9, done
    jmp r9
    mov r1, 99   ; skipped
done:
    mov r2, 5
    halt
`)
	if cpu.Regs[isa.R1] != 0 || cpu.Regs[isa.R2] != 5 {
		t.Errorf("indirect jump: r1=%d r2=%d", cpu.Regs[isa.R1], cpu.Regs[isa.R2])
	}
}

func TestFloatOps(t *testing.T) {
	cpu, _ := run(t, `
_start:
    mov  r1, 3
    i2f  r1
    movf r2, 0.5
    fadd r1, r2       ; 3.5
    movf r3, 2.0
    fmul r1, r3       ; 7.0
    movf r4, 3.5
    fsub r1, r4       ; 3.5
    fdiv r1, r4       ; 1.0
    mov  r5, r1
    f2i  r5
    fcmp r1, r4       ; 1.0 < 3.5
    halt
`)
	if got := math.Float64frombits(cpu.Regs[isa.R1]); got != 1.0 {
		t.Errorf("float pipeline = %v, want 1.0", got)
	}
	if cpu.Regs[isa.R5] != 1 {
		t.Errorf("f2i = %d, want 1", cpu.Regs[isa.R5])
	}
	if cpu.ZF || !cpu.SF || cpu.CF {
		t.Errorf("fcmp flags = zf%v sf%v cf%v, want false,true,false", cpu.ZF, cpu.SF, cpu.CF)
	}
}

func TestFcmpNaN(t *testing.T) {
	p := progFrom(t, `
_start:
    mov r1, 0
    mov r2, 0
    fdiv r1, r2   ; 0/0 = NaN... but r1 holds int 0 bits -> 0.0/0.0 = NaN
    fcmp r1, r2
    halt
`)
	cpu := &CPU{PC: p.Image.Entry}
	cpu.SetSP(0x7000_0000)
	m := mem.New()
	for i := 0; i < 100; i++ {
		_, kind := Exec(cpu, m, p)
		if kind == StepHalt {
			break
		}
	}
	if !cpu.CF {
		t.Error("fcmp with NaN should set CF (unordered)")
	}
	if cpu.ZF || cpu.SF {
		t.Error("fcmp with NaN should clear ZF/SF")
	}
}

func TestDivByZeroFaults(t *testing.T) {
	p := progFrom(t, `
_start:
    mov r1, 5
    mov r2, 0
    div r1, r2
    halt
`)
	cpu := &CPU{PC: p.Image.Entry}
	cpu.SetSP(0x7000_0000)
	m := mem.New()
	for i := 0; i < 10; i++ {
		e, kind := Exec(cpu, m, p)
		if kind == StepFault {
			if e.Exc.Kind != "div0" {
				t.Errorf("fault kind = %s, want div0", e.Exc.Kind)
			}
			if cpu.PC != e.PC {
				t.Error("PC should stay on the faulting instruction")
			}
			return
		}
	}
	t.Fatal("expected div0 fault")
}

func TestBadPCFaults(t *testing.T) {
	p := progFrom(t, "_start:\n halt\n")
	cpu := &CPU{PC: 0x999999}
	m := mem.New()
	e, kind := Exec(cpu, m, p)
	if kind != StepFault || e.Exc.Kind != "badpc" {
		t.Errorf("got kind %v exc %+v, want badpc fault", kind, e.Exc)
	}
}

func TestTraceEntryValues(t *testing.T) {
	p := progFrom(t, `
_start:
    mov  r1, 5
    mov  r2, 9
    cmp  r1, r2
    jl   .x
    nop
.x: halt
`)
	cpu := &CPU{PC: p.Image.Entry}
	cpu.SetSP(0x7000_0000)
	m := mem.New()
	var entries []struct {
		v1, v2 uint64
		taken  bool
		op     isa.Op
	}
	for i := 0; i < 10; i++ {
		e, kind := Exec(cpu, m, p)
		entries = append(entries, struct {
			v1, v2 uint64
			taken  bool
			op     isa.Op
		}{e.V1, e.V2, e.Taken, e.Instr.Op})
		if kind == StepHalt {
			break
		}
	}
	// cmp entry must carry both operand values.
	cmpE := entries[2]
	if cmpE.op != isa.OpCmp || cmpE.v1 != 5 || cmpE.v2 != 9 {
		t.Errorf("cmp entry = %+v", cmpE)
	}
	jlE := entries[3]
	if jlE.op != isa.OpJl || !jlE.taken {
		t.Errorf("jl entry = %+v, want taken", jlE)
	}
}

func TestLoadProgramErrors(t *testing.T) {
	img, err := asm.Assemble(asm.Source{Name: "t.s", Text: "_start:\n halt\n"})
	if err != nil {
		t.Fatal(err)
	}
	img.Sections = img.Sections[1:] // drop .text
	if _, err := LoadProgram(img); err == nil {
		t.Error("LoadProgram without .text should fail")
	}
}

func TestQuickShiftSemantics(t *testing.T) {
	// Property: shl/shr/sar on the VM match Go's masked-shift semantics.
	p := progFrom(t, `
_start:
    mov r3, r1
    shl r3, r2
    mov r4, r1
    shr r4, r2
    mov r5, r1
    sar r5, r2
    halt
`)
	f := func(a uint64, k uint8) bool {
		cpu := &CPU{PC: p.Image.Entry}
		cpu.SetSP(0x7000_0000)
		cpu.Regs[isa.R1] = a
		cpu.Regs[isa.R2] = uint64(k)
		m := mem.New()
		for {
			_, kind := Exec(cpu, m, p)
			if kind == StepHalt {
				break
			}
			if kind != StepNormal {
				return false
			}
		}
		s := uint(k) & 63
		return cpu.Regs[isa.R3] == a<<s &&
			cpu.Regs[isa.R4] == a>>s &&
			cpu.Regs[isa.R5] == uint64(int64(a)>>s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
