package vm

import "repro/internal/mem"

// State is a resumable snapshot of one hardware thread: the register
// file, the memory handle it executes against, and the position of its
// owner (scheduler cursor, trace length) at capture time. The guest OS
// stores one State per thread inside a machine snapshot; the engine's
// checkpointing scheduler restores them to replay an input from its
// divergence point instead of from _start.
//
// The memory handle is a copy-on-write clone, so holding a State pins no
// page copies; each Restore hands out a fresh clone and leaves the State
// itself intact, so one checkpoint can seed any number of resumed runs.
type State struct {
	CPU      CPU         // register file and flags, by value
	Mem      *mem.Memory // copy-on-write memory handle
	Cursor   int         // owner's scheduler cursor at capture
	TracePos int         // owner's trace length at capture
}

// Checkpoint captures a running (cpu, memory) pair into a frozen State.
// The memory is snapshotted copy-on-write: no page data is copied until
// the running side writes again.
func Checkpoint(cpu *CPU, m *mem.Memory, cursor, tracePos int) *State {
	return &State{CPU: *cpu, Mem: m.Clone(), Cursor: cursor, TracePos: tracePos}
}

// Checkpoint returns an independent frozen duplicate of the state, so a
// stored checkpoint can itself be checkpointed (e.g. when a snapshot
// inherited from a parent run is re-published to a child's plan).
func (s *State) Checkpoint() *State {
	c := *s
	c.Mem = s.Mem.Clone()
	return &c
}

// Restore materialises a runnable CPU and memory from the checkpoint.
// The returned values are private to the caller; the State is unchanged
// and can be restored again.
func (s *State) Restore() (*CPU, *mem.Memory) {
	cpu := s.CPU
	return &cpu, s.Mem.Clone()
}
