package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/mem"
)

// BenchmarkExecLoop measures raw interpreter throughput on a counting
// loop (instructions per second of the concrete phase).
func BenchmarkExecLoop(b *testing.B) {
	img, err := asm.Assemble(asm.Source{Name: "b.s", Text: `
_start:
    mov r1, 1000
.loop:
    sub r1, 1
    cmp r1, 0
    jne .loop
    halt
`})
	if err != nil {
		b.Fatal(err)
	}
	p, err := LoadProgram(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := &CPU{PC: img.Entry}
		cpu.SetSP(0x7000_0000)
		m := mem.New()
		for {
			_, kind := Exec(cpu, m, p)
			if kind == StepHalt {
				break
			}
		}
	}
}
