package core_test

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// exploreCkpt runs one full exploration of the named bomb with the given
// checkpoint policy at Workers=1 (the deterministic sequential schedule).
func exploreCkpt(tb testing.TB, name string, pol core.CheckpointPolicy) *core.Outcome {
	return exploreCkptProfile(tb, name, pol, tools.FastBudgets(tools.Reference()))
}

func exploreCkptProfile(tb testing.TB, name string, pol core.CheckpointPolicy, p tools.Profile) *core.Outcome {
	bomb, ok := bombs.ByName(name)
	if !ok {
		tb.Fatalf("%s missing", name)
	}
	caps := p.Caps
	caps.Workers = 1
	caps.Checkpoint = pol
	en := core.New(bomb.Image(), bomb.BombAddr(), caps)
	return en.Explore(bomb.Benign)
}

// TestCheckpointSkipsInstructions asserts the headline property of the
// checkpointing scheduler on a deep multi-round bomb: rounds resume from
// snapshots, the replayed prefixes add up to a measurable instruction
// skip, and the symbolic pass reuses constraints anchored inside the
// replayed prefix — all without changing the verdict or round count.
func TestCheckpointSkipsInstructions(t *testing.T) {
	on := exploreCkpt(t, "loop", core.CheckpointAuto)
	off := exploreCkpt(t, "loop", core.CheckpointOff)
	if on.Verdict != off.Verdict || on.Rounds != off.Rounds || on.Input.Argv1 != off.Input.Argv1 {
		t.Fatalf("checkpointing changed the outcome: on=%v/%d/%q off=%v/%d/%q",
			on.Verdict, on.Rounds, on.Input.Argv1, off.Verdict, off.Rounds, off.Input.Argv1)
	}
	if on.Stats.CheckpointResumes == 0 {
		t.Fatal("no round resumed from a checkpoint")
	}
	if on.Stats.InstructionsSkipped == 0 {
		t.Fatal("resumed rounds skipped no instructions")
	}
	if on.Stats.CheckpointsTaken == 0 {
		t.Fatal("no snapshots were taken")
	}
	if off.Stats.CheckpointResumes != 0 || off.Stats.InstructionsSkipped != 0 ||
		off.Stats.CheckpointsTaken != 0 || off.Stats.PagesCOWFaulted != 0 {
		t.Fatalf("CheckpointOff reported checkpoint work: %+v", off.Stats)
	}
}

// TestCheckpointReusesPrefixConstraints uses the float bomb, whose
// children diverge deep inside the iteration (the differing argv bytes
// are consumed late), so rounds resume from snapshots past earlier
// tainted branches and the symbolic pass inherits those branches'
// constraints from the replayed prefix. The loop bomb cannot show this:
// atoi consumes every argv byte up front, so its only valid resume point
// precedes all input-dependent branches.
func TestCheckpointReusesPrefixConstraints(t *testing.T) {
	// FastBudgets caps MaxRounds at 12; float needs ~41 rounds before its
	// children diverge deep enough to resume past tainted branches, so
	// raise only the round and wall budgets.
	p := tools.FastBudgets(tools.Reference())
	p.Caps.MaxRounds = 60
	p.Caps.TotalBudget = 60 * time.Second
	on := exploreCkptProfile(t, "float", core.CheckpointAuto, p)
	off := exploreCkptProfile(t, "float", core.CheckpointOff, p)
	if on.Verdict != off.Verdict || on.Rounds != off.Rounds || on.Input.Argv1 != off.Input.Argv1 {
		t.Fatalf("checkpointing changed the outcome: on=%v/%d/%q off=%v/%d/%q",
			on.Verdict, on.Rounds, on.Input.Argv1, off.Verdict, off.Rounds, off.Input.Argv1)
	}
	if on.Stats.PrefixConstraintsReused == 0 {
		t.Fatal("no path constraints were reused from replayed prefixes")
	}
}

// BenchmarkExploreCheckpointed and BenchmarkExploreFromScratch measure
// the same exploration of the loop bomb — the deepest multi-round case
// in the suite (69 rounds, each lengthening a loop's trace) — with and
// without snapshot replay. The instructions-skipped metric reports how
// much concrete re-execution the checkpoints removed per exploration.
func benchProfile() tools.Profile {
	// FastBudgets solver limits, but enough rounds to let the loop bomb
	// run its full 69-round iterative lengthening.
	p := tools.FastBudgets(tools.Reference())
	p.Caps.MaxRounds = 80
	p.Caps.TotalBudget = 60 * time.Second
	return p
}

func BenchmarkExploreCheckpointed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := exploreCkptProfile(b, "loop", core.CheckpointAuto, benchProfile())
		if out.Verdict != core.VerdictSolved {
			b.Fatalf("verdict %v", out.Verdict)
		}
		b.ReportMetric(float64(out.Stats.InstructionsSkipped), "skipped-instrs/op")
		b.ReportMetric(float64(out.Stats.CheckpointResumes), "resumes/op")
	}
}

func BenchmarkExploreFromScratch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := exploreCkptProfile(b, "loop", core.CheckpointOff, benchProfile())
		if out.Verdict != core.VerdictSolved {
			b.Fatalf("verdict %v", out.Verdict)
		}
	}
}
