// Package core implements the concolic execution engine — the paper's
// Figure 1 framework. Each round runs the program concretely, filters and
// lifts the trace, extracts path constraints symbolically, negates branch
// constraints to build new models, solves them, and schedules the
// resulting inputs for the next round, until the directed target (the
// bomb) is reached or budgets run out.
//
// A Capabilities value configures the engine as one of the studied tools;
// the same loop produces the paper's ✓ / Es0–Es3 / E / P outcomes purely
// from which capabilities are present.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bin"
	"repro/internal/bombs"
	"repro/internal/gos"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Capabilities configures the engine as a particular tool.
type Capabilities struct {
	Name string

	// Sym configures the symbolic execution stage (sources, channels,
	// memory model, lifting gates, ...). Env is filled per run.
	Sym symexec.Options

	// FP selects the floating-point solving strategy.
	FP solver.FPMode
	// SolverConflicts bounds each SAT query; exhaustion contributes to E.
	SolverConflicts int64
	// SolverTimeout bounds each query's wall-clock time (the paper's
	// analysis timeout); exhaustion contributes to E.
	SolverTimeout time.Duration
	// FPIterations bounds each FP local search.
	FPIterations int

	// GrowArgv permits reconstructed arguments longer than the current
	// one; without it, longer models are truncated (wrong inputs, Es2).
	GrowArgv bool
	// MaxArgvLen caps argument growth.
	MaxArgvLen int

	// Search selects the exploration strategy (zero value: generational).
	Search SearchStrategy

	// MaxRounds bounds concrete executions; MaxCandidates bounds queued
	// inputs. StepBudget bounds each concrete run.
	MaxRounds     int
	MaxCandidates int
	StepBudget    int

	// WebSyscall false makes the engine abort (E) when the trace performs
	// network IO the emulation layer cannot handle.
	WebSyscall bool

	// TotalBudget bounds one directed-search task's wall-clock time (the
	// paper's ten-minute per-task timeout, scaled); exhaustion gives E.
	TotalBudget time.Duration
}

// SearchStrategy selects how new inputs are scheduled.
type SearchStrategy int

// Search strategies.
const (
	// SearchGenerational negates every unexplored branch of each trace
	// and schedules breadth-first (SAGE-style; the default).
	SearchGenerational SearchStrategy = iota
	// SearchDFS schedules depth-first: newly generated inputs are
	// explored before older ones, following one path deep.
	SearchDFS
)

// Defaults.
const (
	DefaultMaxRounds     = 48
	DefaultMaxCandidates = 256
	DefaultMaxArgvLen    = 24
	DefaultStepBudget    = 400_000
	DefaultTotalBudget   = 60 * time.Second
)

// Verdict is the engine's conclusion about the target.
type Verdict int

// Verdicts.
const (
	// VerdictSolved: a generated input reached the target (replay-checked
	// by construction, since reaching it happens in a concrete run).
	VerdictSolved Verdict = iota + 1
	// VerdictUnreachable: exploration exhausted without reaching it.
	VerdictUnreachable
	// VerdictCrashed: the engine aborted (paper outcome E).
	VerdictCrashed
	// VerdictBudget: a resource budget was exhausted (paper outcome E).
	VerdictBudget
)

func (v Verdict) String() string {
	switch v {
	case VerdictSolved:
		return "solved"
	case VerdictUnreachable:
		return "unreachable"
	case VerdictCrashed:
		return "crashed"
	case VerdictBudget:
		return "budget-exhausted"
	}
	return "invalid"
}

// Claim records a model the engine could not realize as a concrete input
// (it bound simulation variables): the tool "thinks" the path is feasible.
type Claim struct {
	PC      uint64
	Syscall bool // bound syscall-simulation variables (paper outcome P)
	Input   bombs.Input
}

// Outcome is the engine's result for one directed-search task.
type Outcome struct {
	Verdict     Verdict
	Input       bombs.Input // the solving input when Verdict == VerdictSolved
	Incidents   []symexec.Incident
	Claims      []Claim
	CrashDetail string

	// FaultInputs lists generated inputs whose concrete runs ended in an
	// unhandled fault — discovered bugs, in the paper's bug-detection
	// application scenario.
	FaultInputs []bombs.Input

	Rounds          int
	CandidatesTried int
	SolverExhausted bool // some query hit its budget
	SimulationUsed  bool
	TaintedPerRound []int // Figure 3 metric per round
}

// MinIncidentStage returns the earliest error stage among incidents.
func (o *Outcome) MinIncidentStage() (symexec.Stage, bool) {
	if len(o.Incidents) == 0 {
		return 0, false
	}
	min := o.Incidents[0].Stage
	for _, in := range o.Incidents {
		if in.Stage < min {
			min = in.Stage
		}
	}
	return min, true
}

// Engine is a directed concolic explorer for one program image.
type Engine struct {
	img    *bin.Image
	caps   Capabilities
	target uint64

	seenInput map[string]bool
	seenFlip  map[string]bool
	queue     []bombs.Input
	out       *Outcome
	incSeen   map[string]bool
	deadline  time.Time
}

// New builds an engine targeting the given address (the bomb symbol).
func New(img *bin.Image, target uint64, caps Capabilities) *Engine {
	if caps.MaxRounds <= 0 {
		caps.MaxRounds = DefaultMaxRounds
	}
	if caps.MaxCandidates <= 0 {
		caps.MaxCandidates = DefaultMaxCandidates
	}
	if caps.MaxArgvLen <= 0 {
		caps.MaxArgvLen = DefaultMaxArgvLen
	}
	if caps.StepBudget <= 0 {
		caps.StepBudget = DefaultStepBudget
	}
	if caps.TotalBudget <= 0 {
		caps.TotalBudget = DefaultTotalBudget
	}
	return &Engine{
		img:       img,
		caps:      caps,
		target:    target,
		seenInput: make(map[string]bool),
		seenFlip:  make(map[string]bool),
		incSeen:   make(map[string]bool),
		out:       &Outcome{},
	}
}

// Explore runs the concolic loop from the seed input.
func (en *Engine) Explore(seed bombs.Input) *Outcome {
	en.deadline = time.Now().Add(en.caps.TotalBudget)
	en.push(seed)
	for len(en.queue) > 0 && en.out.Rounds < en.caps.MaxRounds {
		if time.Now().After(en.deadline) {
			en.out.Verdict = VerdictBudget
			en.out.CrashDetail = "analysis timeout (task wall-clock budget)"
			return en.out
		}
		var in bombs.Input
		if en.caps.Search == SearchDFS {
			in = en.queue[len(en.queue)-1]
			en.queue = en.queue[:len(en.queue)-1]
		} else {
			in = en.queue[0]
			en.queue = en.queue[1:]
		}
		if done := en.round(in); done {
			return en.out
		}
	}
	if en.out.SolverExhausted {
		en.out.Verdict = VerdictBudget
		en.out.CrashDetail = "constraint solving exhausted its budget"
		return en.out
	}
	// Exhausting the round budget with candidates pending is exploration
	// saturation, not an abnormal exit: the tool simply never found the
	// path (wall-clock exhaustion above is what maps to E).
	en.out.Verdict = VerdictUnreachable
	return en.out
}

func (en *Engine) push(in bombs.Input) {
	key := inputKey(in)
	if en.seenInput[key] || len(en.seenInput) >= en.caps.MaxCandidates {
		return
	}
	en.seenInput[key] = true
	en.queue = append(en.queue, in)
}

func inputKey(in bombs.Input) string {
	webKeys := make([]string, 0, len(in.Web))
	for k, v := range in.Web {
		webKeys = append(webKeys, k+"="+v)
	}
	sort.Strings(webKeys)
	return fmt.Sprintf("%q|%d|%d|%v", in.Argv1, in.TimeNow, in.Pid, webKeys)
}

// round runs one concrete execution plus its symbolic pass and schedules
// negations. It returns true when exploration should stop.
func (en *Engine) round(in bombs.Input) bool {
	en.out.Rounds++
	en.out.CandidatesTried++

	cfg := in.Config()
	cfg.Record = true
	cfg.MaxSteps = en.caps.StepBudget
	cfg.WatchAddrs = []uint64{en.target}
	m, err := gos.New(en.img, cfg)
	if err != nil {
		en.out.Verdict = VerdictCrashed
		en.out.CrashDetail = err.Error()
		return true
	}
	res := m.Run()

	if res.Reason == gos.StopFault {
		en.out.FaultInputs = append(en.out.FaultInputs, in)
	}
	// A trace containing a hardware fault is only analyzable by tools
	// that trace through exception dispatch; the others reject the whole
	// run (their tracer/emulator cannot process it), so a detonation in
	// such a run is never observed by the tool.
	if idx := faultIndex(res.Trace); idx >= 0 {
		switch en.caps.Sym.Exc {
		case symexec.ExcCrash:
			en.out.Verdict = VerdictCrashed
			en.out.CrashDetail = "emulator fault: exception dispatch unsupported"
			return true
		case symexec.ExcEs1:
			en.incident(symexec.Incident{
				Stage: symexec.StageEs1, Index: idx,
				Detail: "exception handler instructions cannot be traced",
			})
			return false
		case symexec.ExcEs2:
			en.incident(symexec.Incident{
				Stage: symexec.StageEs2, Index: idx,
				Detail: "exception handler effect on symbolic state lost",
			})
			return false
		}
	}
	if res.Hit(en.target) {
		en.out.Verdict = VerdictSolved
		en.out.Input = in
		return true
	}

	// Emulation-layer gaps: network IO the engine cannot perform.
	if !en.caps.WebSyscall && traceUsesWeb(res.Trace) {
		en.out.Verdict = VerdictCrashed
		en.out.CrashDetail = "network system call unsupported by the emulation layer"
		return true
	}

	opts := en.caps.Sym
	opts.Env = symexec.EnvInfo{TimeNow: cfg.TimeNow, Pid: cfg.Pid}
	for f := range cfg.Files {
		opts.Env.KnownFiles = append(opts.Env.KnownFiles, f)
	}
	sort.Strings(opts.Env.KnownFiles)
	sr := symexec.Run(en.img, res.Trace, res.Argv, cfg.Argv, opts)

	en.mergeIncidents(sr.Incidents)
	en.out.TaintedPerRound = append(en.out.TaintedPerRound, len(sr.TaintedIdx))
	if sr.SimulationUsed {
		en.out.SimulationUsed = true
	}
	if sr.Crashed {
		en.out.Verdict = VerdictCrashed
		en.out.CrashDetail = sr.CrashDetail
		return true
	}

	en.negate(in, sr)
	return false
}

// faultIndex returns the index of the first faulting entry, or -1.
func faultIndex(tr *trace.Trace) int {
	if tr == nil {
		return -1
	}
	for i := range tr.Entries {
		if tr.Entries[i].Exc != nil {
			return i
		}
	}
	return -1
}

func traceUsesWeb(tr *trace.Trace) bool {
	if tr == nil {
		return false
	}
	for i := range tr.Entries {
		if s := tr.Entries[i].Sys; s != nil && s.Num == trace.SysWebGet {
			return true
		}
	}
	return false
}

func (en *Engine) mergeIncidents(ins []symexec.Incident) {
	for _, in := range ins {
		key := fmt.Sprintf("%d|%#x|%s", in.Stage, in.PC, in.Detail)
		if en.incSeen[key] {
			continue
		}
		en.incSeen[key] = true
		en.out.Incidents = append(en.out.Incidents, in)
	}
}

// negate builds and solves the negation of each explorable constraint
// (generational search) and schedules the resulting inputs.
func (en *Engine) negate(cur bombs.Input, sr *symexec.Result) {
	// Forward occurrence numbering keeps flip keys stable across rounds
	// (the n-th execution of a loop branch keeps its identity as traces
	// lengthen).
	occurrence := make(map[uint64]int)
	occ := make([]int, len(sr.Constraints))
	for i := range sr.Constraints {
		occ[i] = occurrence[sr.Constraints[i].PC]
		occurrence[sr.Constraints[i].PC]++
	}
	// Ascending order: the deepest branch's candidate is pushed last, so
	// depth-first scheduling pops it first (negate the deepest unexplored
	// branch — the classic DFS concolic strategy).
	for i := 0; i < len(sr.Constraints); i++ {
		if time.Now().After(en.deadline) {
			en.out.SolverExhausted = true
			return
		}
		pc := sr.Constraints[i]
		if pc.Kind == symexec.KindAssume {
			continue
		}
		// Keyed by input length: an UNSAT flip can become satisfiable
		// once the argument grows (the iterative-lengthening pattern), so
		// its verdict only holds per length. SAT and UNKNOWN flips are
		// never retried for the same key.
		flipKey := fmt.Sprintf("%#x|%v|%d|%d", pc.PC, pc.Kind, occ[i], len(cur.Argv1))
		if pc.Kind == symexec.KindJump {
			flipKey = fmt.Sprintf("%#x|jump|%s", pc.PC, pc.Expr)
		}
		if en.seenFlip[flipKey] {
			continue
		}

		system := make([]sym.Expr, 0, i+1)
		for j := 0; j < i; j++ {
			system = append(system, sr.Constraints[j].Expr)
		}
		system = append(system, sym.NewBoolNot(pc.Expr))

		resu, err := solver.Solve(system, solver.Options{
			MaxConflicts: en.caps.SolverConflicts,
			FP:           en.caps.FP,
			FPIterations: en.caps.FPIterations,
			Timeout:      en.caps.SolverTimeout,
			Seed:         sr.Seed,
			RandSeed:     int64(en.out.Rounds*1000 + i),
		})
		if err != nil {
			continue
		}
		switch resu.Status {
		case solver.StatusUnknown:
			en.out.SolverExhausted = true
			en.seenFlip[flipKey] = true // hopeless within budget; don't retry
			continue
		case solver.StatusFloatUnsupported:
			en.incident(symexec.Incident{
				Stage: symexec.StageEs3, Index: pc.Index, PC: pc.PC,
				Detail: "floating-point theory unsupported by the solver",
			})
			continue
		case solver.StatusUnsat:
			// Branch direction infeasible on this prefix; mark explored.
			en.seenFlip[flipKey] = true
			continue
		}

		// Satisfiable: realize the model as an input.
		next, realized, truncated := reconstruct(resu.Model, sr.Seed, cur, en.caps)
		if truncated {
			en.incident(symexec.Incident{
				Stage: symexec.StageEs2, Index: pc.Index, PC: pc.PC,
				Detail: "model requires a longer input than the tool can construct",
			})
		}
		if !realized {
			// The model binds only unrealizable (simulation) variables:
			// the tool believes the flipped path is feasible but cannot
			// build an input for it.
			if bindsSim(resu.Model) {
				en.out.Claims = append(en.out.Claims, Claim{
					PC:      pc.PC,
					Syscall: bindsSyscallSim(resu.Model),
					Input:   cur,
				})
			}
			en.seenFlip[flipKey] = true
			continue
		}
		en.seenFlip[flipKey] = true
		en.push(next)
	}
}

func (en *Engine) incident(in symexec.Incident) {
	en.mergeIncidents([]symexec.Incident{in})
}

// bindsSim reports whether the model constrains any simulation variable.
func bindsSim(model map[string]uint64) bool {
	for name := range model {
		if symexec.IsSimVar(name) {
			return true
		}
	}
	return false
}

// bindsSyscallSim reports whether the model constrains syscall-simulation
// variables (as opposed to external-function summaries).
func bindsSyscallSim(model map[string]uint64) bool {
	for name := range model {
		if symexec.IsSimVar(name) && !isExtSim(name) {
			return true
		}
	}
	return false
}

func isExtSim(name string) bool {
	return len(name) > 8 && name[4:8] == "ext:"
}
