// Package core implements the concolic execution engine — the paper's
// Figure 1 framework. Each round runs the program concretely, filters and
// lifts the trace, extracts path constraints symbolically, negates branch
// constraints to build new models, solves them, and schedules the
// resulting inputs for the next round, until the directed target (the
// bomb) is reached or budgets run out.
//
// A Capabilities value configures the engine as one of the studied tools;
// the same loop produces the paper's ✓ / Es0–Es3 / E / P outcomes purely
// from which capabilities are present.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bin"
	"repro/internal/cover"
	"repro/internal/exchange"
	"repro/internal/solver"
	"repro/internal/suggest"
	"repro/internal/sym"
	"repro/internal/symexec"
	"repro/internal/target"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/warmstore"
)

// Capabilities configures the engine as a particular tool.
type Capabilities struct {
	Name string

	// Sym configures the symbolic execution stage (sources, channels,
	// memory model, lifting gates, ...). Env is filled per run.
	Sym symexec.Options

	// FP selects the floating-point solving strategy.
	FP solver.FPMode
	// SolverConflicts bounds each SAT query; exhaustion contributes to E.
	SolverConflicts int64
	// SolverTimeout bounds each query's wall-clock time (the paper's
	// analysis timeout); exhaustion contributes to E.
	SolverTimeout time.Duration
	// FPIterations bounds each FP local search.
	FPIterations int

	// GrowArgv permits reconstructed arguments longer than the current
	// one; without it, longer models are truncated (wrong inputs, Es2).
	GrowArgv bool
	// MaxArgvLen caps argument growth.
	MaxArgvLen int

	// Search selects the exploration strategy (zero value: generational).
	Search SearchStrategy

	// Fuzz enables hybrid mutation-fuzzing breed rounds between coverage
	// generations: purely concrete executions of deterministic mutants
	// whose new-coverage survivors join the frontier as seeds with zero
	// solver cost. Only meaningful under SearchCoverage.
	Fuzz bool
	// FuzzSeed seeds the deterministic mutation stream (any value,
	// including 0, is a valid fixed seed).
	FuzzSeed int64
	// FuzzExecs bounds concrete mutation executions per breed round
	// (<= 0: DefaultFuzzExecs).
	FuzzExecs int

	// CoverGoal, in (0, 1], stops exploration early once that fraction of
	// the image's static basic blocks has been covered
	// (VerdictCoverGoal, paper outcome E: the analysis was cut short).
	CoverGoal float64
	// CoverGoalEdges stops exploration once that many distinct edges are
	// covered — the programmatic form of CoverGoal, used by benchmarks to
	// measure queries-to-goal against a reference run's final coverage.
	CoverGoalEdges int

	// MaxRounds bounds concrete executions; MaxCandidates bounds queued
	// inputs. StepBudget bounds each concrete run.
	MaxRounds     int
	MaxCandidates int
	StepBudget    int

	// WebSyscall false makes the engine abort (E) when the trace performs
	// network IO the emulation layer cannot handle.
	WebSyscall bool

	// TotalBudget bounds one directed-search task's wall-clock time (the
	// paper's ten-minute per-task timeout, scaled); exhaustion gives E.
	TotalBudget time.Duration

	// Workers bounds how many exploration rounds run concurrently
	// (<= 0: runtime.GOMAXPROCS(0)). Workers == 1 reproduces the
	// historical sequential loop exactly; larger values run frontier
	// candidates in parallel batches with deterministic verdicts (see
	// scheduler.go).
	Workers int

	// SolverCacheSize bounds the engine's solver query cache
	// (<= 0: solver.DefaultCacheSize).
	SolverCacheSize int

	// Checkpoint selects the snapshot-replay policy: CheckpointAuto (the
	// zero value) resumes each candidate from the deepest machine
	// snapshot that precedes its divergence point, re-executing only the
	// suffix; CheckpointOff re-executes every round from the entry point.
	// Outcomes are byte-identical either way — only the work profile
	// (instructions executed, pages copied) changes.
	Checkpoint CheckpointPolicy

	// SolverMode selects how a round's negation queries are solved.
	// SolverFresh (the zero value) builds a fresh SAT instance per query
	// and keeps the engine's strongest guarantee: outcomes identical at
	// every worker count. SolverIncremental opens one solver.Session per
	// round and fires the round's queries incrementally on a persistent
	// instance — verdicts per query are equivalent, and runs are
	// deterministic at a fixed worker count, but models (and therefore
	// generated inputs) may differ from fresh mode and across worker
	// counts, because the incremental search reuses state whose content
	// depends on which duplicate queries a batch happened to perform.
	// SolverPortfolio races each query across the incremental session and
	// diversified fresh CDCL workers sharing learned clauses — verdicts
	// per query are equivalent or stronger (a budget-bound Unknown can
	// turn conclusive when a diversified rival cracks the instance), but
	// which worker answers is scheduling-dependent, so models and
	// generated inputs may vary run to run.
	SolverMode SolverMode

	// PortfolioWorkers is the fresh CDCL worker count per portfolio race
	// (<= 0: solver.DefaultPortfolioWorkers). Ignored outside
	// SolverPortfolio.
	PortfolioWorkers int

	// Warm, when non-nil under SolverPortfolio, persists query verdicts
	// and exchanged clauses across processes (the -warmstart store). The
	// caller owns the store's lifecycle; the engine only reads and
	// appends.
	Warm *warmstore.Store

	// SharedCache, when non-nil, backs the engine's solver query cache
	// with a persistent tier shared across replicas (see
	// solver.Cache.SetShared): LRU misses consult it before solving, and
	// solved queries write through. Tier entries are seed-independent raw
	// results keyed by cross-process-stable digests, so sharing them
	// never perturbs verdicts. The caller owns the tier's lifecycle.
	SharedCache solver.QueryCache

	// Progress, when non-nil, is called on the engine goroutine after
	// each merged round with cumulative counters — the streaming-progress
	// hook. It runs inside the exploration loop in round order, so it
	// must be fast and must not call back into the engine.
	Progress func(Progress)
}

// Progress is one per-round progress report: the cumulative counters as
// of the round it follows. Values are deltas-friendly (monotone), and —
// like the verdict — deterministic for a fixed seed and worker count.
type Progress struct {
	// Round is the 1-based merged round this report follows.
	Round int
	// SolverQueries is the cumulative negation-query count.
	SolverQueries int
	// CoveredEdges/CoveredBlocks is the engine tracker's cumulative
	// coverage.
	CoveredEdges  int
	CoveredBlocks int
	// Frontier is the number of pending candidates after the round.
	Frontier int
}

// SolverMode selects the negation-query solving strategy.
type SolverMode int

// Solver modes.
const (
	// SolverFresh builds a fresh SAT instance for every query.
	SolverFresh SolverMode = iota
	// SolverIncremental solves each round's queries on one persistent
	// assumption-based session (see solver.Session).
	SolverIncremental
	// SolverPortfolio races each query across the incremental session and
	// diversified fresh workers with shared learned clauses (see
	// solver.Portfolio).
	SolverPortfolio
)

func (m SolverMode) String() string {
	switch m {
	case SolverFresh:
		return "fresh"
	case SolverIncremental:
		return "incremental"
	case SolverPortfolio:
		return "portfolio"
	}
	return "invalid"
}

// SolverModeNames lists the accepted -solver flag values in menu order.
func SolverModeNames() []string {
	return []string{"fresh", "incremental", "portfolio"}
}

// ParseSolverMode maps a -solver flag value to its mode. Unknown names
// get the uniform suggestion error (valid names plus closest match).
func ParseSolverMode(name string) (SolverMode, error) {
	switch name {
	case "", "fresh":
		return SolverFresh, nil
	case "incremental":
		return SolverIncremental, nil
	case "portfolio":
		return SolverPortfolio, nil
	}
	return 0, suggest.Unknown("solver mode", name, SolverModeNames())
}

// ResolvedWorkers returns the worker count Explore will actually use:
// Workers, or runtime.GOMAXPROCS(0) when unset.
func (c Capabilities) ResolvedWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SearchStrategy selects how new inputs are scheduled.
type SearchStrategy int

// Search strategies.
const (
	// SearchGenerational negates every unexplored branch of each trace
	// and schedules breadth-first (SAGE-style; the default).
	SearchGenerational SearchStrategy = iota
	// SearchDFS schedules depth-first: newly generated inputs are
	// explored before older ones, following one path deep.
	SearchDFS
	// SearchCoverage schedules by coverage yield: candidates buffer into
	// generations, and at each generation boundary they are scored by
	// whether the branch edge their model was built to flip is still
	// uncovered, highest yield first (see coverage.go). With Fuzz set,
	// mutation breed rounds run between generations.
	SearchCoverage
)

func (s SearchStrategy) String() string {
	switch s {
	case SearchGenerational:
		return "generational"
	case SearchDFS:
		return "dfs"
	case SearchCoverage:
		return "coverage"
	}
	return "invalid"
}

// SearchStrategyNames lists the accepted -strategy flag values in menu
// order.
func SearchStrategyNames() []string {
	return []string{"generational", "dfs", "coverage"}
}

// ParseSearchStrategy maps a -strategy flag value to its strategy.
// Unknown names get the uniform suggestion error (valid names plus
// closest match).
func ParseSearchStrategy(name string) (SearchStrategy, error) {
	switch name {
	case "", "generational":
		return SearchGenerational, nil
	case "dfs":
		return SearchDFS, nil
	case "coverage":
		return SearchCoverage, nil
	}
	return 0, suggest.Unknown("search strategy", name, SearchStrategyNames())
}

// Defaults.
const (
	DefaultMaxRounds     = 48
	DefaultMaxCandidates = 256
	DefaultMaxArgvLen    = 24
	DefaultStepBudget    = 400_000
	DefaultTotalBudget   = 60 * time.Second
	DefaultFuzzExecs     = 48
)

// Verdict is the engine's conclusion about the target.
type Verdict int

// Verdicts.
const (
	// VerdictSolved: a generated input reached the target (replay-checked
	// by construction, since reaching it happens in a concrete run).
	VerdictSolved Verdict = iota + 1
	// VerdictUnreachable: exploration exhausted without reaching it.
	VerdictUnreachable
	// VerdictCrashed: the engine aborted (paper outcome E).
	VerdictCrashed
	// VerdictBudget: a resource budget was exhausted (paper outcome E).
	VerdictBudget
	// VerdictCancelled: the caller's context was cancelled mid-exploration
	// (service job cancellation); not a paper outcome.
	VerdictCancelled
	// VerdictCoverGoal: the configured coverage goal was reached and
	// exploration stopped early without a conclusion about the target
	// (paper outcome E, like any other deliberately cut-short analysis).
	VerdictCoverGoal
)

func (v Verdict) String() string {
	switch v {
	case VerdictSolved:
		return "solved"
	case VerdictUnreachable:
		return "unreachable"
	case VerdictCrashed:
		return "crashed"
	case VerdictBudget:
		return "budget-exhausted"
	case VerdictCancelled:
		return "cancelled"
	case VerdictCoverGoal:
		return "cover-goal-reached"
	}
	return "invalid"
}

// ParseVerdict maps a Verdict.String() rendering back to the verdict —
// the inverse a fleet client needs to decode a replica's job result.
func ParseVerdict(name string) (Verdict, error) {
	for v := VerdictSolved; v <= VerdictCoverGoal; v++ {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown verdict %q", name)
}

// Claim records a model the engine could not realize as a concrete input
// (it bound simulation variables): the tool "thinks" the path is feasible.
type Claim struct {
	PC      uint64
	Syscall bool // bound syscall-simulation variables (paper outcome P)
	Input   target.Input
}

// Stats reports the engine's work profile for one Explore call. Verdict
// fields of Outcome are deterministic for a fixed seed and worker count;
// Stats values that depend on wall-clock time or on duplicate work
// suppressed between parallel rounds (cache counters, wall time) are
// informational and may vary run to run.
type Stats struct {
	// Rounds is the number of merged exploration rounds (equals
	// Outcome.Rounds).
	Rounds int
	// SolverQueries counts negation queries issued by merged rounds.
	SolverQueries int
	// CacheHits/CacheMisses/CacheEvictions report the solver query cache.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	// PeakFrontier is the largest number of pending candidates observed
	// at a batch boundary.
	PeakFrontier int
	// Workers is the resolved worker count.
	Workers int
	// WallTime is the Explore call's duration.
	WallTime time.Duration
	// InternHits/InternMisses report the sym hash-consing arena's lookup
	// traffic during this Explore call (deltas, not process totals). A
	// hit means a constructor returned an existing node instead of
	// allocating — the structural-sharing rate of the workload.
	InternHits   uint64
	InternMisses uint64
	// ArenaNodes is the process-wide arena population after the call:
	// the number of distinct interned terms alive.
	ArenaNodes uint64

	// CheckpointsTaken counts resumable machine snapshots captured across
	// all concrete runs of this Explore call.
	CheckpointsTaken int
	// CheckpointResumes counts rounds that started from a snapshot
	// instead of the program entry point.
	CheckpointResumes int
	// InstructionsSkipped sums the shared-prefix instructions that
	// resumed rounds did not re-execute.
	InstructionsSkipped int64
	// PagesCOWFaulted counts guest memory pages copied on write across
	// all runs (snapshot sharing plus fork sharing).
	PagesCOWFaulted uint64
	// PrefixConstraintsReused counts path constraints derived from
	// replayed trace prefixes rather than from re-traced instructions.
	PrefixConstraintsReused int

	// SolverSessions counts incremental solver sessions opened (one per
	// round issuing queries under SolverIncremental; always 0 under
	// SolverFresh).
	SolverSessions int
	// IncrementalChecks counts negation queries decided on a persistent
	// session instance rather than by a one-shot solve.
	IncrementalChecks int
	// LearnedClausesRetained sums, over incremental checks after the
	// first of each session, the learned clauses carried into the check
	// from its predecessors — work a fresh-per-query solver re-derives.
	LearnedClausesRetained int64
	// GuardLiterals counts guard literals allocated by session encoders
	// to activate and retire negated constraints.
	GuardLiterals int

	// PortfolioRaces counts negation queries decided by racing workers
	// under SolverPortfolio (always 0 otherwise).
	PortfolioRaces int
	// PortfolioClausesShared counts learned clauses portfolio workers
	// published into the per-engine exchange; PortfolioClausesImported
	// counts adoptions by racing workers (exchange pulls plus warm-store
	// seeds).
	PortfolioClausesShared   int64
	PortfolioClausesImported int64
	// WarmQueryHits counts negation queries answered from the warm-start
	// store; WarmClausesSeeded counts stored clauses loaded into race
	// exchanges.
	WarmQueryHits     int
	WarmClausesSeeded int

	// SharedCacheHits/SharedCacheMisses count shared-tier consults on
	// local cache misses; SharedCacheStores counts write-throughs;
	// SharedCacheServed counts queries answered by a shared-born entry
	// (the direct tier hit plus later local re-hits on it). All zero
	// without Capabilities.SharedCache.
	SharedCacheHits   uint64
	SharedCacheMisses uint64
	SharedCacheStores uint64
	SharedCacheServed uint64

	// CoveredEdges/CoveredBlocks: distinct lifted-PC edges and static
	// block leaders covered by this exploration's concrete runs
	// (concolic rounds plus fuzz breed executions). Deterministic for a
	// fixed seed across worker counts and checkpoint policies: coverage
	// is a function of the executed traces, which the scheduler keeps
	// identical.
	CoveredEdges  int
	CoveredBlocks int
	// NewEdgesPerRound records, per merged round in dispatch order, how
	// many edges that round's trace covered first.
	NewEdgesPerRound []int
	// FuzzExecs counts concrete mutation executions performed by breed
	// rounds; FuzzSeedsPromoted counts mutants that found new coverage
	// and joined the frontier as seeds (both 0 unless Capabilities.Fuzz
	// under SearchCoverage).
	FuzzExecs         int
	FuzzSeedsPromoted int
}

// InternHitRate is InternHits over total lookups, 0 when idle.
func (s Stats) InternHitRate() float64 {
	if tot := s.InternHits + s.InternMisses; tot > 0 {
		return float64(s.InternHits) / float64(tot)
	}
	return 0
}

// Outcome is the engine's result for one directed-search task.
type Outcome struct {
	Verdict     Verdict
	Input       target.Input // the solving input when Verdict == VerdictSolved
	Incidents   []symexec.Incident
	Claims      []Claim
	CrashDetail string

	// FaultInputs lists generated inputs whose concrete runs ended in an
	// unhandled fault — discovered bugs, in the paper's bug-detection
	// application scenario.
	FaultInputs []target.Input

	Rounds          int
	CandidatesTried int
	SolverExhausted bool // some query hit its budget
	SimulationUsed  bool
	TaintedPerRound []int // Figure 3 metric per round

	// Stats profiles the exploration (rounds, queries, cache, frontier,
	// wall time).
	Stats Stats
}

// MinIncidentStage returns the earliest error stage among incidents.
func (o *Outcome) MinIncidentStage() (symexec.Stage, bool) {
	if len(o.Incidents) == 0 {
		return 0, false
	}
	min := o.Incidents[0].Stage
	for _, in := range o.Incidents {
		if in.Stage < min {
			min = in.Stage
		}
	}
	return min, true
}

// Engine is a directed concolic explorer for one program image.
type Engine struct {
	img     *bin.Image
	caps    Capabilities
	target  uint64
	workers int

	seenInput map[string]bool
	seenFlip  map[string]bool
	queue     []candidate
	head      int // first live BFS element of queue
	out       *Outcome
	incSeen   map[string]bool
	deadline  time.Time
	ctx       context.Context // set once per Explore; read-only afterwards
	ctxBound  bool            // deadline comes from ctx, not TotalBudget
	cache     *solver.Cache
	ex        *exchange.Exchange // clause exchange, non-nil under SolverPortfolio
	stats     Stats
	arena0    sym.ArenaStats // arena counters at Explore entry, for deltas

	// Coverage state (see coverage.go). cov is the engine's own
	// cumulative tracker — the deterministic scoring and goal view;
	// every merged run also feeds cover.Global() for process metrics.
	cov        *cover.Tracker
	prog       *vm.Program     // decoded image; nil when undecodable
	leaders    map[uint64]bool // static basic-block leaders
	goalBlocks int             // resolved CoverGoal in blocks (0: no goal)

	// SearchCoverage generational frontier: pushes buffer into queue;
	// view is the current generation, scored and sorted at promotion.
	view     []candidate
	viewHead int
	gen      int

	// Hybrid fuzzing state: corpus holds inputs whose runs found new
	// coverage (breeding stock), fuzzSeen dedups executed mutants.
	corpus    []corpusEntry
	corpusIdx int
	fuzzSeen  map[string]bool
}

// New builds an engine targeting the given address (the bomb symbol).
func New(img *bin.Image, target uint64, caps Capabilities) *Engine {
	if caps.MaxRounds <= 0 {
		caps.MaxRounds = DefaultMaxRounds
	}
	if caps.MaxCandidates <= 0 {
		caps.MaxCandidates = DefaultMaxCandidates
	}
	if caps.MaxArgvLen <= 0 {
		caps.MaxArgvLen = DefaultMaxArgvLen
	}
	if caps.StepBudget <= 0 {
		caps.StepBudget = DefaultStepBudget
	}
	if caps.TotalBudget <= 0 {
		caps.TotalBudget = DefaultTotalBudget
	}
	if caps.FuzzExecs <= 0 {
		caps.FuzzExecs = DefaultFuzzExecs
	}
	workers := caps.ResolvedWorkers()
	var ex *exchange.Exchange
	if caps.SolverMode == SolverPortfolio {
		// One exchange per engine: every round's races pool clauses under
		// per-system keys, so repeated or overlapping queries across
		// rounds start from each other's learned clauses.
		ex = exchange.New()
	}
	// The decoded program gives the coverage layer its static structure:
	// block leaders for the block metric and flip-target successors for
	// candidate scoring. Images that fail to decode fall back to
	// edge-only coverage (leaders == nil counts every executed PC).
	prog, _ := vm.LoadProgram(img)
	var leaders map[uint64]bool
	if prog != nil {
		leaders = blockLeaders(prog)
	}
	goalBlocks := 0
	if caps.CoverGoal > 0 && len(leaders) > 0 {
		goalBlocks = int(math.Ceil(caps.CoverGoal * float64(len(leaders))))
	}
	return &Engine{
		img:        img,
		caps:       caps,
		target:     target,
		workers:    workers,
		seenInput:  make(map[string]bool),
		seenFlip:   make(map[string]bool),
		incSeen:    make(map[string]bool),
		out:        &Outcome{},
		ctx:        context.Background(),
		cache:      newEngineCache(caps),
		ex:         ex,
		cov:        cover.NewTracker(),
		prog:       prog,
		leaders:    leaders,
		goalBlocks: goalBlocks,
		fuzzSeen:   make(map[string]bool),
	}
}

// newEngineCache builds the engine's query cache, backed by the
// caller's shared tier when one is configured.
func newEngineCache(caps Capabilities) *solver.Cache {
	c := solver.NewCache(caps.SolverCacheSize)
	if caps.SharedCache != nil {
		c.SetShared(caps.SharedCache)
	}
	return c
}

// Explore runs the concolic loop from the seed input.
func (en *Engine) Explore(seed target.Input) *Outcome {
	return en.ExploreContext(context.Background(), seed)
}

// ExploreContext is Explore under a cancellation context: the serving
// layer's contract with the engine. A context deadline tightens (never
// loosens) the task wall-clock budget and yields VerdictBudget, exactly
// like TotalBudget exhaustion; plain cancellation yields
// VerdictCancelled. Both are observed between rounds, between negation
// queries, and inside a running SAT query (at restart boundaries), so a
// cancelled job stops mid-round instead of running to budget. Only the
// step-bounded concrete run of an already-dispatched round is not
// interruptible. With a background context the behaviour — including
// every determinism guarantee — is identical to Explore.
func (en *Engine) ExploreContext(ctx context.Context, seed target.Input) *Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	en.ctx = ctx
	start := time.Now()
	en.arena0 = sym.ArenaSnapshot()
	en.deadline = start.Add(en.caps.TotalBudget)
	if d, ok := ctx.Deadline(); ok && d.Before(en.deadline) {
		en.deadline = d
		en.ctxBound = true
	}
	en.push(candidate{in: seed})
	terminal := false
loop:
	for en.frontierLen() > 0 && en.out.Rounds < en.caps.MaxRounds {
		if err := ctx.Err(); err != nil {
			en.out.Verdict, en.out.CrashDetail = ctxVerdict(err)
			terminal = true
			break
		}
		if time.Now().After(en.deadline) {
			// The ctx timer can lag time.Now() by a tick; attribute the
			// timeout to whichever limit actually binds.
			en.out.Verdict = VerdictBudget
			if en.ctxBound {
				en.out.CrashDetail = "analysis timeout (context deadline)"
			} else {
				en.out.CrashDetail = "analysis timeout (task wall-clock budget)"
			}
			terminal = true
			break
		}
		if en.coverGoalReached() {
			en.out.Verdict = VerdictCoverGoal
			en.out.CrashDetail = en.coverGoalDetail()
			terminal = true
			break
		}
		if en.caps.Search == SearchCoverage && en.viewLen() == 0 {
			// Generation boundary: every candidate of the previous
			// generation has been merged, so the buffered pushes, the
			// coverage state, and therefore the breeding and scoring below
			// are identical at every worker count.
			if en.advanceGeneration() {
				terminal = true
				break
			}
			continue // re-check budgets and the goal before dispatching
		}
		if f := en.frontierLen(); f > en.stats.PeakFrontier {
			en.stats.PeakFrontier = f
		}
		batch := en.popBatch(min(en.workers, en.caps.MaxRounds-en.out.Rounds))
		for _, rec := range en.runBatch(batch) {
			if en.applyRound(rec) {
				terminal = true
				break loop
			}
		}
	}
	if !terminal {
		if err := ctx.Err(); err != nil {
			// Cancelled mid-round: negation was cut short, so an empty
			// frontier here means "stopped", not "explored everything".
			en.out.Verdict, en.out.CrashDetail = ctxVerdict(err)
			en.finishStats(start)
			return en.out
		}
		if en.out.SolverExhausted {
			en.out.Verdict = VerdictBudget
			en.out.CrashDetail = "constraint solving exhausted its budget"
		} else {
			// Exhausting the round budget with candidates pending is
			// exploration saturation, not an abnormal exit: the tool
			// simply never found the path (wall-clock exhaustion above is
			// what maps to E).
			en.out.Verdict = VerdictUnreachable
		}
	}
	en.finishStats(start)
	return en.out
}

// ctxVerdict maps a context error to the engine verdict and detail: a
// deadline is a wall-clock budget (paper outcome E), a plain cancel is
// the serving layer stopping the job.
func ctxVerdict(err error) (Verdict, string) {
	if err == context.DeadlineExceeded {
		return VerdictBudget, "analysis timeout (context deadline)"
	}
	return VerdictCancelled, "exploration cancelled: " + err.Error()
}

func (en *Engine) finishStats(start time.Time) {
	cs := en.cache.Stats()
	en.stats.Rounds = en.out.Rounds
	en.stats.CacheHits = cs.Hits
	en.stats.CacheMisses = cs.Misses
	en.stats.CacheEvictions = cs.Evictions
	en.stats.SharedCacheHits = cs.SharedHits
	en.stats.SharedCacheMisses = cs.SharedMisses
	en.stats.SharedCacheStores = cs.SharedStores
	en.stats.SharedCacheServed = cs.SharedServed
	en.stats.Workers = en.workers
	en.stats.WallTime = time.Since(start)
	as := sym.ArenaSnapshot()
	en.stats.InternHits = as.Hits - en.arena0.Hits
	en.stats.InternMisses = as.Misses - en.arena0.Misses
	en.stats.ArenaNodes = as.Size
	en.stats.CoveredEdges = en.cov.Edges()
	en.stats.CoveredBlocks = en.cov.Blocks()
	en.out.Stats = en.stats
}

// sessionCache returns the engine's query cache for incremental
// sessions to consult, or nil when rounds run in parallel: a session's
// raw models depend on its solve history, so sharing them across
// concurrently scheduled rounds would make results depend on goroutine
// timing. Sequential engines populate the cache in a fixed order, which
// keeps incremental runs deterministic and repeatable.
func (en *Engine) sessionCache() *solver.Cache {
	if en.workers == 1 {
		return en.cache
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (en *Engine) push(c candidate) {
	key := inputKey(c.in)
	if en.seenInput[key] || len(en.seenInput) >= en.caps.MaxCandidates {
		return
	}
	en.seenInput[key] = true
	en.queue = append(en.queue, c)
}

// inputKey is an injective encoding of an input's facets, used to dedup
// frontier candidates. It runs once per push on the hot path, so it
// builds the key directly instead of going through fmt.
func inputKey(in target.Input) string {
	var b strings.Builder
	b.Grow(len(in.Argv1) + 24)
	b.WriteString(in.Argv1)
	b.WriteByte(0)
	b.WriteString(strconv.FormatUint(in.TimeNow, 10))
	b.WriteByte(0)
	b.WriteString(strconv.FormatUint(in.Pid, 10))
	if len(in.Web) > 0 {
		webKeys := make([]string, 0, len(in.Web))
		for k := range in.Web {
			webKeys = append(webKeys, k)
		}
		sort.Strings(webKeys)
		for _, k := range webKeys {
			b.WriteByte(0)
			b.WriteString(k)
			b.WriteByte(1)
			b.WriteString(in.Web[k])
		}
	}
	if len(in.Files) > 0 {
		fileKeys := make([]string, 0, len(in.Files))
		for k := range in.Files {
			fileKeys = append(fileKeys, k)
		}
		sort.Strings(fileKeys)
		for _, k := range fileKeys {
			b.WriteByte(0)
			b.WriteString(k)
			b.WriteByte(2)
			b.Write(in.Files[k])
		}
	}
	if len(in.Env) > 0 {
		envKeys := make([]string, 0, len(in.Env))
		for k := range in.Env {
			envKeys = append(envKeys, k)
		}
		sort.Strings(envKeys)
		for _, k := range envKeys {
			b.WriteByte(0)
			b.WriteString(k)
			b.WriteByte(3)
			b.WriteString(in.Env[k])
		}
	}
	return b.String()
}

// flipKeyFor builds the dedup key for negating one path constraint.
func flipKeyFor(pc symexec.PathConstraint, occ, argvLen int) string {
	var b strings.Builder
	if pc.Kind == symexec.KindJump {
		b.Grow(24)
		b.WriteString(strconv.FormatUint(pc.PC, 16))
		b.WriteString("|jump|")
		// The interned id identifies the target expression exactly and in
		// O(1); String() is O(tree) and exponential on shared DAGs.
		b.WriteString(sym.CanonicalKey([]sym.Expr{pc.Expr}))
		return b.String()
	}
	b.Grow(24)
	b.WriteString(strconv.FormatUint(pc.PC, 16))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(pc.Kind)))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(occ))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(argvLen))
	return b.String()
}

// faultIndex returns the index of the first faulting entry, or -1.
func faultIndex(tr *trace.Trace) int {
	if tr == nil {
		return -1
	}
	for i := range tr.Entries {
		if tr.Entries[i].Exc != nil {
			return i
		}
	}
	return -1
}

func traceUsesWeb(tr *trace.Trace) bool {
	if tr == nil {
		return false
	}
	for i := range tr.Entries {
		if s := tr.Entries[i].Sys; s != nil && s.Num == trace.SysWebGet {
			return true
		}
	}
	return false
}

func (en *Engine) mergeIncidents(ins []symexec.Incident) {
	for _, in := range ins {
		key := fmt.Sprintf("%d|%#x|%s", in.Stage, in.PC, in.Detail)
		if en.incSeen[key] {
			continue
		}
		en.incSeen[key] = true
		en.out.Incidents = append(en.out.Incidents, in)
	}
}

func (en *Engine) incident(in symexec.Incident) {
	en.mergeIncidents([]symexec.Incident{in})
}

// bindsSim reports whether the model constrains any simulation variable.
func bindsSim(model map[string]uint64) bool {
	for name := range model {
		if symexec.IsSimVar(name) {
			return true
		}
	}
	return false
}

// bindsSyscallSim reports whether the model constrains syscall-simulation
// variables (as opposed to external-function summaries).
func bindsSyscallSim(model map[string]uint64) bool {
	for name := range model {
		if symexec.IsSimVar(name) && !isExtSim(name) {
			return true
		}
	}
	return false
}

func isExtSim(name string) bool {
	return len(name) > 8 && name[4:8] == "ext:"
}
