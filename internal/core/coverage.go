package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cover"
	"repro/internal/gos"
	"repro/internal/isa"
	"repro/internal/mutate"
	"repro/internal/symexec"
	"repro/internal/target"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Coverage-guided search (SearchCoverage) and the hybrid mutation
// fuzzer. The scheduler's determinism contract — identical outcomes at
// every worker count — rules out a live priority queue: re-scoring
// between pops would make the schedule depend on how many candidates a
// batch takes at once. Instead the frontier runs in generations,
// SAGE-style. New pushes buffer; when the current generation empties —
// a point at which every previously dispatched round has been merged,
// regardless of batching — the buffer is scored once against the
// cumulative coverage, stably sorted (score descending, push order as
// the tie-break), and becomes the next generation. Scores are frozen
// for the generation's lifetime and batches never cross a generation
// boundary, so the pop sequence is a pure function of (pushes,
// coverage), both of which the batch-synchronous scheduler already
// keeps worker-count-invariant.
//
// Breed rounds run at the same boundaries, on the engine's single
// scheduler thread: a deterministic-seeded mutator derives mutants of
// corpus inputs (inputs whose runs covered new edges — solved models
// included), executes them purely concretely — resuming from the
// parent's checkpoints when a snapshot covers the mutated prefix — and
// promotes new-coverage survivors into the next generation as seeds.
// Shallow branches get flipped by cheap mutation; the solver's budget
// lands on the deep ones.

// Fuzz tuning.
const (
	// maxCorpus bounds the breeding stock; replacement is a ring, so
	// fresh coverage finders rotate in deterministically.
	maxCorpus = 64
	// maxFuzzPromote bounds frontier seeds promoted per breed round, so
	// fuzzing cannot flood MaxRounds and starve the targeted flips.
	maxFuzzPromote = 8
	// fuzzAttemptFactor bounds mutation attempts (including dedup skips)
	// per breed round, as a multiple of FuzzExecs.
	fuzzAttemptFactor = 4
)

// corpusEntry is one breeding-stock input plus the replay plan that
// lets its mutants resume from the run's checkpoints.
type corpusEntry struct {
	in   target.Input
	plan *replayPlan
}

func (en *Engine) fuzzOn() bool {
	return en.caps.Fuzz && en.caps.Search == SearchCoverage
}

// viewLen is the unpopped remainder of the current generation.
func (en *Engine) viewLen() int { return len(en.view) - en.viewHead }

// advanceGeneration runs at a generation boundary: breed mutants (which
// may detonate the target — the return value), then promote the buffered
// pushes into the next scored generation.
func (en *Engine) advanceGeneration() bool {
	en.gen++
	if en.breed() {
		return true
	}
	en.promote()
	return false
}

// promote scores and orders the buffered candidates into the next
// generation. Stable sort: equal scores keep push order, so the
// schedule is deterministic and, because promotion only happens when
// every prior round has been merged, identical at every worker count.
func (en *Engine) promote() {
	pending := en.queue[en.head:]
	type scored struct {
		c     candidate
		score int
	}
	sc := make([]scored, len(pending))
	for i, c := range pending {
		sc[i] = scored{c: c, score: en.scoreCandidate(c)}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score > sc[j].score })
	en.view = make([]candidate, len(sc))
	for i := range sc {
		en.view[i] = sc[i].c
	}
	en.viewHead = 0
	en.queue = nil
	en.head = 0
}

// scoreCandidate ranks a frontier candidate by the novelty of the
// branch edge its model was built to flip: 2 when that edge is still
// uncovered, plus 1 when even the flipped successor block has never
// run (the flip opens a whole new block, not just a new way in). Fuzz
// seeds and the initial input carry no flip edge and score 0 — breadth
// after the targeted flips.
func (en *Engine) scoreCandidate(c candidate) int {
	if c.flipEdge == (cover.Edge{}) {
		return 0
	}
	s := 0
	if !en.cov.HasEdge(c.flipEdge) {
		s = 2
	}
	if !en.cov.HasBlock(c.flipEdge.To) {
		s++
	}
	return s
}

// corpusAdd rotates an input into the breeding stock.
func (en *Engine) corpusAdd(in target.Input, plan *replayPlan) {
	e := corpusEntry{in: in, plan: plan}
	if len(en.corpus) < maxCorpus {
		en.corpus = append(en.corpus, e)
		return
	}
	en.corpus[en.corpusIdx%maxCorpus] = e
	en.corpusIdx++
}

// breed runs one mutation round: up to FuzzExecs concrete executions of
// deterministic mutants, merged into coverage, with new-coverage
// survivors promoted into the frontier. Returns true when a mutant
// detonated the target (VerdictSolved — legitimately, since detonation
// is observed in a concrete run). Runs on the engine thread only.
func (en *Engine) breed() bool {
	if !en.fuzzOn() || len(en.corpus) == 0 {
		return false
	}
	// One stream per (seed, generation): breeding happens at merged
	// boundaries, so the stream position never depends on worker count.
	mu := mutate.New(en.caps.FuzzSeed ^ int64(en.gen)*0x9e3779b9)
	splice := make([]string, len(en.corpus))
	for i := range en.corpus {
		splice[i] = en.corpus[i].in.Argv1
	}
	promoted, runs := 0, 0
	for attempts := 0; runs < en.caps.FuzzExecs && attempts < en.caps.FuzzExecs*fuzzAttemptFactor; attempts++ {
		if en.ctx.Err() != nil || time.Now().After(en.deadline) {
			return false
		}
		parent := en.corpus[mu.Intn(len(en.corpus))]
		maxLen := len(parent.in.Argv1)
		if en.caps.GrowArgv && en.caps.MaxArgvLen > maxLen {
			maxLen = en.caps.MaxArgvLen
		}
		in := parent.in
		in.Argv1 = mu.Mutate(parent.in.Argv1, splice, maxLen)
		key := inputKey(in)
		if en.fuzzSeen[key] || en.seenInput[key] {
			continue
		}
		en.fuzzSeen[key] = true
		m, res, _, _, _, err := en.runConcrete(in, parent.plan)
		if err != nil {
			continue
		}
		runs++
		en.stats.FuzzExecs++
		if res.Reason == gos.StopFault {
			en.out.FaultInputs = append(en.out.FaultInputs, in)
		}
		// A tool whose tracer rejects runs through exception dispatch (or
		// unsupported network IO) observes nothing from such a run: no
		// coverage, no detonation, no seed.
		if faultIndex(res.Trace) >= 0 && en.caps.Sym.Exc != symexec.ExcTrace {
			continue
		}
		if !en.caps.WebSyscall && traceUsesWeb(res.Trace) {
			continue
		}
		set := cover.FromTrace(res.Trace, en.leaders)
		newEdges, _ := en.cov.Merge(set)
		cover.Global().Merge(set)
		if res.Hit(en.target) {
			en.out.Verdict = VerdictSolved
			en.out.Input = in
			return true
		}
		if newEdges > 0 && promoted < maxFuzzPromote {
			var plan *replayPlan
			if en.caps.Checkpoint == CheckpointAuto {
				plan = makePlan(in, res, m.Snapshots(), parent.plan)
			}
			before := len(en.seenInput)
			en.push(candidate{in: in, plan: plan})
			if len(en.seenInput) > before {
				promoted++
				en.stats.FuzzSeedsPromoted++
				en.corpusAdd(in, plan)
			}
		}
	}
	return false
}

// coverGoalReached checks the early-stop goals (never set by default).
func (en *Engine) coverGoalReached() bool {
	if en.caps.CoverGoalEdges > 0 && en.cov.Edges() >= en.caps.CoverGoalEdges {
		return true
	}
	return en.goalBlocks > 0 && en.cov.Blocks() >= en.goalBlocks
}

func (en *Engine) coverGoalDetail() string {
	return fmt.Sprintf("coverage goal reached: %d edges, %d/%d blocks covered",
		en.cov.Edges(), en.cov.Blocks(), len(en.leaders))
}

// flipEdgeFor returns the control-flow edge that negating pc's branch
// would cover: from the branch to the successor the recorded run did
// NOT take. Zero for anything but conditional branches (an indirect
// jump's flip target comes from a solver model, not static structure).
func (en *Engine) flipEdgeFor(pc symexec.PathConstraint, tr *trace.Trace) cover.Edge {
	if pc.Kind != symexec.KindBranch || en.prog == nil || tr == nil {
		return cover.Edge{}
	}
	if pc.Index < 0 || pc.Index >= len(tr.Entries) {
		return cover.Edge{}
	}
	e := &tr.Entries[pc.Index]
	if e.PC != pc.PC {
		return cover.Edge{}
	}
	in, size, ok := en.prog.At(pc.PC)
	if !ok || !in.Op.IsCondJump() {
		return cover.Edge{}
	}
	if e.Taken {
		// Taken was recorded; the flip falls through.
		return cover.Edge{From: pc.PC, To: pc.PC + uint64(size)}
	}
	return cover.Edge{From: pc.PC, To: uint64(in.Imm)}
}

// blockLeaders computes the static basic-block leaders of a decoded
// program: the first instruction, every direct transfer target, and
// every instruction following a control transfer. This is the block
// granularity of the coverage metric and of -cover-goal fractions.
func blockLeaders(prog *vm.Program) map[uint64]bool {
	leaders := make(map[uint64]bool)
	first := ^uint64(0)
	prog.Instrs(func(addr uint64, in isa.Instr, size int) {
		if addr < first {
			first = addr
		}
		op := in.Op
		if op.IsJump() || op == isa.OpCall || op == isa.OpRet || op == isa.OpHalt {
			leaders[addr+uint64(size)] = true
			if in.Mode == isa.ModeI && op != isa.OpRet && op != isa.OpHalt {
				leaders[uint64(in.Imm)] = true
			}
		}
	})
	if first != ^uint64(0) {
		leaders[first] = true
	}
	// Drop leaders past the text end (the successor of a final halt).
	for a := range leaders {
		if _, _, ok := prog.At(a); !ok {
			delete(leaders, a)
		}
	}
	return leaders
}
