package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/bombs"
)

// inputKeySprintf is the pre-optimization formulation, kept here as the
// benchmark baseline for the strings.Builder version on the push path.
func inputKeySprintf(in bombs.Input) string {
	webKeys := make([]string, 0, len(in.Web))
	for k, v := range in.Web {
		webKeys = append(webKeys, k+"="+v)
	}
	sort.Strings(webKeys)
	return fmt.Sprintf("%q|%d|%d|%v", in.Argv1, in.TimeNow, in.Pid, webKeys)
}

func benchInputs() []bombs.Input {
	return []bombs.Input{
		{Argv1: "AAAAAAAA"},
		{Argv1: "fuzzing?", TimeNow: 1500000000, Pid: 4242},
		{Argv1: "x", Web: map[string]string{"http://bomb.example/flag": "7"}},
	}
}

func BenchmarkInputKey(b *testing.B) {
	ins := benchInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if inputKey(in) == "" {
				b.Fatal("empty key")
			}
		}
	}
}

func BenchmarkInputKeySprintf(b *testing.B) {
	ins := benchInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if inputKeySprintf(in) == "" {
				b.Fatal("empty key")
			}
		}
	}
}

// TestInputKeyInjective pins the properties the dedup map relies on: keys
// separate every facet of the input, including web entries whose raw
// concatenations would collide under a naive join.
func TestInputKeyInjective(t *testing.T) {
	inputs := []bombs.Input{
		{Argv1: "ab"},
		{Argv1: "a", TimeNow: 1},
		{Argv1: "a", Pid: 1},
		{Argv1: "a", TimeNow: 1, Pid: 1},
		{Argv1: "a", TimeNow: 11},
		{Argv1: "a", Web: map[string]string{"u": "v"}},
		{Argv1: "a", Web: map[string]string{"uv": ""}},
		{Argv1: "a", Web: map[string]string{"u": "v", "w": "x"}},
	}
	seen := make(map[string]int)
	for i, in := range inputs {
		k := inputKey(in)
		if j, dup := seen[k]; dup {
			t.Errorf("inputs %d and %d collide on %q", j, i, k)
		}
		seen[k] = i
	}
	// Map iteration order must not leak into the key.
	a := bombs.Input{Argv1: "a", Web: map[string]string{"u1": "v1", "u2": "v2", "u3": "v3"}}
	k := inputKey(a)
	for i := 0; i < 16; i++ {
		if inputKey(a) != k {
			t.Fatal("key depends on map iteration order")
		}
	}
}
