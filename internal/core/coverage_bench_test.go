package core_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// bench7Row is one bomb's queries-to-goal comparison: the generational
// baseline runs to its budget and sets the coverage bar (its final edge
// count); the coverage and coverage+fuzz runs then explore with exactly
// that edge count as their stop goal, so "queries" measures how much
// solver work each strategy needed to reach the same coverage.
type bench7Row struct {
	Bomb string `json:"bomb"`

	GoalEdges           int     `json:"goal_edges"`
	GenerationalQueries int     `json:"generational_queries"`
	GenerationalSeconds float64 `json:"generational_seconds"`

	CoverageQueries int     `json:"coverage_queries"`
	CoverageEdges   int     `json:"coverage_edges"`
	CoverageSeconds float64 `json:"coverage_seconds"`

	FuzzQueries   int     `json:"coverage_fuzz_queries"`
	FuzzEdges     int     `json:"coverage_fuzz_edges"`
	FuzzExecs     int     `json:"coverage_fuzz_execs"`
	FuzzPromoted  int     `json:"coverage_fuzz_seeds_promoted"`
	FuzzSeconds   float64 `json:"coverage_fuzz_seconds"`
	FuzzReachedAt string  `json:"coverage_fuzz_verdict"`
}

// bench7 is the trajectory file emitted by TestBench7Emit.
type bench7 struct {
	Rows []bench7Row `json:"rows"`

	TotalGenerationalQueries int `json:"total_generational_queries"`
	TotalCoverageQueries     int `json:"total_coverage_queries"`
	TotalFuzzQueries         int `json:"total_coverage_fuzz_queries"`
}

func bench7Run(t *testing.T, b *bombs.Bomb, caps core.Capabilities) *core.Outcome {
	t.Helper()
	en := core.New(b.Image(), b.BombAddr(), caps)
	return en.Explore(b.Benign)
}

// TestBench7Emit measures queries-to-goal for the generational baseline
// versus coverage and coverage+fuzz on the loop bomb and the two
// factorization stress bombs, writing BENCH_7.json. Gated on BENCH7_OUT
// so ordinary test runs never touch the working tree (make bench sets
// it). The acceptance claim: the hybrid strategy reaches the baseline's
// final coverage with no more solver queries.
func TestBench7Emit(t *testing.T) {
	out := os.Getenv("BENCH7_OUT")
	if out == "" {
		t.Skip("BENCH7_OUT not set")
	}
	var b7 bench7
	for _, name := range []string{"loop", "factor26", "factor29"} {
		b, ok := bombs.ByName(name)
		if !ok {
			t.Fatalf("no bomb %s", name)
		}
		base := tools.FastBudgets(tools.Reference()).Caps
		base.Workers = 1
		base.GrowArgv = true
		row := bench7Row{Bomb: name}

		// Baseline: generational to its budget; its final edge count is
		// the goal the guided strategies must reach.
		gen := base
		gen.Search = core.SearchGenerational
		start := time.Now()
		og := bench7Run(t, b, gen)
		row.GenerationalSeconds = time.Since(start).Seconds()
		row.GenerationalQueries = og.Stats.SolverQueries
		row.GoalEdges = og.Stats.CoveredEdges

		covCaps := base
		covCaps.Search = core.SearchCoverage
		covCaps.CoverGoalEdges = row.GoalEdges
		start = time.Now()
		oc := bench7Run(t, b, covCaps)
		row.CoverageSeconds = time.Since(start).Seconds()
		row.CoverageQueries = oc.Stats.SolverQueries
		row.CoverageEdges = oc.Stats.CoveredEdges

		fzCaps := covCaps
		fzCaps.Fuzz = true
		fzCaps.FuzzSeed = 42
		start = time.Now()
		of := bench7Run(t, b, fzCaps)
		row.FuzzSeconds = time.Since(start).Seconds()
		row.FuzzQueries = of.Stats.SolverQueries
		row.FuzzEdges = of.Stats.CoveredEdges
		row.FuzzExecs = of.Stats.FuzzExecs
		row.FuzzPromoted = of.Stats.FuzzSeedsPromoted
		row.FuzzReachedAt = of.Verdict.String()

		if row.FuzzEdges < row.GoalEdges && of.Verdict != core.VerdictSolved {
			t.Errorf("%s: coverage+fuzz stopped at %d edges, goal %d (verdict %v)",
				name, row.FuzzEdges, row.GoalEdges, of.Verdict)
		}
		b7.Rows = append(b7.Rows, row)
		b7.TotalGenerationalQueries += row.GenerationalQueries
		b7.TotalCoverageQueries += row.CoverageQueries
		b7.TotalFuzzQueries += row.FuzzQueries
	}

	if b7.TotalFuzzQueries > b7.TotalGenerationalQueries {
		t.Errorf("coverage+fuzz needed %d queries to reach the baseline's coverage; baseline used %d",
			b7.TotalFuzzQueries, b7.TotalGenerationalQueries)
	}

	data, err := json.MarshalIndent(b7, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_7 -> %s\n%s", out, data)
}
