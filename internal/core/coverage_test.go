package core_test

// Black-box tests for the coverage-guided search strategy and the hybrid
// mutation-fuzzing stage (package core_test: the tools package imports
// core, so profile-driven tests cannot live inside package core).

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

func TestParseSearchStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want core.SearchStrategy
	}{
		{"", core.SearchGenerational},
		{"generational", core.SearchGenerational},
		{"dfs", core.SearchDFS},
		{"coverage", core.SearchCoverage},
	}
	for _, c := range cases {
		got, err := core.ParseSearchStrategy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSearchStrategy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := core.ParseSearchStrategy("bogus"); err == nil {
		t.Error("ParseSearchStrategy accepted an unknown strategy")
	} else if !strings.Contains(err.Error(), "generational") {
		t.Errorf("error %q does not list the known strategies", err)
	}
	names := core.SearchStrategyNames()
	if len(names) != 3 {
		t.Fatalf("SearchStrategyNames = %v", names)
	}
	for _, n := range names {
		s, err := core.ParseSearchStrategy(n)
		if err != nil {
			t.Errorf("listed name %q does not parse: %v", n, err)
		}
		if s.String() != n {
			t.Errorf("round trip: %q -> %v -> %q", n, s, s.String())
		}
	}
}

// coverageCaps is the coverage-search capability set the determinism grid
// runs under: a fixed fuzz seed makes the mutation stream part of the
// reproducibility contract.
func coverageCaps(p tools.Profile, fuzz bool, workers int) core.Capabilities {
	caps := p.Caps
	caps.Search = core.SearchCoverage
	caps.Fuzz = fuzz
	caps.FuzzSeed = 42
	caps.Workers = workers
	return caps
}

// observable projects the worker-count-invariant slice of an outcome.
// SolverQueries, cache traffic and PeakFrontier are deliberately absent:
// they depend on how much duplicate work a batch performs, which varies
// with the batch width even though the merged schedule does not.
type observable struct {
	Verdict           core.Verdict
	Input             string
	Rounds            int
	CandidatesTried   int
	TaintedPerRound   []int
	Incidents         int
	Claims            int
	CoveredEdges      int
	CoveredBlocks     int
	NewEdgesPerRound  []int
	FuzzExecs         int
	FuzzSeedsPromoted int
}

func observe(out *core.Outcome) observable {
	return observable{
		Verdict:           out.Verdict,
		Input:             out.Input.Argv1,
		Rounds:            out.Rounds,
		CandidatesTried:   out.CandidatesTried,
		TaintedPerRound:   out.TaintedPerRound,
		Incidents:         len(out.Incidents),
		Claims:            len(out.Claims),
		CoveredEdges:      out.Stats.CoveredEdges,
		CoveredBlocks:     out.Stats.CoveredBlocks,
		NewEdgesPerRound:  out.Stats.NewEdgesPerRound,
		FuzzExecs:         out.Stats.FuzzExecs,
		FuzzSeedsPromoted: out.Stats.FuzzSeedsPromoted,
	}
}

// TestCoverageDeterministicAcrossWorkers asserts SearchCoverage — with
// and without the fuzz stage — produces byte-identical observable
// outcomes at every worker count. The generational frontier design
// (score only at fully-merged generation boundaries, breed on the engine
// thread) is exactly what makes this hold; the test is its gate.
func TestCoverageDeterministicAcrossWorkers(t *testing.T) {
	for _, fuzz := range []bool{false, true} {
		name := "plain"
		if fuzz {
			name = "fuzz"
		}
		for _, bname := range []string{"array1", "arglen", "stack", "loop"} {
			b, ok := bombs.ByName(bname)
			if !ok {
				t.Fatalf("no bomb %s", bname)
			}
			p := tools.FastBudgets(tools.Reference())
			t.Run(name+"/"+bname, func(t *testing.T) {
				t.Parallel()
				var base observable
				for i, workers := range []int{1, 4, 8} {
					en := core.New(b.Image(), b.BombAddr(), coverageCaps(p, fuzz, workers))
					got := observe(en.Explore(b.Benign))
					if i == 0 {
						base = got
						continue
					}
					if !reflect.DeepEqual(got, base) {
						t.Errorf("workers=%d diverges from workers=1:\n got %+v\nwant %+v",
							workers, got, base)
					}
				}
			})
		}
	}
}

// TestCoverageSolves sanity-checks that the coverage strategy still
// detonates bombs the generational reference solves under FastBudgets.
func TestCoverageSolves(t *testing.T) {
	for _, bname := range []string{"array1", "arglen", "stack", "jumptab"} {
		b, ok := bombs.ByName(bname)
		if !ok {
			t.Fatalf("no bomb %s", bname)
		}
		en := core.New(b.Image(), b.BombAddr(), coverageCaps(tools.FastBudgets(tools.Reference()), false, 0))
		out := en.Explore(b.Benign)
		if out.Verdict != core.VerdictSolved {
			t.Errorf("%s: verdict %v (rounds %d)", bname, out.Verdict, out.Rounds)
		}
		if out.Stats.CoveredEdges == 0 || out.Stats.CoveredBlocks == 0 {
			t.Errorf("%s: no coverage recorded: %+v", bname, out.Stats)
		}
		if len(out.Stats.NewEdgesPerRound) == 0 || out.Stats.NewEdgesPerRound[0] == 0 {
			t.Errorf("%s: first round contributed no new edges: %v",
				bname, out.Stats.NewEdgesPerRound)
		}
	}
}

// TestCoverGoalStops asserts the early-stop path: a tiny block-fraction
// goal is met by the seed run alone and the engine reports
// VerdictCoverGoal instead of exploring on.
func TestCoverGoalStops(t *testing.T) {
	b, ok := bombs.ByName("loop")
	if !ok {
		t.Fatal("loop missing")
	}
	caps := coverageCaps(tools.FastBudgets(tools.Reference()), false, 1)
	caps.CoverGoal = 0.01
	en := core.New(b.Image(), b.BombAddr(), caps)
	out := en.Explore(b.Benign)
	if out.Verdict != core.VerdictCoverGoal {
		t.Fatalf("verdict %v, want %v (detail %q)", out.Verdict, core.VerdictCoverGoal, out.CrashDetail)
	}
	if out.Rounds != 1 {
		t.Errorf("goal met after round 1 but engine ran %d rounds", out.Rounds)
	}
	if !strings.Contains(out.CrashDetail, "coverage goal reached") {
		t.Errorf("detail %q", out.CrashDetail)
	}

	// The edge-count form: a goal above anything reachable never fires.
	caps.CoverGoal = 0
	caps.CoverGoalEdges = 1 << 30
	en = core.New(b.Image(), b.BombAddr(), caps)
	out = en.Explore(b.Benign)
	if out.Verdict == core.VerdictCoverGoal {
		t.Errorf("unreachable edge goal reported reached")
	}
}

// TestFuzzPromotesSeeds asserts the breed rounds actually run and feed
// the frontier on a bomb whose input space mutation explores well.
func TestFuzzPromotesSeeds(t *testing.T) {
	b, ok := bombs.ByName("loop")
	if !ok {
		t.Fatal("loop missing")
	}
	caps := coverageCaps(tools.FastBudgets(tools.Reference()), true, 1)
	caps.GrowArgv = true
	en := core.New(b.Image(), b.BombAddr(), caps)
	out := en.Explore(b.Benign)
	if out.Stats.FuzzExecs == 0 {
		t.Fatalf("no fuzz executions ran (verdict %v, rounds %d)", out.Verdict, out.Rounds)
	}
	if out.Stats.FuzzSeedsPromoted == 0 {
		t.Errorf("fuzzing promoted no seeds (execs %d)", out.Stats.FuzzExecs)
	}
}
