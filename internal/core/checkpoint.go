package core

import (
	"sort"

	"repro/internal/cover"
	"repro/internal/gos"
	"repro/internal/target"
	"repro/internal/trace"
)

// The checkpointing scheduler (the "checkpoint" box of the paper's
// Figure 1 loop) lets a round replay its input from the deepest machine
// snapshot that provably precedes the input's divergence point, instead
// of re-executing from _start. The key soundness fact: a snapshot taken
// at trace position L during a run on input b is a valid start state for
// a run on input x exactly when no instruction in the shared trace
// prefix [0, L) observed any state that differs between b and x. The
// differing state is known precisely — the differing argv bytes, plus
// the time/pid/web facets when they changed — so validity reduces to a
// conservative scan of the recorded prefix (divergeIndex). Replay then
// restores the snapshot, patches the differing argv bytes, stitches a
// copy of the parent's trace prefix, and lets the machine run; by
// construction the continued run is byte-identical to a from-scratch
// run on x, which is what keeps checkpointed and non-checkpointed
// explorations' outcomes equal.

// CheckpointPolicy selects the engine's snapshot-replay behaviour.
type CheckpointPolicy int

// Checkpoint policies.
const (
	// CheckpointAuto (the zero value) resumes each candidate from the
	// deepest valid machine snapshot of its parent's run.
	CheckpointAuto CheckpointPolicy = iota
	// CheckpointOff re-executes every round from the program entry point
	// (the pre-checkpointing behaviour; outcomes are identical, only the
	// work profile changes).
	CheckpointOff
)

// Checkpoint-scheduler tuning.
const (
	// ckptCadenceDivisor and ckptMinCadence derive the snapshot interval
	// from the step budget; gos thins the set geometrically beyond its
	// retention bound, so short runs get fine-grained resume points and
	// long runs keep whole-run coverage.
	ckptCadenceDivisor = 4096
	ckptMinCadence     = 128
	// maxPlanTraceLen stops attaching replay plans to candidates whose
	// parent trace is huge: each pending plan keeps its parent trace
	// alive, and for pathological runs re-executing is cheaper than the
	// retained memory.
	maxPlanTraceLen = 50_000
	// maxPlanCkpts caps the checkpoints carried per plan, keeping the
	// deepest ones (largest instruction skip).
	maxPlanCkpts = 48
)

func snapshotCadence(stepBudget int) int {
	c := stepBudget / ckptCadenceDivisor
	if c < ckptMinCadence {
		c = ckptMinCadence
	}
	return c
}

// candidate is one frontier entry: the input to try plus, when
// checkpointing is on, the replay plan inherited from the round that
// generated it. flipEdge, set under SearchCoverage, is the branch edge
// the candidate's model was built to flip — the coverage scorer's
// signal (zero: no targeted flip, e.g. the seed or a fuzz mutant).
type candidate struct {
	in       target.Input
	plan     *replayPlan
	flipEdge cover.Edge
}

// checkpoint pairs a machine snapshot with the input whose run produced
// it; validity checks are always relative to that base input.
type checkpoint struct {
	snap *gos.Snapshot
	base target.Input
	// validUpTo is the divergence bound of this checkpoint against the
	// *current* plan's run: the plan's trace prefix [0, validUpTo) is
	// identical to the base run's. Re-derived at each generation.
	validUpTo int
}

// replayPlan is what a parent round hands each of its children: the
// parent's recorded trace (the shared prefix source), the parent's
// input, and every checkpoint — own or inherited — still valid against
// that trace. argv1Addr is the guest address of argv1's string bytes,
// which is layout-determined and identical across runs (argv0 is the
// constant program name).
type replayPlan struct {
	parent    target.Input
	trace     *trace.Trace
	argv1Addr uint64
	ckpts     []checkpoint // ascending TraceLen
}

// best returns the deepest checkpoint valid for replaying input next,
// or nil when every snapshot lies at or past the divergence point.
func (p *replayPlan) best(next target.Input) *checkpoint {
	if p == nil || len(p.ckpts) == 0 {
		return nil
	}
	d := divergeIndex(p.trace, diffInputs(p.parent, next, p.argv1Addr))
	for i := len(p.ckpts) - 1; i >= 0; i-- {
		ck := &p.ckpts[i]
		lim := min(d, ck.validUpTo)
		if ck.snap.TraceLen <= lim && ck.snap.TraceLen > 0 {
			return ck
		}
	}
	return nil
}

// inputDiff describes the guest-visible state that differs between two
// inputs: a byte range of argv1 plus per-facet flags.
type inputDiff struct {
	argvLo, argvHi uint64 // differing argv1 bytes, [lo, hi); empty if lo >= hi
	time, pid, web bool
	other          bool // stdin/files differ: no sharing possible
}

func (d inputDiff) empty() bool {
	return d.argvLo >= d.argvHi && !d.time && !d.pid && !d.web && !d.other
}

// diffInputs computes the state difference between a checkpoint's base
// input and a candidate input. argvAddr is the guest address of argv1.
// The argv range covers every differing byte including the NUL
// terminators, so length changes are part of the range.
func diffInputs(base, next target.Input, argvAddr uint64) inputDiff {
	var d inputDiff
	if base.Argv1 != next.Argv1 {
		a, b := base.Argv1, next.Argv1
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		// Compare over [0, maxLen] so the NUL of the shorter string is
		// included in the differing range.
		lo, hi := -1, -1
		for i := 0; i <= maxLen; i++ {
			var ca, cb byte
			if i < len(a) {
				ca = a[i]
			}
			if i < len(b) {
				cb = b[i]
			}
			if ca != cb {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		if lo >= 0 {
			d.argvLo = argvAddr + uint64(lo)
			d.argvHi = argvAddr + uint64(hi) + 1
		}
	}
	d.time = base.TimeNow != next.TimeNow
	d.pid = base.Pid != next.Pid
	d.web = !webEqual(base.Web, next.Web)
	// File and env changes invalidate the whole trace (stat results, fd
	// contents and getenv data can flow anywhere): no snapshot sharing.
	d.other = !filesEqual(base.Files, next.Files) || !webEqual(base.Env, next.Env)
	return d
}

func webEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func filesEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || string(w) != string(v) {
			return false
		}
	}
	return true
}

// divergeIndex returns the index of the first trace entry that may
// observe (read or write) any state in the diff, or tr.Len() when the
// whole trace is diff-free. Entries at or past the returned index may
// depend on the differing input; everything before it is guaranteed
// identical across both runs.
func divergeIndex(tr *trace.Trace, d inputDiff) int {
	if d.other {
		return 0
	}
	if d.empty() {
		return tr.Len()
	}
	for i := range tr.Entries {
		if entryTouches(&tr.Entries[i], d) {
			return i
		}
	}
	return tr.Len()
}

// overlaps reports whether the n-byte guest range at addr intersects the
// diff's argv byte range.
func (d inputDiff) overlaps(addr, n uint64) bool {
	return d.argvLo < d.argvHi && addr < d.argvHi && addr+n > d.argvLo
}

// entryTouches conservatively reports whether one executed instruction
// could observe the diff. Memory accesses are widened to 8 bytes (the
// largest access size); syscall path strings are modelled from the
// recorded path length (they are read byte-wise from guest memory
// without a dedicated trace entry).
func entryTouches(e *trace.Entry, d inputDiff) bool {
	if s := e.Sys; s != nil {
		switch s.Num {
		case trace.SysTime:
			if d.time {
				return true
			}
		case trace.SysGetpid:
			if d.pid {
				return true
			}
		case trace.SysWebGet:
			if d.web {
				return true
			}
		}
		if d.argvLo < d.argvHi {
			if len(s.Data) > 0 && d.overlaps(s.Addr, uint64(len(s.Data))) {
				return true
			}
			if s.Num == trace.SysPipe && d.overlaps(s.Addr, 16) {
				return true
			}
			if s.Path != "" && d.overlaps(s.Args[0], uint64(len(s.Path))+1) {
				return true
			}
		}
		return false
	}
	if e.Exc != nil && d.argvLo < d.argvHi {
		// Handled exceptions push a resume address at an SP the trace does
		// not record; give up sharing past them rather than model it.
		return true
	}
	// Widen every recorded memory access to 8 bytes; entries without a
	// memory operand carry Addr == 0, which can never reach the argv
	// block's high addresses.
	return d.overlaps(e.Addr, 8)
}

// makePlan assembles the replay plan a finished round publishes to its
// children: the round's own snapshots (base = this round's input, valid
// over the whole trace) plus inherited checkpoints still valid against
// this round's trace, deepest-capped.
func makePlan(cur target.Input, res *gos.Result, snaps []*gos.Snapshot, inherited *replayPlan) *replayPlan {
	if res.Trace == nil || res.Trace.Len() > maxPlanTraceLen {
		return nil
	}
	if len(res.Argv) < 2 {
		return nil // no argv1: nothing to patch, but also nothing to key on
	}
	p := &replayPlan{parent: cur, trace: res.Trace, argv1Addr: res.Argv[1].Addr}
	if inherited != nil {
		for i := range inherited.ckpts {
			ck := inherited.ckpts[i]
			// Re-derive the validity bound against this run's trace: the
			// inherited bound still applies (this trace's prefix under it is
			// the ancestor's), further limited by where this run's prefix
			// stopped matching the checkpoint's base.
			v := divergeIndex(res.Trace, diffInputs(ck.base, cur, p.argv1Addr))
			if v > ck.validUpTo {
				v = ck.validUpTo
			}
			if ck.snap.TraceLen <= v {
				p.ckpts = append(p.ckpts, checkpoint{snap: ck.snap, base: ck.base, validUpTo: v})
			}
		}
	}
	for _, s := range snaps {
		if s.TraceLen > res.Trace.Len() {
			continue
		}
		p.ckpts = append(p.ckpts, checkpoint{snap: s, base: cur, validUpTo: res.Trace.Len()})
	}
	// Inherited checkpoints and own snapshots can interleave in depth;
	// keep the list ascending so best() finds the deepest valid one.
	sort.Slice(p.ckpts, func(i, j int) bool {
		return p.ckpts[i].snap.TraceLen < p.ckpts[j].snap.TraceLen
	})
	if len(p.ckpts) > maxPlanCkpts {
		// Keep the deepest ones (largest skip) but always retain the
		// shallowest: it is typically the pre-input snapshot — the only
		// valid resume point for siblings that mutate bytes read early.
		kept := append([]checkpoint{p.ckpts[0]}, p.ckpts[len(p.ckpts)-maxPlanCkpts+1:]...)
		p.ckpts = kept
	}
	if len(p.ckpts) == 0 {
		return nil
	}
	return p
}
