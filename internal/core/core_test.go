package core

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/solver"
	"repro/internal/symexec"
)

// referenceCaps is the full-capability engine (the extension column).
func referenceCaps() Capabilities {
	return Capabilities{
		Name: "reference",
		Sym: symexec.Options{
			Spec: symexec.Spec{
				ArgvNUL: true, ArgvPad: 16,
				Time: symexec.SourceDeclared, Pid: symexec.SourceDeclared, Web: true,
				Files: symexec.ChanShadow, Pipes: symexec.ChanShadow, Kv: symexec.ChanShadow,
				TrackThreads: true, TrackProcs: true,
			},
			Mem:           symexec.MemFull,
			Jump:          symexec.JumpEnum,
			Exc:           symexec.ExcTrace,
			ContextualFS:  true,
			ContextualSys: true,
			ModelDivFault: true,
		},
		Search:          SearchDFS,
		FP:              solver.FPSearch,
		MaxArgvLen:      24,
		SolverTimeout:   3 * time.Second,
		SolverConflicts: 60_000,
		TotalBudget:     45 * time.Second,
		GrowArgv:        true,
		WebSyscall:      true,
	}
}

// crack runs the reference engine on a bomb and returns the outcome.
func crack(t *testing.T, name string, caps Capabilities) *Outcome {
	t.Helper()
	b, ok := bombs.ByName(name)
	if !ok {
		t.Fatalf("no bomb %s", name)
	}
	en := New(b.Image(), b.BombAddr(), caps)
	return en.Explore(b.Benign)
}

// verify re-runs the bomb on the engine's input and checks detonation —
// the paper's replay methodology.
func verify(t *testing.T, name string, out *Outcome) {
	t.Helper()
	b, _ := bombs.ByName(name)
	res, err := b.Run(out.Input, bombs.WithMaxSteps(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if !bombs.Triggered(res) {
		t.Errorf("%s: engine input %+v does not detonate on replay", name, out.Input)
	}
}

func TestReferenceSolvesCoreBombs(t *testing.T) {
	// The bombs a full-capability engine must crack, spanning every
	// accuracy challenge.
	for _, name := range []string{
		"fig3_plain", "fig3_printf", // external call (trivial guard)
		"arglen",   // argv length reasoning
		"stack",    // push/pop propagation
		"array1",   // one-level symbolic array
		"array2",   // two-level symbolic array
		"jump",     // affine symbolic jump
		"jumptab",  // jump table
		"time",     // declared environment input
		"getpid",   // declared pid
		"filename", // contextual file name
		"exception",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			out := crack(t, name, referenceCaps())
			if out.Verdict != VerdictSolved {
				t.Fatalf("verdict = %v (rounds %d, incidents %v, detail %s)",
					out.Verdict, out.Rounds, out.Incidents, out.CrashDetail)
			}
			verify(t, name, out)
		})
	}
}

func TestReferenceSolvesCovertChannels(t *testing.T) {
	for _, name := range []string{"file", "kvstore", "thread", "fork", "fileexc", "sysname", "web"} {
		name := name
		t.Run(name, func(t *testing.T) {
			out := crack(t, name, referenceCaps())
			if out.Verdict != VerdictSolved {
				t.Fatalf("verdict = %v (rounds %d, incidents %v)",
					out.Verdict, out.Rounds, out.Incidents)
			}
			verify(t, name, out)
		})
	}
}

func TestReferenceSolvesFloatBombs(t *testing.T) {
	for _, name := range []string{"float", "sin"} {
		name := name
		t.Run(name, func(t *testing.T) {
			caps := referenceCaps()
			caps.FPIterations = 200_000
			caps.MaxRounds = 250
			caps.TotalBudget = 120 * time.Second
			out := crack(t, name, caps)
			if out.Verdict != VerdictSolved {
				t.Fatalf("verdict = %v (rounds %d)", out.Verdict, out.Rounds)
			}
			verify(t, name, out)
		})
	}
}

func TestNegativeBombNotClaimed(t *testing.T) {
	// The reference engine must NOT claim the unreachable pow bomb.
	out := crack(t, "negpow", referenceCaps())
	if out.Verdict == VerdictSolved {
		t.Fatalf("reference engine claims the unreachable bomb with %+v", out.Input)
	}
}

func TestCryptoBombsExhaustBudget(t *testing.T) {
	caps := referenceCaps()
	caps.SolverConflicts = 5_000 // keep the test fast
	caps.SolverTimeout = time.Second
	caps.TotalBudget = 10 * time.Second
	caps.MaxRounds = 4
	for _, name := range []string{"sha1", "aes"} {
		out := crack(t, name, caps)
		if out.Verdict == VerdictSolved {
			t.Errorf("%s: crypto bomb should not be solvable", name)
		}
		if out.Verdict != VerdictBudget && !out.SolverExhausted {
			t.Logf("%s: verdict %v (acceptable: unsat within budget)", name, out.Verdict)
		}
	}
}

func TestBudgetVerdicts(t *testing.T) {
	caps := referenceCaps()
	caps.MaxRounds = 1
	out := crack(t, "arglen", caps)
	// One round cannot reach length 6; with work pending this is E.
	if out.Verdict == VerdictSolved {
		t.Fatal("arglen cannot be solved in one round")
	}
}

func TestReconstructTruncation(t *testing.T) {
	caps := referenceCaps()
	caps.GrowArgv = false
	model := map[string]uint64{
		"argv1[0]": 'a', "argv1[1]": 'b', "argv1[2]": 0,
	}
	seed := map[string]uint64{"argv1[0]": 'a', "argv1[1]": 0}
	cur := bombs.Input{Argv1: "a"}
	next, realized, truncated := reconstruct(model, seed, cur, caps)
	if !truncated {
		t.Error("expected truncation without GrowArgv")
	}
	if realized {
		t.Errorf("truncated input %q should equal the current one", next.Argv1)
	}
}

func TestReconstructGrowth(t *testing.T) {
	caps := referenceCaps()
	model := map[string]uint64{
		"argv1[0]": '4', "argv1[1]": '2', "argv1[2]": 0,
	}
	seed := map[string]uint64{"argv1[0]": '1', "argv1[1]": 0}
	next, realized, truncated := reconstruct(model, seed, bombs.Input{Argv1: "1"}, caps)
	if truncated || !realized || next.Argv1 != "42" {
		t.Errorf("got %q realized=%v truncated=%v", next.Argv1, realized, truncated)
	}
}

func TestReconstructEnvFacets(t *testing.T) {
	caps := referenceCaps()
	model := map[string]uint64{
		"time":             1735689600,
		"pid":              4960,
		"web:http://u!ret": 4,
		"web:http://u[0]":  'o',
		"web:http://u[1]":  'k',
		"sim!kv:slot[0]#0": 99, // must be ignored
		"env!time":         7,  // must be ignored
	}
	next, realized, _ := reconstruct(model, nil, bombs.Input{Argv1: "x"}, caps)
	if !realized {
		t.Fatal("environment changes should realize")
	}
	if next.TimeNow != 1735689600 || next.Pid != 4960 {
		t.Errorf("time/pid = %d/%d", next.TimeNow, next.Pid)
	}
	if got := next.Web["http://u"]; len(got) != 4 || got[:2] != "ok" {
		t.Errorf("web body = %q", got)
	}
}

func TestClaimsOnSimulatedChannel(t *testing.T) {
	caps := referenceCaps()
	caps.Sym.Spec.Kv = symexec.ChanUnconstrained
	out := crack(t, "kvstore", caps)
	if out.Verdict == VerdictSolved {
		t.Fatal("kv bomb must not be solvable through an unconstrained channel")
	}
	var sysClaim bool
	for _, c := range out.Claims {
		if c.Syscall {
			sysClaim = true
		}
	}
	if !sysClaim {
		t.Errorf("expected a syscall-simulation claim, got %+v", out.Claims)
	}
}

func TestWebCrashWithoutSupport(t *testing.T) {
	caps := referenceCaps()
	caps.WebSyscall = false
	out := crack(t, "web", caps)
	if out.Verdict != VerdictCrashed {
		t.Errorf("verdict = %v, want crashed", out.Verdict)
	}
}

func TestInputKeyStability(t *testing.T) {
	a := bombs.Input{Argv1: "x", Web: map[string]string{"a": "1", "b": "2"}}
	b := bombs.Input{Argv1: "x", Web: map[string]string{"b": "2", "a": "1"}}
	if inputKey(a) != inputKey(b) {
		t.Error("input keys must be order independent")
	}
}
