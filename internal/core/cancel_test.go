package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bombs"
)

// slowCaps returns reference capabilities tuned so exploration of a
// crypto bomb runs for a long time: the conflict-bounded SAT queries on
// sha1 take seconds each and the round budget allows many of them.
func slowCaps() Capabilities {
	caps := referenceCaps()
	caps.TotalBudget = 10 * time.Minute
	caps.SolverTimeout = 10 * time.Minute
	caps.SolverConflicts = 50_000_000
	caps.MaxRounds = 1000
	return caps
}

// TestExploreContextCancel cancels a long-budget exploration shortly
// after it starts and requires the engine to observe ctx.Done() promptly
// — well before any of its own budgets — and report VerdictCancelled.
func TestExploreContextCancel(t *testing.T) {
	b, ok := bombs.ByName("sha1")
	if !ok {
		t.Fatal("no bomb sha1")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	en := New(b.Image(), b.BombAddr(), slowCaps())
	start := time.Now()
	out := en.ExploreContext(ctx, b.Benign)
	elapsed := time.Since(start)
	if out.Verdict != VerdictCancelled {
		t.Fatalf("verdict = %s, want cancelled (detail %q)", out.Verdict, out.CrashDetail)
	}
	if !strings.Contains(out.CrashDetail, "cancelled") {
		t.Errorf("detail = %q, want a cancellation message", out.CrashDetail)
	}
	// The binding budgets are minutes; observing the cancel within a few
	// seconds means it interrupted a round, not a budget check.
	if elapsed > 30*time.Second {
		t.Errorf("cancel observed after %v; want prompt interruption", elapsed)
	}
}

// TestExploreContextDeadline maps a context deadline to the wall-clock
// budget verdict (paper outcome E), with its own detail string.
func TestExploreContextDeadline(t *testing.T) {
	b, ok := bombs.ByName("sha1")
	if !ok {
		t.Fatal("no bomb sha1")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	en := New(b.Image(), b.BombAddr(), slowCaps())
	out := en.ExploreContext(ctx, b.Benign)
	if out.Verdict != VerdictBudget {
		t.Fatalf("verdict = %s, want budget-exhausted (detail %q)", out.Verdict, out.CrashDetail)
	}
	if !strings.Contains(out.CrashDetail, "context deadline") {
		t.Errorf("detail = %q, want the context-deadline message", out.CrashDetail)
	}
}

// TestExploreContextBackgroundIdentical requires ExploreContext with a
// background context to reproduce Explore exactly (the determinism
// guarantee the serving layer relies on).
func TestExploreContextBackgroundIdentical(t *testing.T) {
	for _, name := range []string{"jump", "arglen", "stack"} {
		b, ok := bombs.ByName(name)
		if !ok {
			t.Fatalf("no bomb %s", name)
		}
		direct := New(b.Image(), b.BombAddr(), referenceCaps()).Explore(b.Benign)
		viaCtx := New(b.Image(), b.BombAddr(), referenceCaps()).
			ExploreContext(context.Background(), b.Benign)
		if direct.Verdict != viaCtx.Verdict || direct.Rounds != viaCtx.Rounds ||
			direct.Input.Argv1 != viaCtx.Input.Argv1 ||
			direct.Input.TimeNow != viaCtx.Input.TimeNow ||
			direct.Input.Pid != viaCtx.Input.Pid {
			t.Errorf("%s: Explore %s/%d/%+v, ExploreContext %s/%d/%+v",
				name, direct.Verdict, direct.Rounds, direct.Input,
				viaCtx.Verdict, viaCtx.Rounds, viaCtx.Input)
		}
	}
}
