package core_test

// Black-box tests for the parallel scheduler (package core_test: the
// tools package imports core, so profile-driven tests cannot live inside
// package core).

import (
	"sync"
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/sym"
	"repro/internal/tools"
)

// exploreWith runs one bomb under a profile with the given worker count.
func exploreWith(b *bombs.Bomb, p tools.Profile, workers int) *core.Outcome {
	caps := p.Caps
	caps.Workers = workers
	en := core.New(b.Image(), b.BombAddr(), caps)
	return en.Explore(b.Benign)
}

// TestExploreDeterministicAcrossWorkers asserts the paper-facing verdict
// is independent of the worker count: every Table II bomb, under every
// Table II tool profile, must land on the same Verdict with Workers=1
// (the historical sequential loop) and Workers=8. FastBudgets keeps the
// grid tractable; budget-direction outcomes are unaffected.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	for _, p := range tools.TableII() {
		p := tools.FastBudgets(p)
		for _, b := range bombs.TableII() {
			b := b
			t.Run(p.Name()+"/"+b.Name, func(t *testing.T) {
				t.Parallel()
				seq := exploreWith(b, p, 1)
				par := exploreWith(b, p, 8)
				if seq.Verdict != par.Verdict {
					t.Errorf("workers=1 verdict %v, workers=8 verdict %v",
						seq.Verdict, par.Verdict)
				}
				if seq.Verdict == core.VerdictSolved && par.Input.Argv1 != seq.Input.Argv1 {
					t.Errorf("solving inputs diverge: %q vs %q",
						seq.Input.Argv1, par.Input.Argv1)
				}
			})
		}
	}
}

// TestExploreRepeatableAtFixedWorkerCount asserts a fixed worker count
// reproduces not just the verdict but the whole observable outcome.
func TestExploreRepeatableAtFixedWorkerCount(t *testing.T) {
	p := tools.FastBudgets(tools.Angr())
	b, ok := bombs.ByName("array1")
	if !ok {
		t.Fatal("array1 missing")
	}
	for _, workers := range []int{1, 4} {
		a := exploreWith(b, p, workers)
		c := exploreWith(b, p, workers)
		if a.Verdict != c.Verdict || a.Rounds != c.Rounds ||
			a.CandidatesTried != c.CandidatesTried ||
			len(a.Incidents) != len(c.Incidents) {
			t.Errorf("workers=%d: outcomes differ: %+v vs %+v", workers, a, c)
		}
	}
}

// TestExploreParallelSolvesUnderRace exercises the concurrent scheduler
// with several engines running at once; `go test -race` makes this the
// data-race gate for the worker pool and the shared solver cache.
func TestExploreParallelSolvesUnderRace(t *testing.T) {
	var wg sync.WaitGroup
	// jump is deliberately absent: under FastBudgets the reference DFS
	// profile exhausts the 12-round cap before reaching its detonation at
	// every worker count, so it cannot assert VerdictSolved here.
	for _, name := range []string{"array1", "arglen", "stack", "jumptab"} {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, ok := bombs.ByName(name)
			if !ok {
				t.Errorf("no bomb %s", name)
				return
			}
			out := exploreWith(b, tools.FastBudgets(tools.Reference()), 8)
			if out.Verdict != core.VerdictSolved {
				t.Errorf("%s: verdict %v (rounds %d)", name, out.Verdict, out.Rounds)
			}
		}()
	}
	wg.Wait()
}

// TestStatsPopulated checks the new Outcome.Stats block.
func TestStatsPopulated(t *testing.T) {
	b, _ := bombs.ByName("array1")
	out := exploreWith(b, tools.FastBudgets(tools.Angr()), 4)
	s := out.Stats
	if s.Rounds != out.Rounds {
		t.Errorf("Stats.Rounds %d != Outcome.Rounds %d", s.Rounds, out.Rounds)
	}
	if s.SolverQueries == 0 {
		t.Error("expected solver queries")
	}
	if s.Workers != 4 {
		t.Errorf("Workers = %d", s.Workers)
	}
	if s.WallTime <= 0 {
		t.Error("missing wall time")
	}
	if s.CacheHits+s.CacheMisses == 0 {
		t.Error("cache saw no lookups")
	}
}

// TestArenaConcurrentInterning hammers the sym hash-consing arena from
// the engine's worker count of goroutines, all building the same terms
// plus per-goroutine private ones. Every goroutine must receive the very
// same pointer for a shared term (whoever interns first wins, everyone
// else observes it), which is what keeps parallel rounds' expressions
// mergeable by pointer. Run under `make race` to check the sharded table
// for data races.
func TestArenaConcurrentInterning(t *testing.T) {
	workers := core.Capabilities{}.ResolvedWorkers()
	if workers < 4 {
		workers = 4
	}
	const rounds = 2000

	results := make([][]sym.Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]sym.Expr, rounds)
			for i := 0; i < rounds; i++ {
				// Shared across goroutines: same structure every round.
				x := sym.NewVar("shared", 64)
				e := sym.NewBin(sym.OpAdd,
					sym.NewBin(sym.OpMul, x, sym.NewConst(uint64(i%64)+2, 64)),
					sym.NewConst(uint64(i%17)+1, 64))
				out[i] = e
				// Private to this goroutine: must not collide.
				_ = sym.NewBin(sym.OpEq, sym.NewVar("w", 8), sym.NewConst(uint64(w), 8))
			}
			results[w] = out
		}()
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("goroutine %d round %d: interning returned a different pointer", w, i)
			}
		}
	}
}
