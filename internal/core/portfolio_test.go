package core

import (
	"strings"
	"testing"

	"repro/internal/warmstore"
)

// portfolioCaps is the reference tool racing its negation queries across
// the incremental session and diversified fresh workers.
func portfolioCaps() Capabilities {
	caps := referenceCaps()
	caps.SolverMode = SolverPortfolio
	caps.Workers = 1
	return caps
}

// TestPortfolioSolvesCoreBombs cracks a representative bomb slice in
// portfolio mode and replays each solving input; which worker produced
// the model is scheduling-dependent, but the input must still detonate.
func TestPortfolioSolvesCoreBombs(t *testing.T) {
	for _, name := range []string{
		"fig3_plain", "arglen", "stack", "array1", "jumptab", "time",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			out := crack(t, name, portfolioCaps())
			if out.Verdict != VerdictSolved {
				t.Fatalf("verdict = %v (rounds %d, incidents %v, detail %s)",
					out.Verdict, out.Rounds, out.Incidents, out.CrashDetail)
			}
			verify(t, name, out)
		})
	}
}

// TestPortfolioCracksStressBomb cracks a stress-category bomb — a
// factoring guard whose difficulty lands on the SAT search — and checks
// the racing workers actually exchanged clauses while doing it.
func TestPortfolioCracksStressBomb(t *testing.T) {
	out := crack(t, "factor26", portfolioCaps())
	if out.Verdict != VerdictSolved {
		t.Fatalf("verdict = %v (incidents %v, detail %s)",
			out.Verdict, out.Incidents, out.CrashDetail)
	}
	verify(t, "factor26", out)
	if out.Stats.PortfolioClausesShared == 0 {
		t.Error("no clauses shared while cracking the factoring guard")
	}
}

// TestPortfolioStatsPopulated checks the portfolio counters flow into
// Outcome.Stats under SolverPortfolio — and stay zero elsewhere.
func TestPortfolioStatsPopulated(t *testing.T) {
	out := crack(t, "array1", portfolioCaps())
	s := out.Stats
	if s.SolverSessions == 0 {
		t.Error("no portfolio contexts opened under SolverPortfolio")
	}
	if s.PortfolioRaces == 0 {
		t.Error("no races recorded")
	}
	if s.PortfolioRaces > s.SolverQueries {
		t.Errorf("races %d exceed solver queries %d", s.PortfolioRaces, s.SolverQueries)
	}

	fresh := crack(t, "array1", referenceCaps())
	fs := fresh.Stats
	if fs.PortfolioRaces != 0 || fs.PortfolioClausesShared != 0 || fs.WarmQueryHits != 0 {
		t.Errorf("fresh mode reported portfolio work: %+v", fs)
	}
	inc := crack(t, "array1", incrementalCaps())
	if is := inc.Stats; is.PortfolioRaces != 0 || is.WarmQueryHits != 0 {
		t.Errorf("incremental mode reported portfolio work: %+v", is)
	}
}

// TestPortfolioWarmStartRoundTrip explores once against an empty
// warm-start store, reopens the store as a second process would, and
// checks the warm engine reaches the same verdict while answering
// queries from disk — the hits observable through Outcome.Stats.
func TestPortfolioWarmStartRoundTrip(t *testing.T) {
	dir := t.TempDir()

	w1, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	caps := portfolioCaps()
	caps.Warm = w1
	cold := crack(t, "array1", caps)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if cold.Verdict != VerdictSolved {
		t.Fatalf("cold verdict = %v", cold.Verdict)
	}
	if cold.Stats.WarmQueryHits != 0 {
		t.Fatalf("cold run hit its own empty store: %+v", cold.Stats)
	}

	w2, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	caps.Warm = w2
	warm := crack(t, "array1", caps)
	if warm.Verdict != VerdictSolved {
		t.Fatalf("warm verdict = %v", warm.Verdict)
	}
	if warm.Stats.WarmQueryHits == 0 {
		t.Fatalf("warm run never hit the store: %+v", warm.Stats)
	}
	if warm.Stats.PortfolioRaces >= cold.Stats.PortfolioRaces {
		t.Errorf("warm run raced as much as cold: cold %d, warm %d",
			cold.Stats.PortfolioRaces, warm.Stats.PortfolioRaces)
	}
	verify(t, "array1", warm)
}

// TestParseSolverMode covers the flag-value mapping and its error text.
func TestParseSolverMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SolverMode
	}{
		{"", SolverFresh}, {"fresh", SolverFresh},
		{"incremental", SolverIncremental}, {"portfolio", SolverPortfolio},
	} {
		got, err := ParseSolverMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSolverMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("SolverMode(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseSolverMode("z3"); err == nil {
		t.Fatal("ParseSolverMode accepted an unknown mode")
	} else {
		for _, name := range SolverModeNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not list mode %q", err, name)
			}
		}
	}
}
