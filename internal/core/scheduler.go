package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/bombs"
	"repro/internal/gos"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/symexec"
)

// The parallel scheduler runs exploration rounds in synchronous batches.
// Each batch pops up to Workers candidates from the frontier in the
// search strategy's order, runs every round on its own goroutine against
// a frozen view of the dedup maps, and then replays the rounds' recorded
// effects strictly in dispatch order on the single-threaded engine state.
//
// Replay order is what keeps verdicts deterministic: a terminal round
// (solved or crashed) cuts off every later-dispatched round of its batch,
// so the winning round is the same one a sequential engine would have
// reached first — first success wins, with the round index as the
// tiebreak, never goroutine timing. With Workers=1 each batch holds one
// round and the engine's observable behaviour (outcome fields, incident
// order, round numbering, solver random seeds) is identical to the
// historical sequential loop.
//
// Because workers cannot see flips resolved by rounds merged earlier in
// the same batch, they may re-solve a query or re-derive a push; replay
// gates every flip-derived event on the authoritative seenFlip map, so
// those duplicates collapse and the merged state matches the sequential
// schedule. The duplicate solver work itself is largely absorbed by the
// engine's query cache.

// evKind tags one recorded engine effect.
type evKind int

const (
	evFault evKind = iota + 1 // concrete run ended in an unhandled fault
	evIncident
	evTainted
	evSimUsed
	evSolverExhausted
	evClaim
	evMark // mark a flip explored
	evPush
	evTerminal
)

// event is one engine effect recorded by a worker, replayed by the
// scheduler. Events carrying a flip key are dropped wholesale when the
// flip was already resolved by an earlier round.
type event struct {
	kind     evKind
	flip     string
	incident symexec.Incident
	claim    Claim
	input    bombs.Input // push payload, fault input, or solving input
	plan     *replayPlan // replay plan attached to a push
	tainted  int
	verdict  Verdict
	detail   string
}

// roundRec is the full record of one exploration round.
type roundRec struct {
	idx     int // 1-based round number, assigned at dispatch
	events  []event
	queries int // solver queries issued (stats)

	// Checkpoint work profile of this round (stats; deterministic for a
	// fixed schedule, identical across worker counts).
	ckptsTaken   int
	resumed      bool
	skippedSteps int64
	cowFaults    uint64
	prefixReused int

	// Incremental-session work profile of this round (stats; zero under
	// SolverFresh).
	sessions        int
	incChecks       int
	learnedRetained int64
	guardLits       int

	// Portfolio work profile of this round (stats; zero outside
	// SolverPortfolio).
	pfRaces    int
	pfShared   int64
	pfImported int64
	warmHits   int
	warmSeeded int
}

func (r *roundRec) emit(ev event) { r.events = append(r.events, ev) }

// roundSolver is the per-round incremental query context negate drives
// when a persistent mode is selected: solver.Session under
// SolverIncremental, solver.Portfolio under SolverPortfolio. Both keep
// the same prefix discipline — Assert joins the path condition,
// CheckSeeded decides prefix ∧ negated.
type roundSolver interface {
	Assert(constraints ...sym.Expr)
	CheckSeeded(negated sym.Expr, randSeed int64) (solver.Result, error)
}

// popBatch removes up to n candidates from the frontier in strategy
// order.
func (en *Engine) popBatch(n int) []candidate {
	if f := en.frontierLen(); n > f {
		n = f
	}
	batch := make([]candidate, 0, n)
	for i := 0; i < n; i++ {
		if en.caps.Search == SearchDFS {
			last := len(en.queue) - 1
			batch = append(batch, en.queue[last])
			en.queue = en.queue[:last]
		} else {
			batch = append(batch, en.queue[en.head])
			en.head++
		}
	}
	en.compact()
	return batch
}

// compact releases the consumed prefix of the BFS queue once it dominates
// the backing array, keeping the pop O(1) without leaking the array.
func (en *Engine) compact() {
	if en.head > 32 && en.head*2 >= len(en.queue) {
		en.queue = append(en.queue[:0:0], en.queue[en.head:]...)
		en.head = 0
	}
}

func (en *Engine) frontierLen() int { return len(en.queue) - en.head }

// runBatch executes the batch's rounds, in parallel when more than one
// worker is available. Workers only read engine state (image, caps,
// deadline, the frozen dedup maps) and the mutex-guarded solver cache.
func (en *Engine) runBatch(batch []candidate) []*roundRec {
	base := en.out.Rounds
	recs := make([]*roundRec, len(batch))
	if len(batch) == 1 {
		recs[0] = en.runRound(batch[0], base+1)
		return recs
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = en.runRound(batch[i], base+i+1)
		}(i)
	}
	wg.Wait()
	return recs
}

// applyRound replays one round's events onto the engine state. It returns
// true when the round is terminal (exploration must stop).
func (en *Engine) applyRound(rec *roundRec) bool {
	en.out.Rounds++
	en.out.CandidatesTried++
	en.stats.SolverQueries += rec.queries
	en.stats.CheckpointsTaken += rec.ckptsTaken
	en.stats.InstructionsSkipped += rec.skippedSteps
	en.stats.PagesCOWFaulted += rec.cowFaults
	en.stats.PrefixConstraintsReused += rec.prefixReused
	if rec.resumed {
		en.stats.CheckpointResumes++
	}
	en.stats.SolverSessions += rec.sessions
	en.stats.IncrementalChecks += rec.incChecks
	en.stats.LearnedClausesRetained += rec.learnedRetained
	en.stats.GuardLiterals += rec.guardLits
	en.stats.PortfolioRaces += rec.pfRaces
	en.stats.PortfolioClausesShared += rec.pfShared
	en.stats.PortfolioClausesImported += rec.pfImported
	en.stats.WarmQueryHits += rec.warmHits
	en.stats.WarmClausesSeeded += rec.warmSeeded
	var gated map[string]bool
	for i := range rec.events {
		ev := &rec.events[i]
		if ev.flip != "" {
			// Gate the whole flip on the state seen at its first event, so
			// a mark inside the flip does not suppress its own push.
			g, ok := gated[ev.flip]
			if !ok {
				g = en.seenFlip[ev.flip]
				if gated == nil {
					gated = make(map[string]bool)
				}
				gated[ev.flip] = g
			}
			if g {
				continue
			}
		}
		switch ev.kind {
		case evFault:
			en.out.FaultInputs = append(en.out.FaultInputs, ev.input)
		case evIncident:
			en.mergeIncidents([]symexec.Incident{ev.incident})
		case evTainted:
			en.out.TaintedPerRound = append(en.out.TaintedPerRound, ev.tainted)
		case evSimUsed:
			en.out.SimulationUsed = true
		case evSolverExhausted:
			en.out.SolverExhausted = true
		case evClaim:
			en.out.Claims = append(en.out.Claims, ev.claim)
		case evMark:
			en.seenFlip[ev.flip] = true
		case evPush:
			en.push(candidate{in: ev.input, plan: ev.plan})
		case evTerminal:
			en.out.Verdict = ev.verdict
			en.out.CrashDetail = ev.detail
			if ev.verdict == VerdictSolved {
				en.out.Input = ev.input
			}
			return true
		}
	}
	return false
}

// runRound executes one concrete run plus its symbolic pass and negation
// solving, recording effects instead of applying them. It must not write
// any engine state: it may run concurrently with other rounds of the same
// batch (snapshots in the candidate's plan are quiescent and safe to
// resume from several workers at once).
func (en *Engine) runRound(c candidate, idx int) *roundRec {
	in := c.in
	rec := &roundRec{idx: idx}
	if en.ctx.Err() != nil {
		// Cancelled while the batch was in flight: skip the concrete run;
		// the scheduler's context check ends exploration after replay.
		return rec
	}

	ckptOn := en.caps.Checkpoint == CheckpointAuto
	cfg := in.Config()
	cfg.Record = true
	cfg.MaxSteps = en.caps.StepBudget
	cfg.WatchAddrs = []uint64{en.target}
	if ckptOn {
		cfg.SnapshotEvery = snapshotCadence(en.caps.StepBudget)
	}

	// Checkpointed replay: restore the deepest snapshot that provably
	// precedes this input's divergence from its parent, patch the
	// differing argv bytes, and continue on a stitched copy of the shared
	// trace prefix. Any failure falls back to a from-scratch run — the
	// outcome is identical either way.
	var m *gos.Machine
	prefixLen := 0
	if ckptOn && c.plan != nil {
		if ck := c.plan.best(in); ck != nil {
			rm, err := ck.snap.Resume(cfg, c.plan.trace.PrefixCopy(ck.snap.TraceLen))
			if err == nil && in.Argv1 != ck.base.Argv1 {
				err = rm.PatchArgv(1, in.Argv1, len(ck.base.Argv1))
			}
			if err == nil {
				m = rm
				prefixLen = ck.snap.TraceLen
				rec.resumed = true
				rec.skippedSteps = int64(ck.snap.Steps)
			}
		}
	}
	if m == nil {
		nm, err := gos.New(en.img, cfg)
		if err != nil {
			rec.emit(event{kind: evTerminal, verdict: VerdictCrashed, detail: err.Error()})
			return rec
		}
		m = nm
	}
	res := m.Run()
	rec.ckptsTaken = len(m.Snapshots())
	rec.cowFaults = m.COWFaults()

	if res.Reason == gos.StopFault {
		rec.emit(event{kind: evFault, input: in})
	}
	// A trace containing a hardware fault is only analyzable by tools
	// that trace through exception dispatch; the others reject the whole
	// run (their tracer/emulator cannot process it), so a detonation in
	// such a run is never observed by the tool.
	if idxf := faultIndex(res.Trace); idxf >= 0 {
		switch en.caps.Sym.Exc {
		case symexec.ExcCrash:
			rec.emit(event{kind: evTerminal, verdict: VerdictCrashed,
				detail: "emulator fault: exception dispatch unsupported"})
			return rec
		case symexec.ExcEs1:
			rec.emit(event{kind: evIncident, incident: symexec.Incident{
				Stage: symexec.StageEs1, Index: idxf,
				Detail: "exception handler instructions cannot be traced",
			}})
			return rec
		case symexec.ExcEs2:
			rec.emit(event{kind: evIncident, incident: symexec.Incident{
				Stage: symexec.StageEs2, Index: idxf,
				Detail: "exception handler effect on symbolic state lost",
			}})
			return rec
		}
	}
	if res.Hit(en.target) {
		rec.emit(event{kind: evTerminal, verdict: VerdictSolved, input: in})
		return rec
	}

	// Emulation-layer gaps: network IO the engine cannot perform.
	if !en.caps.WebSyscall && traceUsesWeb(res.Trace) {
		rec.emit(event{kind: evTerminal, verdict: VerdictCrashed,
			detail: "network system call unsupported by the emulation layer"})
		return rec
	}

	opts := en.caps.Sym
	opts.Env = symexec.EnvInfo{TimeNow: cfg.TimeNow, Pid: cfg.Pid}
	for f := range cfg.Files {
		opts.Env.KnownFiles = append(opts.Env.KnownFiles, f)
	}
	sort.Strings(opts.Env.KnownFiles)
	sr := symexec.Run(en.img, res.Trace, res.Argv, cfg.Argv, opts)

	for _, inc := range sr.Incidents {
		rec.emit(event{kind: evIncident, incident: inc})
	}
	rec.emit(event{kind: evTainted, tainted: len(sr.TaintedIdx)})
	if sr.SimulationUsed {
		rec.emit(event{kind: evSimUsed})
	}
	if sr.Crashed {
		rec.emit(event{kind: evTerminal, verdict: VerdictCrashed, detail: sr.CrashDetail})
		return rec
	}

	// Constraints anchored inside the replayed prefix were derived from
	// trace entries this round did not re-execute.
	if rec.resumed {
		for i := range sr.Constraints {
			if sr.Constraints[i].Index < prefixLen {
				rec.prefixReused++
			}
		}
	}

	var childPlan *replayPlan
	if ckptOn {
		childPlan = makePlan(in, res, m.Snapshots(), c.plan)
	}
	en.negate(rec, in, sr, childPlan)
	return rec
}

// negate builds and solves the negation of each explorable constraint
// (generational search) and records the resulting inputs. childPlan, when
// non-nil, rides along on every pushed candidate so the child round can
// resume from this round's snapshots.
//
// Under SolverIncremental the round opens one solver.Session and fires
// every query on it: constraint i's negation is checked against the
// session's prefix c_0..c_{i-1}, then c_i joins the prefix — including
// assume-kind and already-seen constraints, which are never queried but
// are part of every later query's path condition. Under SolverPortfolio
// the round opens one solver.Portfolio instead: the same prefix
// discipline, but every query races the session against diversified
// fresh workers sharing learned clauses through the engine's exchange
// and, when configured, warm-starting from the persistent store.
func (en *Engine) negate(rec *roundRec, cur bombs.Input, sr *symexec.Result, childPlan *replayPlan) {
	// Forward occurrence numbering keeps flip keys stable across rounds
	// (the n-th execution of a loop branch keeps its identity as traces
	// lengthen).
	occurrence := make(map[uint64]int)
	occ := make([]int, len(sr.Constraints))
	for i := range sr.Constraints {
		occ[i] = occurrence[sr.Constraints[i].PC]
		occurrence[sr.Constraints[i].PC]++
	}
	var sess roundSolver
	queryOpts := solver.Options{
		MaxConflicts: en.caps.SolverConflicts,
		FP:           en.caps.FP,
		FPIterations: en.caps.FPIterations,
		Timeout:      en.caps.SolverTimeout,
		Seed:         sr.Seed,
	}
	switch {
	case en.caps.SolverMode == SolverIncremental && len(sr.Constraints) > 0:
		s := solver.NewSession(en.ctx, solver.SessionOptions{
			Options: queryOpts,
			// The shared query cache is deterministic for incremental
			// entries only when a single goroutine populates it in a
			// fixed order; parallel batches leave sessions self-contained
			// so outcomes stay repeatable at a fixed worker count.
			Cache: en.sessionCache(),
		})
		sess = s
		rec.sessions++
		defer func() {
			st := s.Stats()
			rec.incChecks += st.IncrementalChecks
			rec.learnedRetained += st.LearnedRetained
			rec.guardLits += st.GuardLiterals
		}()
	case en.caps.SolverMode == SolverPortfolio && len(sr.Constraints) > 0:
		p := solver.NewPortfolio(en.ctx, solver.PortfolioOptions{
			Options:  queryOpts,
			Workers:  en.caps.PortfolioWorkers,
			Cache:    en.sessionCache(),
			Exchange: en.ex,
			Warm:     en.caps.Warm,
		})
		sess = p
		rec.sessions++
		defer func() {
			st := p.Stats()
			ss := p.SessionStats()
			rec.incChecks += ss.IncrementalChecks
			rec.learnedRetained += ss.LearnedRetained
			rec.guardLits += ss.GuardLiterals
			rec.pfRaces += st.Races
			rec.pfShared += st.ClausesShared
			rec.pfImported += st.ClausesImported
			rec.warmHits += st.WarmQueryHits
			rec.warmSeeded += st.WarmClausesSeeded
		}()
	}
	// Ascending order: the deepest branch's candidate is pushed last, so
	// depth-first scheduling pops it first (negate the deepest unexplored
	// branch — the classic DFS concolic strategy).
	for i := 0; i < len(sr.Constraints); i++ {
		if sess != nil && i > 0 {
			// The previous constraint joins the session prefix whether or
			// not it was queried: every later query's path condition
			// includes it.
			sess.Assert(sr.Constraints[i-1].Expr)
		}
		if en.ctx.Err() != nil {
			// Cancellation is not budget exhaustion: stop recording and
			// let the scheduler's context check decide the verdict.
			return
		}
		if time.Now().After(en.deadline) {
			rec.emit(event{kind: evSolverExhausted})
			return
		}
		pc := sr.Constraints[i]
		if pc.Kind == symexec.KindAssume {
			continue
		}
		// Keyed by input length: an UNSAT flip can become satisfiable
		// once the argument grows (the iterative-lengthening pattern), so
		// its verdict only holds per length. SAT and UNKNOWN flips are
		// never retried for the same key.
		flipKey := flipKeyFor(pc, occ[i], len(cur.Argv1))
		if en.seenFlip[flipKey] {
			continue
		}

		rec.queries++
		var resu solver.Result
		var err error
		if sess != nil {
			resu, err = sess.CheckSeeded(sym.NewBoolNot(pc.Expr), int64(rec.idx*1000+i))
		} else {
			system := make([]sym.Expr, 0, i+1)
			for j := 0; j < i; j++ {
				system = append(system, sr.Constraints[j].Expr)
			}
			system = append(system, sym.NewBoolNot(pc.Expr))
			opts := queryOpts
			opts.RandSeed = int64(rec.idx*1000 + i)
			resu, err = en.cache.SolveContext(en.ctx, system, opts)
		}
		if err != nil {
			continue
		}
		switch resu.Status {
		case solver.StatusUnknown:
			// Hopeless within budget; don't retry.
			rec.emit(event{kind: evSolverExhausted, flip: flipKey})
			rec.emit(event{kind: evMark, flip: flipKey})
			continue
		case solver.StatusFloatUnsupported:
			rec.emit(event{kind: evIncident, flip: flipKey, incident: symexec.Incident{
				Stage: symexec.StageEs3, Index: pc.Index, PC: pc.PC,
				Detail: "floating-point theory unsupported by the solver",
			}})
			continue
		case solver.StatusUnsat:
			// Branch direction infeasible on this prefix; mark explored.
			rec.emit(event{kind: evMark, flip: flipKey})
			continue
		}

		// Satisfiable: realize the model as an input.
		next, realized, truncated := reconstruct(resu.Model, sr.Seed, cur, en.caps)
		if truncated {
			rec.emit(event{kind: evIncident, flip: flipKey, incident: symexec.Incident{
				Stage: symexec.StageEs2, Index: pc.Index, PC: pc.PC,
				Detail: "model requires a longer input than the tool can construct",
			}})
		}
		if !realized {
			// The model binds only unrealizable (simulation) variables:
			// the tool believes the flipped path is feasible but cannot
			// build an input for it.
			if bindsSim(resu.Model) {
				rec.emit(event{kind: evClaim, flip: flipKey, claim: Claim{
					PC:      pc.PC,
					Syscall: bindsSyscallSim(resu.Model),
					Input:   cur,
				}})
			}
			rec.emit(event{kind: evMark, flip: flipKey})
			continue
		}
		rec.emit(event{kind: evMark, flip: flipKey})
		rec.emit(event{kind: evPush, flip: flipKey, input: next, plan: childPlan})
	}
}
