package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/cover"
	"repro/internal/gos"
	"repro/internal/solver"
	"repro/internal/sym"
	"repro/internal/symexec"
	"repro/internal/target"
	"repro/internal/trace"
)

// The parallel scheduler runs exploration rounds in synchronous batches.
// Each batch pops up to Workers candidates from the frontier in the
// search strategy's order, runs every round on its own goroutine against
// a frozen view of the dedup maps, and then replays the rounds' recorded
// effects strictly in dispatch order on the single-threaded engine state.
//
// Replay order is what keeps verdicts deterministic: a terminal round
// (solved or crashed) cuts off every later-dispatched round of its batch,
// so the winning round is the same one a sequential engine would have
// reached first — first success wins, with the round index as the
// tiebreak, never goroutine timing. With Workers=1 each batch holds one
// round and the engine's observable behaviour (outcome fields, incident
// order, round numbering, solver random seeds) is identical to the
// historical sequential loop.
//
// Because workers cannot see flips resolved by rounds merged earlier in
// the same batch, they may re-solve a query or re-derive a push; replay
// gates every flip-derived event on the authoritative seenFlip map, so
// those duplicates collapse and the merged state matches the sequential
// schedule. The duplicate solver work itself is largely absorbed by the
// engine's query cache.

// evKind tags one recorded engine effect.
type evKind int

const (
	evFault evKind = iota + 1 // concrete run ended in an unhandled fault
	evIncident
	evTainted
	evSimUsed
	evSolverExhausted
	evClaim
	evMark // mark a flip explored
	evPush
	evTerminal
)

// event is one engine effect recorded by a worker, replayed by the
// scheduler. Events carrying a flip key are dropped wholesale when the
// flip was already resolved by an earlier round.
type event struct {
	kind     evKind
	flip     string
	incident symexec.Incident
	claim    Claim
	input    target.Input // push payload, fault input, or solving input
	plan     *replayPlan  // replay plan attached to a push
	flipEdge cover.Edge   // coverage-scoring signal attached to a push
	tainted  int
	verdict  Verdict
	detail   string
}

// roundRec is the full record of one exploration round.
type roundRec struct {
	idx     int // 1-based round number, assigned at dispatch
	events  []event
	queries int // solver queries issued (stats)

	// Coverage payload: the run's per-trace coverage set plus the input
	// and child plan, so the scheduler can merge coverage in dispatch
	// order and feed the fuzz corpus deterministically.
	cov   *cover.Set
	input target.Input
	plan  *replayPlan

	// Checkpoint work profile of this round (stats; deterministic for a
	// fixed schedule, identical across worker counts).
	ckptsTaken   int
	resumed      bool
	skippedSteps int64
	cowFaults    uint64
	prefixReused int

	// Incremental-session work profile of this round (stats; zero under
	// SolverFresh).
	sessions        int
	incChecks       int
	learnedRetained int64
	guardLits       int

	// Portfolio work profile of this round (stats; zero outside
	// SolverPortfolio).
	pfRaces    int
	pfShared   int64
	pfImported int64
	warmHits   int
	warmSeeded int
}

func (r *roundRec) emit(ev event) { r.events = append(r.events, ev) }

// roundSolver is the per-round incremental query context negate drives
// when a persistent mode is selected: solver.Session under
// SolverIncremental, solver.Portfolio under SolverPortfolio. Both keep
// the same prefix discipline — Assert joins the path condition,
// CheckSeeded decides prefix ∧ negated.
type roundSolver interface {
	Assert(constraints ...sym.Expr)
	CheckSeeded(negated sym.Expr, randSeed int64) (solver.Result, error)
}

// popBatch removes up to n candidates from the frontier in strategy
// order. Under SearchCoverage it pops from the scored generation view
// only — never from the buffer of pending pushes — so a batch cannot
// cross a generation boundary (the determinism barrier; see
// coverage.go).
func (en *Engine) popBatch(n int) []candidate {
	if en.caps.Search == SearchCoverage {
		if v := en.viewLen(); n > v {
			n = v
		}
		batch := make([]candidate, n)
		copy(batch, en.view[en.viewHead:en.viewHead+n])
		en.viewHead += n
		if en.viewHead == len(en.view) {
			en.view, en.viewHead = nil, 0
		}
		return batch
	}
	if f := en.frontierLen(); n > f {
		n = f
	}
	batch := make([]candidate, 0, n)
	for i := 0; i < n; i++ {
		if en.caps.Search == SearchDFS {
			last := len(en.queue) - 1
			batch = append(batch, en.queue[last])
			en.queue = en.queue[:last]
		} else {
			batch = append(batch, en.queue[en.head])
			en.head++
		}
	}
	en.compact()
	return batch
}

// compact releases the consumed prefix of the BFS queue once it dominates
// the backing array, keeping the pop O(1) without leaking the array.
func (en *Engine) compact() {
	if en.head > 32 && en.head*2 >= len(en.queue) {
		en.queue = append(en.queue[:0:0], en.queue[en.head:]...)
		en.head = 0
	}
}

// frontierLen counts every pending candidate: the push buffer plus,
// under SearchCoverage, the unpopped remainder of the current
// generation view.
func (en *Engine) frontierLen() int {
	return len(en.queue) - en.head + en.viewLen()
}

// runBatch executes the batch's rounds, in parallel when more than one
// worker is available. Workers only read engine state (image, caps,
// deadline, the frozen dedup maps) and the mutex-guarded solver cache.
func (en *Engine) runBatch(batch []candidate) []*roundRec {
	base := en.out.Rounds
	recs := make([]*roundRec, len(batch))
	if len(batch) == 1 {
		recs[0] = en.runRound(batch[0], base+1)
		return recs
	}
	var wg sync.WaitGroup
	for i := range batch {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = en.runRound(batch[i], base+i+1)
		}(i)
	}
	wg.Wait()
	return recs
}

// applyRound replays one round's events onto the engine state. It returns
// true when the round is terminal (exploration must stop).
func (en *Engine) applyRound(rec *roundRec) bool {
	// The progress hook fires after the round's full effect — stats,
	// coverage merge, event replay — has landed, terminal rounds
	// included; deferring covers both exits.
	defer en.emitProgress()
	en.out.Rounds++
	en.out.CandidatesTried++
	en.stats.SolverQueries += rec.queries
	en.stats.CheckpointsTaken += rec.ckptsTaken
	en.stats.InstructionsSkipped += rec.skippedSteps
	en.stats.PagesCOWFaulted += rec.cowFaults
	en.stats.PrefixConstraintsReused += rec.prefixReused
	if rec.resumed {
		en.stats.CheckpointResumes++
	}
	en.stats.SolverSessions += rec.sessions
	en.stats.IncrementalChecks += rec.incChecks
	en.stats.LearnedClausesRetained += rec.learnedRetained
	en.stats.GuardLiterals += rec.guardLits
	en.stats.PortfolioRaces += rec.pfRaces
	en.stats.PortfolioClausesShared += rec.pfShared
	en.stats.PortfolioClausesImported += rec.pfImported
	en.stats.WarmQueryHits += rec.warmHits
	en.stats.WarmClausesSeeded += rec.warmSeeded
	if rec.cov != nil {
		// Coverage merges in dispatch order on the engine thread, so the
		// per-round novelty counts — and the corpus they feed — are
		// identical at every worker count (the runs themselves depend only
		// on their inputs).
		newEdges, _ := en.cov.Merge(rec.cov)
		cover.Global().Merge(rec.cov)
		en.stats.NewEdgesPerRound = append(en.stats.NewEdgesPerRound, newEdges)
		if newEdges > 0 && en.fuzzOn() {
			en.corpusAdd(rec.input, rec.plan)
		}
	}
	var gated map[string]bool
	for i := range rec.events {
		ev := &rec.events[i]
		if ev.flip != "" {
			// Gate the whole flip on the state seen at its first event, so
			// a mark inside the flip does not suppress its own push.
			g, ok := gated[ev.flip]
			if !ok {
				g = en.seenFlip[ev.flip]
				if gated == nil {
					gated = make(map[string]bool)
				}
				gated[ev.flip] = g
			}
			if g {
				continue
			}
		}
		switch ev.kind {
		case evFault:
			en.out.FaultInputs = append(en.out.FaultInputs, ev.input)
		case evIncident:
			en.mergeIncidents([]symexec.Incident{ev.incident})
		case evTainted:
			en.out.TaintedPerRound = append(en.out.TaintedPerRound, ev.tainted)
		case evSimUsed:
			en.out.SimulationUsed = true
		case evSolverExhausted:
			en.out.SolverExhausted = true
		case evClaim:
			en.out.Claims = append(en.out.Claims, ev.claim)
		case evMark:
			en.seenFlip[ev.flip] = true
		case evPush:
			en.push(candidate{in: ev.input, plan: ev.plan, flipEdge: ev.flipEdge})
		case evTerminal:
			en.out.Verdict = ev.verdict
			en.out.CrashDetail = ev.detail
			if ev.verdict == VerdictSolved {
				en.out.Input = ev.input
			}
			return true
		}
	}
	return false
}

// emitProgress reports the cumulative counters after a merged round to
// the Capabilities.Progress hook, if any. It runs on the engine
// goroutine in round order — the same order at every worker count — so
// streamed progress is as deterministic as the verdict.
func (en *Engine) emitProgress() {
	if en.caps.Progress == nil {
		return
	}
	en.caps.Progress(Progress{
		Round:         en.out.Rounds,
		SolverQueries: en.stats.SolverQueries,
		CoveredEdges:  en.cov.Edges(),
		CoveredBlocks: en.cov.Blocks(),
		Frontier:      en.frontierLen(),
	})
}

// runRound executes one concrete run plus its symbolic pass and negation
// solving, recording effects instead of applying them. It must not write
// any engine state: it may run concurrently with other rounds of the same
// batch (snapshots in the candidate's plan are quiescent and safe to
// resume from several workers at once).
func (en *Engine) runRound(c candidate, idx int) *roundRec {
	in := c.in
	rec := &roundRec{idx: idx}
	if en.ctx.Err() != nil {
		// Cancelled while the batch was in flight: skip the concrete run;
		// the scheduler's context check ends exploration after replay.
		return rec
	}

	ckptOn := en.caps.Checkpoint == CheckpointAuto
	m, res, prefixLen, resumed, skipped, err := en.runConcrete(in, c.plan)
	if err != nil {
		rec.emit(event{kind: evTerminal, verdict: VerdictCrashed, detail: err.Error()})
		return rec
	}
	rec.resumed = resumed
	rec.skippedSteps = skipped
	rec.ckptsTaken = len(m.Snapshots())
	rec.cowFaults = m.COWFaults()
	// Every concrete trace feeds coverage, whatever the strategy: the
	// counters stay comparable across strategies, and checkpointed runs
	// contribute identical sets (the stitched prefix replays the same
	// entries a from-scratch run would record).
	rec.cov = cover.FromTrace(res.Trace, en.leaders)
	rec.input = in

	if res.Reason == gos.StopFault {
		rec.emit(event{kind: evFault, input: in})
	}
	// A trace containing a hardware fault is only analyzable by tools
	// that trace through exception dispatch; the others reject the whole
	// run (their tracer/emulator cannot process it), so a detonation in
	// such a run is never observed by the tool.
	if idxf := faultIndex(res.Trace); idxf >= 0 {
		switch en.caps.Sym.Exc {
		case symexec.ExcCrash:
			rec.emit(event{kind: evTerminal, verdict: VerdictCrashed,
				detail: "emulator fault: exception dispatch unsupported"})
			return rec
		case symexec.ExcEs1:
			rec.emit(event{kind: evIncident, incident: symexec.Incident{
				Stage: symexec.StageEs1, Index: idxf,
				Detail: "exception handler instructions cannot be traced",
			}})
			return rec
		case symexec.ExcEs2:
			rec.emit(event{kind: evIncident, incident: symexec.Incident{
				Stage: symexec.StageEs2, Index: idxf,
				Detail: "exception handler effect on symbolic state lost",
			}})
			return rec
		}
	}
	if res.Hit(en.target) {
		rec.emit(event{kind: evTerminal, verdict: VerdictSolved, input: in})
		return rec
	}

	// Emulation-layer gaps: network IO the engine cannot perform.
	if !en.caps.WebSyscall && traceUsesWeb(res.Trace) {
		rec.emit(event{kind: evTerminal, verdict: VerdictCrashed,
			detail: "network system call unsupported by the emulation layer"})
		return rec
	}

	// Rebuild the run's config view for the symbolic pass; only the
	// input-derived fields (argv, env facets, files) matter here.
	cfg := in.Config()
	opts := en.caps.Sym
	opts.Env = symexec.EnvInfo{TimeNow: cfg.TimeNow, Pid: cfg.Pid}
	for f := range cfg.Files {
		opts.Env.KnownFiles = append(opts.Env.KnownFiles, f)
	}
	sort.Strings(opts.Env.KnownFiles)
	sr := symexec.Run(en.img, res.Trace, res.Argv, cfg.Argv, opts)

	for _, inc := range sr.Incidents {
		rec.emit(event{kind: evIncident, incident: inc})
	}
	rec.emit(event{kind: evTainted, tainted: len(sr.TaintedIdx)})
	if sr.SimulationUsed {
		rec.emit(event{kind: evSimUsed})
	}
	if sr.Crashed {
		rec.emit(event{kind: evTerminal, verdict: VerdictCrashed, detail: sr.CrashDetail})
		return rec
	}

	// Constraints anchored inside the replayed prefix were derived from
	// trace entries this round did not re-execute.
	if rec.resumed {
		for i := range sr.Constraints {
			if sr.Constraints[i].Index < prefixLen {
				rec.prefixReused++
			}
		}
	}

	var childPlan *replayPlan
	if ckptOn {
		childPlan = makePlan(in, res, m.Snapshots(), c.plan)
	}
	rec.plan = childPlan
	en.negate(rec, in, sr, res.Trace, childPlan)
	return rec
}

// runConcrete performs one concrete execution of in, resuming from the
// deepest valid checkpoint of plan when the policy allows: restore the
// snapshot that provably precedes this input's divergence from its
// parent, patch the differing argv bytes, and continue on a stitched
// copy of the shared trace prefix. Any resume failure falls back to a
// from-scratch run — the result is identical either way. Shared by
// concolic rounds and fuzz breed executions.
func (en *Engine) runConcrete(in target.Input, plan *replayPlan) (m *gos.Machine, res *gos.Result, prefixLen int, resumed bool, skipped int64, err error) {
	ckptOn := en.caps.Checkpoint == CheckpointAuto
	cfg := in.Config()
	cfg.Record = true
	cfg.MaxSteps = en.caps.StepBudget
	cfg.WatchAddrs = []uint64{en.target}
	if ckptOn {
		cfg.SnapshotEvery = snapshotCadence(en.caps.StepBudget)
	}
	if ckptOn && plan != nil {
		if ck := plan.best(in); ck != nil {
			rm, rerr := ck.snap.Resume(cfg, plan.trace.PrefixCopy(ck.snap.TraceLen))
			if rerr == nil && in.Argv1 != ck.base.Argv1 {
				rerr = rm.PatchArgv(1, in.Argv1, len(ck.base.Argv1))
			}
			if rerr == nil {
				m = rm
				prefixLen = ck.snap.TraceLen
				resumed = true
				skipped = int64(ck.snap.Steps)
			}
		}
	}
	if m == nil {
		nm, nerr := gos.New(en.img, cfg)
		if nerr != nil {
			return nil, nil, 0, false, 0, nerr
		}
		m = nm
	}
	return m, m.Run(), prefixLen, resumed, skipped, nil
}

// negate builds and solves the negation of each explorable constraint
// (generational search) and records the resulting inputs. childPlan, when
// non-nil, rides along on every pushed candidate so the child round can
// resume from this round's snapshots.
//
// Under SolverIncremental the round opens one solver.Session and fires
// every query on it: constraint i's negation is checked against the
// session's prefix c_0..c_{i-1}, then c_i joins the prefix — including
// assume-kind and already-seen constraints, which are never queried but
// are part of every later query's path condition. Under SolverPortfolio
// the round opens one solver.Portfolio instead: the same prefix
// discipline, but every query races the session against diversified
// fresh workers sharing learned clauses through the engine's exchange
// and, when configured, warm-starting from the persistent store.
func (en *Engine) negate(rec *roundRec, cur target.Input, sr *symexec.Result, tr *trace.Trace, childPlan *replayPlan) {
	// Forward occurrence numbering keeps flip keys stable across rounds
	// (the n-th execution of a loop branch keeps its identity as traces
	// lengthen).
	occurrence := make(map[uint64]int)
	occ := make([]int, len(sr.Constraints))
	for i := range sr.Constraints {
		occ[i] = occurrence[sr.Constraints[i].PC]
		occurrence[sr.Constraints[i].PC]++
	}
	var sess roundSolver
	queryOpts := solver.Options{
		MaxConflicts: en.caps.SolverConflicts,
		FP:           en.caps.FP,
		FPIterations: en.caps.FPIterations,
		Timeout:      en.caps.SolverTimeout,
		Seed:         sr.Seed,
	}
	switch {
	case en.caps.SolverMode == SolverIncremental && len(sr.Constraints) > 0:
		s := solver.NewSession(en.ctx, solver.SessionOptions{
			Options: queryOpts,
			// The shared query cache is deterministic for incremental
			// entries only when a single goroutine populates it in a
			// fixed order; parallel batches leave sessions self-contained
			// so outcomes stay repeatable at a fixed worker count.
			Cache: en.sessionCache(),
		})
		sess = s
		rec.sessions++
		defer func() {
			st := s.Stats()
			rec.incChecks += st.IncrementalChecks
			rec.learnedRetained += st.LearnedRetained
			rec.guardLits += st.GuardLiterals
		}()
	case en.caps.SolverMode == SolverPortfolio && len(sr.Constraints) > 0:
		p := solver.NewPortfolio(en.ctx, solver.PortfolioOptions{
			Options:  queryOpts,
			Workers:  en.caps.PortfolioWorkers,
			Cache:    en.sessionCache(),
			Exchange: en.ex,
			Warm:     en.caps.Warm,
		})
		sess = p
		rec.sessions++
		defer func() {
			st := p.Stats()
			ss := p.SessionStats()
			rec.incChecks += ss.IncrementalChecks
			rec.learnedRetained += ss.LearnedRetained
			rec.guardLits += ss.GuardLiterals
			rec.pfRaces += st.Races
			rec.pfShared += st.ClausesShared
			rec.pfImported += st.ClausesImported
			rec.warmHits += st.WarmQueryHits
			rec.warmSeeded += st.WarmClausesSeeded
		}()
	}
	n := len(sr.Constraints)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var flipEdges []cover.Edge
	if en.caps.Search == SearchCoverage && n > 0 {
		// Flip-target edges: the coverage scorer's signal for the pushed
		// candidates, and the issue-order key below. Read-only against
		// the engine tracker — safe from parallel rounds, because merges
		// only happen between batches.
		flipEdges = make([]cover.Edge, n)
		uncovered := make([]bool, n)
		for i := range sr.Constraints {
			flipEdges[i] = en.flipEdgeFor(sr.Constraints[i], tr)
			uncovered[i] = flipEdges[i] != (cover.Edge{}) && !en.cov.HasEdge(flipEdges[i])
		}
		if sess == nil {
			// Issue queries for still-uncovered targets first. Fresh
			// solving only: each query independently builds its whole
			// system and seeds by constraint index, so its result is
			// issue-order-independent; persistent sessions keep their
			// prefix discipline and natural order. Recorded events are
			// grouped per constraint and flattened in ascending index
			// below, so the replayed schedule — and every determinism
			// guarantee — is unchanged; what moves is which negations get
			// solver time before the budget runs out.
			sort.SliceStable(order, func(x, y int) bool {
				return uncovered[order[x]] && !uncovered[order[y]]
			})
		}
	}
	// Events group per constraint and flatten in ascending constraint
	// order (the historical emission order), whatever order the queries
	// were issued in.
	groups := make([][]event, n)
	defer func() {
		for gi := range groups {
			rec.events = append(rec.events, groups[gi]...)
		}
	}()

	for oi := 0; oi < n; oi++ {
		i := order[oi]
		emit := func(ev event) { groups[i] = append(groups[i], ev) }
		if sess != nil && oi > 0 {
			// The previous constraint joins the session prefix whether or
			// not it was queried: every later query's path condition
			// includes it. (Sessions always run in natural order.)
			sess.Assert(sr.Constraints[order[oi-1]].Expr)
		}
		if en.ctx.Err() != nil {
			// Cancellation is not budget exhaustion: stop recording and
			// let the scheduler's context check decide the verdict.
			return
		}
		if time.Now().After(en.deadline) {
			emit(event{kind: evSolverExhausted})
			return
		}
		pc := sr.Constraints[i]
		if pc.Kind == symexec.KindAssume {
			continue
		}
		// Keyed by input length: an UNSAT flip can become satisfiable
		// once the argument grows (the iterative-lengthening pattern), so
		// its verdict only holds per length. SAT and UNKNOWN flips are
		// never retried for the same key.
		flipKey := flipKeyFor(pc, occ[i], len(cur.Argv1))
		if en.seenFlip[flipKey] {
			continue
		}

		rec.queries++
		var resu solver.Result
		var err error
		if sess != nil {
			resu, err = sess.CheckSeeded(sym.NewBoolNot(pc.Expr), int64(rec.idx*1000+i))
		} else {
			system := make([]sym.Expr, 0, i+1)
			for j := 0; j < i; j++ {
				system = append(system, sr.Constraints[j].Expr)
			}
			system = append(system, sym.NewBoolNot(pc.Expr))
			opts := queryOpts
			opts.RandSeed = int64(rec.idx*1000 + i)
			resu, err = en.cache.SolveContext(en.ctx, system, opts)
		}
		if err != nil {
			continue
		}
		switch resu.Status {
		case solver.StatusUnknown:
			// Hopeless within budget; don't retry.
			emit(event{kind: evSolverExhausted, flip: flipKey})
			emit(event{kind: evMark, flip: flipKey})
			continue
		case solver.StatusFloatUnsupported:
			emit(event{kind: evIncident, flip: flipKey, incident: symexec.Incident{
				Stage: symexec.StageEs3, Index: pc.Index, PC: pc.PC,
				Detail: "floating-point theory unsupported by the solver",
			}})
			continue
		case solver.StatusUnsat:
			// Branch direction infeasible on this prefix; mark explored.
			emit(event{kind: evMark, flip: flipKey})
			continue
		}

		// Satisfiable: realize the model as an input.
		next, realized, truncated := reconstruct(resu.Model, sr.Seed, cur, en.caps)
		if truncated {
			emit(event{kind: evIncident, flip: flipKey, incident: symexec.Incident{
				Stage: symexec.StageEs2, Index: pc.Index, PC: pc.PC,
				Detail: "model requires a longer input than the tool can construct",
			}})
		}
		if !realized {
			// The model binds only unrealizable (simulation) variables:
			// the tool believes the flipped path is feasible but cannot
			// build an input for it.
			if bindsSim(resu.Model) {
				emit(event{kind: evClaim, flip: flipKey, claim: Claim{
					PC:      pc.PC,
					Syscall: bindsSyscallSim(resu.Model),
					Input:   cur,
				}})
			}
			emit(event{kind: evMark, flip: flipKey})
			continue
		}
		var fe cover.Edge
		if flipEdges != nil {
			fe = flipEdges[i]
		}
		emit(event{kind: evMark, flip: flipKey})
		emit(event{kind: evPush, flip: flipKey, input: next, plan: childPlan, flipEdge: fe})
	}
}
