package core

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/symexec"
	"repro/internal/target"
)

// reconstruct turns a solver model into a concrete input, starting from
// the input that produced the constraints. It reports whether the result
// differs from cur (realized) and whether the model demanded an input the
// tool cannot build (truncated — the Es2 wrong-test-case situation).
func reconstruct(model, seed map[string]uint64, cur target.Input, caps Capabilities) (next target.Input, realized, truncated bool) {
	next = cur
	next.Web = cloneStrMap(cur.Web)
	next.Files = cloneBytesMap(cur.Files)
	next.Env = cloneStrMap(cur.Env)

	// argv[1]: read byte variables until the first NUL.
	var raw []byte
	for i := 0; ; i++ {
		name := "argv1[" + strconv.Itoa(i) + "]"
		v, inModel := model[name]
		sv, inSeed := seed[name]
		if !inModel && !inSeed {
			break
		}
		b := byte(sv)
		if inModel {
			b = byte(v)
		}
		raw = append(raw, b)
	}
	s := string(raw)
	if k := strings.IndexByte(s, 0); k >= 0 {
		s = s[:k]
	}
	if len(s) > len(cur.Argv1) && !caps.GrowArgv {
		truncated = true
		s = s[:len(cur.Argv1)]
	}
	if len(s) > caps.MaxArgvLen {
		truncated = true
		s = s[:caps.MaxArgvLen]
	}
	next.Argv1 = s

	if v, ok := model["time"]; ok {
		next.TimeNow = v
	}
	if v, ok := model["pid"]; ok {
		next.Pid = v
	}
	reconstructWeb(model, seed, &next)
	reconstructFiles(model, &next)
	reconstructEnv(model, seed, &next)

	realized = inputKey(next) != inputKey(cur)
	return next, realized, truncated
}

// reconstructWeb rebuilds requested web content from "web:<url>!ret" and
// "web:<url>[i]" variables.
func reconstructWeb(model, seed map[string]uint64, next *target.Input) {
	const maxBody = 64
	urls := make(map[string]bool)
	for name := range model {
		if u, ok := webURL(name); ok {
			urls[u] = true
		}
	}
	if len(urls) == 0 {
		return
	}
	sorted := make([]string, 0, len(urls))
	for u := range urls {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	for _, u := range sorted {
		retName := "web:" + u + "!ret"
		n := int64(0)
		if v, ok := model[retName]; ok {
			n = int64(v)
		} else if v, ok := seed[retName]; ok {
			n = int64(v)
		}
		if n <= 0 {
			continue // the model wants the fetch to keep failing
		}
		if n > maxBody {
			n = maxBody
		}
		body := make([]byte, n)
		for i := range body {
			name := "web:" + u + "[" + strconv.Itoa(i) + "]"
			switch {
			case hasKey(model, name):
				body[i] = byte(model[name])
			case hasKey(seed, name):
				body[i] = byte(seed[name])
			default:
				body[i] = 'x' // unconstrained filler
			}
		}
		if next.Web == nil {
			next.Web = make(map[string]string)
		}
		next.Web[u] = string(body)
	}
}

// reconstructFiles resizes files to satisfy "filesize:<path>" model
// variables: the size is the input facet, the content bytes only need to
// exist, so the current content is truncated or padded.
func reconstructFiles(model map[string]uint64, next *target.Input) {
	const maxFileSize = 4096
	paths := make([]string, 0, 1)
	for name := range model {
		if p, ok := statPath(name); ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		want := int64(model["filesize:"+p])
		if want < 0 {
			delete(next.Files, p) // the model wants stat to keep failing
			continue
		}
		if want > maxFileSize {
			want = maxFileSize
		}
		data := next.Files[p]
		for int64(len(data)) < want {
			data = append(data, 'x')
		}
		data = data[:want]
		if next.Files == nil {
			next.Files = make(map[string][]byte)
		}
		next.Files[p] = data
	}
}

// reconstructEnv rebuilds requested environment variables from
// "getenv:<NAME>!ret" and "getenv:<NAME>[i]" model variables, mirroring
// reconstructWeb.
func reconstructEnv(model, seed map[string]uint64, next *target.Input) {
	const maxValue = 64
	names := make(map[string]bool)
	for name := range model {
		if n, ok := getenvName(name); ok {
			names[n] = true
		}
	}
	if len(names) == 0 {
		return
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, en := range sorted {
		retName := "getenv:" + en + "!ret"
		n := int64(0)
		if v, ok := model[retName]; ok {
			n = int64(v)
		} else if v, ok := seed[retName]; ok {
			n = int64(v)
		}
		if n < 0 {
			delete(next.Env, en) // the model wants the variable unset
			continue
		}
		if n > maxValue {
			n = maxValue
		}
		val := make([]byte, n)
		for i := range val {
			name := "getenv:" + en + "[" + strconv.Itoa(i) + "]"
			switch {
			case hasKey(model, name):
				val[i] = byte(model[name])
			case hasKey(seed, name):
				val[i] = byte(seed[name])
			default:
				val[i] = 'x' // unconstrained filler
			}
		}
		if next.Env == nil {
			next.Env = make(map[string]string)
		}
		next.Env[en] = string(val)
	}
}

// statPath extracts the path from a "filesize:<path>" variable name,
// rejecting env/sim prefixed ones (those cannot be realized).
func statPath(name string) (string, bool) {
	if symexec.IsEnvVar(name) || symexec.IsSimVar(name) {
		return "", false
	}
	if !strings.HasPrefix(name, "filesize:") {
		return "", false
	}
	return name[len("filesize:"):], true
}

// getenvName extracts the variable name from a getenv model variable,
// rejecting env/sim prefixed ones.
func getenvName(name string) (string, bool) {
	if symexec.IsEnvVar(name) || symexec.IsSimVar(name) {
		return "", false
	}
	if !strings.HasPrefix(name, "getenv:") {
		return "", false
	}
	rest := name[len("getenv:"):]
	if i := strings.LastIndexByte(rest, '!'); i >= 0 {
		return rest[:i], true
	}
	if i := strings.LastIndexByte(rest, '['); i >= 0 {
		return rest[:i], true
	}
	return "", false
}

func hasKey(m map[string]uint64, k string) bool {
	_, ok := m[k]
	return ok
}

// webURL extracts the URL from a web variable name, rejecting env/sim
// prefixed ones (those cannot be realized).
func webURL(name string) (string, bool) {
	if symexec.IsEnvVar(name) || symexec.IsSimVar(name) {
		return "", false
	}
	if !strings.HasPrefix(name, "web:") {
		return "", false
	}
	rest := name[len("web:"):]
	if i := strings.LastIndexByte(rest, '!'); i >= 0 {
		return rest[:i], true
	}
	if i := strings.LastIndexByte(rest, '['); i >= 0 {
		return rest[:i], true
	}
	return "", false
}

func cloneStrMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneBytesMap(m map[string][]byte) map[string][]byte {
	if m == nil {
		return nil
	}
	out := make(map[string][]byte, len(m))
	for k, v := range m {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
