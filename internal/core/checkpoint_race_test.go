package core_test

// Concurrency tests for the copy-on-write machinery the checkpointing
// scheduler leans on: a parallel batch hands the same replay plan — and
// with it the same quiescent snapshots and shared memory pages — to
// every worker, so clones and private writes race against each other in
// exactly the pattern exercised here. Run under `make race`.

import (
	"sync"
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tools"
)

// TestCOWConcurrentCloneWrite hammers a quiescent parent Memory with
// ResolvedWorkers goroutines, each cloning it and writing through its
// own clone. The parent must stay byte-identical, and every clone must
// see its own writes over the parent's bytes — the contract the engine
// relies on when several workers resume from one snapshot at once.
func TestCOWConcurrentCloneWrite(t *testing.T) {
	workers := core.Capabilities{}.ResolvedWorkers()
	if workers < 4 {
		workers = 4
	}
	const pages = 16
	const rounds = 50

	parent := mem.New()
	for p := 0; p < pages; p++ {
		for b := 0; b < 8; b++ {
			parent.StoreByte(uint64(p*mem.PageSize+b), byte(p+b))
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c := parent.Clone()
				// Touch every page: each write COW-faults a shared page
				// while sibling goroutines fault their own copies of it.
				for p := 0; p < pages; p++ {
					addr := uint64(p*mem.PageSize + w%8)
					c.StoreByte(addr, byte(0xA0+w))
					if got := c.LoadByte(addr); got != byte(0xA0+w) {
						errs <- "clone lost its own write"
						return
					}
				}
				// Unwritten offsets must still show the parent's bytes.
				for p := 0; p < pages; p++ {
					off := (w + 1) % 8
					want := byte(p + off)
					if w%8 == off {
						continue
					}
					if got := c.LoadByte(uint64(p*mem.PageSize + off)); got != want {
						errs <- "clone saw a sibling's write"
						return
					}
				}
				c.Reset()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	for p := 0; p < pages; p++ {
		for b := 0; b < 8; b++ {
			if got := parent.LoadByte(uint64(p*mem.PageSize + b)); got != byte(p+b) {
				t.Fatalf("parent page %d byte %d corrupted: %#x", p, b, got)
			}
		}
	}
}

// TestCheckpointedExploreRace runs a checkpoint-heavy exploration at
// several worker counts under the race detector: parallel rounds resume
// from the same plan's snapshots (concurrent Snapshot.Resume → Memory
// clones → private COW faults) while the owning round's machine keeps
// executing. The loop bomb resumes on nearly every round, so this is
// the densest snapshot-sharing workload the engine produces.
func TestCheckpointedExploreRace(t *testing.T) {
	bomb, ok := bombs.ByName("loop")
	if !ok {
		t.Fatal("loop missing")
	}
	want := exploreWith(bomb, tools.FastBudgets(tools.Reference()), 1)
	for _, workers := range []int{2, core.Capabilities{}.ResolvedWorkers()} {
		out := exploreWith(bomb, tools.FastBudgets(tools.Reference()), workers)
		if out.Verdict != want.Verdict || out.Rounds != want.Rounds {
			t.Fatalf("workers=%d: verdict %v rounds %d, want %v/%d",
				workers, out.Verdict, out.Rounds, want.Verdict, want.Rounds)
		}
		if out.Stats.CheckpointResumes == 0 {
			t.Fatalf("workers=%d: checkpointing never engaged", workers)
		}
	}
}
