package core_test

import (
	"fmt"
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// BenchmarkExploreParallel measures end-to-end exploration of a
// multi-round bomb at several worker counts. jump under the reference
// DFS profile runs to its 12-round cap with a sustained frontier, so the
// batch scheduler has real work to overlap; the win at workers>1 comes
// from batched frontier scheduling and the solver cache absorbing
// sibling-round duplicates (and from CPU parallelism where cores allow).
func BenchmarkExploreParallel(b *testing.B) {
	bomb, ok := bombs.ByName("jump")
	if !ok {
		b.Fatal("jump missing")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := tools.FastBudgets(tools.Reference())
			p.Caps.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				en := core.New(bomb.Image(), bomb.BombAddr(), p.Caps)
				out := en.Explore(bomb.Benign)
				if out.Rounds == 0 {
					b.Fatal("engine did no work")
				}
			}
		})
	}
}

// BenchmarkSolverCacheHitRate reports the solver query cache's hit rate
// on bombs whose negation systems repeat across rounds (array scans and
// symbolic jumps re-derive the same prefix constraints).
func BenchmarkSolverCacheHitRate(b *testing.B) {
	for _, name := range []string{"array1", "jump"} {
		b.Run(name, func(b *testing.B) {
			bomb, ok := bombs.ByName(name)
			if !ok {
				b.Fatal("bomb missing")
			}
			p := tools.FastBudgets(tools.Angr())
			p.Caps.Workers = 4
			var hits, lookups uint64
			for i := 0; i < b.N; i++ {
				en := core.New(bomb.Image(), bomb.BombAddr(), p.Caps)
				out := en.Explore(bomb.Benign)
				hits += out.Stats.CacheHits
				lookups += out.Stats.CacheHits + out.Stats.CacheMisses
			}
			if lookups == 0 {
				b.Fatal("cache saw no lookups")
			}
			b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
		})
	}
}
