package core

import (
	"testing"
)

// incrementalCaps is the reference tool running its negation queries on
// per-round incremental sessions, sequentially (the configuration whose
// runs are fully deterministic).
func incrementalCaps() Capabilities {
	caps := referenceCaps()
	caps.SolverMode = SolverIncremental
	caps.Workers = 1
	return caps
}

// TestIncrementalSolvesCoreBombs cracks a representative bomb slice with
// incremental sessions and replays each solving input; incremental
// models may differ from fresh ones, but they must still detonate.
func TestIncrementalSolvesCoreBombs(t *testing.T) {
	for _, name := range []string{
		"fig3_plain", "arglen", "stack", "array1", "jumptab", "time",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			out := crack(t, name, incrementalCaps())
			if out.Verdict != VerdictSolved {
				t.Fatalf("verdict = %v (rounds %d, incidents %v, detail %s)",
					out.Verdict, out.Rounds, out.Incidents, out.CrashDetail)
			}
			verify(t, name, out)
		})
	}
}

// TestIncrementalStatsPopulated checks the session counters flow into
// Outcome.Stats under SolverIncremental — and stay zero under
// SolverFresh.
func TestIncrementalStatsPopulated(t *testing.T) {
	out := crack(t, "array1", incrementalCaps())
	s := out.Stats
	if s.SolverSessions == 0 {
		t.Error("no sessions opened under SolverIncremental")
	}
	if s.IncrementalChecks == 0 {
		t.Error("no incremental checks recorded")
	}
	if s.GuardLiterals == 0 {
		t.Error("no guard literals recorded")
	}
	if s.IncrementalChecks > s.SolverQueries {
		t.Errorf("incremental checks %d exceed solver queries %d",
			s.IncrementalChecks, s.SolverQueries)
	}

	fresh := crack(t, "array1", referenceCaps())
	fs := fresh.Stats
	if fs.SolverSessions != 0 || fs.IncrementalChecks != 0 || fs.GuardLiterals != 0 || fs.LearnedClausesRetained != 0 {
		t.Errorf("fresh mode reported incremental work: %+v", fs)
	}
}

// TestIncrementalRepeatable runs the same incremental exploration twice
// and requires identical verdicts and solving inputs: at a fixed worker
// count an incremental run is a pure function of the seed.
func TestIncrementalRepeatable(t *testing.T) {
	a := crack(t, "jumptab", incrementalCaps())
	b := crack(t, "jumptab", incrementalCaps())
	if a.Verdict != b.Verdict {
		t.Fatalf("verdicts differ across identical runs: %v vs %v", a.Verdict, b.Verdict)
	}
	if inputKey(a.Input) != inputKey(b.Input) {
		t.Errorf("solving inputs differ across identical runs: %+v vs %+v", a.Input, b.Input)
	}
	if a.Rounds != b.Rounds {
		t.Errorf("round counts differ: %d vs %d", a.Rounds, b.Rounds)
	}
}
