// Package warmstore is a disk-backed store for solver knowledge that
// outlives a process: query verdicts (the persistent half of the solver
// query cache) and learned clauses (the persistent half of the portfolio
// clause exchange). A later run — or another concolicd replica sharing
// the directory — warm-starts from it instead of re-solving from cold.
//
// Layout: one directory holding an append-only JSONL log (`log.jsonl`,
// one record per Put) and a snapshot (`snapshot.jsonl`, the same record
// format, rewritten on Compact/Close). Open replays snapshot then log;
// a corrupt log tail (crash mid-append) truncates the replay at the
// first undecodable line instead of failing the open.
//
// Keys are opaque strings chosen by the caller. They must be stable
// across processes and JSON-safe: the solver layer uses hex-encoded
// sym.StableKey digests (intern-id CanonicalKeys are process-local and
// cannot name anything on disk).
//
// Statuses are stored as plain ints to keep this package below the
// solver in the dependency order; the solver layer owns the mapping.
package warmstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/sat"
)

// Stats counts store traffic since Open.
type Stats struct {
	Queries    int // query entries held
	ClauseKeys int // systems with pooled clauses
	Clauses    int // total pooled clauses
	Hits       int64
	Misses     int64
	Appends    int64 // records appended to the log this session
}

// QueryEntry is one persisted query verdict.
type QueryEntry struct {
	Key       string            `json:"k"`
	Status    int               `json:"s"`
	Conflicts int64             `json:"n,omitempty"`
	Model     map[string]uint64 `json:"m,omitempty"`
}

// record is one log/snapshot line. Exactly one of Q and C is set,
// selected by T ("q" or "c").
type record struct {
	T string      `json:"t"`
	Q *QueryEntry `json:"q,omitempty"`
	C *clauseRec  `json:"c,omitempty"`
}

type clauseRec struct {
	Key     string    `json:"k"`
	Clauses [][]int32 `json:"cl"`
}

// Store is a warm-start store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	log     *os.File
	logW    *bufio.Writer
	queries map[string]QueryEntry
	clauses map[string]*clausePool
	hits    int64
	misses  int64
	appends int64
}

type clausePool struct {
	list [][]sat.Lit
	seen map[string]bool
}

const (
	snapshotName = "snapshot.jsonl"
	logName      = "log.jsonl"
)

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("warmstore: %w", err)
	}
	st := &Store{
		dir:     dir,
		queries: make(map[string]QueryEntry),
		clauses: make(map[string]*clausePool),
	}
	// Snapshot first, then the log written since it.
	if err := st.replay(filepath.Join(dir, snapshotName)); err != nil {
		return nil, err
	}
	if err := st.replay(filepath.Join(dir, logName)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("warmstore: %w", err)
	}
	st.log = f
	st.logW = bufio.NewWriter(f)
	return st, nil
}

// replay loads one record file into memory. A missing file is fine; a
// corrupt line ends the replay of that file (torn tail tolerance).
func (st *Store) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if json.Unmarshal(line, &r) != nil {
			return nil // torn tail: keep what replayed so far
		}
		st.apply(r)
	}
	return nil
}

func (st *Store) apply(r record) {
	switch {
	case r.T == "q" && r.Q != nil:
		st.queries[r.Q.Key] = *r.Q
	case r.T == "c" && r.C != nil:
		p := st.pool(r.C.Key)
		for _, raw := range r.C.Clauses {
			lits := make([]sat.Lit, len(raw))
			for i, l := range raw {
				lits[i] = sat.Lit(l)
			}
			p.add(lits)
		}
	}
}

func (st *Store) pool(key string) *clausePool {
	p := st.clauses[key]
	if p == nil {
		p = &clausePool{seen: make(map[string]bool)}
		st.clauses[key] = p
	}
	return p
}

func (p *clausePool) add(lits []sat.Lit) bool {
	k := litsKey(lits)
	if p.seen[k] {
		return false
	}
	p.seen[k] = true
	p.list = append(p.list, lits)
	return true
}

func litsKey(lits []sat.Lit) string {
	b := make([]byte, 4*len(lits))
	for i, l := range lits {
		b[4*i] = byte(l)
		b[4*i+1] = byte(l >> 8)
		b[4*i+2] = byte(l >> 16)
		b[4*i+3] = byte(l >> 24)
	}
	return string(b)
}

func (st *Store) append(r record) {
	if st.logW == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	st.logW.Write(b)
	st.logW.WriteByte('\n')
	st.appends++
}

// LookupQuery returns the persisted verdict for key, if any. The model
// map is a copy.
func (st *Store) LookupQuery(key string) (QueryEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.queries[key]
	if !ok {
		st.misses++
		return QueryEntry{}, false
	}
	st.hits++
	if e.Model != nil {
		m := make(map[string]uint64, len(e.Model))
		for k, v := range e.Model {
			m[k] = v
		}
		e.Model = m
	}
	return e, true
}

// PutQuery persists a query verdict. An existing entry with the same
// status is kept as-is (any valid model serves); a status change — e.g.
// Unknown strengthened to a conclusive verdict — overwrites.
func (st *Store) PutQuery(e QueryEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if prev, ok := st.queries[e.Key]; ok && prev.Status == e.Status {
		return // already persisted; don't grow the log
	}
	st.queries[e.Key] = e
	st.append(record{T: "q", Q: &e})
}

// Clauses returns the pooled clauses for key (shared read-only slices).
func (st *Store) Clauses(key string) [][]sat.Lit {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.clauses[key]
	if p == nil || len(p.list) == 0 {
		st.misses++
		return nil
	}
	st.hits++
	out := make([][]sat.Lit, len(p.list))
	copy(out, p.list)
	return out
}

// PutClauses merges clauses into key's pool, persisting only the ones
// not already present.
func (st *Store) PutClauses(key string, clauses [][]sat.Lit) {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := st.pool(key)
	var fresh [][]int32
	for _, lits := range clauses {
		cp := append([]sat.Lit(nil), lits...)
		if p.add(cp) {
			raw := make([]int32, len(cp))
			for i, l := range cp {
				raw[i] = int32(l)
			}
			fresh = append(fresh, raw)
		}
	}
	if len(fresh) > 0 {
		st.append(record{T: "c", C: &clauseRec{Key: key, Clauses: fresh}})
	}
}

// Flush pushes buffered log appends to disk.
func (st *Store) Flush() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.flushLocked()
}

func (st *Store) flushLocked() error {
	if st.logW == nil {
		return nil
	}
	if err := st.logW.Flush(); err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	return st.log.Sync()
}

// Compact rewrites the snapshot from memory and truncates the log.
func (st *Store) Compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	tmp := filepath.Join(st.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range st.queries {
		e := e
		if err := enc.Encode(record{T: "q", Q: &e}); err != nil {
			f.Close()
			return fmt.Errorf("warmstore: %w", err)
		}
	}
	for key, p := range st.clauses {
		if len(p.list) == 0 {
			continue
		}
		cr := clauseRec{Key: key, Clauses: make([][]int32, len(p.list))}
		for i, lits := range p.list {
			raw := make([]int32, len(lits))
			for j, l := range lits {
				raw[j] = int32(l)
			}
			cr.Clauses[i] = raw
		}
		if err := enc.Encode(record{T: "c", C: &cr}); err != nil {
			f.Close()
			return fmt.Errorf("warmstore: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("warmstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("warmstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, snapshotName)); err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	// The snapshot covers everything: restart the log.
	if st.logW != nil {
		st.logW.Flush()
		st.log.Close()
	}
	if err := os.Truncate(filepath.Join(st.dir, logName), 0); err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	f, err = os.OpenFile(filepath.Join(st.dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("warmstore: %w", err)
	}
	st.log = f
	st.logW = bufio.NewWriter(f)
	return nil
}

// Close compacts and releases the store.
func (st *Store) Close() error {
	if st == nil {
		return nil
	}
	if err := st.Compact(); err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.logW != nil {
		st.logW.Flush()
	}
	if st.log != nil {
		err := st.log.Close()
		st.log, st.logW = nil, nil
		if err != nil {
			return fmt.Errorf("warmstore: %w", err)
		}
	}
	return nil
}

// Stats returns the store's current size and traffic counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Queries: len(st.queries),
		Hits:    st.hits,
		Misses:  st.misses,
		Appends: st.appends,
	}
	for _, p := range st.clauses {
		if len(p.list) > 0 {
			s.ClauseKeys++
			s.Clauses += len(p.list)
		}
	}
	return s
}
