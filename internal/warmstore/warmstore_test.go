package warmstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sat"
)

func lits(ls ...int32) []sat.Lit {
	out := make([]sat.Lit, len(ls))
	for i, l := range ls {
		out[i] = sat.Lit(l)
	}
	return out
}

// TestRoundTrip writes verdicts and clauses, reopens the directory, and
// checks everything reloads — through the log alone (no Compact), and
// again through the snapshot after a clean Close.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.PutQuery(QueryEntry{Key: "q1", Status: 1, Conflicts: 12,
		Model: map[string]uint64{"argv1_0": 0x35}})
	st.PutQuery(QueryEntry{Key: "q2", Status: 2, Conflicts: 400})
	st.PutClauses("sysA", [][]sat.Lit{lits(2, 5), lits(7)})
	st.PutClauses("sysA", [][]sat.Lit{lits(2, 5), lits(9, 11)}) // one dup
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reload via the append-only log (simulates a crash before Compact).
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st2.LookupQuery("q1")
	if !ok || e.Status != 1 || e.Model["argv1_0"] != 0x35 {
		t.Fatalf("q1 after log reload: %+v ok=%v", e, ok)
	}
	if e, ok := st2.LookupQuery("q2"); !ok || e.Status != 2 || e.Conflicts != 400 {
		t.Fatalf("q2 after log reload: %+v ok=%v", e, ok)
	}
	if cs := st2.Clauses("sysA"); len(cs) != 3 {
		t.Fatalf("sysA clauses after log reload: %d, want 3", len(cs))
	}
	if _, ok := st2.LookupQuery("absent"); ok {
		t.Fatal("phantom query entry")
	}
	s := st2.Stats()
	if s.Queries != 2 || s.ClauseKeys != 1 || s.Clauses != 3 || s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("stats after log reload: %+v", s)
	}
	if err := st2.Close(); err != nil { // compacts into the snapshot
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, logName)); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated by Close: %v size=%d", err, fi.Size())
	}

	// Reload via the snapshot.
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if e, ok := st3.LookupQuery("q1"); !ok || e.Status != 1 {
		t.Fatalf("q1 after snapshot reload: %+v ok=%v", e, ok)
	}
	if cs := st3.Clauses("sysA"); len(cs) != 3 {
		t.Fatalf("sysA clauses after snapshot reload: %d, want 3", len(cs))
	}
}

// TestTornTail corrupts the log tail and checks Open keeps the intact
// prefix instead of failing.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.PutQuery(QueryEntry{Key: "good", Status: 1})
	st.PutQuery(QueryEntry{Key: "alsogood", Status: 2})
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.log.Close() // abandon without Close: no snapshot

	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"q","q":{"k":"torn","s"`) // truncated mid-record
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer st2.Close()
	if _, ok := st2.LookupQuery("good"); !ok {
		t.Error("lost intact entry before the torn tail")
	}
	if _, ok := st2.LookupQuery("alsogood"); !ok {
		t.Error("lost second intact entry")
	}
	if _, ok := st2.LookupQuery("torn"); ok {
		t.Error("resurrected the torn record")
	}
}

// TestStatusStrengthening checks a same-status Put is a no-op for the
// log while a status change overwrites.
func TestStatusStrengthening(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.PutQuery(QueryEntry{Key: "q", Status: 3}) // unknown
	a0 := st.Stats().Appends
	st.PutQuery(QueryEntry{Key: "q", Status: 3})
	if st.Stats().Appends != a0 {
		t.Error("same-status Put grew the log")
	}
	st.PutQuery(QueryEntry{Key: "q", Status: 2}) // strengthened to unsat
	if e, _ := st.LookupQuery("q"); e.Status != 2 {
		t.Errorf("status not strengthened: %+v", e)
	}
	if st.Stats().Appends != a0+1 {
		t.Error("strengthening Put did not persist")
	}
}

// TestConcurrentStore hammers one store from many goroutines; under
// -race this is the data-race gate for the shared-replica scenario.
func TestConcurrentStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("q-%d-%d", w, i)
				st.PutQuery(QueryEntry{Key: key, Status: 1, Model: map[string]uint64{"x": uint64(i)}})
				if e, ok := st.LookupQuery(key); !ok || e.Model["x"] != uint64(i) {
					t.Errorf("lost own write %s", key)
					return
				}
				st.PutClauses(fmt.Sprintf("sys-%d", w%2), [][]sat.Lit{lits(int32(2*i + 2))})
				st.Clauses(fmt.Sprintf("sys-%d", (w+1)%2))
			}
		}(w)
	}
	wg.Wait()
	if s := st.Stats(); s.Queries != 800 {
		t.Errorf("queries = %d, want 800", s.Queries)
	}
}
