// Package mutate is a deterministic-seeded mutation fuzzer over input
// strings — the concrete half of the engine's hybrid concolic-fuzzing
// loop. Between concolic generations the engine breeds mutants of
// inputs that previously found new coverage (solved models included);
// mutants that cover new edges are promoted back into the frontier as
// seeds, costing zero solver queries.
//
// Everything is a pure function of the seed and the arguments: the
// generator is a splitmix64 stream, there is no global state, and no
// wall clock — so a fixed (seed, corpus) always yields the same mutant
// stream, which is what keeps coverage-guided explorations byte-identical
// across worker counts and repeatable in tests (FuzzMutateDeterminism).
package mutate

// Mutator derives mutants from a deterministic random stream.
type Mutator struct {
	state uint64
}

// New returns a mutator whose stream is fully determined by seed.
func New(seed int64) *Mutator {
	return &Mutator{state: uint64(seed)}
}

// Uint64 advances the splitmix64 stream.
func (m *Mutator) Uint64() uint64 {
	m.state += 0x9e3779b97f4a7c15
	z := m.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n); n must be positive.
func (m *Mutator) Intn(n int) int {
	return int(m.Uint64() % uint64(n))
}

// interesting holds the boundary and format bytes AFL-style fuzzers
// splice in: arithmetic edges, digits, letter-case anchors, sign and
// separator characters — the values small-binary parsers branch on.
var interesting = []byte{
	0x01, 0x7f, 0x80, 0xff, '0', '1', '9', 'A', 'Z', 'a', 'z', ' ', '-', '+', '.', '/',
}

// Mutation operator tags, in stream-stable order: the operator picked
// for a given stream position must never change, or every seed's mutant
// stream would shift between builds.
const (
	opBitflip = iota
	opByteset
	opArith
	opInteresting
	opInsert
	opDelete
	opSplice
	opHavoc
	opCount
)

// Mutate derives one mutant of s. corpus provides splice partners (may
// be empty); maxLen > 0 caps the mutant's length. The result never
// contains a NUL byte — inputs are C strings in the guest, where an
// embedded NUL would silently truncate and alias another input.
func (m *Mutator) Mutate(s string, corpus []string, maxLen int) string {
	out := m.apply(m.Intn(opCount), []byte(s), corpus, maxLen)
	// Havoc stacking may still produce an empty or NUL-carrying mutant;
	// normalize once at the end so every operator stays simple.
	for i := range out {
		if out[i] == 0 {
			out[i] = 1
		}
	}
	if len(out) == 0 {
		out = []byte{interesting[m.Intn(len(interesting))]}
	}
	if maxLen > 0 && len(out) > maxLen {
		out = out[:maxLen]
	}
	return string(out)
}

func (m *Mutator) apply(op int, b []byte, corpus []string, maxLen int) []byte {
	if len(b) == 0 && op != opInsert && op != opSplice {
		op = opInsert
	}
	switch op {
	case opBitflip:
		i := m.Intn(len(b))
		b[i] ^= 1 << uint(m.Intn(8))
	case opByteset:
		b[m.Intn(len(b))] = byte(1 + m.Intn(255))
	case opArith:
		delta := byte(1 + m.Intn(16))
		i := m.Intn(len(b))
		if m.Intn(2) == 0 {
			b[i] += delta
		} else {
			b[i] -= delta
		}
	case opInteresting:
		b[m.Intn(len(b))] = interesting[m.Intn(len(interesting))]
	case opInsert:
		if maxLen > 0 && len(b) >= maxLen {
			return m.apply(opByteset, b, corpus, maxLen)
		}
		i := m.Intn(len(b) + 1)
		c := interesting[m.Intn(len(interesting))]
		b = append(b, 0)
		copy(b[i+1:], b[i:])
		b[i] = c
	case opDelete:
		if len(b) <= 1 {
			return m.apply(opByteset, b, corpus, maxLen)
		}
		i := m.Intn(len(b))
		b = append(b[:i], b[i+1:]...)
	case opSplice:
		if len(corpus) == 0 {
			return m.apply(opHavoc, b, corpus, maxLen)
		}
		partner := corpus[m.Intn(len(corpus))]
		cut := m.Intn(len(b) + 1)
		pcut := 0
		if len(partner) > 0 {
			pcut = m.Intn(len(partner) + 1)
		}
		b = append(b[:cut], partner[pcut:]...)
	case opHavoc:
		// Stack 2-8 basic operators; splice and havoc are excluded so the
		// recursion is bounded by construction.
		n := 2 + m.Intn(7)
		for i := 0; i < n; i++ {
			b = m.apply(m.Intn(opSplice), b, corpus, maxLen)
		}
	}
	return b
}
