package mutate

import "testing"

func TestSameSeedSameStream(t *testing.T) {
	a, b := New(42), New(42)
	corpus := []string{"abc", "0000", "x"}
	s1, s2 := "seed", "seed"
	for i := 0; i < 256; i++ {
		m1 := a.Mutate(s1, corpus, 24)
		m2 := b.Mutate(s2, corpus, 24)
		if m1 != m2 {
			t.Fatalf("step %d: streams diverged: %q vs %q", i, m1, m2)
		}
		s1, s2 = m1, m2
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Mutate("seedseedseed", nil, 24) == b.Mutate("seedseedseed", nil, 24) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMutateInvariants(t *testing.T) {
	m := New(7)
	corpus := []string{"partner-string", ""}
	s := ""
	for i := 0; i < 2048; i++ {
		s = m.Mutate(s, corpus, 16)
		if len(s) == 0 {
			t.Fatal("empty mutant")
		}
		if len(s) > 16 {
			t.Fatalf("mutant exceeds maxLen: %d bytes", len(s))
		}
		for j := 0; j < len(s); j++ {
			if s[j] == 0 {
				t.Fatalf("mutant %q carries a NUL byte", s)
			}
		}
	}
}

func TestMutateUncapped(t *testing.T) {
	m := New(9)
	s := "ab"
	grew := false
	for i := 0; i < 512; i++ {
		s = m.Mutate(s, nil, 0) // maxLen 0: unbounded
		if len(s) > 2 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("insert operator never grew the input")
	}
}

// FuzzMutateDeterminism is the ci smoke: for any seed and inputs, two
// mutators with the same seed must emit the same mutant stream, and
// every mutant must respect the NUL-free and length invariants the
// engine relies on.
func FuzzMutateDeterminism(f *testing.F) {
	f.Add(int64(1), "seed", "partner", uint8(24))
	f.Add(int64(-9), "", "", uint8(1))
	f.Add(int64(1<<40), "factor26", "0000000", uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, s, partner string, maxLen uint8) {
		corpus := []string{partner}
		a, b := New(seed), New(seed)
		cap := int(maxLen)
		x, y := s, s
		for i := 0; i < 32; i++ {
			x = a.Mutate(x, corpus, cap)
			y = b.Mutate(y, corpus, cap)
			if x != y {
				t.Fatalf("step %d: same seed diverged: %q vs %q", i, x, y)
			}
			if len(x) == 0 {
				t.Fatal("empty mutant")
			}
			if cap > 0 && len(x) > cap {
				t.Fatalf("mutant %q exceeds cap %d", x, cap)
			}
			for j := 0; j < len(x); j++ {
				if x[j] == 0 {
					t.Fatalf("mutant %q carries a NUL byte", x)
				}
			}
		}
	})
}
