package solver

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/exchange"
	"repro/internal/sym"
	"repro/internal/warmstore"
)

// The solver stress suite: constraint-problem bombs modeled on the
// "Benchmarking Symbolic Execution Using Constraint Problems" angle —
// integer factorization through the bitblasted multiplier, the
// classically CDCL-hard family. Sat instances factor a semiprime
// (a·b = N with 1 < a ≤ b, product at double width so it cannot wrap);
// unsat instances "factor" a prime, forcing a full refutation.
//
// Budgets are chosen from measured per-config conflict counts so that
// the default configuration exhausts on some instances while at least
// one diversified rival cracks them: the portfolio's win under a fixed
// budget is coverage, not raw speed.
type stressInstance struct {
	name    string
	w       int    // factor width; product is 2w wide
	n       uint64 // the number to factor
	budget  int64  // MaxConflicts per attempt
	wantSat bool   // verdict when solved conclusively
}

func stressSuite() []stressInstance {
	return []stressInstance{
		{"factor-semiprime-24", 24, 16768681, 6_000, true}, // default needs ~12k conflicts, a rival ~4k
		{"factor-prime-18", 18, 262139, 4_000, false},
		{"factor-prime-20", 20, 1048573, 4_000, false},
		{"factor-semiprime-26", 26, 67239919, 10_000, true},
	}
}

// stressFactorSystem builds the constraint system for one instance.
func stressFactorSystem(w int, n uint64) []sym.Expr {
	a := sym.NewVar("a", w)
	b := sym.NewVar("b", w)
	one := sym.NewConst(1, w)
	prod := sym.NewBin(sym.OpMul, sym.NewZExt(a, 2*w), sym.NewZExt(b, 2*w))
	return []sym.Expr{
		sym.NewBin(sym.OpEq, prod, sym.NewConst(n, 2*w)),
		sym.NewBin(sym.OpUlt, one, a),
		sym.NewBin(sym.OpUlt, one, b),
		sym.NewBin(sym.OpUle, a, b),
	}
}

// runStressIncremental decides every instance through a fresh Session
// each (the -solver=incremental discipline: one persistent instance per
// system, default configuration). Returns conclusive verdict count and
// the verdicts.
func runStressIncremental(t testing.TB, suite []stressInstance) (int, []Status) {
	solved := 0
	verdicts := make([]Status, len(suite))
	for i, ins := range suite {
		cs := stressFactorSystem(ins.w, ins.n)
		sess := NewSession(context.Background(), SessionOptions{
			Options: Options{MaxConflicts: ins.budget},
		})
		sess.Assert(cs[1:]...)
		r, err := sess.Check(cs[0])
		if err != nil {
			t.Fatalf("%s: %v", ins.name, err)
		}
		verdicts[i] = r.Status
		if r.Status == StatusSat || r.Status == StatusUnsat {
			solved++
			checkStressVerdict(t, ins, r)
		}
	}
	return solved, verdicts
}

// runStressPortfolio decides every instance through a Portfolio with a
// shared exchange (and optional warm-start store).
func runStressPortfolio(t testing.TB, suite []stressInstance, warm *warmstore.Store) (int, []Status, PortfolioStats) {
	solved := 0
	verdicts := make([]Status, len(suite))
	var agg PortfolioStats
	ex := exchange.New()
	for i, ins := range suite {
		cs := stressFactorSystem(ins.w, ins.n)
		pf := NewPortfolio(context.Background(), PortfolioOptions{
			Options:  Options{MaxConflicts: ins.budget},
			Exchange: ex,
			Warm:     warm,
		})
		pf.Assert(cs[1:]...)
		r, err := pf.CheckSeeded(cs[0], int64(1000+i))
		if err != nil {
			t.Fatalf("%s: %v", ins.name, err)
		}
		verdicts[i] = r.Status
		if r.Status == StatusSat || r.Status == StatusUnsat {
			solved++
			checkStressVerdict(t, ins, r)
		}
		st := pf.Stats()
		agg.Races += st.Races
		agg.WarmQueryHits += st.WarmQueryHits
		agg.ClausesShared += st.ClausesShared
		agg.ClausesImported += st.ClausesImported
	}
	return solved, verdicts, agg
}

func checkStressVerdict(t testing.TB, ins stressInstance, r Result) {
	wantStatus := StatusUnsat
	if ins.wantSat {
		wantStatus = StatusSat
	}
	if r.Status != wantStatus {
		t.Fatalf("%s: verdict %v, want %v", ins.name, r.Status, wantStatus)
	}
	if r.Status == StatusSat {
		for j, c := range stressFactorSystem(ins.w, ins.n) {
			if sym.Eval(c, r.Model) != 1 {
				t.Fatalf("%s: model violates constraint %d", ins.name, j)
			}
		}
	}
}

// TestStressSuiteConsistency runs the suite under both modes and checks
// conclusive verdicts always agree and the portfolio never solves fewer
// instances than the incremental baseline (worker 0 replicates the
// default configuration, so conclusiveness can only be gained).
func TestStressSuiteConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite in -short mode")
	}
	suite := stressSuite()[:3] // the cheap instances
	incSolved, incV := runStressIncremental(t, suite)
	pfSolved, pfV, _ := runStressPortfolio(t, suite, nil)
	for i := range suite {
		iConc := incV[i] == StatusSat || incV[i] == StatusUnsat
		pConc := pfV[i] == StatusSat || pfV[i] == StatusUnsat
		if iConc && pConc && incV[i] != pfV[i] {
			t.Fatalf("%s: incremental %v, portfolio %v", suite[i].name, incV[i], pfV[i])
		}
	}
	if pfSolved < incSolved {
		t.Fatalf("portfolio solved %d < incremental %d", pfSolved, incSolved)
	}
}

// BenchmarkStressIncremental and BenchmarkStressPortfolio time the
// budget-bound stress suite under both modes; the portfolio's figure of
// merit is the solved count reported alongside wall time.
func BenchmarkStressIncremental(b *testing.B) {
	suite := stressSuite()
	solved := 0
	for i := 0; i < b.N; i++ {
		solved, _ = runStressIncremental(b, suite)
	}
	b.ReportMetric(float64(solved), "solved")
}

func BenchmarkStressPortfolio(b *testing.B) {
	suite := stressSuite()
	solved := 0
	for i := 0; i < b.N; i++ {
		solved, _, _ = runStressPortfolio(b, suite, nil)
	}
	b.ReportMetric(float64(solved), "solved")
}

// BenchmarkRoundPortfolio is the portfolio counterpart of
// BenchmarkRoundFresh / BenchmarkRoundIncremental.
func BenchmarkRoundPortfolio(b *testing.B) {
	cs := benchChain(benchRoundQueries)
	opts := Options{MaxConflicts: 1_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pf := NewPortfolio(context.Background(), PortfolioOptions{
			Options: opts, Exchange: exchange.New(),
		})
		for j, c := range cs {
			r, err := pf.Check(sym.NewBoolNot(c))
			if err != nil {
				b.Fatal(err)
			}
			if r.Status == StatusUnknown {
				b.Fatalf("query %d unknown", j)
			}
			pf.Assert(c)
		}
	}
	b.ReportMetric(float64(b.N*benchRoundQueries)/b.Elapsed().Seconds(), "queries/s")
}

// bench6 is the trajectory entry emitted by TestBench6Emit.
type bench6 struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	RoundFreshQPS       float64 `json:"round_fresh_qps"`
	RoundIncrementalQPS float64 `json:"round_incremental_qps"`
	RoundPortfolioQPS   float64 `json:"round_portfolio_qps"`

	StressInstances          int     `json:"stress_instances"`
	StressIncrementalSolved  int     `json:"stress_incremental_solved"`
	StressPortfolioSolved    int     `json:"stress_portfolio_solved"`
	StressIncrementalSeconds float64 `json:"stress_incremental_seconds"`
	StressPortfolioSeconds   float64 `json:"stress_portfolio_seconds"`

	WarmColdSeconds float64 `json:"warm_cold_seconds"`
	WarmWarmSeconds float64 `json:"warm_warm_seconds"`
	WarmQueryHits   int     `json:"warm_query_hits"`
	ClausesShared   int64   `json:"clauses_shared"`
}

// TestBench6Emit measures the PR's trajectory numbers and writes them to
// the file named by BENCH6_OUT. Gated on the environment variable so
// ordinary test runs never touch the working tree (make bench sets it).
func TestBench6Emit(t *testing.T) {
	out := os.Getenv("BENCH6_OUT")
	if out == "" {
		t.Skip("BENCH6_OUT not set")
	}
	var b6 bench6
	b6.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Round benchmark: one engine round (6 negation queries over a
	// shared prefix), fresh vs incremental vs portfolio.
	cs := benchChain(benchRoundQueries)
	opts := Options{MaxConflicts: 1_000_000}
	const rounds = 3
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for j, c := range cs {
			system := append(append([]sym.Expr{}, cs[:j]...), sym.NewBoolNot(c))
			if _, err := SolveContext(context.Background(), system, opts); err != nil {
				t.Fatal(err)
			}
		}
	}
	b6.RoundFreshQPS = rounds * benchRoundQueries / time.Since(start).Seconds()

	start = time.Now()
	for r := 0; r < rounds; r++ {
		sess := NewSession(context.Background(), SessionOptions{Options: opts})
		for _, c := range cs {
			if _, err := sess.Check(sym.NewBoolNot(c)); err != nil {
				t.Fatal(err)
			}
			sess.Assert(c)
		}
	}
	b6.RoundIncrementalQPS = rounds * benchRoundQueries / time.Since(start).Seconds()

	start = time.Now()
	for r := 0; r < rounds; r++ {
		pf := NewPortfolio(context.Background(), PortfolioOptions{Options: opts, Exchange: exchange.New()})
		for _, c := range cs {
			if _, err := pf.Check(sym.NewBoolNot(c)); err != nil {
				t.Fatal(err)
			}
			pf.Assert(c)
		}
	}
	b6.RoundPortfolioQPS = rounds * benchRoundQueries / time.Since(start).Seconds()

	// Stress suite: solved-under-budget coverage and wall time.
	suite := stressSuite()
	b6.StressInstances = len(suite)
	start = time.Now()
	b6.StressIncrementalSolved, _ = runStressIncremental(t, suite)
	b6.StressIncrementalSeconds = time.Since(start).Seconds()
	start = time.Now()
	var agg PortfolioStats
	b6.StressPortfolioSolved, _, agg = runStressPortfolio(t, suite, nil)
	b6.StressPortfolioSeconds = time.Since(start).Seconds()
	b6.ClausesShared = agg.ClausesShared
	if b6.StressPortfolioSolved < b6.StressIncrementalSolved {
		t.Fatalf("portfolio solved %d < incremental %d",
			b6.StressPortfolioSolved, b6.StressIncrementalSolved)
	}

	// Warm start: the same portfolio suite cold, then again from the
	// store a second process would load.
	dir := t.TempDir()
	w1, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	runStressPortfolio(t, suite, w1)
	b6.WarmColdSeconds = time.Since(start).Seconds()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	start = time.Now()
	_, _, warmAgg := runStressPortfolio(t, suite, w2)
	b6.WarmWarmSeconds = time.Since(start).Seconds()
	b6.WarmQueryHits = warmAgg.WarmQueryHits
	if b6.WarmWarmSeconds >= b6.WarmColdSeconds {
		t.Errorf("warm run (%.3fs) not faster than cold (%.3fs)",
			b6.WarmWarmSeconds, b6.WarmColdSeconds)
	}

	data, err := json.MarshalIndent(b6, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_6 -> %s\n%s", out, data)
}
