package solver

import (
	"context"
	"strconv"
	"time"

	"repro/internal/bitblast"
	"repro/internal/sat"
	"repro/internal/sym"
)

// SessionOptions configures an incremental Session.
type SessionOptions struct {
	// Options carries the per-Check budgets, FP mode, seed and random
	// seed; MaxConflicts and Timeout are charged per Check, not over the
	// session's lifetime.
	Options
	// Cache, when non-nil, is consulted before and updated after each
	// Check. Incremental raw models depend on the session's history (the
	// solver carries learned clauses, activities and saved phases across
	// Checks), not just on the constraint slice, so session entries live
	// under their own key namespace and a shared Cache is deterministic
	// only when sessions use it from a single goroutine in a fixed
	// order — which is why the engine wires its cache into sessions only
	// for sequential exploration.
	Cache *Cache
}

// SessionStats is the work profile of one Session.
type SessionStats struct {
	// Asserts counts prefix constraints added to the session.
	Asserts int
	// Checks counts Check calls, however they were decided.
	Checks int
	// IncrementalChecks counts Checks decided on the persistent SAT
	// instance (as opposed to const-false shortcuts, float routing,
	// cache hits, or overflow bailouts).
	IncrementalChecks int
	// GuardLiterals counts guard literals allocated for Checks.
	GuardLiterals int
	// LearnedRetained sums, over incremental Checks after the first, the
	// learned clauses alive on the instance when the Check started — the
	// reuse an equivalent fresh solver would have thrown away.
	LearnedRetained int64
	// CacheHits counts Checks answered from the session cache.
	CacheHits int
	// Conflicts sums SAT conflicts across incremental Checks.
	Conflicts int64
}

// Session is an incremental solving context over one growing constraint
// prefix. Assert extends the prefix; Check decides prefix ∧ negated
// without disturbing the prefix, encoding the negation once behind a
// fresh guard literal, solving under the assumption [g], and retiring
// the guard with a permanent ~g afterwards. The SAT instance, the
// Tseitin circuit and the structural gate cache persist across Checks,
// so a round's negation queries — which share the whole path prefix —
// skip the per-query re-blasting and re-search that a fresh Solve pays.
//
// Verdict semantics match SolveContext query by query: constant-false
// shortcut first, then float routing to the stochastic search, then the
// bitvector path; gate-budget overflow is sticky and reports Unknown.
// Models may legitimately differ from fresh solving (both satisfy the
// system) because the incremental search starts from retained state.
//
// A Session is not safe for concurrent use.
type Session struct {
	ctx       context.Context
	opts      Options
	cache     *Cache
	interrupt func() bool

	sat *sat.Solver
	enc *bitblast.Encoder

	prefix []sym.Expr
	system []sym.Expr // scratch: prefix + negated

	constFalse bool // some prefix constraint is literally false
	float      bool // some prefix constraint bears float operators
	overflow   bool // encoder tripped its gate budget

	stats SessionStats
}

// NewSession opens an incremental session. ctx cancellation makes
// in-flight and subsequent Checks give up with StatusUnknown, exactly
// like SolveContext.
func NewSession(ctx context.Context, opts SessionOptions) *Session {
	applyDefaults(&opts.Options)
	if ctx == nil {
		ctx = context.Background()
	}
	s := sat.New()
	return &Session{
		ctx:   ctx,
		opts:  opts.Options,
		cache: opts.Cache,
		sat:   s,
		enc:   bitblast.New(s),
	}
}

// SetInterrupt installs an extra cancellation probe consulted alongside
// the session context during Checks, so a portfolio race can stop this
// session's in-flight query the moment a rival worker answers. An
// interrupted Check reports StatusUnknown and, like a deadline timeout,
// is never cached. A nil probe removes it.
func (s *Session) SetInterrupt(probe func() bool) { s.interrupt = probe }

func (s *Session) interrupted() bool {
	return s.ctx.Err() != nil || (s.interrupt != nil && s.interrupt())
}

// Assert appends constraints to the session's path prefix. Each is
// encoded once, permanently; constraints already implied by earlier
// Checks' circuits reuse their gates through the structural cache.
// Errors are absorbed into the session verdict state (constant-false,
// float routing, budget overflow) the same way SolveContext folds them
// into per-query verdicts.
func (s *Session) Assert(constraints ...sym.Expr) {
	for _, c := range constraints {
		if c == nil {
			continue
		}
		s.prefix = append(s.prefix, c)
		s.stats.Asserts++
		if k, ok := c.(*sym.Const); ok && k.V == 0 {
			s.constFalse = true
		}
		if s.constFalse || s.float || s.overflow {
			continue // SAT instance no longer consulted or usable
		}
		if sym.HasFloat(c) {
			s.float = true
			continue
		}
		if err := s.enc.Assert(c); err != nil {
			switch err {
			case bitblast.ErrBudget:
				s.overflow = true
			case bitblast.ErrFloat:
				s.float = true
			default:
				// Malformed constraint (wrong width); treat the prefix
				// as unencodable rather than panicking mid-round.
				s.overflow = true
			}
		}
	}
}

// Prefix returns the constraints asserted so far (shared slice; do not
// mutate).
func (s *Session) Prefix() []sym.Expr { return s.prefix }

// Stats returns the session work profile so far.
func (s *Session) Stats() SessionStats { return s.stats }

// Check decides prefix ∧ negated under the session options.
func (s *Session) Check(negated sym.Expr) (Result, error) {
	return s.CheckSeeded(negated, s.opts.RandSeed)
}

// CheckSeeded is Check with a per-query random seed for the stochastic
// float search, mirroring the per-query seeds the engine derives in
// fresh mode so float verdicts agree between the two paths.
func (s *Session) CheckSeeded(negated sym.Expr, randSeed int64) (Result, error) {
	if negated == nil {
		return Result{}, ErrNoConstraints
	}
	s.stats.Checks++
	opts := s.opts
	opts.RandSeed = randSeed

	// Mirror SolveContext's routing order exactly: constant-false
	// shortcut, then float, then the bitvector path.
	if s.constFalse {
		return Result{Status: StatusUnsat}, nil
	}
	if k, ok := negated.(*sym.Const); ok && k.V == 0 {
		return Result{Status: StatusUnsat}, nil
	}
	system := append(append(s.system[:0], s.prefix...), negated)
	s.system = system
	if s.float || sym.HasFloat(negated) {
		return solveFloat(s.ctx, system, opts), nil
	}

	var key string
	if s.cache != nil {
		// Namespaced apart from fresh-mode entries: an incremental raw
		// model is not a pure function of the constraint slice.
		key = sym.CanonicalKey(system) + "|" + strconv.FormatInt(opts.MaxConflicts, 10) + "|inc"
		if res, ok := s.cache.lookup(key); ok {
			s.stats.CacheHits++
			return finishBV(res, system, opts), nil
		}
	}

	if s.overflow {
		return Result{Status: StatusUnknown}, nil
	}

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	if d, ok := s.ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	expired := func() bool {
		return s.interrupted() || (!deadline.IsZero() && time.Now().After(deadline))
	}
	if expired() {
		return Result{Status: StatusUnknown}, nil
	}

	g, err := s.enc.AssertGuarded(negated)
	if err != nil {
		switch err {
		case bitblast.ErrBudget:
			s.overflow = true
			return Result{Status: StatusUnknown}, nil
		case bitblast.ErrFloat:
			return Result{Status: StatusFloatUnsupported}, nil
		default:
			return Result{}, err
		}
	}
	s.stats.GuardLiterals++
	if s.stats.IncrementalChecks > 0 {
		s.stats.LearnedRetained += s.sat.Stats().LearnedLive()
	}
	s.stats.IncrementalChecks++

	before := s.sat.Stats().Conflicts
	st := s.sat.SolveAssuming([]sat.Lit{g}, opts.MaxConflicts, deadline, s.interrupted)
	conflicts := s.sat.Stats().Conflicts - before
	s.stats.Conflicts += conflicts

	var res cachedResult
	timedOut := false
	switch st {
	case sat.Sat:
		res = cachedResult{status: StatusSat, conflicts: conflicts, model: s.enc.Model()}
	case sat.Unsat:
		res = cachedResult{status: StatusUnsat, conflicts: conflicts}
	default:
		timedOut = expired()
		res = cachedResult{status: StatusUnknown, conflicts: conflicts}
	}
	// Retire the guard so the negation never constrains later queries.
	s.sat.AddClause(g.Not())

	if s.cache != nil && !timedOut {
		s.cache.store(key, cachedResult{status: res.status, conflicts: res.conflicts, model: cloneEnv(res.model)})
	}
	return finishBV(res, system, opts), nil
}
