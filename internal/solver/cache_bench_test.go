package solver

import (
	"testing"

	"repro/internal/sym"
)

// benchSystem builds a chain of byte-equality constraints resembling the
// negation systems the engine submits (prefix of branch conditions plus
// one negated condition).
func benchSystem(n int) []sym.Expr {
	sys := make([]sym.Expr, 0, n)
	for i := 0; i < n; i++ {
		v := sym.NewVar("env!argv1!"+string(rune('a'+i%26)), 8)
		sys = append(sys, sym.NewBin(sym.OpEq, v, sym.NewConst(uint64(i%251), 8)))
	}
	return sys
}

func BenchmarkSolveUncached(b *testing.B) {
	sys := benchSystem(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Solve(sys, Options{})
		if err != nil || r.Status != StatusSat {
			b.Fatalf("status %v err %v", r.Status, err)
		}
	}
}

func BenchmarkCacheSolveHit(b *testing.B) {
	c := NewCache(16)
	sys := benchSystem(24)
	if _, err := c.Solve(sys, Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Solve(sys, Options{})
		if err != nil || r.Status != StatusSat {
			b.Fatalf("status %v err %v", r.Status, err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Hits == 0 {
		b.Fatal("benchmark never hit the cache")
	}
}

// BenchmarkCanonicalKey isolates the hashing cost the cache adds to every
// lookup.
func BenchmarkCanonicalKey(b *testing.B) {
	sys := benchSystem(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sym.CanonicalKey(sys) == "" {
			b.Fatal("empty key")
		}
	}
}
