// Package solver is the constraint-solving front end of the engine: it
// routes pure bitvector systems to the bit-blasting SAT backend and
// float-bearing systems to a stochastic local search, under explicit
// budgets whose exhaustion surfaces as the paper's "E" (abnormal exit)
// outcome.
//
// The local-search FP solver substitutes for Z3's floating-point theory:
// it proposes assignments, evaluates the constraint system concretely
// through sym.Eval (which implements exact IEEE-754 semantics), and hill
// climbs on a distance objective. This is the same observable behaviour —
// solve small FP systems, fail on hard ones — with a documented different
// mechanism (DESIGN.md, substitution D4).
package solver

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/bitblast"
	"repro/internal/sat"
	"repro/internal/sym"
)

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	StatusSat Status = iota + 1
	StatusUnsat
	StatusUnknown // budget exhausted
	StatusFloatUnsupported
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	case StatusFloatUnsupported:
		return "float-unsupported"
	}
	return "invalid"
}

// FPMode selects how float constraints are handled.
type FPMode int

// FP handling modes.
const (
	FPNone   FPMode = iota + 1 // reject (models tools without FP theory)
	FPSearch                   // stochastic local search
)

// Options configures a Solve call.
type Options struct {
	// MaxConflicts bounds the SAT search (0 = default).
	MaxConflicts int64
	// FP selects float handling (zero value = FPNone).
	FP FPMode
	// FPIterations bounds the local search (0 = default).
	FPIterations int
	// Timeout bounds the wall-clock time of one query (0 = none); it
	// models the per-task analysis timeout of the paper's experiments.
	Timeout time.Duration
	// Seed provides starting values for local search and model completion;
	// typically the current concrete input.
	Seed map[string]uint64
	// RandSeed makes the local search deterministic.
	RandSeed int64
}

// Default budgets.
const (
	DefaultMaxConflicts = 200_000
	DefaultFPIterations = 60_000
)

// Result is a solver outcome.
type Result struct {
	Status Status
	// Model maps variable names to values when Status is StatusSat.
	Model map[string]uint64
	// Conflicts and Props report SAT effort (bitvector path only).
	Conflicts int64
}

// ErrNoConstraints is returned by Solve when given an empty system.
var ErrNoConstraints = errors.New("solver: empty constraint system")

// Solve is SolveContext with a background context, kept for callers
// with no cancellation to propagate.
func Solve(constraints []sym.Expr, opts Options) (Result, error) {
	return SolveContext(context.Background(), constraints, opts)
}

// SolveContext decides the conjunction of the given width-1
// constraints. It is the canonical one-shot entry point (Session is
// the stateful counterpart). A cancelled or deadline-expired context
// makes the query give up with StatusUnknown mid-search instead of
// running to its conflict or wall-clock budget; the context deadline
// tightens (never loosens) opts.Timeout.
func SolveContext(ctx context.Context, constraints []sym.Expr, opts Options) (Result, error) {
	if len(constraints) == 0 {
		return Result{}, ErrNoConstraints
	}
	applyDefaults(&opts)

	// Constant-false shortcut.
	if hasConstFalse(constraints) {
		return Result{Status: StatusUnsat}, nil
	}

	if sym.HasFloat(constraints...) {
		return solveFloat(ctx, constraints, opts), nil
	}

	st, model, conflicts, _, err := solveBV(ctx, constraints, opts)
	if err != nil {
		return Result{}, err
	}
	if st == StatusSat {
		completeModel(model, constraints, opts.Seed)
		minimizeModel(model, constraints, opts.Seed)
		return Result{Status: StatusSat, Model: model, Conflicts: conflicts}, nil
	}
	return Result{Status: st, Conflicts: conflicts}, nil
}

func applyDefaults(opts *Options) {
	if opts.MaxConflicts <= 0 {
		opts.MaxConflicts = DefaultMaxConflicts
	}
	if opts.FPIterations <= 0 {
		opts.FPIterations = DefaultFPIterations
	}
	if opts.FP == 0 {
		opts.FP = FPNone
	}
}

func hasConstFalse(constraints []sym.Expr) bool {
	for _, c := range constraints {
		if k, ok := c.(*sym.Const); ok && k.V == 0 {
			return true
		}
	}
	return false
}

// solveFloat handles a float-bearing system according to the FP mode.
func solveFloat(ctx context.Context, constraints []sym.Expr, opts Options) Result {
	if opts.FP == FPNone {
		// Even without a floating-point theory, "v == c" (or an
		// ordering) against an otherwise-unconstrained variable is
		// trivially assignable — which is exactly how simulated
		// external-call summaries produce the paper's false positives.
		if model, ok := trivialFPAssign(constraints, opts.Seed); ok {
			return Result{Status: StatusSat, Model: model}
		}
		return Result{Status: StatusFloatUnsupported}
	}
	return fpSearch(ctx, constraints, opts)
}

// solveBV decides a float-free system by bit-blasting. The returned model
// is raw — straight from the SAT assignment, before seed completion and
// minimization — so its value depends only on the constraint slice and
// the conflict budget, never on the caller's seed. timedOut reports that
// an Unknown verdict was (or may have been) caused by the wall-clock
// deadline or by context cancellation rather than the deterministic
// conflict budget.
func solveBV(ctx context.Context, constraints []sym.Expr, opts Options) (st Status, model map[string]uint64, conflicts int64, timedOut bool, err error) {
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	expired := func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}
	s := sat.New()
	enc := bitblast.New(s)
	for _, c := range constraints {
		if expired() {
			return StatusUnknown, nil, 0, true, nil
		}
		if err := enc.Assert(c); err != nil {
			if errors.Is(err, bitblast.ErrFloat) {
				return StatusFloatUnsupported, nil, 0, false, nil
			}
			if errors.Is(err, bitblast.ErrBudget) {
				return StatusUnknown, nil, 0, false, nil
			}
			return 0, nil, 0, false, err
		}
	}
	res := s.SolveInterruptible(opts.MaxConflicts, deadline, func() bool { return ctx.Err() != nil })
	conflicts = s.Stats().Conflicts
	switch res {
	case sat.Sat:
		return StatusSat, enc.Model(), conflicts, false, nil
	case sat.Unsat:
		return StatusUnsat, nil, conflicts, false, nil
	default:
		return StatusUnknown, nil, conflicts, expired(), nil
	}
}

// minimizeModel greedily resets variables to their seed values where the
// constraint system stays satisfied, removing solver-chosen junk from
// generated inputs (deterministic: variables in sorted order).
func minimizeModel(model map[string]uint64, constraints []sym.Expr, seed map[string]uint64) {
	if len(seed) == 0 {
		return
	}
	satisfied := func() bool {
		for _, c := range constraints {
			if sym.Eval(c, model) != 1 {
				return false
			}
		}
		return true
	}
	if !satisfied() {
		return // model completion can violate unrelated seeds; keep as is
	}
	for _, name := range sym.Vars(constraints...) {
		sv, ok := seed[name]
		if !ok || model[name] == sv {
			continue
		}
		old := model[name]
		model[name] = sv
		if !satisfied() {
			model[name] = old
		}
	}
}

// completeModel fills variables missing from the model with seed values.
func completeModel(model map[string]uint64, constraints []sym.Expr, seed map[string]uint64) {
	for name := range sym.VarWidths(constraints...) {
		if _, ok := model[name]; !ok {
			model[name] = seed[name]
		}
	}
}

// trivialFPAssign satisfies float comparisons whose one side is a bare
// variable by direct bit assignment, starting from the seed environment.
// It succeeds only when the whole system ends up satisfied.
func trivialFPAssign(constraints []sym.Expr, seed map[string]uint64) (map[string]uint64, bool) {
	env := cloneEnv(seed)
	if env == nil {
		env = make(map[string]uint64)
	}
	for pass := 0; pass < 4; pass++ {
		done := true
		for _, c := range constraints {
			if sym.Eval(c, env) == 1 {
				continue
			}
			done = false
			target, ok := stripNot(c)
			if !ok {
				return nil, false
			}
			b, ok := target.(*sym.Bin)
			if !ok || !b.Op.IsFloat() {
				return nil, false
			}
			v, other, leftVar := bareVarSide(b)
			if v == nil {
				return nil, false
			}
			val := sym.Eval(other, env)
			f := math.Float64frombits(val)
			switch b.Op {
			case sym.OpFEq:
				env[v.Name] = val
			case sym.OpFLt, sym.OpFLe:
				// Place the variable strictly on the required side.
				if leftVar {
					env[v.Name] = math.Float64bits(f - 1)
				} else {
					env[v.Name] = math.Float64bits(f + 1)
				}
			default:
				return nil, false
			}
		}
		if done {
			return env, true
		}
	}
	return nil, false
}

// stripNot unwraps a BoolNot; a negated comparison is not directly
// assignable here (the caller's negation already rewrote integer ops,
// float ones stay wrapped), so only bare comparisons pass.
func stripNot(c sym.Expr) (sym.Expr, bool) {
	if u, ok := c.(*sym.Un); ok && u.Op == sym.OpBoolNot {
		return nil, false
	}
	return c, true
}

// bareVarSide returns the bare variable operand and the other side.
func bareVarSide(b *sym.Bin) (v *sym.Var, other sym.Expr, leftVar bool) {
	if x, ok := b.A.(*sym.Var); ok {
		return x, b.B, true
	}
	if x, ok := b.B.(*sym.Var); ok {
		return x, b.A, false
	}
	return nil, nil, false
}

// ── stochastic FP solver ─────────────────────────────────────────────

// fpSearch hill-climbs over the constraint variables, evaluating the
// system concretely. Moves include random byte mutations, digit-targeted
// mutations (inputs are usually numeric strings), and wholesale numeric
// rendering of log-uniform floats into byte-variable groups.
func fpSearch(ctx context.Context, constraints []sym.Expr, opts Options) Result {
	rng := rand.New(rand.NewSource(opts.RandSeed + 1))
	widths := sym.VarWidths(constraints...)
	names := sym.Vars(constraints...)
	if len(names) == 0 {
		// No variables: just evaluate.
		if penaltyAll(constraints, nil) == 0 {
			return Result{Status: StatusSat, Model: map[string]uint64{}}
		}
		return Result{Status: StatusUnsat}
	}

	env := make(map[string]uint64, len(names))
	for _, n := range names {
		env[n] = opts.Seed[n] & maskFor(widths[n])
	}
	best := penaltyAll(constraints, env)
	if best == 0 {
		return Result{Status: StatusSat, Model: cloneEnv(env)}
	}

	// Group byte variables by prefix for numeric-rendering moves:
	// "argv1[3]" -> group "argv1[", index 3.
	groups := byteGroups(names, widths)

	for it := 0; it < opts.FPIterations; it++ {
		if it&1023 == 0 && ctx.Err() != nil {
			return Result{Status: StatusUnknown}
		}
		cand := cloneEnv(env)
		switch rng.Intn(10) {
		case 0, 1, 2:
			// Random single-variable mutation.
			n := names[rng.Intn(len(names))]
			cand[n] = mutate(rng, cand[n], widths[n])
		case 3, 4, 5:
			// Digit-targeted mutation for byte variables.
			n := names[rng.Intn(len(names))]
			if widths[n] == 8 {
				cand[n] = uint64('0' + rng.Intn(10))
			} else {
				cand[n] = mutate(rng, cand[n], widths[n])
			}
		case 6, 7:
			// Render a log-uniform float into a byte group.
			if len(groups) > 0 {
				g := groups[rng.Intn(len(groups))]
				renderNumeric(rng, cand, g)
			}
		case 8:
			// Small numeric nudge on a 64-bit variable.
			n := names[rng.Intn(len(names))]
			delta := uint64(rng.Intn(5)) - 2
			cand[n] = (cand[n] + delta) & maskFor(widths[n])
		default:
			// Restart a random subset.
			for _, n := range names {
				if rng.Intn(3) == 0 {
					cand[n] = mutate(rng, cand[n], widths[n])
				}
			}
		}
		p := penaltyAll(constraints, cand)
		if p <= best {
			env = cand
			best = p
			if best == 0 {
				minimizeModel(env, constraints, opts.Seed)
				return Result{Status: StatusSat, Model: env}
			}
		}
	}
	return Result{Status: StatusUnknown}
}

func maskFor(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

func cloneEnv(env map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func mutate(rng *rand.Rand, v uint64, w int) uint64 {
	switch rng.Intn(4) {
	case 0:
		return rng.Uint64() & maskFor(w)
	case 1:
		return (v ^ (1 << uint(rng.Intn(w)))) & maskFor(w)
	case 2:
		return (v + 1) & maskFor(w)
	default:
		return (v - 1) & maskFor(w)
	}
}

// byteGroup is a run of 8-bit variables sharing a name prefix, e.g. the
// bytes of argv1.
type byteGroup struct {
	prefix string
	names  []string // index i -> full variable name, dense from 0
}

func byteGroups(names []string, widths map[string]int) []byteGroup {
	byPrefix := make(map[string]map[int]string)
	for _, n := range names {
		if widths[n] != 8 {
			continue
		}
		open := -1
		for i := 0; i < len(n); i++ {
			if n[i] == '[' {
				open = i
				break
			}
		}
		if open < 0 || n[len(n)-1] != ']' {
			continue
		}
		idx, err := strconv.Atoi(n[open+1 : len(n)-1])
		if err != nil {
			continue
		}
		p := n[:open+1]
		if byPrefix[p] == nil {
			byPrefix[p] = make(map[int]string)
		}
		byPrefix[p][idx] = n
	}
	var out []byteGroup
	for p, m := range byPrefix {
		g := byteGroup{prefix: p}
		for i := 0; ; i++ {
			n, ok := m[i]
			if !ok {
				break
			}
			g.names = append(g.names, n)
		}
		if len(g.names) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// renderNumeric writes the decimal rendering of a log-uniform float into
// the group's byte variables (NUL padded). This is the move that cracks
// "1024 + x == 1024 && x > 0"-style constraints: it proposes numbers
// spanning forty orders of magnitude.
func renderNumeric(rng *rand.Rand, env map[string]uint64, g byteGroup) {
	exp := rng.Float64()*40 - 20 // 1e-20 .. 1e+20
	v := math.Pow(10, exp)
	if rng.Intn(4) == 0 {
		v = -v
	}
	if rng.Intn(4) == 0 {
		v = math.Trunc(v)
	}
	s := strconv.FormatFloat(v, 'f', -1, 64)
	for i, name := range g.names {
		if i < len(s) {
			env[name] = uint64(s[i])
		} else {
			env[name] = 0
		}
	}
}

// penaltyAll sums the distance of every constraint from satisfaction;
// zero means the assignment is a model.
func penaltyAll(constraints []sym.Expr, env map[string]uint64) float64 {
	var total float64
	for _, c := range constraints {
		total += penalty(c, env)
	}
	return total
}

// penalty returns 0 when the width-1 constraint holds, and a positive
// distance measure otherwise, shaped so hill climbing has gradients on
// comparisons.
func penalty(c sym.Expr, env map[string]uint64) float64 {
	if sym.Eval(c, env) == 1 {
		return 0
	}
	if b, ok := c.(*sym.Bin); ok && b.Op.IsCompare() {
		av := sym.Eval(b.A, env)
		bv := sym.Eval(b.B, env)
		switch b.Op {
		case sym.OpFEq, sym.OpFLt, sym.OpFLe:
			fa, fb := math.Float64frombits(av), math.Float64frombits(bv)
			if math.IsNaN(fa) || math.IsNaN(fb) {
				return 1e6
			}
			return 1 + math.Min(1e6, math.Abs(fa-fb))
		default:
			d := float64(av) - float64(bv)
			return 1 + math.Min(1e6, math.Abs(d))
		}
	}
	return 1000 // unsatisfied non-comparison: flat penalty
}
