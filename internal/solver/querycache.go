package solver

import (
	"repro/internal/sharedcache"
	"repro/internal/sym"
	"repro/internal/warmstore"
)

// CachedResult is the seed-independent part of a bitvector Solve
// outcome, the unit a QueryCache tier stores. It is a pure function of
// the constraint slice and the conflict budget — the completion and
// minimization steps that depend on the caller's seed run after the
// cache — which is what lets replicas share entries without perturbing
// per-job verdicts.
type CachedResult struct {
	Status    Status
	Conflicts int64
	Model     map[string]uint64 // raw model; nil unless Status is sat
}

// QueryCache is a persistent or remote tier behind the in-memory LRU
// (see Cache.SetShared): the cross-replica sharedcache tier, the
// warm-start store, or a chain of both. Keys are the caller's business;
// Cache keys tiers with cross-process-stable digests ("d:" +
// sym.DigestKey + ":" + conflict budget), so a tier implementation must
// treat them as opaque JSON-safe strings. Implementations must be safe
// for concurrent use and must return Model maps the caller may keep.
type QueryCache interface {
	Lookup(key string) (CachedResult, bool)
	Store(key string, res CachedResult)
}

// SharedTier adapts a sharedcache.Tier (the cross-replica file-backed
// tier) into a QueryCache.
func SharedTier(t *sharedcache.Tier) QueryCache {
	if t == nil {
		return nil
	}
	return sharedTier{t}
}

type sharedTier struct{ t *sharedcache.Tier }

func (s sharedTier) Lookup(key string) (CachedResult, bool) {
	e, ok := s.t.Lookup(key)
	if !ok {
		return CachedResult{}, false
	}
	return CachedResult{Status: Status(e.Status), Conflicts: e.Conflicts, Model: e.Model}, true
}

func (s sharedTier) Store(key string, res CachedResult) {
	s.t.Store(sharedcache.Entry{
		Key:       key,
		Status:    int(res.Status),
		Conflicts: res.Conflicts,
		Model:     res.Model,
	})
}

// WarmQueries adapts the query half of a warmstore.Store into a
// QueryCache, so the warm-start store can sit in the same lookup chain
// as the shared tier. The digest-key namespace ("d:" prefix) is
// disjoint from the hex-StableKey names the portfolio writes, so one
// store serves both roles.
func WarmQueries(st *warmstore.Store) QueryCache {
	if st == nil {
		return nil
	}
	return warmQueries{st}
}

type warmQueries struct{ st *warmstore.Store }

func (w warmQueries) Lookup(key string) (CachedResult, bool) {
	e, ok := w.st.LookupQuery(key)
	if !ok {
		return CachedResult{}, false
	}
	return CachedResult{Status: Status(e.Status), Conflicts: e.Conflicts, Model: e.Model}, true
}

func (w warmQueries) Store(key string, res CachedResult) {
	w.st.PutQuery(warmstore.QueryEntry{
		Key:       key,
		Status:    int(res.Status),
		Conflicts: res.Conflicts,
		Model:     res.Model,
	})
}

// ChainQueryCaches composes tiers into one QueryCache consulted in
// order: Lookup returns the first tier's answer and backfills the tiers
// before it, Store writes through to every tier. Nil tiers are dropped;
// a chain of zero or one tier collapses to nil or the tier itself.
func ChainQueryCaches(tiers ...QueryCache) QueryCache {
	var live []QueryCache
	for _, t := range tiers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return queryChain(live)
}

type queryChain []QueryCache

func (c queryChain) Lookup(key string) (CachedResult, bool) {
	for i, t := range c {
		if res, ok := t.Lookup(key); ok {
			for j := 0; j < i; j++ {
				c[j].Store(key, res)
			}
			return res, true
		}
	}
	return CachedResult{}, false
}

func (c queryChain) Store(key string, res CachedResult) {
	for _, t := range c {
		t.Store(key, res)
	}
}

// validateShared converts a tier entry back into a raw in-memory
// result, distrusting satisfying models that do not satisfy the system:
// a digest collision or a foreign/corrupt tier must degrade to a miss,
// never to a wrong verdict.
func validateShared(res CachedResult, constraints []sym.Expr) (cachedResult, bool) {
	switch res.Status {
	case StatusUnsat, StatusUnknown:
		return cachedResult{status: res.Status, conflicts: res.Conflicts}, true
	case StatusSat:
		for _, c := range constraints {
			if sym.Eval(c, res.Model) != 1 {
				return cachedResult{}, false
			}
		}
		return cachedResult{status: StatusSat, conflicts: res.Conflicts, model: res.Model}, true
	}
	return cachedResult{}, false
}
