package solver

import (
	"context"
	"testing"

	"repro/internal/exchange"
	"repro/internal/sym"
	"repro/internal/warmstore"
)

// distinctSystem builds an unsatisfiable pigeonhole over bitvectors:
// n variables, each < n-1, pairwise distinct. Forces real clause
// learning through the bitblasted encoding.
func distinctSystem(n int) []sym.Expr {
	vars := make([]sym.Expr, n)
	for i := range vars {
		vars[i] = sym.NewVar(string(rune('a'+i)), 8)
	}
	var cs []sym.Expr
	for _, v := range vars {
		cs = append(cs, sym.NewBin(sym.OpUlt, v, sym.NewConst(uint64(n-1), 8)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cs = append(cs, sym.NewBin(sym.OpNe, vars[i], vars[j]))
		}
	}
	return cs
}

// TestPortfolioRoundEquivalence replays the engine's round pattern
// through a Portfolio and through fresh SolveContext calls, requiring
// identical statuses and Eval-valid models — the differential criterion
// at the solver layer.
func TestPortfolioRoundEquivalence(t *testing.T) {
	cs := benchChain(5)
	opts := Options{MaxConflicts: 1_000_000}
	pf := NewPortfolio(context.Background(), PortfolioOptions{
		Options:  opts,
		Cache:    NewCache(64),
		Exchange: exchange.New(),
	})
	for i, c := range cs {
		negated := sym.NewBoolNot(c)
		system := append(append([]sym.Expr{}, cs[:i]...), negated)
		want, err := SolveContext(context.Background(), system, opts)
		if err != nil {
			t.Fatalf("query %d: fresh: %v", i, err)
		}
		got, err := pf.Check(negated)
		if err != nil {
			t.Fatalf("query %d: portfolio: %v", i, err)
		}
		if got.Status != want.Status {
			t.Fatalf("query %d: portfolio %v, fresh %v", i, got.Status, want.Status)
		}
		if got.Status == StatusSat {
			for j, e := range system {
				if sym.Eval(e, got.Model) != 1 {
					t.Fatalf("query %d: portfolio model violates constraint %d", i, j)
				}
			}
		}
		pf.Assert(c)
	}
	st := pf.Stats()
	if st.Checks != len(cs) || st.Races == 0 {
		t.Fatalf("no races recorded: %+v", st)
	}
	if st.SessionWins+st.FreshWins != st.Races {
		t.Fatalf("wins don't cover races: %+v", st)
	}
}

// TestPortfolioUnsatSharing races an unsatisfiable pigeonhole system and
// checks the exchange actually carried clauses between the fresh
// workers.
func TestPortfolioUnsatSharing(t *testing.T) {
	cs := distinctSystem(5)
	ex := exchange.New()
	pf := NewPortfolio(context.Background(), PortfolioOptions{
		Options:  Options{MaxConflicts: 2_000_000},
		Exchange: ex,
	})
	pf.Assert(cs[:len(cs)-1]...)
	// The last distinctness constraint is the query: prefix ∧ ¬¬c.
	res, err := pf.Check(cs[len(cs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnsat {
		t.Fatalf("pigeonhole: %v, want unsat", res.Status)
	}
	if ex.Stats().Published == 0 {
		t.Error("no clauses published during an unsat race")
	}
	if pf.Stats().ClausesShared == 0 {
		t.Error("portfolio stats recorded no shared clauses")
	}
}

// TestPortfolioWarmStart solves through a warm-start store, reopens the
// store (a new process), and checks the second portfolio answers the
// same queries from disk with identical verdicts.
func TestPortfolioWarmStart(t *testing.T) {
	dir := t.TempDir()
	cs := benchChain(4)
	opts := Options{MaxConflicts: 1_000_000}

	run := func(warm *warmstore.Store) ([]Result, PortfolioStats) {
		pf := NewPortfolio(context.Background(), PortfolioOptions{
			Options:  opts,
			Exchange: exchange.New(),
			Warm:     warm,
		})
		var out []Result
		for _, c := range cs {
			r, err := pf.Check(sym.NewBoolNot(c))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
			pf.Assert(c)
		}
		return out, pf.Stats()
	}

	w1, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStats := run(w1)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if coldStats.WarmQueryHits != 0 {
		t.Fatalf("cold run hit the store: %+v", coldStats)
	}

	w2, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	warm, warmStats := run(w2)
	if warmStats.WarmQueryHits == 0 {
		t.Fatalf("warm run never hit the store: %+v", warmStats)
	}
	if warmStats.Races >= coldStats.Races {
		t.Fatalf("warm run raced as much as cold: cold %d, warm %d",
			coldStats.Races, warmStats.Races)
	}
	for i := range cold {
		if cold[i].Status != warm[i].Status {
			t.Fatalf("query %d: cold %v, warm %v", i, cold[i].Status, warm[i].Status)
		}
		if warm[i].Status == StatusSat {
			system := append(append([]sym.Expr{}, cs[:i]...), sym.NewBoolNot(cs[i]))
			for j, e := range system {
				if sym.Eval(e, warm[i].Model) != 1 {
					t.Fatalf("query %d: warm model violates constraint %d", i, j)
				}
			}
		}
	}
}

// TestPortfolioWarmDistrustsBadModels plants a corrupt Sat entry and
// checks the portfolio degrades it to a miss instead of returning an
// invalid model.
func TestPortfolioWarmDistrustsBadModels(t *testing.T) {
	x := sym.NewVar("x", 8)
	system := []sym.Expr{sym.NewBin(sym.OpEq, x, sym.NewConst(7, 8))}
	e := warmstore.QueryEntry{Status: int(StatusSat), Model: map[string]uint64{"x": 9}}
	if _, ok := warmResult(e, system); ok {
		t.Fatal("warmResult trusted a model violating the system")
	}
	e.Model["x"] = 7
	if res, ok := warmResult(e, system); !ok || res.status != StatusSat {
		t.Fatal("warmResult rejected a valid model")
	}
	e.Status = int(StatusUnknown)
	if _, ok := warmResult(e, system); ok {
		t.Fatal("warmResult served an inconclusive entry")
	}
}

// TestPortfolioCancellation checks a cancelled context stops a race with
// Unknown instead of hanging.
func TestPortfolioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pf := NewPortfolio(ctx, PortfolioOptions{Options: Options{MaxConflicts: 1 << 40}})
	cs := distinctSystem(7)
	pf.Assert(cs[:len(cs)-1]...)
	res, err := pf.Check(cs[len(cs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnknown {
		t.Fatalf("cancelled race: %v, want unknown", res.Status)
	}
}

// TestPortfolioFloatParity checks float queries are not raced: the
// verdict equals the fresh stochastic search with the same seed.
func TestPortfolioFloatParity(t *testing.T) {
	x := sym.NewVar("f", 64)
	c := sym.NewBin(sym.OpFLt, x, sym.NewConst(0x4000000000000000, 64)) // f < 2.0
	opts := Options{FP: FPSearch, FPIterations: 10_000, RandSeed: 42}
	want, err := SolveContext(context.Background(), []sym.Expr{c}, opts)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPortfolio(context.Background(), PortfolioOptions{Options: opts})
	got, err := pf.CheckSeeded(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status {
		t.Fatalf("portfolio float %v, fresh %v", got.Status, want.Status)
	}
}

// TestPortfolioCacheNamespace checks portfolio entries don't collide
// with fresh-mode entries in a shared cache.
func TestPortfolioCacheNamespace(t *testing.T) {
	cache := NewCache(64)
	x := sym.NewVar("x", 8)
	system := []sym.Expr{sym.NewBin(sym.OpUlt, x, sym.NewConst(10, 8))}
	if _, err := cache.Solve(system, Options{MaxConflicts: 1000}); err != nil {
		t.Fatal(err)
	}
	pf := NewPortfolio(context.Background(), PortfolioOptions{
		Options: Options{MaxConflicts: 1000}, Cache: cache,
	})
	if _, err := pf.Check(system[0]); err != nil {
		t.Fatal(err)
	}
	st := pf.Stats()
	if st.CacheHits != 0 {
		t.Fatal("portfolio hit a fresh-mode cache entry")
	}
	if _, err := pf.Check(system[0]); err != nil {
		t.Fatal(err)
	}
	if st := pf.Stats(); st.CacheHits != 1 {
		t.Fatalf("repeat portfolio query missed its own entry: %+v", st)
	}
}
