package solver

import (
	"context"
	"testing"

	"repro/internal/exchange"
	"repro/internal/sym"
)

// FuzzPortfolioEquivalence replays the engine's round pattern through a
// Portfolio (session + diversified fresh workers + clause exchange) and
// through a fresh SolveContext per query, requiring identical statuses
// throughout. The portfolio is nondeterministic in which worker answers,
// never in the verdict: budgets are high enough that Unknown never fires
// on these tiny systems, so strengthening cannot blur the comparison.
// Sat models may differ between the two paths, but each must
// sym.Eval-satisfy its full system.
func FuzzPortfolioEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 1})
	f.Add([]byte{0, 5, 0, 0, 3, 2, 0, 2, 3, 0, 1, 2})
	f.Add([]byte{2, 2, 0, 1, 3, 4, 2, 0, 4, 1, 2, 1, 3, 3, 0, 2})
	f.Add([]byte{1, 2, 0, 0, 2, 8, 2, 0, 3, 5, 3, 1, 4, 0, 0, 3, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		cs := buildBVSystem(data)
		if len(cs) == 0 {
			return
		}
		opts := Options{MaxConflicts: 500_000}
		pf := NewPortfolio(context.Background(), PortfolioOptions{
			Options:  opts,
			Exchange: exchange.New(),
		})
		for i, c := range cs {
			negated := sym.NewBoolNot(c)
			system := append(append([]sym.Expr{}, cs[:i]...), negated)
			want, err := SolveContext(context.Background(), system, opts)
			if err != nil {
				t.Fatalf("query %d: fresh: %v", i, err)
			}
			got, err := pf.CheckSeeded(negated, int64(i))
			if err != nil {
				t.Fatalf("query %d: portfolio: %v", i, err)
			}
			if got.Status != want.Status {
				t.Fatalf("query %d: portfolio %v, fresh %v (system %v)",
					i, got.Status, want.Status, system)
			}
			if got.Status == StatusSat {
				for j, e := range system {
					if sym.Eval(e, got.Model) != 1 {
						t.Fatalf("query %d: portfolio model %v violates constraint %d %v",
							i, got.Model, j, e)
					}
				}
			}
			pf.Assert(c)
		}
	})
}
