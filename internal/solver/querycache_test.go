package solver

import (
	"reflect"
	"testing"

	"repro/internal/sharedcache"
	"repro/internal/sym"
	"repro/internal/warmstore"
)

// openTier opens a sharedcache tier in a temp dir, failing the test on
// error.
func openTier(t *testing.T, dir string) *sharedcache.Tier {
	t.Helper()
	tier, err := sharedcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

// TestSharedTierCrossReplica is the fleet cache scenario in miniature:
// replica A solves and write-throughs; replica B — a different Cache, a
// different tier handle, same directory — answers the same query from
// the shared tier, bit-for-bit identical to a tierless solve.
func TestSharedTierCrossReplica(t *testing.T) {
	dir := t.TempDir()
	sys := func() []sym.Expr {
		x := sym.NewVar("stx", 16)
		return []sym.Expr{
			sym.NewBin(sym.OpEq, sym.NewBin(sym.OpMul, x, sym.NewConst(3, 16)), sym.NewConst(123, 16)),
		}
	}
	want, err := Solve(sys(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	a := NewCache(16)
	a.SetShared(SharedTier(openTier(t, dir)))
	ra, err := a.Solve(sys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sa := a.Stats(); sa.SharedMisses != 1 || sa.SharedStores != 1 || sa.SharedHits != 0 {
		t.Fatalf("replica a tier stats: %+v", sa)
	}

	b := NewCache(16)
	b.SetShared(SharedTier(openTier(t, dir)))
	rb, err := b.Solve(sys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb := b.Stats()
	if sb.SharedHits != 1 || sb.SharedServed != 1 || sb.SharedStores != 0 {
		t.Fatalf("replica b tier stats: %+v", sb)
	}

	for i, r := range []Result{ra, rb} {
		if r.Status != want.Status || !reflect.DeepEqual(r.Model, want.Model) {
			t.Errorf("replica %d: %v/%v, tierless %v/%v", i, r.Status, r.Model, want.Status, want.Model)
		}
	}

	// A repeat on replica b hits its local LRU, but the answer is still
	// shared-born: SharedServed keeps charging it.
	if _, err := b.Solve(sys(), Options{}); err != nil {
		t.Fatal(err)
	}
	if sb := b.Stats(); sb.SharedServed != 2 || sb.Hits != 1 {
		t.Fatalf("served/hits after repeat: %+v", sb)
	}
}

// A poisoned tier entry (wrong model under this digest, e.g. a digest
// collision or foreign store) must degrade to a miss, never to a wrong
// verdict.
func TestSharedTierRejectsInvalidModel(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir)

	sys := eqSys("poison", 9)
	key := "d:" + sym.DigestKey(sys) + ":" + "100000"
	tier.Store(sharedcache.Entry{Key: key, Status: int(StatusSat), Model: map[string]uint64{"poison": 1}})

	c := NewCache(16)
	c.SetShared(SharedTier(tier))
	r, err := c.Solve(sys, Options{MaxConflicts: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusSat || r.Model["poison"] != 9 {
		t.Fatalf("got %v/%v, want a locally re-solved sat model", r.Status, r.Model)
	}
	if st := c.Stats(); st.SharedHits != 0 || st.SharedMisses != 1 {
		t.Fatalf("poisoned entry was counted as a hit: %+v", st)
	}
}

// TestChainQueryCaches exercises the composition: miss in the shared
// tier falls through to the warmstore, and the hit is backfilled into
// the earlier tier.
func TestChainQueryCaches(t *testing.T) {
	tier := openTier(t, t.TempDir())
	warm, err := warmstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	chain := ChainQueryCaches(nil, SharedTier(tier), WarmQueries(warm))
	warm.PutQuery(warmstore.QueryEntry{Key: "d:abc:1", Status: int(StatusUnsat), Conflicts: 5})

	res, ok := chain.Lookup("d:abc:1")
	if !ok || res.Status != StatusUnsat || res.Conflicts != 5 {
		t.Fatalf("chain lookup: ok=%v res=%+v", ok, res)
	}
	// Backfill: the shared tier now answers directly.
	if e, ok := tier.Lookup("d:abc:1"); !ok || e.Status != int(StatusUnsat) {
		t.Fatalf("backfill missing from shared tier: ok=%v e=%+v", ok, e)
	}

	chain.Store("d:xyz:2", CachedResult{Status: StatusSat, Model: map[string]uint64{"m": 4}})
	if _, ok := tier.Lookup("d:xyz:2"); !ok {
		t.Fatal("store did not reach the shared tier")
	}
	if _, ok := warm.LookupQuery("d:xyz:2"); !ok {
		t.Fatal("store did not reach the warmstore")
	}

	if ChainQueryCaches(nil, nil) != nil {
		t.Fatal("empty chain should collapse to nil")
	}
	single := SharedTier(tier)
	if got := ChainQueryCaches(nil, single); !reflect.DeepEqual(got, single) {
		t.Fatal("single-tier chain should collapse to the tier itself")
	}
}
