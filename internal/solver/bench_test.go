package solver

import (
	"math"
	"testing"

	"repro/internal/sym"
)

// BenchmarkAtoiChainSolve measures the canonical digit-chain query: the
// constraint shape every atoi-guarded bomb produces.
func BenchmarkAtoiChainSolve(b *testing.B) {
	b0 := sym.NewZExt(sym.NewVar("b0", 8), 64)
	b1 := sym.NewZExt(sym.NewVar("b1", 8), 64)
	d0 := sym.NewBin(sym.OpSub, b0, sym.NewConst('0', 64))
	d1 := sym.NewBin(sym.OpSub, b1, sym.NewConst('0', 64))
	v := sym.NewBin(sym.OpAdd, sym.NewBin(sym.OpMul, d0, sym.NewConst(10, 64)), d1)
	cs := []sym.Expr{
		sym.NewBin(sym.OpUle, sym.NewConst('0', 64), b0),
		sym.NewBin(sym.OpUle, b0, sym.NewConst('9', 64)),
		sym.NewBin(sym.OpUle, sym.NewConst('0', 64), b1),
		sym.NewBin(sym.OpUle, b1, sym.NewConst('9', 64)),
		sym.NewBin(sym.OpEq, v, sym.NewConst(42, 64)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(cs, Options{})
		if err != nil || res.Status != StatusSat {
			b.Fatalf("res %v err %v", res.Status, err)
		}
	}
}

// BenchmarkFPLocalSearch measures the stochastic solver on the paper's
// float-bomb condition.
func BenchmarkFPLocalSearch(b *testing.B) {
	x := sym.NewVar("x", 64)
	c1024 := sym.NewConst(math.Float64bits(1024), 64)
	zero := sym.NewConst(math.Float64bits(0), 64)
	cs := []sym.Expr{
		sym.NewBin(sym.OpFEq, sym.NewBin(sym.OpFAdd, c1024, x), c1024),
		sym.NewBin(sym.OpFLt, zero, x),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(cs, Options{FP: FPSearch, RandSeed: int64(i), FPIterations: 500_000})
		if err != nil || res.Status != StatusSat {
			b.Fatalf("res %v err %v", res.Status, err)
		}
	}
}
