package solver

import (
	"context"
	"testing"

	"repro/internal/sym"
)

// benchChain is a wider digit chain for benchmarking: 64-bit mul/add
// terms deep enough that re-bitblasting the shared prefix dominates a
// fresh solve, as in real rounds over parsed-input guards.
func benchChain(n int) []sym.Expr {
	var acc sym.Expr = sym.NewVar("argv1_0", 64)
	var cs []sym.Expr
	for i := 0; i < n; i++ {
		acc = sym.NewBin(sym.OpAdd,
			sym.NewBin(sym.OpMul, acc, sym.NewConst(0x9e3779b97f4a7c15, 64)),
			sym.NewConst(uint64(i)*0x5851f42d4c957f2d+1, 64))
		b := sym.NewBin(sym.OpAnd, acc, sym.NewConst(0xffff, 64))
		cs = append(cs, sym.NewBin(sym.OpUlt, b, sym.NewConst(0x8000, 64)))
	}
	return cs
}

const benchRoundQueries = 6

// BenchmarkRoundFresh measures the engine's round loop with a fresh SAT
// instance per negation query (core.SolverFresh): query i re-encodes
// and re-solves the whole i-constraint prefix from scratch.
func BenchmarkRoundFresh(b *testing.B) {
	cs := benchChain(benchRoundQueries)
	opts := Options{MaxConflicts: 1_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, c := range cs {
			system := append(append([]sym.Expr{}, cs[:j]...), sym.NewBoolNot(c))
			r, err := SolveContext(context.Background(), system, opts)
			if err != nil {
				b.Fatal(err)
			}
			if r.Status == StatusUnknown {
				b.Fatalf("query %d unknown", j)
			}
		}
	}
	b.ReportMetric(float64(b.N*benchRoundQueries)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkRoundIncremental is the same round through one Session
// (core.SolverIncremental): the prefix stays encoded and learned
// clauses persist, so each query only pays for its own negation.
func BenchmarkRoundIncremental(b *testing.B) {
	cs := benchChain(benchRoundQueries)
	opts := Options{MaxConflicts: 1_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sess := NewSession(context.Background(), SessionOptions{Options: opts})
		for j, c := range cs {
			r, err := sess.Check(sym.NewBoolNot(c))
			if err != nil {
				b.Fatal(err)
			}
			if r.Status == StatusUnknown {
				b.Fatalf("query %d unknown", j)
			}
			sess.Assert(c)
		}
	}
	b.ReportMetric(float64(b.N*benchRoundQueries)/b.Elapsed().Seconds(), "queries/s")
}
