package solver

import (
	"context"
	"testing"

	"repro/internal/sym"
)

// sessionRound mimics the engine's round loop: for each constraint c_i,
// Check(¬c_i) against the prefix c_0..c_{i-1}, then Assert(c_i).
func sessionRound(t *testing.T, sess *Session, cs []sym.Expr) []Result {
	t.Helper()
	var out []Result
	for _, c := range cs {
		r, err := sess.Check(sym.NewBoolNot(c))
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		out = append(out, r)
		sess.Assert(c)
	}
	return out
}

// freshRound is the same loop through one-shot SolveContext calls.
func freshRound(t *testing.T, cs []sym.Expr, opts Options) []Result {
	t.Helper()
	var out []Result
	for i, c := range cs {
		system := append(append([]sym.Expr{}, cs[:i]...), sym.NewBoolNot(c))
		r, err := SolveContext(context.Background(), system, opts)
		if err != nil {
			t.Fatalf("SolveContext: %v", err)
		}
		out = append(out, r)
	}
	return out
}

// digitChain builds n constraints over one 64-bit variable resembling a
// parsed-digit guard chain: ((x*3+i) & 0xff) == k_i style terms that
// share the whole sub-DAG across prefixes.
func digitChain(n int) []sym.Expr {
	var acc sym.Expr = sym.NewVar("argv1_0", 64)
	var cs []sym.Expr
	for i := 0; i < n; i++ {
		acc = sym.NewBin(sym.OpAdd, sym.NewBin(sym.OpMul, acc, sym.NewConst(3, 64)), sym.NewConst(uint64(i+1), 64))
		b := sym.NewBin(sym.OpAnd, acc, sym.NewConst(0xff, 64))
		cs = append(cs, sym.NewBin(sym.OpUlt, b, sym.NewConst(0x80, 64)))
	}
	return cs
}

// TestSessionMatchesFreshVerdicts runs the round loop both ways over a
// shared-prefix chain and requires identical statuses; Sat models must
// each satisfy their own system.
func TestSessionMatchesFreshVerdicts(t *testing.T) {
	cs := digitChain(6)
	opts := Options{MaxConflicts: 100_000}
	sess := NewSession(context.Background(), SessionOptions{Options: opts})
	inc := sessionRound(t, sess, cs)
	fresh := freshRound(t, cs, opts)
	for i := range cs {
		if inc[i].Status != fresh[i].Status {
			t.Errorf("query %d: session %v, fresh %v", i, inc[i].Status, fresh[i].Status)
		}
		if inc[i].Status != StatusSat {
			continue
		}
		system := append(append([]sym.Expr{}, cs[:i]...), sym.NewBoolNot(cs[i]))
		for j, c := range system {
			if sym.Eval(c, inc[i].Model) != 1 {
				t.Errorf("query %d: session model violates constraint %d", i, j)
			}
		}
	}
	st := sess.Stats()
	if st.IncrementalChecks == 0 || st.GuardLiterals == 0 {
		t.Errorf("session did no incremental work: %+v", st)
	}
	if st.IncrementalChecks > 1 && st.LearnedRetained == 0 {
		t.Logf("no learned clauses retained across %d checks (legal, just unhelpful)", st.IncrementalChecks)
	}
}

// TestSessionConstFalse checks the constant-false shortcut fires before
// anything else, as in SolveContext.
func TestSessionConstFalse(t *testing.T) {
	sess := NewSession(context.Background(), SessionOptions{})
	sess.Assert(sym.NewConst(0, 1))
	x := sym.NewVar("x", 8)
	r, err := sess.Check(sym.NewBin(sym.OpEq, x, sym.NewConst(1, 8)))
	if err != nil || r.Status != StatusUnsat {
		t.Fatalf("const-false prefix: %v %v, want unsat", r.Status, err)
	}
	// A constant-false negation is unsat even over an empty prefix.
	sess2 := NewSession(context.Background(), SessionOptions{})
	r, err = sess2.Check(sym.NewConst(0, 1))
	if err != nil || r.Status != StatusUnsat {
		t.Fatalf("const-false negation: %v %v, want unsat", r.Status, err)
	}
}

// TestSessionFloatRouting checks float-bearing systems leave the SAT
// path and agree with the one-shot front end.
func TestSessionFloatRouting(t *testing.T) {
	x := sym.NewVar("x", 64)
	fc := sym.NewBin(sym.OpFEq, x, sym.NewConst(0x3ff0000000000000, 64)) // x == 1.0
	for _, fp := range []FPMode{FPNone, FPSearch} {
		opts := Options{FP: fp, RandSeed: 7}
		sess := NewSession(context.Background(), SessionOptions{Options: opts})
		got, err := sess.Check(fc)
		if err != nil {
			t.Fatalf("FP %v: %v", fp, err)
		}
		want, err := SolveContext(context.Background(), []sym.Expr{fc}, opts)
		if err != nil {
			t.Fatalf("FP %v fresh: %v", fp, err)
		}
		if got.Status != want.Status {
			t.Errorf("FP %v: session %v, fresh %v", fp, got.Status, want.Status)
		}
	}
}

// TestSessionCancelledContext checks a dead context yields Unknown, the
// behaviour ExploreContext relies on for prompt shutdown.
func TestSessionCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess := NewSession(ctx, SessionOptions{})
	x := sym.NewVar("x", 8)
	r, err := sess.Check(sym.NewBin(sym.OpEq, x, sym.NewConst(3, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusUnknown {
		t.Errorf("cancelled ctx: %v, want unknown", r.Status)
	}
}

// TestSessionCacheRoundTrip checks a second identical session over a
// shared Cache answers from it, and that session entries do not collide
// with fresh-mode entries for the same system.
func TestSessionCacheRoundTrip(t *testing.T) {
	cs := digitChain(4)
	cache := NewCache(64)
	opts := Options{MaxConflicts: 100_000}

	s1 := NewSession(context.Background(), SessionOptions{Options: opts, Cache: cache})
	first := sessionRound(t, s1, cs)
	if s1.Stats().CacheHits != 0 {
		t.Fatalf("first session hit a cold cache: %+v", s1.Stats())
	}
	s2 := NewSession(context.Background(), SessionOptions{Options: opts, Cache: cache})
	second := sessionRound(t, s2, cs)
	if got := s2.Stats(); got.CacheHits != len(cs) {
		t.Errorf("second session: %d cache hits, want %d", got.CacheHits, len(cs))
	}
	if got := s2.Stats(); got.IncrementalChecks != 0 {
		t.Errorf("second session still solved incrementally: %+v", got)
	}
	for i := range cs {
		if first[i].Status != second[i].Status {
			t.Errorf("query %d: statuses differ across cache round trip", i)
		}
		if first[i].Status == StatusSat && sym.Eval(cs[0], second[i].Model) == 0 && i > 0 {
			t.Errorf("query %d: cached model violates prefix head", i)
		}
	}
	// Fresh-mode lookups for the same systems must miss (separate
	// namespace) and then store their own entries.
	before := cache.Stats()
	if _, err := cache.SolveContext(context.Background(), []sym.Expr{sym.NewBoolNot(cs[0])}, opts); err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Hits != before.Hits {
		t.Errorf("fresh-mode lookup hit an incremental entry")
	}
}

// TestSessionUnsatPrefixShortCircuits drives the prefix itself
// unsatisfiable and checks every later query reports unsat instantly.
func TestSessionUnsatPrefixShortCircuits(t *testing.T) {
	x := sym.NewVar("x", 8)
	sess := NewSession(context.Background(), SessionOptions{})
	sess.Assert(
		sym.NewBin(sym.OpEq, x, sym.NewConst(1, 8)),
		sym.NewBin(sym.OpEq, x, sym.NewConst(2, 8)),
	)
	for i := 0; i < 3; i++ {
		r, err := sess.Check(sym.NewBin(sym.OpUlt, x, sym.NewConst(200, 8)))
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != StatusUnsat {
			t.Fatalf("check %d over unsat prefix: %v, want unsat", i, r.Status)
		}
	}
}
