package solver

import (
	"math"
	"testing"

	"repro/internal/sym"
)

func TestEmptySystem(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("empty system should error")
	}
}

func TestConstantFalse(t *testing.T) {
	res, err := Solve([]sym.Expr{sym.False()}, Options{})
	if err != nil || res.Status != StatusUnsat {
		t.Errorf("res=%+v err=%v", res, err)
	}
}

func TestBitvectorSat(t *testing.T) {
	x := sym.NewZExt(sym.NewVar("x", 8), 64)
	c := sym.NewBin(sym.OpEq,
		sym.NewBin(sym.OpAdd, x, sym.NewConst(10, 64)),
		sym.NewConst(52, 64))
	res, err := Solve([]sym.Expr{c}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat || res.Model["x"] != 42 {
		t.Errorf("res = %+v", res)
	}
}

func TestBitvectorUnsat(t *testing.T) {
	x := sym.NewVar("x", 8)
	c1 := sym.NewBin(sym.OpUlt, sym.NewZExt(x, 64), sym.NewConst(5, 64))
	c2 := sym.NewBin(sym.OpUlt, sym.NewConst(10, 64), sym.NewZExt(x, 64))
	res, err := Solve([]sym.Expr{c1, c2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnsat {
		t.Errorf("status = %v, want unsat", res.Status)
	}
}

func TestSeedCompletion(t *testing.T) {
	// y is unconstrained; its model value should come from the seed.
	x := sym.NewVar("x", 8)
	c := sym.NewBin(sym.OpEq, sym.NewZExt(x, 64), sym.NewConst(7, 64))
	res, err := Solve([]sym.Expr{c}, Options{Seed: map[string]uint64{"x": 1, "y": 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat || res.Model["x"] != 7 {
		t.Fatalf("res = %+v", res)
	}
	if _, ok := res.Model["y"]; ok {
		t.Log("y not in constraints; absent from model is fine")
	}
}

func TestFloatRejectedWithoutFPMode(t *testing.T) {
	// A structural float constraint (not a bare variable) is rejected
	// without an FP theory.
	x := sym.NewVar("x", 64)
	c := sym.NewBin(sym.OpFEq,
		sym.NewBin(sym.OpFAdd, x, sym.NewConst(math.Float64bits(1), 64)),
		sym.NewConst(math.Float64bits(2.0), 64))
	res, err := Solve([]sym.Expr{c}, Options{FP: FPNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFloatUnsupported {
		t.Errorf("status = %v, want float-unsupported", res.Status)
	}
}

func TestTrivialFPAssignment(t *testing.T) {
	// A bare variable against a constant is assignable even without an FP
	// theory — the over-approximation behind simulated call summaries.
	v := sym.NewVar("sim!ext:pow#0", 64)
	c := sym.NewBin(sym.OpFEq, v, sym.NewConst(math.Float64bits(-1), 64))
	res, err := Solve([]sym.Expr{c}, Options{FP: FPNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat {
		t.Fatalf("status = %v, want sat", res.Status)
	}
	if math.Float64frombits(res.Model["sim!ext:pow#0"]) != -1 {
		t.Errorf("model = %v", res.Model)
	}
	// Ordering comparisons place the variable on the right side.
	lt := sym.NewBin(sym.OpFLt, sym.NewConst(math.Float64bits(0.47), 64), v)
	res, err = Solve([]sym.Expr{lt}, Options{FP: FPNone})
	if err != nil || res.Status != StatusSat {
		t.Fatalf("flt: %v %v", res.Status, err)
	}
	if f := math.Float64frombits(res.Model["sim!ext:pow#0"]); !(0.47 < f) {
		t.Errorf("flt model = %v", f)
	}
}

func TestFPSearchDirectEquality(t *testing.T) {
	x := sym.NewVar("x", 64)
	c := sym.NewBin(sym.OpFEq, x, sym.NewConst(math.Float64bits(2.0), 64))
	res, err := Solve([]sym.Expr{c}, Options{FP: FPSearch, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bit-pattern equality through random search is hard; equality with a
	// constant should still be found because any move landing exactly is
	// accepted... in practice this needs the nudge move from the seed.
	if res.Status == StatusSat {
		f := math.Float64frombits(res.Model["x"])
		if f != 2.0 {
			t.Errorf("model x = %v, want 2.0", f)
		}
	} else {
		t.Logf("direct FP equality not found (status %v) — acceptable for raw 64-bit var", res.Status)
	}
}

// TestFPSearchPaperBomb reproduces the paper's float challenge:
// 1024 + x == 1024 && x > 0 where x is parsed from a numeric byte string
// (here simplified to a direct conversion of rendered bytes).
func TestFPSearchPaperBomb(t *testing.T) {
	// Model: x = i2f(digit) / 10^13 style tiny value built from bytes is
	// involved in the real pipeline; here we exercise the renderNumeric
	// move directly: bytes argv1[0..7] are interpreted through a toy
	// "first byte minus '0' scaled" expression that only the numeric
	// rendering can zero out... Instead verify the core property on a
	// direct f64 variable with ordering constraints, which the nudge and
	// random moves solve.
	x := sym.NewVar("x", 64)
	c1024 := sym.NewConst(math.Float64bits(1024), 64)
	zero := sym.NewConst(math.Float64bits(0), 64)
	cs := []sym.Expr{
		sym.NewBin(sym.OpFEq, sym.NewBin(sym.OpFAdd, c1024, x), c1024),
		sym.NewBin(sym.OpFLt, zero, x),
	}
	res, err := Solve(cs, Options{FP: FPSearch, RandSeed: 42, FPIterations: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat {
		t.Fatalf("status = %v, want sat", res.Status)
	}
	f := math.Float64frombits(res.Model["x"])
	if !(f > 0 && 1024+f == 1024) {
		t.Errorf("model x = %v does not satisfy the bomb condition", f)
	}
}

func TestFPSearchByteRendering(t *testing.T) {
	// Variables are bytes of a numeric string; the constraint demands the
	// first byte be a digit and the (toy) parsed value be tiny: exercised
	// via argv-style names so renderNumeric applies.
	b0 := sym.NewVar("argv1[0]", 8)
	b1 := sym.NewVar("argv1[1]", 8)
	// Constraint set: b0 == '0' and b1 == '.', reachable by rendering
	// any value in (0,1).
	cs := []sym.Expr{
		sym.NewBin(sym.OpEq, b0, sym.NewConst('0', 8)),
		sym.NewBin(sym.OpEq, b1, sym.NewConst('.', 8)),
		// Force the FP path so the local search engages.
		sym.NewBin(sym.OpFLe, sym.NewConst(0, 64), sym.NewI2F(sym.NewZExt(b0, 64))),
	}
	res, err := Solve(cs, Options{FP: FPSearch, RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Model["argv1[0]"] != '0' || res.Model["argv1[1]"] != '.' {
		t.Errorf("model = %+v", res.Model)
	}
}

func TestUnknownOnTinyBudget(t *testing.T) {
	// A 64x64 multiplication equality with one conflict allowed.
	x := sym.NewVar("x", 64)
	y := sym.NewVar("y", 64)
	c := sym.NewBin(sym.OpEq,
		sym.NewBin(sym.OpMul, x, y),
		sym.NewConst(0xdeadbeefcafebab1, 64))
	res, err := Solve([]sym.Expr{c}, Options{MaxConflicts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnknown && res.Status != StatusSat {
		t.Errorf("status = %v, want unknown (or lucky sat)", res.Status)
	}
}

func TestModelSatisfiesSystem(t *testing.T) {
	// Multi-constraint digit system: '0' <= b <= '9' and (b-'0')*3 == 15.
	b := sym.NewZExt(sym.NewVar("b", 8), 64)
	d := sym.NewBin(sym.OpSub, b, sym.NewConst('0', 64))
	cs := []sym.Expr{
		sym.NewBin(sym.OpUle, sym.NewConst('0', 64), b),
		sym.NewBin(sym.OpUle, b, sym.NewConst('9', 64)),
		sym.NewBin(sym.OpEq, sym.NewBin(sym.OpMul, d, sym.NewConst(3, 64)), sym.NewConst(15, 64)),
	}
	res, err := Solve(cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSat || res.Model["b"] != '5' {
		t.Errorf("res = %+v, want b='5'", res)
	}
	for _, c := range cs {
		if sym.Eval(c, res.Model) != 1 {
			t.Errorf("model does not satisfy %s", c)
		}
	}
}
