package solver

import (
	"context"
	"testing"

	"repro/internal/sym"
)

// buildBVSystem interprets fuzz bytes as a constraint generator over a
// small pool of 8-bit terms, emitting width-1 bitvector constraints
// (never float): the incremental/fresh equivalence under test is a
// property of the SAT path. Division is included — the encoder guards
// div-by-zero itself.
func buildBVSystem(data []byte) []sym.Expr {
	arith := []sym.BinOp{
		sym.OpAdd, sym.OpSub, sym.OpMul, sym.OpAnd, sym.OpOr,
		sym.OpXor, sym.OpShl, sym.OpLShr, sym.OpUDiv, sym.OpURem,
	}
	cmp := []sym.BinOp{sym.OpEq, sym.OpNe, sym.OpUlt, sym.OpUle, sym.OpSlt, sym.OpSle}
	names := []string{"a", "b", "c"}
	pool := []sym.Expr{sym.NewVar("a", 8), sym.NewVar("b", 8)}
	pick := func(b byte) sym.Expr { return pool[int(b)%len(pool)] }
	var sys []sym.Expr
	for i := 0; i+3 < len(data) && len(sys) < 6; i += 4 {
		op, x, y, z := data[i], data[i+1], data[i+2], data[i+3]
		switch op % 5 {
		case 0:
			pool = append(pool, sym.NewConst(uint64(x), 8))
		case 1:
			pool = append(pool, sym.NewVar(names[int(x)%len(names)], 8))
		case 2:
			pool = append(pool, sym.NewBin(arith[int(x)%len(arith)], pick(y), pick(z)))
		case 3, 4:
			sys = append(sys, sym.NewBin(cmp[int(x)%len(cmp)], pick(y), pick(z)))
		}
	}
	return sys
}

// FuzzIncrementalEquivalence replays the engine's round pattern — check
// ¬c_i against the prefix c_0..c_{i-1}, then extend the prefix with c_i
// — once through a persistent Session and once through a fresh
// SolveContext per query, and requires identical statuses throughout.
// Sat models may differ between the two paths, but each must
// sym.Eval-satisfy its full system. Budgets are high enough that Unknown
// never fires on these tiny systems, so the equivalence is exact.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 1})
	f.Add([]byte{0, 5, 0, 0, 3, 2, 0, 2, 3, 0, 1, 2})
	f.Add([]byte{2, 2, 0, 1, 3, 4, 2, 0, 4, 1, 2, 1, 3, 3, 0, 2})
	f.Add([]byte{1, 2, 0, 0, 2, 8, 2, 0, 3, 5, 3, 1, 4, 0, 0, 3, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		cs := buildBVSystem(data)
		if len(cs) == 0 {
			return
		}
		opts := Options{MaxConflicts: 500_000}
		sess := NewSession(context.Background(), SessionOptions{Options: opts})
		for i, c := range cs {
			negated := sym.NewBoolNot(c)
			system := append(append([]sym.Expr{}, cs[:i]...), negated)
			want, err := SolveContext(context.Background(), system, opts)
			if err != nil {
				t.Fatalf("query %d: fresh: %v", i, err)
			}
			got, err := sess.Check(negated)
			if err != nil {
				t.Fatalf("query %d: session: %v", i, err)
			}
			if got.Status != want.Status {
				t.Fatalf("query %d: session %v, fresh %v (system %v)",
					i, got.Status, want.Status, system)
			}
			if got.Status == StatusSat {
				for j, e := range system {
					if sym.Eval(e, got.Model) != 1 {
						t.Fatalf("query %d: session model %v violates constraint %d %v",
							i, got.Model, j, e)
					}
					if sym.Eval(e, want.Model) != 1 {
						t.Fatalf("query %d: fresh model %v violates constraint %d %v",
							i, want.Model, j, e)
					}
				}
			}
			sess.Assert(c)
		}
	})
}
