package solver

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/sym"
)

// Cache is a bounded LRU front for Solve. Negation queries inside one
// concolic run share long constraint prefixes, and parallel workers in a
// batch can issue the very same query before the scheduler's dedup maps
// catch up; the cache collapses those repeats into one SAT search.
//
// Only the bit-blasting path is cached. Its raw model is a pure function
// of the constraint slice and the conflict budget, so entries are keyed
// by sym.CanonicalKey plus the budget. With the hash-consing arena the
// key is the constraints' intern ids — O(1) per constraint, no tree walk
// or hashing — and stays exact: structurally equal systems map to one
// entry even when built by different workers. The seed-dependent steps
// (completion and minimization) run per call on a copy — a hit returns
// bit-for-bit what a fresh Solve would have. Float systems go through the
// stochastic search, whose result depends on the caller's seed, so they
// bypass the cache. Unknown verdicts caused by the wall-clock deadline
// (as opposed to the deterministic conflict budget) are not stored.
//
// A Cache may be backed by a shared tier (SetShared): a persistent,
// cross-replica QueryCache consulted on LRU misses and written through
// on solves, keyed by cross-process-stable digests ("d:" +
// sym.DigestKey + ":" + conflict budget). Because tier entries hold the
// same seed-independent raw results the LRU holds, a tier hit is
// bit-for-bit what a local solve would have produced — replicas share
// work without perturbing verdicts. Entries that arrived from the tier
// are tagged, and the SharedServed counter charges both the direct tier
// hit and every later LRU re-hit on such an entry: it answers "how many
// queries were decided by someone else's solve".
//
// A Cache is safe for concurrent use by multiple goroutines.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	entries map[string]*list.Element
	shared  QueryCache

	hits, misses, evictions, bypasses      uint64
	sharedHits, sharedMisses, sharedStores uint64
	sharedServed                           uint64
}

// DefaultCacheSize is the entry bound used when NewCache is given a
// non-positive capacity.
const DefaultCacheSize = 4096

type cacheEntry struct {
	key        string
	res        cachedResult
	fromShared bool // entry arrived from the shared tier, not a local solve
}

// cachedResult is the seed-independent part of a Solve outcome.
type cachedResult struct {
	status    Status
	conflicts int64
	model     map[string]uint64 // raw model; nil unless status is sat
}

// CacheStats is a snapshot of the cache counters. The Shared* counters
// cover the tier behind SetShared: SharedHits/SharedMisses count tier
// consults on LRU misses, SharedStores counts write-throughs, and
// SharedServed counts queries answered by a shared-born entry — the
// direct tier hit plus every later LRU re-hit on it.
type CacheStats struct {
	Hits, Misses, Evictions, Bypasses uint64
	SharedHits, SharedMisses          uint64
	SharedStores, SharedServed        uint64
	Len                               int
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache returns an empty cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// SetShared installs (or, with nil, removes) the persistent tier
// consulted on LRU misses. Call before the cache is in use; the tier
// must be safe for concurrent use.
func (c *Cache) SetShared(q QueryCache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shared = q
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Bypasses: c.bypasses,
		SharedHits: c.sharedHits, SharedMisses: c.sharedMisses,
		SharedStores: c.sharedStores, SharedServed: c.sharedServed,
		Len: c.ll.Len(),
	}
}

// Solve behaves exactly like the package-level Solve, consulting the
// cache on the bitvector path.
func (c *Cache) Solve(constraints []sym.Expr, opts Options) (Result, error) {
	return c.SolveContext(context.Background(), constraints, opts)
}

// SolveContext is Solve under a cancellation context (see the package
// SolveContext). Unknown verdicts caused by cancellation are, like
// deadline timeouts, never stored: only results that depend purely on
// the constraint slice and the conflict budget enter the cache.
func (c *Cache) SolveContext(ctx context.Context, constraints []sym.Expr, opts Options) (Result, error) {
	if len(constraints) == 0 {
		return Result{}, ErrNoConstraints
	}
	applyDefaults(&opts)
	if hasConstFalse(constraints) {
		return Result{Status: StatusUnsat}, nil
	}
	if sym.HasFloat(constraints...) {
		c.mu.Lock()
		c.bypasses++
		c.mu.Unlock()
		return solveFloat(ctx, constraints, opts), nil
	}

	key := sym.CanonicalKey(constraints) + "|" + strconv.FormatInt(opts.MaxConflicts, 10)
	if res, ok := c.lookup(key); ok {
		return finishBV(res, constraints, opts), nil
	}

	// LRU miss: consult the shared tier before paying for a solve. The
	// digest key is computed only here — intern-id keys stay the fast
	// path for the (far more common) local hits.
	c.mu.Lock()
	shared := c.shared
	c.mu.Unlock()
	var sharedKey string
	if shared != nil {
		sharedKey = "d:" + sym.DigestKey(constraints) + ":" + strconv.FormatInt(opts.MaxConflicts, 10)
		if e, ok := shared.Lookup(sharedKey); ok {
			if res, ok := validateShared(e, constraints); ok {
				c.mu.Lock()
				c.sharedHits++
				c.sharedServed++
				c.mu.Unlock()
				c.storeTagged(key, cachedResult{status: res.status, conflicts: res.conflicts, model: cloneEnv(res.model)}, true)
				return finishBV(res, constraints, opts), nil
			}
		}
		c.mu.Lock()
		c.sharedMisses++
		c.mu.Unlock()
	}

	st, model, conflicts, timedOut, err := solveBV(ctx, constraints, opts)
	if err != nil {
		return Result{}, err
	}
	res := cachedResult{status: st, conflicts: conflicts, model: model}
	if !timedOut {
		c.store(key, cachedResult{status: st, conflicts: conflicts, model: cloneEnv(model)})
		if shared != nil {
			shared.Store(sharedKey, CachedResult{Status: st, Conflicts: conflicts, Model: cloneEnv(model)})
			c.mu.Lock()
			c.sharedStores++
			c.mu.Unlock()
		}
	}
	return finishBV(res, constraints, opts), nil
}

// finishBV applies the caller-specific post-processing to a raw
// bitvector result. res.model is consumed only through a copy, so cached
// entries stay pristine.
func finishBV(res cachedResult, constraints []sym.Expr, opts Options) Result {
	if res.status != StatusSat {
		return Result{Status: res.status, Conflicts: res.conflicts}
	}
	model := cloneEnv(res.model)
	completeModel(model, constraints, opts.Seed)
	minimizeModel(model, constraints, opts.Seed)
	return Result{Status: StatusSat, Model: model, Conflicts: res.conflicts}
}

func (c *Cache) lookup(key string) (cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		if e.fromShared {
			// A repeat of a query someone else solved: still their work.
			c.sharedServed++
		}
		return e.res, true
	}
	c.misses++
	return cachedResult{}, false
}

func (c *Cache) store(key string, res cachedResult) {
	c.storeTagged(key, res, false)
}

func (c *Cache) storeTagged(key string, res cachedResult, fromShared bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent worker computed the same (deterministic) result.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, fromShared: fromShared})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}
