package solver

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/sym"
)

// Cache is a bounded LRU front for Solve. Negation queries inside one
// concolic run share long constraint prefixes, and parallel workers in a
// batch can issue the very same query before the scheduler's dedup maps
// catch up; the cache collapses those repeats into one SAT search.
//
// Only the bit-blasting path is cached. Its raw model is a pure function
// of the constraint slice and the conflict budget, so entries are keyed
// by sym.CanonicalKey plus the budget. With the hash-consing arena the
// key is the constraints' intern ids — O(1) per constraint, no tree walk
// or hashing — and stays exact: structurally equal systems map to one
// entry even when built by different workers. The seed-dependent steps
// (completion and minimization) run per call on a copy — a hit returns
// bit-for-bit what a fresh Solve would have. Float systems go through the
// stochastic search, whose result depends on the caller's seed, so they
// bypass the cache. Unknown verdicts caused by the wall-clock deadline
// (as opposed to the deterministic conflict budget) are not stored.
//
// A Cache is safe for concurrent use by multiple goroutines.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent
	entries map[string]*list.Element

	hits, misses, evictions, bypasses uint64
}

// DefaultCacheSize is the entry bound used when NewCache is given a
// non-positive capacity.
const DefaultCacheSize = 4096

type cacheEntry struct {
	key string
	res cachedResult
}

// cachedResult is the seed-independent part of a Solve outcome.
type cachedResult struct {
	status    Status
	conflicts int64
	model     map[string]uint64 // raw model; nil unless status is sat
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions, Bypasses uint64
	Len                               int
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// NewCache returns an empty cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Bypasses: c.bypasses,
		Len: c.ll.Len(),
	}
}

// Solve behaves exactly like the package-level Solve, consulting the
// cache on the bitvector path.
func (c *Cache) Solve(constraints []sym.Expr, opts Options) (Result, error) {
	return c.SolveContext(context.Background(), constraints, opts)
}

// SolveContext is Solve under a cancellation context (see the package
// SolveContext). Unknown verdicts caused by cancellation are, like
// deadline timeouts, never stored: only results that depend purely on
// the constraint slice and the conflict budget enter the cache.
func (c *Cache) SolveContext(ctx context.Context, constraints []sym.Expr, opts Options) (Result, error) {
	if len(constraints) == 0 {
		return Result{}, ErrNoConstraints
	}
	applyDefaults(&opts)
	if hasConstFalse(constraints) {
		return Result{Status: StatusUnsat}, nil
	}
	if sym.HasFloat(constraints...) {
		c.mu.Lock()
		c.bypasses++
		c.mu.Unlock()
		return solveFloat(ctx, constraints, opts), nil
	}

	key := sym.CanonicalKey(constraints) + "|" + strconv.FormatInt(opts.MaxConflicts, 10)
	if res, ok := c.lookup(key); ok {
		return finishBV(res, constraints, opts), nil
	}

	st, model, conflicts, timedOut, err := solveBV(ctx, constraints, opts)
	if err != nil {
		return Result{}, err
	}
	res := cachedResult{status: st, conflicts: conflicts, model: model}
	if !timedOut {
		c.store(key, cachedResult{status: st, conflicts: conflicts, model: cloneEnv(model)})
	}
	return finishBV(res, constraints, opts), nil
}

// finishBV applies the caller-specific post-processing to a raw
// bitvector result. res.model is consumed only through a copy, so cached
// entries stay pristine.
func finishBV(res cachedResult, constraints []sym.Expr, opts Options) Result {
	if res.status != StatusSat {
		return Result{Status: res.status, Conflicts: res.conflicts}
	}
	model := cloneEnv(res.model)
	completeModel(model, constraints, opts.Seed)
	minimizeModel(model, constraints, opts.Seed)
	return Result{Status: StatusSat, Model: model, Conflicts: res.conflicts}
}

func (c *Cache) lookup(key string) (cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return cachedResult{}, false
}

func (c *Cache) store(key string, res cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent worker computed the same (deterministic) result.
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}
