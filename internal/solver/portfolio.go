package solver

import (
	"context"
	"encoding/hex"
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/bitblast"
	"repro/internal/exchange"
	"repro/internal/sat"
	"repro/internal/sym"
	"repro/internal/warmstore"
)

// PortfolioOptions configures a Portfolio.
type PortfolioOptions struct {
	// Options carries the per-Check budgets, FP mode, seed and random
	// seed, charged per Check exactly as in a Session.
	Options
	// Workers is the number of diversified fresh CDCL workers racing
	// alongside the incremental session (0 = DefaultPortfolioWorkers).
	// Worker 0 always runs the default configuration — bit-for-bit the
	// search fresh solving would run — so the portfolio reaches a
	// conclusive verdict whenever fresh solving would.
	Workers int
	// Cache, when non-nil, fronts Checks under the portfolio's own key
	// namespace (winners' results are not pure functions of the
	// constraint slice, so they never mix with fresh-mode entries).
	Cache *Cache
	// Exchange, when non-nil, shares learned clauses between the fresh
	// CDCL workers of this and concurrently racing queries on the same
	// constraint system. The incremental session does not participate:
	// its CNF numbering (guard literals interleaved with prefix gates)
	// differs from the deterministic fresh encoding.
	Exchange *exchange.Exchange
	// Warm, when non-nil, persists query verdicts and exchanged clauses
	// across processes, keyed by hex-encoded sym.StableKey (CanonicalKey
	// intern ids are process-local and cannot name anything on disk).
	Warm *warmstore.Store
}

// DefaultPortfolioWorkers is the fresh-CDCL worker count when
// PortfolioOptions.Workers is zero: the default-config worker plus two
// diversified rivals.
const DefaultPortfolioWorkers = 3

// PortfolioStats is the work profile of one Portfolio.
type PortfolioStats struct {
	// Checks counts Check calls, however they were decided.
	Checks int
	// Races counts Checks that actually raced workers (bitvector path,
	// no cache/warm hit).
	Races int
	// SessionWins and FreshWins count conclusive race verdicts by the
	// winning worker kind.
	SessionWins int
	FreshWins   int
	// CacheHits counts Checks answered from the in-process cache.
	CacheHits int
	// WarmQueryHits counts Checks answered from the warm-start store.
	WarmQueryHits int
	// WarmClausesSeeded counts clauses loaded from the warm-start store
	// into race exchanges.
	WarmClausesSeeded int
	// ClausesShared counts clauses this portfolio's workers published
	// into the exchange; ClausesImported counts adoptions by its workers
	// (exchange pulls plus warm seeds).
	ClausesShared   int64
	ClausesImported int64
	// Conflicts sums the winning worker's SAT conflicts per race (the
	// maximum across workers when no one wins).
	Conflicts int64
}

// Portfolio is a portfolio solving context over one growing constraint
// prefix, the racing counterpart of Session: Assert extends the prefix,
// Check races the incremental session against diversified fresh CDCL
// workers on prefix ∧ negated, first conclusive verdict wins and losers
// are cancelled through context plumbing down to sat.SolveInterruptible
// probes. Fresh workers share learned clauses through the Exchange.
//
// Verdict soundness: every worker decides the same system, so
// conclusive verdicts never disagree; which worker wins — and therefore
// which satisfying model is returned — is scheduling-dependent, but
// every returned model satisfies the system. Relative to fresh solving
// the only possible verdict difference is strengthening: a budget-bound
// Unknown turning conclusive because a diversified rival cracked the
// instance.
//
// Float-bearing queries are not raced: they run the single stochastic
// search fresh solving would run, with the same per-query seed, keeping
// float verdicts bit-identical to fresh mode.
//
// A Portfolio is not safe for concurrent use.
type Portfolio struct {
	ctx     context.Context
	opts    Options
	workers int
	cache   *Cache
	ex      *exchange.Exchange
	warm    *warmstore.Store

	sess   *Session
	prefix []sym.Expr

	stats PortfolioStats
}

// NewPortfolio opens a portfolio context. ctx cancellation makes
// in-flight and subsequent Checks give up with StatusUnknown.
func NewPortfolio(ctx context.Context, opts PortfolioOptions) *Portfolio {
	applyDefaults(&opts.Options)
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultPortfolioWorkers
	}
	return &Portfolio{
		ctx:     ctx,
		opts:    opts.Options,
		workers: workers,
		cache:   opts.Cache,
		ex:      opts.Exchange,
		warm:    opts.Warm,
		// The session races with no cache of its own: the portfolio owns
		// caching under its namespace.
		sess: NewSession(ctx, SessionOptions{Options: opts.Options}),
	}
}

// Assert appends constraints to the portfolio's path prefix.
func (p *Portfolio) Assert(constraints ...sym.Expr) {
	for _, c := range constraints {
		if c == nil {
			continue
		}
		p.prefix = append(p.prefix, c)
	}
	p.sess.Assert(constraints...)
}

// Prefix returns the constraints asserted so far (shared slice; do not
// mutate).
func (p *Portfolio) Prefix() []sym.Expr { return p.prefix }

// Stats returns the portfolio work profile so far.
func (p *Portfolio) Stats() PortfolioStats { return p.stats }

// SessionStats exposes the inner incremental worker's profile.
func (p *Portfolio) SessionStats() SessionStats { return p.sess.Stats() }

// Check decides prefix ∧ negated under the portfolio options.
func (p *Portfolio) Check(negated sym.Expr) (Result, error) {
	return p.CheckSeeded(negated, p.opts.RandSeed)
}

// diversifiedConfig returns the i-th fresh worker's solver
// configuration. Worker 0 is the exact default; rivals vary restart
// policy, branching randomness and phase polarity.
func diversifiedConfig(i int, randSeed int64) sat.Config {
	switch i % 4 {
	case 1:
		return sat.Config{InvertPolarity: true, RestartGeometric: true, RestartBase: 150}
	case 2:
		return sat.Config{RandSeed: randSeed + int64(i), RandomBranchFreq: 0.02}
	case 3:
		return sat.Config{RandSeed: randSeed + int64(i), RandomBranchFreq: 0.05,
			InvertPolarity: true, RestartGeometric: true, RestartBase: 80}
	default:
		return sat.Config{}
	}
}

// CheckSeeded is Check with a per-query random seed for the stochastic
// float search and worker diversification, mirroring the per-query seeds
// the engine derives in fresh mode.
func (p *Portfolio) CheckSeeded(negated sym.Expr, randSeed int64) (Result, error) {
	if negated == nil {
		return Result{}, ErrNoConstraints
	}
	p.stats.Checks++
	opts := p.opts
	opts.RandSeed = randSeed

	// Mirror SolveContext's routing order exactly: constant-false
	// shortcut, then float (single canonical search, not raced), then
	// the raced bitvector path.
	system := append(append([]sym.Expr{}, p.prefix...), negated)
	if hasConstFalse(system) {
		return Result{Status: StatusUnsat}, nil
	}
	if sym.HasFloat(system...) {
		return solveFloat(p.ctx, system, opts), nil
	}

	var key string
	if p.cache != nil {
		key = sym.CanonicalKey(system) + "|" + strconv.FormatInt(opts.MaxConflicts, 10) + "|pf"
		if res, ok := p.cache.lookup(key); ok {
			p.stats.CacheHits++
			return finishBV(res, system, opts), nil
		}
	}

	var stableKey, warmQueryKey string
	if p.warm != nil || p.ex != nil {
		stableKey = hex.EncodeToString([]byte(sym.StableKey(system)))
	}
	if p.warm != nil {
		warmQueryKey = stableKey + "|" + strconv.FormatInt(opts.MaxConflicts, 10)
		if e, ok := p.warm.LookupQuery(warmQueryKey); ok {
			if res, ok := warmResult(e, system); ok {
				p.stats.WarmQueryHits++
				if p.cache != nil {
					p.cache.store(key, cachedResult{status: res.status, conflicts: res.conflicts, model: cloneEnv(res.model)})
				}
				return finishBV(res, system, opts), nil
			}
		}
	}

	res, timedOut, err := p.race(system, opts, stableKey, randSeed)
	if err != nil {
		return Result{}, err
	}
	if p.cache != nil && !timedOut {
		p.cache.store(key, cachedResult{status: res.status, conflicts: res.conflicts, model: cloneEnv(res.model)})
	}
	if p.warm != nil && (res.status == StatusSat || res.status == StatusUnsat) {
		p.warm.PutQuery(warmstore.QueryEntry{
			Key:       warmQueryKey,
			Status:    int(res.status),
			Conflicts: res.conflicts,
			Model:     cloneEnv(res.model),
		})
	}
	return finishBV(res, system, opts), nil
}

// warmResult converts a persisted query entry back into a raw result,
// distrusting satisfying models that no longer satisfy the system (a
// stale or foreign store must degrade to a miss, never to a wrong
// verdict).
func warmResult(e warmstore.QueryEntry, system []sym.Expr) (cachedResult, bool) {
	switch Status(e.Status) {
	case StatusUnsat:
		return cachedResult{status: StatusUnsat, conflicts: e.Conflicts}, true
	case StatusSat:
		for _, c := range system {
			if sym.Eval(c, e.Model) != 1 {
				return cachedResult{}, false
			}
		}
		return cachedResult{status: StatusSat, conflicts: e.Conflicts, model: e.Model}, true
	}
	return cachedResult{}, false
}

// raceOutcome is one worker's report.
type raceOutcome struct {
	res      cachedResult
	timedOut bool
	session  bool
	err      error
	imported int64 // clauses this worker adopted from the exchange
	shared   int64 // clauses this worker got admitted into the exchange
}

// race runs the incremental session and the diversified fresh workers on
// system, returning the first conclusive verdict (cancelling the rest)
// or the merged Unknown.
func (p *Portfolio) race(system []sym.Expr, opts Options, stableKey string, randSeed int64) (cachedResult, bool, error) {
	p.stats.Races++
	negated := system[len(system)-1]

	// Seed this query's exchange pool from the warm-start store once.
	exKey := ""
	if p.ex != nil {
		exKey = sym.CanonicalKey(system)
		if p.warm != nil {
			if cs := p.warm.Clauses(stableKey); len(cs) > 0 {
				p.stats.WarmClausesSeeded += p.ex.Seed(exKey, cs)
			}
		}
	}

	raceCtx, cancel := context.WithCancel(p.ctx)
	defer cancel()

	results := make(chan raceOutcome, p.workers+1)
	var wg sync.WaitGroup

	// Worker 0: the incremental session. It is single-threaded state
	// shared with future Checks, so the race joins it before returning.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.sess.SetInterrupt(func() bool { return raceCtx.Err() != nil })
		defer p.sess.SetInterrupt(nil)
		r, err := p.sess.CheckSeeded(negated, randSeed)
		results <- raceOutcome{
			res:      cachedResult{status: r.Status, conflicts: r.Conflicts, model: r.Model},
			timedOut: r.Status == StatusUnknown,
			session:  true,
			err:      err,
		}
	}()

	for i := 0; i < p.workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := diversifiedConfig(i, randSeed)
			st, model, conflicts, timedOut, imported, shared, err :=
				p.freshWorker(raceCtx, system, opts, cfg, exKey, i)
			results <- raceOutcome{
				res:      cachedResult{status: st, conflicts: conflicts, model: model},
				timedOut: timedOut,
				err:      err,
				imported: imported,
				shared:   shared,
			}
		}(i)
	}

	var unknown cachedResult
	anyTimedOut := false
	var firstErr error
	winner := raceOutcome{}
	got := 0
	for got < p.workers+1 {
		o := <-results
		got++
		p.stats.ClausesImported += o.imported
		p.stats.ClausesShared += o.shared
		switch {
		case o.err != nil:
			if firstErr == nil {
				firstErr = o.err
			}
		case o.res.status == StatusSat || o.res.status == StatusUnsat:
			if winner.res.status == 0 {
				winner = o
				cancel() // losers exit at their next probe
			}
		default:
			anyTimedOut = anyTimedOut || o.timedOut
			if o.res.conflicts > unknown.conflicts {
				unknown.conflicts = o.res.conflicts
			}
		}
	}
	wg.Wait()

	// Persist this query's pooled clauses for future processes.
	if p.ex != nil && p.warm != nil {
		if cs := p.ex.Snapshot(exKey); len(cs) > 0 {
			p.warm.PutClauses(stableKey, cs)
		}
	}

	if winner.res.status != 0 {
		if winner.session {
			p.stats.SessionWins++
		} else {
			p.stats.FreshWins++
		}
		p.stats.Conflicts += winner.res.conflicts
		return winner.res, false, nil
	}
	if firstErr != nil {
		return cachedResult{}, false, firstErr
	}
	unknown.status = StatusUnknown
	p.stats.Conflicts += unknown.conflicts
	// A session Unknown is always flagged timedOut (its budget may bind
	// earlier than the fresh workers'); the race is conflict-budget
	// deterministic only if every fresh worker exhausted deterministically.
	return unknown, anyTimedOut, nil
}

// freshWorker encodes and solves system on a fresh diversified CDCL
// instance, publishing learned clauses to — and adopting peers' clauses
// from — the exchange at restart boundaries.
func (p *Portfolio) freshWorker(ctx context.Context, system []sym.Expr, opts Options,
	cfg sat.Config, exKey string, origin int) (st Status, model map[string]uint64,
	conflicts int64, timedOut bool, imported, shared int64, err error) {

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	expired := func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}

	s := sat.New()
	s.Configure(cfg)
	enc := bitblast.New(s)
	for _, c := range system {
		if expired() {
			return StatusUnknown, nil, 0, true, 0, 0, nil
		}
		if aerr := enc.Assert(c); aerr != nil {
			if errors.Is(aerr, bitblast.ErrFloat) {
				return StatusFloatUnsupported, nil, 0, false, 0, 0, nil
			}
			if errors.Is(aerr, bitblast.ErrBudget) {
				return StatusUnknown, nil, 0, false, 0, 0, nil
			}
			return 0, nil, 0, false, 0, 0, aerr
		}
	}

	cursor := 0
	if p.ex != nil {
		s.SetLearnHook(func(lits []sat.Lit, lbd int) {
			// Runs on this worker's goroutine: shared is goroutine-local.
			if p.ex.Publish(exKey, origin, lits, lbd) {
				shared++
			}
		})
		// The probe runs on the solver's goroutine at decision level 0 —
		// the sound point to queue peer clauses for adoption.
		var pulled [][]sat.Lit
		pulled, cursor = p.ex.Pull(exKey, origin, cursor)
		s.ImportLearned(pulled)
	}
	probe := func() bool {
		if ctx.Err() != nil {
			return true
		}
		if p.ex != nil {
			var pulled [][]sat.Lit
			pulled, cursor = p.ex.Pull(exKey, origin, cursor)
			if len(pulled) > 0 {
				s.ImportLearned(pulled)
			}
		}
		return false
	}

	res := s.SolveInterruptible(opts.MaxConflicts, deadline, probe)
	stats := s.Stats()
	conflicts = stats.Conflicts
	imported = stats.Imported
	switch res {
	case sat.Sat:
		return StatusSat, enc.Model(), conflicts, false, imported, shared, nil
	case sat.Unsat:
		return StatusUnsat, nil, conflicts, false, imported, shared, nil
	default:
		return StatusUnknown, nil, conflicts, expired(), imported, shared, nil
	}
}
