package solver

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sym"
)

// eqSys builds x == v over an 8-bit variable.
func eqSys(name string, v uint64) []sym.Expr {
	return []sym.Expr{sym.NewBin(sym.OpEq, sym.NewVar(name, 8), sym.NewConst(v, 8))}
}

func TestCacheHitOnStructurallyEqualSystem(t *testing.T) {
	c := NewCache(16)
	r1, err := c.Solve(eqSys("x", 7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Solve(eqSys("x", 7), Options{}) // fresh allocations, same structure
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != StatusSat || r2.Status != StatusSat {
		t.Fatalf("status %v/%v", r1.Status, r2.Status)
	}
	if !reflect.DeepEqual(r1.Model, r2.Model) {
		t.Errorf("cached model %v differs from fresh %v", r2.Model, r1.Model)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
}

func TestCacheTransparency(t *testing.T) {
	// For any seed, Cache.Solve must return bit-for-bit what Solve
	// returns — including on a hit, where the seed-dependent completion
	// and minimization run on the cached raw model.
	sys := func() []sym.Expr {
		x := sym.NewVar("x", 8)
		y := sym.NewVar("y", 8)
		return []sym.Expr{
			sym.NewBin(sym.OpEq, sym.NewBin(sym.OpAdd, x, y), sym.NewConst(10, 8)),
		}
	}
	seeds := []map[string]uint64{
		{"x": 3, "y": 7},
		{"x": 10, "y": 0},
		{"x": 1, "y": 1},
		nil,
	}
	c := NewCache(16)
	for i, seed := range seeds {
		want, err := Solve(sys(), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Solve(sys(), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || !reflect.DeepEqual(got.Model, want.Model) {
			t.Errorf("seed %d: cache %v/%v, direct %v/%v",
				i, got.Status, got.Model, want.Status, want.Model)
		}
	}
	if st := c.Stats(); st.Hits != uint64(len(seeds)-1) {
		t.Errorf("hits = %d, want %d (same system, varying seeds)", st.Hits, len(seeds)-1)
	}
}

func TestCacheUnsatAndMutationIsolation(t *testing.T) {
	c := NewCache(16)
	unsat := func() []sym.Expr {
		x := sym.NewVar("x", 8)
		return []sym.Expr{
			sym.NewBin(sym.OpEq, x, sym.NewConst(1, 8)),
			sym.NewBin(sym.OpEq, x, sym.NewConst(2, 8)),
		}
	}
	r1, _ := c.Solve(unsat(), Options{})
	r2, _ := c.Solve(unsat(), Options{})
	if r1.Status != StatusUnsat || r2.Status != StatusUnsat {
		t.Fatalf("status %v/%v, want unsat", r1.Status, r2.Status)
	}

	// Mutating a returned model must not corrupt the cached entry.
	r3, _ := c.Solve(eqSys("m", 5), Options{})
	r3.Model["m"] = 99
	r4, _ := c.Solve(eqSys("m", 5), Options{})
	if r4.Model["m"] != 5 {
		t.Errorf("cached entry corrupted by caller mutation: %v", r4.Model)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for v := uint64(0); v < 4; v++ {
		if _, err := c.Solve(eqSys("x", v), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Len != 2 {
		t.Errorf("evictions=%d len=%d, want 2/2", st.Evictions, st.Len)
	}
	// Oldest entries are gone; newest still hit.
	c.Solve(eqSys("x", 3), Options{}) //nolint:errcheck
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
}

func TestCacheFloatBypass(t *testing.T) {
	c := NewCache(16)
	x := sym.NewVar("f", 64)
	sys := []sym.Expr{sym.NewBin(sym.OpFEq, x, sym.NewConst(0x3ff0000000000000, 64))}
	r, err := c.Solve(sys, Options{Seed: map[string]uint64{"f": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusSat {
		t.Fatalf("status %v", r.Status)
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.Hits+st.Misses != 0 {
		t.Errorf("float system must bypass the cache: %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sys := eqSys(fmt.Sprintf("v%d", i%10), uint64(i%10))
				r, err := c.Solve(sys, Options{})
				if err != nil || r.Status != StatusSat {
					t.Errorf("goroutine %d: %v %v", g, r.Status, err)
					return
				}
				if r.Model[fmt.Sprintf("v%d", i%10)] != uint64(i%10) {
					t.Errorf("goroutine %d: wrong model %v", g, r.Model)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Hits == 0 {
		t.Error("expected concurrent hits")
	}
}
