package bin

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func sampleImage() *Image {
	return &Image{
		Entry: TextBase,
		Sections: []Section{
			{Name: ".text", Addr: TextBase, Data: []byte{1, 2, 3, 4}},
			{Name: ".data", Addr: DataBase, Data: []byte("hello")},
		},
		Symbols: []Symbol{
			{Name: "_start", Addr: TextBase},
			{Name: "main", Addr: TextBase + 4},
			{Name: "bomb", Addr: TextBase + 100},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := sampleImage()
	data := im.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Entry != im.Entry {
		t.Errorf("Entry = %#x, want %#x", got.Entry, im.Entry)
	}
	if len(got.Sections) != len(im.Sections) || len(got.Symbols) != len(im.Symbols) {
		t.Fatalf("counts = %d/%d, want %d/%d",
			len(got.Sections), len(got.Symbols), len(im.Sections), len(im.Symbols))
	}
	for i, s := range im.Sections {
		g := got.Sections[i]
		if g.Name != s.Name || g.Addr != s.Addr || !bytes.Equal(g.Data, s.Data) {
			t.Errorf("section %d mismatch: %+v vs %+v", i, g, s)
		}
	}
	for i, s := range im.Symbols {
		if got.Symbols[i] != s {
			t.Errorf("symbol %d = %+v, want %+v", i, got.Symbols[i], s)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	data := sampleImage().Encode()
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Errorf("Decode bad magic err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	data := sampleImage().Encode()
	for _, n := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix should fail", n)
		}
	}
}

func TestDecodeUnreasonableCounts(t *testing.T) {
	im := &Image{}
	data := im.Encode()
	// Corrupt the section count field (offset 12) to a huge value.
	data[12], data[13], data[14], data[15] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Decode(data); err == nil {
		t.Error("Decode with absurd section count should fail")
	}
}

func TestSymbolLookup(t *testing.T) {
	im := sampleImage()
	addr, ok := im.Symbol("bomb")
	if !ok || addr != TextBase+100 {
		t.Errorf("Symbol(bomb) = %#x, %v", addr, ok)
	}
	if _, ok := im.Symbol("nope"); ok {
		t.Error("Symbol(nope) should not be found")
	}
}

func TestSectionLookupAndRanges(t *testing.T) {
	im := sampleImage()
	s, ok := im.Section(".data")
	if !ok || s.Addr != DataBase {
		t.Errorf("Section(.data) = %+v, %v", s, ok)
	}
	lo, hi, ok := im.TextRange()
	if !ok || lo != TextBase || hi != TextBase+4 {
		t.Errorf("TextRange = %#x..%#x, %v", lo, hi, ok)
	}
	empty := &Image{}
	if _, _, ok := empty.TextRange(); ok {
		t.Error("TextRange on empty image should fail")
	}
	if im.Size() != 4+5 {
		t.Errorf("Size = %d, want 9", im.Size())
	}
}

func TestSymbolAt(t *testing.T) {
	im := sampleImage()
	tests := []struct {
		addr uint64
		want string
		ok   bool
	}{
		{TextBase, "_start", true},
		{TextBase + 5, "main", true},
		{TextBase + 1000, "bomb", true},
		{0, "", false},
	}
	for _, tt := range tests {
		got, ok := im.SymbolAt(tt.addr)
		if got != tt.want || ok != tt.ok {
			t.Errorf("SymbolAt(%#x) = %q, %v; want %q, %v", tt.addr, got, ok, tt.want, tt.ok)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(entry uint64, names []string, blobs [][]byte) bool {
		im := &Image{Entry: entry}
		for i, n := range names {
			if len(n) > 64 {
				n = n[:64]
			}
			var data []byte
			if i < len(blobs) {
				data = blobs[i]
				if len(data) > 4096 {
					data = data[:4096]
				}
			}
			im.Sections = append(im.Sections, Section{Name: n, Addr: uint64(i) * 0x1000, Data: data})
			im.Symbols = append(im.Symbols, Symbol{Name: n, Addr: uint64(i)})
		}
		got, err := Decode(im.Encode())
		if err != nil {
			return false
		}
		if got.Entry != im.Entry || len(got.Sections) != len(im.Sections) {
			return false
		}
		for i := range im.Sections {
			if got.Sections[i].Name != im.Sections[i].Name {
				return false
			}
			if !bytes.Equal(got.Sections[i].Data, im.Sections[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
