// Package bin defines LBF ("logic-bomb format"), the small binary image
// container produced by the assembler and consumed by the loader: a set of
// sections mapped at fixed addresses, a symbol table, and an entry point.
// It plays the role ELF plays for the binaries studied in the paper.
package bin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Canonical memory layout for LBF images.
const (
	// TextBase is where the .text section is mapped.
	TextBase = 0x0000_1000
	// DataBase is where the .data section is mapped.
	DataBase = 0x0002_0000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop = 0x7fff_f000
	// ArgBase is where the loader places the argv block.
	ArgBase = 0x7ffe_0000
	// HeapBase is scratch space available to guest programs.
	HeapBase = 0x0010_0000
)

// Magic identifies an LBF image.
var Magic = [4]byte{'L', 'B', 'F', '1'}

// Errors returned by Decode.
var (
	ErrBadMagic  = errors.New("bin: bad magic")
	ErrTruncated = errors.New("bin: truncated image")
)

// Section is a named blob mapped at a fixed virtual address.
type Section struct {
	Name string
	Addr uint64
	Data []byte
}

// Symbol is a named address, used for entry points and directed-search
// targets (the `bomb` symbol).
type Symbol struct {
	Name string
	Addr uint64
}

// Image is a loadable LB64 binary.
type Image struct {
	Entry    uint64
	Sections []Section
	Symbols  []Symbol
}

// Symbol returns the address of the named symbol.
func (im *Image) Symbol(name string) (uint64, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s.Addr, true
		}
	}
	return 0, false
}

// Section returns the named section.
func (im *Image) Section(name string) (Section, bool) {
	for _, s := range im.Sections {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// TextRange returns the [lo, hi) address range of the text section, used to
// validate symbolic jump targets. ok is false if there is no text section.
func (im *Image) TextRange() (lo, hi uint64, ok bool) {
	s, ok := im.Section(".text")
	if !ok {
		return 0, 0, false
	}
	return s.Addr, s.Addr + uint64(len(s.Data)), true
}

// Size returns the total number of mapped bytes.
func (im *Image) Size() int {
	n := 0
	for _, s := range im.Sections {
		n += len(s.Data)
	}
	return n
}

// SymbolAt returns the name of the symbol with the greatest address that is
// <= addr, for diagnostics. ok is false if no symbol precedes addr.
func (im *Image) SymbolAt(addr uint64) (string, bool) {
	syms := make([]Symbol, len(im.Symbols))
	copy(syms, im.Symbols)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Addr < syms[j].Addr })
	best := ""
	found := false
	for _, s := range syms {
		if s.Addr <= addr {
			best, found = s.Name, true
		}
	}
	return best, found
}

// Encode serializes the image.
//
// Layout (all integers little-endian):
//
//	magic[4] | entry u64 | nsections u32 | nsymbols u32
//	per section: nameLen u32 | name | addr u64 | dataLen u32 | data
//	per symbol:  nameLen u32 | name | addr u64
func (im *Image) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	writeU64(&buf, im.Entry)
	writeU32(&buf, uint32(len(im.Sections)))
	writeU32(&buf, uint32(len(im.Symbols)))
	for _, s := range im.Sections {
		writeStr(&buf, s.Name)
		writeU64(&buf, s.Addr)
		writeU32(&buf, uint32(len(s.Data)))
		buf.Write(s.Data)
	}
	for _, s := range im.Symbols {
		writeStr(&buf, s.Name)
		writeU64(&buf, s.Addr)
	}
	return buf.Bytes()
}

// Decode parses a serialized image.
func Decode(data []byte) (*Image, error) {
	r := &reader{data: data}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	im := &Image{}
	var err error
	if im.Entry, err = r.u64(); err != nil {
		return nil, err
	}
	nsec, err := r.u32()
	if err != nil {
		return nil, err
	}
	nsym, err := r.u32()
	if err != nil {
		return nil, err
	}
	const maxCount = 1 << 20 // sanity bound against corrupt images
	if nsec > maxCount || nsym > maxCount {
		return nil, fmt.Errorf("%w: unreasonable counts %d/%d", ErrTruncated, nsec, nsym)
	}
	for i := uint32(0); i < nsec; i++ {
		name, err := r.str()
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		addr, err := r.u64()
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		n, err := r.u32()
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		data := make([]byte, n)
		if err := r.bytes(data); err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
		im.Sections = append(im.Sections, Section{Name: name, Addr: addr, Data: data})
	}
	for i := uint32(0); i < nsym; i++ {
		name, err := r.str()
		if err != nil {
			return nil, fmt.Errorf("symbol %d: %w", i, err)
		}
		addr, err := r.u64()
		if err != nil {
			return nil, fmt.Errorf("symbol %d: %w", i, err)
		}
		im.Symbols = append(im.Symbols, Symbol{Name: name, Addr: addr})
	}
	return im, nil
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	writeU32(buf, uint32(len(s)))
	buf.WriteString(s)
}

type reader struct {
	data []byte
	off  int
}

func (r *reader) bytes(dst []byte) error {
	if r.off+len(dst) > len(r.data) {
		return ErrTruncated
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
	return nil
}

func (r *reader) u32() (uint32, error) {
	var b [4]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (r *reader) u64() (uint64, error) {
	var b [8]byte
	if err := r.bytes(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > len(r.data)-r.off {
		return "", ErrTruncated
	}
	b := make([]byte, n)
	if err := r.bytes(b); err != nil {
		return "", err
	}
	return string(b), nil
}
