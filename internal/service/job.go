package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/bombs"
	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/suggest"
	"repro/internal/tools"
)

// State is a job's lifecycle position.
type State string

// Job states. queued -> running -> done | failed; cancellation can strike
// either live state.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether no further transition is possible.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Request is the analysis a client submits: which bomb, which tool
// profile, how many engine workers, which solver mode ("" or "fresh"
// for a SAT instance per query, "incremental" for per-round
// assumption-based sessions, "portfolio" for racing diversified
// workers with shared learned clauses), whether to use the server's
// warm-start store (portfolio only; requires concolicd -warmstart),
// and an optional per-job wall-clock budget that becomes the
// exploration context's deadline.
type Request struct {
	// Bomb is the legacy target field: the name of a registered logic
	// bomb. New clients should submit Target instead; Validate folds a
	// kind=bomb target into this field so the rest of the service (and
	// the persisted job journal) sees one canonical form either way.
	Bomb string `json:"bomb,omitempty"`
	// Target is the versioned target object. Today the only served kind
	// is "bomb"; "gofunc" (a Go function lowered by the congolic
	// frontend) is reserved and rejected with a self-explaining error.
	Target    *TargetSpec `json:"target,omitempty"`
	Tool      string      `json:"tool"`
	Workers   int         `json:"workers,omitempty"`
	Solver    string      `json:"solver,omitempty"`
	Warmstart bool        `json:"warmstart,omitempty"`
	BudgetMS  int64       `json:"budget_ms,omitempty"`
	// Strategy selects the frontier search order ("" or "generational",
	// "dfs", "coverage"); Fuzz enables the hybrid mutation stage
	// (coverage strategy only); CoverGoal, in (0, 1], stops the engine
	// early once that fraction of static basic blocks is covered.
	Strategy  string  `json:"strategy,omitempty"`
	Fuzz      bool    `json:"fuzz,omitempty"`
	CoverGoal float64 `json:"cover_goal,omitempty"`
}

// TargetSpec is the versioned job target. Kind "bomb" names a
// registered logic bomb and is the only kind this server executes;
// kind "gofunc" is reserved for a future concolicd that hosts the
// congolic Go-function frontend (Pkg and Func name the function).
// Unknown kinds are rejected with the uniform suggestion error so an
// old server gives a new client an actionable 400 rather than a silent
// misroute.
type TargetSpec struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"` // bomb name (kind=bomb)
	Pkg  string `json:"pkg,omitempty"`  // package path (kind=gofunc)
	Func string `json:"func,omitempty"` // function name (kind=gofunc)
}

// TargetKinds are the schema's known target kinds, served or reserved.
func TargetKinds() []string { return []string{"bomb", "gofunc"} }

// normalizeTarget folds the versioned Target object into the legacy
// Bomb field, so validation and execution see one canonical request.
func (r *Request) normalizeTarget() error {
	if r.Target == nil {
		return nil
	}
	switch r.Target.Kind {
	case "bomb":
		if r.Target.Name == "" {
			return errors.New("target.name is required for target.kind=bomb")
		}
		if r.Bomb != "" && r.Bomb != r.Target.Name {
			return fmt.Errorf("bomb %q and target.name %q disagree; set one",
				r.Bomb, r.Target.Name)
		}
		r.Bomb = r.Target.Name
		return nil
	case "gofunc":
		return errors.New(`target.kind "gofunc" is reserved and not served by this replica: ` +
			`concolicd executes registered bombs only; run cmd/congolic locally to explore Go functions`)
	case "":
		return errors.New("target.kind is required when target is set")
	default:
		return suggest.Unknown("target kind", r.Target.Kind, TargetKinds())
	}
}

// Validate checks the request against the bomb registry and the tool
// table, filling the tool default. A miss on the bomb name carries a
// closest-name suggestion, mirroring the concolic CLI.
func (r *Request) Validate() error {
	if err := r.normalizeTarget(); err != nil {
		return err
	}
	if r.Bomb == "" {
		return errors.New("missing required field: bomb (or a target object)")
	}
	if _, ok := bombs.ByName(r.Bomb); !ok {
		msg := fmt.Sprintf("unknown bomb %q", r.Bomb)
		if s := bombs.Closest(r.Bomb); s != "" {
			msg += fmt.Sprintf(" — did you mean %q?", s)
		}
		return errors.New(msg)
	}
	if r.Tool == "" {
		r.Tool = "reference"
	}
	if _, ok := tools.ByName(r.Tool); !ok {
		return fmt.Errorf("unknown tool %q (choose from %s)",
			r.Tool, strings.Join(tools.Names(), ", "))
	}
	if err := cliopts.Check(cliopts.Options{
		Workers:   r.Workers,
		Solver:    r.Solver,
		Warmstart: r.Warmstart,
		Strategy:  r.Strategy,
		Fuzz:      r.Fuzz,
		CoverGoal: r.CoverGoal,
	}, cliopts.WireDialect); err != nil {
		return err
	}
	if r.BudgetMS < 0 {
		return errors.New("budget_ms must be non-negative")
	}
	return nil
}

// solverMode maps the wire field to the engine capability.
func (r *Request) solverMode() (core.SolverMode, error) {
	return core.ParseSolverMode(r.Solver)
}

// searchStrategy maps the wire field to the engine capability.
func (r *Request) searchStrategy() (core.SearchStrategy, error) {
	return core.ParseSearchStrategy(r.Strategy)
}

// RunStats is the engine work profile exposed per job.
type RunStats struct {
	Workers       int    `json:"workers"`
	SolverQueries int    `json:"solver_queries"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	PeakFrontier  int    `json:"peak_frontier"`
	WallMS        int64  `json:"wall_ms"`
	// Portfolio/warm-start profile (zero outside solver=portfolio).
	PortfolioRaces    int   `json:"portfolio_races,omitempty"`
	ClausesShared     int64 `json:"portfolio_clauses_shared,omitempty"`
	WarmQueryHits     int   `json:"warmstart_query_hits,omitempty"`
	WarmClausesSeeded int   `json:"warmstart_clauses_seeded,omitempty"`
	// Coverage/fuzz profile.
	CoveredEdges      int `json:"covered_edges,omitempty"`
	CoveredBlocks     int `json:"covered_blocks,omitempty"`
	FuzzExecs         int `json:"fuzz_execs,omitempty"`
	FuzzSeedsPromoted int `json:"fuzz_seeds_promoted,omitempty"`
	// Cross-replica shared-cache profile (zero without -sharedcache).
	SharedCacheHits   uint64 `json:"sharedcache_hits,omitempty"`
	SharedCacheMisses uint64 `json:"sharedcache_misses,omitempty"`
	SharedCacheStores uint64 `json:"sharedcache_stores,omitempty"`
	SharedCacheServed uint64 `json:"sharedcache_served,omitempty"`
}

// SolvedInput is the detonating input of a solved job. Files values are
// base64 on the wire (encoding/json []byte convention).
type SolvedInput struct {
	Argv1   string            `json:"argv1"`
	TimeNow uint64            `json:"time,omitempty"`
	Pid     uint64            `json:"pid,omitempty"`
	Web     map[string]string `json:"web,omitempty"`
	Files   map[string][]byte `json:"files,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
}

// Result is a finished job's outcome. Label is exactly the Table II
// cell eval.Classify produces for the same {bomb, tool, workers} tuple
// ("" = correctly unreachable), so service results compare byte-for-byte
// with the CLI and the evaluation harness.
type Result struct {
	Verdict string       `json:"verdict"`
	Label   string       `json:"label"`
	Detail  string       `json:"detail,omitempty"`
	Rounds  int          `json:"rounds"`
	Input   *SolvedInput `json:"input,omitempty"`
	Stats   RunStats     `json:"stats"`
}

// resultFrom projects an engine outcome into the wire result.
func resultFrom(out *core.Outcome) *Result {
	res := &Result{
		Verdict: out.Verdict.String(),
		Label:   string(eval.Classify(out)),
		Detail:  out.CrashDetail,
		Rounds:  out.Rounds,
		Stats: RunStats{
			Workers:           out.Stats.Workers,
			SolverQueries:     out.Stats.SolverQueries,
			CacheHits:         out.Stats.CacheHits,
			CacheMisses:       out.Stats.CacheMisses,
			PeakFrontier:      out.Stats.PeakFrontier,
			WallMS:            out.Stats.WallTime.Milliseconds(),
			PortfolioRaces:    out.Stats.PortfolioRaces,
			ClausesShared:     out.Stats.PortfolioClausesShared,
			WarmQueryHits:     out.Stats.WarmQueryHits,
			WarmClausesSeeded: out.Stats.WarmClausesSeeded,
			CoveredEdges:      out.Stats.CoveredEdges,
			CoveredBlocks:     out.Stats.CoveredBlocks,
			FuzzExecs:         out.Stats.FuzzExecs,
			FuzzSeedsPromoted: out.Stats.FuzzSeedsPromoted,
			SharedCacheHits:   out.Stats.SharedCacheHits,
			SharedCacheMisses: out.Stats.SharedCacheMisses,
			SharedCacheStores: out.Stats.SharedCacheStores,
			SharedCacheServed: out.Stats.SharedCacheServed,
		},
	}
	if out.Verdict == core.VerdictSolved {
		res.Input = &SolvedInput{
			Argv1:   out.Input.Argv1,
			TimeNow: out.Input.TimeNow,
			Pid:     out.Input.Pid,
			Web:     out.Input.Web,
			Files:   out.Input.Files,
			Env:     out.Input.Env,
		}
	}
	return res
}

// ProgressEvent is one per-round streaming report: the engine's
// cumulative counters after a merged round (see core.Progress). Seq is
// the event's position in the job's progress sequence, the cursor for
// resuming a stream.
type ProgressEvent struct {
	Seq           int `json:"seq"`
	Round         int `json:"round"`
	SolverQueries int `json:"solver_queries"`
	CoveredEdges  int `json:"covered_edges"`
	CoveredBlocks int `json:"covered_blocks"`
	Frontier      int `json:"frontier"`
}

// Job is one queued analysis. All fields are guarded by the owning
// Store's mutex; handlers only see View snapshots.
type Job struct {
	ID     string
	Req    Request
	Tenant string // API key the job was submitted under ("" = anonymous)

	State           State
	CancelRequested bool
	Submitted       time.Time
	Started         time.Time
	Finished        time.Time
	Error           string
	Result          *Result

	// Replica is the fleet member executing the job: "" while local,
	// the stealer's identity after a lease. LeaseExpiry bounds a remote
	// lease; past it the reaper requeues the job.
	Replica     string
	LeaseExpiry time.Time

	// progress accumulates per-round streaming events; notify is closed
	// and replaced whenever progress grows or the job reaches a terminal
	// state, waking streaming handlers.
	progress []ProgressEvent
	notify   chan struct{}

	cancel context.CancelFunc // set while running
}

// View is the JSON snapshot of a job served to clients.
type View struct {
	ID              string  `json:"id"`
	Bomb            string  `json:"bomb"`
	Tool            string  `json:"tool"`
	Workers         int     `json:"workers,omitempty"`
	Solver          string  `json:"solver,omitempty"`
	Warmstart       bool    `json:"warmstart,omitempty"`
	Strategy        string  `json:"strategy,omitempty"`
	Fuzz            bool    `json:"fuzz,omitempty"`
	CoverGoal       float64 `json:"cover_goal,omitempty"`
	BudgetMS        int64   `json:"budget_ms,omitempty"`
	State           State   `json:"state"`
	CancelRequested bool    `json:"cancel_requested,omitempty"`
	Tenant          string  `json:"tenant,omitempty"`
	Replica         string  `json:"replica,omitempty"`
	Submitted       string  `json:"submitted_at"`
	Started         string  `json:"started_at,omitempty"`
	Finished        string  `json:"finished_at,omitempty"`
	Error           string  `json:"error,omitempty"`
	Result          *Result `json:"result,omitempty"`
	Progress        int     `json:"progress_events,omitempty"`
}

// view snapshots the job; call with the store lock held.
func (j *Job) view() View {
	v := View{
		ID:              j.ID,
		Bomb:            j.Req.Bomb,
		Tool:            j.Req.Tool,
		Workers:         j.Req.Workers,
		Solver:          j.Req.Solver,
		Warmstart:       j.Req.Warmstart,
		Strategy:        j.Req.Strategy,
		Fuzz:            j.Req.Fuzz,
		CoverGoal:       j.Req.CoverGoal,
		BudgetMS:        j.Req.BudgetMS,
		State:           j.State,
		CancelRequested: j.CancelRequested,
		Tenant:          j.Tenant,
		Replica:         j.Replica,
		Submitted:       j.Submitted.UTC().Format(time.RFC3339Nano),
		Error:           j.Error,
		Result:          j.Result,
		Progress:        len(j.progress),
	}
	if !j.Started.IsZero() {
		v.Started = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
