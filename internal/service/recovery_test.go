package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/jobstore"
)

func openJL(t *testing.T, dir string) *jobstore.Log {
	t.Helper()
	jl, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

// TestRecoveryAcrossRestart runs a job to completion on one server
// instance, restarts the service on the same store directory, and
// requires the finished result to be fetchable again.
func TestRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	jl1 := openJL(t, dir)
	s1 := New(Config{Workers: 2, QueueDepth: 8, ResolveProfile: fastResolve, Jobs: jl1})
	ts1 := httptest.NewServer(s1.Handler())
	_, v := postJob(t, ts1, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	done := waitState(t, ts1, v.ID, StateDone, 30*time.Second)
	if done.Result == nil || done.Result.Verdict != "unreachable" {
		t.Fatalf("pre-restart result: %+v", done.Result)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s1.Drain(ctx)
	cancel()
	ts1.Close()
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}

	jl2 := openJL(t, dir)
	defer jl2.Close()
	s2 := New(Config{Workers: 2, QueueDepth: 8, ResolveProfile: fastResolve, Jobs: jl2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	got := getJob(t, ts2, v.ID)
	if got.State != StateDone {
		t.Fatalf("restarted job state: %s", got.State)
	}
	if got.Result == nil || got.Result.Verdict != done.Result.Verdict ||
		got.Result.Label != done.Result.Label || got.Result.Rounds != done.Result.Rounds {
		t.Fatalf("restarted result diverged:\n got %+v\nwant %+v", got.Result, done.Result)
	}
	// ID assignment resumes past recovered jobs instead of reusing IDs.
	_, v2 := postJob(t, ts2, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	if v2.ID != "job-000002" {
		t.Fatalf("post-restart ID: %q", v2.ID)
	}
	waitState(t, ts2, v2.ID, StateDone, 30*time.Second)
}

// TestRecoveryResumesInterruptedJobs simulates a concolicd killed
// mid-flight: the store directory holds a running job (its engine died
// with the process), a queued job, a finished job, and a torn log tail
// from the fatal append. A new server over that directory must rerun
// the interrupted and queued jobs to completion, keep the finished
// result fetchable, and list everything in the original order.
func TestRecoveryResumesInterruptedJobs(t *testing.T) {
	dir := t.TempDir()

	crashed := openJL(t, dir)
	req, _ := json.Marshal(Request{Bomb: "jump", Tool: "reference", Workers: 1})
	res, _ := json.Marshal(Result{Verdict: "solved", Label: "", Rounds: 2})
	crashed.Put(jobstore.Record{ID: "job-000001", Req: req, State: string(StateRunning), Submitted: time.Now()})
	crashed.Put(jobstore.Record{ID: "job-000002", Req: req, State: string(StateQueued), Submitted: time.Now()})
	crashed.Put(jobstore.Record{ID: "job-000003", Req: req, State: string(StateDone), Submitted: time.Now(), Result: res})
	// The process died mid-append: leave an unterminated fragment and
	// no Close/Compact.
	f, err := os.OpenFile(filepath.Join(dir, "log.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(`{"t":"j","j":{"id":"job-000004","sta`)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jl := openJL(t, dir)
	defer jl.Close()
	s := New(Config{Workers: 2, QueueDepth: 8, ResolveProfile: fastResolve, Jobs: jl})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	// The interrupted (running) and queued jobs rerun to completion.
	for _, id := range []string{"job-000001", "job-000002"} {
		v := waitState(t, ts, id, StateDone, 30*time.Second)
		if v.Result == nil || v.Result.Verdict != "unreachable" {
			t.Fatalf("recovered job %s result: %+v", id, v.Result)
		}
	}
	// The finished job's result survived without rerunning.
	v := getJob(t, ts, "job-000003")
	if v.State != StateDone || v.Result == nil || v.Result.Rounds != 2 {
		t.Fatalf("finished job after recovery: %+v", v)
	}
	// Stable creation order survives replay.
	views, total := s.store.Page(0, 0)
	if total != 3 {
		t.Fatalf("recovered %d jobs, want 3", total)
	}
	for i, want := range []string{"job-000001", "job-000002", "job-000003"} {
		if views[i].ID != want {
			t.Fatalf("recovered order[%d] = %s, want %s", i, views[i].ID, want)
		}
	}
}
