package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/jobstore"
)

// Store is the job registry. One mutex guards every job's fields; all
// state transitions go through its methods so the lifecycle invariants
// hold under concurrent handlers and workers. With a jobstore attached
// (Recover), every transition also appends a full job record to the
// disk journal, so queued work and finished results survive a restart.
type Store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
	jl     *jobstore.Log // nil = in-memory only
}

// NewStore returns an empty in-memory registry.
func NewStore() *Store {
	return &Store{jobs: make(map[string]*Job)}
}

// Recover attaches a disk journal and replays its records into the
// registry: terminal jobs come back with their results fetchable,
// queued jobs come back queued, and jobs that were running when the
// process died are requeued (their engines died with it; rerunning
// yields the identical verdict). It returns the jobs to re-enqueue, in
// original submission order, and must be called before the store is
// shared. ID assignment resumes past the highest recovered ID.
func (s *Store) Recover(jl *jobstore.Log) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jl = jl
	if jl == nil {
		return nil
	}
	var requeue []*Job
	for _, r := range jl.Records() {
		j := &Job{
			ID:        r.ID,
			Tenant:    r.Tenant,
			State:     State(r.State),
			Submitted: r.Submitted,
			Started:   r.Started,
			Finished:  r.Finished,
			Error:     r.Error,
		}
		if json.Unmarshal(r.Req, &j.Req) != nil {
			continue // foreign or corrupt record: not runnable, drop it
		}
		if len(r.Result) > 0 {
			var res Result
			if json.Unmarshal(r.Result, &res) == nil {
				j.Result = &res
			}
		}
		requeued := false
		if j.State == StateRunning || j.State == StateQueued {
			// The previous process's engine (local or leased) is gone.
			requeued = j.State == StateRunning
			j.State = StateQueued
			j.Started = time.Time{}
			j.Replica = ""
			requeue = append(requeue, j)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n, err := strconv.Atoi(strings.TrimPrefix(r.ID, "job-")); err == nil && n > s.nextID {
			s.nextID = n
		}
		if requeued {
			s.persistLocked(j) // the running→queued repair must survive the next crash
		}
	}
	return requeue
}

// persistLocked journals the job's current state; call with the store
// lock held. A nil journal makes it a no-op.
func (s *Store) persistLocked(j *Job) {
	if s.jl == nil {
		return
	}
	req, err := json.Marshal(j.Req)
	if err != nil {
		return
	}
	rec := jobstore.Record{
		ID:        j.ID,
		Req:       req,
		State:     string(j.State),
		Tenant:    j.Tenant,
		Replica:   j.Replica,
		Submitted: j.Submitted,
		Started:   j.Started,
		Finished:  j.Finished,
		Error:     j.Error,
	}
	if j.Result != nil {
		if res, err := json.Marshal(j.Result); err == nil {
			rec.Result = res
		}
	}
	s.jl.Put(rec)
}

// Add registers a new queued job and assigns its ID.
func (s *Store) Add(req Request, tenant string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Req:       req,
		Tenant:    tenant,
		State:     StateQueued,
		Submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.persistLocked(j)
	return j
}

// Remove deletes a job that never made it into the queue (submit
// rollback on backpressure).
func (s *Store) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.jl != nil {
		s.jl.Delete(id)
	}
}

// View snapshots one job.
func (s *Store) View(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// Views snapshots every job in stable submission order (recovered jobs
// keep their original positions).
func (s *Store) Views() []View {
	v, _ := s.Page(0, 0)
	return v
}

// Page snapshots a window of the job list in stable submission order:
// up to limit jobs starting at offset (limit <= 0 means all). The
// second result is the total job count, for pagination headers.
func (s *Store) Page(offset, limit int) ([]View, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := len(s.order)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	out := make([]View, 0, end-offset)
	for _, id := range s.order[offset:end] {
		out = append(out, s.jobs[id].view())
	}
	return out, total
}

// MarkRunning transitions a popped job to running and installs its
// cancel function. It returns false when the job left the queued state
// while waiting (cancelled, leased to another replica, or finished
// remotely); the worker must then skip it without running anything.
func (s *Store) MarkRunning(j *Job, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.State != StateQueued {
		return false
	}
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	s.persistLocked(j)
	return true
}

// Finish transitions a running job to a terminal state.
func (s *Store) Finish(j *Job, state State, res *Result, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.State = state
	j.Finished = time.Now()
	j.Result = res
	j.Error = errMsg
	j.cancel = nil
	s.persistLocked(j)
	s.wakeLocked(j)
}

// Lease transitions queued jobs to running on behalf of a remote
// replica: up to max jobs (in submission order) are marked running with
// the stealer's identity and a lease deadline, and returned for the
// stealer to execute. Cancelled or already-claimed jobs are skipped.
// The pool's queue channel still holds these jobs; when a local worker
// eventually pops one, MarkRunning sees the non-queued state and skips.
func (s *Store) Lease(replica string, max int, expiry time.Time) []*Job {
	if max <= 0 || replica == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		if len(out) >= max {
			break
		}
		j := s.jobs[id]
		if j.State != StateQueued {
			continue
		}
		j.State = StateRunning
		j.Started = time.Now()
		j.Replica = replica
		j.LeaseExpiry = expiry
		s.persistLocked(j)
		out = append(out, j)
	}
	return out
}

// ExpireLeases requeues remote jobs whose lease has lapsed (the stealer
// died or stalled): state returns to queued and the jobs are returned
// for re-enqueueing. Rerunning is safe — verdicts are deterministic,
// and a late remote result for a requeued job is still accepted while
// the local rerun is in flight (first terminal transition wins).
func (s *Store) ExpireLeases(now time.Time) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateRunning || j.Replica == "" || j.LeaseExpiry.IsZero() || now.Before(j.LeaseExpiry) {
			continue
		}
		j.State = StateQueued
		j.Started = time.Time{}
		j.Replica = ""
		j.LeaseExpiry = time.Time{}
		s.persistLocked(j)
		out = append(out, j)
	}
	return out
}

// FinishRemote records a result posted back by a stealer. The job must
// not already be terminal; a requeued-but-not-yet-rerun job is
// accepted (its local rerun will be skipped by the MarkRunning guard).
// wasRunning reports whether the job occupied the running gauge.
func (s *Store) FinishRemote(id, replica string, state State, res *Result, errMsg string) (View, bool, error) {
	if !state.Terminal() {
		return View{}, false, fmt.Errorf("non-terminal result state %q", state)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false, ErrNotFound
	}
	if j.State.Terminal() {
		return View{}, false, ErrFinished
	}
	wasRunning := j.State == StateRunning
	if j.cancel != nil {
		// A local worker picked it up (e.g. after lease expiry): stop it.
		j.cancel()
		j.cancel = nil
	}
	j.State = state
	j.Finished = time.Now()
	j.Result = res
	j.Error = errMsg
	if replica != "" {
		j.Replica = replica
	}
	j.LeaseExpiry = time.Time{}
	s.persistLocked(j)
	s.wakeLocked(j)
	return j.view(), wasRunning, nil
}

// AppendProgress records one per-round streaming event and wakes
// streamers. Progress is in-memory only: it narrates a live run and is
// superseded by the final result.
func (s *Store) AppendProgress(j *Job, ev ProgressEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.Seq = len(j.progress)
	j.progress = append(j.progress, ev)
	s.wakeLocked(j)
}

// wakeLocked wakes every goroutine waiting on the job's notify channel;
// call with the store lock held.
func (s *Store) wakeLocked(j *Job) {
	if j.notify != nil {
		close(j.notify)
		j.notify = nil
	}
}

// ProgressSince returns the job's progress events from sequence number
// from on, the job's current state, and a channel that closes on the
// next change (more events, or a terminal transition) — the blocking
// primitive under both streaming endpoints. The channel is nil when the
// job is already terminal.
func (s *Store) ProgressSince(id string, from int) ([]ProgressEvent, State, <-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", nil, ErrNotFound
	}
	var evs []ProgressEvent
	if from < 0 {
		from = 0
	}
	if from < len(j.progress) {
		evs = append(evs, j.progress[from:]...)
	}
	if j.State.Terminal() {
		return evs, j.State, nil, nil
	}
	if j.notify == nil {
		j.notify = make(chan struct{})
	}
	return evs, j.State, j.notify, nil
}

// Cancellation errors.
var (
	ErrNotFound = errors.New("no such job")
	// ErrFinished is returned when cancelling a job already in a terminal
	// state (HTTP 409).
	ErrFinished = errors.New("job already finished")
)

// RequestCancel cancels the named job. A queued job flips to cancelled
// immediately (the worker will skip it); a running job gets its context
// cancelled and reports back through the worker, which observes
// ctx.Done() mid-round. The returned state is the job's state after the
// request: cancelled, or running while the worker winds down.
func (s *Store) RequestCancel(id string) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", ErrNotFound
	}
	switch {
	case j.State == StateQueued:
		j.State = StateCancelled
		j.CancelRequested = true
		j.Finished = time.Now()
		s.persistLocked(j)
		s.wakeLocked(j)
		return StateCancelled, nil
	case j.State == StateRunning:
		j.CancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		s.persistLocked(j)
		return StateRunning, nil
	default:
		return j.State, ErrFinished
	}
}

// Counts tallies jobs by state (queue introspection for metrics).
func (s *Store) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, 5)
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}

// ActiveByTenant counts the tenant's live (queued or running) jobs, the
// budget the TenantMaxActive limit is enforced against.
func (s *Store) ActiveByTenant(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Tenant == tenant && (j.State == StateQueued || j.State == StateRunning) {
			n++
		}
	}
	return n
}
