package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Store is the in-memory job registry. One mutex guards every job's
// fields; all state transitions go through its methods so the lifecycle
// invariants hold under concurrent handlers and workers.
type Store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int
}

// NewStore returns an empty registry.
func NewStore() *Store {
	return &Store{jobs: make(map[string]*Job)}
}

// Add registers a new queued job and assigns its ID.
func (s *Store) Add(req Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Req:       req,
		State:     StateQueued,
		Submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// Remove deletes a job that never made it into the queue (submit
// rollback on backpressure).
func (s *Store) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// View snapshots one job.
func (s *Store) View(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// Views snapshots every job in submission order.
func (s *Store) Views() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// MarkRunning transitions a popped job to running and installs its
// cancel function. It returns false when the job was cancelled while
// queued; the worker must then skip it without running anything.
func (s *Store) MarkRunning(j *Job, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.State != StateQueued {
		return false
	}
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	return true
}

// Finish transitions a running job to a terminal state.
func (s *Store) Finish(j *Job, state State, res *Result, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.State = state
	j.Finished = time.Now()
	j.Result = res
	j.Error = errMsg
	j.cancel = nil
}

// Cancellation errors.
var (
	ErrNotFound = errors.New("no such job")
	// ErrFinished is returned when cancelling a job already in a terminal
	// state (HTTP 409).
	ErrFinished = errors.New("job already finished")
)

// RequestCancel cancels the named job. A queued job flips to cancelled
// immediately (the worker will skip it); a running job gets its context
// cancelled and reports back through the worker, which observes
// ctx.Done() mid-round. The returned state is the job's state after the
// request: cancelled, or running while the worker winds down.
func (s *Store) RequestCancel(id string) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", ErrNotFound
	}
	switch {
	case j.State == StateQueued:
		j.State = StateCancelled
		j.CancelRequested = true
		j.Finished = time.Now()
		return StateCancelled, nil
	case j.State == StateRunning:
		j.CancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return StateRunning, nil
	default:
		return j.State, ErrFinished
	}
}

// Counts tallies jobs by state (queue introspection for metrics).
func (s *Store) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, 5)
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}
