package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/eval"
	"repro/internal/sharedcache"
	"repro/internal/solver"
)

func openTestTier(t *testing.T, dir string) *sharedcache.Tier {
	t.Helper()
	tier, err := sharedcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

// TestFleetStealsQueuedJobs wires a two-replica fleet: replica A's only
// worker is pinned by a long job, so its queued job must be stolen,
// executed and posted back by idle replica B.
func TestFleetStealsQueuedJobs(t *testing.T) {
	_, tsA := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, ResolveProfile: slowResolver,
		Replica: "a",
	})
	_, tsB := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, ResolveProfile: fastResolve,
		Replica: "b", Peers: []string{tsA.URL}, StealInterval: 20 * time.Millisecond,
	})

	// Pin A's worker, then queue the job B should steal.
	_, blocker := postJob(t, tsA, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, tsA, blocker.ID, StateRunning, 10*time.Second)
	_, victim := postJob(t, tsA, Request{Bomb: "jump", Tool: "reference", Workers: 1})

	done := waitState(t, tsA, victim.ID, StateDone, 30*time.Second)
	if done.Replica != "b" {
		t.Errorf("stolen job replica %q, want %q", done.Replica, "b")
	}
	if done.Result == nil || done.Result.Verdict != "unreachable" {
		t.Fatalf("stolen job result: %+v", done.Result)
	}
	if r := cancelJob(t, tsA, blocker.ID); r.StatusCode != http.StatusOK {
		t.Fatalf("cancel blocker: %d", r.StatusCode)
	}

	if v := metricValue(t, tsA, "concolicd_steal_leased_total"); v < 1 {
		t.Errorf("victim leased counter = %v, want >= 1", v)
	}
	if v := metricValue(t, tsA, "concolicd_steal_remote_results_total"); v < 1 {
		t.Errorf("victim remote-results counter = %v, want >= 1", v)
	}
	if v := metricValue(t, tsB, "concolicd_steal_stolen_total"); v < 1 {
		t.Errorf("stealer stolen counter = %v, want >= 1", v)
	}
}

// TestStealLeaseExpiry kills the stealer instead: a leased job whose
// replica never reports back is requeued by the lease reaper and
// finishes locally.
func TestStealLeaseExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, ResolveProfile: slowResolver,
		Replica: "victim", StealLease: 300 * time.Millisecond,
	})

	_, blocker := postJob(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, ts, blocker.ID, StateRunning, 10*time.Second)
	_, victim := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})

	// A "stealer" leases the queued job and then dies.
	body, _ := json.Marshal(StealRequest{Replica: "ghost", Max: 1})
	resp, err := http.Post(ts.URL+"/v1/steal", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr StealResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if len(sr.Jobs) != 1 || sr.Jobs[0].ID != victim.ID || sr.Jobs[0].Req.Bomb != "jump" {
		t.Fatalf("steal response: %+v", sr)
	}
	if v := getJob(t, ts, victim.ID); v.State != StateRunning || v.Replica != "ghost" {
		t.Fatalf("leased job view: %+v", v)
	}

	// Past the lease the reaper requeues; release the worker and the job
	// finishes locally.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := getJob(t, ts, victim.ID); v.State == StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if r := cancelJob(t, ts, blocker.ID); r.StatusCode != http.StatusOK {
		t.Fatalf("cancel blocker: %d", r.StatusCode)
	}
	done := waitState(t, ts, victim.ID, StateDone, 30*time.Second)
	if done.Replica != "" {
		t.Errorf("locally rerun job still tagged replica %q", done.Replica)
	}
	if v := metricValue(t, ts, "concolicd_steal_lease_expired_total"); v < 1 {
		t.Errorf("lease-expired counter = %v, want >= 1", v)
	}
}

// TestSharedTierWarmMajority is the cross-replica cache differential:
// replica A solves a batch cold, then a fresh replica B sharing the
// same tier directory reruns the identical batch. B's metrics must show
// the majority of its negation queries answered by shared-tier-born
// results rather than re-solved.
func TestSharedTierWarmMajority(t *testing.T) {
	tierDir := t.TempDir()

	var batch []Request
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			continue
		}
		batch = append(batch, Request{Bomb: b.Name, Tool: "reference", Workers: 1})
		if len(batch) == 4 {
			break
		}
	}

	run := func(ts *httptest.Server) {
		t.Helper()
		var ids []string
		for _, req := range batch {
			_, v := postJob(t, ts, req)
			ids = append(ids, v.ID)
		}
		for _, id := range ids {
			waitState(t, ts, id, StateDone, 60*time.Second)
		}
	}

	_, tsA := newTestServer(t, Config{
		Workers: 2, QueueDepth: 8, ResolveProfile: fastResolve,
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
	})
	run(tsA)
	if v := metricValue(t, tsA, "concolicd_sharedcache_stores_total"); v < 1 {
		t.Fatalf("cold replica stored %v shared entries, want >= 1", v)
	}

	_, tsB := newTestServer(t, Config{
		Workers: 2, QueueDepth: 8, ResolveProfile: fastResolve,
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
	})
	run(tsB)

	queries := metricValue(t, tsB, "concolicd_solver_queries_total")
	served := metricValue(t, tsB, "concolicd_sharedcache_served_total")
	if queries < 1 {
		t.Fatalf("warm replica reported %v negation queries", queries)
	}
	if 2*served <= queries {
		t.Errorf("warm replica served %v of %v queries from the shared tier; want a majority", served, queries)
	}
}

// TestFleetGridMatchesSingleNode is the fleet acceptance differential:
// a two-replica fleet sharing one cache tier replays the full Table II
// grid, and every cell's verdict and label must be byte-identical to
// the single-node in-process grid.
func TestFleetGridMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid fleet comparison is slow; run without -short")
	}
	tierDir := t.TempDir()

	_, tsA := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64, Replica: "a",
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
	})
	_, tsB := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64, Replica: "b",
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
		Peers:       []string{tsA.URL}, StealInterval: 50 * time.Millisecond,
	})

	fleetGrid, err := eval.RunTableIIFleet(eval.FleetOptions{
		EngineWorkers: 2,
		Timeout:       8 * time.Minute,
	}, []string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	refGrid := eval.RunTableII(eval.Options{Workers: 4, EngineWorkers: 2})

	var diffs []string
	for _, b := range refGrid.Rows {
		for _, tool := range refGrid.Tools {
			ref := refGrid.Cell(b.Name, tool)
			got := fleetGrid.Cell(b.Name, tool)
			if got == nil {
				diffs = append(diffs, fmt.Sprintf("%s/%s: missing from fleet grid", b.Name, tool))
				continue
			}
			if got.Got != ref.Got || got.Mechanical != ref.Mechanical || got.Match != ref.Match {
				diffs = append(diffs, fmt.Sprintf("%s/%s: fleet {got %q mech %q match %v} vs single-node {got %q mech %q match %v}",
					b.Name, tool, got.Got, got.Mechanical, got.Match, ref.Got, ref.Mechanical, ref.Match))
			}
			if got.Outcome.Verdict != ref.Outcome.Verdict {
				diffs = append(diffs, fmt.Sprintf("%s/%s: fleet verdict %s vs single-node %s",
					b.Name, tool, got.Outcome.Verdict, ref.Outcome.Verdict))
			}
		}
	}
	if len(diffs) > 0 {
		t.Fatalf("fleet grid diverged from single-node in %d cells:\n%s",
			len(diffs), strings.Join(diffs, "\n"))
	}
}
