package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/tools"
)

// fastResolve mirrors the eval grid test's budget reduction: the
// wall-clock limits are raised well past what the included bombs need,
// so CPU sharing between concurrent jobs cannot flip a verdict — the
// binding bounds (round cap, conflict budget) are scheduling-independent.
func fastResolve(name string) (tools.Profile, bool) {
	p, ok := tools.ByName(name)
	if !ok {
		return p, false
	}
	p = tools.FastBudgets(p)
	p.Caps.TotalBudget = 2 * time.Minute
	p.Caps.SolverTimeout = 10 * time.Second
	return p, true
}

// TestServiceDeterminism is the service-level determinism guarantee:
// for every bomb×profile cell, the label a concolicd job reports equals
// the direct eval.Classify result for the same {bomb, tool, workers}
// tuple — even when every cell is submitted concurrently. The two
// crypto bombs are excluded for the same reason as the eval grid test:
// without a wall-clock ceiling their conflict-bounded queries run for
// minutes.
func TestServiceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid service comparison is slow; run without -short")
	}
	const engineWorkers = 2
	toolNames := []string{"bap", "triton", "angr", "angr-nolib"}
	var rows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			continue
		}
		rows = append(rows, b)
	}

	type cell struct{ bomb, tool string }
	var cells []cell
	for _, b := range rows {
		for _, tn := range toolNames {
			cells = append(cells, cell{b.Name, tn})
		}
	}

	s := New(Config{Workers: 4, QueueDepth: len(cells), ResolveProfile: fastResolve})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit every cell concurrently; determinism must hold regardless of
	// submission interleaving and queue order.
	ids := make([]string, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			body, _ := json.Marshal(Request{Bomb: c.bomb, Tool: c.tool, Workers: engineWorkers})
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var v View
			json.NewDecoder(resp.Body).Decode(&v)
			ids[i] = v.ID
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %s/%s: %v", cells[i].tool, cells[i].bomb, err)
		}
	}

	// Direct reference runs with identical caps, bounded concurrency.
	wantVerdict := make([]string, len(cells))
	wantLabel := make([]string, len(cells))
	sem := make(chan struct{}, 4)
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b, _ := bombs.ByName(c.bomb)
			p, _ := fastResolve(c.tool)
			p.Caps.Workers = engineWorkers
			out := core.New(b.Image(), b.BombAddr(), p.Caps).Explore(b.Benign)
			wantVerdict[i] = out.Verdict.String()
			wantLabel[i] = string(eval.Classify(out))
		}(i, c)
	}
	wg.Wait()

	for i, c := range cells {
		v := waitState(t, ts, ids[i], StateDone, 5*time.Minute)
		if v.Result == nil {
			t.Fatalf("%s/%s: done without result", c.tool, c.bomb)
		}
		if v.Result.Verdict != wantVerdict[i] || v.Result.Label != wantLabel[i] {
			t.Errorf("%s/%s: service %s/%q, direct %s/%q",
				c.tool, c.bomb, v.Result.Verdict, v.Result.Label,
				wantVerdict[i], wantLabel[i])
		}
	}
}
