package service

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/sym"
)

// Metrics aggregates the service counters and renders them in the
// Prometheus text exposition format, hand-rolled so the service carries
// no dependency. Engine-level counters come from each finished job's
// Outcome.Stats.
type Metrics struct {
	mu sync.Mutex

	submitted uint64
	rejected  uint64 // queue-full 429s
	running   int
	finished  map[State]uint64

	rounds        uint64
	solverQueries uint64
	cacheHits     uint64
	cacheMisses   uint64

	checkpointsTaken    uint64
	checkpointResumes   uint64
	instructionsSkipped uint64
	pagesCOWFaulted     uint64
	prefixReused        uint64

	solverSessions    uint64
	incrementalChecks uint64
	learnedRetained   uint64
	guardLiterals     uint64

	portfolioRaces    uint64
	portfolioShared   uint64
	portfolioImported uint64
	warmQueryHits     uint64
	warmClausesSeeded uint64

	coveredEdges      uint64
	coveredBlocks     uint64
	fuzzExecs         uint64
	fuzzSeedsPromoted uint64

	sharedHits   uint64
	sharedMisses uint64
	sharedStores uint64
	sharedServed uint64

	rateLimited   uint64
	leased        uint64 // jobs leased out to stealers
	stolen        uint64 // peer jobs this replica ran
	leasesExpired uint64
	remoteResults uint64 // stolen-job results accepted back

	wallBuckets []uint64 // one per wallBucketBound, non-cumulative
	wallSum     float64
	wallCount   uint64
}

// wallBucketBounds are the job wall-time histogram upper bounds, in
// seconds; +Inf is implicit.
var wallBucketBounds = []float64{0.01, 0.05, 0.25, 1, 5, 15, 60, 300}

// NewMetrics returns zeroed counters.
func NewMetrics() *Metrics {
	return &Metrics{
		finished:    make(map[State]uint64),
		wallBuckets: make([]uint64, len(wallBucketBounds)),
	}
}

// JobSubmitted counts an accepted submission.
func (m *Metrics) JobSubmitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
}

// JobRejected counts a queue-full rejection.
func (m *Metrics) JobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// JobStarted counts a worker picking a job up.
func (m *Metrics) JobStarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running++
}

// RateLimited counts a submission refused over a tenant budget (token
// bucket or active-job cap).
func (m *Metrics) RateLimited() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rateLimited++
}

// JobLeased counts a queued job handed to a stealing replica.
func (m *Metrics) JobLeased() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.leased++
}

// JobStolen counts a peer job this replica executed.
func (m *Metrics) JobStolen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stolen++
}

// LeaseExpired counts a stolen job requeued after its lease lapsed;
// it also releases the running-gauge slot the lease claimed.
func (m *Metrics) LeaseExpired() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.leasesExpired++
	m.running--
}

// JobFinishedRemote counts a stolen job's result arriving from its
// stealer. The engine ran elsewhere, so the only engine counters
// available are the wire RunStats — the shared-cache profile among
// them, which is exactly what fleet observability needs.
func (m *Metrics) JobFinishedRemote(state State, res *Result, wasRunning bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	m.remoteResults++
	if wasRunning {
		m.running--
	}
	if res == nil {
		return
	}
	m.solverQueries += uint64(res.Stats.SolverQueries)
	m.cacheHits += res.Stats.CacheHits
	m.cacheMisses += res.Stats.CacheMisses
	m.sharedHits += res.Stats.SharedCacheHits
	m.sharedMisses += res.Stats.SharedCacheMisses
	m.sharedStores += res.Stats.SharedCacheStores
	m.sharedServed += res.Stats.SharedCacheServed
	sec := float64(res.Stats.WallMS) / 1000
	m.wallSum += sec
	m.wallCount++
	for i, bound := range wallBucketBounds {
		if sec <= bound {
			m.wallBuckets[i]++
			break
		}
	}
}

// JobFinished counts a terminal transition. out may be nil (a job
// cancelled while queued never ran); wasRunning balances the running
// gauge.
func (m *Metrics) JobFinished(state State, out *core.Outcome, wasRunning bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished[state]++
	if wasRunning {
		m.running--
	}
	if out == nil {
		return
	}
	m.rounds += uint64(out.Stats.Rounds)
	m.solverQueries += uint64(out.Stats.SolverQueries)
	m.cacheHits += out.Stats.CacheHits
	m.cacheMisses += out.Stats.CacheMisses
	m.checkpointsTaken += uint64(out.Stats.CheckpointsTaken)
	m.checkpointResumes += uint64(out.Stats.CheckpointResumes)
	m.instructionsSkipped += uint64(out.Stats.InstructionsSkipped)
	m.pagesCOWFaulted += out.Stats.PagesCOWFaulted
	m.prefixReused += uint64(out.Stats.PrefixConstraintsReused)
	m.solverSessions += uint64(out.Stats.SolverSessions)
	m.incrementalChecks += uint64(out.Stats.IncrementalChecks)
	m.learnedRetained += uint64(out.Stats.LearnedClausesRetained)
	m.guardLiterals += uint64(out.Stats.GuardLiterals)
	m.portfolioRaces += uint64(out.Stats.PortfolioRaces)
	m.portfolioShared += uint64(out.Stats.PortfolioClausesShared)
	m.portfolioImported += uint64(out.Stats.PortfolioClausesImported)
	m.warmQueryHits += uint64(out.Stats.WarmQueryHits)
	m.warmClausesSeeded += uint64(out.Stats.WarmClausesSeeded)
	m.coveredEdges += uint64(out.Stats.CoveredEdges)
	m.coveredBlocks += uint64(out.Stats.CoveredBlocks)
	m.fuzzExecs += uint64(out.Stats.FuzzExecs)
	m.fuzzSeedsPromoted += uint64(out.Stats.FuzzSeedsPromoted)
	m.sharedHits += out.Stats.SharedCacheHits
	m.sharedMisses += out.Stats.SharedCacheMisses
	m.sharedStores += out.Stats.SharedCacheStores
	m.sharedServed += out.Stats.SharedCacheServed
	sec := out.Stats.WallTime.Seconds()
	m.wallSum += sec
	m.wallCount++
	for i, bound := range wallBucketBounds {
		if sec <= bound {
			m.wallBuckets[i]++
			break
		}
	}
}

// Render writes the Prometheus text exposition. Queue depth/capacity and
// worker count are owned by the pool and passed in.
func (m *Metrics) Render(queueDepth, queueCap, workers int) string {
	m.mu.Lock()
	defer m.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("concolicd_jobs_submitted_total", "Jobs accepted into the queue.", m.submitted)
	counter("concolicd_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected)

	fmt.Fprintf(&b, "# HELP concolicd_jobs_finished_total Jobs reaching a terminal state.\n")
	fmt.Fprintf(&b, "# TYPE concolicd_jobs_finished_total counter\n")
	states := []State{StateDone, StateCancelled, StateFailed}
	for _, st := range states {
		fmt.Fprintf(&b, "concolicd_jobs_finished_total{state=%q} %d\n", st, m.finished[st])
	}

	gauge("concolicd_jobs_running", "Jobs currently executing on the worker pool.", m.running)
	gauge("concolicd_queue_depth", "Jobs waiting in the queue.", queueDepth)
	gauge("concolicd_queue_capacity", "Queue bound; submissions beyond it receive 429.", queueCap)
	gauge("concolicd_workers", "Worker pool size.", workers)

	counter("concolicd_engine_rounds_total", "Exploration rounds across finished jobs.", m.rounds)
	counter("concolicd_solver_queries_total", "Negation queries across finished jobs.", m.solverQueries)
	counter("concolicd_solver_cache_hits_total", "Solver query cache hits across finished jobs.", m.cacheHits)
	counter("concolicd_solver_cache_misses_total", "Solver query cache misses across finished jobs.", m.cacheMisses)
	hitRate := 0.0
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		hitRate = float64(m.cacheHits) / float64(lookups)
	}
	gauge("concolicd_solver_cache_hit_ratio", "Cache hits over lookups across finished jobs.", fmt.Sprintf("%.4f", hitRate))

	counter("concolicd_checkpoints_taken_total", "Machine snapshots recorded across finished jobs.", m.checkpointsTaken)
	counter("concolicd_checkpoint_resumes_total", "Rounds resumed from a snapshot instead of _start.", m.checkpointResumes)
	counter("concolicd_checkpoint_instructions_skipped_total", "Guest instructions skipped via checkpointed replay.", m.instructionsSkipped)
	counter("concolicd_checkpoint_cow_faults_total", "Memory pages copied on write under snapshot sharing.", m.pagesCOWFaulted)
	counter("concolicd_checkpoint_prefix_constraints_total", "Path constraints re-derived from replayed trace prefixes.", m.prefixReused)

	counter("concolicd_solver_incremental_sessions_total", "Per-round incremental solver sessions opened across finished jobs.", m.solverSessions)
	counter("concolicd_solver_incremental_checks_total", "Negation queries answered inside an incremental session.", m.incrementalChecks)
	counter("concolicd_solver_incremental_learned_retained_total", "Learned clauses alive at the start of a follow-up incremental check.", m.learnedRetained)
	counter("concolicd_solver_incremental_guard_literals_total", "Guard literals allocated to activate per-check assertions.", m.guardLiterals)

	counter("concolicd_solver_portfolio_races_total", "Negation queries raced across diversified portfolio workers.", m.portfolioRaces)
	counter("concolicd_solver_portfolio_clauses_shared_total", "Learned clauses published to the portfolio exchange.", m.portfolioShared)
	counter("concolicd_solver_portfolio_clauses_imported_total", "Exchange clauses adopted by a peer portfolio worker.", m.portfolioImported)
	counter("concolicd_warmstart_query_hits_total", "Negation queries answered from the warm-start store.", m.warmQueryHits)
	counter("concolicd_warmstart_clauses_seeded_total", "Stored clauses seeded into portfolio races.", m.warmClausesSeeded)

	counter("concolicd_sharedcache_hits_total", "Negation queries answered by the cross-replica shared cache tier.", m.sharedHits)
	counter("concolicd_sharedcache_misses_total", "Shared-tier lookups that fell through to a local solve.", m.sharedMisses)
	counter("concolicd_sharedcache_stores_total", "Locally solved queries published to the shared tier.", m.sharedStores)
	counter("concolicd_sharedcache_served_total", "Queries ultimately served by shared-tier-born results (direct hits plus local re-hits).", m.sharedServed)

	counter("concolicd_ratelimited_total", "Submissions refused over a tenant budget (429).", m.rateLimited)
	counter("concolicd_steal_leased_total", "Queued jobs leased out to stealing replicas.", m.leased)
	counter("concolicd_steal_stolen_total", "Peer jobs this replica executed.", m.stolen)
	counter("concolicd_steal_lease_expired_total", "Stolen jobs requeued after their lease lapsed.", m.leasesExpired)
	counter("concolicd_steal_remote_results_total", "Stolen-job results accepted back from stealers.", m.remoteResults)

	counter("concolicd_cover_edges_total", "Covered control-flow edges summed over finished jobs' engines.", m.coveredEdges)
	counter("concolicd_cover_blocks_total", "Covered basic blocks summed over finished jobs' engines.", m.coveredBlocks)
	counter("concolicd_fuzz_execs_total", "Concrete mutation-fuzzing executions across finished jobs.", m.fuzzExecs)
	counter("concolicd_fuzz_seeds_promoted_total", "Fuzz mutants promoted into an exploration frontier.", m.fuzzSeedsPromoted)

	// The process-wide coverage tracker is shared by every job (like the
	// sym arena), so its population is read live rather than summed.
	gauge("concolicd_cover_global_edges", "Distinct control-flow edges ever covered in this process.", cover.Global().Edges())
	gauge("concolicd_cover_global_blocks", "Distinct basic blocks ever covered in this process.", cover.Global().Blocks())

	// Hash-consing arena counters are process-global (the arena is shared
	// by every job), so they are read live rather than summed from
	// Outcome.Stats deltas.
	as := sym.ArenaSnapshot()
	gauge("concolicd_sym_arena_nodes", "Distinct interned sym terms alive in the process arena.", as.Size)
	counter("concolicd_sym_intern_hits_total", "Constructor calls answered by an existing arena node.", as.Hits)
	counter("concolicd_sym_intern_misses_total", "Constructor calls that allocated a new arena node.", as.Misses)
	counter("concolicd_sym_intern_fallbacks_total", "Constructor calls past the arena cap (un-interned nodes).", as.Fallbacks)
	gauge("concolicd_sym_intern_hit_ratio", "Arena hits over lookups since process start.", fmt.Sprintf("%.4f", as.HitRate()))

	fmt.Fprintf(&b, "# HELP concolicd_job_wall_seconds Engine wall time per finished job.\n")
	fmt.Fprintf(&b, "# TYPE concolicd_job_wall_seconds histogram\n")
	cum := uint64(0)
	for i, bound := range wallBucketBounds {
		cum += m.wallBuckets[i]
		fmt.Fprintf(&b, "concolicd_job_wall_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
	}
	fmt.Fprintf(&b, "concolicd_job_wall_seconds_bucket{le=\"+Inf\"} %d\n", m.wallCount)
	fmt.Fprintf(&b, "concolicd_job_wall_seconds_sum %g\n", m.wallSum)
	fmt.Fprintf(&b, "concolicd_job_wall_seconds_count %d\n", m.wallCount)
	return b.String()
}
