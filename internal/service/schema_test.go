package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postRaw submits a raw JSON body, the way a client of any schema
// vintage would, and decodes the error body on non-2xx.
func postRaw(t *testing.T, url, body string) (int, string, View) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error, View{}
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, "", v
}

// TestTargetSchemaVersions drives the versioned job schema over HTTP:
// a legacy bomb-field client and a new target-object client must be
// served identically, and the reserved/unknown kinds must come back as
// self-explaining 400s rather than misrouted jobs.
func TestTargetSchemaVersions(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Old client: bare bomb field, no target object.
	st, _, legacy := postRaw(t, ts.URL, `{"bomb":"jump","tool":"reference","workers":1}`)
	if st != http.StatusAccepted {
		t.Fatalf("legacy submit: status %d", st)
	}
	// New client: versioned target object, no bomb field.
	st, _, versioned := postRaw(t, ts.URL,
		`{"target":{"kind":"bomb","name":"jump"},"tool":"reference","workers":1}`)
	if st != http.StatusAccepted {
		t.Fatalf("versioned submit: status %d", st)
	}
	if versioned.Bomb != legacy.Bomb || versioned.Tool != legacy.Tool {
		t.Errorf("views disagree: legacy %+v vs versioned %+v", legacy, versioned)
	}
	for _, id := range []string{legacy.ID, versioned.ID} {
		v := waitState(t, ts, id, StateDone, 30*time.Second)
		if v.Result == nil || v.Result.Verdict != "solved" {
			t.Errorf("job %s: result %+v, want solved", id, v.Result)
		}
	}

	cases := []struct {
		name, body, want string
	}{
		{"reserved gofunc", `{"target":{"kind":"gofunc","pkg":"./examples/demo","func":"Unlock"}}`,
			"reserved"},
		{"unknown kind", `{"target":{"kind":"bombb","name":"jump"}}`,
			`unknown target kind "bombb" (valid: bomb, gofunc) — did you mean "bomb"?`},
		{"missing kind", `{"target":{"name":"jump"}}`, "target.kind is required"},
		{"missing name", `{"target":{"kind":"bomb"}}`, "target.name is required"},
		{"disagreeing fields", `{"bomb":"sha1","target":{"kind":"bomb","name":"jump"}}`,
			"disagree"},
		{"neither field", `{"tool":"reference"}`, "missing required field: bomb"},
	}
	for _, c := range cases {
		st, msg, _ := postRaw(t, ts.URL, c.body)
		if st != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, st)
			continue
		}
		if !strings.Contains(msg, c.want) {
			t.Errorf("%s: error %q, want substring %q", c.name, msg, c.want)
		}
	}

	// Agreeing redundant fields are fine (a client upgrading defensively).
	st, _, both := postRaw(t, ts.URL, `{"bomb":"jump","target":{"kind":"bomb","name":"jump"},"workers":1}`)
	if st != http.StatusAccepted || both.Bomb != "jump" {
		t.Errorf("redundant-but-agreeing submit: status %d view %+v", st, both)
	}
}
