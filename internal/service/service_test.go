package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tools"
)

// newTestServer builds a service backed by httptest.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (*http.Response, View) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	json.NewDecoder(resp.Body).Decode(&v)
	return resp, v
}

func getJob(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, ts *httptest.Server, id string, want State, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s, want %s", id, v.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if v.ID == "" || (v.State != StateQueued && v.State != StateRunning) {
		t.Fatalf("submit view: %+v", v)
	}

	done := waitState(t, ts, v.ID, StateDone, 60*time.Second)
	if done.Result == nil {
		t.Fatal("done job carries no result")
	}
	if done.Result.Verdict != "solved" || done.Result.Label != "ok" {
		t.Errorf("jump/reference: verdict %s label %q, want solved/ok",
			done.Result.Verdict, done.Result.Label)
	}
	if done.Result.Input == nil || done.Result.Input.Argv1 == "" {
		t.Error("solved job carries no input")
	}
	if done.Started == "" || done.Finished == "" {
		t.Error("timestamps missing on finished job")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, _ := postJob(t, ts, Request{Bomb: "jumpp", Tool: "reference"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo bomb: status %d, want 400", resp.StatusCode)
	}
	// The 400 body should carry the closest-name suggestion.
	body, _ := json.Marshal(Request{Bomb: "jumpp"})
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(r2.Body).Decode(&e)
	if !strings.Contains(e.Error, `"jump"`) {
		t.Errorf("error %q lacks the suggestion", e.Error)
	}

	resp, _ = postJob(t, ts, Request{Bomb: "jump", Tool: "klee"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown tool: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, Request{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, Request{Bomb: "jump", Strategy: "bfs"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown strategy: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, Request{Bomb: "jump", Fuzz: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fuzz without coverage strategy: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, ts, Request{Bomb: "jump", CoverGoal: 1.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range cover_goal: status %d, want 400", resp.StatusCode)
	}
}

// TestCoverageJob runs a job under the coverage strategy with fuzzing
// and checks the wire result carries the coverage counters.
func TestCoverageJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Strategy: "coverage", Fuzz: true})
	done := waitState(t, ts, v.ID, StateDone, 60*time.Second)
	if done.Result == nil || done.Result.Verdict != "solved" {
		t.Fatalf("coverage job result: %+v", done.Result)
	}
	if done.Result.Stats.CoveredEdges == 0 || done.Result.Stats.CoveredBlocks == 0 {
		t.Errorf("coverage counters missing: %+v", done.Result.Stats)
	}
	if done.Strategy != "coverage" || !done.Fuzz {
		t.Errorf("view does not echo strategy/fuzz: %+v", done)
	}
}

// slowResolver hands out profiles whose budgets keep sha1 busy for
// minutes, so tests can observe running jobs and cancel them.
func slowResolver(name string) (tools.Profile, bool) {
	p, ok := tools.ByName(name)
	if !ok {
		return p, false
	}
	p.Caps.TotalBudget = 10 * time.Minute
	p.Caps.SolverTimeout = 10 * time.Minute
	p.Caps.SolverConflicts = 50_000_000
	p.Caps.MaxRounds = 1000
	return p, true
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ResolveProfile: slowResolver})

	_, v := postJob(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, ts, v.ID, StateRunning, 10*time.Second)

	start := time.Now()
	resp := cancelJob(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	got := waitState(t, ts, v.ID, StateCancelled, 30*time.Second)
	elapsed := time.Since(start)
	if got.Result == nil || got.Result.Verdict != "cancelled" {
		t.Fatalf("cancelled job result: %+v", got.Result)
	}
	// The profile budgets are minutes; observing the cancel within
	// seconds means the worker saw ctx.Done() mid-round.
	if elapsed > 25*time.Second {
		t.Errorf("cancellation took %v; want prompt ctx.Done() observation", elapsed)
	}

	// Cancelling a terminal job conflicts.
	if resp := cancelJob(t, ts, v.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("second cancel: status %d, want 409", resp.StatusCode)
	}
}

func TestCancelQueuedJobAndBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, ResolveProfile: slowResolver})

	// Occupy the single worker.
	_, running := postJob(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, ts, running.ID, StateRunning, 10*time.Second)

	// Fill the queue.
	resp, queued := postJob(t, ts, Request{Bomb: "aes", Tool: "reference", Workers: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: status %d", resp.StatusCode)
	}

	// Queue full: 429 with Retry-After.
	resp3, _ := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}

	// Cancel the queued job: immediate, no worker involved.
	if resp := cancelJob(t, ts, queued.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	if v := getJob(t, ts, queued.ID); v.State != StateCancelled {
		t.Errorf("queued job state %s after cancel", v.State)
	}

	// Unblock the worker.
	cancelJob(t, ts, running.ID)
	waitState(t, ts, running.ID, StateCancelled, 30*time.Second)

	// The freed slot accepts again and skips the cancelled queued job.
	resp4, v4 := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit: status %d", resp4.StatusCode)
	}
	if v := waitState(t, ts, v4.ID, StateDone, 60*time.Second); v.Result.Label != "ok" {
		t.Errorf("post-drain job label %q", v.Result.Label)
	}
}

func TestListJobsAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, a := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	_, b := postJob(t, ts, Request{Bomb: "arglen", Tool: "reference"})

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Errorf("list = %+v, want [%s %s] in order", list.Jobs, a.ID, b.ID)
	}

	r2, _ := http.Get(ts.URL + "/v1/jobs/job-999999")
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", r2.StatusCode)
	}
	r3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	resp3, _ := http.DefaultClient.Do(r3)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("cancel missing job: status %d, want 404", resp3.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	waitState(t, ts, v.ID, StateDone, 60*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"concolicd_jobs_submitted_total 1",
		`concolicd_jobs_finished_total{state="done"} 1`,
		"concolicd_queue_capacity 2",
		"concolicd_workers 1",
		"concolicd_engine_rounds_total",
		"concolicd_solver_cache_hits_total",
		"concolicd_sym_arena_nodes",
		"concolicd_sym_intern_hits_total",
		"concolicd_sym_intern_misses_total",
		"concolicd_sym_intern_hit_ratio",
		"concolicd_job_wall_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

func TestHealthAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("health = %q, want ok", h.Status)
	}

	_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)

	// Accepted work ran to completion before the drain returned.
	if got := getJob(t, ts, v.ID); got.State != StateDone {
		t.Errorf("job state after drain = %s, want done", got.State)
	}

	// Draining: submissions 503, health reports it.
	resp2, _ := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp2.StatusCode)
	}
	r3, _ := http.Get(ts.URL + "/healthz")
	json.NewDecoder(r3.Body).Decode(&h)
	r3.Body.Close()
	if h.Status != "draining" {
		t.Errorf("health while draining = %q", h.Status)
	}
}

// TestDrainDeadlineCancelsRunning verifies the hard edge of drain: when
// the drain context expires, still-running jobs are cancelled through
// their contexts rather than held forever.
func TestDrainDeadlineCancelsRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, ResolveProfile: slowResolver})
	_, v := postJob(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, ts, v.ID, StateRunning, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Drain(ctx)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	if got := getJob(t, ts, v.ID); got.State != StateCancelled {
		t.Errorf("job state after deadline drain = %s, want cancelled", got.State)
	}
}

// TestStoreIDsSequential pins the ID scheme: deterministic, ordered.
func TestStoreIDsSequential(t *testing.T) {
	st := NewStore()
	for i := 1; i <= 3; i++ {
		j := st.Add(Request{Bomb: "jump", Tool: "reference"}, "")
		want := fmt.Sprintf("job-%06d", i)
		if j.ID != want {
			t.Errorf("ID %q, want %q", j.ID, want)
		}
	}
}
