package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/warmstore"
)

// metricValue extracts a sample value from Prometheus exposition text.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("metric %s: unparsable sample %q", name, line)
		}
		return v
	}
	t.Fatalf("metric %s missing from /metrics", name)
	return 0
}

// TestPortfolioJobAndWarmstartMetrics runs a portfolio job twice against
// the server's warm-start store: the first populates it, the second must
// answer queries from it, and both leave their marks on /metrics.
func TestPortfolioJobAndWarmstartMetrics(t *testing.T) {
	w, err := warmstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() }) // after the drain cleanup (LIFO)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Warm: w})

	_, cold := postJob(t, ts, Request{Bomb: "array1", Solver: "portfolio", Warmstart: true, Workers: 1})
	if cold.Solver != "portfolio" || !cold.Warmstart {
		t.Fatalf("submit view does not echo the request: %+v", cold)
	}
	coldDone := waitState(t, ts, cold.ID, StateDone, 120*time.Second)
	if coldDone.Result.Label != "ok" {
		t.Fatalf("cold portfolio job label %q, want ok", coldDone.Result.Label)
	}
	if coldDone.Result.Stats.PortfolioRaces == 0 {
		t.Error("cold portfolio job reports zero races")
	}
	if coldDone.Result.Stats.WarmQueryHits != 0 {
		t.Errorf("cold job hit its own empty store: %+v", coldDone.Result.Stats)
	}
	if races := metricValue(t, ts, "concolicd_solver_portfolio_races_total"); races == 0 {
		t.Error("portfolio races metric stayed zero after a portfolio job")
	}
	if metricValue(t, ts, "concolicd_warmstart_query_hits_total") != 0 {
		t.Error("warm hits counted before anything was stored")
	}

	_, warm := postJob(t, ts, Request{Bomb: "array1", Solver: "portfolio", Warmstart: true, Workers: 1})
	warmDone := waitState(t, ts, warm.ID, StateDone, 120*time.Second)
	if warmDone.Result.Label != "ok" {
		t.Fatalf("warm portfolio job label %q, want ok", warmDone.Result.Label)
	}
	if warmDone.Result.Stats.WarmQueryHits == 0 {
		t.Errorf("warm job never hit the store: %+v", warmDone.Result.Stats)
	}
	if metricValue(t, ts, "concolicd_warmstart_query_hits_total") == 0 {
		t.Error("warm hits metric stayed zero after a warm-started job")
	}
	// A fresh-mode job on the same server leaves the portfolio counters be.
	before := metricValue(t, ts, "concolicd_solver_portfolio_races_total")
	_, plain := postJob(t, ts, Request{Bomb: "jump", Tool: "reference"})
	waitState(t, ts, plain.ID, StateDone, 60*time.Second)
	if after := metricValue(t, ts, "concolicd_solver_portfolio_races_total"); after != before {
		t.Errorf("fresh job moved portfolio races: %v -> %v", before, after)
	}
}

// TestPortfolioWithoutStoreStillRuns checks warmstart degrades gracefully
// when concolicd was started without -warmstart: the job runs as a plain
// portfolio job, it just never hits a store.
func TestPortfolioWithoutStoreStillRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, v := postJob(t, ts, Request{Bomb: "jump", Solver: "portfolio", Warmstart: true})
	done := waitState(t, ts, v.ID, StateDone, 120*time.Second)
	if done.Result.Label != "ok" {
		t.Errorf("label %q, want ok", done.Result.Label)
	}
	if done.Result.Stats.WarmQueryHits != 0 {
		t.Errorf("storeless job reported warm hits: %+v", done.Result.Stats)
	}
}

// TestSolverValidation pins the 400s for the solver/warmstart fields.
func TestSolverValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	reject := func(req Request) string {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", req, resp.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return e.Error
	}

	if msg := reject(Request{Bomb: "jump", Solver: "z3"}); !strings.Contains(msg, "portfolio") ||
		!strings.Contains(msg, "incremental") || !strings.Contains(msg, "fresh") {
		t.Errorf("unknown-solver error %q does not list the known modes", msg)
	}
	if msg := reject(Request{Bomb: "jump", Solver: "incremental", Warmstart: true}); !strings.Contains(msg, "portfolio") {
		t.Errorf("warmstart-without-portfolio error %q does not name the fix", msg)
	}
}
