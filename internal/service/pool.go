package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/tools"
	"repro/internal/warmstore"
)

// Submission errors surfaced as HTTP statuses by the handlers.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (HTTP 429).
	ErrQueueFull = errors.New("job queue is full")
	// ErrDraining rejects submissions during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("server is draining")
)

// pool runs queued jobs on a fixed set of workers. The queue is a
// bounded channel: enqueue never blocks, it either claims a slot or
// reports backpressure so the handler can answer 429 immediately. With
// peers configured the pool moonlights as a stealer: when its queue is
// empty it leases queued jobs from siblings, runs them on the shared
// cache tier, and posts the results back.
type pool struct {
	store   *Store
	metrics *Metrics
	queue   chan *Job
	resolve func(string) (tools.Profile, bool)
	warm    *warmstore.Store  // nil unless concolicd opened -warmstart
	shared  solver.QueryCache // nil unless concolicd opened -sharedcache
	wg      sync.WaitGroup

	replica    string
	peers      []string
	stealEvery time.Duration
	stealLease time.Duration
	stealWG    sync.WaitGroup
	stopSteal  chan struct{}

	// baseCtx parents every job context; baseCancel is the drain
	// deadline's hard stop for still-running jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	closed bool
}

func newPool(store *Store, metrics *Metrics, cfg Config) *pool {
	p := &pool{
		store:      store,
		metrics:    metrics,
		queue:      make(chan *Job, cfg.QueueDepth),
		resolve:    cfg.ResolveProfile,
		warm:       cfg.Warm,
		shared:     cfg.SharedCache,
		replica:    cfg.Replica,
		peers:      cfg.Peers,
		stealEvery: cfg.StealInterval,
		stealLease: cfg.StealLease,
		stopSteal:  make(chan struct{}),
	}
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.work()
	}
	if len(p.peers) > 0 {
		p.stealWG.Add(1)
		go p.stealLoop()
	}
	p.stealWG.Add(1)
	go p.leaseReaper()
	return p
}

// depth reports how many jobs are waiting (not yet picked up).
func (p *pool) depth() int { return len(p.queue) }

// enqueue claims a queue slot for the job or reports backpressure.
func (p *pool) enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

func (p *pool) work() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runJob(j)
	}
}

// jobContext builds the per-job context: cancel plus the optional
// budget deadline.
func (p *pool) jobContext(req Request) (context.Context, context.CancelFunc) {
	if req.BudgetMS > 0 {
		return context.WithTimeout(p.baseCtx, time.Duration(req.BudgetMS)*time.Millisecond)
	}
	return context.WithCancel(p.baseCtx)
}

// capsFor projects a validated request onto the resolved tool profile's
// engine capabilities — the one place the service decides what an
// engine run looks like, shared by the local and stolen-job paths so a
// stolen job runs exactly as it would have at home (plus this replica's
// shared cache tier, which cannot change verdicts).
func (p *pool) capsFor(req Request, prof *tools.Profile) {
	prof.Caps.Workers = req.Workers
	prof.Caps.SolverMode, _ = req.solverMode() // validated at submission
	if req.Strategy != "" {
		prof.Caps.Search, _ = req.searchStrategy() // validated at submission
	}
	prof.Caps.Fuzz = req.Fuzz
	prof.Caps.CoverGoal = req.CoverGoal
	if req.Warmstart && p.warm != nil {
		prof.Caps.Warm = p.warm
	}
	prof.Caps.SharedCache = p.shared
}

// runJob executes one job end to end: build the job context (cancel
// plus optional budget deadline), run the engine under it, and record
// the terminal state. The engine observes ctx.Done() between rounds,
// between negation queries and inside SAT search, so DELETE or a
// deadline stops the job mid-round.
func (p *pool) runJob(j *Job) {
	ctx, cancel := p.jobContext(j.Req)
	defer cancel()

	if !p.store.MarkRunning(j, cancel) {
		// Left the queued state while waiting (cancelled — already
		// counted by the Cancel path — or leased to a stealer).
		return
	}
	p.metrics.JobStarted()

	b, okB := bombs.ByName(j.Req.Bomb)
	prof, okT := p.resolve(j.Req.Tool)
	if !okB || !okT {
		// Validation runs at submission; this guards registry drift.
		p.store.Finish(j, StateFailed, nil, "request no longer resolvable")
		p.metrics.JobFinished(StateFailed, nil, true)
		return
	}
	p.capsFor(j.Req, &prof)
	prof.Caps.Progress = func(pr core.Progress) {
		p.store.AppendProgress(j, ProgressEvent{
			Round:         pr.Round,
			SolverQueries: pr.SolverQueries,
			CoveredEdges:  pr.CoveredEdges,
			CoveredBlocks: pr.CoveredBlocks,
			Frontier:      pr.Frontier,
		})
	}
	en := core.New(b.Image(), b.BombAddr(), prof.Caps)
	out := en.ExploreContext(ctx, b.Benign)

	state := StateDone
	if out.Verdict == core.VerdictCancelled {
		state = StateCancelled
	}
	p.store.Finish(j, state, resultFrom(out), "")
	p.metrics.JobFinished(state, out, true)
}

// runRemote executes a job stolen from a peer. No local store is
// involved: the peer owns the lifecycle; this side only runs the engine
// (over the shared cache tier, so the work warms the fleet) and hands
// back {state, result}.
func (p *pool) runRemote(req Request) (State, *Result, string) {
	ctx, cancel := p.jobContext(req)
	defer cancel()

	b, okB := bombs.ByName(req.Bomb)
	prof, okT := p.resolve(req.Tool)
	if !okB || !okT {
		return StateFailed, nil, "request not resolvable on replica " + p.replica
	}
	p.capsFor(req, &prof)
	en := core.New(b.Image(), b.BombAddr(), prof.Caps)
	out := en.ExploreContext(ctx, b.Benign)
	state := StateDone
	if out.Verdict == core.VerdictCancelled {
		state = StateCancelled
	}
	return state, resultFrom(out), ""
}

// stealLoop polls the peers for queued work whenever the local queue is
// idle, runs what it gets, and posts results back (see fleet.go for the
// wire calls). One job at a time: stealing is a spare-cycles activity,
// never competition for the local queue.
func (p *pool) stealLoop() {
	defer p.stealWG.Done()
	t := time.NewTicker(p.stealEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stopSteal:
			return
		case <-p.baseCtx.Done():
			return
		case <-t.C:
		}
		if p.depth() > 0 {
			continue // local work first
		}
		for _, peer := range p.peers {
			p.stealFrom(peer)
		}
	}
}

// leaseReaper requeues jobs whose remote lease lapsed (stealer death).
// It runs on every server — any replica can be a steal victim.
func (p *pool) leaseReaper() {
	defer p.stealWG.Done()
	every := p.stealLease / 4
	if every < 100*time.Millisecond {
		every = 100 * time.Millisecond
	}
	if every > 5*time.Second {
		every = 5 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.stopSteal:
			return
		case <-p.baseCtx.Done():
			return
		case <-t.C:
		}
		for _, j := range p.store.ExpireLeases(time.Now()) {
			p.metrics.LeaseExpired()
			if err := p.enqueue(j); err != nil {
				p.store.Finish(j, StateFailed, nil, "lease expired; requeue failed: "+err.Error())
				p.metrics.JobFinished(StateFailed, nil, false)
			}
		}
	}
}

// drain closes the queue to new work and waits for the workers to
// finish everything already accepted. If ctx expires first, running
// jobs are hard-cancelled (their contexts fire) and the wait resumes —
// bounded, because cancelled engines return promptly.
func (p *pool) drain(ctx context.Context) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
		close(p.stopSteal)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		p.stealWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		p.baseCancel()
		<-done
	}
}
