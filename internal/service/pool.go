package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
	"repro/internal/warmstore"
)

// Submission errors surfaced as HTTP statuses by the handlers.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (HTTP 429).
	ErrQueueFull = errors.New("job queue is full")
	// ErrDraining rejects submissions during graceful shutdown (HTTP 503).
	ErrDraining = errors.New("server is draining")
)

// pool runs queued jobs on a fixed set of workers. The queue is a
// bounded channel: enqueue never blocks, it either claims a slot or
// reports backpressure so the handler can answer 429 immediately.
type pool struct {
	store   *Store
	metrics *Metrics
	queue   chan *Job
	resolve func(string) (tools.Profile, bool)
	warm    *warmstore.Store // nil unless concolicd opened -warmstart
	wg      sync.WaitGroup

	// baseCtx parents every job context; baseCancel is the drain
	// deadline's hard stop for still-running jobs.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	closed bool
}

func newPool(store *Store, metrics *Metrics, depth, workers int, resolve func(string) (tools.Profile, bool), warm *warmstore.Store) *pool {
	p := &pool{
		store:   store,
		metrics: metrics,
		queue:   make(chan *Job, depth),
		resolve: resolve,
		warm:    warm,
	}
	p.baseCtx, p.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.work()
	}
	return p
}

// depth reports how many jobs are waiting (not yet picked up).
func (p *pool) depth() int { return len(p.queue) }

// enqueue claims a queue slot for the job or reports backpressure.
func (p *pool) enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrDraining
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

func (p *pool) work() {
	defer p.wg.Done()
	for j := range p.queue {
		p.runJob(j)
	}
}

// runJob executes one job end to end: build the job context (cancel
// plus optional budget deadline), run the engine under it, and record
// the terminal state. The engine observes ctx.Done() between rounds,
// between negation queries and inside SAT search, so DELETE or a
// deadline stops the job mid-round.
func (p *pool) runJob(j *Job) {
	ctx, cancel := context.WithCancel(p.baseCtx)
	if j.Req.BudgetMS > 0 {
		ctx, cancel = context.WithTimeout(p.baseCtx, time.Duration(j.Req.BudgetMS)*time.Millisecond)
	}
	defer cancel()

	if !p.store.MarkRunning(j, cancel) {
		// Cancelled while queued; the Cancel path already counted it.
		return
	}
	p.metrics.JobStarted()

	b, okB := bombs.ByName(j.Req.Bomb)
	prof, okT := p.resolve(j.Req.Tool)
	if !okB || !okT {
		// Validation runs at submission; this guards registry drift.
		p.store.Finish(j, StateFailed, nil, "request no longer resolvable")
		p.metrics.JobFinished(StateFailed, nil, true)
		return
	}
	prof.Caps.Workers = j.Req.Workers
	prof.Caps.SolverMode, _ = j.Req.solverMode() // validated at submission
	if j.Req.Strategy != "" {
		prof.Caps.Search, _ = j.Req.searchStrategy() // validated at submission
	}
	prof.Caps.Fuzz = j.Req.Fuzz
	prof.Caps.CoverGoal = j.Req.CoverGoal
	if j.Req.Warmstart && p.warm != nil {
		prof.Caps.Warm = p.warm
	}
	en := core.New(b.Image(), b.BombAddr(), prof.Caps)
	out := en.ExploreContext(ctx, b.Benign)

	state := StateDone
	if out.Verdict == core.VerdictCancelled {
		state = StateCancelled
	}
	p.store.Finish(j, state, resultFrom(out), "")
	p.metrics.JobFinished(state, out, true)
}

// drain closes the queue to new work and waits for the workers to
// finish everything already accepted. If ctx expires first, running
// jobs are hard-cancelled (their contexts fire) and the wait resumes —
// bounded, because cancelled engines return promptly.
func (p *pool) drain(ctx context.Context) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		p.baseCancel()
		<-done
	}
}
