package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/eval"
	"repro/internal/solver"
)

// TestCategoryFilterRejectsOtherCategories pins the -categories replica
// filter: a replica configured for the extended corpus accepts extended
// bombs, and refuses bombs from any other category with HTTP 400 before
// they reach the queue.
func TestCategoryFilterRejectsOtherCategories(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, ResolveProfile: fastResolve,
		Categories: []string{string(bombs.Extended)},
	})

	resp, v := postJob(t, ts, Request{Bomb: "stwrite", Tool: "reference", Workers: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("extended bomb rejected: status %d", resp.StatusCode)
	}
	waitState(t, ts, v.ID, StateDone, 60*time.Second)

	resp, _ = postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("accuracy bomb on an extended-only replica: status %d, want %d",
			resp.StatusCode, http.StatusBadRequest)
	}

	// Unknown bombs still fail validation, not the category filter.
	resp, _ = postJob(t, ts, Request{Bomb: "no-such-bomb", Tool: "reference", Workers: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown bomb: status %d, want %d", resp.StatusCode, http.StatusBadRequest)
	}
}

// TestExtendedFleetGridMatchesSingleNode is the Table II-extended fleet
// acceptance differential: a two-replica fleet sharing one cache tier —
// both restricted to the extended category, as a sharded deployment
// would be — replays the extended grid, and every cell's verdict and
// label must be byte-identical to the single-node in-process grid.
func TestExtendedFleetGridMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid fleet comparison is slow; run without -short")
	}
	tierDir := t.TempDir()

	_, tsA := newTestServer(t, Config{
		Workers: 2, QueueDepth: 128, Replica: "a",
		Categories:  []string{string(bombs.Extended)},
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
	})
	_, tsB := newTestServer(t, Config{
		Workers: 2, QueueDepth: 128, Replica: "b",
		Categories:  []string{string(bombs.Extended)},
		SharedCache: solver.SharedTier(openTestTier(t, tierDir)),
		Peers:       []string{tsA.URL}, StealInterval: 50 * time.Millisecond,
	})

	fleetGrid, err := eval.RunTableIIExtendedFleet(eval.FleetOptions{
		EngineWorkers: 2,
		Timeout:       8 * time.Minute,
	}, []string{tsA.URL, tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	refGrid := eval.RunTableIIExtended(eval.Options{Workers: 4, EngineWorkers: 2})

	var diffs []string
	for _, b := range refGrid.Rows {
		for _, tool := range refGrid.Tools {
			ref := refGrid.Cell(b.Name, tool)
			got := fleetGrid.Cell(b.Name, tool)
			if got == nil {
				diffs = append(diffs, fmt.Sprintf("%s/%s: missing from fleet grid", b.Name, tool))
				continue
			}
			if got.Got != ref.Got || got.Mechanical != ref.Mechanical || got.Match != ref.Match {
				diffs = append(diffs, fmt.Sprintf("%s/%s: fleet {got %q mech %q match %v} vs single-node {got %q mech %q match %v}",
					b.Name, tool, got.Got, got.Mechanical, got.Match, ref.Got, ref.Mechanical, ref.Match))
			}
			if got.Outcome.Verdict != ref.Outcome.Verdict {
				diffs = append(diffs, fmt.Sprintf("%s/%s: fleet verdict %s vs single-node %s",
					b.Name, tool, got.Outcome.Verdict, ref.Outcome.Verdict))
			}
		}
	}
	if len(diffs) > 0 {
		t.Fatalf("extended fleet grid diverged from single-node in %d cells:\n%s",
			len(diffs), strings.Join(diffs, "\n"))
	}
}
