package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// routes wires the v1 API. Method-qualified patterns (Go 1.22 mux) give
// 405s for free.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("POST /v1/steal", s.handleSteal)
	mux.HandleFunc("POST /v1/jobs/{id}/result", s.handleRemoteResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
}

const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unreadable body: "+err.Error())
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	v, err := s.SubmitAs(req, r.Header.Get("X-API-Key"))
	if err != nil {
		var reqErr *RequestError
		var rlErr *RateLimitError
		switch {
		case errors.As(err, &reqErr):
			writeErr(w, http.StatusBadRequest, reqErr.Error())
		case errors.As(err, &rlErr):
			w.Header().Set("Retry-After", strconv.Itoa(rlErr.RetryAfterSeconds()))
			writeErr(w, http.StatusTooManyRequests, rlErr.Error())
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// handleList pages through jobs in stable submission order.
// ?offset=&limit= window the list; the response carries the total so
// clients can iterate without racing submissions.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "offset must be a non-negative integer")
		return
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	views, total := s.store.Page(offset, limit)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"jobs":   views,
		"total":  total,
		"offset": offset,
		"count":  len(views),
	})
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return n, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.store.View(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, "no such job")
	case errors.Is(err, ErrFinished):
		writeErr(w, http.StatusConflict, "job already in terminal state "+string(st))
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(st)})
	}
}

// handleEvents streams a job's per-round progress as server-sent
// events: one `progress` event per engine round already recorded plus
// each new one as it lands, then a final `done` event carrying the
// job's terminal view. Clients see intermediate state while the engine
// is still exploring — the fleet's live dashboard primitive.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	evs, state, ch, err := s.store.ProgressSince(id, 0)
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	cursor := 0
	for {
		for _, ev := range evs {
			b, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", b)
			cursor = ev.Seq + 1
		}
		fl.Flush()
		if state.Terminal() {
			v, _ := s.store.View(id)
			b, _ := json.Marshal(v)
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
		evs, state, ch, err = s.store.ProgressSince(id, cursor)
		if err != nil {
			return
		}
	}
}

// handleProgress is the chunk-free poll twin of handleEvents: the
// events from ?from= on, the job state, and the next cursor.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from, err := queryInt(r.URL.Query().Get("from"), 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "from must be a non-negative integer")
		return
	}
	evs, state, _, err := s.store.ProgressSince(id, from)
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	if evs == nil {
		evs = []ProgressEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":     id,
		"state":  state,
		"events": evs,
		"next":   from + len(evs),
	})
}

// handleSteal leases queued jobs to a sibling replica (see fleet.go for
// the protocol).
func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	var req StealRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed steal request: "+err.Error())
		return
	}
	if req.Replica == "" {
		writeErr(w, http.StatusBadRequest, "steal request needs a replica name")
		return
	}
	if req.Max <= 0 {
		req.Max = 1
	}
	leased := s.store.Lease(req.Replica, req.Max, time.Now().Add(s.stealLease))
	resp := StealResponse{Jobs: make([]StolenJob, 0, len(leased))}
	for _, j := range leased {
		s.metrics.JobStarted()
		s.metrics.JobLeased()
		resp.Jobs = append(resp.Jobs, StolenJob{ID: j.ID, Req: j.Req})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRemoteResult accepts a stolen job's outcome from the stealer.
func (s *Server) handleRemoteResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rr RemoteResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&rr); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed result: "+err.Error())
		return
	}
	v, wasRunning, err := s.store.FinishRemote(id, rr.Replica, rr.State, rr.Result, rr.Error)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, "no such job")
	case errors.Is(err, ErrFinished):
		writeErr(w, http.StatusConflict, "job already in terminal state")
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		s.metrics.JobFinishedRemote(rr.State, rr.Result, wasRunning)
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.Render(s.pool.depth(), s.queueCap, s.workers))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
