package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// routes wires the v1 API. Method-qualified patterns (Go 1.22 mux) give
// 405s for free.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
}

const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unreadable body: "+err.Error())
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	v, err := s.Submit(req)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			writeErr(w, http.StatusBadRequest, reqErr.Error())
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": s.store.Views()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.store.View(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, "no such job")
	case errors.Is(err, ErrFinished):
		writeErr(w, http.StatusConflict, "job already in terminal state "+string(st))
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(st)})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.Render(s.pool.depth(), s.queueCap, s.workers))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
