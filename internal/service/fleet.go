package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Fleet wire types. Stealing is lease-based: POST /v1/steal marks up to
// Max queued jobs running under the caller's replica name with a lease
// deadline and hands their requests over; the stealer runs them and
// posts a RemoteResult to /v1/jobs/{id}/result. If the stealer dies the
// lease reaper requeues the job, and the first terminal transition
// (remote result or local rerun) wins — safe because verdicts are
// deterministic for a given request.

// StealRequest asks a victim for queued work.
type StealRequest struct {
	Replica string `json:"replica"`
	Max     int    `json:"max"`
}

// StolenJob is one leased job: its ID on the victim and the request to
// run.
type StolenJob struct {
	ID  string  `json:"id"`
	Req Request `json:"req"`
}

// StealResponse lists the leased jobs (possibly empty).
type StealResponse struct {
	Jobs []StolenJob `json:"jobs"`
}

// RemoteResult is a stolen job's outcome posted back to the victim.
type RemoteResult struct {
	Replica string  `json:"replica"`
	State   State   `json:"state"`
	Result  *Result `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// fleetClient is the HTTP timeout for steal polls and result posts.
// Result posts are tiny; the engine run between them is not under this
// timeout.
var fleetClient = &http.Client{Timeout: 10 * time.Second}

// stealFrom leases work from one peer and runs it to completion. Errors
// are swallowed: an unreachable or drained peer just yields nothing,
// and the next tick tries again.
func (p *pool) stealFrom(peer string) {
	body, _ := json.Marshal(StealRequest{Replica: p.replica, Max: 1})
	resp, err := fleetClient.Post(peer+"/v1/steal", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	var sr StealResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	for _, sj := range sr.Jobs {
		select {
		case <-p.stopSteal:
			return
		case <-p.baseCtx.Done():
			return
		default:
		}
		state, res, errMsg := p.runRemote(sj.Req)
		p.metrics.JobStolen()
		p.postResult(peer, sj.ID, RemoteResult{
			Replica: p.replica, State: state, Result: res, Error: errMsg,
		})
	}
}

// postResult returns a stolen job's outcome to its owner. A failed post
// is not retried here: the owner's lease reaper requeues the job, and
// determinism makes the rerun equivalent.
func (p *pool) postResult(peer, id string, rr RemoteResult) error {
	body, err := json.Marshal(rr)
	if err != nil {
		return err
	}
	resp, err := fleetClient.Post(
		fmt.Sprintf("%s/v1/jobs/%s/result", peer, id),
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result post: HTTP %d", resp.StatusCode)
	}
	return nil
}
