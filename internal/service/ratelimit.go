package service

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// limiter is a per-tenant token bucket: every tenant (X-API-Key value;
// "" for anonymous) refills at rate tokens/second up to burst. It is
// hand-rolled — like the metrics renderer — so the service stays
// dependency-free.
type limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter returns nil (no limiting) unless rate is positive. A
// non-positive burst defaults to one full token.
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow spends one token from the tenant's bucket. On refusal it
// reports how long until the next token accrues (the Retry-After hint).
// A nil limiter always allows.
func (l *limiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// RateLimitError rejects a submission over a tenant budget (HTTP 429
// with a Retry-After hint).
type RateLimitError struct {
	RetryAfter time.Duration
	msg        string
}

func (e *RateLimitError) Error() string { return e.msg }

// RetryAfterSeconds renders the hint for the Retry-After header,
// rounded up so clients never retry early.
func (e *RateLimitError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

func rateLimited(wait time.Duration) *RateLimitError {
	return &RateLimitError{RetryAfter: wait, msg: "tenant rate limit exceeded"}
}

func tenantBusy(active, max int) *RateLimitError {
	return &RateLimitError{
		RetryAfter: time.Second,
		msg:        fmt.Sprintf("tenant has %d active jobs (limit %d)", active, max),
	}
}
