package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestProgressSinceWakesBeforeTerminal pins the streaming primitive's
// liveness: a subscriber blocked on the notify channel wakes for an
// intermediate event while the job is still live, not only at the
// terminal transition.
func TestProgressSinceWakesBeforeTerminal(t *testing.T) {
	st := NewStore()
	j := st.Add(Request{Bomb: "jump", Tool: "reference"}, "")

	evs, state, ch, err := st.ProgressSince(j.ID, 0)
	if err != nil || len(evs) != 0 || state != StateQueued || ch == nil {
		t.Fatalf("initial subscribe: evs=%v state=%s ch=%v err=%v", evs, state, ch, err)
	}

	st.AppendProgress(j, ProgressEvent{Round: 1, SolverQueries: 3})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("append did not wake the subscriber")
	}
	evs, state, ch, err = st.ProgressSince(j.ID, 0)
	if err != nil || len(evs) != 1 || evs[0].Seq != 0 || evs[0].Round != 1 {
		t.Fatalf("after append: evs=%v err=%v", evs, err)
	}
	if state.Terminal() {
		t.Fatal("event delivered only at terminal state")
	}

	// Terminal transition wakes waiters too, and later subscriptions see
	// a nil channel (nothing further to wait for).
	st.Finish(j, StateDone, &Result{Verdict: "solved"}, "")
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("finish did not wake the subscriber")
	}
	evs, state, ch, err = st.ProgressSince(j.ID, 1)
	if err != nil || len(evs) != 0 || state != StateDone || ch != nil {
		t.Fatalf("terminal subscribe: evs=%v state=%s ch=%v err=%v", evs, state, ch, err)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r *bufio.Reader, timeout time.Duration) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	done := time.After(timeout)
	lines := make(chan string)
	errc := make(chan error, 1)
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				errc <- err
				return
			}
			lines <- strings.TrimRight(line, "\n")
		}
	}()
	for {
		select {
		case <-done:
			t.Fatalf("SSE stream did not finish in %v (events so far: %+v)", timeout, out)
		case err := <-errc:
			t.Fatalf("SSE stream error before done event: %v (events so far: %+v)", err, out)
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if cur.name != "" {
					out = append(out, cur)
					if cur.name == "done" {
						return out
					}
					cur = sseEvent{}
				}
			}
		}
	}
}

// TestSSEStreamsProgressBeforeCompletion subscribes to a job's event
// stream while the job is still queued behind a long-running blocker:
// every progress event the stream then delivers is necessarily live —
// emitted after the subscription, before the job completed. The test
// requires at least one such intermediate event ahead of the final
// done event.
func TestSSEStreamsProgressBeforeCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ResolveProfile: slowResolver})

	// Occupy the single worker so the observed job stays queued.
	_, blocker := postJob(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1})
	waitState(t, ts, blocker.ID, StateRunning, 10*time.Second)

	_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Release the worker; the observed job now runs while we stream.
	if r := cancelJob(t, ts, blocker.ID); r.StatusCode != http.StatusOK {
		t.Fatalf("cancel blocker: %d", r.StatusCode)
	}

	events := readSSE(t, bufio.NewReader(resp.Body), 60*time.Second)
	if len(events) < 2 {
		t.Fatalf("want >=1 progress event plus done, got %+v", events)
	}
	var rounds []int
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q before done", ev.name)
		}
		var pe ProgressEvent
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("progress payload %q: %v", ev.data, err)
		}
		rounds = append(rounds, pe.Round)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i] < rounds[i-1] {
			t.Fatalf("rounds regressed: %v", rounds)
		}
	}
	last := events[len(events)-1]
	var final View
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("done payload %q: %v", last.data, err)
	}
	if final.State != StateDone || final.Result == nil || final.Result.Verdict != "solved" {
		t.Fatalf("final event: %+v", final)
	}
	if final.Progress != len(events)-1 {
		t.Errorf("view counts %d progress events, stream carried %d", final.Progress, len(events)-1)
	}
}

// TestProgressPollEndpoint exercises the JSON twin: cursor paging over
// the recorded events after completion.
func TestProgressPollEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, ResolveProfile: fastResolve})
	_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})
	waitState(t, ts, v.ID, StateDone, 30*time.Second)

	var page struct {
		State  State           `json:"state"`
		Events []ProgressEvent `json:"events"`
		Next   int             `json:"next"`
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if page.State != StateDone || len(page.Events) < 1 {
		t.Fatalf("poll: %+v", page)
	}
	total := len(page.Events)

	// Resume from the cursor: nothing new.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/progress?from=" + strconv.Itoa(page.Next))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if len(page.Events) != 0 || page.Next != total {
		t.Fatalf("resumed poll: %+v", page)
	}

	// Unknown jobs 404.
	resp, _ = http.Get(ts.URL + "/v1/jobs/job-999999/progress")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job poll: %d", resp.StatusCode)
	}
}

