// Package service is the concolicd serving layer: an HTTP JSON front
// end that accepts analysis jobs ({bomb, tool, workers, budget}), runs
// them on a bounded worker pool over the core engine, and exposes the
// job lifecycle — submit, inspect, list, cancel — plus Prometheus-text
// metrics and a health probe.
//
// The contract with the engine is context cancellation: every job runs
// under its own context (cancelled by DELETE, expired by the per-job
// budget, or parented away during drain), and core.ExploreContext
// observes it between rounds, between negation queries, and inside SAT
// search. Verdicts are byte-identical to the concolic CLI for the same
// {bomb, tool, workers} tuple: the service adds scheduling around the
// engine, never inside it.
package service

import (
	"context"
	"net/http"
	"runtime"
	"sync/atomic"

	"repro/internal/tools"
	"repro/internal/warmstore"
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds waiting jobs; submissions beyond it receive 429
	// (<= 0: DefaultQueueDepth).
	QueueDepth int
	// Workers is the job-level pool size (<= 0: runtime.GOMAXPROCS(0)).
	// Each job may additionally run engine-internal round workers as
	// requested per job.
	Workers int
	// ResolveProfile overrides tool-name resolution (tests inject reduced
	// budgets; a deployment could pin custom profiles). Nil means
	// tools.ByName. Validation still requires the name to exist there, so
	// a resolver only adjusts capabilities, it cannot widen the API.
	ResolveProfile func(name string) (tools.Profile, bool)
	// Warm is the shared warm-start store jobs opt into with
	// {"warmstart": true} (portfolio solver only). Nil disables warm
	// starting; the caller owns the store's lifecycle (concolicd opens it
	// from -warmstart and closes it after drain).
	Warm *warmstore.Store
}

// DefaultQueueDepth bounds the queue when the config leaves it unset.
const DefaultQueueDepth = 64

// Server ties the store, pool and metrics together behind an http.Handler.
type Server struct {
	store    *Store
	pool     *pool
	metrics  *Metrics
	mux      *http.ServeMux
	queueCap int
	workers  int
	draining atomic.Bool
}

// New builds a ready-to-serve instance; its workers start immediately.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ResolveProfile == nil {
		cfg.ResolveProfile = tools.ByName
	}
	s := &Server{
		store:    NewStore(),
		metrics:  NewMetrics(),
		queueCap: cfg.QueueDepth,
		workers:  cfg.Workers,
	}
	s.pool = newPool(s.store, s.metrics, cfg.QueueDepth, cfg.Workers, cfg.ResolveProfile, cfg.Warm)
	s.routes()
	return s
}

// Handler returns the HTTP interface.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit validates and enqueues a job. It returns ErrQueueFull under
// backpressure, ErrDraining during shutdown, and a RequestError for
// malformed requests.
func (s *Server) Submit(req Request) (View, error) {
	if s.draining.Load() {
		return View{}, ErrDraining
	}
	if err := req.Validate(); err != nil {
		return View{}, &RequestError{err}
	}
	j := s.store.Add(req)
	if err := s.pool.enqueue(j); err != nil {
		s.store.Remove(j.ID)
		if err == ErrQueueFull {
			s.metrics.JobRejected()
		}
		return View{}, err
	}
	s.metrics.JobSubmitted()
	v, _ := s.store.View(j.ID)
	return v, nil
}

// Cancel requests cancellation of the named job (see Store.RequestCancel).
func (s *Server) Cancel(id string) (State, error) {
	st, err := s.store.RequestCancel(id)
	if err == nil && st == StateCancelled {
		// Cancelled while queued: it never reaches a worker, count it here.
		s.metrics.JobFinished(StateCancelled, nil, false)
	}
	return st, err
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins graceful shutdown: new submissions are rejected with
// 503, accepted jobs run to completion, and when ctx expires the
// still-running jobs are cancelled through their contexts. It returns
// once the pool is idle.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.pool.drain(ctx)
}

// RequestError marks a malformed submission (HTTP 400).
type RequestError struct{ err error }

func (e *RequestError) Error() string { return e.err.Error() }
func (e *RequestError) Unwrap() error { return e.err }
