// Package service is the concolicd serving layer: an HTTP JSON front
// end that accepts analysis jobs ({bomb, tool, workers, budget}), runs
// them on a bounded worker pool over the core engine, and exposes the
// job lifecycle — submit, inspect, list, cancel, stream progress — plus
// Prometheus-text metrics and a health probe. With a job store attached
// the lifecycle is disk-backed (queued work and finished results
// survive a restart), and with peers configured replicas steal queued
// jobs from each other, sharing solver work through the cross-replica
// query-cache tier.
//
// The contract with the engine is context cancellation: every job runs
// under its own context (cancelled by DELETE, expired by the per-job
// budget, or parented away during drain), and core.ExploreContext
// observes it between rounds, between negation queries, and inside SAT
// search. Verdicts are byte-identical to the concolic CLI for the same
// {bomb, tool, workers} tuple: the service adds scheduling around the
// engine, never inside it — and because the shared cache tier stores
// only seed-independent, budget-deterministic results, that holds at
// any fleet size too.
package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bombs"
	"repro/internal/jobstore"
	"repro/internal/solver"
	"repro/internal/tools"
	"repro/internal/warmstore"
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds waiting jobs; submissions beyond it receive 429
	// (<= 0: DefaultQueueDepth).
	QueueDepth int
	// Workers is the job-level pool size (<= 0: runtime.GOMAXPROCS(0)).
	// Each job may additionally run engine-internal round workers as
	// requested per job.
	Workers int
	// ResolveProfile overrides tool-name resolution (tests inject reduced
	// budgets; a deployment could pin custom profiles). Nil means
	// tools.ByName. Validation still requires the name to exist there, so
	// a resolver only adjusts capabilities, it cannot widen the API.
	ResolveProfile func(name string) (tools.Profile, bool)
	// Warm is the shared warm-start store jobs opt into with
	// {"warmstart": true} (portfolio solver only). Nil disables warm
	// starting; the caller owns the store's lifecycle (concolicd opens it
	// from -warmstart and closes it after drain).
	Warm *warmstore.Store
	// Jobs is the disk-backed job registry (concolicd -store). Nil keeps
	// the registry in memory. On New, persisted jobs are replayed: done
	// jobs' results become fetchable again and queued/running jobs are
	// re-enqueued. The caller owns the store's lifecycle.
	Jobs *jobstore.Log
	// SharedCache is the cross-replica solver-query tier (concolicd
	// -sharedcache): every job's engine reads and writes it, so a fleet
	// sharing one tier answers repeated negation queries once. Nil keeps
	// solving replica-local.
	SharedCache solver.QueryCache
	// Replica names this fleet member (shown on stolen jobs). Peers lists
	// sibling base URLs (e.g. http://host:8080) to steal queued jobs from
	// when the local queue is empty; empty disables stealing.
	Replica string
	Peers   []string
	// StealInterval paces the steal loop (<= 0: DefaultStealInterval);
	// StealLease bounds how long a stolen job may run before the lease
	// reaper requeues it (<= 0: DefaultStealLease).
	StealInterval time.Duration
	StealLease    time.Duration
	// RatePerSec/RateBurst shape the per-tenant submission token bucket
	// (tenant = X-API-Key header value). RatePerSec <= 0 disables it.
	// TenantMaxActive caps one tenant's queued+running jobs (<= 0: no
	// cap). Both reject with 429 and a Retry-After hint.
	RatePerSec      float64
	RateBurst       int
	TenantMaxActive int
	// Categories restricts which bomb corpora this replica accepts
	// (concolicd -categories): submissions whose bomb belongs to a
	// category outside the list are rejected as malformed requests.
	// Empty means every category is served. Useful for dedicating
	// replicas to a corpus, e.g. the extended taxonomy grid.
	Categories []string
}

// Defaults for the work-stealing loop.
const (
	DefaultQueueDepth    = 64
	DefaultStealInterval = 500 * time.Millisecond
	DefaultStealLease    = 30 * time.Second
)

// Server ties the store, pool and metrics together behind an http.Handler.
type Server struct {
	store      *Store
	pool       *pool
	metrics    *Metrics
	mux        *http.ServeMux
	queueCap   int
	workers    int
	limiter    *limiter
	tenantMax  int
	stealLease time.Duration
	categories map[bombs.Category]bool // nil: every category served
	draining   atomic.Bool
}

// New builds a ready-to-serve instance; its workers start immediately,
// and jobs recovered from cfg.Jobs are re-enqueued before the first
// submission can land.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ResolveProfile == nil {
		cfg.ResolveProfile = tools.ByName
	}
	if cfg.StealInterval <= 0 {
		cfg.StealInterval = DefaultStealInterval
	}
	if cfg.StealLease <= 0 {
		cfg.StealLease = DefaultStealLease
	}
	s := &Server{
		store:      NewStore(),
		metrics:    NewMetrics(),
		queueCap:   cfg.QueueDepth,
		workers:    cfg.Workers,
		limiter:    newLimiter(cfg.RatePerSec, cfg.RateBurst),
		tenantMax:  cfg.TenantMaxActive,
		stealLease: cfg.StealLease,
	}
	if len(cfg.Categories) > 0 {
		s.categories = make(map[bombs.Category]bool, len(cfg.Categories))
		for _, c := range cfg.Categories {
			s.categories[bombs.Category(c)] = true
		}
	}
	requeue := s.store.Recover(cfg.Jobs)
	s.pool = newPool(s.store, s.metrics, cfg)
	for _, j := range requeue {
		if err := s.pool.enqueue(j); err != nil {
			// More recovered work than queue: fail the overflow loudly
			// rather than strand it in a queued state nothing will run.
			s.store.Finish(j, StateFailed, nil, "recovery overflowed the queue: "+err.Error())
		}
	}
	s.routes()
	return s
}

// Handler returns the HTTP interface.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit enqueues a job for the anonymous tenant (the embedding/CLI
// path; HTTP goes through SubmitAs).
func (s *Server) Submit(req Request) (View, error) { return s.SubmitAs(req, "") }

// SubmitAs validates and enqueues a job under a tenant identity. It
// returns ErrQueueFull under backpressure, ErrDraining during shutdown,
// a RateLimitError over a tenant budget, and a RequestError for
// malformed requests.
func (s *Server) SubmitAs(req Request, tenant string) (View, error) {
	if s.draining.Load() {
		return View{}, ErrDraining
	}
	if ok, wait := s.limiter.allow(tenant, time.Now()); !ok {
		s.metrics.RateLimited()
		return View{}, rateLimited(wait)
	}
	if s.tenantMax > 0 {
		if active := s.store.ActiveByTenant(tenant); active >= s.tenantMax {
			s.metrics.RateLimited()
			return View{}, tenantBusy(active, s.tenantMax)
		}
	}
	if err := req.Validate(); err != nil {
		return View{}, &RequestError{err}
	}
	if s.categories != nil {
		b, _ := bombs.ByName(req.Bomb) // Validate guarantees existence
		if !s.categories[b.Category] {
			return View{}, &RequestError{fmt.Errorf(
				"bomb %q is in category %q, which this replica does not serve",
				req.Bomb, b.Category)}
		}
	}
	j := s.store.Add(req, tenant)
	if err := s.pool.enqueue(j); err != nil {
		s.store.Remove(j.ID)
		if err == ErrQueueFull {
			s.metrics.JobRejected()
		}
		return View{}, err
	}
	s.metrics.JobSubmitted()
	v, _ := s.store.View(j.ID)
	return v, nil
}

// Cancel requests cancellation of the named job (see Store.RequestCancel).
func (s *Server) Cancel(id string) (State, error) {
	st, err := s.store.RequestCancel(id)
	if err == nil && st == StateCancelled {
		// Cancelled while queued: it never reaches a worker, count it here.
		s.metrics.JobFinished(StateCancelled, nil, false)
	}
	return st, err
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins graceful shutdown: new submissions are rejected with
// 503, accepted jobs run to completion, and when ctx expires the
// still-running jobs are cancelled through their contexts. It returns
// once the pool is idle.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.pool.drain(ctx)
}

// RequestError marks a malformed submission (HTTP 400).
type RequestError struct{ err error }

func (e *RequestError) Error() string { return e.err.Error() }
func (e *RequestError) Unwrap() error { return e.err }
