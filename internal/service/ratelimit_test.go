package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postJobAs(t *testing.T, ts *httptest.Server, req Request, apiKey string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		hr.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestLimiterBucket pins the token-bucket math with a controlled clock.
func TestLimiterBucket(t *testing.T) {
	l := newLimiter(2, 2) // 2/s, burst 2
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := l.allow("a", now)
	if ok {
		t.Fatal("third immediate token allowed past burst")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] at 2 tokens/s", wait)
	}
	// Tenants are independent buckets.
	if ok, _ := l.allow("b", now); !ok {
		t.Fatal("fresh tenant refused")
	}
	// Half a second refills one token at 2/s.
	if ok, _ := l.allow("a", now.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	// Refill caps at burst.
	later := now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", later); !ok {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if ok, _ := l.allow("a", later); ok {
		t.Fatal("idle refill exceeded burst")
	}
	// nil limiter never refuses.
	var nl *limiter
	if ok, _ := nl.allow("anyone", now); !ok {
		t.Fatal("nil limiter refused")
	}
}

// TestTenantRateLimitHTTP drives the 429 path: a tenant over its bucket
// is refused with Retry-After while other tenants still submit, and the
// refusals surface in /metrics.
func TestTenantRateLimitHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, ResolveProfile: fastResolve,
		RatePerSec: 0.001, RateBurst: 2, // effectively no refill mid-test
	})

	req := Request{Bomb: "jump", Tool: "reference", Workers: 1}
	for i := 0; i < 2; i++ {
		if resp := postJobAs(t, ts, req, "alice"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: status %d", i, resp.StatusCode)
		}
	}
	resp := postJobAs(t, ts, req, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over budget: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 lacks Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Errorf("Retry-After %q, want integer >= 1", ra)
	}
	if resp := postJobAs(t, ts, req, "bob"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob blocked by alice's budget: status %d", resp.StatusCode)
	}

	metrics := s.metrics.Render(0, 8, 1)
	if !strings.Contains(metrics, "concolicd_ratelimited_total 1") {
		t.Errorf("metrics missing rate-limit counter:\n%s", metrics)
	}
}

// TestTenantMaxActive caps one tenant's live jobs while leaving others
// unaffected, and releases as jobs finish.
func TestTenantMaxActive(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8, ResolveProfile: slowResolver,
		TenantMaxActive: 1,
	})

	resp := postJobAs(t, ts, Request{Bomb: "sha1", Tool: "reference", Workers: 1}, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alice job: status %d", resp.StatusCode)
	}
	resp = postJobAs(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1}, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second alice job: status %d, want 429", resp.StatusCode)
	}
	if resp := postJobAs(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1}, "bob"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob alongside alice: status %d", resp.StatusCode)
	}
}

// TestListPagination pins stable submission order and the
// offset/limit window on the list endpoint.
func TestListPagination(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, ResolveProfile: fastResolve})

	var ids []string
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts, Request{Bomb: "jump", Tool: "reference", Workers: 1})
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitState(t, ts, id, StateDone, 30*time.Second)
	}

	page := func(query string) (got []string, total, count int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q: status %d", query, resp.StatusCode)
		}
		var body struct {
			Jobs  []View `json:"jobs"`
			Total int    `json:"total"`
			Count int    `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		for _, v := range body.Jobs {
			got = append(got, v.ID)
		}
		return got, body.Total, body.Count
	}

	all, total, count := page("")
	if total != 3 || count != 3 {
		t.Fatalf("full list: total=%d count=%d", total, count)
	}
	for i, id := range ids {
		if all[i] != id {
			t.Fatalf("list order[%d] = %s, want %s", i, all[i], id)
		}
	}
	win, total, count := page("?offset=1&limit=1")
	if total != 3 || count != 1 || len(win) != 1 || win[0] != ids[1] {
		t.Fatalf("window: ids=%v total=%d count=%d", win, total, count)
	}
	tail, _, _ := page("?offset=2&limit=5")
	if len(tail) != 1 || tail[0] != ids[2] {
		t.Fatalf("over-long window: %v", tail)
	}
	empty, total, _ := page("?offset=10")
	if len(empty) != 0 || total != 3 {
		t.Fatalf("past-the-end window: ids=%v total=%d", empty, total)
	}
	resp, _ := http.Get(ts.URL + "/v1/jobs?offset=-1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset: status %d, want 400", resp.StatusCode)
	}
}
