package jobstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// refModel replays raw journal bytes the way the documentation promises:
// decode line by line, skip undecodable lines, keep the latest record
// per ID in first-seen order, honor tombstones.
func refModel(data []byte) []Record {
	recs := make(map[string]Record)
	var order []string
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r rec
		if json.Unmarshal(line, &r) != nil {
			continue
		}
		switch {
		case r.T == "j" && r.J != nil && r.J.ID != "":
			if _, seen := recs[r.J.ID]; !seen {
				order = append(order, r.J.ID)
			}
			recs[r.J.ID] = *r.J
		case r.T == "d" && r.D != "":
			if _, seen := recs[r.D]; seen {
				delete(recs, r.D)
				for i, id := range order {
					if id == r.D {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		}
	}
	out := make([]Record, 0, len(order))
	for _, id := range order {
		out = append(out, recs[id])
	}
	return out
}

// FuzzJournalReplay feeds arbitrary bytes to the journal replay as a
// crash-damaged log file: Open must never fail or panic, and the
// recovered records must match the reference model exactly.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"t\":\"j\",\"j\":{\"id\":\"a\",\"state\":\"queued\"}}\n"))
	f.Add([]byte("{\"t\":\"j\",\"j\":{\"id\":\"a\",\"state\":\"queued\"}}\n{\"t\":\"d\",\"d\":\"a\"}\n"))
	f.Add([]byte("{\"t\":\"j\",\"j\":{\"id\":\"a\",\"state\":\"queued\"}}\n{\"t\":\"j\",\"j\":{\"id\":\"a\",\"sta"))
	f.Add([]byte("garbage\n{\"t\":\"j\",\"j\":{\"id\":\"never\"}}\n"))
	f.Add([]byte("{\"t\":\"d\",\"d\":\"ghost\"}\n{\"t\":\"j\",\"j\":{\"id\":\"b\"}}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on fuzzed journal: %v", err)
		}
		defer l.Close()
		got := l.Records()
		want := refModel(data)
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replay diverged from reference model:\n got %+v\nwant %+v", got, want)
		}
	})
}
