package jobstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func put(l *Log, id, state string) {
	l.Put(Record{
		ID:        id,
		Req:       json.RawMessage(`{"bomb":"b"}`),
		State:     state,
		Submitted: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
	})
}

func ids(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

func TestPutUpdateDeleteOrder(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	put(l, "a", "queued")
	put(l, "b", "queued")
	put(l, "c", "queued")
	put(l, "a", "done") // update must not move a to the back
	l.Delete("b")

	recs := l.Records()
	got := ids(recs)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("order after update+delete: %v", got)
	}
	if recs[0].State != "done" {
		t.Fatalf("update lost: %+v", recs[0])
	}
}

func TestReplayPreservesOrderAndLatestState(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	put(l, "j1", "queued")
	put(l, "j2", "queued")
	put(l, "j1", "running")
	put(l, "j1", "done")
	// No Close: simulate a crash (the log is unbuffered, so every Put is
	// already on disk).

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if got := ids(recs); len(got) != 2 || got[0] != "j1" || got[1] != "j2" {
		t.Fatalf("replayed order: %v", got)
	}
	if recs[0].State != "done" || recs[1].State != "queued" {
		t.Fatalf("replayed states: %s/%s", recs[0].State, recs[1].State)
	}
	if st := re.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed count: %+v", st)
	}
}

func TestCompactAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"x", "y", "z"} {
		put(l, id, "queued")
	}
	l.Delete("y")
	put(l, "x", "failed")
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compact appends land in the fresh log.
	put(l, "w", "queued")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := ids(re.Records()); len(got) != 3 || got[0] != "x" || got[1] != "z" || got[2] != "w" {
		t.Fatalf("after compact+reopen: %v", got)
	}
}

func TestTornTailTolerance(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	put(l, "keep", "done")
	// Crash mid-append: an unterminated partial record at the log tail.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(`{"t":"j","j":{"id":"torn","sta`)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer re.Close()
	if got := ids(re.Records()); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("after torn tail: %v", got)
	}
	// The repaired tail must not eat the next append.
	put(re, "after", "queued")
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := ids(re2.Records()); len(got) != 2 || got[1] != "after" {
		t.Fatalf("append after torn tail lost: %v", got)
	}
}

func TestResultPayloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Put(Record{
		ID:     "r",
		State:  "done",
		Result: json.RawMessage(`{"verdict":"solved","label":"","rounds":3}`),
	})
	l.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	var res struct {
		Verdict string `json:"verdict"`
		Rounds  int    `json:"rounds"`
	}
	if err := json.Unmarshal(recs[0].Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != "solved" || res.Rounds != 3 {
		t.Fatalf("payload mangled: %+v", res)
	}
}
