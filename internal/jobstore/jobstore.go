// Package jobstore is the disk-backed half of the service job registry:
// an append-only journal + snapshot (the torn-tail-tolerant layout of
// internal/warmstore) holding one record per job, so queued work and
// finished results survive a concolicd restart or crash.
//
// Layout: a directory with `log.jsonl` (one record appended per state
// transition, unbuffered so a killed process loses at most the write in
// flight) and `snapshot.jsonl` (the same record format, rewritten on
// Compact/Close). Open replays snapshot then log; a corrupt line is
// skipped instead of failing the open, and an unterminated log tail is
// newline-repaired so post-crash appends cannot fuse onto it. The
// latest record per job wins; first-seen order is preserved, so a
// replayed store lists jobs in their original submission order.
//
// Requests and results are opaque json.RawMessage payloads: the service
// layer owns their schema, which keeps this package below it in the
// dependency order (the same idiom warmstore uses toward the solver).
package jobstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record is one job's persisted state. Every Put writes the whole
// record; replay keeps the latest per ID.
type Record struct {
	ID        string          `json:"id"`
	Req       json.RawMessage `json:"req"`
	State     string          `json:"state"`
	Tenant    string          `json:"tenant,omitempty"`
	Replica   string          `json:"replica,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   time.Time       `json:"started"`
	Finished  time.Time       `json:"finished"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// rec is one log/snapshot line: a job put ("j") or a tombstone ("d").
type rec struct {
	T string  `json:"t"`
	J *Record `json:"j,omitempty"`
	D string  `json:"d,omitempty"`
}

// Stats counts store contents and traffic since Open.
type Stats struct {
	Jobs     int   // live records
	Replayed int   // records recovered by Open (after tombstones)
	Appends  int64 // log lines written this session
}

const (
	snapshotName = "snapshot.jsonl"
	logName      = "log.jsonl"
)

// Log is a disk-backed job record store. Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	dir      string
	log      *os.File
	records  map[string]*Record
	order    []string // first-seen order; survives updates and replay
	replayed int
	appends  int64
}

// Open opens (creating if needed) the store rooted at dir and replays
// its contents.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	l := &Log{dir: dir, records: make(map[string]*Record)}
	if err := l.replay(filepath.Join(dir, snapshotName)); err != nil {
		return nil, err
	}
	if err := l.replay(filepath.Join(dir, logName)); err != nil {
		return nil, err
	}
	l.replayed = len(l.order)
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if err := terminateTail(filepath.Join(dir, logName), f); err != nil {
		f.Close()
		return nil, err
	}
	l.log = f
	return l, nil
}

// replay loads one record file. A missing file is fine; an undecodable
// line — a torn tail newline-repaired by a later Open, or any other
// crash damage — is skipped, so records appended after the damage still
// recover.
func (l *Log) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r rec
		if json.Unmarshal(line, &r) != nil {
			continue // crash damage: skip the line, keep replaying
		}
		l.apply(r)
	}
	return nil
}

func (l *Log) apply(r rec) {
	switch {
	case r.T == "j" && r.J != nil && r.J.ID != "":
		cp := *r.J
		if _, seen := l.records[cp.ID]; !seen {
			l.order = append(l.order, cp.ID)
		}
		l.records[cp.ID] = &cp
	case r.T == "d" && r.D != "":
		if _, seen := l.records[r.D]; seen {
			delete(l.records, r.D)
			for i, id := range l.order {
				if id == r.D {
					l.order = append(l.order[:i], l.order[i+1:]...)
					break
				}
			}
		}
	}
}

// terminateTail newline-repairs an unterminated final log line left by
// a crash, so the next append starts a fresh line instead of fusing
// onto the torn one and being lost on the following replay.
func terminateTail(path string, log *os.File) error {
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	var last [1]byte
	if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := log.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Put persists a job record (insert or full update). The append is a
// single unbuffered write: a killed process loses at most the record in
// flight, never an earlier one.
func (l *Log) Put(r Record) {
	if r.ID == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apply(rec{T: "j", J: &r})
	l.append(rec{T: "j", J: &r})
}

// Delete removes a job record (submit rollback on backpressure),
// persisting a tombstone.
func (l *Log) Delete(id string) {
	if id == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.apply(rec{T: "d", D: id})
	l.append(rec{T: "d", D: id})
}

func (l *Log) append(r rec) {
	if l.log == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	if _, err := l.log.Write(append(b, '\n')); err != nil {
		return
	}
	l.appends++
}

// Records returns copies of every live record in first-seen order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.order))
	for _, id := range l.order {
		out = append(out, *l.records[id])
	}
	return out
}

// Stats returns the store's size and traffic counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Jobs: len(l.order), Replayed: l.replayed, Appends: l.appends}
}

// Compact rewrites the snapshot from memory and truncates the log.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, id := range l.order {
		if err := enc.Encode(rec{T: "j", J: l.records[id]}); err != nil {
			f.Close()
			return fmt.Errorf("jobstore: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	// The snapshot covers everything: restart the log.
	if l.log != nil {
		l.log.Close()
	}
	if err := os.Truncate(filepath.Join(l.dir, logName), 0); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	f, err = os.OpenFile(filepath.Join(l.dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	l.log = f
	return nil
}

// Close compacts and releases the store.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	if err := l.Compact(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log != nil {
		err := l.log.Close()
		l.log = nil
		if err != nil {
			return fmt.Errorf("jobstore: %w", err)
		}
	}
	return nil
}
