package sat

import (
	"testing"
	"time"
)

// TestSolveAssumingBasics drives one persistent instance through
// contradictory assumption sets and checks the solver survives each
// verdict.
func TestSolveAssumingBasics(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b

	if st := s.SolveAssuming([]Lit{MkLit(a, false)}, 0, time.Time{}, nil); st != Sat {
		t.Fatalf("assume a: %v, want sat", st)
	}
	if !s.Value(a) {
		t.Error("assume a: model has a=false")
	}
	if st := s.SolveAssuming([]Lit{MkLit(a, true), MkLit(b, true)}, 0, time.Time{}, nil); st != Unsat {
		t.Fatalf("assume ~a,~b: %v, want unsat", st)
	}
	if len(s.FinalConflict()) == 0 {
		t.Error("assumption-level unsat without a final conflict")
	}
	// The instance must remain usable after an assumption failure.
	if st := s.SolveAssuming([]Lit{MkLit(b, false)}, 0, time.Time{}, nil); st != Sat {
		t.Fatalf("assume b after failure: %v, want sat", st)
	}
	if !s.Value(b) {
		t.Error("assume b: model has b=false")
	}
}

// TestFinalConflictSubset checks the final conflict names only the
// assumptions actually responsible, not innocent bystanders.
func TestFinalConflictSubset(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, true)) // ~a | ~b
	_ = c

	aT, bT, cT := MkLit(a, false), MkLit(b, false), MkLit(c, false)
	if st := s.SolveAssuming([]Lit{cT, aT, bT}, 0, time.Time{}, nil); st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	fc := s.FinalConflict()
	inConflict := map[Lit]bool{}
	for _, l := range fc {
		inConflict[l] = true
	}
	if inConflict[cT] {
		t.Errorf("final conflict %v blames unrelated assumption c", fc)
	}
	if !inConflict[aT] || !inConflict[bT] {
		t.Errorf("final conflict %v misses a or b", fc)
	}
}

// TestIncrementalClauseAdditionAfterSat asserts clauses can be added
// after a Sat verdict and the model snapshot from the earlier call stays
// readable.
func TestIncrementalClauseAdditionAfterSat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	if st := s.Solve(0); st != Sat {
		t.Fatalf("initial solve: %v", st)
	}
	va := s.Value(a)
	// Pin both variables to the opposite of a's model value; the
	// instance must accept the clauses and re-solve.
	if !s.AddClause(MkLit(a, va)) {
		t.Fatal("AddClause rejected after Sat")
	}
	if s.Value(a) != va {
		t.Error("model snapshot changed by AddClause")
	}
	if st := s.Solve(0); st != Sat {
		t.Fatalf("re-solve: %v", st)
	}
	if s.Value(a) == va {
		t.Error("unit clause not honored by re-solve")
	}
}

// TestPerCallConflictBudget verifies the conflict budget is charged per
// Solve call on a persistent instance, not cumulatively: a second call
// with the same budget must not start exhausted.
func TestPerCallConflictBudget(t *testing.T) {
	s := New()
	// A small unsatisfiable pigeonhole-ish core that needs a few
	// conflicts: x1..x4 with pairwise exclusions and a covering clause.
	n := 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	var cover []Lit
	for i := 0; i < n; i++ {
		cover = append(cover, MkLit(vars[i], false))
		for j := i + 1; j < n; j++ {
			s.AddClause(MkLit(vars[i], true), MkLit(vars[j], true))
		}
	}
	s.AddClause(cover...)
	before := s.Stats().Conflicts
	if st := s.Solve(0); st != Sat {
		t.Fatalf("exactly-one system: %v, want sat", st)
	}
	spent := s.Stats().Conflicts - before
	// Re-solving under assumptions with a budget equal to what the whole
	// search cost must still terminate (budget is per-call).
	if st := s.SolveAssuming([]Lit{MkLit(vars[0], false)}, spent+8, time.Time{}, nil); st != Sat {
		t.Fatalf("per-call budget starved the second call: %v", st)
	}
}

// TestLearnedClausesRetained checks the learned-clause DB and restart
// counters survive across calls on one instance.
func TestLearnedClausesRetained(t *testing.T) {
	s := New()
	n := 8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Parity-ish chain with a contradiction far down forces learning.
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false)) // x_i -> x_{i+1}
		s.AddClause(MkLit(vars[i], false), MkLit(vars[i+1], true)) // ~x_i -> ~x_{i+1}
	}
	if st := s.SolveAssuming([]Lit{MkLit(vars[0], false), MkLit(vars[n-1], true)}, 0, time.Time{}, nil); st != Unsat {
		t.Fatalf("chain contradiction: %v, want unsat", st)
	}
	st1 := s.Stats()
	if st := s.SolveAssuming([]Lit{MkLit(vars[0], false)}, 0, time.Time{}, nil); st != Sat {
		t.Fatalf("satisfiable assumption set: %v", st)
	}
	st2 := s.Stats()
	if st2.Restarts < st1.Restarts || st2.Restarts == 0 {
		t.Errorf("restart counter went backwards or never moved: %d -> %d", st1.Restarts, st2.Restarts)
	}
	if st2.Learned < st1.Learned {
		t.Errorf("learned counter went backwards: %d -> %d", st1.Learned, st2.Learned)
	}
	if live := st2.LearnedLive(); live < 0 {
		t.Errorf("negative live learned clauses: %d", live)
	}
}
