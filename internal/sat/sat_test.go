package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Errorf("positive literal broken: %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Errorf("negation broken: %v", n)
	}
	if n.Not() != l {
		t.Error("double negation broken")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if st := s.Solve(0); st != Sat {
		t.Fatalf("status = %v, want sat", st)
	}
	if !s.Value(a) {
		t.Error("a should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Error("adding complementary unit should report unsat")
	}
	if st := s.Solve(0); st != Unsat {
		t.Errorf("status = %v, want unsat", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Error("empty clause should make the formula unsat")
	}
	if st := s.Solve(0); st != Unsat {
		t.Errorf("status = %v", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Error("tautology should be accepted")
	}
	if st := s.Solve(0); st != Sat {
		t.Errorf("status = %v", st)
	}
}

func TestImplicationChain(t *testing.T) {
	// a, a->b, b->c, c->d: all must be true.
	s := New()
	vars := make([]int, 4)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if st := s.Solve(0); st != Sat {
		t.Fatalf("status = %v", st)
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Errorf("var %d should be true", i)
		}
	}
}

func TestPigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: unsat. p[i][j] = pigeon i in hole j.
	s := New()
	p := make([][]int, 3)
	for i := range p {
		p[i] = []int{s.NewVar(), s.NewVar()}
	}
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(p[i][0], false), MkLit(p[i][1], false))
	}
	for j := 0; j < 2; j++ {
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				s.AddClause(MkLit(p[a][j], true), MkLit(p[b][j], true))
			}
		}
	}
	if st := s.Solve(0); st != Unsat {
		t.Errorf("pigeonhole 3x2 = %v, want unsat", st)
	}
}

func TestBudgetReturnsUnknown(t *testing.T) {
	// Pigeonhole 8x7 is hard enough to exceed a one-conflict budget.
	s := New()
	const n, m = 8, 7
	p := make([][]int, n)
	for i := range p {
		p[i] = make([]int, m)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, m)
		for j := 0; j < m; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < m; j++ {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				s.AddClause(MkLit(p[a][j], true), MkLit(p[b][j], true))
			}
		}
	}
	if st := s.Solve(3); st != Unknown {
		t.Errorf("tiny budget should give unknown, got %v", st)
	}
}

// brute checks satisfiability of a small CNF by enumeration.
func brute(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := (m>>uint(l.Var()))&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestQuickAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		_ = seed
		nVars := 3 + rng.Intn(6) // 3..8 vars
		nClauses := 1 + rng.Intn(20)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		want := brute(nVars, cnf)
		if !ok {
			return !want // AddClause detected unsat early
		}
		st := s.Solve(0)
		if want && st != Sat {
			t.Logf("expected sat, got %v for %v", st, cnf)
			return false
		}
		if !want && st != Unsat {
			t.Logf("expected unsat, got %v for %v", st, cnf)
			return false
		}
		if st == Sat {
			// Verify the model actually satisfies the clauses.
			for _, cl := range cnf {
				good := false
				for _, l := range cl {
					if s.Value(l.Var()) != l.Neg() {
						good = true
						break
					}
				}
				if !good {
					t.Logf("model does not satisfy %v", cl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStatsAdvance(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.Solve(0)
	if props := s.Stats().Propagations; props == 0 {
		t.Error("propagations should be counted")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
