package sat

import (
	"testing"
	"time"
)

// addPigeonhole encodes the pigeonhole principle PHP(holes+1, holes):
// holes+1 pigeons into holes holes, unsatisfiable and resolution-hard
// enough to force real clause learning. Returns the variable matrix
// p[i][j] = "pigeon i sits in hole j".
func addPigeonhole(s *Solver, holes int) [][]int {
	pigeons := holes + 1
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		var c []Lit
		for j := 0; j < holes; j++ {
			c = append(c, MkLit(p[i][j], false))
		}
		s.AddClause(c...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	return p
}

// TestStatsMonotonicSolveAssuming drives one instance through a sequence
// of SolveAssuming calls and checks every Stats counter is cumulative
// and non-decreasing — counters are never reset between calls, so
// callers charge a call by differencing around it.
func TestStatsMonotonicSolveAssuming(t *testing.T) {
	s := New()
	p := addPigeonhole(s, 4)
	prev := s.Stats()
	if prev != (Stats{}) {
		t.Fatalf("fresh instance has nonzero stats: %+v", prev)
	}
	assumptionSets := [][]Lit{
		nil,
		{MkLit(p[0][0], false)},
		{MkLit(p[0][0], false), MkLit(p[1][1], false)},
		nil,
	}
	for i, as := range assumptionSets {
		if st := s.SolveAssuming(as, 200_000, time.Time{}, nil); st != Unsat {
			t.Fatalf("call %d: %v, want unsat", i, st)
		}
		cur := s.Stats()
		if cur.Conflicts < prev.Conflicts || cur.Propagations < prev.Propagations ||
			cur.Restarts < prev.Restarts || cur.Learned < prev.Learned ||
			cur.Deleted < prev.Deleted || cur.Imported < prev.Imported ||
			cur.Exported < prev.Exported {
			t.Fatalf("call %d: counter went backwards: %+v -> %+v", i, prev, cur)
		}
		prev = cur
	}
	if prev.Conflicts == 0 || prev.Learned == 0 {
		t.Fatalf("pigeonhole refutation registered no work: %+v", prev)
	}
	// Per-call differencing must see the base-formula refutation charged
	// once: after ok=false the later calls return Unsat without search.
	again := s.Stats()
	s.SolveAssuming(nil, 200_000, time.Time{}, nil)
	if got := s.Stats(); got != again {
		t.Errorf("refuted instance still accrues work: %+v -> %+v", again, got)
	}
}

// TestLearnExportImportRoundTrip learns clauses on one solver via the
// learn hook and imports them into a second solver encoding the
// identical CNF (same variable allocation order). The importer must
// count the adoptions and reach the same verdict.
func TestLearnExportImportRoundTrip(t *testing.T) {
	var exported [][]Lit
	a := New()
	a.SetLearnHook(func(lits []Lit, lbd int) {
		if lbd <= 0 {
			t.Errorf("learn hook saw nonpositive LBD %d for %v", lbd, lits)
		}
		if len(lits) <= 8 && lbd <= 6 {
			exported = append(exported, lits)
		}
	})
	addPigeonhole(a, 5)
	if st := a.Solve(500_000); st != Unsat {
		t.Fatalf("exporter: %v, want unsat", st)
	}
	if a.Stats().Exported == 0 || len(exported) == 0 {
		t.Fatal("no clauses exported by the learn hook")
	}

	b := New()
	addPigeonhole(b, 5)
	b.ImportLearned(exported)
	if st := b.Solve(500_000); st != Unsat {
		t.Fatalf("importer: %v, want unsat", st)
	}
	sb := b.Stats()
	if sb.Imported == 0 {
		t.Fatal("importer adopted no clauses")
	}
	if sb.Imported > int64(len(exported)) {
		t.Fatalf("imported %d > offered %d", sb.Imported, len(exported))
	}
}

// TestImportPreservesSat checks imported clauses never flip a satisfiable
// instance: clauses learned from the same formula are implied, so the
// importer still finds a model that satisfies the original clauses.
func TestImportPreservesSat(t *testing.T) {
	build := func() (*Solver, []int) {
		s := New()
		vars := make([]int, 8)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		for i := 0; i+1 < len(vars); i++ {
			s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
		}
		s.AddClause(MkLit(vars[0], false), MkLit(vars[len(vars)-1], false))
		return s, vars
	}
	var exported [][]Lit
	a, _ := build()
	a.SetLearnHook(func(lits []Lit, lbd int) {
		exported = append(exported, lits)
	})
	if st := a.Solve(0); st != Sat {
		t.Fatalf("exporter: %v, want sat", st)
	}

	b, vars := build()
	b.ImportLearned(exported)
	if st := b.Solve(0); st != Sat {
		t.Fatalf("importer: %v, want sat", st)
	}
	// The model must satisfy the original chain clauses.
	for i := 0; i+1 < len(vars); i++ {
		if b.Value(vars[i]) && !b.Value(vars[i+1]) {
			t.Fatalf("model violates chain clause %d", i)
		}
	}
}

// TestImportDropsForeignAndRootFalse checks adoption robustness: clauses
// naming unallocated variables are dropped whole, root-level-false
// literals are stripped, and an empty adoption refutes the instance.
func TestImportDropsForeignAndRootFalse(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false)) // unit: a (root-level true)
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.ImportLearned([][]Lit{
		{MkLit(99, false)},                // foreign variable: dropped
		{MkLit(a, true), MkLit(b, false)}, // ~a stripped -> unit b
	})
	if st := s.Solve(0); st != Sat {
		t.Fatalf("solve: %v, want sat", st)
	}
	if !s.Value(b) {
		t.Error("stripped import did not propagate b")
	}
	if got := s.Stats().Imported; got != 1 {
		t.Errorf("imported = %d, want 1 (foreign clause dropped)", got)
	}
	// A clause false at root level refutes the instance on adoption.
	s.ImportLearned([][]Lit{{MkLit(a, true)}})
	if st := s.Solve(0); st != Unsat {
		t.Fatalf("contradictory import: %v, want unsat", st)
	}
}

// TestConfigDiversificationSound checks every diversified configuration
// reaches the same verdicts as the default on both satisfiable and
// unsatisfiable instances.
func TestConfigDiversificationSound(t *testing.T) {
	configs := []Config{
		{},
		{InvertPolarity: true},
		{RestartGeometric: true, RestartBase: 50},
		{RandSeed: 7, RandomBranchFreq: 0.1},
		{RandSeed: 11, RandomBranchFreq: 0.05, InvertPolarity: true, RestartGeometric: true},
	}
	for i, cfg := range configs {
		s := New()
		s.Configure(cfg)
		addPigeonhole(s, 4)
		if st := s.Solve(500_000); st != Unsat {
			t.Errorf("config %d: pigeonhole %v, want unsat", i, st)
		}
		s2 := New()
		s2.Configure(cfg)
		v := make([]int, 6)
		for j := range v {
			v[j] = s2.NewVar()
		}
		for j := 0; j+1 < len(v); j++ {
			s2.AddClause(MkLit(v[j], true), MkLit(v[j+1], false))
		}
		if st := s2.Solve(0); st != Sat {
			t.Errorf("config %d: chain %v, want sat", i, st)
		}
		for j := 0; j+1 < len(v); j++ {
			if s2.Value(v[j]) && !s2.Value(v[j+1]) {
				t.Errorf("config %d: model violates chain clause %d", i, j)
			}
		}
	}
}
