// Package sat implements a CDCL boolean satisfiability solver with
// two-watched-literal propagation, VSIDS branching, first-UIP clause
// learning and Luby restarts. It is the decision core under the bitvector
// solver, playing the role MiniSat/STP/Z3 play for the paper's tools.
package sat

import (
	"math"
	"math/rand"
	"time"
)

// Lit is a literal: variable v asserted positively is v<<1, negated is
// v<<1|1.
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	Sat Status = iota + 1
	Unsat
	Unknown // budget exhausted
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	}
	return "invalid"
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause
	learned []*clause
	watches [][]watcher // indexed by literal

	assign   []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool

	clauseInc float64

	ok        bool
	conflicts int64
	props     int64
	restarts  int64
	learnedN  int64 // learned clauses created
	deletedN  int64 // learned clauses dropped by DB reduction

	// Portfolio diversification and clause exchange (see share.go).
	cfg       Config
	rng       *rand.Rand
	learnHook func(lits []Lit, lbd int)
	importQ   [][]Lit
	importedN int64 // clauses adopted via ImportLearned
	exportedN int64 // clauses reported to the learn hook
	lbdSeen   []int64
	lbdStamp  int64

	// model is the assignment snapshot taken at the last Sat verdict.
	// Search state is unwound to level 0 before Solve returns, so the
	// instance stays usable for further AddClause/Solve calls; Value
	// reads the snapshot, not the live trail.
	model []lbool

	// finalConf is the subset of the last SolveAssuming call's
	// assumptions responsible for an assumption-level Unsat.
	finalConf []Lit
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, clauseInc: 1, ok: true}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, s.cfg.InvertPolarity)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

func (s *Solver) litValue(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if (a == lTrue) != l.Neg() {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause. It returns false if the formula became
// trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Simplify: drop duplicate/false literals, detect tautology.
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		if seen[l.Not()] {
			return true // tautology
		}
		if seen[l] {
			continue
		}
		switch s.litValue(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.litValue(out[0]) == lFalse {
			s.ok = false
			return false
		}
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c: c, blocker: c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.props++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.litValue(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure lits[1] is the false literal p.Not().
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Find a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflict.
			kept = append(kept, w)
			if s.litValue(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				continue
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *Solver) backtrack(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 for the asserting literal
	seen := make([]bool, len(s.assign))
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conflict

	for {
		start := 0
		if p != -1 {
			start = 1
		}
		for i := start; i < len(c.lits); i++ {
			q := c.lits[i]
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal to expand.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learnt[0] = p.Not()

	// Compute backtrack level: max level among tail literals.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

func (s *Solver) pickBranchVar() int {
	if s.rng != nil && s.rng.Float64() < s.cfg.RandomBranchFreq {
		// Random branching: a few probes into the variable array; fall
		// through to VSIDS when every probe lands on an assigned var.
		for try := 0; try < 8 && len(s.assign) > 0; try++ {
			if v := s.rng.Intn(len(s.assign)); s.assign[v] == lUndef {
				return v
			}
		}
	}
	for s.order.size() > 0 {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

func (s *Solver) reduceLearned() {
	if len(s.learned) < 4000 {
		return
	}
	// Drop the less active half, keeping reason clauses.
	lim := medianAct(s.learned)
	kept := s.learned[:0]
	for _, c := range s.learned {
		if c.act >= lim || s.isReason(c) || len(c.lits) <= 2 {
			kept = append(kept, c)
		} else {
			s.unwatch(c)
			s.deletedN++
		}
	}
	s.learned = kept
}

func medianAct(cs []*clause) float64 {
	var sum float64
	for _, c := range cs {
		sum += c.act
	}
	return sum / float64(len(cs))
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

func (s *Solver) unwatch(c *clause) {
	for _, w := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// luby computes the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve searches for a model. maxConflicts bounds the number of
// conflicts spent in this call before giving up with Unknown (<= 0
// means a large default); on a persistent instance the budget is
// per-call, not cumulative across calls.
func (s *Solver) Solve(maxConflicts int64) Status {
	return s.SolveDeadline(maxConflicts, time.Time{})
}

// SolveDeadline is Solve with an additional wall-clock deadline (zero
// means none); exceeding it returns Unknown, modeling the analysis
// timeouts that produce the paper's E outcomes.
func (s *Solver) SolveDeadline(maxConflicts int64, deadline time.Time) Status {
	return s.SolveInterruptible(maxConflicts, deadline, nil)
}

// SolveInterruptible is SolveDeadline with an additional interruption
// probe, polled at restart boundaries (every few hundred conflicts).
// When interrupted returns true the search gives up with Unknown, which
// is how a cancelled analysis context stops a long-running query without
// waiting for its conflict or wall-clock budget. A nil probe means none.
func (s *Solver) SolveInterruptible(maxConflicts int64, deadline time.Time, interrupted func() bool) Status {
	return s.SolveAssuming(nil, maxConflicts, deadline, interrupted)
}

// SolveAssuming searches for a model under the given assumption
// literals, MiniSat-style: each pending assumption is enqueued as the
// decision of its own level before any free decision is made. On Unsat
// caused by the assumptions (rather than the base formula) the solver
// records the responsible subset — see FinalConflict — and remains
// usable: learned clauses, variable activities and saved phases are
// retained for the next call, which is what makes repeated calls on a
// persistent instance incremental. Search state is unwound to level 0
// before returning, so clauses may be added between calls; on Sat the
// assignment is snapshotted first and served by Value.
func (s *Solver) SolveAssuming(assumptions []Lit, maxConflicts int64, deadline time.Time, interrupted func() bool) Status {
	s.finalConf = s.finalConf[:0]
	if !s.ok {
		return Unsat
	}
	limit := int64(math.MaxInt64)
	if maxConflicts > 0 && s.conflicts < math.MaxInt64-maxConflicts {
		limit = s.conflicts + maxConflicts
	}
	restart := int64(0)
	for s.conflicts < limit {
		if !deadline.IsZero() && time.Now().After(deadline) {
			s.backtrack(0)
			return Unknown
		}
		if interrupted != nil && interrupted() {
			s.backtrack(0)
			return Unknown
		}
		// The trail is at level 0 here: the only sound point to adopt
		// clauses imported from portfolio peers.
		s.drainImports()
		if !s.ok {
			return Unsat
		}
		restart++
		s.restarts++
		budget := s.restartBudget(restart)
		switch st := s.search(budget, limit, assumptions); st {
		case Sat:
			s.saveModel()
			s.backtrack(0)
			return Sat
		case Unsat:
			s.backtrack(0)
			return Unsat
		}
		s.backtrack(0)
	}
	s.backtrack(0)
	return Unknown
}

// FinalConflict returns the subset of the last SolveAssuming call's
// assumptions that jointly made the formula unsatisfiable. It is empty
// when the last verdict was not Unsat, or when the base formula itself
// is unsatisfiable independent of any assumption. The returned slice is
// valid until the next Solve* call.
func (s *Solver) FinalConflict() []Lit { return s.finalConf }

func (s *Solver) search(budget, limit int64, assumptions []Lit) Status {
	local := int64(0)
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			local++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			s.exportLearned(learnt)
			s.backtrack(btLevel)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true, act: s.clauseInc}
				s.learned = append(s.learned, c)
				s.learnedN++
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.decayActivities()
			if local >= budget || s.conflicts >= limit {
				return Unknown
			}
			continue
		}
		s.reduceLearned()
		if s.decisionLevel() < len(assumptions) {
			// Extend the trail with the next pending assumption before
			// any free decision.
			p := assumptions[s.decisionLevel()]
			switch s.litValue(p) {
			case lTrue:
				// Already satisfied: open a dummy level so decision
				// level k always covers assumptions [0, k).
				s.newDecisionLevel()
			case lFalse:
				s.analyzeFinal(p)
				return Unsat
			default:
				s.newDecisionLevel()
				s.enqueue(p, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			return Sat
		}
		s.newDecisionLevel()
		s.enqueue(MkLit(v, !s.polarity[v]), nil)
	}
}

// analyzeFinal computes the final conflict for the falsified assumption
// p: p itself plus every assumption decision reachable from ~p in the
// implication graph. The base formula stays satisfiable as far as the
// solver knows, so ok is left untouched.
func (s *Solver) analyzeFinal(p Lit) {
	s.finalConf = append(s.finalConf[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	seen := make([]bool, len(s.assign))
	seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !seen[v] {
			continue
		}
		if c := s.reason[v]; c == nil {
			if s.level[v] > 0 {
				s.finalConf = append(s.finalConf, s.trail[i])
			}
		} else {
			for j := 1; j < len(c.lits); j++ {
				if s.level[c.lits[j].Var()] > 0 {
					seen[c.lits[j].Var()] = true
				}
			}
		}
		seen[v] = false
	}
}

// saveModel snapshots the current (total) assignment so Value stays
// meaningful after the search state is unwound and more clauses are
// added.
func (s *Solver) saveModel() {
	if cap(s.model) < len(s.assign) {
		s.model = make([]lbool, len(s.assign))
	}
	s.model = s.model[:len(s.assign)]
	copy(s.model, s.assign)
}

// Value returns the assignment of variable v in the last Sat result.
// Variables allocated after that result read as false.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// Stats is the solver work profile. Conflicts and Propagations are
// cumulative over the instance's lifetime; on a persistent instance,
// difference them around a call to charge that call.
type Stats struct {
	Conflicts    int64
	Propagations int64
	Restarts     int64
	Learned      int64 // learned clauses created
	Deleted      int64 // learned clauses dropped by DB reduction
	Imported     int64 // clauses adopted from portfolio peers
	Exported     int64 // learned clauses reported to the learn hook
}

// LearnedLive returns the learned clauses currently retained.
func (st Stats) LearnedLive() int64 { return st.Learned - st.Deleted }

// Stats returns the solver work counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.conflicts,
		Propagations: s.props,
		Restarts:     s.restarts,
		Learned:      s.learnedN,
		Deleted:      s.deletedN,
		Imported:     s.importedN,
		Exported:     s.exportedN,
	}
}

// varHeap is a max-heap over variable activity.
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(a, b int) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) push(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if len(h.indices) > v && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			break
		}
		c := l
		if r := l + 1; r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			c = r
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = i
		i = c
	}
	h.heap[i] = v
	h.indices[v] = i
}
