package sat

import "math/rand"

// Config diversifies a solver instance for portfolio solving. The zero
// value reproduces the default (deterministic) configuration exactly, so
// existing call sites are unaffected. Configure before adding variables:
// InvertPolarity seeds the saved phase of variables allocated afterwards.
type Config struct {
	// RandSeed seeds the random-branching source. Only consulted when
	// RandomBranchFreq > 0.
	RandSeed int64
	// RandomBranchFreq is the probability (0..1) that a decision picks a
	// uniformly random unassigned variable instead of the VSIDS top.
	RandomBranchFreq float64
	// RestartGeometric switches from Luby restarts to a geometric series
	// (base * 1.5^k), which favours long runs on hard single instances.
	RestartGeometric bool
	// RestartBase scales the first restart budget in conflicts
	// (default 100).
	RestartBase int64
	// InvertPolarity makes fresh variables branch true-first instead of
	// false-first, exploring the search tree mirror-imaged.
	InvertPolarity bool
}

// Configure applies a diversification config. Call it on a fresh solver,
// before NewVar / AddClause.
func (s *Solver) Configure(cfg Config) {
	s.cfg = cfg
	if cfg.RandomBranchFreq > 0 {
		s.rng = rand.New(rand.NewSource(cfg.RandSeed))
	}
}

// SetLearnHook installs a callback invoked for every clause learned by
// conflict analysis, with the clause literals (caller-owned copy) and its
// LBD (literal block distance: the number of distinct decision levels
// among the literals, a standard quality measure — lower is better). The
// hook runs on the solver's goroutine; it must not call back into the
// solver. A nil hook disables export.
func (s *Solver) SetLearnHook(hook func(lits []Lit, lbd int)) {
	s.learnHook = hook
}

// ImportLearned queues clauses learned elsewhere for adoption. The
// clauses must be over this solver's variable numbering and implied by
// its formula (true for clauses exchanged between solvers encoding the
// identical constraint system, since bitblasting is deterministic). The
// queue drains at the next restart boundary, when the trail is at level
// 0 and watching new clauses is sound. Slices are copied; the caller may
// reuse them.
//
// ImportLearned itself is not goroutine-safe: call it from the solver's
// goroutine (e.g. inside the SolveInterruptible probe, which runs at
// level 0).
func (s *Solver) ImportLearned(clauses [][]Lit) {
	for _, lits := range clauses {
		s.importQ = append(s.importQ, append([]Lit(nil), lits...))
	}
}

// drainImports adopts every queued import. Called only at decision
// level 0.
func (s *Solver) drainImports() {
	if len(s.importQ) == 0 {
		return
	}
	q := s.importQ
	s.importQ = nil
	for _, lits := range q {
		if !s.adoptClause(lits) {
			return
		}
	}
}

// adoptClause installs one imported clause at level 0, simplifying
// against the root-level assignment the same way AddClause does. The
// clause joins the learned database (subject to reduction). Returns
// false when the formula became unsatisfiable.
func (s *Solver) adoptClause(lits []Lit) bool {
	if !s.ok {
		return false
	}
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0:0]
	for _, l := range lits {
		if l < 0 || l.Var() >= len(s.assign) {
			return true // foreign variable: drop the clause
		}
		if seen[l.Not()] {
			return true // tautology
		}
		if seen[l] {
			continue
		}
		switch s.litValue(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				return true // already satisfied at root level
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				continue // permanently false literal
			}
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.litValue(out[0]) == lFalse {
			s.ok = false
			return false
		}
		s.importedN++
		if s.litValue(out[0]) == lTrue {
			return true
		}
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out, learned: true, act: s.clauseInc}
	s.learned = append(s.learned, c)
	s.importedN++
	s.watch(c)
	return true
}

// exportLearned reports a freshly learned clause to the learn hook.
// Called during conflict analysis, before backtracking, while literal
// levels are still valid for the LBD computation.
func (s *Solver) exportLearned(lits []Lit) {
	if s.learnHook == nil {
		return
	}
	s.lbdStamp++
	lbd := 0
	for _, l := range lits {
		lv := int(s.level[l.Var()])
		for len(s.lbdSeen) <= lv {
			s.lbdSeen = append(s.lbdSeen, 0)
		}
		if s.lbdSeen[lv] != s.lbdStamp {
			s.lbdSeen[lv] = s.lbdStamp
			lbd++
		}
	}
	s.exportedN++
	s.learnHook(append([]Lit(nil), lits...), lbd)
}

// restartBudget returns the conflict budget for the i-th restart (1-based)
// under the configured restart policy.
func (s *Solver) restartBudget(i int64) int64 {
	base := s.cfg.RestartBase
	if base <= 0 {
		base = 100
	}
	if !s.cfg.RestartGeometric {
		return base * luby(i)
	}
	b := base
	for k := int64(1); k < i && b < 1<<40; k++ {
		b += b / 2 // geometric with ratio 1.5
	}
	return b
}
