package sat

import "testing"

// pigeonhole builds the unsat PHP(n, n-1) instance.
func pigeonhole(n int) *Solver {
	s := New()
	m := n - 1
	p := make([][]int, n)
	for i := range p {
		p[i] = make([]int, m)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		lits := make([]Lit, m)
		for j := 0; j < m; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < m; j++ {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				s.AddClause(MkLit(p[a][j], true), MkLit(p[b][j], true))
			}
		}
	}
	return s
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if st := pigeonhole(7).Solve(0); st != Unsat {
			b.Fatalf("status %v", st)
		}
	}
}

func BenchmarkPropagationChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		const n = 2000
		vars := make([]int, n)
		for j := range vars {
			vars[j] = s.NewVar()
		}
		for j := 0; j+1 < n; j++ {
			s.AddClause(MkLit(vars[j], true), MkLit(vars[j+1], false))
		}
		s.AddClause(MkLit(vars[0], false))
		if st := s.Solve(0); st != Sat {
			b.Fatalf("status %v", st)
		}
	}
}
