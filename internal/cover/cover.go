// Package cover tracks edge and block coverage over lifted program
// counters. It is the feedback signal for the engine's coverage-guided
// search strategy (core.SearchCoverage) and for the hybrid mutation
// fuzzer: every concrete trace — concolic round or fuzz execution — is
// folded into a per-run Set, merged into a cumulative Tracker, and the
// number of edges seen for the first time is the run's novelty.
//
// An edge is an ordered pair of consecutive program counters executed by
// the same thread of the same process; interleaved schedules therefore
// never fabricate edges between unrelated flows. A block is a static
// basic-block leader (the caller supplies the leader set, derived from
// the decoded image); with no leader set every executed PC counts, which
// degrades gracefully for images that fail to decode.
//
// The Tracker is sharded 64 ways like the sym intern arena, so many
// engines (grid cells, service jobs, fuzz executions) can merge and
// query concurrently without a global lock. Merge results are
// order-independent in value — a Set's novelty depends only on which
// edges the tracker already holds, never on map iteration order — which
// is what lets the engine keep its cross-worker-count determinism while
// feeding the tracker from parallel rounds' merges.
package cover

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Edge is one observed control-flow transfer: From executed, then To,
// on the same (process, thread) flow.
type Edge struct {
	From, To uint64
}

// Set is one run's coverage view. It is built single-threaded (one run,
// one builder) and read-only afterwards, so it carries no lock.
type Set struct {
	edges  map[Edge]struct{}
	blocks map[uint64]struct{}
}

// NewSet returns an empty per-run coverage set.
func NewSet() *Set {
	return &Set{
		edges:  make(map[Edge]struct{}),
		blocks: make(map[uint64]struct{}),
	}
}

// AddEdge records one executed edge.
func (s *Set) AddEdge(e Edge) { s.edges[e] = struct{}{} }

// AddBlock records one executed block leader.
func (s *Set) AddBlock(pc uint64) { s.blocks[pc] = struct{}{} }

// Len reports the set's distinct edge and block counts.
func (s *Set) Len() (edges, blocks int) { return len(s.edges), len(s.blocks) }

// HasEdge reports whether the set saw the edge.
func (s *Set) HasEdge(e Edge) bool {
	_, ok := s.edges[e]
	return ok
}

// FromTrace folds one recorded trace into a coverage set. Edges pair
// consecutive PCs per (PID, TID) flow; blocks are the executed PCs that
// appear in leaders (every PC when leaders is nil).
func FromTrace(tr *trace.Trace, leaders map[uint64]bool) *Set {
	s := NewSet()
	if tr == nil {
		return s
	}
	prev := make(map[uint64]uint64) // flow key -> previous PC
	seen := make(map[uint64]bool)   // flow key -> has a previous PC
	for i := range tr.Entries {
		e := &tr.Entries[i]
		flow := uint64(e.PID)<<32 | uint64(uint32(e.TID))
		if seen[flow] {
			s.AddEdge(Edge{From: prev[flow], To: e.PC})
		}
		prev[flow] = e.PC
		seen[flow] = true
		if leaders == nil || leaders[e.PC] {
			s.AddBlock(e.PC)
		}
	}
	return s
}

// shardCount mirrors the sym intern arena's sharding: enough shards
// that concurrent engines rarely collide, few enough that the fixed
// footprint stays trivial.
const shardCount = 64

type shard struct {
	mu     sync.RWMutex
	edges  map[Edge]struct{}
	blocks map[uint64]struct{}
}

// Tracker is a cumulative, concurrency-safe coverage store. The engine
// keeps one per exploration (the deterministic scoring view) and the
// process keeps one global instance (the /metrics view).
type Tracker struct {
	shards [shardCount]shard
	edges  atomic.Int64
	blocks atomic.Int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	t := &Tracker{}
	for i := range t.shards {
		t.shards[i].edges = make(map[Edge]struct{})
		t.shards[i].blocks = make(map[uint64]struct{})
	}
	return t
}

// mix is the splitmix64 finalizer, the same diffusion the intern arena
// uses to spread structurally close keys across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func edgeShard(e Edge) uint64 {
	return mix(e.From*0x9e3779b97f4a7c15^e.To) & (shardCount - 1)
}

func blockShard(pc uint64) uint64 { return mix(pc) & (shardCount - 1) }

// Merge folds a run's set into the tracker and reports how many of its
// edges and blocks were new. The counts depend only on set content and
// prior tracker state, never on iteration order.
func (t *Tracker) Merge(s *Set) (newEdges, newBlocks int) {
	if s == nil {
		return 0, 0
	}
	for e := range s.edges {
		sh := &t.shards[edgeShard(e)]
		sh.mu.Lock()
		if _, ok := sh.edges[e]; !ok {
			sh.edges[e] = struct{}{}
			newEdges++
		}
		sh.mu.Unlock()
	}
	for pc := range s.blocks {
		sh := &t.shards[blockShard(pc)]
		sh.mu.Lock()
		if _, ok := sh.blocks[pc]; !ok {
			sh.blocks[pc] = struct{}{}
			newBlocks++
		}
		sh.mu.Unlock()
	}
	t.edges.Add(int64(newEdges))
	t.blocks.Add(int64(newBlocks))
	return newEdges, newBlocks
}

// HasEdge reports whether the tracker has seen the edge.
func (t *Tracker) HasEdge(e Edge) bool {
	sh := &t.shards[edgeShard(e)]
	sh.mu.RLock()
	_, ok := sh.edges[e]
	sh.mu.RUnlock()
	return ok
}

// HasBlock reports whether the tracker has seen the block.
func (t *Tracker) HasBlock(pc uint64) bool {
	sh := &t.shards[blockShard(pc)]
	sh.mu.RLock()
	_, ok := sh.blocks[pc]
	sh.mu.RUnlock()
	return ok
}

// Edges returns the cumulative distinct edge count.
func (t *Tracker) Edges() int { return int(t.edges.Load()) }

// Blocks returns the cumulative distinct block count.
func (t *Tracker) Blocks() int { return int(t.blocks.Load()) }

var (
	globalOnce sync.Once
	global     *Tracker
)

// Global is the process-wide cumulative tracker. Engines feed it from
// every merged run so the serving layer can expose coverage across all
// jobs; it never influences scheduling (each engine scores against its
// own tracker, keeping explorations independent and deterministic).
func Global() *Tracker {
	globalOnce.Do(func() { global = NewTracker() })
	return global
}
