package cover

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

func entry(pid, tid int, pc uint64) trace.Entry {
	return trace.Entry{PID: pid, TID: tid, PC: pc}
}

func TestFromTraceEdgesPerFlow(t *testing.T) {
	// Two interleaved flows: edges must pair PCs within a flow, never
	// across the interleaving.
	tr := &trace.Trace{Entries: []trace.Entry{
		entry(1, 0, 0x100),
		entry(1, 1, 0x200),
		entry(1, 0, 0x104),
		entry(1, 1, 0x204),
		entry(2, 0, 0x100), // same TID as flow one but another process
		entry(1, 0, 0x108),
		entry(2, 0, 0x104),
	}}
	s := FromTrace(tr, nil)
	want := []Edge{
		{0x100, 0x104}, {0x104, 0x108}, // pid 1 tid 0
		{0x200, 0x204},                 // pid 1 tid 1
		{0x100, 0x104},                 // pid 2 tid 0 (same pair, one set entry)
	}
	for _, e := range want {
		if !s.HasEdge(e) {
			t.Errorf("missing edge %#x->%#x", e.From, e.To)
		}
	}
	if s.HasEdge(Edge{0x104, 0x200}) || s.HasEdge(Edge{0x200, 0x104}) {
		t.Error("cross-flow edge fabricated by interleaving")
	}
	edges, blocks := s.Len()
	if edges != 3 {
		t.Errorf("edges = %d, want 3", edges)
	}
	if blocks != 5 { // distinct PCs with no leader filter
		t.Errorf("blocks = %d, want 5", blocks)
	}
}

func TestFromTraceLeaderFilter(t *testing.T) {
	tr := &trace.Trace{Entries: []trace.Entry{
		entry(1, 0, 0x100), entry(1, 0, 0x104), entry(1, 0, 0x108),
	}}
	s := FromTrace(tr, map[uint64]bool{0x104: true})
	if _, blocks := s.Len(); blocks != 1 {
		t.Errorf("blocks = %d, want 1 (leader filter)", blocks)
	}
}

func TestMergeCountsNewOnly(t *testing.T) {
	tk := NewTracker()
	a := NewSet()
	a.AddEdge(Edge{1, 2})
	a.AddEdge(Edge{2, 3})
	a.AddBlock(1)
	if e, b := tk.Merge(a); e != 2 || b != 1 {
		t.Fatalf("first merge = (%d, %d), want (2, 1)", e, b)
	}
	// Re-merging the same set must be a no-op.
	if e, b := tk.Merge(a); e != 0 || b != 0 {
		t.Fatalf("idempotent merge = (%d, %d), want (0, 0)", e, b)
	}
	b := NewSet()
	b.AddEdge(Edge{2, 3}) // old
	b.AddEdge(Edge{3, 4}) // new
	b.AddBlock(1)         // old
	b.AddBlock(4)         // new
	if e, nb := tk.Merge(b); e != 1 || nb != 1 {
		t.Fatalf("overlap merge = (%d, %d), want (1, 1)", e, nb)
	}
	if tk.Edges() != 3 || tk.Blocks() != 2 {
		t.Fatalf("totals = (%d, %d), want (3, 2)", tk.Edges(), tk.Blocks())
	}
	if !tk.HasEdge(Edge{3, 4}) || tk.HasEdge(Edge{4, 5}) {
		t.Error("HasEdge disagrees with merged content")
	}
	if !tk.HasBlock(4) || tk.HasBlock(9) {
		t.Error("HasBlock disagrees with merged content")
	}
}

// TestTrackerConcurrent hammers one tracker from many goroutines (race
// gate target): total new-edge counts across all merges must equal the
// distinct edge population no matter how merges interleave.
func TestTrackerConcurrent(t *testing.T) {
	tk := NewTracker()
	const workers = 8
	var wg sync.WaitGroup
	newTotal := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := NewSet()
				// Overlapping ranges: every worker re-offers most edges.
				for j := 0; j < 16; j++ {
					pc := uint64((i%50)*16 + j)
					s.AddEdge(Edge{pc, pc + 1})
					s.AddBlock(pc)
				}
				e, _ := tk.Merge(s)
				newTotal[w] += e
				tk.HasEdge(Edge{uint64(i), uint64(i + 1)})
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	for _, n := range newTotal {
		sum += n
	}
	if sum != tk.Edges() {
		t.Fatalf("sum of per-merge novelty %d != distinct edges %d", sum, tk.Edges())
	}
}

func TestGlobalSingleton(t *testing.T) {
	if Global() != Global() {
		t.Fatal("Global must return one process-wide tracker")
	}
}
