// Package sharedcache is the cross-replica solver-query cache tier: a
// directory shared by every concolicd replica (and CLI run) of a fleet,
// holding solved query verdicts keyed by cross-process-stable digests.
// One replica solves a query; every other replica answers it from disk.
//
// Layout: a single append-only JSONL log (`queries.jsonl`). Writers
// append whole lines with O_APPEND — on a local filesystem each append
// lands atomically at the tail, so concurrent replicas interleave lines
// but never interleave bytes within a line. Readers tail the log
// incrementally: each Lookup miss re-scans only the bytes appended since
// the last scan, so another replica's entries become visible without any
// coordination, watcher, or server. A torn tail (a crash mid-append, or
// a reader racing a writer mid-line) parks the read offset at the start
// of the incomplete line and retries on the next refresh.
//
// Keys are opaque strings chosen by the caller; they must be stable
// across processes and JSON-safe. The solver layer keys entries with
// hex-encoded sym.DigestKey digests plus the conflict budget, so an
// entry is a pure function of the query — which is what keeps verdicts
// byte-identical whether they were solved locally or served from the
// tier. Statuses are stored as plain ints to keep this package below the
// solver in the dependency order; the solver layer owns the mapping.
package sharedcache

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Entry is one persisted query verdict.
type Entry struct {
	Key       string            `json:"k"`
	Status    int               `json:"s"`
	Conflicts int64             `json:"n,omitempty"`
	Model     map[string]uint64 `json:"m,omitempty"`
}

// Stats counts tier traffic since Open.
type Stats struct {
	Entries   int   // entries visible in memory
	Hits      int64 // lookups answered
	Misses    int64 // lookups that stayed unanswered after a refresh
	Stores    int64 // entries this process appended
	Refreshes int64 // incremental log re-scans
}

const logName = "queries.jsonl"

// Tier is one process's handle on a shared cache directory. Safe for
// concurrent use; multiple processes may hold handles on one directory.
type Tier struct {
	mu      sync.Mutex
	dir     string
	log     *os.File // O_APPEND writer
	entries map[string]Entry
	offset  int64 // bytes of the log already scanned
	stats   Stats
}

// Open opens (creating if needed) the tier rooted at dir and loads the
// entries already on disk.
func Open(dir string) (*Tier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sharedcache: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sharedcache: %w", err)
	}
	if err := terminateTail(dir, f); err != nil {
		f.Close()
		return nil, err
	}
	t := &Tier{dir: dir, log: f, entries: make(map[string]Entry)}
	t.mu.Lock()
	err = t.refreshLocked()
	t.mu.Unlock()
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// terminateTail closes off a torn final line left by a crashed writer:
// without this, the first append of the new session would fuse onto the
// partial line and be lost as garbage on the next replay. Appends are
// single atomic writes, so a missing trailing newline can only be crash
// damage; should another replica sneak an append in between the check
// and the repair, the extra newline merely makes one empty line, which
// replay skips.
func terminateTail(dir string, log *os.File) error {
	f, err := os.Open(filepath.Join(dir, logName))
	if err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := log.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	return nil
}

// refreshLocked scans log bytes appended since the last scan into the
// in-memory map. A line that does not parse — torn tail, or a writer
// caught mid-append — stops the scan with the offset parked at its
// start, so the next refresh retries it.
func (t *Tier) refreshLocked() error {
	f, err := os.Open(filepath.Join(t.dir, logName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	t.stats.Refreshes++
	r := bufio.NewReaderSize(f, 64*1024)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// No trailing newline yet: an append in flight (or a torn
			// tail). Leave the offset at the line start and retry later.
			return nil
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil || e.Key == "" {
			// A complete but undecodable line is a torn tail from a crash:
			// skip it for good, or the log would jam here forever.
			t.offset += int64(len(line))
			continue
		}
		t.offset += int64(len(line))
		if _, ok := t.entries[e.Key]; !ok {
			t.entries[e.Key] = e
		}
	}
}

// Lookup returns the persisted verdict for key, refreshing from disk on
// a memory miss so other replicas' appends are observed. The model map
// is a copy.
func (t *Tier) Lookup(key string) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		if err := t.refreshLocked(); err == nil {
			e, ok = t.entries[key]
		}
	}
	if !ok {
		t.stats.Misses++
		return Entry{}, false
	}
	t.stats.Hits++
	if e.Model != nil {
		m := make(map[string]uint64, len(e.Model))
		for k, v := range e.Model {
			m[k] = v
		}
		e.Model = m
	}
	return e, true
}

// Store persists a query verdict. An entry already visible under the
// same key is kept (verdicts are pure functions of the key, so any copy
// serves); the append is a single write so concurrent replicas never
// interleave partial lines.
func (t *Tier) Store(e Entry) {
	if e.Key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[e.Key]; ok {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	if _, err := t.log.Write(append(b, '\n')); err != nil {
		return
	}
	t.entries[e.Key] = e
	t.stats.Stores++
}

// Stats returns the tier's traffic counters.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Entries = len(t.entries)
	return s
}

// Close releases the log handle. Entries are already durable — every
// Store was a direct append.
func (t *Tier) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log == nil {
		return nil
	}
	err := t.log.Close()
	t.log = nil
	if err != nil {
		return fmt.Errorf("sharedcache: %w", err)
	}
	return nil
}
