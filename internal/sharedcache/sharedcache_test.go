package sharedcache

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	if _, ok := tier.Lookup("missing"); ok {
		t.Fatal("lookup of missing key succeeded")
	}
	tier.Store(Entry{Key: "q1", Status: 2, Conflicts: 7, Model: map[string]uint64{"x": 41}})
	e, ok := tier.Lookup("q1")
	if !ok {
		t.Fatal("stored entry not found")
	}
	if e.Status != 2 || e.Conflicts != 7 || e.Model["x"] != 41 {
		t.Fatalf("entry mangled: %+v", e)
	}
	// The returned model must be a copy, not the cached map.
	e.Model["x"] = 99
	again, _ := tier.Lookup("q1")
	if again.Model["x"] != 41 {
		t.Fatal("lookup returned the cached map, not a copy")
	}

	s := tier.Stats()
	if s.Stores != 1 || s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestCrossHandleVisibility is the fleet scenario: two handles on one
// directory (two replicas), one stores, the other observes the entry via
// its refresh-on-miss without reopening.
func TestCrossHandleVisibility(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.Store(Entry{Key: "k", Status: 1})
	e, ok := b.Lookup("k")
	if !ok || e.Status != 1 {
		t.Fatalf("replica b did not observe replica a's store: ok=%v e=%+v", ok, e)
	}

	// And the other direction, after b already refreshed once.
	b.Store(Entry{Key: "k2", Status: 2})
	if _, ok := a.Lookup("k2"); !ok {
		t.Fatal("replica a did not observe replica b's store")
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	tier, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tier.Store(Entry{Key: "k", Status: 1, Model: map[string]uint64{"v": 3}})
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	e, ok := re.Lookup("k")
	if !ok || e.Model["v"] != 3 {
		t.Fatalf("entry lost across reopen: ok=%v e=%+v", ok, e)
	}
}

// TestTornTail crashes mid-append in both flavours: an unterminated
// final line (still being written — must not block later entries once
// completed) and a terminated-but-garbage line (skipped for good).
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	tier, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tier.Store(Entry{Key: "good", Status: 1})
	tier.Close()

	log := filepath.Join(dir, logName)
	f, err := os.OpenFile(log, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete garbage line, then an unterminated partial line.
	if _, err := f.Write([]byte("{torn\n{\"k\":\"half")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail failed: %v", err)
	}
	defer re.Close()
	if _, ok := re.Lookup("good"); !ok {
		t.Fatal("entry before the torn tail lost")
	}
	if _, ok := re.Lookup("half"); ok {
		t.Fatal("partial line surfaced as an entry")
	}
	// New stores after a torn tail must still round-trip (the writer
	// appends after the partial line; the reader's offset is parked at
	// it, and the completed line is garbage-skipped on refresh once the
	// next newline arrives).
	re.Store(Entry{Key: "after", Status: 2})
	if _, ok := re.Lookup("after"); !ok {
		t.Fatal("store after torn tail not visible")
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if _, ok := re2.Lookup("after"); !ok {
		t.Fatal("store after torn tail lost on reopen")
	}
}

func TestConcurrentStores(t *testing.T) {
	tier, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := string(rune('a'+g)) + "-" + string(rune('0'+i%10))
				tier.Store(Entry{Key: key, Status: 1})
				tier.Lookup(key)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s := tier.Stats(); s.Entries != 40 {
		t.Fatalf("expected 40 distinct entries, got %d", s.Entries)
	}
}
