// Package cliopts centralizes the engine-tuning option cluster that
// every frontend exposes — cmd/concolic, cmd/evaltable, cmd/congolic,
// and concolicd's job API. One Register call defines the flags with one
// set of help texts, one Check enforces the cross-field rules (warmstart
// needs portfolio, fuzz needs the coverage strategy, cover-goal range),
// and one Resolve turns the raw values into engine-ready capabilities.
// Before this package each frontend re-implemented the cluster by hand
// and the error dialects had started to drift.
package cliopts

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/suggest"
	"repro/internal/warmstore"
)

// Options is the raw option cluster as read from flags or a job request.
// String fields keep their wire form; Resolve validates and converts.
type Options struct {
	Workers    int
	Checkpoint string // "auto" | "off" ("" = auto)
	Solver     string // core.SolverModeNames ("" = fresh)
	WarmDir    string // warm-start store directory ("" = off); CLI form
	Warmstart  bool   // use an already-open store; job-API form
	Strategy   string // core.SearchStrategyNames ("" = profile default)
	Fuzz       bool
	CoverGoal  float64
}

// Register defines the shared flag cluster on fs and returns the
// Options the flags write into. Callers add their command-specific
// flags (e.g. -tool, -timeout, -json) beside it.
func Register(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.IntVar(&o.Workers, "workers", 0,
		"concurrent exploration rounds (0 = all CPUs, 1 = sequential)")
	fs.StringVar(&o.Checkpoint, "checkpoint", "auto",
		"snapshot-replay policy: auto (resume rounds from checkpoints) or off "+
			"(re-execute every round from _start; identical outcomes)")
	fs.StringVar(&o.Solver, "solver", "fresh",
		"negation-query solving: "+strings.Join(core.SolverModeNames(), ", ")+
			" (portfolio races diversified workers sharing learned clauses; "+
			"equivalent verdicts, possibly different inputs)")
	fs.StringVar(&o.WarmDir, "warmstart", "",
		"warm-start store directory (portfolio only): answered queries and "+
			"exchanged clauses persist across runs")
	fs.StringVar(&o.Strategy, "strategy", "",
		"frontier search order: "+strings.Join(core.SearchStrategyNames(), ", ")+
			" (coverage scores candidates by uncovered flip targets; "+
			"empty keeps the profile default)")
	fs.BoolVar(&o.Fuzz, "fuzz", false,
		"run mutation-fuzzing breed rounds between concolic generations "+
			"(requires -strategy coverage; promotes new-coverage mutants as seeds)")
	fs.Float64Var(&o.CoverGoal, "cover-goal", 0,
		"stop early once this fraction (0,1] of static basic blocks is covered "+
			"(0 = explore to the profile budget)")
	return o
}

// Dialect renders a canonical option name ("warmstart", "cover-goal",
// "solver=portfolio") into a consumer's spelling. Errors built through a
// dialect read naturally both on a terminal and in an HTTP 400 body.
type Dialect func(canonical string) string

// FlagDialect prefixes "-" — the CLI spelling.
func FlagDialect(n string) string { return "-" + n }

// WireDialect uses the job API's JSON field names.
func WireDialect(n string) string { return strings.ReplaceAll(n, "-", "_") }

// Check enforces the cross-field rules shared by every frontend. Name
// parses are checked first so an unknown solver mode surfaces as the
// uniform suggestion error rather than a confusing combination error.
func Check(o Options, d Dialect) error {
	if o.Workers < 0 {
		return fmt.Errorf("%s must be non-negative", d("workers"))
	}
	switch o.Checkpoint {
	case "", "auto", "off":
	default:
		return suggest.Unknown("checkpoint policy", o.Checkpoint, []string{"auto", "off"})
	}
	mode, err := core.ParseSolverMode(o.Solver)
	if err != nil {
		return err
	}
	if (o.WarmDir != "" || o.Warmstart) && mode != core.SolverPortfolio {
		return fmt.Errorf("%s requires %s", d("warmstart"), d("solver=portfolio"))
	}
	strat, err := core.ParseSearchStrategy(o.Strategy)
	if err != nil {
		return err
	}
	if o.Fuzz && (o.Strategy == "" || strat != core.SearchCoverage) {
		return fmt.Errorf("%s requires %s", d("fuzz"), d("strategy=coverage"))
	}
	if o.CoverGoal < 0 || o.CoverGoal > 1 {
		return fmt.Errorf("%s must be in (0, 1] (0 disables the goal)", d("cover-goal"))
	}
	return nil
}

// Resolved is the validated, engine-ready form of the cluster.
type Resolved struct {
	Workers     int
	Checkpoint  core.CheckpointPolicy
	SolverMode  core.SolverMode
	Strategy    core.SearchStrategy
	StrategySet bool // explicit -strategy; false keeps the profile default
	Fuzz        bool
	CoverGoal   float64
	Warm        *warmstore.Store // open when WarmDir was set; Close it
}

// StoreError wraps a warm-start store open failure so CLIs can map it to
// an I/O exit status instead of a usage one.
type StoreError struct{ Err error }

func (e *StoreError) Error() string { return "open warm-start store: " + e.Err.Error() }
func (e *StoreError) Unwrap() error { return e.Err }

// Resolve checks the cluster and converts it, opening the warm-start
// store when a directory was given. The caller owns Close on success.
func (o Options) Resolve(d Dialect) (*Resolved, error) {
	if err := Check(o, d); err != nil {
		return nil, err
	}
	r := &Resolved{Workers: o.Workers, Fuzz: o.Fuzz, CoverGoal: o.CoverGoal}
	if o.Checkpoint == "off" {
		r.Checkpoint = core.CheckpointOff
	} else {
		r.Checkpoint = core.CheckpointAuto
	}
	r.SolverMode, _ = core.ParseSolverMode(o.Solver) // Check vetted it
	if o.Strategy != "" {
		r.Strategy, _ = core.ParseSearchStrategy(o.Strategy)
		r.StrategySet = true
	}
	if o.WarmDir != "" {
		w, err := warmstore.Open(o.WarmDir)
		if err != nil {
			return nil, &StoreError{Err: err}
		}
		r.Warm = w
	}
	return r, nil
}

// Apply overlays the resolved cluster onto a tool profile's
// capabilities. Unset fields (no explicit strategy, zero cover goal, no
// store) leave the profile's defaults intact.
func (r *Resolved) Apply(caps *core.Capabilities) {
	caps.Workers = r.Workers
	caps.Checkpoint = r.Checkpoint
	caps.SolverMode = r.SolverMode
	if r.StrategySet {
		caps.Search = r.Strategy
	}
	if r.Fuzz {
		caps.Fuzz = true
	}
	if r.CoverGoal != 0 {
		caps.CoverGoal = r.CoverGoal
	}
	if r.Warm != nil {
		caps.Warm = r.Warm
	}
}

// Close releases the warm-start store, if one was opened. Safe on nil.
func (r *Resolved) Close() {
	if r != nil && r.Warm != nil {
		r.Warm.Close()
	}
}
