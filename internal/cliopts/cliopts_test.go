package cliopts

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tools"
)

func parse(t *testing.T, argv ...string) *Options {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse(argv); err != nil {
		t.Fatalf("parse %v: %v", argv, err)
	}
	return o
}

func TestResolveDefaults(t *testing.T) {
	res, err := parse(t).Resolve(FlagDialect)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	defer res.Close()
	if res.Checkpoint != core.CheckpointAuto || res.SolverMode != core.SolverFresh ||
		res.StrategySet || res.Fuzz || res.CoverGoal != 0 || res.Warm != nil {
		t.Errorf("unexpected defaults: %+v", res)
	}
}

// TestApplyKeepsProfileDefaults pins the overlay contract: unset cluster
// fields must not clobber what a tool profile chose.
func TestApplyKeepsProfileDefaults(t *testing.T) {
	p, ok := tools.ByName("reference")
	if !ok {
		t.Fatal("no reference profile")
	}
	wantSearch := p.Caps.Search
	res, err := parse(t, "-workers", "2", "-solver", "incremental").Resolve(FlagDialect)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	defer res.Close()
	res.Apply(&p.Caps)
	if p.Caps.Workers != 2 || p.Caps.SolverMode != core.SolverIncremental {
		t.Errorf("explicit fields not applied: %+v", p.Caps)
	}
	if p.Caps.Search != wantSearch {
		t.Errorf("profile search default clobbered: %v -> %v", wantSearch, p.Caps.Search)
	}

	res2, err := parse(t, "-strategy", "dfs").Resolve(FlagDialect)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	defer res2.Close()
	res2.Apply(&p.Caps)
	if p.Caps.Search != core.SearchDFS {
		t.Errorf("explicit strategy not applied: %v", p.Caps.Search)
	}
}

func TestCheckCrossFieldRules(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring of the error under FlagDialect; "" = valid
	}{
		{"defaults", Options{}, ""},
		{"negative workers", Options{Workers: -1}, "-workers must be non-negative"},
		{"bad checkpoint", Options{Checkpoint: "of"}, `unknown checkpoint policy "of"`},
		{"bad solver", Options{Solver: "fersh"}, `unknown solver mode "fersh"`},
		{"warm without portfolio", Options{WarmDir: "/tmp/w"}, "-warmstart requires -solver=portfolio"},
		{"warm flag form", Options{Warmstart: true}, "-warmstart requires -solver=portfolio"},
		{"warm ok", Options{WarmDir: "/tmp/w", Solver: "portfolio"}, ""},
		{"bad strategy", Options{Strategy: "coverge"}, `unknown search strategy "coverge"`},
		{"fuzz without coverage", Options{Fuzz: true}, "-fuzz requires -strategy=coverage"},
		{"fuzz ok", Options{Fuzz: true, Strategy: "coverage"}, ""},
		{"goal too big", Options{CoverGoal: 1.5}, "-cover-goal must be in (0, 1]"},
		{"goal negative", Options{CoverGoal: -0.1}, "-cover-goal must be in (0, 1]"},
		{"goal ok", Options{CoverGoal: 0.5}, ""},
	}
	for _, c := range cases {
		err := Check(c.o, FlagDialect)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestWireDialect pins the job-API rendering of the same rules.
func TestWireDialect(t *testing.T) {
	err := Check(Options{Warmstart: true}, WireDialect)
	if err == nil || err.Error() != "warmstart requires solver=portfolio" {
		t.Errorf("warmstart error = %v", err)
	}
	err = Check(Options{Fuzz: true}, WireDialect)
	if err == nil || err.Error() != "fuzz requires strategy=coverage" {
		t.Errorf("fuzz error = %v", err)
	}
	err = Check(Options{CoverGoal: 2}, WireDialect)
	if err == nil || !strings.HasPrefix(err.Error(), "cover_goal must be in (0, 1]") {
		t.Errorf("cover_goal error = %v", err)
	}
}

func TestResolveOpensWarmStore(t *testing.T) {
	dir := t.TempDir()
	res, err := parse(t, "-solver", "portfolio", "-warmstart", dir).Resolve(FlagDialect)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.Warm == nil {
		t.Fatal("warm store not opened")
	}
	res.Close()
}
