// Package target defines the target-neutral input representation shared
// by every exploration frontend. The engine explores over Input values
// without knowing what they mean to the guest: the bomb corpus lowers
// its argv string and environment facets into one, and the Go frontend
// lowers encoded function arguments into the same Argv1 seam. Keeping
// the type here (rather than in the bombs package) lets core stay
// frontend-agnostic while bombs re-exports it as an alias, so existing
// callers are unchanged.
package target

import "repro/internal/gos"

// Input fully specifies one concrete run: the argument string plus every
// environment facet a target can depend on. The benign input is the seed
// a tool starts from; for bombs the trigger input is the ground truth
// that detonates the bomb.
type Input struct {
	Argv1   string
	TimeNow uint64
	Pid     uint64
	Web     map[string]string
	Files   map[string][]byte
	Env     map[string]string
}

// Default environment values for benign runs.
const (
	DefaultTime = 1111111111
	DefaultPid  = 4242
)

// Config converts the input into a machine configuration.
func (in Input) Config() gos.Config {
	cfg := gos.Config{
		Argv:       []string{"bomb", in.Argv1},
		TimeNow:    in.TimeNow,
		Pid:        in.Pid,
		WebContent: in.Web,
		Files:      in.Files,
		Env:        in.Env,
	}
	if cfg.TimeNow == 0 {
		cfg.TimeNow = DefaultTime
	}
	if cfg.Pid == 0 {
		cfg.Pid = DefaultPid
	}
	return cfg
}
