package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if got := m.LoadByte(0xdeadbeef); got != 0 {
		t.Errorf("unallocated byte = %d, want 0", got)
	}
	v, err := m.ReadUint(0x1000, 8)
	if err != nil || v != 0 {
		t.Errorf("unallocated word = %d, %v", v, err)
	}
}

func TestReadStoreByte(t *testing.T) {
	m := New()
	m.StoreByte(42, 0xab)
	if got := m.LoadByte(42); got != 0xab {
		t.Errorf("LoadByte = %#x, want 0xab", got)
	}
}

func TestCrossPageWrite(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	data := []byte{1, 2, 3, 4, 5, 6}
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("cross-page read = %v, want %v", got, data)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestUintSizes(t *testing.T) {
	m := New()
	const v = 0x1122334455667788
	for _, size := range []uint8{1, 2, 4, 8} {
		if err := m.WriteUint(0x100, size, v); err != nil {
			t.Fatalf("WriteUint size %d: %v", size, err)
		}
		got, err := m.ReadUint(0x100, size)
		if err != nil {
			t.Fatalf("ReadUint size %d: %v", size, err)
		}
		want := uint64(v) & (^uint64(0) >> (64 - 8*uint(size)))
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestUintBadSize(t *testing.T) {
	m := New()
	if _, err := m.ReadUint(0, 3); err == nil {
		t.Error("ReadUint size 3 should fail")
	}
	if err := m.WriteUint(0, 5, 1); err == nil {
		t.Error("WriteUint size 5 should fail")
	}
}

func TestCString(t *testing.T) {
	m := New()
	m.WriteCString(0x2000, "hello")
	if got := m.ReadCString(0x2000, 64); got != "hello" {
		t.Errorf("ReadCString = %q", got)
	}
	// Truncation without a terminator.
	m.Write(0x3000, []byte{'a', 'b', 'c'})
	m.StoreByte(0x3003, 'd') // no NUL in range
	if got := m.ReadCString(0x3000, 3); got != "abc" {
		t.Errorf("truncated ReadCString = %q, want abc", got)
	}
	// Empty string.
	m.WriteCString(0x4000, "")
	if got := m.ReadCString(0x4000, 8); got != "" {
		t.Errorf("empty ReadCString = %q", got)
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.WriteCString(0x100, "parent")
	c := m.Clone()
	c.WriteCString(0x100, "childx")
	if got := m.ReadCString(0x100, 16); got != "parent" {
		t.Errorf("parent memory changed by clone write: %q", got)
	}
	if got := c.ReadCString(0x100, 16); got != "childx" {
		t.Errorf("clone memory = %q", got)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.StoreByte(1, 1)
	m.Reset()
	if m.PageCount() != 0 || m.LoadByte(1) != 0 {
		t.Error("Reset did not clear memory")
	}
	// A reset memory must be fully usable again, like the zero value.
	m.StoreByte(2, 2)
	if m.LoadByte(2) != 2 {
		t.Error("Reset memory not writable")
	}
}

func TestZeroValueUsable(t *testing.T) {
	// The documented invariant: the zero value is an empty memory ready
	// for use, exactly what Reset re-arms a used memory back to.
	var m Memory
	if m.LoadByte(123) != 0 || m.PageCount() != 0 {
		t.Error("zero value not an empty memory")
	}
	m.StoreByte(123, 7)
	if m.LoadByte(123) != 7 {
		t.Error("zero value not writable")
	}
	c := m.Clone()
	if c.LoadByte(123) != 7 {
		t.Error("clone of zero-value-backed memory lost data")
	}

	var z Memory
	z.Reset() // must not panic, must stay usable
	z.StoreByte(9, 9)
	if z.LoadByte(9) != 9 {
		t.Error("Reset zero value not writable")
	}

	var c2 Memory
	if c3 := c2.Clone(); c3.PageCount() != 0 {
		t.Error("clone of empty zero value not empty")
	}
}

func TestCloneSharesPages(t *testing.T) {
	m := New()
	for i := 0; i < 8; i++ {
		m.StoreByte(uint64(i)*PageSize, byte(i+1))
	}
	c := m.Clone()
	if c.PageCount() != 8 {
		t.Fatalf("clone PageCount = %d, want 8", c.PageCount())
	}
	if got := c.SharedPages(); got != 8 {
		t.Errorf("clone SharedPages = %d, want 8 (all shared before any write)", got)
	}
	if c.COWFaults() != 0 {
		t.Errorf("COWFaults = %d before any write, want 0", c.COWFaults())
	}

	// Writing one byte must fault exactly one page and leave the rest shared.
	c.StoreByte(3*PageSize+5, 0xff)
	if got := c.COWFaults(); got != 1 {
		t.Errorf("COWFaults after one write = %d, want 1", got)
	}
	if got := c.SharedPages(); got != 7 {
		t.Errorf("SharedPages after one write = %d, want 7", got)
	}
	// A second write to the now-private page must not fault again.
	c.StoreByte(3*PageSize+6, 0xfe)
	if got := c.COWFaults(); got != 1 {
		t.Errorf("COWFaults after second write to same page = %d, want 1", got)
	}
	// Parent sees none of it.
	if m.LoadByte(3*PageSize+5) != 0 || m.LoadByte(3*PageSize) != 4 {
		t.Error("parent page changed by clone write")
	}
}

func TestCloneChainIsolation(t *testing.T) {
	a := New()
	a.WriteCString(0x100, "aaaa")
	b := a.Clone()
	c := b.Clone()
	b.WriteCString(0x100, "bbbb")
	c.WriteCString(0x100, "cccc")
	a.WriteCString(0x100, "AAAA")
	for _, tc := range []struct {
		m    *Memory
		want string
	}{{a, "AAAA"}, {b, "bbbb"}, {c, "cccc"}} {
		if got := tc.m.ReadCString(0x100, 16); got != tc.want {
			t.Errorf("chain member = %q, want %q", got, tc.want)
		}
	}
}

func TestResetReleasesSharing(t *testing.T) {
	m := New()
	m.StoreByte(0, 1)
	c := m.Clone()
	if m.SharedPages() != 1 {
		t.Fatal("page not shared after clone")
	}
	c.Reset()
	if got := m.SharedPages(); got != 0 {
		t.Errorf("SharedPages after clone Reset = %d, want 0", got)
	}
	// With sharing released, a parent write must not count as a fault.
	m.StoreByte(0, 2)
	if m.COWFaults() != 0 {
		t.Errorf("COWFaults = %d after writing unshared page, want 0", m.COWFaults())
	}
}

func TestPagesSorted(t *testing.T) {
	m := New()
	m.StoreByte(5*PageSize, 1)
	m.StoreByte(1*PageSize, 1)
	m.StoreByte(3*PageSize, 1)
	pages := m.Pages()
	want := []uint64{1 * PageSize, 3 * PageSize, 5 * PageSize}
	if len(pages) != len(want) {
		t.Fatalf("Pages len = %d, want %d", len(pages), len(want))
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Errorf("Pages[%d] = %#x, want %#x", i, pages[i], want[i])
		}
	}
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, data []byte) bool {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		// Avoid wrapping the address space during the check.
		addr %= 1 << 40
		m.Write(addr, data)
		got := make([]byte, len(data))
		m.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUintRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, sizeSel uint8) bool {
		size := []uint8{1, 2, 4, 8}[sizeSel%4]
		addr %= 1 << 40
		if err := m.WriteUint(addr, size, v); err != nil {
			return false
		}
		got, err := m.ReadUint(addr, size)
		if err != nil {
			return false
		}
		want := v & (^uint64(0) >> (64 - 8*uint(size)))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
