// Package mem implements the sparse paged guest memory used by the LB64
// virtual machine. Addresses are 64-bit; storage is allocated lazily in
// fixed-size pages so that the sparse layout of a loaded binary (text low,
// data in the middle, stack high) costs almost nothing.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the granularity of lazy allocation.
const PageSize = 4096

type page struct {
	data [PageSize]byte
}

// Memory is a sparse 64-bit byte-addressable memory. The zero value is not
// ready for use; call New.
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Clone returns a deep copy of the memory. Used to implement fork() and
// engine checkpoints.
func (m *Memory) Clone() *Memory {
	c := New()
	for base, p := range m.pages {
		np := &page{}
		np.data = p.data
		c.pages[base] = np
	}
	return c
}

// Reset drops all pages.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
}

// PageCount returns the number of allocated pages.
func (m *Memory) PageCount() int { return len(m.pages) }

func (m *Memory) pageFor(addr uint64, create bool) *page {
	base := addr &^ uint64(PageSize-1)
	p := m.pages[base]
	if p == nil && create {
		p = &page{}
		m.pages[base] = p
	}
	return p
}

// LoadByte returns the byte at addr; unallocated memory reads as zero.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.data[addr%PageSize]
}

// StoreByte stores one byte at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	p := m.pageFor(addr, true)
	p.data[addr%PageSize] = b
}

// Read fills buf with len(buf) bytes starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for i := range buf {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
}

// Write stores buf at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for i, b := range buf {
		m.StoreByte(addr+uint64(i), b)
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1, 2, 4 or 8) and zero-extends it to 64 bits.
func (m *Memory) ReadUint(addr uint64, size uint8) (uint64, error) {
	var buf [8]byte
	switch size {
	case 1, 2, 4, 8:
	default:
		return 0, fmt.Errorf("mem: read size %d", size)
	}
	m.Read(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteUint writes the low size bytes of v at addr, little-endian.
func (m *Memory) WriteUint(addr uint64, size uint8, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	switch size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("mem: write size %d", size)
	}
	m.Write(addr, buf[:size])
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes starting
// at addr. The terminator is not included. If no terminator appears within
// max bytes the truncated content is returned.
func (m *Memory) ReadCString(addr uint64, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.LoadByte(addr + uint64(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// WriteCString writes s followed by a NUL terminator at addr.
func (m *Memory) WriteCString(addr uint64, s string) {
	m.Write(addr, []byte(s))
	m.StoreByte(addr+uint64(len(s)), 0)
}

// Pages returns the sorted base addresses of allocated pages; useful for
// tests and debug dumps.
func (m *Memory) Pages() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for base := range m.pages {
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
