// Package mem implements the sparse paged guest memory used by the LB64
// virtual machine. Addresses are 64-bit; storage is allocated lazily in
// fixed-size pages so that the sparse layout of a loaded binary (text low,
// data in the middle, stack high) costs almost nothing.
//
// Memory is copy-on-write: Clone shares the underlying pages with the
// parent (bumping a per-page refcount) and the first write to a shared
// page copies just that page. Cloning is therefore O(allocated pages) in
// pointer bookkeeping and O(1) in page data for untouched pages, which is
// what makes engine checkpoints and fork() cheap.
//
// Concurrency contract: a quiescent Memory (no writer running) may be
// cloned by any number of goroutines concurrently, and sibling clones may
// then be written from different goroutines; the copy-on-write fault path
// synchronises on the page refcount. A single Memory value must not be
// written from two goroutines at once.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// PageSize is the granularity of lazy allocation.
const PageSize = 4096

type page struct {
	// refs counts how many Memory values currently reference this page.
	// Pages with refs > 1 are immutable; a write copies the page first.
	refs int32
	data [PageSize]byte
}

// Memory is a sparse 64-bit byte-addressable memory. The zero value is an
// empty memory ready for use, equivalent to New() (Reset also re-arms a
// used memory back to that state).
type Memory struct {
	pages map[uint64]*page
	// cowFaults counts pages that were copied because a write hit a page
	// shared with another Memory.
	cowFaults uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// Clone returns a copy-on-write snapshot of the memory. The clone shares
// every page with the receiver until one side writes to it; only then is
// that single page copied. Used to implement fork() and engine
// checkpoints. A quiescent memory may be cloned concurrently.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64]*page, len(m.pages))}
	for base, p := range m.pages {
		atomic.AddInt32(&p.refs, 1)
		c.pages[base] = p
	}
	return c
}

// Reset drops all pages, returning the memory to the empty ready state
// (the same state as the zero value or a fresh New()).
func (m *Memory) Reset() {
	for _, p := range m.pages {
		atomic.AddInt32(&p.refs, -1)
	}
	m.pages = nil
	m.cowFaults = 0
}

// PageCount returns the number of allocated pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// COWFaults returns how many pages this memory copied because a write hit
// a page shared with a clone.
func (m *Memory) COWFaults() uint64 { return m.cowFaults }

// SharedPages returns how many of this memory's pages are currently
// shared with at least one other Memory. Intended for tests and stats.
func (m *Memory) SharedPages() int {
	n := 0
	for _, p := range m.pages {
		if atomic.LoadInt32(&p.refs) > 1 {
			n++
		}
	}
	return n
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	base := addr &^ uint64(PageSize-1)
	p := m.pages[base]
	if p == nil && create {
		if m.pages == nil {
			m.pages = make(map[uint64]*page)
		}
		p = &page{refs: 1}
		m.pages[base] = p
	}
	return p
}

// writablePage returns the page containing addr, guaranteed exclusive to
// this memory, copying it first if it is shared (a COW fault).
//
// The fault path copies the data before releasing the reference: a
// sibling that subsequently observes refs == 1 is the sole owner and may
// write in place, and the atomic decrement orders our copy before its
// writes.
func (m *Memory) writablePage(addr uint64) *page {
	base := addr &^ uint64(PageSize-1)
	p := m.pages[base]
	if p == nil {
		if m.pages == nil {
			m.pages = make(map[uint64]*page)
		}
		p = &page{refs: 1}
		m.pages[base] = p
		return p
	}
	if atomic.LoadInt32(&p.refs) > 1 {
		np := &page{refs: 1, data: p.data}
		atomic.AddInt32(&p.refs, -1)
		m.pages[base] = np
		m.cowFaults++
		return np
	}
	return p
}

// LoadByte returns the byte at addr; unallocated memory reads as zero.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.data[addr%PageSize]
}

// StoreByte stores one byte at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	p := m.writablePage(addr)
	p.data[addr%PageSize] = b
}

// Read fills buf with len(buf) bytes starting at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for i := range buf {
		buf[i] = m.LoadByte(addr + uint64(i))
	}
}

// Write stores buf at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for i, b := range buf {
		m.StoreByte(addr+uint64(i), b)
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1, 2, 4 or 8) and zero-extends it to 64 bits.
func (m *Memory) ReadUint(addr uint64, size uint8) (uint64, error) {
	var buf [8]byte
	switch size {
	case 1, 2, 4, 8:
	default:
		return 0, fmt.Errorf("mem: read size %d", size)
	}
	m.Read(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteUint writes the low size bytes of v at addr, little-endian.
func (m *Memory) WriteUint(addr uint64, size uint8, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	switch size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("mem: write size %d", size)
	}
	m.Write(addr, buf[:size])
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes starting
// at addr. The terminator is not included. If no terminator appears within
// max bytes the truncated content is returned.
func (m *Memory) ReadCString(addr uint64, max int) string {
	var out []byte
	for i := 0; i < max; i++ {
		b := m.LoadByte(addr + uint64(i))
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out)
}

// WriteCString writes s followed by a NUL terminator at addr.
func (m *Memory) WriteCString(addr uint64, s string) {
	m.Write(addr, []byte(s))
	m.StoreByte(addr+uint64(len(s)), 0)
}

// Pages returns the sorted base addresses of allocated pages; useful for
// tests and debug dumps.
func (m *Memory) Pages() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for base := range m.pages {
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
