package mem

import (
	"fmt"
	"testing"
)

// refMemory is the naive deep-copy oracle: a map of individually stored
// bytes, cloned by copying every entry. Semantically it is exactly what
// Memory promises, with none of the page sharing.
type refMemory struct {
	bytes map[uint64]byte
}

func newRefMemory() *refMemory { return &refMemory{bytes: make(map[uint64]byte)} }

func (r *refMemory) clone() *refMemory {
	c := newRefMemory()
	for a, b := range r.bytes {
		c.bytes[a] = b
	}
	return c
}

func (r *refMemory) store(addr uint64, b byte) { r.bytes[addr] = b }
func (r *refMemory) load(addr uint64) byte     { return r.bytes[addr] }

// FuzzMemoryCOW drives random interleavings of writes, clones and reads
// over a family of copy-on-write memories and checks every one of them
// against its deep-copy reference: contents stay byte-equal and writes
// never leak between siblings.
func FuzzMemoryCOW(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 0xff, 2})
	f.Add([]byte{1, 1, 0, 9, 9, 2, 3, 0, 7})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		cows := []*Memory{New()}
		refs := []*refMemory{newRefMemory()}
		// touched tracks every address any operation wrote, so the final
		// sweep compares the full modelled footprint.
		touched := make(map[uint64]bool)

		// The script is consumed as a stream of (op, operand...) tuples.
		pos := 0
		next := func() (byte, bool) {
			if pos >= len(script) {
				return 0, false
			}
			b := script[pos]
			pos++
			return b, true
		}
		const maxMems = 12
		for {
			op, ok := next()
			if !ok {
				break
			}
			which, ok := next()
			if !ok {
				break
			}
			i := int(which) % len(cows)
			switch op % 3 {
			case 0: // write one byte
				hi, _ := next()
				lo, _ := next()
				val, _ := next()
				// Keep addresses inside a few pages so clones actually
				// contend on shared pages instead of scattering.
				addr := (uint64(hi%5) * PageSize) + uint64(lo)*16
				cows[i].StoreByte(addr, val)
				refs[i].store(addr, val)
				touched[addr] = true
			case 1: // clone
				if len(cows) < maxMems {
					cows = append(cows, cows[i].Clone())
					refs = append(refs, refs[i].clone())
				}
			case 2: // spot read
				hi, _ := next()
				lo, _ := next()
				addr := (uint64(hi%5) * PageSize) + uint64(lo)*16
				if got, want := cows[i].LoadByte(addr), refs[i].load(addr); got != want {
					t.Fatalf("mem[%d] read %#x = %#x, reference says %#x", i, addr, got, want)
				}
			}
		}

		// Full differential sweep: every memory must agree with its own
		// reference at every address the script ever touched. A COW bug
		// that leaks a write into a sibling shows up here as a mismatch
		// against that sibling's reference.
		for i := range cows {
			for addr := range touched {
				if got, want := cows[i].LoadByte(addr), refs[i].load(addr); got != want {
					t.Fatalf("after script: mem[%d] at %#x = %#x, reference says %#x (siblings must not share writes)",
						i, addr, got, want)
				}
			}
		}
	})
}

// BenchmarkMemClone measures cloning a memory with a realistic working
// set (256 populated pages = 1 MiB) without writing to the clone: the
// copy-on-write win over the former deep copy.
func BenchmarkMemClone(b *testing.B) {
	m := New()
	for i := 0; i < 256; i++ {
		m.StoreByte(uint64(i)*PageSize, byte(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		_ = c
	}
}

// BenchmarkMemCloneWriteFault measures a clone plus one COW fault — the
// realistic per-checkpoint-resume cost: share everything, then pay for
// the single page the resumed run actually dirties first.
func BenchmarkMemCloneWriteFault(b *testing.B) {
	m := New()
	for i := 0; i < 256; i++ {
		m.StoreByte(uint64(i)*PageSize, byte(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		c.StoreByte(42*PageSize+7, byte(i))
	}
}

func init() {
	// Guard against accidental page-size drift breaking the fuzz
	// address construction above.
	if PageSize != 4096 {
		panic(fmt.Sprintf("fuzz harness assumes 4KiB pages, got %d", PageSize))
	}
}
