package eval

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// withSolverMode returns the profiles with the given solver mode, with
// sequential engines: incremental explorations are fully deterministic
// at Workers=1, so any label divergence the test reports is a real
// semantic difference, not scheduling noise. Grid cells still fan out in
// parallel — each cell is an independent engine.
func withSolverMode(profiles []tools.Profile, mode core.SolverMode) []tools.Profile {
	out := make([]tools.Profile, len(profiles))
	for i, p := range profiles {
		p.Caps.SolverMode = mode
		p.Caps.Workers = 1
		out[i] = p
	}
	return out
}

// diffLabels requires cell-for-cell identical paper labels between two
// grids. Unlike the checkpoint differential, outcomes are not compared
// byte-for-byte: incremental sessions legitimately produce different
// satisfying models (and so different generated inputs and work
// profiles); the equivalence contract is on verdict labels.
//
// With allowStronger, a cell may instead strengthen E into a conclusive
// label, in one direction only: fresh gave up with budget-exhausted
// (conflict-capped queries returning unknown) while the incremental run
// — retained learned clauses answering the same queries within the same
// per-call cap — finished the identical exploration conclusively. Used
// for the crypto grid, where the tightened conflict budget makes both
// modes incomplete; everywhere else labels must match exactly.
func diffLabels(t *testing.T, inc, fresh *Grid, allowStronger bool) (checks int) {
	t.Helper()
	for _, b := range inc.Rows {
		for _, tool := range inc.Tools {
			ci, cf := inc.Cell(b.Name, tool), fresh.Cell(b.Name, tool)
			if ci == nil || cf == nil {
				t.Fatalf("%s/%s: missing cell (incremental %v, fresh %v)", tool, b.Name, ci != nil, cf != nil)
			}
			if ci.Got != cf.Got || ci.Mechanical != cf.Mechanical {
				stronger := allowStronger && cf.Mechanical == bombs.E &&
					cf.Outcome.Verdict == core.VerdictBudget &&
					ci.Outcome.Verdict == core.VerdictUnreachable
				if stronger {
					t.Logf("%s/%s: incremental strictly more conclusive: %s (mech %s) vs fresh %s (budget-exhausted)",
						tool, b.Name, ci.Got, ci.Mechanical, cf.Got)
				} else {
					t.Errorf("%s/%s: label differs: incremental %s (mech %s), fresh %s (mech %s)",
						tool, b.Name, ci.Got, ci.Mechanical, cf.Got, cf.Mechanical)
				}
			}
			if fs := cf.Outcome.Stats; fs.SolverSessions != 0 || fs.IncrementalChecks != 0 ||
				fs.LearnedClausesRetained != 0 || fs.GuardLiterals != 0 {
				t.Errorf("%s/%s: fresh grid reported incremental work: %+v", tool, b.Name, fs)
			}
			checks += ci.Outcome.Stats.IncrementalChecks
		}
	}
	return checks
}

// TestGridIncrementalDifferential is the tentpole's differential
// harness: the full Table II grid runs twice — once with per-round
// incremental solver sessions and once with a fresh SAT instance per
// query — and every cell must carry the same verdict label. The two
// crypto bombs run in a second grid with a tighter conflict budget
// (their conflict-bounded queries would otherwise dominate the test),
// as in the checkpoint differential: the assertion is incremental/fresh
// equivalence under equal budgets, not agreement with the paper. Under
// that cap both modes are incomplete, and the one divergence permitted
// is incremental being strictly more conclusive (see diffLabels).
func TestGridIncrementalDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is slow; run without -short")
	}
	var fast, crypto []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
		p.Caps.SolverConflicts = 192
		crypto = append(crypto, p)
	}
	var rows, cryptoRows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			cryptoRows = append(cryptoRows, b)
			continue
		}
		rows = append(rows, b)
	}

	inc := runGrid(withSolverMode(fast, core.SolverIncremental), rows, 0, true)
	fresh := runGrid(withSolverMode(fast, core.SolverFresh), rows, 0, true)
	checks := diffLabels(t, inc, fresh, false)

	incC := runGrid(withSolverMode(crypto, core.SolverIncremental), cryptoRows, 0, true)
	freshC := runGrid(withSolverMode(crypto, core.SolverFresh), cryptoRows, 0, true)
	checks += diffLabels(t, incC, freshC, true)

	// The equivalence above would hold trivially if sessions never
	// engaged; require that the grid actually solved incrementally.
	if checks == 0 {
		t.Errorf("incremental sessions never engaged across the grid")
	}
}
