package eval

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// fastExtended returns the five extended-grid profiles under the usual
// differential budgets: FastBudgets for the deterministic bounds, with
// the wall-clock limits raised far past what the corpus needs so that
// CPU sharing between concurrent cells can never flip a verdict.
func fastExtended() []tools.Profile {
	var fast []tools.Profile
	for _, p := range tools.TableIIExtended() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
	}
	return fast
}

// TestGridExtendedDeterministic runs the Table II-extended grid through
// the cell worker pool at 1, 4 and 8 workers and requires byte-identical
// scrubbed outcomes and identical rendered tables — the ISSUE 9
// determinism acceptance. The extended corpus has no crypto bombs, so no
// rows are excluded.
func TestGridExtendedDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("extended grid comparison is slow; run without -short")
	}
	rows := bombs.TableIIExtended()

	grids := map[int]*Grid{}
	for _, w := range []int{1, 4, 8} {
		grids[w] = runGrid(fastExtended(), rows, w, false)
	}
	base := grids[1]
	for _, w := range []int{4, 8} {
		g := grids[w]
		if got, want := RenderTableII(g), RenderTableII(base); got != want {
			t.Errorf("workers=%d renders a different table than workers=1:\n%s\nvs\n%s", w, got, want)
		}
		for _, b := range base.Rows {
			for _, tool := range base.Tools {
				cb, cw := base.Cell(b.Name, tool), g.Cell(b.Name, tool)
				if cb == nil || cw == nil {
					t.Fatalf("%s/%s: missing cell (workers=1 %v, workers=%d %v)",
						tool, b.Name, cb != nil, w, cw != nil)
				}
				if cb.Got != cw.Got || cb.Mechanical != cw.Mechanical {
					t.Errorf("%s/%s: workers=1 %s (mech %s), workers=%d %s (mech %s)",
						tool, b.Name, cb.Got, cb.Mechanical, w, cw.Got, cw.Mechanical)
				}
				sb, sw := scrubOutcome(cb.Outcome), scrubOutcome(cw.Outcome)
				if !reflect.DeepEqual(sb, sw) {
					t.Errorf("%s/%s: outcomes differ between workers=1 and workers=%d:\n  1: %+v\n  %d: %+v",
						tool, b.Name, w, sb, w, sw)
				}
			}
		}
	}
}

// TestGridExtendedDifferential replays the extended grid under the
// coverage-guided search with the hybrid fuzz stage, the portfolio
// solver and the checkpointing scheduler — the full optimisation stack —
// against the plain generational baseline, and requires every cell to
// stay identical or strictly strengthen, exactly as the Table II
// coverage differential does.
func TestGridExtendedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is slow; run without -short")
	}
	rows := bombs.TableIIExtended()
	fast := fastExtended()

	gen := runGrid(withSearch(fast, core.SearchGenerational, false), rows, 0, false)

	stacked := withSearch(fast, core.SearchCoverage, true)
	for i := range stacked {
		stacked[i].Caps.SolverMode = core.SolverPortfolio
		stacked[i].Caps.Checkpoint = core.CheckpointAuto
	}
	cov := runGrid(stacked, rows, 0, false)

	solved := diffCoverageLabels(t, cov, gen)
	// The comparison would hold trivially on an all-error grid; require
	// that the stacked run actually detonated bombs.
	if solved == 0 {
		t.Error("stacked extended grid solved no cells")
	}
}
