package eval

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
	"repro/internal/warmstore"
)

// withWarm returns the profiles with the warm-start store attached.
func withWarm(profiles []tools.Profile, w *warmstore.Store) []tools.Profile {
	out := make([]tools.Profile, len(profiles))
	for i, p := range profiles {
		p.Caps.Warm = w
		out[i] = p
	}
	return out
}

// diffPortfolioLabels requires cell-for-cell identical paper labels
// between a portfolio grid and a fresh grid. The portfolio is
// nondeterministic in which worker answers a query — models, generated
// inputs and work profiles legitimately differ — but never in the
// verdict, so labels must agree. With allowStronger, a cell may instead
// strengthen E into a conclusive label in one direction only: fresh gave
// up budget-exhausted while a diversified rival (or a retained session)
// cracked the same queries within the identical per-call conflict cap.
func diffPortfolioLabels(t *testing.T, pf, fresh *Grid, allowStronger bool) (races int) {
	t.Helper()
	for _, b := range pf.Rows {
		for _, tool := range pf.Tools {
			cp, cf := pf.Cell(b.Name, tool), fresh.Cell(b.Name, tool)
			if cp == nil || cf == nil {
				t.Fatalf("%s/%s: missing cell (portfolio %v, fresh %v)", tool, b.Name, cp != nil, cf != nil)
			}
			if cp.Got != cf.Got || cp.Mechanical != cf.Mechanical {
				stronger := allowStronger && cf.Mechanical == bombs.E &&
					cf.Outcome.Verdict == core.VerdictBudget &&
					(cp.Outcome.Verdict == core.VerdictUnreachable ||
						cp.Outcome.Verdict == core.VerdictSolved)
				if stronger {
					t.Logf("%s/%s: portfolio strictly more conclusive: %s (mech %s) vs fresh %s (budget-exhausted)",
						tool, b.Name, cp.Got, cp.Mechanical, cf.Got)
				} else {
					t.Errorf("%s/%s: label differs: portfolio %s (mech %s), fresh %s (mech %s)",
						tool, b.Name, cp.Got, cp.Mechanical, cf.Got, cf.Mechanical)
				}
			}
			if fs := cf.Outcome.Stats; fs.PortfolioRaces != 0 || fs.PortfolioClausesShared != 0 ||
				fs.WarmQueryHits != 0 || fs.WarmClausesSeeded != 0 {
				t.Errorf("%s/%s: fresh grid reported portfolio work: %+v", tool, b.Name, fs)
			}
			races += cp.Outcome.Stats.PortfolioRaces
		}
	}
	return races
}

// TestGridPortfolioDifferential runs the Table II grid fresh, with
// portfolio racing, and with a warm-started portfolio (second run over
// the store the first populated), requiring identical verdict labels
// throughout. The two crypto bombs run in a second grid with a tighter
// conflict budget where the only divergence permitted is the portfolio
// being strictly more conclusive — the budget-bound coverage the racing
// buys. The warm-started grid must actually answer queries from the
// store, the observable acceptance signal at this layer.
func TestGridPortfolioDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is slow; run without -short")
	}
	var fast, crypto []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
		p.Caps.SolverConflicts = 192
		crypto = append(crypto, p)
	}
	var rows, cryptoRows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			cryptoRows = append(cryptoRows, b)
			continue
		}
		rows = append(rows, b)
	}

	fresh := runGrid(withSolverMode(fast, core.SolverFresh), rows, 0, true)

	dir := t.TempDir()
	w1, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pf := runGrid(withWarm(withSolverMode(fast, core.SolverPortfolio), w1), rows, 0, true)
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	races := diffPortfolioLabels(t, pf, fresh, false)

	// Second process: reopen the store and run the grid warm.
	w2, err := warmstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	warm := runGrid(withWarm(withSolverMode(fast, core.SolverPortfolio), w2), rows, 0, true)
	races += diffPortfolioLabels(t, warm, fresh, false)

	warmHits := 0
	for _, b := range warm.Rows {
		for _, tool := range warm.Tools {
			warmHits += warm.Cell(b.Name, tool).Outcome.Stats.WarmQueryHits
		}
	}
	if warmHits == 0 {
		t.Errorf("warm-started grid never answered a query from the store")
	}

	pfC := runGrid(withSolverMode(crypto, core.SolverPortfolio), cryptoRows, 0, true)
	freshC := runGrid(withSolverMode(crypto, core.SolverFresh), cryptoRows, 0, true)
	races += diffPortfolioLabels(t, pfC, freshC, true)

	// The equivalence above would hold trivially if no query ever raced;
	// require that the grids actually solved through the portfolio.
	if races == 0 {
		t.Errorf("portfolio races never engaged across the grid")
	}
}
