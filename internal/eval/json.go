package eval

import (
	"encoding/json"

	"repro/internal/bombs"
)

// The JSON rendering of a Table II run: the grid plus the aggregate
// engine statistics. It is the machine-readable counterpart of
// RenderTableII, consumed by evaltable -json, CI checks, and clients of
// the concolicd batch workflow.

// CellJSON is one bomb x tool cell.
type CellJSON struct {
	Outcome    string `json:"outcome"` // reported label (after overrides)
	Mechanical string `json:"mechanical,omitempty"`
	Paper      string `json:"paper,omitempty"`
	Match      bool   `json:"match"`
	Overridden bool   `json:"overridden,omitempty"`
	Note       string `json:"note,omitempty"`
	Verdict    string `json:"verdict"`
	Rounds     int    `json:"rounds"`
	// CoverageNewEdgesPerRound is the per-round coverage novelty profile
	// (new edges each round contributed, in merge order).
	CoverageNewEdgesPerRound []int `json:"coverage_new_edges_per_round,omitempty"`
}

// RowJSON is one bomb row of the grid.
type RowJSON struct {
	Bomb        string `json:"bomb"`
	Challenge   string `json:"challenge"`
	Description string `json:"description"`
	// Category is the corpus the bomb belongs to (accuracy, scalability,
	// extended, ...); Taxonomy is the TIFS-2018 taxonomy slug carried by
	// extended bombs only.
	Category string              `json:"category"`
	Taxonomy string              `json:"taxonomy,omitempty"`
	Cells    map[string]CellJSON `json:"cells"` // tool -> cell
}

// AggStatsJSON sums the engine work profile over every cell.
type AggStatsJSON struct {
	Cells          int     `json:"cells"`
	Rounds         int     `json:"rounds"`
	SolverQueries  int     `json:"solver_queries"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	// Hash-consing arena traffic, summed over cells; ArenaNodes is the
	// final process-wide population (last cell wins, not a sum).
	InternHits    uint64  `json:"intern_hits"`
	InternMisses  uint64  `json:"intern_misses"`
	InternHitRate float64 `json:"intern_hit_rate"`
	ArenaNodes    uint64  `json:"arena_nodes"`
	// Checkpoint-scheduler work profile, summed over cells.
	CheckpointsTaken        int    `json:"checkpoints_taken"`
	CheckpointResumes       int    `json:"checkpoint_resumes"`
	InstructionsSkipped     int64  `json:"instructions_skipped"`
	PagesCOWFaulted         uint64 `json:"pages_cow_faulted"`
	PrefixConstraintsReused int    `json:"prefix_constraints_reused"`
	// Incremental-session work profile, summed over cells (all zero when
	// the grid ran with core.SolverFresh).
	SolverSessions         int   `json:"solver_sessions"`
	IncrementalChecks      int   `json:"incremental_checks"`
	LearnedClausesRetained int64 `json:"learned_retained"`
	GuardLiterals          int   `json:"guard_literals"`
	// Portfolio work profile, summed over cells (all zero outside
	// core.SolverPortfolio).
	PortfolioRaces           int   `json:"portfolio_races"`
	PortfolioClausesShared   int64 `json:"portfolio_clauses_shared"`
	PortfolioClausesImported int64 `json:"portfolio_clauses_imported"`
	WarmQueryHits            int   `json:"warmstart_query_hits"`
	WarmClausesSeeded        int   `json:"warmstart_clauses_seeded"`
	// Coverage and hybrid-fuzzing work profile, summed over cells.
	CoveredEdges      int   `json:"covered_edges"`
	CoveredBlocks     int   `json:"covered_blocks"`
	FuzzExecs         int   `json:"fuzz_execs"`
	FuzzSeedsPromoted int   `json:"fuzz_seeds_promoted"`
	WallMS            int64 `json:"wall_ms"` // summed per-cell engine time
}

// GridJSON is the full machine-readable Table II report.
type GridJSON struct {
	Title string `json:"title,omitempty"`
	// HasPaper mirrors Grid.HasPaper: when false (the extended corpus)
	// the cells carry no paper column and Match counts nothing.
	HasPaper bool           `json:"has_paper"`
	Tools    []string       `json:"tools"`
	Rows     []RowJSON      `json:"rows"`
	Solved   map[string]int `json:"solved"` // tool -> solved cells
	Match    int            `json:"match"`
	Total    int            `json:"total"`
	Stats    AggStatsJSON   `json:"stats"`
}

// ToJSON converts a completed grid into its JSON report form.
func ToJSON(g *Grid) *GridJSON {
	out := &GridJSON{
		Title:    g.Title,
		HasPaper: g.HasPaper,
		Tools:    append([]string(nil), g.Tools...),
		Solved:   make(map[string]int),
	}
	for _, t := range g.Tools {
		out.Solved[t] = 0
	}
	for _, bomb := range g.Rows {
		row := RowJSON{
			Bomb:        bomb.Name,
			Challenge:   bomb.Challenge,
			Description: bomb.Description,
			Category:    string(bomb.Category),
			Taxonomy:    bomb.Taxonomy,
			Cells:       make(map[string]CellJSON, len(g.Tools)),
		}
		for _, tool := range g.Tools {
			c := g.Cell(bomb.Name, tool)
			if c == nil {
				continue
			}
			paper := ""
			if g.HasPaper {
				paper = label(c.Paper)
			}
			row.Cells[tool] = CellJSON{
				Outcome:    label(c.Got),
				Mechanical: label(c.Mechanical),
				Paper:      paper,
				Match:      c.Match,
				Overridden: c.Overridden,
				Note:       c.Note,
				Verdict:    c.Outcome.Verdict.String(),
				Rounds:     c.Outcome.Rounds,
				CoverageNewEdgesPerRound: append([]int(nil),
					c.Outcome.Stats.NewEdgesPerRound...),
			}
			if c.Got == bombs.OK {
				out.Solved[tool]++
			}
			s := c.Outcome.Stats
			out.Stats.Cells++
			out.Stats.Rounds += s.Rounds
			out.Stats.SolverQueries += s.SolverQueries
			out.Stats.CacheHits += s.CacheHits
			out.Stats.CacheMisses += s.CacheMisses
			out.Stats.CacheEvictions += s.CacheEvictions
			out.Stats.InternHits += s.InternHits
			out.Stats.InternMisses += s.InternMisses
			if s.ArenaNodes > out.Stats.ArenaNodes {
				out.Stats.ArenaNodes = s.ArenaNodes
			}
			out.Stats.CheckpointsTaken += s.CheckpointsTaken
			out.Stats.CheckpointResumes += s.CheckpointResumes
			out.Stats.InstructionsSkipped += s.InstructionsSkipped
			out.Stats.PagesCOWFaulted += s.PagesCOWFaulted
			out.Stats.PrefixConstraintsReused += s.PrefixConstraintsReused
			out.Stats.SolverSessions += s.SolverSessions
			out.Stats.IncrementalChecks += s.IncrementalChecks
			out.Stats.LearnedClausesRetained += s.LearnedClausesRetained
			out.Stats.GuardLiterals += s.GuardLiterals
			out.Stats.PortfolioRaces += s.PortfolioRaces
			out.Stats.PortfolioClausesShared += s.PortfolioClausesShared
			out.Stats.PortfolioClausesImported += s.PortfolioClausesImported
			out.Stats.WarmQueryHits += s.WarmQueryHits
			out.Stats.WarmClausesSeeded += s.WarmClausesSeeded
			out.Stats.CoveredEdges += s.CoveredEdges
			out.Stats.CoveredBlocks += s.CoveredBlocks
			out.Stats.FuzzExecs += s.FuzzExecs
			out.Stats.FuzzSeedsPromoted += s.FuzzSeedsPromoted
			out.Stats.WallMS += s.WallTime.Milliseconds()
		}
		out.Rows = append(out.Rows, row)
	}
	if lookups := out.Stats.CacheHits + out.Stats.CacheMisses; lookups > 0 {
		out.Stats.CacheHitRate = float64(out.Stats.CacheHits) / float64(lookups)
	}
	if lookups := out.Stats.InternHits + out.Stats.InternMisses; lookups > 0 {
		out.Stats.InternHitRate = float64(out.Stats.InternHits) / float64(lookups)
	}
	out.Match, out.Total = g.Matches()
	return out
}

// MarshalGrid renders the grid report as indented JSON.
func MarshalGrid(g *Grid) ([]byte, error) {
	return json.MarshalIndent(ToJSON(g), "", "  ")
}
