package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/sym"
	"repro/internal/symexec"
	"repro/internal/tools"
)

// Fig3Result reproduces Figure 3: the extra symbolic instructions and
// constraint growth that an enabled printf call drags into the analysis.
type Fig3Result struct {
	Input string

	PlainSteps    int // total executed instructions
	PrintfSteps   int
	PlainTainted  int // instructions that propagate symbolic values
	PrintfTainted int

	PlainConstraints  int
	PrintfConstraints int

	PlainModel  string // SMT-LIB of the path constraints (plain variant)
	PrintfModel string
}

// RunFig3 executes both Figure 3 programs on the same triggering input
// and measures the tainted-instruction and constraint growth.
func RunFig3() (*Fig3Result, error) {
	plain, ok := bombs.ByName("fig3_plain")
	if !ok {
		return nil, fmt.Errorf("fig3_plain missing")
	}
	withPrintf, ok := bombs.ByName("fig3_printf")
	if !ok {
		return nil, fmt.Errorf("fig3_printf missing")
	}
	ref := tools.Reference()
	res := &Fig3Result{Input: plain.Trigger.Argv1}

	measure := func(b *bombs.Bomb) (steps, tainted, ncons int, smt string, err error) {
		run, err := b.Run(b.Trigger, bombs.WithRecording())
		if err != nil {
			return 0, 0, 0, "", err
		}
		opts := ref.Caps.Sym
		cfg := b.Trigger.Config()
		opts.Env = symexec.EnvInfo{TimeNow: cfg.TimeNow, Pid: cfg.Pid}
		sr := symexec.Run(b.Image(), run.Trace, run.Argv, cfg.Argv, opts)
		var exprs []sym.Expr
		for _, c := range sr.Constraints {
			exprs = append(exprs, c.Expr)
		}
		return run.Steps, len(sr.TaintedIdx), len(sr.Constraints), sym.SMTLib(exprs), nil
	}

	var err error
	if res.PlainSteps, res.PlainTainted, res.PlainConstraints, res.PlainModel, err = measure(plain); err != nil {
		return nil, err
	}
	if res.PrintfSteps, res.PrintfTainted, res.PrintfConstraints, res.PrintfModel, err = measure(withPrintf); err != nil {
		return nil, err
	}
	return res, nil
}

// RenderFig3 prints the comparison the way Figure 3 reports it.
func RenderFig3(r *Fig3Result) string {
	var b strings.Builder
	b.WriteString("FIGURE 3: extra constraints incurred by an external printf call\n\n")
	fmt.Fprintf(&b, "input: argv[1] = %q (condition: atoi(argv[1]) >= 0x32)\n\n", r.Input)
	fmt.Fprintf(&b, "%-34s %-16s %-16s\n", "", "printf disabled", "printf enabled")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	fmt.Fprintf(&b, "%-34s %-16d %-16d\n", "executed instructions", r.PlainSteps, r.PrintfSteps)
	fmt.Fprintf(&b, "%-34s %-16d %-16d\n", "symbol-propagating instructions", r.PlainTainted, r.PrintfTainted)
	fmt.Fprintf(&b, "%-34s %-16d %-16d\n", "path constraints", r.PlainConstraints, r.PrintfConstraints)
	fmt.Fprintf(&b, "\nprintf adds %d symbol-propagating instructions and %d constraints\n",
		r.PrintfTainted-r.PlainTainted, r.PrintfConstraints-r.PlainConstraints)
	b.WriteString("(the paper reports 5 -> 66 relevant instructions on x86-64/BAP; the\nshape — polynomial growth with callee complexity — is the claim)\n")
	return b.String()
}

// ExtensionRow is one bomb's outcome under the Reference engine.
type ExtensionRow struct {
	Bomb    string
	Outcome bombs.PaperOutcome
	Rounds  int
	Input   bombs.Input
}

// RunReference evaluates the full-capability engine over the Table II
// bombs — the "lessons learnt" extension study.
func RunReference() []ExtensionRow {
	ref := tools.Reference()
	var rows []ExtensionRow
	for _, b := range bombs.TableII() {
		cell := RunCell(b, ref, -1)
		rows = append(rows, ExtensionRow{
			Bomb:    b.Name,
			Outcome: cell.Got,
			Rounds:  cell.Outcome.Rounds,
			Input:   cell.Outcome.Input,
		})
	}
	return rows
}

// RenderReference prints the extension table.
func RenderReference(rows []ExtensionRow) string {
	var b strings.Builder
	b.WriteString("EXTENSION: full-capability reference engine on the 22 bombs\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %-7s %s\n", "Bomb", "Result", "Rounds", "Solving input")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	solved := 0
	for _, r := range rows {
		in := ""
		if r.Outcome == bombs.OK {
			solved++
			in = fmt.Sprintf("argv=%q", r.Input.Argv1)
			if r.Input.TimeNow != 0 {
				in += fmt.Sprintf(" time=%d", r.Input.TimeNow)
			}
			if r.Input.Pid != 0 {
				in += fmt.Sprintf(" pid=%d", r.Input.Pid)
			}
			for u, c := range r.Input.Web {
				in += fmt.Sprintf(" web[%s]=%q", u, c)
			}
		}
		fmt.Fprintf(&b, "%-10s %-8s %-7d %s\n", r.Bomb, label(r.Outcome), r.Rounds, in)
	}
	fmt.Fprintf(&b, "\nSolved: %d/22 (the remaining failures are the genuinely hard\nscalability challenges: PRNG inversion and cryptographic functions)\n", solved)
	return b.String()
}

// NegativeStudy reproduces §V-C: the over-approximating profile claims
// the unreachable pow bomb while the reference engine does not.
type NegativeStudy struct {
	ReferenceClaims bool
	NoLibClaims     bool
}

// RunNegativeStudy executes both engines on the negative bomb. The
// reference engine's budgets are trimmed: the observable is whether a
// claim is made, which surfaces in the first few rounds.
func RunNegativeStudy() *NegativeStudy {
	b, _ := bombs.ByName("negpow")
	run := func(p tools.Profile) *core.Outcome {
		p.Caps.MaxRounds = 24
		p.Caps.TotalBudget = 20 * time.Second
		en := core.New(b.Image(), b.BombAddr(), p.Caps)
		return en.Explore(b.Benign)
	}
	ref := run(tools.Reference())
	nolib := run(tools.AngrNoLib())
	return &NegativeStudy{
		ReferenceClaims: ref.Verdict == core.VerdictSolved || len(ref.Claims) > 0,
		NoLibClaims:     nolib.Verdict == core.VerdictSolved || len(nolib.Claims) > 0,
	}
}

// RenderNegativeStudy prints the §V-C result.
func RenderNegativeStudy(s *NegativeStudy) string {
	var b strings.Builder
	b.WriteString("NEGATIVE BOMB (§V-C): pow(x,2) == -1 is unsatisfiable\n\n")
	fmt.Fprintf(&b, "reference engine claims the path feasible: %v (sound: should be false)\n", s.ReferenceClaims)
	fmt.Fprintf(&b, "Angr-NoLib (unconstrained pow summary):    %v (the paper's false positive)\n", s.NoLibClaims)
	return b.String()
}

// RunExtensionBombs evaluates the reference engine on the extension
// programs that go beyond the paper's benchmark (the deferred loop
// challenge, a symbolic return address, a three-level array).
func RunExtensionBombs() []ExtensionRow {
	ref := tools.Reference()
	var rows []ExtensionRow
	for _, name := range []string{"loop", "retjump", "array3"} {
		b, ok := bombs.ByName(name)
		if !ok {
			continue
		}
		cell := RunCell(b, ref, -1)
		rows = append(rows, ExtensionRow{
			Bomb:    b.Name,
			Outcome: cell.Got,
			Rounds:  cell.Outcome.Rounds,
			Input:   cell.Outcome.Input,
		})
	}
	return rows
}
