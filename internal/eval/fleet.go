package eval

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// Fleet client: RunTableIIFleet replays the Table II grid against one
// or more concolicd replicas instead of in-process engines. Each
// profile x bomb cell becomes a job submitted round-robin over the
// endpoints; replicas sharing a -sharedcache directory then solve each
// negation query once fleet-wide. Because the service runs the same
// engine on the same deterministic scheduler, and the shared tier
// stores only seed-independent budget-deterministic results, the
// resulting verdict labels are byte-identical to RunTableII — the
// fleet differential test in the service package asserts exactly that.
//
// The service speaks plain JSON, so the client here re-declares the
// wire shapes instead of importing internal/service (which imports
// this package for Classify).

// fleetRequest mirrors service.Request.
type fleetRequest struct {
	Bomb      string  `json:"bomb"`
	Tool      string  `json:"tool"`
	Workers   int     `json:"workers,omitempty"`
	Solver    string  `json:"solver,omitempty"`
	Strategy  string  `json:"strategy,omitempty"`
	Fuzz      bool    `json:"fuzz,omitempty"`
	CoverGoal float64 `json:"cover_goal,omitempty"`
}

// fleetView mirrors the service job view fields the client consumes.
type fleetView struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Error  string       `json:"error"`
	Result *fleetResult `json:"result"`
}

type fleetResult struct {
	Verdict string `json:"verdict"`
	Label   string `json:"label"`
	Detail  string `json:"detail"`
	Rounds  int    `json:"rounds"`
	Input   *struct {
		Argv1   string            `json:"argv1"`
		TimeNow uint64            `json:"time"`
		Pid     uint64            `json:"pid"`
		Web     map[string]string `json:"web"`
		Files   map[string][]byte `json:"files"`
		Env     map[string]string `json:"env"`
	} `json:"input"`
	Stats struct {
		Workers           int    `json:"workers"`
		SolverQueries     int    `json:"solver_queries"`
		CacheHits         uint64 `json:"cache_hits"`
		CacheMisses       uint64 `json:"cache_misses"`
		PeakFrontier      int    `json:"peak_frontier"`
		WallMS            int64  `json:"wall_ms"`
		CoveredEdges      int    `json:"covered_edges"`
		CoveredBlocks     int    `json:"covered_blocks"`
		SharedCacheHits   uint64 `json:"sharedcache_hits"`
		SharedCacheMisses uint64 `json:"sharedcache_misses"`
		SharedCacheStores uint64 `json:"sharedcache_stores"`
		SharedCacheServed uint64 `json:"sharedcache_served"`
	} `json:"stats"`
}

var fleetHTTP = &http.Client{Timeout: 10 * time.Second}

// FleetOptions shapes a fleet grid run. Only the wire-expressible
// subset of Options applies: checkpoint policy and warm-start stores
// are replica-side configuration (-warmstart on concolicd), not
// per-request knobs.
type FleetOptions struct {
	// EngineWorkers, SolverMode, Strategy, Fuzz, CoverGoal mirror the
	// same Options fields and ride on each submitted job.
	EngineWorkers int
	SolverMode    core.SolverMode
	Strategy      core.SearchStrategy
	Fuzz          bool
	CoverGoal     float64
	// PollInterval paces job-completion polling (<= 0: 50ms).
	PollInterval time.Duration
	// Timeout bounds the whole grid run (<= 0: 10 minutes).
	Timeout time.Duration
}

// RunTableIIFleet evaluates the four Table II profiles over the 22
// bombs on a concolicd fleet, submitting cells round-robin across the
// endpoints and assembling the same Grid RunTableII returns.
func RunTableIIFleet(opts FleetOptions, endpoints []string) (*Grid, error) {
	// tools.Names() lists the wire/CLI ids in Table II order (plus the
	// reference engine); the grid itself is keyed by display name.
	return runFleetGrid(tools.TableII(), tools.Names()[:4], bombs.TableII(),
		true, "TABLE II", opts, endpoints)
}

// RunTableIIExtendedFleet is RunTableIIFleet for the Table II-extended
// corpus: the five extended columns (paper profiles plus the reference
// engine) over the TIFS-2018 taxonomy bombs, assembling the same Grid
// RunTableIIExtended returns.
func RunTableIIExtendedFleet(opts FleetOptions, endpoints []string) (*Grid, error) {
	return runFleetGrid(tools.TableIIExtended(), tools.Names(), bombs.TableIIExtended(),
		false, "TABLE II-EXTENDED", opts, endpoints)
}

// runFleetGrid submits every profile x bomb cell round-robin over the
// endpoints and assembles the grid from the finished jobs. wireNames
// must parallel profiles with the service/CLI tool ids.
func runFleetGrid(profiles []tools.Profile, wireNames []string, rows []*bombs.Bomb,
	withPaper bool, title string, opts FleetOptions, endpoints []string) (*Grid, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("fleet: no endpoints")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Minute
	}

	g := &Grid{Title: title, HasPaper: withPaper, Cells: make(map[string]map[string]*Cell)}
	for _, p := range profiles {
		g.Tools = append(g.Tools, p.Name())
	}
	g.Rows = rows

	type pending struct {
		endpoint string
		jobID    string
		bomb     *bombs.Bomb
		profile  tools.Profile
		paperIdx int
	}
	var jobs []pending
	next := 0
	for _, b := range rows {
		g.Cells[b.Name] = make(map[string]*Cell)
		for i, p := range profiles {
			req := fleetRequest{
				Bomb:      b.Name,
				Tool:      wireNames[i],
				Workers:   opts.EngineWorkers,
				Fuzz:      opts.Fuzz,
				CoverGoal: opts.CoverGoal,
			}
			if opts.SolverMode != 0 {
				req.Solver = opts.SolverMode.String()
			}
			if opts.Strategy != 0 {
				req.Strategy = opts.Strategy.String()
			}
			endpoint := endpoints[next%len(endpoints)]
			next++
			id, err := fleetSubmit(endpoint, req, opts.Timeout)
			if err != nil {
				return nil, fmt.Errorf("fleet: submit %s/%s to %s: %w", b.Name, p.Name(), endpoint, err)
			}
			paperIdx := i
			if !withPaper {
				paperIdx = -1
			}
			jobs = append(jobs, pending{endpoint: endpoint, jobID: id, bomb: b, profile: p, paperIdx: paperIdx})
		}
	}

	deadline := time.Now().Add(opts.Timeout)
	for _, pj := range jobs {
		v, err := fleetWait(pj.endpoint, pj.jobID, opts.PollInterval, deadline)
		if err != nil {
			return nil, fmt.Errorf("fleet: job %s (%s/%s): %w", pj.jobID, pj.bomb.Name, pj.profile.Name(), err)
		}
		cell, err := cellFromView(pj.bomb, pj.profile, pj.paperIdx, v)
		if err != nil {
			return nil, fmt.Errorf("fleet: job %s (%s/%s): %w", pj.jobID, pj.bomb.Name, pj.profile.Name(), err)
		}
		g.Cells[pj.bomb.Name][pj.profile.Name()] = cell
	}
	return g, nil
}

// fleetSubmit posts one job, retrying on 429 backpressure until the
// deadline — a fleet grid intentionally oversubscribes small queues.
func fleetSubmit(endpoint string, req fleetRequest, timeout time.Duration) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := fleetHTTP.Post(endpoint+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		var v fleetView
		var apiErr struct {
			Error string `json:"error"`
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				return "", err
			}
			return v.ID, nil
		case http.StatusTooManyRequests:
			resp.Body.Close()
			if time.Now().After(deadline) {
				return "", fmt.Errorf("queue full past deadline")
			}
			time.Sleep(100 * time.Millisecond)
		default:
			json.NewDecoder(resp.Body).Decode(&apiErr)
			resp.Body.Close()
			return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErr.Error)
		}
	}
}

// fleetWait polls one job to a terminal state.
func fleetWait(endpoint, id string, every time.Duration, deadline time.Time) (*fleetView, error) {
	for {
		resp, err := fleetHTTP.Get(endpoint + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var v fleetView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch v.State {
		case "done":
			return &v, nil
		case "failed", "cancelled":
			return nil, fmt.Errorf("terminal state %s: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("still %s past deadline", v.State)
		}
		time.Sleep(every)
	}
}

// cellFromView rebuilds a grid cell from a finished job. The service
// computes Label with the same Classify the in-process path uses;
// overrides and the paper comparison are profile knowledge, applied
// here exactly as RunCell applies them. The synthesized Outcome carries
// the verdict and the wire work profile — enough for rendering and the
// JSON export, not a full engine transcript.
func cellFromView(b *bombs.Bomb, p tools.Profile, paperIdx int, v *fleetView) (*Cell, error) {
	if v.Result == nil {
		return nil, fmt.Errorf("done without result")
	}
	verdict, err := core.ParseVerdict(v.Result.Verdict)
	if err != nil {
		return nil, err
	}
	out := &core.Outcome{
		Verdict:     verdict,
		CrashDetail: v.Result.Detail,
		Rounds:      v.Result.Rounds,
	}
	out.Stats.Workers = v.Result.Stats.Workers
	out.Stats.Rounds = v.Result.Rounds
	out.Stats.SolverQueries = v.Result.Stats.SolverQueries
	out.Stats.CacheHits = v.Result.Stats.CacheHits
	out.Stats.CacheMisses = v.Result.Stats.CacheMisses
	out.Stats.PeakFrontier = v.Result.Stats.PeakFrontier
	out.Stats.WallTime = time.Duration(v.Result.Stats.WallMS) * time.Millisecond
	out.Stats.CoveredEdges = v.Result.Stats.CoveredEdges
	out.Stats.CoveredBlocks = v.Result.Stats.CoveredBlocks
	out.Stats.SharedCacheHits = v.Result.Stats.SharedCacheHits
	out.Stats.SharedCacheMisses = v.Result.Stats.SharedCacheMisses
	out.Stats.SharedCacheStores = v.Result.Stats.SharedCacheStores
	out.Stats.SharedCacheServed = v.Result.Stats.SharedCacheServed
	if in := v.Result.Input; in != nil {
		out.Input = bombs.Input{Argv1: in.Argv1, TimeNow: in.TimeNow, Pid: in.Pid,
			Web: in.Web, Files: in.Files, Env: in.Env}
	}

	mech := bombs.PaperOutcome(v.Result.Label)
	cell := &Cell{
		Bomb:       b.Name,
		Tool:       p.Name(),
		Mechanical: mech,
		Got:        mech,
		Outcome:    out,
	}
	if ov, ok := p.Overrides[b.Name]; ok {
		cell.Got = ov.Outcome
		cell.Overridden = true
		cell.Note = ov.Note
	}
	if paperIdx >= 0 {
		cell.Paper = b.Paper[paperIdx]
		cell.Match = cell.Got == cell.Paper
	}
	return cell, nil
}
