// Package eval is the experiment harness: it runs tool profiles against
// the logic-bomb benchmark, classifies each outcome with the paper's
// ✓/Es0–Es3/E/P labels (§V-B methodology), and renders Table I, Table II,
// the Figure 3 comparison and the extension study.
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/symexec"
	"repro/internal/tools"
	"repro/internal/warmstore"
)

// Classify maps an engine outcome to a Table II cell label.
//
// Rules, in order (mirroring the paper's §V-B):
//  1. A generated input that detonates the bomb on concrete replay: ✓.
//  2. Engine abort or exhausted budget: E (abnormal exit / timeout).
//  3. A feasibility claim resting on simulated system-call values the
//     tool cannot realize as input: P (partial success).
//  4. Otherwise the earliest recorded reasoning-error stage: Es0–Es3.
//     Secondary incidents — Es0 from the argv terminator byte and Es2
//     from input-length truncation — are side effects of byte-scanning
//     loops, and are reported only when no other error explains the
//     failure.
//  5. No incidents at all: the bomb was correctly deemed unreachable
//     (only the negative bomb should land here).
func Classify(out *core.Outcome) bombs.PaperOutcome {
	if out.Verdict == core.VerdictSolved {
		return bombs.OK
	}
	if out.Verdict == core.VerdictCrashed || out.Verdict == core.VerdictBudget ||
		out.Verdict == core.VerdictCancelled || out.Verdict == core.VerdictCoverGoal {
		// A cancelled analysis never reached a conclusion; like a crash or
		// budget exhaustion it is an abnormal exit. A coverage-goal stop is
		// a deliberate early exit and classifies the same way: the tool
		// quit before reaching the bomb.
		return bombs.E
	}
	for _, c := range out.Claims {
		if c.Syscall {
			return bombs.P
		}
	}
	var primary, secondary []symexec.Incident
	for _, in := range out.Incidents {
		if isSecondary(in) {
			secondary = append(secondary, in)
			continue
		}
		primary = append(primary, in)
	}
	pool := primary
	if len(pool) == 0 {
		pool = secondary
	}
	if len(pool) == 0 {
		return "" // correctly unreachable
	}
	min := pool[0].Stage
	for _, in := range pool {
		if in.Stage < min {
			min = in.Stage
		}
	}
	return bombs.PaperOutcome(min.String())
}

// isSecondary reports whether an incident is a side effect of byte-scan
// loops rather than a blocking capability gap.
func isSecondary(in symexec.Incident) bool {
	if in.Stage == symexec.StageEs0 && strings.Contains(in.Detail, "env!argv1") {
		return true
	}
	return in.Stage == symexec.StageEs2 && strings.Contains(in.Detail, "longer input")
}

// Cell is one Table II cell.
type Cell struct {
	Bomb string
	Tool string

	// Mechanical is the outcome produced by the capability model.
	Mechanical bombs.PaperOutcome
	// Got is the reported outcome (after any documented override).
	Got bombs.PaperOutcome
	// Overridden notes a modeled tool idiosyncrasy (see tools package).
	Overridden bool
	Note       string

	// Paper is the outcome recorded in the paper's Table II.
	Paper bombs.PaperOutcome
	Match bool

	Outcome *core.Outcome
}

// Grid is a completed Table II (or Table II-extended) run.
type Grid struct {
	// Title names the grid in rendered output ("TABLE II" when empty).
	Title string
	// HasPaper reports whether the rows carry paper outcomes to compare
	// against; the extended corpus has none.
	HasPaper bool
	Tools    []string
	Rows     []*bombs.Bomb
	Cells    map[string]map[string]*Cell // bomb -> tool -> cell
}

// Cell returns the cell for a bomb/tool pair.
func (g *Grid) Cell(bomb, tool string) *Cell {
	if m, ok := g.Cells[bomb]; ok {
		return m[tool]
	}
	return nil
}

// Matches counts cells agreeing with the paper.
func (g *Grid) Matches() (match, total int) {
	for _, row := range g.Cells {
		for _, c := range row {
			total++
			if c.Match {
				match++
			}
		}
	}
	return match, total
}

// RunCell evaluates one profile on one bomb.
func RunCell(b *bombs.Bomb, p tools.Profile, paperIdx int) *Cell {
	en := core.New(b.Image(), b.BombAddr(), p.Caps)
	out := en.Explore(b.Benign)
	mech := Classify(out)
	cell := &Cell{
		Bomb:       b.Name,
		Tool:       p.Name(),
		Mechanical: mech,
		Got:        mech,
		Outcome:    out,
	}
	if ov, ok := p.Overrides[b.Name]; ok {
		cell.Got = ov.Outcome
		cell.Overridden = true
		cell.Note = ov.Note
	}
	if paperIdx >= 0 {
		cell.Paper = b.Paper[paperIdx]
		cell.Match = cell.Got == cell.Paper
	}
	return cell
}

// Options configures one Table II evaluation.
type Options struct {
	// Workers bounds how many grid cells run concurrently
	// (<= 0: runtime.GOMAXPROCS(0)). Cells are independent — each builds
	// its own engine and solver cache — and results are assembled by
	// cell index, so the grid is identical at every worker count; only
	// the wall time changes.
	Workers int
	// Checkpoint is applied to every profile (zero value:
	// core.CheckpointAuto). Outcomes are identical at either policy (the
	// differential grid test asserts it); only the engine work profile —
	// and therefore the aggregate checkpoint stats in the JSON output —
	// changes.
	Checkpoint core.CheckpointPolicy
	// SolverMode is applied to every profile (zero value:
	// core.SolverFresh). Incremental solving keeps verdict labels (the
	// incremental differential grid test asserts it) but may generate
	// different satisfying inputs and work profiles.
	SolverMode core.SolverMode
	// EngineWorkers, when > 0, overrides each profile's per-engine
	// worker count (Capabilities.Workers); the grid-level Workers knob
	// above is independent of it.
	EngineWorkers int
	// Strategy, when non-zero, overrides each profile's search strategy
	// (the zero value keeps every profile's own default — only the
	// Reference profile deviates from generational). The coverage
	// differential grid test asserts labels never weaken under
	// core.SearchCoverage.
	Strategy core.SearchStrategy
	// Fuzz enables the hybrid mutation stage on every profile; it only
	// takes effect under core.SearchCoverage.
	Fuzz bool
	// CoverGoal, when in (0, 1], stops each engine early once that
	// fraction of static basic blocks has been covered.
	CoverGoal float64
	// Warm, when non-nil, is the persistent warm-start store every
	// engine consults and feeds under core.SolverPortfolio (ignored in
	// the other modes). The caller owns the store's lifecycle.
	Warm *warmstore.Store
}

// applyOptions overlays the evaluation options onto each profile.
func applyOptions(profiles []tools.Profile, opts Options) {
	for i := range profiles {
		profiles[i].Caps.Checkpoint = opts.Checkpoint
		profiles[i].Caps.SolverMode = opts.SolverMode
		profiles[i].Caps.Warm = opts.Warm
		if opts.EngineWorkers > 0 {
			profiles[i].Caps.Workers = opts.EngineWorkers
		}
		if opts.Strategy != 0 {
			profiles[i].Caps.Search = opts.Strategy
		}
		profiles[i].Caps.Fuzz = opts.Fuzz
		if opts.CoverGoal > 0 {
			profiles[i].Caps.CoverGoal = opts.CoverGoal
		}
	}
}

// RunTableII evaluates the four Table II profiles over the 22 bombs
// under the given options; the zero Options value reproduces the
// historical defaults.
func RunTableII(opts Options) *Grid {
	profiles := tools.TableII()
	applyOptions(profiles, opts)
	g := runGrid(profiles, bombs.TableII(), opts.Workers, true)
	g.Title = "TABLE II"
	return g
}

// RunTableIIExtended evaluates the five extended-grid columns (the four
// paper profiles plus the reference engine) over the TIFS-2018 taxonomy
// corpus. The extended rows have no paper record, so cells carry no
// paper comparison.
func RunTableIIExtended(opts Options) *Grid {
	profiles := tools.TableIIExtended()
	applyOptions(profiles, opts)
	g := runGrid(profiles, bombs.TableIIExtended(), opts.Workers, false)
	g.Title = "TABLE II-EXTENDED"
	return g
}

// runGrid fans profile x bomb cells over a bounded worker pool. withPaper
// selects whether profile columns map to the rows' paper outcomes.
func runGrid(profiles []tools.Profile, rows []*bombs.Bomb, workers int, withPaper bool) *Grid {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Grid{HasPaper: withPaper, Cells: make(map[string]map[string]*Cell)}
	for _, p := range profiles {
		g.Tools = append(g.Tools, p.Name())
	}
	g.Rows = rows

	type job struct {
		b *bombs.Bomb
		p tools.Profile
		i int // paper column index, or -1 without a paper row
	}
	var jobs []job
	for _, b := range g.Rows {
		g.Cells[b.Name] = make(map[string]*Cell)
		for i, p := range profiles {
			paperIdx := i
			if !withPaper {
				paperIdx = -1
			}
			jobs = append(jobs, job{b: b, p: p, i: paperIdx})
		}
	}
	cells := make([]*Cell, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				cells[j] = RunCell(jobs[j].b, jobs[j].p, jobs[j].i)
			}
		}()
	}
	for j := range jobs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for j, c := range cells {
		g.Cells[jobs[j].b.Name][jobs[j].p.Name()] = c
	}
	return g
}

// label renders a cell value the way the paper prints it.
func label(o bombs.PaperOutcome) string {
	switch o {
	case bombs.OK:
		return "OK"
	case "":
		return "-"
	default:
		return string(o)
	}
}

// RenderTableII prints the grid in the paper's layout, marking
// disagreements with the paper's recorded cell.
func RenderTableII(g *Grid) string {
	var b strings.Builder
	title := g.Title
	if title == "" {
		title = "TABLE II"
	}
	b.WriteString(title + ": tool performance on the logic bombs\n")
	if g.HasPaper {
		b.WriteString("(label = our result; [paper X] marks a deviation; * = modeled tool bug, see notes)\n\n")
	} else {
		b.WriteString("(label = our result; * = modeled tool bug, see notes)\n\n")
	}
	fmt.Fprintf(&b, "%-11s %-10s %-56s", "Challenge", "Bomb", "Case")
	for _, tname := range g.Tools {
		fmt.Fprintf(&b, " %-12s", tname)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 79+13*len(g.Tools)) + "\n")
	lastCh := ""
	for _, bomb := range g.Rows {
		ch := bomb.Challenge
		if ch == lastCh {
			ch = ""
		} else {
			lastCh = ch
		}
		fmt.Fprintf(&b, "%-11s %-10s %-56s", truncate(ch, 11), bomb.Name, truncate(bomb.Description, 56))
		for _, tname := range g.Tools {
			c := g.Cell(bomb.Name, tname)
			cell := label(c.Got)
			if c.Overridden {
				cell += "*"
			}
			if g.HasPaper && !c.Match {
				cell += fmt.Sprintf(" [paper %s]", label(c.Paper))
			}
			fmt.Fprintf(&b, " %-12s", cell)
		}
		b.WriteString("\n")
	}
	solved := make(map[string]int)
	for _, row := range g.Cells {
		for tname, c := range row {
			if c.Got == bombs.OK {
				solved[tname]++
			}
		}
	}
	b.WriteString("\nSolved cases: ")
	for i, tname := range g.Tools {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", tname, solved[tname])
	}
	if g.HasPaper {
		match, total := g.Matches()
		fmt.Fprintf(&b, "\nAgreement with the paper: %d/%d cells\n", match, total)
	} else {
		b.WriteString("\n")
	}

	var notes []string
	seen := map[string]bool{}
	for _, row := range g.Cells {
		for _, c := range row {
			if c.Overridden && !seen[c.Tool+c.Bomb] {
				seen[c.Tool+c.Bomb] = true
				notes = append(notes, fmt.Sprintf("* %s/%s: %s", c.Tool, c.Bomb, c.Note))
			}
		}
	}
	sort.Strings(notes)
	if len(notes) > 0 {
		b.WriteString("\nModeled tool idiosyncrasies:\n")
		for _, n := range notes {
			b.WriteString("  " + n + "\n")
		}
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RenderTableI prints the challenge/error-stage mapping (the paper's
// Table I), derived from the challenge metadata.
func RenderTableI() string {
	order := []string{
		bombs.ChSymbolicDecl, bombs.ChCovertProp, bombs.ChParallel,
		bombs.ChSymbolicArray, bombs.ChContextual, bombs.ChSymbolicJump,
		bombs.ChFloat,
	}
	var b strings.Builder
	b.WriteString("TABLE I: challenges and the error stages they may incur\n\n")
	fmt.Fprintf(&b, "%-32s %-5s %-5s %-5s %-5s\n", "Challenge", "Es0", "Es1", "Es2", "Es3")
	b.WriteString(strings.Repeat("-", 56) + "\n")
	for _, ch := range order {
		stages := bombs.ChallengeStages[ch]
		marks := map[bombs.PaperOutcome]string{}
		for _, s := range stages {
			marks[s] = "x"
		}
		cell := func(s bombs.PaperOutcome) string {
			if marks[s] != "" {
				return "x"
			}
			return "-"
		}
		fmt.Fprintf(&b, "%-32s %-5s %-5s %-5s %-5s\n",
			ch, cell(bombs.Es0), cell(bombs.Es1), cell(bombs.Es2), cell(bombs.Es3))
	}
	return b.String()
}

// RenderDiagnostics prints the per-cell root-cause evidence: incidents,
// claims and abort details behind every non-solved Table II cell. This is
// the material of the paper's §V-C root-cause discussion.
func RenderDiagnostics(g *Grid) string {
	var b strings.Builder
	b.WriteString("PER-CELL DIAGNOSTICS (root causes behind Table II)\n")
	for _, bomb := range g.Rows {
		for _, tool := range g.Tools {
			c := g.Cell(bomb.Name, tool)
			if c == nil || c.Got == bombs.OK {
				continue
			}
			fmt.Fprintf(&b, "\n%s / %s -> %s (mechanical %s, %d rounds)\n",
				tool, bomb.Name, label(c.Got), label(c.Mechanical), c.Outcome.Rounds)
			if c.Outcome.CrashDetail != "" {
				fmt.Fprintf(&b, "    abort: %s\n", c.Outcome.CrashDetail)
			}
			for _, in := range c.Outcome.Incidents {
				fmt.Fprintf(&b, "    %s\n", in)
			}
			for _, cl := range c.Outcome.Claims {
				fmt.Fprintf(&b, "    claim at %#x (syscall simulation: %v)\n", cl.PC, cl.Syscall)
			}
			if c.Overridden {
				fmt.Fprintf(&b, "    override: %s\n", c.Note)
			}
		}
	}
	return b.String()
}
