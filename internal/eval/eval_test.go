package eval

import (
	"strings"
	"testing"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/symexec"
	"repro/internal/tools"
)

func TestClassifyRules(t *testing.T) {
	mk := func(v core.Verdict) *core.Outcome { return &core.Outcome{Verdict: v} }

	if got := Classify(mk(core.VerdictSolved)); got != bombs.OK {
		t.Errorf("solved -> %s", got)
	}
	if got := Classify(mk(core.VerdictCrashed)); got != bombs.E {
		t.Errorf("crashed -> %s", got)
	}
	if got := Classify(mk(core.VerdictBudget)); got != bombs.E {
		t.Errorf("budget -> %s", got)
	}

	p := mk(core.VerdictUnreachable)
	p.Claims = []core.Claim{{Syscall: true}}
	if got := Classify(p); got != bombs.P {
		t.Errorf("syscall claim -> %s", got)
	}

	ext := mk(core.VerdictUnreachable)
	ext.Claims = []core.Claim{{Syscall: false}}
	ext.Incidents = []symexec.Incident{{Stage: symexec.StageEs2, Detail: "external function summarized"}}
	if got := Classify(ext); got != bombs.Es2 {
		t.Errorf("external claim + Es2 -> %s", got)
	}

	es := mk(core.VerdictUnreachable)
	es.Incidents = []symexec.Incident{
		{Stage: symexec.StageEs3, Detail: "symbolic memory"},
		{Stage: symexec.StageEs1, Detail: "unsupported instruction"},
	}
	if got := Classify(es); got != bombs.Es1 {
		t.Errorf("min stage -> %s", got)
	}

	// Secondary incidents only matter when nothing else explains it.
	sec := mk(core.VerdictUnreachable)
	sec.Incidents = []symexec.Incident{
		{Stage: symexec.StageEs0, Detail: "branch depends on undeclared environment input: env!argv1[1]"},
		{Stage: symexec.StageEs3, Detail: "symbolic memory address concretized"},
	}
	if got := Classify(sec); got != bombs.Es3 {
		t.Errorf("terminator Es0 should be secondary -> %s", got)
	}
	sec2 := mk(core.VerdictUnreachable)
	sec2.Incidents = []symexec.Incident{
		{Stage: symexec.StageEs0, Detail: "branch depends on undeclared environment input: env!argv1[1]"},
	}
	if got := Classify(sec2); got != bombs.Es0 {
		t.Errorf("terminator Es0 alone -> %s", got)
	}
	trunc := mk(core.VerdictUnreachable)
	trunc.Incidents = []symexec.Incident{
		{Stage: symexec.StageEs2, Detail: "model requires a longer input than the tool can construct"},
	}
	if got := Classify(trunc); got != bombs.Es2 {
		t.Errorf("truncation alone -> %s", got)
	}

	if got := Classify(mk(core.VerdictUnreachable)); got != "" {
		t.Errorf("no incidents -> %q, want empty", got)
	}
}

func TestTableIRender(t *testing.T) {
	out := RenderTableI()
	for _, want := range []string{
		"Symbolic Variable Declaration",
		"Floating-point Number",
		"Es0", "Es3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	// The declaration row checks all four stages; the float row only Es3.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Symbolic Variable Declaration") {
			if strings.Count(line, "x") != 4 {
				t.Errorf("declaration row = %q", line)
			}
		}
		if strings.HasPrefix(line, "Floating-point Number") {
			if strings.Count(line, "x") != 1 {
				t.Errorf("float row = %q", line)
			}
		}
	}
}

// TestRepresentativeCells checks a fast, characteristic cell per tool
// against the paper (the full grid is TestTableIIMatchesPaper, tagged
// slow).
func TestRepresentativeCells(t *testing.T) {
	cases := []struct {
		tool  tools.Profile
		bomb  string
		want  bombs.PaperOutcome
		index int
	}{
		{tools.BAP(), "time", bombs.Es0, 0},
		{tools.BAP(), "stack", bombs.Es1, 0},
		{tools.BAP(), "array1", bombs.Es3, 0},
		{tools.Triton(), "arglen", bombs.Es0, 1},
		{tools.Triton(), "filename", bombs.Es3, 1},
		{tools.Angr(), "arglen", bombs.OK, 2},
		{tools.Angr(), "getpid", bombs.P, 2},
		{tools.Angr(), "web", bombs.E, 2},
		{tools.AngrNoLib(), "array1", bombs.OK, 3},
		{tools.AngrNoLib(), "kvstore", bombs.P, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.tool.Name()+"/"+tc.bomb, func(t *testing.T) {
			t.Parallel()
			b, ok := bombs.ByName(tc.bomb)
			if !ok {
				t.Fatal("bomb missing")
			}
			cell := RunCell(b, tc.tool, tc.index)
			if cell.Got != tc.want {
				t.Errorf("got %s (mechanical %s), want %s; incidents=%v claims=%d verdict=%v",
					cell.Got, cell.Mechanical, tc.want,
					cell.Outcome.Incidents, len(cell.Outcome.Claims), cell.Outcome.Verdict)
			}
			if cell.Paper != tc.want {
				t.Errorf("paper registry says %s for this cell; test expects %s", cell.Paper, tc.want)
			}
		})
	}
}

// TestTableIIMatchesPaper runs the complete grid and requires full
// agreement with the paper's Table II (documented overrides included).
func TestTableIIMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table II grid is slow; run without -short")
	}
	g := RunTableII(Options{})
	match, total := g.Matches()
	if match != total {
		for _, bomb := range g.Rows {
			for _, tool := range g.Tools {
				c := g.Cell(bomb.Name, tool)
				if !c.Match {
					t.Errorf("%s/%s: got %s (mechanical %s), paper %s; verdict=%v incidents=%v",
						tool, bomb.Name, c.Got, c.Mechanical, c.Paper,
						c.Outcome.Verdict, c.Outcome.Incidents)
				}
			}
		}
		t.Fatalf("agreement %d/%d", match, total)
	}
}

func TestFig3Shape(t *testing.T) {
	r, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.PrintfTainted <= r.PlainTainted {
		t.Errorf("printf tainted %d <= plain %d", r.PrintfTainted, r.PlainTainted)
	}
	if r.PrintfConstraints <= r.PlainConstraints {
		t.Errorf("printf constraints %d <= plain %d", r.PrintfConstraints, r.PlainConstraints)
	}
	out := RenderFig3(r)
	if !strings.Contains(out, "printf adds") {
		t.Error("render missing summary line")
	}
	if !strings.Contains(r.PlainModel, "(set-logic QF_BV)") {
		t.Error("plain model is not SMT-LIB")
	}
}

func TestNegativeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("negative study explores with full budgets")
	}
	s := RunNegativeStudy()
	if s.ReferenceClaims {
		t.Error("reference engine must not claim the unreachable bomb")
	}
	if !s.NoLibClaims {
		t.Error("the over-approximating profile should claim the bomb (the paper's false positive)")
	}
	out := RenderNegativeStudy(s)
	if !strings.Contains(out, "pow(x,2)") {
		t.Error("render missing description")
	}
}

func TestRenderTableIIShape(t *testing.T) {
	// Synthetic grid: rendering must include deviations, overrides and
	// the agreement line without running the engines.
	b, _ := bombs.ByName("time")
	g := &Grid{
		HasPaper: true,
		Tools:    []string{"BAP"},
		Rows:     []*bombs.Bomb{b},
		Cells: map[string]map[string]*Cell{
			"time": {"BAP": {
				Bomb: "time", Tool: "BAP",
				Mechanical: bombs.E, Got: bombs.Es0, Overridden: true,
				Note: "example override", Paper: bombs.Es2, Match: false,
				Outcome: &core.Outcome{},
			}},
		},
	}
	out := RenderTableII(g)
	for _, want := range []string{"Es0*", "[paper Es2]", "Agreement with the paper: 0/1", "example override"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDiagnosticsShape(t *testing.T) {
	b, _ := bombs.ByName("time")
	out := &core.Outcome{
		Verdict:     core.VerdictCrashed,
		CrashDetail: "synthetic abort",
		Incidents: []symexec.Incident{
			{Stage: symexec.StageEs1, PC: 0x1234, Detail: "synthetic incident"},
		},
		Claims: []core.Claim{{PC: 0x2222, Syscall: true}},
	}
	g := &Grid{
		Tools: []string{"Angr"},
		Rows:  []*bombs.Bomb{b},
		Cells: map[string]map[string]*Cell{
			"time": {"Angr": {Bomb: "time", Tool: "Angr", Got: bombs.E, Outcome: out}},
		},
	}
	s := RenderDiagnostics(g)
	for _, want := range []string{"synthetic abort", "synthetic incident", "claim at 0x2222"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, s)
		}
	}
}

func TestRenderReferenceShape(t *testing.T) {
	rows := []ExtensionRow{
		{Bomb: "array1", Outcome: bombs.OK, Rounds: 2, Input: bombs.Input{Argv1: "6"}},
		{Bomb: "sha1", Outcome: bombs.E, Rounds: 26},
	}
	s := RenderReference(rows)
	for _, want := range []string{"array1", `argv="6"`, "Solved: 1/22"} {
		if !strings.Contains(s, want) {
			t.Errorf("reference render missing %q:\n%s", want, s)
		}
	}
}
