package eval

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// TestGridParallelMatchesSequential runs the Table II grid through the
// worker pool at two worker counts and requires cell-for-cell identical
// labels. Budgets are reduced to keep the test fast, but the wall-clock
// limits are raised well past what the included bombs need, so that CPU
// sharing between concurrent cells cannot flip a verdict: the binding
// bounds (round cap, conflict budget) are independent of scheduling.
// The two crypto bombs are excluded — without a wall-clock ceiling
// their conflict-bounded queries run for minutes.
// scrubOutcome strips the Outcome fields that legitimately differ
// between a checkpointed and a from-scratch exploration of the same
// cell: wall time, the checkpoint work profile itself (that difference
// is the point), and the sym intern counters, which are deltas against
// a process-global arena and therefore depend on what earlier grids
// already interned. Everything else — verdict, solving input, rounds,
// incidents, claims, solver-query and cache counters — must be
// byte-identical.
func scrubOutcome(o *core.Outcome) core.Outcome {
	c := *o
	c.Stats.WallTime = 0
	c.Stats.InternHits = 0
	c.Stats.InternMisses = 0
	c.Stats.ArenaNodes = 0
	c.Stats.CheckpointsTaken = 0
	c.Stats.CheckpointResumes = 0
	c.Stats.InstructionsSkipped = 0
	c.Stats.PagesCOWFaulted = 0
	c.Stats.PrefixConstraintsReused = 0
	return c
}

// diffGrids asserts cell-for-cell byte-identical scrubbed outcomes
// between a checkpointing-on and a checkpointing-off grid, and returns
// the on-grid's summed checkpoint work profile.
func diffGrids(t *testing.T, on, off *Grid) (resumes int, skipped int64) {
	t.Helper()
	for _, b := range on.Rows {
		for _, tool := range on.Tools {
			co, cf := on.Cell(b.Name, tool), off.Cell(b.Name, tool)
			if co == nil || cf == nil {
				t.Fatalf("%s/%s: missing cell (on %v, off %v)", tool, b.Name, co != nil, cf != nil)
			}
			if co.Got != cf.Got {
				t.Errorf("%s/%s: label differs: checkpointing on %s, off %s",
					tool, b.Name, co.Got, cf.Got)
			}
			so, sf := scrubOutcome(co.Outcome), scrubOutcome(cf.Outcome)
			if !reflect.DeepEqual(so, sf) {
				t.Errorf("%s/%s: outcomes differ beyond the checkpoint work profile:\n  on:  %+v\n  off: %+v",
					tool, b.Name, so, sf)
			}
			if offStats := cf.Outcome.Stats; offStats.CheckpointsTaken != 0 ||
				offStats.CheckpointResumes != 0 || offStats.InstructionsSkipped != 0 ||
				offStats.PrefixConstraintsReused != 0 {
				t.Errorf("%s/%s: checkpointing off reported checkpoint work: %+v",
					tool, b.Name, offStats)
			}
			resumes += co.Outcome.Stats.CheckpointResumes
			skipped += co.Outcome.Stats.InstructionsSkipped
		}
	}
	return resumes, skipped
}

// withCheckpoint returns the profiles with the given checkpoint policy.
func withCheckpoint(profiles []tools.Profile, pol core.CheckpointPolicy) []tools.Profile {
	out := make([]tools.Profile, len(profiles))
	for i, p := range profiles {
		p.Caps.Checkpoint = pol
		out[i] = p
	}
	return out
}

// TestGridCheckpointDifferential is the differential replay harness: it
// runs every Table II bomb through all four tool profiles twice — once
// with the checkpointing scheduler and once re-executing every round
// from _start — and requires byte-identical outcomes, down to round
// counts and solver-query/cache counters. The two crypto bombs run in a
// second grid with a tighter conflict budget (their conflict-bounded
// queries would otherwise dominate the test), which is fine here: the
// assertion is on/off equivalence under equal budgets, not agreement
// with the paper. Budgets bind on deterministic quantities (rounds,
// conflicts), never wall clock, exactly as in the parallel-vs-sequential
// test above.
func TestGridCheckpointDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is slow; run without -short")
	}
	var fast, crypto []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
		p.Caps.SolverConflicts = 192
		crypto = append(crypto, p)
	}
	var rows, cryptoRows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			cryptoRows = append(cryptoRows, b)
			continue
		}
		rows = append(rows, b)
	}

	on := runGrid(withCheckpoint(fast, core.CheckpointAuto), rows, 0, true)
	off := runGrid(withCheckpoint(fast, core.CheckpointOff), rows, 0, true)
	resumes, skipped := diffGrids(t, on, off)

	onC := runGrid(withCheckpoint(crypto, core.CheckpointAuto), cryptoRows, 0, true)
	offC := runGrid(withCheckpoint(crypto, core.CheckpointOff), cryptoRows, 0, true)
	rc, sc := diffGrids(t, onC, offC)
	resumes += rc
	skipped += sc

	// The equivalence above would hold trivially if checkpointing never
	// engaged; require that the grid actually resumed rounds and skipped
	// re-executing shared prefixes.
	if resumes == 0 || skipped == 0 {
		t.Errorf("checkpointing never engaged across the grid: resumes=%d skipped=%d", resumes, skipped)
	}
}

func TestGridParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("grid comparison is slow; run without -short")
	}
	var fast []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
	}
	var rows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			continue
		}
		rows = append(rows, b)
	}
	seq := runGrid(fast, rows, 1, true)
	par := runGrid(fast, rows, 3, true)
	if len(seq.Tools) != len(par.Tools) || len(seq.Rows) != len(par.Rows) {
		t.Fatalf("grid shapes differ: %d/%d tools, %d/%d rows",
			len(seq.Tools), len(par.Tools), len(seq.Rows), len(par.Rows))
	}
	for _, b := range seq.Rows {
		for _, tool := range seq.Tools {
			s, p := seq.Cell(b.Name, tool), par.Cell(b.Name, tool)
			if s == nil || p == nil {
				t.Fatalf("%s/%s: missing cell (seq %v, par %v)", tool, b.Name, s != nil, p != nil)
			}
			if s.Bomb != b.Name || s.Tool != tool || p.Bomb != b.Name || p.Tool != tool {
				t.Errorf("%s/%s: cell assembled into the wrong slot", tool, b.Name)
			}
			if s.Got != p.Got || s.Mechanical != p.Mechanical {
				t.Errorf("%s/%s: workers=1 %s (mech %s), workers=3 %s (mech %s)",
					tool, b.Name, s.Got, s.Mechanical, p.Got, p.Mechanical)
			}
		}
	}
}
