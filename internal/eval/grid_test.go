package eval

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/tools"
)

// TestGridParallelMatchesSequential runs the Table II grid through the
// worker pool at two worker counts and requires cell-for-cell identical
// labels. Budgets are reduced to keep the test fast, but the wall-clock
// limits are raised well past what the included bombs need, so that CPU
// sharing between concurrent cells cannot flip a verdict: the binding
// bounds (round cap, conflict budget) are independent of scheduling.
// The two crypto bombs are excluded — without a wall-clock ceiling
// their conflict-bounded queries run for minutes.
func TestGridParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("grid comparison is slow; run without -short")
	}
	var fast []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
	}
	var rows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			continue
		}
		rows = append(rows, b)
	}
	seq := runGrid(fast, rows, 1)
	par := runGrid(fast, rows, 3)
	if len(seq.Tools) != len(par.Tools) || len(seq.Rows) != len(par.Rows) {
		t.Fatalf("grid shapes differ: %d/%d tools, %d/%d rows",
			len(seq.Tools), len(par.Tools), len(seq.Rows), len(par.Rows))
	}
	for _, b := range seq.Rows {
		for _, tool := range seq.Tools {
			s, p := seq.Cell(b.Name, tool), par.Cell(b.Name, tool)
			if s == nil || p == nil {
				t.Fatalf("%s/%s: missing cell (seq %v, par %v)", tool, b.Name, s != nil, p != nil)
			}
			if s.Bomb != b.Name || s.Tool != tool || p.Bomb != b.Name || p.Tool != tool {
				t.Errorf("%s/%s: cell assembled into the wrong slot", tool, b.Name)
			}
			if s.Got != p.Got || s.Mechanical != p.Mechanical {
				t.Errorf("%s/%s: workers=1 %s (mech %s), workers=3 %s (mech %s)",
					tool, b.Name, s.Got, s.Mechanical, p.Got, p.Mechanical)
			}
		}
	}
}
