package eval

import (
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/tools"
)

// withSearch returns the profiles with the given search strategy and
// fuzz setting, with sequential engines: both strategies are fully
// deterministic at Workers=1, so any divergence the test reports is a
// real semantic difference, not scheduling noise.
func withSearch(profiles []tools.Profile, s core.SearchStrategy, fuzz bool) []tools.Profile {
	out := make([]tools.Profile, len(profiles))
	for i, p := range profiles {
		p.Caps.Search = s
		p.Caps.Fuzz = fuzz
		p.Caps.FuzzSeed = 42
		p.Caps.Workers = 1
		out[i] = p
	}
	return out
}

// diffCoverageLabels requires every coverage cell to be at least as
// strong as its generational counterpart: identical labels, or one of
// the two permitted strengthenings — the coverage run detonated a bomb
// the baseline left at an error label (mechanical OK, the strongest
// cell), or the baseline gave up with an exhausted budget (mechanical E,
// VerdictBudget) while the coverage run exhausted the frontier and
// proved unreachability. A coverage cell weaker than generational in
// any other way fails the test: reordering solver attention by uncovered
// flip targets must never lose a result the baseline had.
func diffCoverageLabels(t *testing.T, cov, gen *Grid) (solved int) {
	t.Helper()
	for _, b := range cov.Rows {
		for _, tool := range cov.Tools {
			cc, cg := cov.Cell(b.Name, tool), gen.Cell(b.Name, tool)
			if cc == nil || cg == nil {
				t.Fatalf("%s/%s: missing cell (coverage %v, generational %v)", tool, b.Name, cc != nil, cg != nil)
			}
			if cc.Got != cg.Got || cc.Mechanical != cg.Mechanical {
				stronger := (cc.Mechanical == bombs.OK && cg.Mechanical != bombs.OK) ||
					(cg.Mechanical == bombs.E &&
						cg.Outcome.Verdict == core.VerdictBudget &&
						cc.Outcome.Verdict == core.VerdictUnreachable)
				if stronger {
					t.Logf("%s/%s: coverage strictly stronger: %s (mech %s) vs generational %s (mech %s)",
						tool, b.Name, cc.Got, cc.Mechanical, cg.Got, cg.Mechanical)
				} else {
					t.Errorf("%s/%s: coverage weakens the cell: coverage %s (mech %s), generational %s (mech %s)",
						tool, b.Name, cc.Got, cc.Mechanical, cg.Got, cg.Mechanical)
				}
			}
			if cc.Outcome.Stats.CoveredEdges == 0 {
				t.Errorf("%s/%s: coverage run recorded no covered edges", tool, b.Name)
			}
			if cc.Mechanical == bombs.OK {
				solved++
			}
		}
	}
	return solved
}

// TestGridCoverageDifferential runs the Table II grid (minus the two
// crypto bombs, whose conflict-bounded queries dominate the runtime as
// in the other differentials) under the generational baseline and under
// SearchCoverage with the hybrid fuzz stage, and asserts no cell label
// weakens — the ISSUE 7 acceptance harness.
func TestGridCoverageDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is slow; run without -short")
	}
	var fast []tools.Profile
	for _, p := range tools.TableII() {
		p = tools.FastBudgets(p)
		p.Caps.TotalBudget = 2 * time.Minute
		p.Caps.SolverTimeout = 10 * time.Second
		fast = append(fast, p)
	}
	var rows []*bombs.Bomb
	for _, b := range bombs.TableII() {
		if b.Name == "sha1" || b.Name == "aes" {
			continue
		}
		rows = append(rows, b)
	}

	gen := runGrid(withSearch(fast, core.SearchGenerational, false), rows, 0, true)
	cov := runGrid(withSearch(fast, core.SearchCoverage, true), rows, 0, true)
	solved := diffCoverageLabels(t, cov, gen)

	// The comparison would hold trivially on an all-error grid; require
	// that the coverage grid actually detonated bombs.
	if solved == 0 {
		t.Error("coverage grid solved no cells")
	}
}
