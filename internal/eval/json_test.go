package eval

import (
	"encoding/json"
	"testing"

	"repro/internal/bombs"
	"repro/internal/tools"
)

// TestGridJSONShape runs a reduced grid and checks the JSON report is
// structurally faithful: every cell present, aggregates consistent, and
// the document round-trips through encoding/json.
func TestGridJSONShape(t *testing.T) {
	profiles := []tools.Profile{
		tools.FastBudgets(tools.BAP()),
		tools.FastBudgets(tools.Triton()),
	}
	var rows []*bombs.Bomb
	for _, name := range []string{"arglen", "jump"} {
		b, ok := bombs.ByName(name)
		if !ok {
			t.Fatalf("no bomb %s", name)
		}
		rows = append(rows, b)
	}
	g := runGrid(profiles, rows, 2, true)

	doc := ToJSON(g)
	if len(doc.Tools) != 2 || len(doc.Rows) != 2 {
		t.Fatalf("report shape %d tools x %d rows, want 2x2", len(doc.Tools), len(doc.Rows))
	}
	if doc.Stats.Cells != 4 {
		t.Errorf("stats over %d cells, want 4", doc.Stats.Cells)
	}
	// Any exploration builds sym terms, so the interning aggregates must
	// be populated and internally consistent.
	if doc.Stats.ArenaNodes == 0 {
		t.Error("stats report zero arena nodes after a grid run")
	}
	if doc.Stats.InternHits+doc.Stats.InternMisses == 0 {
		t.Error("stats report zero intern lookups after a grid run")
	} else if r := doc.Stats.InternHitRate; r < 0 || r > 1 {
		t.Errorf("intern hit rate %v outside [0,1]", r)
	}
	for _, row := range doc.Rows {
		if len(row.Cells) != 2 {
			t.Errorf("row %s has %d cells, want 2", row.Bomb, len(row.Cells))
		}
		for tool, cell := range row.Cells {
			got := g.Cell(row.Bomb, tool)
			if got == nil {
				t.Fatalf("JSON invented cell %s/%s", row.Bomb, tool)
			}
			if cell.Outcome != label(got.Got) || cell.Rounds != got.Outcome.Rounds {
				t.Errorf("%s/%s: JSON %s/%d, grid %s/%d",
					row.Bomb, tool, cell.Outcome, cell.Rounds, label(got.Got), got.Outcome.Rounds)
			}
		}
	}
	match, total := g.Matches()
	if doc.Match != match || doc.Total != total {
		t.Errorf("agreement %d/%d, grid says %d/%d", doc.Match, doc.Total, match, total)
	}

	raw, err := MarshalGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	var back GridJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Total != doc.Total || len(back.Rows) != len(doc.Rows) {
		t.Error("round-tripped report lost fields")
	}
}
