package eval

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenGrid hand-builds a small deterministic grid spanning both corpus
// kinds: one paper row with a comparison column and one extended row
// carrying the category/taxonomy fields. No engine runs, so the marshaled
// report is byte-stable.
func goldenGrid(t *testing.T) *Grid {
	t.Helper()
	jump, ok := bombs.ByName("jump")
	if !ok {
		t.Fatal("no bomb jump")
	}
	stwrite, ok := bombs.ByName("stwrite")
	if !ok {
		t.Fatal("no bomb stwrite")
	}

	mkOutcome := func(v core.Verdict, rounds, queries int) *core.Outcome {
		out := &core.Outcome{Verdict: v, Rounds: rounds}
		out.Stats.Rounds = rounds
		out.Stats.SolverQueries = queries
		out.Stats.CacheHits = 7
		out.Stats.CacheMisses = 3
		out.Stats.InternHits = 100
		out.Stats.InternMisses = 50
		out.Stats.ArenaNodes = 50
		out.Stats.CoveredEdges = 12
		out.Stats.CoveredBlocks = 9
		out.Stats.WallTime = 125 * time.Millisecond
		out.Stats.NewEdgesPerRound = []int{8, 3, 1}
		return out
	}

	g := &Grid{
		Title:    "GOLDEN",
		HasPaper: false,
		Tools:    []string{"T1", "T2"},
		Rows:     []*bombs.Bomb{jump, stwrite},
		Cells: map[string]map[string]*Cell{
			"jump": {
				"T1": {Bomb: "jump", Tool: "T1", Mechanical: bombs.OK, Got: bombs.OK,
					Outcome: mkOutcome(core.VerdictSolved, 3, 5)},
				"T2": {Bomb: "jump", Tool: "T2", Mechanical: bombs.Es1, Got: bombs.Es1,
					Outcome: mkOutcome(core.VerdictUnreachable, 2, 2)},
			},
			"stwrite": {
				"T1": {Bomb: "stwrite", Tool: "T1", Mechanical: bombs.Es3, Got: bombs.Es3,
					Outcome: mkOutcome(core.VerdictUnreachable, 4, 6)},
				"T2": {Bomb: "stwrite", Tool: "T2", Mechanical: bombs.OK, Got: bombs.OK,
					Overridden: true, Note: "documented idiosyncrasy",
					Outcome: mkOutcome(core.VerdictSolved, 5, 9)},
			},
		},
	}
	return g
}

// TestGridJSONGolden pins the evaltable -json schema against a golden
// file: any field rename, reorder, or serialization change to the grid
// report — including the category and taxonomy row fields the extended
// corpus introduced — shows up as a readable diff. Regenerate with
// go test ./internal/eval -run TestGridJSONGolden -update.
func TestGridJSONGolden(t *testing.T) {
	raw, err := MarshalGrid(goldenGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	golden := filepath.Join("testdata", "grid_json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("grid JSON schema drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, raw, want)
	}

	// The extended row must carry its corpus metadata in the report.
	doc := ToJSON(goldenGrid(t))
	var found bool
	for _, row := range doc.Rows {
		if row.Bomb != "stwrite" {
			continue
		}
		found = true
		if row.Category != string(bombs.Extended) {
			t.Errorf("stwrite row category %q, want %q", row.Category, bombs.Extended)
		}
		if row.Taxonomy == "" {
			t.Error("stwrite row lost its taxonomy slug")
		}
	}
	if !found {
		t.Fatal("stwrite row missing from report")
	}
}
