// Package tools defines the evaluated concolic execution tools as
// capability profiles of the shared engine: BAP, Triton, Angr (with
// loaded libraries), Angr-NoLib, and the full-capability Reference
// configuration used for the extension study.
//
// Every Table II cell is produced by running the profile's engine; the
// handful of cells whose root cause the paper attributes to tool-specific
// bugs (rather than systematic capability gaps) carry a documented
// Override.
package tools

import (
	"time"

	"repro/internal/bombs"
	"repro/internal/core"
	"repro/internal/lift"
	"repro/internal/solver"
	"repro/internal/symexec"
)

// Override records a modeled tool idiosyncrasy for one bomb: the paper's
// observed outcome and why the mechanical capability model differs.
type Override struct {
	Outcome bombs.PaperOutcome
	Note    string
}

// Profile is one evaluated tool.
type Profile struct {
	Caps core.Capabilities
	// Overrides maps bomb name -> modeled idiosyncrasy. Keep this small:
	// every entry is a documented deviation between the systematic
	// capability model and the historical tool's recorded behaviour.
	Overrides map[string]Override
}

// Name returns the profile's display name.
func (p Profile) Name() string { return p.Caps.Name }

// Shared exploration budgets, standing in for the paper's ten-minute
// per-task timeout, scaled to the simulator.
const (
	stdConflicts = 40_000
	stdTimeout   = 2 * time.Second
	stdRounds    = 40
	stdBudget    = 15 * time.Second
)

// BAP models the CMU Binary Analysis Platform: a Pin-based tracer with
// solid multi-thread tracing and exception transparency, but no symbolic
// memory, no symbolic jumps, no floating-point or push/pop lifting, no
// covert-channel tracking, and no input-length growth (its single-path
// concolic mode only re-solves the observed path shape).
func BAP() Profile {
	return Profile{
		Caps: core.Capabilities{
			Name: "BAP",
			Sym: symexec.Options{
				Spec: symexec.Spec{
					ArgvNUL: true, // terminator traced, but see GrowArgv
					Files:   symexec.ChanConcrete,
					Pipes:   symexec.ChanConcrete,
					Kv:      symexec.ChanConcrete,
					// Pin serializes threads into one trace.
					TrackThreads: true,
					TrackProcs:   false, // Pin follows the parent only
				},
				Mem:             symexec.MemConcrete,
				Jump:            symexec.JumpNone,
				Lift:            lift.Options{NoFloat: true, NoPushPop: true},
				Exc:             symexec.ExcTrace, // Pin traces handlers
				ContextualStage: symexec.StageEs2,
				ModelDivFault:   true,
			},
			FP:              solver.FPNone,
			SolverConflicts: stdConflicts,
			SolverTimeout:   stdTimeout,
			MaxRounds:       stdRounds,
			TotalBudget:     stdBudget,
			GrowArgv:        false,
			WebSyscall:      true,
		},
		Overrides: map[string]Override{
			"srand": {Outcome: bombs.Es2,
				Note: "BAP's IL mishandles the PRNG's 64-bit multiply chain and emits wrong seed models (paper: Es2); the capability model yields a solver timeout (E) instead"},
			"aes": {Outcome: bombs.Es2,
				Note: "BAP produced wrong key models on AES (paper: Es2); the capability model attributes the failure to unmodeled S-box addressing (Es3)"},
		},
	}
}

// Triton models the QuarksLab dynamic symbolic executor: SSA lifting with
// good push/pop handling but no floating-point instruction support, a
// fixed-length symbolic argv (no terminator reasoning), single-thread
// traces, no symbolic memory or jumps, and no exception-dispatch tracing.
func Triton() Profile {
	return Profile{
		Caps: core.Capabilities{
			Name: "Triton",
			Sym: symexec.Options{
				Spec: symexec.Spec{
					ArgvNUL: false, // fixed-length symbolic argv: Es0
					Files:   symexec.ChanConcrete,
					Pipes:   symexec.ChanConcrete,
					Kv:      symexec.ChanConcrete,
				},
				Mem:             symexec.MemConcrete,
				Jump:            symexec.JumpNone,
				Lift:            lift.Options{NoFloat: true},
				Exc:             symexec.ExcEs1, // handler instructions untraced
				ContextualStage: symexec.StageEs3,
				ModelDivFault:   true,
			},
			FP:              solver.FPNone,
			SolverConflicts: stdConflicts,
			SolverTimeout:   stdTimeout,
			MaxRounds:       stdRounds,
			TotalBudget:     stdBudget,
			GrowArgv:        false,
			WebSyscall:      true,
		},
		Overrides: map[string]Override{
			"aes": {Outcome: bombs.Es2,
				Note: "Triton produced wrong key models on AES (paper: Es2); the capability model attributes the failure to unmodeled S-box addressing (Es3)"},
		},
	}
}

// Angr models angr with dynamic libraries loaded into SimuVEX: variable
// argv lengths and one-level symbolic memory work, but emulation aborts
// on network syscalls, signal dispatch and symbolic floating-point;
// syscall results are simulated (partial successes), and covert channels
// and child processes are not tracked.
func Angr() Profile {
	return Profile{
		Caps: core.Capabilities{
			Name: "Angr",
			Sym: symexec.Options{
				Spec: symexec.Spec{
					ArgvNUL: true, ArgvPad: 16,
					Pid:   symexec.SourceSim, // simulated getpid: P
					Stat:  symexec.SourceSim, // simulated stat: P
					Env:   symexec.SourceSim, // simulated getenv: P
					Files: symexec.ChanConcrete,
					Pipes: symexec.ChanConcrete,
					Kv:    symexec.ChanUnconstrained, // simulated kernel store: P
				},
				Mem:             symexec.MemOneLevel,
				Jump:            symexec.JumpConcretize,
				Exc:             symexec.ExcCrash,
				ContextualStage: symexec.StageEs2,
				ModelDivFault:   true,
				FloatCrash:      true,
			},
			FP:              solver.FPNone,
			SolverConflicts: stdConflicts,
			SolverTimeout:   stdTimeout,
			MaxRounds:       stdRounds,
			TotalBudget:     stdBudget,
			GrowArgv:        true,
			WebSyscall:      false, // socket emulation crashes: E
		},
		Overrides: map[string]Override{
			"file": {Outcome: bombs.E,
				Note: "angr with loaded libraries crashed emulating the buffered file round-trip (paper: E); the capability model degrades to plain propagation loss (Es2)"},
			"aes": {Outcome: bombs.Es2,
				Note: "angr produced wrong key models on AES (paper: Es2); the capability model fails at nested S-box addressing (Es3) or exhausts the solver (E)"},
		},
	}
}

// AngrNoLib models angr without loading dynamic libraries: known libc
// functions run as precise simprocedures (equivalent to tracing our guest
// libc), unknown ones (sin, pow, srand, rand, sha1, aes) return
// unconstrained summaries; fork and pipes are modeled, exceptions and
// divide faults are not, and the solver has no floating-point theory.
func AngrNoLib() Profile {
	return Profile{
		Caps: core.Capabilities{
			Name: "Angr-NoLib",
			Sym: symexec.Options{
				Spec: symexec.Spec{
					ArgvNUL: true, ArgvPad: 16,
					Pid:   symexec.SourceSim,
					Stat:  symexec.SourceSim,
					Env:   symexec.SourceSim,
					Files: symexec.ChanConcrete,
					Pipes: symexec.ChanShadow, // SimFile models pipes precisely
					Kv:    symexec.ChanUnconstrained,
					// Fork's simprocedure explores the child, but the exit
					// status is not propagated back through waitpid.
					TrackProcs: true,
				},
				Mem:             symexec.MemOneLevel,
				Jump:            symexec.JumpConcretize,
				Exc:             symexec.ExcEs2,
				ContextualStage: symexec.StageEs2,
				ModelDivFault:   false, // fault paths invisible: Es2
				Externals: map[string]symexec.ExtKind{
					"fsin":            symexec.ExtUnconstrained,
					"fpowi":           symexec.ExtUnconstrained,
					"srand":           symexec.ExtUnconstrained,
					"rand":            symexec.ExtUnconstrained,
					"sha1":            symexec.ExtUnconstrained,
					"aes128_encrypt":  symexec.ExtUnconstrained,
					"sha_store_be32":  symexec.ExtUnconstrained,
					"aes_subbytes":    symexec.ExtUnconstrained,
					"aes_shiftrows":   symexec.ExtUnconstrained,
					"aes_mixcolumns":  symexec.ExtUnconstrained,
					"aes_xtime":       symexec.ExtUnconstrained,
					"aes_addroundkey": symexec.ExtUnconstrained,
				},
			},
			FP:              solver.FPNone, // FP constraints: Es3
			SolverConflicts: stdConflicts,
			SolverTimeout:   stdTimeout,
			MaxRounds:       stdRounds,
			TotalBudget:     stdBudget,
			GrowArgv:        true,
			WebSyscall:      false,
		},
	}
}

// Reference is the full-capability engine: every source declared, every
// channel shadowed, full symbolic memory and jump enumeration, contextual
// modeling, fault branches, and the stochastic FP solver. It is the
// extension column showing how far the framework's capabilities reach.
func Reference() Profile {
	return Profile{
		Caps: core.Capabilities{
			Name: "Reference",
			Sym: symexec.Options{
				Spec: symexec.Spec{
					ArgvNUL: true, ArgvPad: 16,
					Time:  symexec.SourceDeclared,
					Pid:   symexec.SourceDeclared,
					Stat:  symexec.SourceDeclared,
					Env:   symexec.SourceDeclared,
					Web:   true,
					Files: symexec.ChanShadow, Pipes: symexec.ChanShadow,
					Kv:           symexec.ChanShadow,
					Wait:         symexec.ChanShadow, // exit-status covert channel
					TrackThreads: true, TrackProcs: true,
				},
				Mem:           symexec.MemFull,
				Jump:          symexec.JumpEnum,
				Exc:           symexec.ExcTrace,
				ContextualFS:  true,
				ContextualSys: true,
				ModelDivFault: true,
				MemWrites:     true, // weak-update symbolic stores
			},
			// Iterative input lengthening is a deep chain; DFS reaches the
			// required length fast where breadth-first spreads the budget.
			Search:          core.SearchDFS,
			FP:              solver.FPSearch,
			FPIterations:    200_000,
			SolverConflicts: stdConflicts,
			SolverTimeout:   stdTimeout,
			MaxRounds:       250,
			TotalBudget:     120 * time.Second,
			GrowArgv:        true,
			WebSyscall:      true,
		},
	}
}

// TableII returns the four profiles of the paper's Table II, in column
// order.
func TableII() []Profile {
	return []Profile{BAP(), Triton(), Angr(), AngrNoLib()}
}

// TableIIExtended returns the five columns of Table II-extended: the four
// paper profiles plus the reference engine, which is a first-class column
// there (the extended corpus has no paper row to compare against, so the
// reference serves as the capability ceiling).
func TableIIExtended() []Profile {
	return []Profile{BAP(), Triton(), Angr(), AngrNoLib(), Reference()}
}

// Names lists every selectable profile name, in Table II order plus the
// reference engine.
func Names() []string {
	return []string{"bap", "triton", "angr", "angr-nolib", "reference"}
}

// ByName returns the profile selected by its CLI/service name.
func ByName(name string) (Profile, bool) {
	switch name {
	case "bap":
		return BAP(), true
	case "triton":
		return Triton(), true
	case "angr":
		return Angr(), true
	case "angr-nolib":
		return AngrNoLib(), true
	case "reference":
		return Reference(), true
	}
	return Profile{}, false
}

// FastBudgets returns a copy of the profile with sharply reduced solver
// and exploration budgets, for benchmarks and smoke tests. Outcomes that
// depend on budget exhaustion (E) are unaffected in direction — they
// exhaust sooner — but cells requiring deep exploration may degrade.
func FastBudgets(p Profile) Profile {
	p.Caps.SolverConflicts = 8_000
	p.Caps.SolverTimeout = 300 * time.Millisecond
	p.Caps.TotalBudget = 4 * time.Second
	p.Caps.MaxRounds = 12
	p.Caps.FPIterations = 20_000
	return p
}
