package tools

import (
	"testing"

	"repro/internal/bombs"
	"repro/internal/symexec"
)

func TestTableIIProfiles(t *testing.T) {
	ps := TableII()
	if len(ps) != 4 {
		t.Fatalf("TableII profiles = %d, want 4", len(ps))
	}
	want := []string{"BAP", "Triton", "Angr", "Angr-NoLib"}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("profile %d = %s, want %s", i, p.Name(), want[i])
		}
	}
}

func TestByNameCoversEveryProfile(t *testing.T) {
	want := map[string]string{
		"bap": "BAP", "triton": "Triton", "angr": "Angr",
		"angr-nolib": "Angr-NoLib", "reference": "Reference",
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %d entries", names, len(want))
	}
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			t.Fatalf("ByName(%q) missing", n)
		}
		if p.Name() != want[n] {
			t.Errorf("ByName(%q).Name() = %s, want %s", n, p.Name(), want[n])
		}
	}
	if _, ok := ByName("klee"); ok {
		t.Error("ByName accepted an unknown tool")
	}
}

func TestOverridesReferenceRealBombs(t *testing.T) {
	for _, p := range TableII() {
		for name, ov := range p.Overrides {
			if _, ok := bombs.ByName(name); !ok {
				t.Errorf("%s override references unknown bomb %q", p.Name(), name)
			}
			if ov.Note == "" {
				t.Errorf("%s/%s override lacks a justification note", p.Name(), name)
			}
			if ov.Outcome == "" {
				t.Errorf("%s/%s override lacks an outcome", p.Name(), name)
			}
		}
	}
}

func TestProfileCapabilityShape(t *testing.T) {
	bap := BAP()
	if !bap.Caps.Sym.Lift.NoFloat || !bap.Caps.Sym.Lift.NoPushPop {
		t.Error("BAP must gate FP and push/pop lifting")
	}
	if bap.Caps.GrowArgv {
		t.Error("BAP must not grow inputs")
	}
	tr := Triton()
	if tr.Caps.Sym.Spec.ArgvNUL {
		t.Error("Triton models a fixed-length argv")
	}
	if tr.Caps.Sym.Exc != symexec.ExcEs1 {
		t.Error("Triton cannot trace exception dispatch")
	}
	an := Angr()
	if an.Caps.WebSyscall {
		t.Error("Angr emulation must crash on network IO")
	}
	if an.Caps.Sym.Mem != symexec.MemOneLevel {
		t.Error("Angr models one-level symbolic memory")
	}
	nl := AngrNoLib()
	if !nl.Caps.Sym.Spec.TrackProcs {
		t.Error("Angr-NoLib models fork")
	}
	if nl.Caps.Sym.Externals["sha1"] != symexec.ExtUnconstrained {
		t.Error("Angr-NoLib summarizes unknown externals")
	}
	ref := Reference()
	if len(ref.Overrides) != 0 {
		t.Error("the reference profile must not need overrides")
	}
	if ref.Caps.Sym.Mem != symexec.MemFull || ref.Caps.Sym.Jump != symexec.JumpEnum {
		t.Error("reference profile must have full memory/jump models")
	}
}

func TestFastBudgetsReducesLimits(t *testing.T) {
	slow := Reference()
	fast := FastBudgets(Reference())
	if fast.Caps.SolverTimeout >= slow.Caps.SolverTimeout {
		t.Error("fast budgets should reduce the solver timeout")
	}
	if fast.Caps.TotalBudget >= slow.Caps.TotalBudget {
		t.Error("fast budgets should reduce the task budget")
	}
}
