package trace

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAppendAssignsIndices(t *testing.T) {
	var tr Trace
	tr.Append(Entry{PC: 0x1000})
	tr.Append(Entry{PC: 0x1004})
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Entries[0].Index != 0 || tr.Entries[1].Index != 1 {
		t.Errorf("indices = %d, %d", tr.Entries[0].Index, tr.Entries[1].Index)
	}
}

func TestSysnoNames(t *testing.T) {
	tests := []struct {
		n    Sysno
		want string
	}{
		{SysExit, "exit"},
		{SysRead, "read"},
		{SysKvPut, "kv_put"},
		{SysKvGet, "kv_get"},
		{Sysno(99), "sys(99)"},
	}
	for _, tt := range tests {
		if got := tt.n.String(); got != tt.want {
			t.Errorf("Sysno(%d).String() = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{
		Index: 3, PID: 1, TID: 2, PC: 0x1010,
		Instr: isa.Instr{Op: isa.OpJne, Mode: isa.ModeI, Size: 8, Imm: 0x1040},
		Taken: true,
	}
	s := e.String()
	for _, want := range []string{"jne", "taken=true", "0x001010"} {
		if !strings.Contains(s, want) {
			t.Errorf("entry string %q missing %q", s, want)
		}
	}
	e.Sys = &SysEvent{Num: SysTime, Ret: 7}
	e.Tainted = true
	s = e.String()
	if !strings.Contains(s, "sys=time") || !strings.Contains(s, "*") {
		t.Errorf("entry string %q missing syscall/taint markers", s)
	}
	e.Sys = nil
	e.Exc = &ExcEvent{Kind: "div0"}
	if !strings.Contains(e.String(), "exc=div0") {
		t.Error("exception marker missing")
	}
}

func TestTaintedCountAndDump(t *testing.T) {
	var tr Trace
	tr.Append(Entry{Instr: isa.Instr{Op: isa.OpNop, Mode: isa.ModeNone, Size: 8}})
	tr.Append(Entry{Instr: isa.Instr{Op: isa.OpNop, Mode: isa.ModeNone, Size: 8}, Tainted: true})
	if tr.TaintedCount() != 1 {
		t.Errorf("TaintedCount = %d", tr.TaintedCount())
	}
	full := tr.Dump(false)
	tainted := tr.Dump(true)
	if strings.Count(full, "\n") != 2 || strings.Count(tainted, "\n") != 1 {
		t.Errorf("dump lines: full=%d tainted=%d",
			strings.Count(full, "\n"), strings.Count(tainted, "\n"))
	}
}
