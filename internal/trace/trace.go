// Package trace defines the instruction-trace records produced by concrete
// execution and consumed by the taint engine and the symbolic executor.
// This is the "instruction tracing" stage of the paper's Figure 1 framework
// (the role Intel Pin plays for BAP and Triton).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Entry describes one executed instruction together with the concrete
// values the symbolic stage needs: operand values before execution,
// effective addresses, transferred memory values and branch outcomes.
type Entry struct {
	Index int    // position in the trace
	TID   int    // executing thread context
	PID   int    // owning process
	PC    uint64 // address of the instruction
	Instr isa.Instr

	V1 uint64 // value of R1 before execution (when the mode uses R1)
	V2 uint64 // value of R2 before execution (when the mode uses R2)

	Addr   uint64 // effective memory address for ld/st/push/pop
	MemVal uint64 // value loaded or stored, zero-extended

	Taken  bool   // outcome of a conditional jump
	NextPC uint64 // resolved successor pc (jumps, call, ret)

	Sys *SysEvent // set when Instr is a syscall
	Exc *ExcEvent // set when the instruction faulted

	Tainted bool // marked later by the taint engine
}

// String renders a compact single-line description for debug dumps.
func (e *Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6d p%d/t%d %#06x  %-24s", e.Index, e.PID, e.TID, e.PC, e.Instr.String())
	if e.Instr.Op.IsCondJump() {
		fmt.Fprintf(&b, " taken=%v", e.Taken)
	}
	if e.Sys != nil {
		fmt.Fprintf(&b, " sys=%s ret=%#x", e.Sys.Num, e.Sys.Ret)
	}
	if e.Exc != nil {
		fmt.Fprintf(&b, " exc=%s", e.Exc.Kind)
	}
	if e.Tainted {
		b.WriteString(" *")
	}
	return b.String()
}

// Sysno identifies a guest system call.
type Sysno uint64

// Guest system calls. See package gos for semantics.
const (
	SysExit         Sysno = 1
	SysRead         Sysno = 2
	SysWrite        Sysno = 3
	SysOpen         Sysno = 4
	SysClose        Sysno = 5
	SysTime         Sysno = 6
	SysGetpid       Sysno = 7
	SysFork         Sysno = 8
	SysPipe         Sysno = 9
	SysThreadCreate Sysno = 10
	SysThreadJoin   Sysno = 11
	SysWebGet       Sysno = 12
	SysSigHandler   Sysno = 13
	SysUnlink       Sysno = 14
	SysSleep        Sysno = 15
	SysWait         Sysno = 16
	SysKvPut        Sysno = 17
	SysKvGet        Sysno = 18
	SysStat         Sysno = 19
	SysGetenv       Sysno = 20
)

var sysNames = map[Sysno]string{
	SysExit: "exit", SysRead: "read", SysWrite: "write", SysOpen: "open",
	SysClose: "close", SysTime: "time", SysGetpid: "getpid", SysFork: "fork",
	SysPipe: "pipe", SysThreadCreate: "thread_create", SysThreadJoin: "thread_join",
	SysWebGet: "web_get", SysSigHandler: "sighandler", SysUnlink: "unlink",
	SysSleep: "sleep", SysWait: "wait",
	SysKvPut: "kv_put", SysKvGet: "kv_get",
	SysStat: "stat", SysGetenv: "getenv",
}

// String returns the syscall name.
func (s Sysno) String() string {
	if n, ok := sysNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sys(%d)", uint64(s))
}

// SysEvent records the semantic effect of one system call, so that the
// symbolic stage can model data that crossed the process boundary.
type SysEvent struct {
	Num  Sysno
	Args [5]uint64
	Ret  uint64

	// Addr/Data describe a guest buffer involved in the call: the bytes
	// written by the guest (write) or delivered to the guest (read,
	// web_get, pipe reads).
	Addr uint64
	Data []byte

	// Path is the file path for open/unlink, or the URL for web_get.
	Path string

	// Obj identifies the kernel object involved: file path for reads and
	// writes through a file fd, or "pipe:<id>" for pipe ends.
	Obj string

	// Off is the object byte offset at which Data starts, for file IO.
	Off uint64

	// NewID carries the created identity: child pid for fork, tid for
	// thread_create, and the two pipe fds packed lo/hi for pipe.
	NewID uint64
}

// ExcEvent records a hardware exception raised by an instruction.
type ExcEvent struct {
	Kind      string // "div0", "badpc"
	Handled   bool   // a registered guest handler was invoked
	HandlerPC uint64 // entry point of the handler, if handled
	ResumePC  uint64 // address pushed for the handler to return to
}

// Trace is an append-only sequence of entries for one machine run.
type Trace struct {
	Entries []Entry
}

// Append adds an entry, assigning its index.
func (t *Trace) Append(e Entry) {
	e.Index = len(t.Entries)
	t.Entries = append(t.Entries, e)
}

// Len returns the number of recorded entries.
func (t *Trace) Len() int { return len(t.Entries) }

// PrefixCopy returns a new trace seeded with value copies of the first n
// entries, taint marks cleared. The taint stage mutates entries in place,
// so a resumed run stitched onto a shared prefix must not alias the
// parent's entry slice; the Sys/Exc event records are immutable after
// recording and stay shared.
func (t *Trace) PrefixCopy(n int) *Trace {
	if n > len(t.Entries) {
		n = len(t.Entries)
	}
	c := &Trace{Entries: make([]Entry, n, n+64)}
	copy(c.Entries, t.Entries[:n])
	for i := range c.Entries {
		c.Entries[i].Tainted = false
	}
	return c
}

// TaintedCount returns how many entries the taint stage marked.
func (t *Trace) TaintedCount() int {
	n := 0
	for i := range t.Entries {
		if t.Entries[i].Tainted {
			n++
		}
	}
	return n
}

// Dump renders the trace (or only its tainted entries) for debugging.
func (t *Trace) Dump(onlyTainted bool) string {
	var b strings.Builder
	for i := range t.Entries {
		e := &t.Entries[i]
		if onlyTainted && !e.Tainted {
			continue
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
