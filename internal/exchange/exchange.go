// Package exchange is an in-process learned-clause exchange for
// portfolio SAT solving. Workers racing the same constraint system
// publish clauses they learn and pull clauses published by their peers.
//
// Soundness rests on the bitblast encoding being a deterministic
// function of constraint structure: two encoders fed the identical
// constraint system allocate identical CNF variable numbers, so a clause
// learned by one solver (a []sat.Lit) is implied by — and directly
// addable to — every peer encoding the same system. Pools are therefore
// keyed by the constraint system's canonical key (intern ids, PR 3):
// clauses never travel between different systems.
//
// The exchange is lock-sharded by key so concurrent queries on different
// systems do not contend, and admission-filtered: only short clauses
// with low LBD (literal block distance) are admitted, each pool is
// capacity-capped, and duplicates are dropped.
package exchange

import (
	"sync"
	"sync/atomic"

	"repro/internal/sat"
)

// Admission limits. Clauses longer than MaxLen or with LBD above MaxLBD
// are glue-poor and rarely help peers; they are rejected at publish time.
const (
	MaxLen = 8
	MaxLBD = 4
	// MaxPerPool caps one system's pool; beyond it new publications are
	// dropped (oldest-retained: the earliest clauses are usually the
	// most fundamental ones).
	MaxPerPool = 512
)

const shardCount = 16

// Stats counts exchange traffic.
type Stats struct {
	Published int64 // clauses admitted into a pool
	Rejected  int64 // clauses refused by admission filtering
	Pulled    int64 // clauses handed to pulling workers
}

// Exchange is a lock-sharded clause exchange. The zero value is not
// usable; call New.
type Exchange struct {
	shards    [shardCount]shard
	published atomic.Int64
	rejected  atomic.Int64
	pulled    atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	pools map[string]*pool
}

// pool holds the admitted clauses for one constraint system. Clauses are
// append-only (capped), so a cursor index fully identifies what a worker
// has already seen.
type pool struct {
	clauses []entry
	seen    map[string]bool
}

// entry is one admitted clause with the id of the worker that published
// it, so pulls can skip a worker's own publications.
type entry struct {
	lits   []sat.Lit
	origin int
}

// New returns an empty exchange.
func New() *Exchange {
	e := &Exchange{}
	for i := range e.shards {
		e.shards[i].pools = make(map[string]*pool)
	}
	return e
}

func (e *Exchange) shard(key string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &e.shards[h%shardCount]
}

// Publish offers a clause learned for the system identified by key, by
// the worker identified by origin (any id unique within the racing
// group; pulls with the same origin skip it). Admission applies the
// size/LBD filter, per-pool capacity and deduplication; the clause is
// copied when admitted. Returns whether it was admitted.
func (e *Exchange) Publish(key string, origin int, lits []sat.Lit, lbd int) bool {
	if len(lits) == 0 || len(lits) > MaxLen || lbd > MaxLBD {
		e.rejected.Add(1)
		return false
	}
	sh := e.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p := sh.pools[key]
	if p == nil {
		p = &pool{seen: make(map[string]bool)}
		sh.pools[key] = p
	}
	if len(p.clauses) >= MaxPerPool {
		e.rejected.Add(1)
		return false
	}
	ck := clauseKey(lits)
	if p.seen[ck] {
		e.rejected.Add(1)
		return false
	}
	p.seen[ck] = true
	p.clauses = append(p.clauses, entry{lits: append([]sat.Lit(nil), lits...), origin: origin})
	e.published.Add(1)
	return true
}

// Pull returns the clauses admitted for key since the given cursor —
// skipping the puller's own publications — and the new cursor.
func (e *Exchange) Pull(key string, origin, cursor int) ([][]sat.Lit, int) {
	sh := e.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p := sh.pools[key]
	if p == nil || cursor >= len(p.clauses) {
		return nil, cursor
	}
	var out [][]sat.Lit
	for _, en := range p.clauses[cursor:] {
		if en.origin != origin {
			out = append(out, en.lits)
		}
	}
	e.pulled.Add(int64(len(out)))
	return out, len(p.clauses)
}

// Snapshot returns every clause currently pooled for key, for
// persistence. The inner slices are shared read-only.
func (e *Exchange) Snapshot(key string) [][]sat.Lit {
	cs, _ := e.Pull(key, -2, 0)
	return cs
}

// SeedOrigin is the origin id used for clauses seeded from persistence;
// every real worker sees them.
const SeedOrigin = -1

// Seed pre-populates the pool for key, bypassing the LBD filter (the
// clauses were admitted once already, e.g. by a previous process via the
// warm-start store) but keeping length, capacity and dedup checks.
func (e *Exchange) Seed(key string, clauses [][]sat.Lit) int {
	n := 0
	for _, lits := range clauses {
		if e.Publish(key, SeedOrigin, lits, 1) {
			n++
		}
	}
	return n
}

// Stats returns cumulative exchange counters.
func (e *Exchange) Stats() Stats {
	return Stats{
		Published: e.published.Load(),
		Rejected:  e.rejected.Load(),
		Pulled:    e.pulled.Load(),
	}
}

// clauseKey builds a dedup key. Literal order matters in principle, but
// solvers learn clauses with the asserting literal first, so identical
// resolutions collide as intended; a permuted duplicate costs one
// redundant (and harmless) pool slot.
func clauseKey(lits []sat.Lit) string {
	b := make([]byte, 4*len(lits))
	for i, l := range lits {
		b[4*i] = byte(l)
		b[4*i+1] = byte(l >> 8)
		b[4*i+2] = byte(l >> 16)
		b[4*i+3] = byte(l >> 24)
	}
	return string(b)
}
