package exchange

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sat"
)

func lits(ls ...int32) []sat.Lit {
	out := make([]sat.Lit, len(ls))
	for i, l := range ls {
		out[i] = sat.Lit(l)
	}
	return out
}

// TestPublishPullCursor checks the cursor protocol: each pull returns
// only what arrived since the previous cursor.
func TestPublishPullCursor(t *testing.T) {
	e := New()
	if !e.Publish("k", 0, lits(2, 5), 2) {
		t.Fatal("first publish rejected")
	}
	got, cur := e.Pull("k", 1, 0)
	if len(got) != 1 || cur != 1 {
		t.Fatalf("pull 1: %d clauses, cursor %d", len(got), cur)
	}
	if got2, cur2 := e.Pull("k", 1, cur); len(got2) != 0 || cur2 != cur {
		t.Fatalf("empty pull moved cursor: %d clauses, cursor %d", len(got2), cur2)
	}
	e.Publish("k", 0, lits(7), 1)
	e.Publish("k", 0, lits(9, 11, 13), 3)
	got, cur = e.Pull("k", 1, cur)
	if len(got) != 2 || cur != 3 {
		t.Fatalf("pull 2: %d clauses, cursor %d", len(got), cur)
	}
}

// TestAdmission checks the size/LBD filter, per-pool cap and dedup.
func TestAdmission(t *testing.T) {
	e := New()
	long := make([]sat.Lit, MaxLen+1)
	for i := range long {
		long[i] = sat.Lit(2 * (i + 1))
	}
	if e.Publish("k", 0, long, 1) {
		t.Error("over-length clause admitted")
	}
	if e.Publish("k", 0, lits(2, 4), MaxLBD+1) {
		t.Error("high-LBD clause admitted")
	}
	if e.Publish("k", 0, nil, 1) {
		t.Error("empty clause admitted")
	}
	if !e.Publish("k", 0, lits(2, 4), MaxLBD) {
		t.Error("admissible clause rejected")
	}
	if e.Publish("k", 0, lits(2, 4), 1) {
		t.Error("duplicate admitted")
	}
	st := e.Stats()
	if st.Published != 1 || st.Rejected != 4 {
		t.Errorf("stats %+v, want 1 published / 4 rejected", st)
	}

	for i := 0; i < MaxPerPool+10; i++ {
		e.Publish("cap", 0, lits(int32(2*i+2)), 1)
	}
	if got, _ := e.Pull("cap", 1, 0); len(got) != MaxPerPool {
		t.Errorf("pool size %d, want cap %d", len(got), MaxPerPool)
	}
}

// TestOriginFiltering checks a worker never pulls back its own
// publications while peers see them.
func TestOriginFiltering(t *testing.T) {
	e := New()
	e.Publish("k", 0, lits(2), 1)
	e.Publish("k", 1, lits(4), 1)
	mine, cur := e.Pull("k", 0, 0)
	if len(mine) != 1 || mine[0][0] != 4 {
		t.Fatalf("worker 0 pulled %v, want only peer clause [4]", mine)
	}
	if cur != 2 {
		t.Fatalf("cursor %d, want 2 (own clause advances it)", cur)
	}
	if peer, _ := e.Pull("k", 2, 0); len(peer) != 2 {
		t.Fatalf("worker 2 pulled %d clauses, want both", len(peer))
	}
}

// TestKeyIsolation checks clauses never leak between systems.
func TestKeyIsolation(t *testing.T) {
	e := New()
	e.Publish("a", 0, lits(2), 1)
	e.Publish("b", 0, lits(4), 1)
	if got, _ := e.Pull("a", 1, 0); len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("pool a: %v", got)
	}
	if got, _ := e.Pull("b", 1, 0); len(got) != 1 || got[0][0] != 4 {
		t.Fatalf("pool b: %v", got)
	}
}

// TestSeedBypassesLBD checks Seed re-admits persisted clauses without
// re-judging their quality but still dedups.
func TestSeedBypassesLBD(t *testing.T) {
	e := New()
	n := e.Seed("k", [][]sat.Lit{lits(2, 4), lits(2, 4), lits(6)})
	if n != 2 {
		t.Fatalf("seeded %d, want 2", n)
	}
}

// TestConcurrentExchange hammers one exchange from many goroutines
// across several keys; run under -race this is the data-race gate.
func TestConcurrentExchange(t *testing.T) {
	e := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("sys-%d", w%3)
			cursor := 0
			for i := 0; i < 200; i++ {
				e.Publish(key, w, lits(int32(2*(w*200+i)+2), int32(2*i+4)), 2)
				var got [][]sat.Lit
				got, cursor = e.Pull(key, w, cursor)
				for _, c := range got {
					if len(c) == 0 {
						t.Error("pulled empty clause")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.Published == 0 || st.Pulled == 0 {
		t.Errorf("no traffic recorded: %+v", st)
	}
}
