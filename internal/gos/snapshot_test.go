package gos

import (
	"reflect"
	"testing"
)

// runWithSnaps runs the program recording a full trace and taking
// snapshots on a short cadence.
func runWithSnaps(t *testing.T, text string, cfg Config) (*Result, []*Snapshot) {
	t.Helper()
	cfg.Record = true
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 50
	}
	m, err := New(build(t, text), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := m.Run()
	return res, m.Snapshots()
}

// assertResumeIdentical resumes every snapshot under the same config and
// requires the continued run to reproduce the original result exactly —
// reason, status, stdout, step count and every trace entry.
func assertResumeIdentical(t *testing.T, text string, cfg Config) {
	t.Helper()
	res, snaps := runWithSnaps(t, text, cfg)
	if len(snaps) == 0 {
		t.Fatal("no snapshots taken; make the program longer or the cadence shorter")
	}
	for i, s := range snaps {
		rcfg := cfg
		rcfg.Record = true
		if rcfg.SnapshotEvery == 0 {
			rcfg.SnapshotEvery = 50
		}
		m, err := s.Resume(rcfg, res.Trace.PrefixCopy(s.TraceLen))
		if err != nil {
			t.Fatalf("snapshot %d: Resume: %v", i, err)
		}
		got := m.Run()
		if got.Reason != res.Reason || got.ExitStatus != res.ExitStatus {
			t.Errorf("snapshot %d: got %s/%d, want %s/%d",
				i, got.Reason, got.ExitStatus, res.Reason, res.ExitStatus)
		}
		if got.Stdout != res.Stdout {
			t.Errorf("snapshot %d: stdout %q, want %q", i, got.Stdout, res.Stdout)
		}
		if got.Steps != res.Steps {
			t.Errorf("snapshot %d: steps %d, want %d", i, got.Steps, res.Steps)
		}
		if got.Trace.Len() != res.Trace.Len() {
			t.Fatalf("snapshot %d: trace len %d, want %d", i, got.Trace.Len(), res.Trace.Len())
		}
		for j := range res.Trace.Entries {
			if !reflect.DeepEqual(got.Trace.Entries[j], res.Trace.Entries[j]) {
				t.Fatalf("snapshot %d: trace entry %d differs:\n got %s\nwant %s",
					i, j, got.Trace.Entries[j].String(), res.Trace.Entries[j].String())
			}
		}
	}
}

func TestSnapshotResumeIdentical(t *testing.T) {
	// Burn cycles across several slices, then touch most machine
	// surfaces: argv, time, file IO, kv store, stdout.
	assertResumeIdentical(t, `
_start:
    mov r3, 100
.burn:
    sub r3, 1
    cmp r3, 0
    jne .burn
    ld.q r2, [r2+8]   ; argv[1]
    ld.b r4, [r2+0]
    mov r0, 6         ; time
    syscall
    add r4, r0
    mov r0, 17        ; kv_put("k", data, 3)
    mov r1, key
    mov r2, data
    mov r3, 3
    syscall
    mov r0, 18        ; kv_get("k", buf, 8)
    mov r1, key
    mov r2, buf
    mov r3, 8
    syscall
    mov r0, 3         ; write(stdout, data, 3)
    mov r1, 1
    mov r2, data
    mov r3, 3
    syscall
    mov r0, 1
    mov r1, r4
    syscall
    .data
key:  .asciz "k"
data: .ascii "xyz"
buf:  .space 8
`, Config{Argv: []string{"prog", "A"}, TimeNow: 5})
}

func TestSnapshotResumeForkPipe(t *testing.T) {
	// Fork + pipe with blocked reads: snapshots land while the parent is
	// blocked and while two processes are live.
	assertResumeIdentical(t, `
_start:
    mov r0, 9        ; pipe(fds)
    mov r1, fds
    syscall
    mov r0, 8        ; fork
    syscall
    cmp r0, 0
    je  .child
    mov r0, 2        ; parent: read(rfd, buf, 1)
    ld.q r1, [r1+0]
    mov r2, buf
    mov r3, 1
    syscall
    ld.b r4, [r2+0]
    mov r0, 1
    mov r1, r4
    syscall
.child:
    mov r6, 400      ; make the child slow so the parent blocks
.spin:
    sub r6, 1
    cmp r6, 0
    jne .spin
    mov r5, 'V'
    mov r1, fds
    ld.q r1, [r1+8]
    mov r2, tmp
    st.b [r2+0], r5
    mov r0, 3
    mov r3, 1
    syscall
    mov r0, 1
    mov r1, 0
    syscall
    .data
fds: .space 16
buf: .space 8
tmp: .space 8
`, Config{})
}

func TestSnapshotResumeThreads(t *testing.T) {
	assertResumeIdentical(t, `
worker:
    mov r3, 150
.w:
    sub r3, 1
    cmp r3, 0
    jne .w
    ld.q r2, [r1+0]
    add  r2, 1
    st.q [r1+0], r2
    ret
_start:
    mov r0, 10        ; thread_create(worker, cell)
    mov r1, worker
    mov r2, cell
    syscall
    mov r3, r0
    mov r0, 11        ; join(tid)
    mov r1, r3
    syscall
    mov r4, cell
    ld.q r5, [r4+0]
    mov r0, 1
    mov r1, r5
    syscall
    .data
cell: .quad 41
`, Config{})
}

func TestSnapshotResumeUnlinkedOpenFile(t *testing.T) {
	// An fd that outlives its directory entry: snapshot aliasing must
	// keep the open file readable after resume while the path stays gone.
	assertResumeIdentical(t, `
_start:
    mov r0, 4         ; fd = open("f", READ)
    mov r1, path
    mov r2, 0
    syscall
    mov r10, r0
    mov r0, 14        ; unlink("f")
    mov r1, path
    syscall
    mov r3, 200
.burn:
    sub r3, 1
    cmp r3, 0
    jne .burn
    mov r0, 2         ; read(fd, buf, 4) still works
    mov r1, r10
    mov r2, buf
    mov r3, 4
    syscall
    ld.b r4, [r2+0]
    mov r0, 1
    mov r1, r4
    syscall
    .data
path: .asciz "f"
buf:  .space 8
`, Config{Files: map[string][]byte{"f": []byte("Q!")}})
}

// TestSnapshotResumePatchedArgv is the divergence-replay contract: a
// snapshot taken before the program ever reads argv can be resumed with
// a different argv[1] — including a different length — and must behave
// exactly like a from-scratch run on the new input.
func TestSnapshotResumePatchedArgv(t *testing.T) {
	prog := `
_start:
    mov r3, 120
.burn:
    sub r3, 1
    cmp r3, 0
    jne .burn
    ld.q r2, [r2+8]   ; argv[1]
    mov r9, 0
.len:
    ld.b r4, [r2+0]
    cmp r4, 0
    je .done
    add r9, r4
    add r2, 1
    jmp .len
.done:
    mov r0, 1
    mov r1, r9
    syscall
`
	parentCfg := Config{Argv: []string{"prog", "abc"}}
	parentRes, snaps := runWithSnaps(t, prog, parentCfg)
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	// Every snapshot here lands inside the burn loop (120*3+1 = 361
	// steps before the first argv read), so all are pre-divergence.
	for _, childArg := range []string{"xyz", "q", "longer-than-parent"} {
		childCfg := Config{Argv: []string{"prog", childArg}, Record: true}
		wantM, err := New(build(t, prog), childCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := wantM.Run()

		s := snaps[0]
		m, err := s.Resume(childCfg, parentRes.Trace.PrefixCopy(s.TraceLen))
		if err != nil {
			t.Fatalf("Resume: %v", err)
		}
		if err := m.PatchArgv(1, childArg, len(parentCfg.Argv[1])); err != nil {
			t.Fatalf("PatchArgv: %v", err)
		}
		got := m.Run()
		if got.ExitStatus != want.ExitStatus || got.Reason != want.Reason {
			t.Errorf("arg %q: got %s/%d, want %s/%d",
				childArg, got.Reason, got.ExitStatus, want.Reason, want.ExitStatus)
		}
		if got.Steps != want.Steps {
			t.Errorf("arg %q: steps %d, want %d", childArg, got.Steps, want.Steps)
		}
		if got.Trace.Len() != want.Trace.Len() {
			t.Fatalf("arg %q: trace len %d, want %d", childArg, got.Trace.Len(), want.Trace.Len())
		}
		for j := range want.Trace.Entries {
			if !reflect.DeepEqual(got.Trace.Entries[j], want.Trace.Entries[j]) {
				t.Fatalf("arg %q: entry %d differs:\n got %s\nwant %s",
					childArg, j, got.Trace.Entries[j].String(), want.Trace.Entries[j].String())
			}
		}
		if len(got.Argv) != 2 || got.Argv[1].Len != len(childArg)+1 {
			t.Errorf("arg %q: argv regions not repatched: %+v", childArg, got.Argv)
		}
	}
}

func TestPatchArgvErrors(t *testing.T) {
	m, err := New(build(t, "_start:\n halt\n"), Config{Argv: []string{"p", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PatchArgv(5, "y", 1); err == nil {
		t.Error("PatchArgv out of range should fail")
	}
	if err := m.PatchArgv(1, "y", 1); err != nil {
		t.Errorf("PatchArgv in range: %v", err)
	}
}

func TestSnapshotCadenceBounds(t *testing.T) {
	res, snaps := runWithSnaps(t, `
_start:
.loop:
    jmp .loop
`, Config{MaxSteps: 3000, SnapshotEvery: 64})
	if res.Reason != StopMaxSteps {
		t.Fatalf("reason = %s", res.Reason)
	}
	if len(snaps) == 0 || len(snaps) > maxSnapshots {
		t.Fatalf("snapshot count %d out of bounds", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Steps <= snaps[i-1].Steps {
			t.Fatalf("snapshots not strictly ordered: %d then %d", snaps[i-1].Steps, snaps[i].Steps)
		}
	}
}
