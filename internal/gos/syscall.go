package gos

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vm"
)

// maxIOBytes bounds single-call IO transfers, like a kernel would.
const maxIOBytes = 1 << 16

// errRet is the guest-visible -1.
const errRet = ^uint64(0)

// syscall dispatches one guest system call for thread t and fills the
// trace entry's SysEvent. The CPU's r0 receives the return value.
// It reports false when the call blocked and will be re-issued, in which
// case the entry must not be recorded.
func (m *Machine) syscall(t *thread, e *trace.Entry) bool {
	cpu := t.cpu
	num := trace.Sysno(cpu.Regs[0])
	ev := &trace.SysEvent{Num: num}
	for i := 0; i < 5; i++ {
		ev.Args[i] = cpu.Regs[1+i]
	}
	e.Sys = ev

	ret := errRet
	switch num {
	case trace.SysExit:
		status := int(int64(ev.Args[0]))
		m.exitProc(t.proc, status)
		ev.Ret = ev.Args[0]
		return true

	case trace.SysRead:
		ret = m.sysRead(t, ev)

	case trace.SysWrite:
		ret = m.sysWrite(t, ev)

	case trace.SysOpen:
		ret = m.sysOpen(t, ev)

	case trace.SysClose:
		fd := int(int64(ev.Args[0]))
		if _, ok := t.proc.fds[fd]; ok {
			m.closeFD(t.proc, fd)
			ret = 0
		}

	case trace.SysTime:
		ret = m.cfg.TimeNow

	case trace.SysGetpid:
		// Guest pids are dense (1,2,..); the reported pid is offset by the
		// configured base so the value is environment-dependent, as in the
		// paper's "return values of system calls" bomb.
		ret = m.cfg.Pid + uint64(t.proc.pid-1)

	case trace.SysFork:
		ret = m.sysFork(t, ev)

	case trace.SysPipe:
		ret = m.sysPipe(t, ev)

	case trace.SysThreadCreate:
		ret = m.sysThreadCreate(t, ev)

	case trace.SysThreadJoin:
		tid := int(int64(ev.Args[0]))
		target := m.findThread(tid)
		if target == nil || target.proc != t.proc {
			ret = 0 // already gone (or never existed): join succeeds vacuously
			break
		}
		target.joinWaiters = append(target.joinWaiters, t)
		t.block = blockState{kind: blockJoin, id: tid}
		ret = 0

	case trace.SysWebGet:
		ret = m.sysWebGet(t, ev)

	case trace.SysSigHandler:
		t.proc.sigHandler = ev.Args[0]
		ret = 0

	case trace.SysUnlink:
		path := t.proc.mem.ReadCString(ev.Args[0], 256)
		ev.Path = path
		if m.fs.Remove(path) {
			ret = 0
		}

	case trace.SysSleep:
		ret = 0 // deterministic machine: sleeping only yields the slice

	case trace.SysWait:
		pid := int(int64(ev.Args[0]))
		child, ok := m.procs[pid]
		switch {
		case !ok:
			ret = errRet
		case child.exited:
			ret = uint64(child.status)
		default:
			child.waiters = append(child.waiters, t)
			t.block = blockState{kind: blockWait, id: pid}
			ret = 0 // overwritten on wake with the exit status
		}

	case trace.SysKvPut:
		ret = m.sysKvPut(t, ev)

	case trace.SysKvGet:
		ret = m.sysKvGet(t, ev)

	case trace.SysStat:
		ret = m.sysStat(t, ev)

	case trace.SysGetenv:
		ret = m.sysGetenv(t, ev)

	default:
		// Unknown syscall: return -1, like ENOSYS.
		ret = errRet
	}

	cpu.Regs[0] = ret
	ev.Ret = ret
	return t.block.kind != blockRead
}

func clampLen(n uint64) int {
	if n > maxIOBytes {
		return maxIOBytes
	}
	return int(n)
}

func (m *Machine) sysRead(t *thread, ev *trace.SysEvent) uint64 {
	fd := int(int64(ev.Args[0]))
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	d, ok := t.proc.fds[fd]
	if !ok || n < 0 {
		return errRet
	}
	ev.Addr = buf
	switch d.kind {
	case fdStdin:
		ev.Obj = "stdin"
		ev.Off = uint64(m.stdinOff)
		avail := len(m.cfg.Stdin) - m.stdinOff
		if avail <= 0 {
			return 0
		}
		if n > avail {
			n = avail
		}
		data := m.cfg.Stdin[m.stdinOff : m.stdinOff+n]
		m.stdinOff += n
		t.proc.mem.Write(buf, data)
		ev.Data = append([]byte(nil), data...)
		return uint64(n)

	case fdFile:
		ev.Obj = d.path
		ev.Off = uint64(d.off)
		data := d.file.readAt(d.off, n)
		d.off += len(data)
		t.proc.mem.Write(buf, data)
		ev.Data = append([]byte(nil), data...)
		return uint64(len(data))

	case fdPipe:
		if d.writeEnd {
			return errRet
		}
		p := d.pipe
		ev.Obj = fmt.Sprintf("pipe:%d", p.id)
		if len(p.buf) == 0 {
			if p.writers > 0 {
				// Block until data arrives; the call is re-issued by
				// rewinding the PC to the syscall instruction (short form,
				// 4 bytes) and restoring the syscall number in r0.
				t.block = blockState{kind: blockRead, id: p.id}
				t.cpu.PC -= 4
				return uint64(trace.SysRead)
			}
			return 0 // EOF
		}
		if n > len(p.buf) {
			n = len(p.buf)
		}
		ev.Off = p.readOff
		data := p.buf[:n]
		p.buf = append([]byte(nil), p.buf[n:]...)
		p.readOff += uint64(n)
		t.proc.mem.Write(buf, data)
		ev.Data = append([]byte(nil), data...)
		return uint64(n)
	}
	return errRet
}

func (m *Machine) sysWrite(t *thread, ev *trace.SysEvent) uint64 {
	fd := int(int64(ev.Args[0]))
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	d, ok := t.proc.fds[fd]
	if !ok || n < 0 {
		return errRet
	}
	data := make([]byte, n)
	t.proc.mem.Read(buf, data)
	ev.Addr = buf
	ev.Data = data
	switch d.kind {
	case fdStdout:
		ev.Obj = "stdout"
		m.stdout.Write(data)
		return uint64(n)
	case fdFile:
		ev.Obj = d.path
		ev.Off = uint64(d.off)
		d.file.writeAt(d.off, data)
		d.off += n
		return uint64(n)
	case fdPipe:
		if !d.writeEnd {
			return errRet
		}
		p := d.pipe
		ev.Obj = fmt.Sprintf("pipe:%d", p.id)
		ev.Off = p.writeOff
		p.buf = append(p.buf, data...)
		p.writeOff += uint64(n)
		m.wakePipeReaders(p)
		return uint64(n)
	}
	return errRet
}

// Open flags.
const (
	OpenRead  = 0 // existing file, read-only
	OpenWrite = 1 // create or truncate, write-only
)

func (m *Machine) sysOpen(t *thread, ev *trace.SysEvent) uint64 {
	path := t.proc.mem.ReadCString(ev.Args[0], 256)
	flags := ev.Args[1]
	ev.Path = path
	var f *file
	switch flags {
	case OpenRead:
		f = m.fs.Open(path)
		if f == nil {
			return errRet
		}
	case OpenWrite:
		f = m.fs.Create(path)
	default:
		return errRet
	}
	fd := t.proc.nextFD
	t.proc.nextFD++
	t.proc.fds[fd] = &fdesc{kind: fdFile, path: path, file: f}
	return uint64(fd)
}

func (m *Machine) sysFork(t *thread, ev *trace.SysEvent) uint64 {
	parent := t.proc
	child := &proc{
		pid:        m.nextPID,
		mem:        parent.mem.Clone(),
		fds:        make(map[int]*fdesc),
		nextFD:     parent.nextFD,
		sigHandler: parent.sigHandler,
		nextStack:  parent.nextStack,
	}
	m.nextPID++
	for fd, d := range parent.fds {
		nd := *d
		child.fds[fd] = &nd
		if d.kind == fdPipe && d.writeEnd {
			d.pipe.writers++
		}
	}
	cpu := t.cpu.Clone()
	cpu.Regs[0] = 0 // child sees 0
	ct := &thread{tid: m.nextTID, proc: child, cpu: cpu}
	m.nextTID++
	child.liveThr = 1
	m.procs[child.pid] = child
	m.threads = append(m.threads, ct)
	ev.NewID = uint64(child.pid)
	return uint64(child.pid)
}

func (m *Machine) sysPipe(t *thread, ev *trace.SysEvent) uint64 {
	p := &pipe{id: m.nextPipe, writers: 1}
	m.nextPipe++
	m.pipes[p.id] = p
	rfd := t.proc.nextFD
	wfd := rfd + 1
	t.proc.nextFD += 2
	t.proc.fds[rfd] = &fdesc{kind: fdPipe, pipe: p}
	t.proc.fds[wfd] = &fdesc{kind: fdPipe, pipe: p, writeEnd: true}
	ptr := ev.Args[0]
	t.proc.mem.WriteUint(ptr, 8, uint64(rfd))   //nolint:errcheck // size 8 is valid
	t.proc.mem.WriteUint(ptr+8, 8, uint64(wfd)) //nolint:errcheck // size 8 is valid
	ev.Addr = ptr
	ev.NewID = uint64(rfd) | uint64(wfd)<<32
	return 0
}

func (m *Machine) sysThreadCreate(t *thread, ev *trace.SysEvent) uint64 {
	entry, arg := ev.Args[0], ev.Args[1]
	p := t.proc
	cpu := &vm.CPU{PC: entry}
	sp := p.nextStack
	p.nextStack -= threadStackSize
	cpu.SetSP(sp - 8)
	p.mem.WriteUint(cpu.SP(), 8, vm.ExitThreadPC) //nolint:errcheck // size 8 is valid
	cpu.Regs[1] = arg
	nt := &thread{tid: m.nextTID, proc: p, cpu: cpu}
	m.nextTID++
	p.liveThr++
	m.threads = append(m.threads, nt)
	ev.NewID = uint64(nt.tid)
	return uint64(nt.tid)
}

func (m *Machine) sysWebGet(t *thread, ev *trace.SysEvent) uint64 {
	url := t.proc.mem.ReadCString(ev.Args[0], 256)
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	ev.Path = url
	ev.Obj = "web:" + url
	body, ok := m.cfg.WebContent[url]
	if !ok {
		return errRet
	}
	data := []byte(body)
	if len(data) > n {
		data = data[:n]
	}
	t.proc.mem.Write(buf, data)
	ev.Addr = buf
	ev.Data = append([]byte(nil), data...)
	return uint64(len(data))
}

// sysKvPut stores bytes under a string key in the kernel key-value store.
func (m *Machine) sysKvPut(t *thread, ev *trace.SysEvent) uint64 {
	key := t.proc.mem.ReadCString(ev.Args[0], 128)
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	data := make([]byte, n)
	t.proc.mem.Read(buf, data)
	m.kv[key] = data
	ev.Path = key
	ev.Obj = "kv:" + key
	ev.Addr = buf
	ev.Data = data
	return uint64(n)
}

// sysKvGet copies bytes stored under a key back to the guest.
func (m *Machine) sysKvGet(t *thread, ev *trace.SysEvent) uint64 {
	key := t.proc.mem.ReadCString(ev.Args[0], 128)
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	ev.Path = key
	ev.Obj = "kv:" + key
	data, ok := m.kv[key]
	if !ok {
		return errRet
	}
	if len(data) > n {
		data = data[:n]
	}
	t.proc.mem.Write(buf, data)
	ev.Addr = buf
	ev.Data = append([]byte(nil), data...)
	return uint64(len(data))
}

// sysStat reports the size of a file, or -1 when it does not exist — a
// contextual environment value (the file's size is an input surface the
// way its contents are).
func (m *Machine) sysStat(t *thread, ev *trace.SysEvent) uint64 {
	path := t.proc.mem.ReadCString(ev.Args[0], 256)
	ev.Path = path
	data, ok := m.fs.Contents(path)
	if !ok {
		return errRet
	}
	return uint64(len(data))
}

// sysGetenv copies the value of an environment variable into a guest
// buffer and returns its length, or -1 when the variable is unset.
func (m *Machine) sysGetenv(t *thread, ev *trace.SysEvent) uint64 {
	name := t.proc.mem.ReadCString(ev.Args[0], 128)
	buf, n := ev.Args[1], clampLen(ev.Args[2])
	ev.Path = name
	ev.Obj = "env:" + name
	val, ok := m.cfg.Env[name]
	if !ok {
		return errRet
	}
	data := []byte(val)
	if len(data) > n {
		data = data[:n]
	}
	t.proc.mem.Write(buf, data)
	ev.Addr = buf
	ev.Data = append([]byte(nil), data...)
	return uint64(len(val))
}

func (m *Machine) wakePipeReaders(p *pipe) {
	for _, t := range m.threads {
		if !t.dead && t.block.kind == blockRead && t.block.id == p.id {
			t.block = blockState{}
		}
	}
}

func (m *Machine) closeFD(p *proc, fd int) {
	d, ok := p.fds[fd]
	if !ok {
		return
	}
	delete(p.fds, fd)
	if d.kind == fdPipe && d.writeEnd {
		d.pipe.writers--
		if d.pipe.writers <= 0 {
			// EOF: wake blocked readers so they observe end of stream.
			m.wakePipeReaders(d.pipe)
		}
	}
}

func (m *Machine) findThread(tid int) *thread {
	for _, t := range m.threads {
		if t.tid == tid && !t.dead {
			return t
		}
	}
	return nil
}

// FS is the in-memory guest filesystem.
type FS struct {
	files map[string]*file
}

type file struct {
	data []byte
}

// NewFS builds a filesystem pre-populated with the given contents.
func NewFS(init map[string][]byte) *FS {
	fs := &FS{files: make(map[string]*file)}
	for path, data := range init {
		fs.files[path] = &file{data: append([]byte(nil), data...)}
	}
	return fs
}

// Open returns the named file or nil.
func (fs *FS) Open(path string) *file {
	return fs.files[path]
}

// Create truncates or creates the named file.
func (fs *FS) Create(path string) *file {
	f := &file{}
	fs.files[path] = f
	return f
}

// Remove deletes the named file, reporting whether it existed.
func (fs *FS) Remove(path string) bool {
	if _, ok := fs.files[path]; !ok {
		return false
	}
	delete(fs.files, path)
	return true
}

// Exists reports whether the named file exists.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Contents returns a copy of the named file's bytes.
func (fs *FS) Contents(path string) ([]byte, bool) {
	f, ok := fs.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

func (f *file) readAt(off, n int) []byte {
	if off >= len(f.data) {
		return nil
	}
	end := off + n
	if end > len(f.data) {
		end = len(f.data)
	}
	return append([]byte(nil), f.data[off:end]...)
}

func (f *file) writeAt(off int, data []byte) {
	for len(f.data) < off {
		f.data = append(f.data, 0)
	}
	for i, b := range data {
		if off+i < len(f.data) {
			f.data[off+i] = b
		} else {
			f.data = append(f.data, b)
		}
	}
}
