package gos

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vm"
)

// maxSnapshots bounds how many snapshots one run will retain regardless
// of the configured cadence, so a misconfigured cadence cannot hold an
// unbounded number of memory handles alive.
const maxSnapshots = 96

// Snapshot is a resumable machine checkpoint, taken between scheduler
// slices. It captures every piece of state a run accumulates — per-thread
// vm.States (registers + copy-on-write memory handles), file descriptors,
// pipes, the filesystem, the kv store, stdout, the stdin cursor and the
// scheduler position — plus the step count and trace length at capture,
// so a resumed machine continues exactly where the snapshotted one was.
//
// Snapshots are immutable once taken: Resume clones the memory handles
// and copies the OS tables, so one snapshot can seed any number of
// resumed machines (the engine replays many negated inputs against the
// same shared prefix).
type Snapshot struct {
	Steps    int // instructions executed up to the snapshot
	TraceLen int // trace entries recorded up to the snapshot

	prog *vm.Program

	// sliceLeft is the interrupted scheduler slice's remaining quantum.
	// Early snapshots are taken between instructions, i.e. mid-slice; a
	// resumed machine's first slice must run only this many steps so
	// every future slice boundary — and with it the thread round-robin —
	// lands exactly where the snapshotted run's would.
	sliceLeft int

	cur      int
	nextPID  int
	nextTID  int
	nextPipe int
	stdinOff int
	stdout   []byte
	kv       map[string][]byte

	files   []snapFile
	fsPaths map[string]int // fs path -> files index (aliasing preserved)
	pipes   []snapPipe
	procs   []snapProc
	threads []snapThread

	watchedHits []uint64
	argv        []Region
}

type snapFile struct{ data []byte }

type snapPipe struct {
	id       int
	buf      []byte
	readOff  uint64
	writeOff uint64
	writers  int
}

type snapFD struct {
	fd       int
	kind     fdKind
	path     string
	fileIdx  int // index into Snapshot.files, -1 if none
	off      int
	pipeID   int // 0 if none
	writeEnd bool
}

type snapProc struct {
	pid        int
	mem        *mem.Memory // copy-on-write clone; immutable while held
	fds        []snapFD    // sorted by fd
	nextFD     int
	sigHandler uint64
	liveThr    int
	exited     bool
	status     int
	waiters    []int // blocked waiter threads, by tid
	nextStack  uint64
}

type snapThread struct {
	tid         int
	pid         int
	st          *vm.State // registers + (proc-shared) memory handle
	dead        bool
	block       blockState
	joinWaiters []int // by tid
}

// Early-snapshot tuning. Exploration rounds mutate small parts of the
// input, and the mutated bytes are typically read within the first few
// hundred steps — far inside the first boundary-cadence interval — so
// the early window [0, earlySnapBound] gets snapshots every
// earlySnapEvery steps, plus a rolling snapshot re-taken every step
// while the trace is still input-free (frozen at the first entry that
// observes input: the deepest resume point valid for any sibling).
const (
	earlySnapEvery = 16
	earlySnapBound = 512
)

// Snapshots returns the snapshots taken during Run, ordered by depth.
// Empty unless Config.SnapshotEvery was set. The rolling pre-input
// snapshot, when one exists, is merged at its depth position (dropped
// if a cadence snapshot was taken at the same step).
func (m *Machine) Snapshots() []*Snapshot {
	if m.early == nil {
		return m.snaps
	}
	out := make([]*Snapshot, 0, len(m.snaps)+1)
	placed := false
	for _, s := range m.snaps {
		if !placed && m.early.Steps <= s.Steps {
			if m.early.Steps < s.Steps {
				out = append(out, m.early)
			}
			placed = true
		}
		out = append(out, s)
	}
	if !placed {
		out = append(out, m.early)
	}
	return out
}

// earlySnapshots runs between instructions (where the machine is just
// as quiescent as between slices) during the early window. It maintains
// two snapshot streams:
//
//  1. The rolling pre-input snapshot, re-taken every step while the
//     recorded trace is still input-free and frozen at the first entry
//     that observes input. Siblings whose mutated bytes are read at the
//     program's very first input access (an atoi at the top of main) can
//     resume from it; nothing deeper is ever valid for them.
//  2. Dense early-window snapshots every earlySnapEvery steps, kept in
//     the regular snapshot list. The scheduler validates each against
//     the concrete input pair, so these serve siblings whose mutated
//     bytes are read later (a byte-scan loop reaching the changed byte).
func (m *Machine) earlySnapshots() {
	if m.steps <= earlySnapBound && m.steps-m.lastSnap >= earlySnapEvery {
		m.lastSnap = m.steps
		m.snaps = append(m.snaps, m.takeSnapshot())
	}
	if !m.earlyDone {
		m.rollEarly()
	}
}

// rollEarly advances the input-surface scan and re-takes or freezes the
// rolling pre-input snapshot (see earlySnapshots).
func (m *Machine) rollEarly() {
	if m.tr == nil {
		m.earlyDone = true
		return
	}
	for ; m.earlyScan < len(m.tr.Entries); m.earlyScan++ {
		if m.entryReadsInput(&m.tr.Entries[m.earlyScan]) {
			m.earlyDone = true
			return
		}
	}
	if m.steps > earlySnapBound {
		m.earlyDone = true
		return
	}
	if m.steps == m.lastSnap {
		return // the dense stream just captured this exact state
	}
	if m.early != nil {
		m.early.release()
	}
	m.early = m.takeSnapshot()
}

// entryReadsInput conservatively reports whether a trace entry observed
// any input surface: a system call (environment interaction of any
// kind), an exception, or a memory access overlapping the argv string
// bytes beyond the constant argv0. Memory accesses are widened to 8
// bytes, the largest access size.
func (m *Machine) entryReadsInput(e *trace.Entry) bool {
	if e.Sys != nil || e.Exc != nil {
		return true
	}
	for _, r := range m.argv[1:] {
		if r.Len > 0 && e.Addr < r.Addr+uint64(r.Len) && e.Addr+8 > r.Addr {
			return true
		}
	}
	return false
}

// release returns the snapshot's shared memory pages to their owners.
// Only for snapshots that were never handed out: a released snapshot
// must not be resumed.
func (s *Snapshot) release() {
	for i := range s.procs {
		s.procs[i].mem.Reset()
	}
}

// maybeSnapshot takes a snapshot if the cadence says one is due. Called
// between scheduler slices, where machine state is quiescent. When the
// retention bound is reached the set is thinned — every other snapshot
// dropped, cadence doubled — so a long run keeps whole-run coverage at
// progressively coarser resolution instead of only covering its start.
func (m *Machine) maybeSnapshot() {
	if m.cfg.SnapshotEvery <= 0 || m.stopped {
		return
	}
	if m.steps < m.lastSnap+m.cfg.SnapshotEvery {
		return
	}
	if len(m.snaps) >= maxSnapshots {
		for i := 0; i < len(m.snaps); i += 2 {
			m.snaps[i].release() // dropped below; return its page shares
		}
		kept := m.snaps[:0]
		for i := 1; i < len(m.snaps); i += 2 {
			kept = append(kept, m.snaps[i])
		}
		for i := len(kept); i < len(m.snaps); i++ {
			m.snaps[i] = nil
		}
		m.snaps = kept
		m.cfg.SnapshotEvery *= 2
	}
	m.lastSnap = m.steps
	m.snaps = append(m.snaps, m.takeSnapshot())
}

// takeSnapshot captures the full machine state. Map iterations are
// sorted so the stored form is deterministic.
func (m *Machine) takeSnapshot() *Snapshot {
	traceLen := 0
	if m.tr != nil {
		traceLen = m.tr.Len()
	}
	s := &Snapshot{
		Steps:     m.steps,
		TraceLen:  traceLen,
		prog:      m.prog,
		sliceLeft: m.cfg.Quantum - m.sliceN,
		cur:       m.cur,
		nextPID:  m.nextPID,
		nextTID:  m.nextTID,
		nextPipe: m.nextPipe,
		stdinOff: m.stdinOff,
		stdout:   append([]byte(nil), m.stdout.Bytes()...),
		kv:       make(map[string][]byte, len(m.kv)),
		fsPaths:  make(map[string]int, len(m.fs.files)),
	}
	for k, v := range m.kv {
		s.kv[k] = append([]byte(nil), v...)
	}

	// File objects are reachable both from fs paths and from open fds
	// (including unlinked-but-open files); capture each object once and
	// record references by index so Resume rebuilds the same aliasing.
	fileIdx := make(map[*file]int)
	internFile := func(f *file) int {
		if f == nil {
			return -1
		}
		if i, ok := fileIdx[f]; ok {
			return i
		}
		i := len(s.files)
		fileIdx[f] = i
		s.files = append(s.files, snapFile{data: append([]byte(nil), f.data...)})
		return i
	}
	paths := make([]string, 0, len(m.fs.files))
	for p := range m.fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		s.fsPaths[p] = internFile(m.fs.files[p])
	}

	pipeIDs := make([]int, 0, len(m.pipes))
	for id := range m.pipes {
		pipeIDs = append(pipeIDs, id)
	}
	sort.Ints(pipeIDs)
	for _, id := range pipeIDs {
		p := m.pipes[id]
		s.pipes = append(s.pipes, snapPipe{
			id: p.id, buf: append([]byte(nil), p.buf...),
			readOff: p.readOff, writeOff: p.writeOff, writers: p.writers,
		})
	}

	pids := make([]int, 0, len(m.procs))
	for pid := range m.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	procMem := make(map[int]*mem.Memory, len(pids))
	for _, pid := range pids {
		p := m.procs[pid]
		sp := snapProc{
			pid: p.pid, mem: p.mem.Clone(), nextFD: p.nextFD,
			sigHandler: p.sigHandler, liveThr: p.liveThr,
			exited: p.exited, status: p.status, nextStack: p.nextStack,
		}
		procMem[pid] = sp.mem
		fds := make([]int, 0, len(p.fds))
		for fd := range p.fds {
			fds = append(fds, fd)
		}
		sort.Ints(fds)
		for _, fd := range fds {
			d := p.fds[fd]
			sd := snapFD{
				fd: fd, kind: d.kind, path: d.path,
				fileIdx: internFile(d.file), off: d.off, writeEnd: d.writeEnd,
			}
			if d.pipe != nil {
				sd.pipeID = d.pipe.id
			}
			sp.fds = append(sp.fds, sd)
		}
		for _, w := range p.waiters {
			sp.waiters = append(sp.waiters, w.tid)
		}
		s.procs = append(s.procs, sp)
	}

	for _, t := range m.threads {
		st := snapThread{
			tid: t.tid, pid: t.proc.pid, dead: t.dead, block: t.block,
			st: &vm.State{
				CPU:      *t.cpu,
				Mem:      procMem[t.proc.pid], // proc-shared snapshot handle
				Cursor:   m.cur,
				TracePos: traceLen,
			},
		}
		for _, w := range t.joinWaiters {
			st.joinWaiters = append(st.joinWaiters, w.tid)
		}
		s.threads = append(s.threads, st)
	}

	addrs := make([]uint64, 0, len(m.watched))
	for a, hit := range m.watched {
		if hit {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	s.watchedHits = addrs
	s.argv = append([]Region(nil), m.argv...)
	return s
}

// Resume materialises a runnable Machine from the snapshot. The machine
// runs under cfg — whose input facets (TimeNow, Pid, WebContent) may
// differ from the snapshotted run's — and appends to tr, which the
// caller must have pre-filled with the first Snapshot.TraceLen entries
// of the snapshotted run's trace (copied, with taint marks cleared).
// The caller is responsible for having verified, via its divergence
// analysis, that no instruction before the snapshot point observed any
// state that differs under cfg; PatchArgv rewrites differing argument
// bytes afterwards.
//
// The snapshot is not consumed: it can be resumed any number of times.
func (s *Snapshot) Resume(cfg Config, tr *trace.Trace) (*Machine, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if len(cfg.Argv) == 0 {
		cfg.Argv = []string{"prog"}
	}
	if cfg.Pid == 0 {
		cfg.Pid = 4242
	}
	if tr != nil && tr.Len() != s.TraceLen {
		return nil, fmt.Errorf("gos: resume trace has %d entries, snapshot taken at %d", tr.Len(), s.TraceLen)
	}
	m := &Machine{
		prog:     s.prog,
		cfg:      cfg,
		fs:       &FS{files: make(map[string]*file, len(s.fsPaths))},
		kv:       make(map[string][]byte, len(s.kv)),
		pipes:    make(map[int]*pipe, len(s.pipes)),
		procs:    make(map[int]*proc, len(s.procs)),
		watched:  make(map[uint64]bool),
		nextPID:  s.nextPID,
		nextTID:  s.nextTID,
		nextPipe: s.nextPipe,
		stdinOff: s.stdinOff,
		steps:    s.Steps,
		lastSnap: s.Steps,
		cur:      s.cur,
		tr:       tr,
	}
	if s.sliceLeft > 0 && s.sliceLeft < cfg.Quantum {
		// Mid-slice snapshot: finish the interrupted slice on the
		// interrupted thread before the next scheduling decision, without
		// the dead-thread prune a fresh pickThread would perform — the
		// snapshotted run prunes only at its next slice boundary, and the
		// round-robin position depends on the pre-prune list length.
		m.sliceLeft = s.sliceLeft
		m.resumePick = true
	}
	m.stdout.Write(s.stdout)
	for k, v := range s.kv {
		m.kv[k] = append([]byte(nil), v...)
	}
	files := make([]*file, len(s.files))
	for i, sf := range s.files {
		files[i] = &file{data: append([]byte(nil), sf.data...)}
	}
	for p, i := range s.fsPaths {
		m.fs.files[p] = files[i]
	}
	for _, sp := range s.pipes {
		m.pipes[sp.id] = &pipe{
			id: sp.id, buf: append([]byte(nil), sp.buf...),
			readOff: sp.readOff, writeOff: sp.writeOff, writers: sp.writers,
		}
	}
	for _, spr := range s.procs {
		p := &proc{
			pid: spr.pid, mem: spr.mem.Clone(),
			fds: make(map[int]*fdesc, len(spr.fds)), nextFD: spr.nextFD,
			sigHandler: spr.sigHandler, liveThr: spr.liveThr,
			exited: spr.exited, status: spr.status, nextStack: spr.nextStack,
		}
		for _, sd := range spr.fds {
			d := &fdesc{kind: sd.kind, path: sd.path, off: sd.off, writeEnd: sd.writeEnd}
			if sd.fileIdx >= 0 {
				d.file = files[sd.fileIdx]
			}
			if sd.pipeID != 0 {
				d.pipe = m.pipes[sd.pipeID]
			}
			p.fds[sd.fd] = d
		}
		m.procs[p.pid] = p
	}
	byTID := make(map[int]*thread, len(s.threads))
	for _, st := range s.threads {
		p := m.procs[st.pid]
		cpu, _ := st.st.Restore() // memory comes from the proc table above
		t := &thread{tid: st.tid, proc: p, cpu: cpu, dead: st.dead, block: st.block}
		byTID[st.tid] = t
		m.threads = append(m.threads, t)
	}
	for _, st := range s.threads {
		t := byTID[st.tid]
		for _, w := range st.joinWaiters {
			if wt := byTID[w]; wt != nil {
				t.joinWaiters = append(t.joinWaiters, wt)
			}
		}
	}
	for _, spr := range s.procs {
		p := m.procs[spr.pid]
		for _, w := range spr.waiters {
			if wt := byTID[w]; wt != nil {
				p.waiters = append(p.waiters, wt)
			}
		}
	}
	for _, a := range cfg.WatchAddrs {
		m.watched[a] = false
	}
	for _, a := range s.watchedHits {
		if _, ok := m.watched[a]; ok {
			m.watched[a] = true
		}
	}
	m.argv = append([]Region(nil), s.argv...)
	return m, nil
}

// PatchArgv rewrites argument arg's string bytes in every process of a
// resumed machine to s, zero-filling any tail left over from a longer
// snapshotted value (oldLen bytes, NUL excluded), and updates the
// recorded argv region. Forked processes carry copy-on-write duplicates
// of the argv block, so each one must be rewritten — sound because the
// caller's divergence analysis guarantees no process observed those
// bytes before the snapshot. The argument's address is unchanged —
// callers only patch the final argument (or equal-length ones), so the
// string block layout is preserved.
func (m *Machine) PatchArgv(arg int, s string, oldLen int) error {
	if arg < 0 || arg >= len(m.argv) {
		return fmt.Errorf("gos: no argv%d region", arg)
	}
	if m.procs[1] == nil {
		return fmt.Errorf("gos: no root process")
	}
	addr := m.argv[arg].Addr
	for _, p := range m.procs {
		p.mem.WriteCString(addr, s)
		for i := len(s) + 1; i <= oldLen; i++ {
			p.mem.StoreByte(addr+uint64(i), 0)
		}
	}
	m.argv[arg].Len = len(s) + 1
	m.cfg.Argv[arg] = s
	return nil
}
