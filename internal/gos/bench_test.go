package gos

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/libc"
)

// BenchmarkGuestSHA1 measures a full guest-code SHA-1 run: machine
// creation, loading and ~20k instructions of crypto.
func BenchmarkGuestSHA1(b *testing.B) {
	units := append(libc.All(), asm.Source{Name: "b.s", Text: `
main:
    mov r1, msg
    mov r2, 5
    mov r3, out
    call sha1
    mov r0, 0
    ret
    .data
msg: .asciz "bench"
out: .space 20
`})
	img, err := asm.Assemble(units...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(img, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if res := m.Run(); res.Reason != StopExit {
			b.Fatalf("reason %s", res.Reason)
		}
	}
}

// BenchmarkForkPipe measures process creation and pipe IO.
func BenchmarkForkPipe(b *testing.B) {
	img, err := asm.Assemble(asm.Source{Name: "b.s", Text: `
_start:
    mov r0, 9
    mov r1, fds
    syscall
    mov r0, 8
    syscall
    cmp r0, 0
    je .child
    mov r0, 2
    mov r1, fds
    ld.q r1, [r1+0]
    mov r2, buf
    mov r3, 1
    syscall
    mov r0, 1
    mov r1, 0
    syscall
.child:
    mov r0, 3
    mov r1, fds
    ld.q r1, [r1+8]
    mov r2, buf
    mov r3, 1
    syscall
    mov r0, 1
    mov r1, 0
    syscall
    .data
fds: .space 16
buf: .space 8
`})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(img, Config{})
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
	}
}
