// Package gos implements the guest operating system for LB64 programs: a
// deterministic scheduler over threads and forked processes, an in-memory
// filesystem, pipes, a simulated network, signal dispatch for arithmetic
// faults, and the system-call table.
//
// Everything is deterministic: time is configuration, scheduling is
// round-robin with a fixed quantum, and the "network" serves configured
// content. This is what makes concrete re-execution (the replay check of
// the paper's §V-B methodology) exact.
package gos

import (
	"bytes"
	"fmt"

	"repro/internal/bin"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Config parameterizes one machine run. Everything the paper treats as
// "environment" (argv, stdin, clock, pid, network, pre-existing files) is
// explicit here so that runs are reproducible and so the engine can treat
// any of it as a symbolic source.
type Config struct {
	// Argv is the program argument vector, argv[0] being the program name.
	Argv []string
	// Stdin is the byte stream served to reads from fd 0.
	Stdin []byte
	// TimeNow is the value returned by the time system call.
	TimeNow uint64
	// Pid is the pid reported for the root process by getpid.
	Pid uint64
	// WebContent maps URL -> body served by the web_get system call.
	WebContent map[string]string
	// Files pre-populates the in-memory filesystem.
	Files map[string][]byte
	// Env maps environment variable names to values served by the getenv
	// system call — a contextual input surface like time and pid.
	Env map[string]string
	// MaxSteps bounds total executed instructions (0 = default).
	MaxSteps int
	// Quantum is the scheduler time slice in instructions (0 = default).
	Quantum int
	// Record enables full trace recording.
	Record bool
	// WatchAddrs lists instruction addresses whose execution should be
	// reported in Result.Watched (the directed-search target check).
	WatchAddrs []uint64
	// SnapshotEvery takes a resumable machine snapshot roughly every N
	// executed instructions, at the next scheduler-slice boundary
	// (0 = never). Snapshots are retrieved with Machine.Snapshots.
	SnapshotEvery int
}

// Defaults for Config zero values.
const (
	DefaultMaxSteps = 2_000_000
	DefaultQuantum  = 64
	threadStackSize = 0x20000
)

// StopReason says why a run ended.
type StopReason string

// Stop reasons.
const (
	StopExit     StopReason = "exit"     // root process called exit
	StopMaxSteps StopReason = "maxsteps" // instruction budget exhausted
	StopDeadlock StopReason = "deadlock" // every live thread is blocked
	StopFault    StopReason = "fault"    // unhandled fault in the root process
)

// Region names a byte range of guest memory holding input data, used by
// the taint and symbolic stages to place symbolic variables.
type Region struct {
	Name string // "argv1", "argv2", ...
	Addr uint64
	Len  int // includes the NUL terminator
}

// Result summarizes one machine run.
type Result struct {
	Reason     StopReason
	ExitStatus int
	Stdout     string
	Steps      int
	Watched    map[uint64]bool
	Trace      *trace.Trace // nil unless Config.Record
	Argv       []Region
}

// Hit reports whether the watched address was reached.
func (r *Result) Hit(addr uint64) bool { return r.Watched[addr] }

// Machine is one guest machine: a loaded program plus OS state.
type Machine struct {
	prog *vm.Program
	cfg  Config

	fs      *FS
	kv      map[string][]byte
	pipes   map[int]*pipe
	procs   map[int]*proc
	threads []*thread // run queue order; dead threads are pruned lazily
	cur     int       // index into threads of the running thread

	nextPID  int
	nextTID  int
	nextPipe int

	stdout   bytes.Buffer
	stdinOff int

	tr      *trace.Trace
	watched map[uint64]bool
	steps   int

	snaps    []*Snapshot
	lastSnap int // step count at the most recent snapshot

	// Rolling pre-input snapshot: re-taken every few steps while the
	// trace has not yet observed any input surface, then frozen — the
	// deepest machine state valid as a replay start for inputs that
	// differ from this run's in any way (see rollEarly).
	early     *Snapshot
	earlyDone bool
	earlyScan int // trace cursor of the input-surface scan

	sliceN     int  // steps executed in the in-progress scheduler slice
	sliceLeft  int  // resumed runs: remaining quantum of the interrupted slice
	resumePick bool // resumed runs: first slice goes to threads[cur] unpruned

	stopped bool
	reason  StopReason
	status  int

	argv []Region
}

type proc struct {
	pid        int
	mem        *mem.Memory
	fds        map[int]*fdesc
	nextFD     int
	sigHandler uint64
	liveThr    int
	exited     bool
	status     int
	waiters    []*thread
	nextStack  uint64
}

type thread struct {
	tid   int
	proc  *proc
	cpu   *vm.CPU
	dead  bool
	block blockState

	joinWaiters []*thread
}

type blockKind int

const (
	blockNone blockKind = iota
	blockJoin           // waiting for thread block.id to die
	blockRead           // waiting for data on pipe fd block.id
	blockWait           // waiting for process block.id to exit
)

type blockState struct {
	kind blockKind
	id   int
}

type fdKind int

const (
	fdStdin fdKind = iota + 1
	fdStdout
	fdFile
	fdPipe
)

type fdesc struct {
	kind     fdKind
	path     string
	file     *file
	off      int
	pipe     *pipe
	writeEnd bool
}

type pipe struct {
	id       int
	buf      []byte
	readOff  uint64 // total bytes ever consumed, for SysEvent.Off
	writeOff uint64 // total bytes ever written
	writers  int    // open write-end descriptors
}

// New creates a machine for the image under the given configuration.
func New(img *bin.Image, cfg Config) (*Machine, error) {
	prog, err := vm.LoadProgram(img)
	if err != nil {
		return nil, err
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if len(cfg.Argv) == 0 {
		cfg.Argv = []string{"prog"}
	}
	if cfg.Pid == 0 {
		cfg.Pid = 4242
	}
	m := &Machine{
		prog:     prog,
		cfg:      cfg,
		fs:       NewFS(cfg.Files),
		kv:       make(map[string][]byte),
		pipes:    make(map[int]*pipe),
		procs:    make(map[int]*proc),
		watched:  make(map[uint64]bool),
		nextPID:  1,
		nextTID:  1,
		nextPipe: 1,
	}
	if cfg.Record {
		m.tr = &trace.Trace{}
	}
	for _, a := range cfg.WatchAddrs {
		m.watched[a] = false
	}
	m.loadRoot(img)
	return m, nil
}

func (m *Machine) loadRoot(img *bin.Image) {
	p := &proc{
		pid:       m.nextPID,
		mem:       mem.New(),
		fds:       make(map[int]*fdesc),
		nextFD:    3,
		nextStack: bin.StackTop - threadStackSize,
	}
	m.nextPID++
	p.fds[0] = &fdesc{kind: fdStdin}
	p.fds[1] = &fdesc{kind: fdStdout}
	p.fds[2] = &fdesc{kind: fdStdout}
	for _, sec := range img.Sections {
		p.mem.Write(sec.Addr, sec.Data)
	}

	// Build the argv block: pointer array at ArgBase, strings after it.
	argc := len(m.cfg.Argv)
	strBase := bin.ArgBase + uint64(8*(argc+1))
	cursor := strBase
	for i, s := range m.cfg.Argv {
		p.mem.WriteUint(bin.ArgBase+uint64(8*i), 8, cursor) //nolint:errcheck // size 8 is valid
		p.mem.WriteCString(cursor, s)
		m.argv = append(m.argv, Region{
			Name: fmt.Sprintf("argv%d", i),
			Addr: cursor,
			Len:  len(s) + 1,
		})
		cursor += uint64(len(s) + 1)
	}
	p.mem.WriteUint(bin.ArgBase+uint64(8*argc), 8, 0) //nolint:errcheck // size 8 is valid

	cpu := &vm.CPU{PC: img.Entry}
	cpu.SetSP(bin.StackTop - 8)
	p.mem.WriteUint(cpu.SP(), 8, vm.ExitThreadPC) //nolint:errcheck // size 8 is valid
	cpu.Regs[1] = uint64(argc)
	cpu.Regs[2] = bin.ArgBase

	t := &thread{tid: m.nextTID, proc: p, cpu: cpu}
	m.nextTID++
	p.liveThr = 1
	m.procs[p.pid] = p
	m.threads = append(m.threads, t)
}

// ArgvRegions returns where the loader placed the argument strings.
func (m *Machine) ArgvRegions() []Region { return m.argv }

// COWFaults sums the copy-on-write page faults across the memories of
// all processes in the machine — how many guest pages were copied
// because a write hit a page shared with a snapshot or a forked child.
func (m *Machine) COWFaults() uint64 {
	var n uint64
	for _, p := range m.procs {
		n += p.mem.COWFaults()
	}
	return n
}

// Program returns the decoded program.
func (m *Machine) Program() *vm.Program { return m.prog }

// Run executes the machine to completion and returns the result.
func (m *Machine) Run() *Result {
	for !m.stopped {
		var t *thread
		if m.resumePick {
			// First slice after a mid-slice resume: continue the
			// interrupted thread directly. pickThread would prune dead
			// threads now, but the snapshotted run prunes only at its next
			// boundary, and the round-robin position depends on it.
			m.resumePick = false
			t = m.threads[m.cur]
		} else {
			t = m.pickThread()
		}
		if t == nil {
			m.stop(StopDeadlock, 0)
			break
		}
		m.runSlice(t)
		m.maybeSnapshot()
	}
	res := &Result{
		Reason:     m.reason,
		ExitStatus: m.status,
		Stdout:     m.stdout.String(),
		Steps:      m.steps,
		Watched:    m.watched,
		Trace:      m.tr,
		Argv:       m.argv,
	}
	return res
}

// pickThread advances the round-robin cursor to the next runnable thread.
func (m *Machine) pickThread() *thread {
	// Prune dead threads opportunistically.
	live := m.threads[:0]
	for _, t := range m.threads {
		if !t.dead {
			live = append(live, t)
		}
	}
	m.threads = live
	if len(m.threads) == 0 {
		return nil
	}
	for i := 0; i < len(m.threads); i++ {
		idx := (m.cur + i) % len(m.threads)
		t := m.threads[idx]
		if t.block.kind == blockNone {
			m.cur = idx
			return t
		}
	}
	return nil
}

// runSlice runs one scheduler quantum on thread t.
func (m *Machine) runSlice(t *thread) {
	// A machine resumed from a mid-slice snapshot finishes the interrupted
	// slice first (sliceLeft steps), so its future slice boundaries — and
	// with them the thread round-robin — land exactly where the
	// snapshotted run's would.
	quantum := m.cfg.Quantum
	if m.sliceLeft > 0 {
		quantum = m.sliceLeft
		m.sliceLeft = 0
	}
	for n := 0; n < quantum && !m.stopped && !t.dead && t.block.kind == blockNone; n++ {
		if m.steps >= m.cfg.MaxSteps {
			m.stop(StopMaxSteps, 0)
			return
		}
		m.sliceN = m.cfg.Quantum - quantum + n
		if m.cfg.SnapshotEvery > 0 && (!m.earlyDone || m.steps <= earlySnapBound) {
			// Between instructions the machine is just as quiescent as
			// between slices; early snapshots need this finer granularity
			// because input is typically read within the first slice.
			m.earlySnapshots()
		}
		m.steps++
		if _, seen := m.watched[t.cpu.PC]; seen {
			m.watched[t.cpu.PC] = true
		}
		e, kind := vm.Exec(t.cpu, t.proc.mem, m.prog)
		e.TID = t.tid
		e.PID = t.proc.pid
		switch kind {
		case vm.StepNormal:
			if t.cpu.PC == vm.ExitThreadPC {
				m.record(e)
				m.exitThread(t)
				continue
			}
		case vm.StepHalt:
			m.record(e)
			m.exitProc(t.proc, 0)
			continue
		case vm.StepSyscall:
			if !m.syscall(t, &e) {
				continue // blocked; the call will be re-issued
			}
		case vm.StepFault:
			m.fault(t, &e)
		}
		m.record(e)
	}
	m.sliceN = 0
	m.cur = (m.cur + 1) % maxInt(len(m.threads), 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (m *Machine) record(e trace.Entry) {
	if m.tr != nil {
		m.tr.Append(e)
	}
}

func (m *Machine) stop(r StopReason, status int) {
	if m.stopped {
		return
	}
	m.stopped = true
	m.reason = r
	m.status = status
}

func (m *Machine) exitThread(t *thread) {
	if t.dead {
		return
	}
	t.dead = true
	t.proc.liveThr--
	for _, w := range t.joinWaiters {
		if w.block.kind == blockJoin && w.block.id == t.tid {
			w.block = blockState{}
		}
	}
	t.joinWaiters = nil
	if t.proc.liveThr == 0 && !t.proc.exited {
		m.finishProc(t.proc, 0)
	}
}

func (m *Machine) exitProc(p *proc, status int) {
	if p.exited {
		return
	}
	for _, t := range m.threads {
		if t.proc == p {
			t.dead = true
		}
	}
	p.liveThr = 0
	m.finishProc(p, status)
}

func (m *Machine) finishProc(p *proc, status int) {
	p.exited = true
	p.status = status
	// Close descriptors so pipe readers see EOF.
	for fd := range p.fds {
		m.closeFD(p, fd)
	}
	for _, w := range p.waiters {
		if w.block.kind == blockWait && w.block.id == p.pid {
			w.block = blockState{}
			w.cpu.Regs[0] = uint64(status)
		}
	}
	p.waiters = nil
	if p.pid == 1 {
		m.stop(StopExit, status)
	}
}

// fault handles a hardware exception: dispatch to the registered guest
// handler if any, otherwise kill the process.
func (m *Machine) fault(t *thread, e *trace.Entry) {
	p := t.proc
	if e.Exc.Kind == "div0" && p.sigHandler != 0 {
		_, ilen, ok := m.prog.At(t.cpu.PC)
		if !ok {
			ilen = 4
		}
		resume := t.cpu.PC + uint64(ilen)
		sp := t.cpu.SP() - 8
		t.cpu.SetSP(sp)
		p.mem.WriteUint(sp, 8, resume) //nolint:errcheck // size 8 is valid
		t.cpu.Regs[1] = 1              // exception kind for the handler
		t.cpu.PC = p.sigHandler
		e.Exc.Handled = true
		e.Exc.HandlerPC = p.sigHandler
		e.Exc.ResumePC = resume
		return
	}
	// Unhandled: kill the process. The caller records the entry.
	if p.pid == 1 {
		m.stop(StopFault, 128)
		return
	}
	m.exitProc(p, 128)
}
