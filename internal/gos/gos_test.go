package gos

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/trace"
)

func build(t *testing.T, text string) *bin.Image {
	t.Helper()
	img, err := asm.Assemble(asm.Source{Name: "t.s", Text: text})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func runProg(t *testing.T, text string, cfg Config) *Result {
	t.Helper()
	m, err := New(build(t, text), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m.Run()
}

func TestExitStatus(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 1
    mov r1, 42
    syscall
`, Config{})
	if res.Reason != StopExit || res.ExitStatus != 42 {
		t.Errorf("got %s/%d, want exit/42", res.Reason, res.ExitStatus)
	}
}

func TestWriteStdout(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 3        ; write
    mov r1, 1        ; stdout
    mov r2, msg
    mov r3, 5
    syscall
    mov r0, 1
    mov r1, 0
    syscall
    .data
msg: .ascii "hello"
`, Config{})
	if res.Stdout != "hello" {
		t.Errorf("stdout = %q, want hello", res.Stdout)
	}
}

func TestArgvLayout(t *testing.T) {
	// Program exits with the first byte of argv[1].
	res := runProg(t, `
_start:
    ld.q r3, [r2+8]   ; argv[1]
    ld.b r4, [r3+0]
    mov  r0, 1
    mov  r1, r4
    syscall
`, Config{Argv: []string{"prog", "Z"}})
	if res.ExitStatus != 'Z' {
		t.Errorf("exit = %d, want %d", res.ExitStatus, 'Z')
	}
	if len(res.Argv) != 2 || res.Argv[1].Name != "argv1" || res.Argv[1].Len != 2 {
		t.Errorf("argv regions = %+v", res.Argv)
	}
}

func TestStdinRead(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 2        ; read
    mov r1, 0        ; stdin
    mov r2, buf
    mov r3, 8
    syscall
    ld.b r4, [r2+0]  ; wait: r2 got clobbered? no: read preserves r2
    mov r1, r4
    mov r0, 1
    syscall
    .data
buf: .space 16
`, Config{Stdin: []byte("Q...")})
	if res.ExitStatus != 'Q' {
		t.Errorf("exit = %d, want %d", res.ExitStatus, 'Q')
	}
}

func TestFileRoundTrip(t *testing.T) {
	res := runProg(t, `
_start:
    ; fd = open("f", WRITE)
    mov r0, 4
    mov r1, path
    mov r2, 1
    syscall
    mov r10, r0
    ; write(fd, data, 3)
    mov r0, 3
    mov r1, r10
    mov r2, data
    mov r3, 3
    syscall
    ; close(fd)
    mov r0, 5
    mov r1, r10
    syscall
    ; fd = open("f", READ)
    mov r0, 4
    mov r1, path
    mov r2, 0
    syscall
    mov r10, r0
    ; read(fd, buf, 8)
    mov r0, 2
    mov r1, r10
    mov r2, buf
    mov r3, 8
    syscall
    ld.b r4, [r2+1]
    mov r0, 1
    mov r1, r4
    syscall
    .data
path: .asciz "f"
data: .ascii "xyz"
buf:  .space 8
`, Config{Record: true})
	if res.ExitStatus != 'y' {
		t.Errorf("exit = %d, want %d", res.ExitStatus, 'y')
	}
	// The trace must contain read/write sys events naming the file object.
	var sawWrite, sawRead bool
	for _, e := range res.Trace.Entries {
		if e.Sys == nil {
			continue
		}
		if e.Sys.Num == trace.SysWrite && e.Sys.Obj == "f" && string(e.Sys.Data) == "xyz" {
			sawWrite = true
		}
		if e.Sys.Num == trace.SysRead && e.Sys.Obj == "f" && string(e.Sys.Data) == "xyz" {
			sawRead = true
		}
	}
	if !sawWrite || !sawRead {
		t.Errorf("trace missing file IO events: write=%v read=%v", sawWrite, sawRead)
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 4
    mov r1, path
    mov r2, 0
    syscall
    cmp r0, -1
    je  .fail
    mov r1, 0
    jmp .out
.fail:
    mov r1, 7
.out:
    mov r0, 1
    syscall
    .data
path: .asciz "missing"
`, Config{})
	if res.ExitStatus != 7 {
		t.Errorf("exit = %d, want 7 (open should fail)", res.ExitStatus)
	}
}

func TestPreexistingFiles(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 4
    mov r1, path
    mov r2, 0
    syscall
    mov r10, r0
    mov r0, 2
    mov r1, r10
    mov r2, buf
    mov r3, 4
    syscall
    ld.b r4, [r2+0]
    mov r0, 1
    mov r1, r4
    syscall
    .data
path: .asciz "/etc/key"
buf:  .space 8
`, Config{Files: map[string][]byte{"/etc/key": []byte("K")}})
	if res.ExitStatus != 'K' {
		t.Errorf("exit = %d, want K", res.ExitStatus)
	}
}

func TestTimeAndPid(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 6
    syscall
    mov r9, r0
    mov r0, 7
    syscall
    add r9, r0
    mov r0, 1
    mov r1, r9
    syscall
`, Config{TimeNow: 100, Pid: 17})
	if res.ExitStatus != 117 {
		t.Errorf("exit = %d, want 117", res.ExitStatus)
	}
}

func TestForkAndPipe(t *testing.T) {
	// Parent creates a pipe and forks. Child writes 'V'+1 of argv byte,
	// parent reads it and exits with that value.
	res := runProg(t, `
_start:
    mov r0, 9        ; pipe(fds)
    mov r1, fds
    syscall
    mov r0, 8        ; fork
    syscall
    cmp r0, 0
    je  .child
    ; parent: read(rfd, buf, 1)
    mov r0, 2
    ld.q r1, [r1+0]  ; careful: r1 still fds ptr
    mov r2, buf
    mov r3, 1
    syscall
    ld.b r4, [r2+0]
    mov r0, 1
    mov r1, r4
    syscall
.child:
    mov r5, 'V'
    add r5, 1
    st.b [r2+8], r5   ; wait, r2 clobbered? child has own memory
    ; child: write(wfd, tmp, 1)
    mov r1, fds
    ld.q r1, [r1+8]
    mov r2, tmp
    st.b [r2+0], r5
    mov r0, 3
    mov r3, 1
    syscall
    mov r0, 1
    mov r1, 0
    syscall
    .data
fds: .space 16
buf: .space 8
tmp: .space 8
`, Config{})
	if res.ExitStatus != 'W' {
		t.Errorf("exit = %d, want %d", res.ExitStatus, 'W')
	}
}

func TestThreadsAndJoin(t *testing.T) {
	// Main spawns a thread that increments a shared cell, joins, exits
	// with the cell value.
	res := runProg(t, `
worker:
    ld.q r2, [r1+0]
    add  r2, 1
    st.q [r1+0], r2
    ret
_start:
    mov r0, 10        ; thread_create(worker, cell)
    mov r1, worker
    mov r2, cell
    ; args: r1=entry, r2=arg -> but ABI: args r1..r5 of syscall
    ; thread entry receives arg in r1
    syscall
    mov r3, r0
    mov r0, 11        ; join(tid)
    mov r1, r3
    syscall
    mov r4, cell
    ld.q r5, [r4+0]
    mov r0, 1
    mov r1, r5
    syscall
    .data
cell: .quad 41
`, Config{})
	if res.ExitStatus != 42 {
		t.Errorf("exit = %d, want 42", res.ExitStatus)
	}
}

func TestSignalHandlerDivZero(t *testing.T) {
	// Register a handler; divide by zero; handler sets r10=9 and returns;
	// execution resumes after the faulting div.
	res := runProg(t, `
handler:
    mov r10, 9
    ret
_start:
    mov r0, 13        ; sighandler(handler)
    mov r1, handler
    syscall
    mov r10, 1
    mov r3, 8
    mov r4, 0
    div r3, r4        ; faults; handler runs; resumes here
    mov r0, 1
    mov r1, r10
    syscall
`, Config{})
	if res.ExitStatus != 9 {
		t.Errorf("exit = %d, want 9 (handler must run and resume)", res.ExitStatus)
	}
}

func TestUnhandledFaultKillsProcess(t *testing.T) {
	res := runProg(t, `
_start:
    mov r3, 8
    mov r4, 0
    div r3, r4
    mov r0, 1
    mov r1, 0
    syscall
`, Config{})
	if res.Reason != StopFault {
		t.Errorf("reason = %s, want fault", res.Reason)
	}
}

func TestWebGet(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 12
    mov r1, url
    mov r2, buf
    mov r3, 16
    syscall
    ld.b r4, [r2+0]
    mov r0, 1
    mov r1, r4
    syscall
    .data
url: .asciz "http://x/secret"
buf: .space 16
`, Config{WebContent: map[string]string{"http://x/secret": "S3CR"}})
	if res.ExitStatus != 'S' {
		t.Errorf("exit = %d, want S", res.ExitStatus)
	}
}

func TestWebGetMissing(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 12
    mov r1, url
    mov r2, buf
    mov r3, 16
    syscall
    mov r1, 0
    cmp r0, -1
    jne .ok
    mov r1, 5
.ok:
    mov r0, 1
    syscall
    .data
url: .asciz "http://nope"
buf: .space 16
`, Config{})
	if res.ExitStatus != 5 {
		t.Errorf("exit = %d, want 5", res.ExitStatus)
	}
}

func TestWaitForChild(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 8
    syscall
    cmp r0, 0
    je .child
    ; parent: wait(child) -> status
    mov r1, r0
    mov r0, 16
    syscall
    mov r1, r0
    mov r0, 1
    syscall
.child:
    mov r0, 1
    mov r1, 33
    syscall
`, Config{})
	if res.ExitStatus != 33 {
		t.Errorf("exit = %d, want 33", res.ExitStatus)
	}
}

func TestMaxStepsStops(t *testing.T) {
	res := runProg(t, `
_start:
.loop:
    jmp .loop
`, Config{MaxSteps: 100})
	if res.Reason != StopMaxSteps {
		t.Errorf("reason = %s, want maxsteps", res.Reason)
	}
	if res.Steps != 100 {
		t.Errorf("steps = %d, want 100", res.Steps)
	}
}

func TestWatchAddrs(t *testing.T) {
	img := build(t, `
_start:
    jmp skip
bomb:
    nop
skip:
    mov r0, 1
    mov r1, 0
    syscall
`)
	bombAddr, ok := img.Symbol("bomb")
	if !ok {
		t.Fatal("no bomb symbol")
	}
	m, err := New(img, Config{WatchAddrs: []uint64{bombAddr}})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Hit(bombAddr) {
		t.Error("bomb should not be hit when jumped over")
	}
}

func TestUnknownSyscallReturnsError(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 99
    syscall
    mov r1, 0
    cmp r0, -1
    jne .ok
    mov r1, 21
.ok:
    mov r0, 1
    syscall
`, Config{})
	if res.ExitStatus != 21 {
		t.Errorf("exit = %d, want 21", res.ExitStatus)
	}
}

func TestUnlink(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 14
    mov r1, path
    syscall
    mov r9, r0       ; 0 on success
    ; open should now fail
    mov r0, 4
    mov r1, path
    mov r2, 0
    syscall
    cmp r0, -1
    jne .bad
    mov r1, 11
    jmp .out
.bad:
    mov r1, 0
.out:
    mov r0, 1
    syscall
    .data
path: .asciz "gone"
`, Config{Files: map[string][]byte{"gone": []byte("x")}})
	if res.ExitStatus != 11 {
		t.Errorf("exit = %d, want 11", res.ExitStatus)
	}
}

func TestTraceRecordsSyscalls(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 6
    syscall
    mov r0, 1
    mov r1, 0
    syscall
`, Config{Record: true, TimeNow: 777})
	var found bool
	for _, e := range res.Trace.Entries {
		if e.Sys != nil && e.Sys.Num == trace.SysTime && e.Sys.Ret == 777 {
			found = true
		}
	}
	if !found {
		t.Errorf("trace lacks time syscall event:\n%s", res.Trace.Dump(false))
	}
	if !strings.Contains(res.Trace.Dump(false), "sys=time") {
		t.Error("trace dump should mention sys=time")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Single thread joining itself blocks forever -> deadlock.
	res := runProg(t, `
_start:
    mov r0, 11
    mov r1, 1        ; join own tid
    syscall
    mov r0, 1
    mov r1, 0
    syscall
`, Config{})
	if res.Reason != StopDeadlock {
		t.Errorf("reason = %s, want deadlock", res.Reason)
	}
}

func TestKvStoreSyscalls(t *testing.T) {
	res := runProg(t, `
_start:
    mov r0, 17             ; kv_put("k", data, 3)
    mov r1, key
    mov r2, data
    mov r3, 3
    syscall
    mov r0, 18             ; kv_get("k", buf, 8)
    mov r1, key
    mov r2, buf
    mov r3, 8
    syscall
    mov r9, r0             ; bytes returned (3)
    ld.b r4, [r2+1]        ; 'y'
    add r9, r4
    mov r0, 18             ; kv_get("missing", buf, 8) -> -1
    mov r1, nokey
    mov r2, buf
    mov r3, 8
    syscall
    cmp r0, -1
    jne .bad
    mov r1, r9
    mov r0, 1
    syscall
.bad:
    mov r0, 1
    mov r1, 0
    syscall
    .data
key:   .asciz "k"
nokey: .asciz "missing"
data:  .ascii "xyz"
buf:   .space 8
`, Config{Record: true})
	if res.ExitStatus != 3+'y' {
		t.Errorf("kv roundtrip = %d, want %d", res.ExitStatus, 3+'y')
	}
	var sawPut, sawGet bool
	for _, e := range res.Trace.Entries {
		if e.Sys == nil {
			continue
		}
		if e.Sys.Num == trace.SysKvPut && e.Sys.Obj == "kv:k" {
			sawPut = true
		}
		if e.Sys.Num == trace.SysKvGet && string(e.Sys.Data) == "xyz" {
			sawGet = true
		}
	}
	if !sawPut || !sawGet {
		t.Error("kv events missing from trace")
	}
}

func TestMachineAccessors(t *testing.T) {
	m, err := New(build(t, "_start:\n halt\n"), Config{Argv: []string{"p", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Program() == nil {
		t.Error("Program() nil")
	}
	if len(m.ArgvRegions()) != 2 {
		t.Errorf("ArgvRegions = %v", m.ArgvRegions())
	}
}

func TestFSHelpers(t *testing.T) {
	fs := NewFS(map[string][]byte{"a": []byte("abc")})
	if !fs.Exists("a") || fs.Exists("b") {
		t.Error("Exists broken")
	}
	data, ok := fs.Contents("a")
	if !ok || string(data) != "abc" {
		t.Errorf("Contents = %q, %v", data, ok)
	}
	if _, ok := fs.Contents("b"); ok {
		t.Error("Contents of missing file should fail")
	}
	// writeAt with a gap pads with zeros.
	f := fs.Open("a")
	f.writeAt(5, []byte("Z"))
	data, _ = fs.Contents("a")
	if len(data) != 6 || data[5] != 'Z' || data[3] != 0 {
		t.Errorf("writeAt gap = %v", data)
	}
}

func TestHugeIOClamped(t *testing.T) {
	// read with an absurd length is clamped, not crashing.
	res := runProg(t, `
_start:
    mov r0, 2
    mov r1, 0
    mov r2, buf
    mov r3, -1       ; 2^64-1 bytes requested
    syscall
    mov r1, r0       ; bytes actually read
    mov r0, 1
    syscall
    .data
buf: .space 8
`, Config{Stdin: []byte("abc")})
	if res.ExitStatus != 3 {
		t.Errorf("clamped read = %d, want 3", res.ExitStatus)
	}
}
