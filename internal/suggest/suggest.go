// Package suggest is the shared "did you mean" helper: one edit-distance
// suggester and one error shape for every name registry in the system —
// bomb names, solver modes, search strategies, tool profiles, and the Go
// frontend's function names. Centralizing it keeps the CLIs, the service
// and the frontends from drifting into different error dialects.
package suggest

import (
	"fmt"
	"strings"
)

// Closest returns the candidate nearest to name by edit distance, or ""
// when nothing is close enough to be a plausible typo (distance bounded
// by half the query length, minimum 2).
func Closest(name string, candidates []string) string {
	if name == "" {
		return ""
	}
	limit := len(name)/2 + 1
	if limit < 2 {
		limit = 2
	}
	best, bestDist := "", limit+1
	for _, c := range candidates {
		if d := EditDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	if bestDist > limit {
		return ""
	}
	return best
}

// Unknown builds the uniform unknown-name error: it names the kind, the
// rejected value, every valid name, and — when one is plausibly a typo —
// the closest match.
//
//	unknown solver mode "fersh" (valid: fresh, incremental, portfolio) — did you mean "fresh"?
func Unknown(kind, name string, valid []string) error {
	msg := fmt.Sprintf("unknown %s %q (valid: %s)", kind, name, strings.Join(valid, ", "))
	if s := Closest(name, valid); s != "" {
		msg += fmt.Sprintf(" — did you mean %q?", s)
	}
	return fmt.Errorf("%s", msg)
}

// EditDistance is the Levenshtein distance, two-row dynamic program.
func EditDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
