package suggest

import (
	"strings"
	"testing"
)

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"sha1", "sha", 1},
		{"jump", "jumptab", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestClosest(t *testing.T) {
	names := []string{"fresh", "incremental", "portfolio"}
	cases := []struct {
		query, want string
	}{
		{"fersh", "fresh"},
		{"portfolo", "portfolio"},
		{"incremental", "incremental"},
		{"z3", ""}, // nothing plausible
		{"", ""},   // empty query never suggests
	}
	for _, c := range cases {
		if got := Closest(c.query, names); got != c.want {
			t.Errorf("Closest(%q) = %q, want %q", c.query, got, c.want)
		}
	}
}

// TestUnknownShape pins the uniform error dialect: kind, rejected name,
// the full valid list, and a suggestion when one is plausible.
func TestUnknownShape(t *testing.T) {
	err := Unknown("solver mode", "fersh", []string{"fresh", "incremental", "portfolio"})
	msg := err.Error()
	for _, want := range []string{
		`unknown solver mode "fersh"`,
		"valid: fresh, incremental, portfolio",
		`did you mean "fresh"?`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Unknown error %q missing %q", msg, want)
		}
	}
	// No plausible match: the suggestion clause is omitted entirely.
	msg = Unknown("solver mode", "z3", []string{"fresh", "incremental"}).Error()
	if strings.Contains(msg, "did you mean") {
		t.Errorf("Unknown error %q suggests for an implausible name", msg)
	}
}
