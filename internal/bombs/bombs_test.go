package bombs

import (
	"testing"
)

func TestRegistryShape(t *testing.T) {
	if got := len(TableII()); got != 22 {
		t.Errorf("Table II bombs = %d, want 22", got)
	}
	if got := len(All()); got != 43 {
		t.Errorf("total bombs = %d, want 43 (22 + negpow + 2 fig3 + 3 extensions + 2 stress + 13 extended)", got)
	}
	if got := len(TableIIExtended()); got != 13 {
		t.Errorf("extended bombs = %d, want 13", got)
	}
	seen := make(map[string]bool)
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate bomb name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Category == Accuracy || b.Category == Scalability {
			for _, o := range b.Paper {
				if o == "" {
					t.Errorf("%s: missing paper outcome", b.Name)
				}
			}
		}
	}
}

func TestCategoryCounts(t *testing.T) {
	counts := map[string]int{}
	for _, b := range TableII() {
		counts[b.Challenge]++
	}
	want := map[string]int{
		ChSymbolicDecl:  4,
		ChCovertProp:    5,
		ChParallel:      2,
		ChSymbolicArray: 2,
		ChContextual:    2,
		ChSymbolicJump:  2,
		ChFloat:         1,
		ChExternalCall:  2,
		ChCrypto:        2,
	}
	for ch, n := range want {
		if counts[ch] != n {
			t.Errorf("%s: %d bombs, want %d", ch, counts[ch], n)
		}
	}
}

func TestExtendedCorpusShape(t *testing.T) {
	counts := map[string]int{}
	taxonomies := map[string]bool{}
	for _, b := range TableIIExtended() {
		counts[b.Challenge]++
		if b.Taxonomy == "" {
			t.Errorf("%s: extended bomb without taxonomy tag", b.Name)
		}
		taxonomies[b.Taxonomy] = true
	}
	want := map[string]int{
		ChParallel:      4,
		ChSymbolicWrite: 3,
		ChContextual:    3,
		ChCovertProp:    3,
	}
	for ch, n := range want {
		if counts[ch] != n {
			t.Errorf("%s: %d extended bombs, want %d", ch, counts[ch], n)
		}
	}
	if len(taxonomies) < 4 {
		t.Errorf("extended taxonomy slugs = %d, want >= 4", len(taxonomies))
	}
	for _, b := range All() {
		if b.Category != Extended && b.Taxonomy != "" {
			t.Errorf("%s: taxonomy tag on a non-extended bomb", b.Name)
		}
	}
}

// TestAllBombsTriggerAndStayQuiet is the ground-truth check for the whole
// benchmark: the documented trigger input detonates every bomb (except the
// deliberately unreachable negpow) and the benign seed never does.
func TestAllBombsTriggerAndStayQuiet(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			benign, err := b.Run(b.Benign)
			if err != nil {
				t.Fatalf("benign run: %v", err)
			}
			if Triggered(benign) {
				t.Errorf("benign input %+v detonated the bomb", b.Benign)
			}
			trig, err := b.Run(b.Trigger, WithMaxSteps(5_000_000))
			if err != nil {
				t.Fatalf("trigger run: %v", err)
			}
			if b.Name == "negpow" {
				if Triggered(trig) {
					t.Error("negpow must be unreachable")
				}
				return
			}
			if !Triggered(trig) {
				t.Errorf("trigger input %+v did not detonate: reason=%s status=%d stdout=%q",
					b.Trigger, trig.Reason, trig.ExitStatus, trig.Stdout)
			}
		})
	}
}

func TestBombAddrWatched(t *testing.T) {
	b, ok := ByName("arglen")
	if !ok {
		t.Fatal("arglen bomb missing")
	}
	addr := b.BombAddr()
	if addr == 0 {
		t.Fatal("bomb address is zero")
	}
	cfg := b.Trigger.Config()
	cfg.WatchAddrs = []uint64{addr}
	// Run through the low-level API to check the watch plumbing.
	res, err := b.Run(b.Trigger)
	if err != nil {
		t.Fatal(err)
	}
	if !Triggered(res) {
		t.Fatal("trigger failed")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("sha1"); !ok {
		t.Error("sha1 bomb not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("nonexistent bomb found")
	}
}

func TestImageSizesSmall(t *testing.T) {
	// The paper's binaries are 10-25 KB; ours should be of the same order
	// (small binaries, rich libc).
	for _, b := range All() {
		size := b.Image().Size()
		if size > 64*1024 {
			t.Errorf("%s: image %d bytes, want < 64KB", b.Name, size)
		}
		if size < 1024 {
			t.Errorf("%s: image %d bytes suspiciously small", b.Name, size)
		}
	}
}

func TestTriggerInputConfigDefaults(t *testing.T) {
	in := Input{Argv1: "x"}
	cfg := in.Config()
	if cfg.TimeNow != DefaultTime || cfg.Pid != DefaultPid {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if len(cfg.Argv) != 2 || cfg.Argv[1] != "x" {
		t.Errorf("argv = %v", cfg.Argv)
	}
}

func TestChallengeStagesTableI(t *testing.T) {
	// Table I: declaration can fail at every stage; arrays/jumps/floats
	// only at constraint modeling.
	if got := ChallengeStages[ChSymbolicDecl]; len(got) != 4 {
		t.Errorf("declaration stages = %v", got)
	}
	for _, ch := range []string{ChSymbolicArray, ChContextual, ChSymbolicJump, ChFloat} {
		got := ChallengeStages[ch]
		if len(got) != 1 || got[0] != Es3 {
			t.Errorf("%s stages = %v, want [Es3]", ch, got)
		}
	}
}

func TestFig3ProgramsShareTrigger(t *testing.T) {
	plain, _ := ByName("fig3_plain")
	withPrintf, _ := ByName("fig3_printf")
	for _, b := range []*Bomb{plain, withPrintf} {
		res, err := b.Run(b.Trigger)
		if err != nil {
			t.Fatal(err)
		}
		if !Triggered(res) {
			t.Errorf("%s: trigger failed", b.Name)
		}
	}
	// The printf variant must execute strictly more instructions.
	rp, _ := plain.Run(plain.Trigger)
	rf, _ := withPrintf.Run(withPrintf.Trigger)
	if rf.Steps <= rp.Steps {
		t.Errorf("printf variant steps %d <= plain %d", rf.Steps, rp.Steps)
	}
}

func TestImagesHaveBombSymbol(t *testing.T) {
	for _, b := range All() {
		if _, ok := b.Image().Symbol("bomb"); !ok {
			t.Errorf("%s: no bomb symbol", b.Name)
		}
		if _, ok := b.Image().Symbol("main"); !ok {
			t.Errorf("%s: no main symbol", b.Name)
		}
	}
}
